package plim

import (
	"context"
	"runtime"

	"plim/internal/core"
	"plim/internal/tables"
)

// Run rewrites and compiles m under the given configuration.
//
// Deprecated: use Engine.Run, which adds cancellation and progress
// reporting. Run(m, cfg, effort) is equivalent to
// NewEngine(WithEffort(effort)).Run(context.Background(), m, cfg) and
// produces identical output.
func Run(m *MIG, cfg Config, effort int) (*Report, error) {
	return core.Run(context.Background(), m, cfg, effort, nil)
}

// RunSuite evaluates configurations over the benchmark suite. For
// backwards compatibility, zero-valued fields of opts fall back to the
// historical defaults (Effort → DefaultEffort, Shrink → 1, Workers →
// GOMAXPROCS) — which makes Effort 0 inexpressible here.
//
// Deprecated: use Engine.RunSuite, whose options are explicit
// (WithEffort(0) really runs zero rewriting cycles) and which supports
// cancellation and progress streaming.
func RunSuite(cfgs []Config, opts SuiteOptions) (*SuiteResult, error) {
	if opts.Effort == 0 {
		opts.Effort = DefaultEffort
	}
	if opts.Shrink == 0 {
		opts.Shrink = 1
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return tables.RunSuite(context.Background(), cfgs, opts)
}
