module plim

go 1.24
