package plim

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"plim/internal/core"
	"plim/internal/imply"
	"plim/internal/isa"
	"plim/internal/rewrite"
	"plim/internal/suite"
	"plim/internal/tables"
)

// The table benchmarks regenerate the paper's experiments. They run at
// shrink 2 (datapaths halved) so `go test -bench .` stays in seconds;
// cmd/plimtab reproduces the tables at full paper scale.
const benchShrink = 2

// benchSubset is a representative slice of the suite: large arithmetic
// (div), mid-size control (i2c), wide-and-shallow (bar) and small control
// (ctrl), covering the structural extremes of Table I.
var benchSubset = []string{"div", "i2c", "bar", "ctrl"}

// BenchmarkTable1 regenerates the paper's Table I (write distribution under
// the five incremental endurance configurations).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := tables.RunSuite(context.Background(), core.TableIConfigs(), tables.Options{
			Benchmarks: benchSubset, Shrink: benchShrink,
			Effort: core.DefaultEffort, Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := tables.TableI(sr)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Cells) != len(benchSubset) {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable2 regenerates the paper's Table II (#I and #R for naive,
// endurance-aware rewriting, and rewriting+compilation).
func BenchmarkTable2(b *testing.B) {
	cfgs := []core.Config{core.Naive, core.Rewriting, core.Full}
	for i := 0; i < b.N; i++ {
		sr, err := tables.RunSuite(context.Background(), cfgs, tables.Options{
			Benchmarks: benchSubset, Shrink: benchShrink,
			Effort: core.DefaultEffort, Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tables.TableII(sr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the paper's Table III (the maximum-write-count
// trade-off at caps 10/20/50/100).
func BenchmarkTable3(b *testing.B) {
	cfgs := []core.Config{core.FullCap(10), core.FullCap(20), core.FullCap(50), core.FullCap(100)}
	for i := 0; i < b.N; i++ {
		sr, err := tables.RunSuite(context.Background(), cfgs, tables.Options{
			Benchmarks: benchSubset, Shrink: benchShrink,
			Effort: core.DefaultEffort, Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tables.TableIII(sr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the per-technique isolation table (extension).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := tables.RunSuite(context.Background(), tables.AblationConfigs(), tables.Options{
			Benchmarks: []string{"ctrl", "i2c"}, Shrink: benchShrink,
			Effort: core.DefaultEffort, Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tables.TableI(sr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuitePerConfig measures the legacy execution shape — every
// configuration rewrites from scratch, nothing cached or staged — as the
// "before" reference for BenchmarkTable1 (staged, cold) and
// BenchmarkSuiteStagedWarm (staged, warm engine caches). cmd/plimbench
// records the same comparison to BENCH_plim.json.
func BenchmarkSuitePerConfig(b *testing.B) {
	cfgs := core.TableIConfigs()
	for i := 0; i < b.N; i++ {
		for _, name := range benchSubset {
			m, err := suite.BuildScaled(name, benchShrink)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := core.Run(context.Background(), m, cfg, core.DefaultEffort, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSuiteStagedWarm measures repeated suite regeneration on one
// engine: benchmark builds and rewrite stages come from the caches, so
// only the compile stages run.
func BenchmarkSuiteStagedWarm(b *testing.B) {
	eng := NewEngine(WithShrink(benchShrink))
	if _, err := eng.RunSuite(context.Background(), TableIConfigs(), benchSubset...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSuite(context.Background(), TableIConfigs(), benchSubset...); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the individual subsystems.

func benchmarkMIG(b *testing.B, name string) *MIG {
	b.Helper()
	m, err := suite.BuildScaled(name, benchShrink)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRewriteAlgorithm1 measures the DAC'16 rewriting pipeline.
func BenchmarkRewriteAlgorithm1(b *testing.B) {
	m := benchmarkMIG(b, "sin")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewrite.Run(m, rewrite.Algorithm1, core.DefaultEffort)
	}
}

// BenchmarkRewriteAlgorithm2 measures the endurance-aware rewriting.
func BenchmarkRewriteAlgorithm2(b *testing.B) {
	m := benchmarkMIG(b, "sin")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewrite.Run(m, rewrite.Algorithm2, core.DefaultEffort)
	}
}

// BenchmarkCompileFull measures endurance-aware compilation throughput
// (nodes → RM3 instructions) on a rewritten multiplier. ReportAllocs guards
// the compile scratch pool: the steady state is O(1) allocations per
// compilation, not O(graph).
func BenchmarkCompileFull(b *testing.B) {
	m := benchmarkMIG(b, "multiplier")
	mr, _ := rewrite.Run(m, rewrite.Algorithm2, core.DefaultEffort)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(mr, CompileOptions{Selection: 2, Alloc: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePolicies measures each selection policy separately on the
// same rewritten multiplier, isolating the cost of the candidate-heap
// orderings from rewriting.
func BenchmarkCompilePolicies(b *testing.B) {
	m := benchmarkMIG(b, "multiplier")
	mr, _ := rewrite.Run(m, rewrite.Algorithm2, core.DefaultEffort)
	for _, tc := range []struct {
		name string
		opts CompileOptions
	}{
		{"node-order", CompileOptions{Selection: 0, Alloc: 0}},
		{"standard", CompileOptions{Selection: 1, Alloc: 1}},
		{"endurance", CompileOptions{Selection: 2, Alloc: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(mr, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpreter measures RM3 execution speed on the crossbar model.
func BenchmarkInterpreter(b *testing.B) {
	m := benchmarkMIG(b, "bar")
	rep, err := Run(m, Full, core.DefaultEffort)
	if err != nil {
		b.Fatal(err)
	}
	prog := rep.Result.Program
	rng := rand.New(rand.NewSource(1))
	inputs := make([]bool, len(prog.PICells))
	for i := range inputs {
		inputs[i] = rng.Intn(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := isa.Execute(prog, inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prog.NumInstructions()), "insts/op")
}

// BenchmarkEval measures word-parallel MIG simulation (64 patterns/op).
func BenchmarkEval(b *testing.B) {
	m := benchmarkMIG(b, "sqrt")
	rng := rand.New(rand.NewSource(2))
	in := make([]uint64, m.NumPIs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	vals := make([]uint64, m.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalInto(in, vals)
	}
}

// BenchmarkSuiteGeneration measures benchmark circuit construction.
func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite.BuildScaled("voter", benchShrink); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImplyBaseline compiles and executes the §II material-implication
// baseline on a control benchmark, for comparison with BenchmarkCompileFull.
func BenchmarkImplyBaseline(b *testing.B) {
	m := benchmarkMIG(b, "cavlc")
	in := make([]bool, m.NumPIs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := imply.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := prog.Execute(in); err != nil {
			b.Fatal(err)
		}
	}
}
