package tables

import (
	"fmt"

	"plim/internal/stats"
)

// TableCostCell is one configuration's priced totals on one benchmark.
type TableCostCell struct {
	EnergyPJ      float64
	LatencyCycles uint64
	// LifetimeRuns is the per-run lifetime estimate under the model's
	// endurance budget; stats.MaxLifetime means unlimited.
	LifetimeRuns uint64
}

// TableCostData is the cost-model projection of a suite result (not in the
// paper): per-configuration energy, latency and lifetime under one
// instruction cost model. It only exists for suite runs priced with a cost
// model (Options.CostModel / plim.WithCostModel).
type TableCostData struct {
	Model       string
	ConfigNames []string
	Benchmarks  []string
	PIPO        [][2]int
	Cells       [][]TableCostCell // [benchmark][config]
	AvgEnergy   []float64
	AvgLatency  []float64
}

// TableCost projects a priced suite result onto the cost table. Every
// report must carry a Cost block (run the suite with a cost model).
func TableCost(sr *SuiteResult) (*TableCostData, error) {
	d := &TableCostData{}
	for _, c := range sr.Configs {
		d.ConfigNames = append(d.ConfigNames, c.Name)
	}
	d.AvgEnergy = make([]float64, len(sr.Configs))
	d.AvgLatency = make([]float64, len(sr.Configs))
	for b, info := range sr.Benchmarks {
		d.Benchmarks = append(d.Benchmarks, info.Name)
		d.PIPO = append(d.PIPO, [2]int{info.PI, info.PO})
		row := make([]TableCostCell, len(sr.Configs))
		for c, rep := range sr.Reports[b] {
			if rep.Cost == nil {
				return nil, fmt.Errorf("tables: cost table needs a priced run (%s/%s has no cost — set Options.CostModel)",
					info.Name, sr.Configs[c].Name)
			}
			if d.Model == "" {
				d.Model = rep.Cost.Model
			}
			row[c] = TableCostCell{
				EnergyPJ:      rep.Cost.EnergyPJ,
				LatencyCycles: rep.Cost.LatencyCycles,
				LifetimeRuns:  rep.Cost.LifetimeRuns,
			}
			d.AvgEnergy[c] += row[c].EnergyPJ
			d.AvgLatency[c] += float64(row[c].LatencyCycles)
		}
		d.Cells = append(d.Cells, row)
	}
	n := float64(len(sr.Benchmarks))
	for c := range sr.Configs {
		d.AvgEnergy[c] /= n
		d.AvgLatency[c] /= n
	}
	return d, nil
}

// Grid renders the cost table: per configuration, energy in pJ, latency in
// cycles and the lifetime estimate in runs ("unlimited" for the sentinel).
// Lifetimes are not averaged — the AVG row prints dashes for them, because
// a mean over run counts bounded by different hot cells has no meaning.
func (d *TableCostData) Grid() *Grid {
	g := &Grid{Title: fmt.Sprintf("Cost: energy, latency and lifetime under model %q", d.Model)}
	g.Columns = []string{"benchmark", "PI/PO"}
	for _, name := range d.ConfigNames {
		g.Columns = append(g.Columns, name+" energy(pJ)", name+" latency", name+" lifetime")
	}
	for b := range d.Benchmarks {
		row := []string{d.Benchmarks[b], fmt.Sprintf("%d/%d", d.PIPO[b][0], d.PIPO[b][1])}
		for _, cell := range d.Cells[b] {
			row = append(row,
				fmt.Sprintf("%.2f", cell.EnergyPJ),
				fmt.Sprintf("%d", cell.LatencyCycles),
				stats.FormatLifetime(cell.LifetimeRuns))
		}
		g.Rows = append(g.Rows, row)
	}
	avg := []string{"AVG", ""}
	for c := range d.ConfigNames {
		avg = append(avg, fmt.Sprintf("%.2f", d.AvgEnergy[c]), fmt.Sprintf("%.2f", d.AvgLatency[c]), "-")
	}
	g.Rows = append(g.Rows, avg)
	return g
}
