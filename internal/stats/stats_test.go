package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]uint64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Total != 40 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// The classic example: population stddev is exactly 2.
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stdev = %v, want 2", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]uint64{7})
	if s.Min != 7 || s.Max != 7 || s.StdDev != 0 || s.Mean != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]uint64{1, 3})
	if !strings.Contains(s.String(), "1/3") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10, 5); got != 50 {
		t.Fatalf("Improvement(10,5) = %v", got)
	}
	if got := Improvement(10, 12); got != -20 {
		t.Fatalf("Improvement(10,12) = %v", got)
	}
	if got := Improvement(0, 0); got != 0 {
		t.Fatalf("Improvement(0,0) = %v", got)
	}
	if got := Improvement(0, 1); !math.IsInf(got, -1) {
		t.Fatalf("Improvement(0,1) = %v", got)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]uint64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform Gini = %v, want 0", g)
	}
	// All writes on one device out of many → close to 1.
	skew := make([]uint64, 100)
	skew[0] = 1000
	if g := Gini(skew); g < 0.95 {
		t.Fatalf("concentrated Gini = %v, want ≈1", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]uint64{0, 0}); g != 0 {
		t.Fatalf("all-zero Gini = %v", g)
	}
}

func TestHistogram(t *testing.T) {
	buckets, width := Histogram([]uint64{0, 1, 2, 9, 9}, 5)
	if width != 2 {
		t.Fatalf("width = %d", width)
	}
	if buckets[0] != 2 || buckets[1] != 1 || buckets[4] != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	empty, w := Histogram(nil, 3)
	if len(empty) != 3 || w != 1 {
		t.Fatalf("empty histogram broken")
	}
}

func TestLifetime(t *testing.T) {
	if lt := Lifetime([]uint64{1, 5, 3}, 100); lt != 20 {
		t.Fatalf("lifetime = %d, want 20", lt)
	}
	if lt := Lifetime([]uint64{0, 0}, 100); lt != MaxLifetime {
		t.Fatalf("zero-write lifetime = %d", lt)
	}
}

// Property: StdDev is invariant under permutation and zero when all equal.
func TestStdDevPropertiesQuick(t *testing.T) {
	f := func(v []uint16, c uint16) bool {
		writes := make([]uint64, len(v))
		for i, x := range v {
			writes[i] = uint64(x)
		}
		s1 := Summarize(writes)
		// Reverse is a permutation.
		rev := make([]uint64, len(writes))
		for i, x := range writes {
			rev[len(writes)-1-i] = x
		}
		s2 := Summarize(rev)
		if math.Abs(s1.StdDev-s2.StdDev) > 1e-9 {
			return false
		}
		// Constant vectors have zero deviation.
		cons := make([]uint64, 5)
		for i := range cons {
			cons[i] = uint64(c)
		}
		return Summarize(cons).StdDev == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is bounded by min and max; total = mean*n.
func TestSummaryBoundsQuick(t *testing.T) {
	f := func(v []uint16) bool {
		if len(v) == 0 {
			return true
		}
		writes := make([]uint64, len(v))
		for i, x := range v {
			writes[i] = uint64(x)
		}
		s := Summarize(writes)
		return float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
