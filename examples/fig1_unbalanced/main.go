// Fig. 1 of the paper: an MIG where the compiler's area/latency-driven
// destination choice rewrites the same RRAM repeatedly. Node B's two other
// children have multiple fanouts, so the device holding node A is chosen as
// the RM3 destination; the same happens when node C consumes B — the one
// single-fanout chain keeps absorbing writes.
//
// This example builds a deep chain of such nodes and shows how the write
// maximum grows with chain length under the naive scheme, and how the
// paper's maximum-write-count strategy bounds it.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
)

// chain builds the Fig. 1 pattern repeated depth times: at every level the
// only single-fanout child is the previous level's output, while the other
// two children (a fresh input and a shared signal pinned by an output) have
// other fanouts. Fresh inputs keep the function irreducible, so rewriting
// cannot collapse the chain.
func chain(depth int) *plim.MIG {
	m := plim.NewMIG(fmt.Sprintf("fig1-depth%d", depth))
	cur := m.AddPI("a")
	shared := m.AddPI("s")
	for i := 0; i < depth; i++ {
		p := m.AddPI(fmt.Sprintf("p%d", i))
		// ⟨cur p̄ s⟩: one complemented edge (the ideal RM3 shape); cur is
		// the only child that dies here, so its device is overwritten.
		cur = m.Maj(cur, p.Not(), shared)
	}
	m.AddPO(cur, "f")
	m.AddPO(shared, "keep") // pin the shared child like Fig. 1's fanouts
	return m
}

func main() {
	fmt.Println("Fig. 1: single-fanout chains concentrate writes (naive compilation)")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %12s\n", "depth", "naive max", "cap10 max", "cap10 #R")
	ctx := context.Background()
	eng := plim.NewEngine()
	for _, depth := range []int{4, 16, 64, 256} {
		m := chain(depth)
		naive, err := eng.Run(ctx, m, plim.Naive)
		if err != nil {
			log.Fatal(err)
		}
		capped, err := eng.Run(ctx, m, plim.FullCap(10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %12d  %12d  %12d\n",
			depth, naive.Writes.Max, capped.Writes.Max, capped.NumRRAMs())
	}
	fmt.Println()
	fmt.Println("The naive maximum grows linearly with the chain — the device under")
	fmt.Println("the chain wears out first. The maximum write strategy trades fresh")
	fmt.Println("devices (#R) for a hard bound on per-device wear, exactly the")
	fmt.Println("trade-off of the paper's Table III.")
}
