// Package stats computes the write-distribution statistics the paper
// reports: population standard deviation, minimum and maximum per-device
// write counts, plus auxiliary uniformity and lifetime metrics used by the
// examples and ablation studies.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Summary describes the distribution of per-device write counts.
type Summary struct {
	N      int
	Min    uint64
	Max    uint64
	Mean   float64
	StdDev float64 // population standard deviation, as in the paper
	Total  uint64
}

// Summarize computes a Summary over per-device write counts. An empty input
// yields the zero Summary.
func Summarize(writes []uint64) Summary {
	if len(writes) == 0 {
		return Summary{}
	}
	s := Summary{N: len(writes), Min: writes[0], Max: writes[0]}
	for _, w := range writes {
		s.Total += w
		if w < s.Min {
			s.Min = w
		}
		if w > s.Max {
			s.Max = w
		}
	}
	s.Mean = float64(s.Total) / float64(s.N)
	var ss float64
	for _, w := range writes {
		d := float64(w) - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// String renders the summary in the paper's min/max + STDEV style.
func (s Summary) String() string {
	return fmt.Sprintf("%d/%d stdev=%.2f (n=%d, total=%d)", s.Min, s.Max, s.StdDev, s.N, s.Total)
}

// Improvement returns the paper's "impr." column: the relative reduction of
// the candidate standard deviation versus the baseline, in percent. Positive
// means better (smaller deviation); negative values occur in the paper too
// (e.g. div, ctrl, dec).
func Improvement(baseline, candidate float64) float64 {
	if baseline == 0 {
		if candidate == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return (baseline - candidate) / baseline * 100
}

// Gini computes the Gini coefficient of the write counts, an additional
// uniformity metric (0 = perfectly balanced, →1 = concentrated) used by the
// ablation studies. It is not part of the paper's tables.
func Gini(writes []uint64) float64 {
	n := len(writes)
	if n == 0 {
		return 0
	}
	sorted := append([]uint64(nil), writes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var cum, weighted float64
	for i, w := range sorted {
		weighted += float64(i+1) * float64(w)
		cum += float64(w)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// Histogram buckets write counts into nBuckets equal-width buckets between
// 0 and the maximum (inclusive). It returns the bucket counts and the bucket
// width. Used by examples to render wear profiles.
func Histogram(writes []uint64, nBuckets int) (buckets []int, width uint64) {
	buckets = make([]int, nBuckets)
	if len(writes) == 0 || nBuckets == 0 {
		return buckets, 1
	}
	var max uint64
	for _, w := range writes {
		if w > max {
			max = w
		}
	}
	width = max/uint64(nBuckets) + 1
	for _, w := range writes {
		buckets[w/width]++
	}
	return buckets, width
}

// MaxLifetime is the sentinel for an unbounded lifetime. The convention,
// shared by internal/verify and internal/cost: a run that writes no device
// never wears one out, and an endurance budget of zero means "no budget" —
// both live forever. Renderers print it as "unlimited" (FormatLifetime);
// JSON reports carry the raw sentinel.
const MaxLifetime = math.MaxUint64

// Lifetime estimates how many complete executions of a program a memory
// survives, given a per-device endurance budget: endurance divided by the
// hottest device's writes per run. A zero-write run or a zero (absent)
// endurance budget returns MaxLifetime.
func Lifetime(writesPerRun []uint64, endurance uint64) uint64 {
	var max uint64
	for _, w := range writesPerRun {
		if w > max {
			max = w
		}
	}
	if max == 0 || endurance == 0 {
		return MaxLifetime
	}
	return endurance / max
}

// FormatLifetime renders a lifetime for humans, spelling the MaxLifetime
// sentinel out as "unlimited" instead of printing 2^64-1.
func FormatLifetime(runs uint64) string {
	if runs == MaxLifetime {
		return "unlimited"
	}
	return strconv.FormatUint(runs, 10)
}
