package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionRejectsBeyondQueue(t *testing.T) {
	a := newAdmission(1, 1)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second acquisition queues; run it in a goroutine since it blocks.
	got2 := make(chan error, 1)
	var rel2 func()
	go func() {
		var err error
		rel2, err = a.acquire(context.Background())
		got2 <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queuedWaiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third: queue full.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("want errQueueFull, got %v", err)
	}
	if ra := a.retryAfter(); ra < time.Second || ra > 60*time.Second {
		t.Fatalf("retryAfter out of range: %v", ra)
	}
	rel1()
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
	rel2()
	if a.running() != 0 || a.queuedWaiting() != 0 {
		t.Fatalf("tokens leaked: running=%d queued=%d", a.running(), a.queuedWaiting())
	}
	// Everything released: a fresh acquisition must be immediate.
	rel3, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel3()
}

func TestAdmissionHonoursContextWhileQueued(t *testing.T) {
	a := newAdmission(1, 2)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if a.queuedWaiting() != 0 {
		t.Fatal("cancelled waiter leaked its queue token")
	}
	rel()
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newAdmission(2, 2)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op, not a token underflow
	if a.running() != 0 {
		t.Fatal("double release corrupted slot accounting")
	}
}
