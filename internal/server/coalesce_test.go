package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"plim"
)

func cycleEvent(n int) plim.Event {
	return plim.EventRewriteCycle{Function: "f", Cycle: n, Effort: 5, Nodes: 10}
}

func TestFlightReplaysBufferedEventsToLateSubscribers(t *testing.T) {
	f := newFlight("k")
	f.publish(cycleEvent(1))
	f.publish(cycleEvent(2))
	done := response{status: http.StatusOK, body: []byte("{}\n")}

	var gotMu sync.Mutex
	var got []plim.Event
	streamed := make(chan error, 1)
	go func() {
		resp, err := f.stream(context.Background(), func(ev plim.Event) error {
			gotMu.Lock()
			got = append(got, ev)
			gotMu.Unlock()
			return nil
		})
		if err == nil && resp.status != http.StatusOK {
			err = errors.New("wrong response")
		}
		streamed <- err
	}()
	// Let the subscriber replay, then publish one live event and finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gotMu.Lock()
		n := len(got)
		gotMu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replay never happened")
		}
		time.Sleep(time.Millisecond)
	}
	f.publish(cycleEvent(3))
	f.finish(done)
	if err := <-streamed; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("want 3 events (2 replayed + 1 live), got %d", len(got))
	}
	for i, ev := range got {
		if ev.(plim.EventRewriteCycle).Cycle != i+1 {
			t.Fatalf("events out of order: %v", got)
		}
	}
}

func TestFlightStreamHonoursContext(t *testing.T) {
	f := newFlight("k")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := f.stream(ctx, func(plim.Event) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestFlightGroupCancelsAbandonedComputations(t *testing.T) {
	g := newFlightGroup()
	f, leader := g.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.setCancel(f, cancel)
	f2, leader2 := g.join("k")
	if leader2 || f2 != f {
		t.Fatal("second join must follow the same flight")
	}
	g.leave(f)
	if ctx.Err() != nil {
		t.Fatal("flight cancelled while a subscriber remains")
	}
	g.leave(f2)
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("abandoned flight was not cancelled")
	}
	// The abandoned flight is unregistered immediately: an identical
	// request arriving while the dying computation winds down must lead a
	// fresh flight, not inherit the cancellation error.
	f3, leader3 := g.join("k")
	if !leader3 || f3 == f {
		t.Fatal("join after abandonment did not start a fresh flight")
	}
}

func TestFlightGroupForgetMakesNextJoinLead(t *testing.T) {
	g := newFlightGroup()
	f, _ := g.join("k")
	g.forget(f)
	f2, leader := g.join("k")
	if !leader || f2 == f {
		t.Fatal("post-forget join did not start a fresh flight")
	}
	// forget of a stale flight must not evict the fresh one.
	g.forget(f)
	if f3, leader := g.join("k"); leader || f3 != f2 {
		t.Fatal("stale forget evicted the live flight")
	}
}

func TestFlightWaitersSeeResponseConcurrently(t *testing.T) {
	f := newFlight("k")
	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := f.wait(context.Background())
			if err == nil && resp.status != http.StatusOK {
				err = errors.New("wrong status")
			}
			errs[i] = err
		}(i)
	}
	f.publish(cycleEvent(1))
	f.finish(response{status: http.StatusOK})
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
