// Package determinism is a lint fixture for the determinism analyzer.
// This file is named codec.go, so every function in it is in scope.
package determinism

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want: time.Now
}

func serialize(fields map[string]int) []string {
	var out []string
	for k := range fields { // want: map iteration
		out = append(out, k)
	}
	return out
}

func serializeSlice(fields []string) []string {
	out := make([]string, 0, len(fields))
	for _, k := range fields { // slices iterate in order: clean
		out = append(out, k)
	}
	return out
}
