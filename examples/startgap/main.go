// Start-gap rotation (extension): the paper balances writes within one
// compiled program; start-gap wear leveling (its reference [8]) rotates the
// logical→physical mapping across repeated executions. This example composes
// the two: the per-run write profile of each compiler configuration is fed
// through a start-gap memory and the achieved lifetimes are compared.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
	"plim/internal/wearlevel"
)

func main() {
	const (
		endurance = 100_000
		psi       = 64 // gap moves every 64 writes
	)

	eng := plim.NewEngine()
	m, err := eng.Benchmark("cavlc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start-gap (ψ=%d) on %s, endurance %d\n\n", psi, m.Name, endurance)
	fmt.Printf("%-11s  %12s  %12s  %8s\n", "config", "no rotation", "start-gap", "gain")

	for _, cfg := range []plim.Config{plim.Naive, plim.MinWrite, plim.Full} {
		rep, err := eng.Run(context.Background(), m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		profile := rep.Result.WriteCounts
		base := wearlevel.Baseline(profile, endurance)
		rot := wearlevel.Simulate(profile, endurance, psi)
		fmt.Printf("%-11s  %12d  %12d  %7.1fx\n",
			cfg.Name, base, rot.Runs, float64(rot.Runs)/float64(base))
	}

	fmt.Println()
	fmt.Println("Rotation helps most when the compiler leaves skew behind (naive);")
	fmt.Println("after full endurance-aware compilation the profile is already flat,")
	fmt.Println("so start-gap adds little beyond its copy overhead — compile-time and")
	fmt.Println("run-time wear leveling are complementary, not redundant.")
}
