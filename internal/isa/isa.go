// Package isa defines the PLiM instruction set and the controller that
// executes it on an RRAM crossbar.
//
// PLiM (Gaillardon et al., DATE 2016) is a single-instruction machine: every
// instruction is a resistive majority
//
//	RM3 A, B → Z        Z ← ⟨A B̄ Z⟩
//
// where the operands A and B are either constants (applied by the controller
// as bias voltages) or non-destructive reads of memory locations, and Z is a
// memory location that receives the result with a single write pulse.
// Presets, copies and inversions are RM3 instructions with constant
// operands:
//
//	RM3 0, 1 → Z        Z ← 0
//	RM3 1, 0 → Z        Z ← 1
//	RM3 x, 0 → Z        Z ← x      (requires Z = 0)
//	RM3 0, x → Z        Z ← x̄      (requires Z = 1)
//
// The package provides the program container (with primary-input and
// primary-output cell maps), a textual assembly format, a compact binary
// encoding, and the interpreter used to validate compiled programs against
// their source MIGs.
package isa

import (
	"fmt"

	"plim/internal/rram"
)

// OperandKind distinguishes constant operands from memory reads.
type OperandKind uint8

// Operand kinds.
const (
	OpConst0 OperandKind = iota
	OpConst1
	OpCell
)

// Operand is an RM3 source operand.
type Operand struct {
	Kind OperandKind
	Addr uint32 // valid when Kind == OpCell
}

// Constant and cell operand constructors.
var (
	Zero = Operand{Kind: OpConst0}
	One  = Operand{Kind: OpConst1}
)

// Cell returns a memory-read operand.
func Cell(addr uint32) Operand { return Operand{Kind: OpCell, Addr: addr} }

// Const returns the constant operand for v.
func Const(v bool) Operand {
	if v {
		return One
	}
	return Zero
}

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpConst0:
		return "#0"
	case OpConst1:
		return "#1"
	default:
		return fmt.Sprintf("@%d", o.Addr)
	}
}

// Instruction is one RM3 operation.
type Instruction struct {
	A, B Operand
	Z    uint32
}

// String renders the instruction in assembly syntax.
func (i Instruction) String() string {
	return fmt.Sprintf("RM3 %s, %s -> @%d", i.A, i.B, i.Z)
}

// PORef locates a primary output in the array. Complemented outputs only
// appear when the compiler is configured not to materialize them; the
// default flow materializes complements so Neg is normally false.
type PORef struct {
	Addr uint32
	Neg  bool
}

// Program is a straight-line PLiM program together with its memory
// interface: which cell holds each primary input before execution and which
// cell holds each primary output afterwards.
type Program struct {
	Name  string
	Insts []Instruction
	// NumCells is the size of the address space the program touches
	// (the paper's #R, including primary-input cells).
	NumCells uint32
	// PICells[i] is the cell preloaded with primary input i.
	PICells []uint32
	// POs[i] locates primary output i after execution.
	POs []PORef
}

// NumInstructions returns the paper's #I metric.
func (p *Program) NumInstructions() int { return len(p.Insts) }

// Validate checks that all addresses are within NumCells and PI cells are
// unique.
func (p *Program) Validate() error {
	//plim:alloc-ok validation map sized by PI count, once per compile
	seen := make(map[uint32]int, len(p.PICells))
	for i, c := range p.PICells {
		if c >= p.NumCells {
			return fmt.Errorf("isa: PI %d cell %d out of range %d", i, c, p.NumCells)
		}
		if j, dup := seen[c]; dup {
			return fmt.Errorf("isa: PI %d and %d share cell %d", j, i, c)
		}
		seen[c] = i
	}
	for i, po := range p.POs {
		if po.Addr >= p.NumCells {
			return fmt.Errorf("isa: PO %d cell %d out of range %d", i, po.Addr, p.NumCells)
		}
	}
	for n, ins := range p.Insts {
		if ins.Z >= p.NumCells {
			return fmt.Errorf("isa: inst %d destination %d out of range %d", n, ins.Z, p.NumCells)
		}
		for _, op := range [2]Operand{ins.A, ins.B} {
			if op.Kind == OpCell && op.Addr >= p.NumCells {
				return fmt.Errorf("isa: inst %d operand %s out of range %d", n, op, p.NumCells)
			}
		}
	}
	return nil
}

// Fingerprint returns a 64-bit FNV-1a content hash of the program: the
// address space, every instruction and the PI/PO cell maps. The name is
// deliberately excluded so identical compilations of the same function
// share a fingerprint. It keys executor plan caches and serving-layer
// coalescing (see internal/exec and internal/server).
func (p *Program) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	operand := func(o Operand) uint64 { return uint64(o.Kind)<<32 | uint64(o.Addr) }
	mix(uint64(p.NumCells))
	mix(uint64(len(p.Insts)))
	for _, ins := range p.Insts {
		mix(operand(ins.A))
		mix(operand(ins.B))
		mix(uint64(ins.Z))
	}
	mix(uint64(len(p.PICells)))
	for _, c := range p.PICells {
		mix(uint64(c))
	}
	mix(uint64(len(p.POs)))
	for _, po := range p.POs {
		v := uint64(po.Addr)
		if po.Neg {
			v |= 1 << 32
		}
		mix(v)
	}
	return h
}

// StaticWriteCounts computes per-cell write counts by scanning the
// instruction stream. PLiM programs are straight-line, so static counts are
// exact and must agree with the interpreter's measured counts — a property
// the tests verify.
func (p *Program) StaticWriteCounts() []uint64 {
	counts := make([]uint64, p.NumCells)
	for _, ins := range p.Insts {
		counts[ins.Z]++
	}
	return counts
}

// Controller executes programs against a crossbar, mimicking the PLiM
// finite-state machine: fetch, read A, read B, write Z. The zero value is
// not usable; use NewController.
type Controller struct {
	xbar *rram.Crossbar
	// PC is the program counter after the last Run (instructions retired).
	PC int
}

// NewController wraps a crossbar.
func NewController(x *rram.Crossbar) *Controller { return &Controller{xbar: x} }

// Crossbar returns the wrapped array.
func (c *Controller) Crossbar() *rram.Crossbar { return c.xbar }

// LoadInputs preloads the primary-input cells of p with the given values.
// Preloading models data already resident in memory and does not age
// devices.
func (c *Controller) LoadInputs(p *Program, inputs []bool) error {
	if len(inputs) != len(p.PICells) {
		return fmt.Errorf("isa: got %d inputs, want %d", len(inputs), len(p.PICells))
	}
	for i, cell := range p.PICells {
		c.xbar.Preload(cell, inputs[i])
	}
	return nil
}

// Run executes the whole program. On a worn-out device it stops and returns
// the failing instruction index wrapped in the error.
func (c *Controller) Run(p *Program) error {
	c.PC = 0
	for n, ins := range p.Insts {
		if err := c.Step(ins); err != nil {
			return fmt.Errorf("isa: inst %d (%s): %w", n, ins, err)
		}
		c.PC = n + 1
	}
	return nil
}

// Step executes a single instruction.
func (c *Controller) Step(ins Instruction) error {
	a := c.operand(ins.A)
	b := c.operand(ins.B)
	return c.xbar.RM3(a, b, ins.Z)
}

func (c *Controller) operand(o Operand) bool {
	switch o.Kind {
	case OpConst0:
		return false
	case OpConst1:
		return true
	default:
		return c.xbar.Read(o.Addr)
	}
}

// ReadOutputs returns the primary-output values after execution.
func (c *Controller) ReadOutputs(p *Program) []bool {
	out := make([]bool, len(p.POs))
	for i, po := range p.POs {
		v := c.xbar.Read(po.Addr)
		if po.Neg {
			v = !v
		}
		out[i] = v
	}
	return out
}

// Execute is a convenience wrapper: it allocates a fitting crossbar,
// preloads the inputs, runs the program and returns the outputs together
// with the crossbar for inspection.
func Execute(p *Program, inputs []bool, opts ...rram.Option) ([]bool, *rram.Crossbar, error) {
	x := rram.NewLinear(int(p.NumCells), opts...)
	c := NewController(x)
	if err := c.LoadInputs(p, inputs); err != nil {
		return nil, nil, err
	}
	if err := c.Run(p); err != nil {
		return nil, x, err
	}
	return c.ReadOutputs(p), x, nil
}
