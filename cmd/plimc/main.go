// plimc compiles a Boolean function (one of the paper's benchmarks or a
// .mig netlist) into a PLiM RM3 program under a chosen endurance
// configuration, reporting the paper's #I/#R/write-distribution metrics.
//
// Examples:
//
//	plimc -bench adder -config full
//	plimc -bench div -config full -cap 20 -asm div.plim
//	plimc -in design.mig -config naive -o design.bin -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"plim/internal/core"
	"plim/internal/mig"
	"plim/internal/suite"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (see -list)")
		inFile    = flag.String("in", "", "input .mig netlist (alternative to -bench)")
		cfgName   = flag.String("config", "full", "configuration: naive|compiler21|minwrite|rewriting|full")
		cap       = flag.Uint64("cap", 0, "maximum write count per device (0 = unlimited)")
		effort    = flag.Int("effort", core.DefaultEffort, "MIG rewriting cycles")
		shrink    = flag.Int("shrink", 1, "divide benchmark datapath widths (quick runs)")
		outBin    = flag.String("o", "", "write the compiled program in binary form")
		outAsm    = flag.String("asm", "", "write the compiled program as assembly")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		showStats = flag.Bool("stats", true, "print compilation statistics")
	)
	flag.Parse()

	if *list {
		for _, n := range suite.Names() {
			info, _ := suite.Get(n)
			kind := "functional"
			if info.Synthetic {
				kind = "synthetic"
			}
			fmt.Printf("%-12s %4d/%-4d %s\n", n, info.PI, info.PO, kind)
		}
		return
	}

	m, err := loadMIG(*benchName, *inFile, *shrink)
	if err != nil {
		fatal(err)
	}
	cfg, err := configByName(*cfgName, *cap)
	if err != nil {
		fatal(err)
	}
	rep, err := core.Run(m, cfg, *effort)
	if err != nil {
		fatal(err)
	}
	if *showStats {
		fmt.Printf("function    %s (pi=%d po=%d maj=%d)\n", m.Name, m.NumPIs(), m.NumPOs(), m.Statistics().MajNodes)
		fmt.Printf("config      %s\n", cfg.Name)
		if cfg.Rewrite != core.RewriteNone {
			fmt.Printf("rewriting   %d → %d nodes in %d cycles\n",
				rep.Rewrite.NodesBefore, rep.Rewrite.NodesAfter, rep.Rewrite.Cycles)
		}
		fmt.Printf("#I          %d\n#R          %d\n", rep.NumInstructions(), rep.NumRRAMs())
		fmt.Printf("writes      min=%d max=%d stdev=%.2f\n",
			rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)
		fmt.Printf("lifetime    %d executions at endurance 1e10\n", rep.Lifetime(1e10))
	}
	if *outBin != "" {
		if err := writeFile(*outBin, rep.Result.Program.WriteBinary); err != nil {
			fatal(err)
		}
	}
	if *outAsm != "" {
		if err := writeFile(*outAsm, rep.Result.Program.WriteAsm); err != nil {
			fatal(err)
		}
	}
}

func loadMIG(bench, file string, shrink int) (*mig.MIG, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("plimc: use either -bench or -in, not both")
	case bench != "":
		return suite.BuildScaled(bench, shrink)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mig.Read(f)
	}
	return nil, fmt.Errorf("plimc: need -bench or -in (try -list)")
}

func configByName(name string, cap uint64) (core.Config, error) {
	var cfg core.Config
	switch name {
	case "naive":
		cfg = core.Naive
	case "compiler21":
		cfg = core.Compiler21
	case "minwrite":
		cfg = core.MinWrite
	case "rewriting":
		cfg = core.Rewriting
	case "full":
		cfg = core.Full
	default:
		return cfg, fmt.Errorf("plimc: unknown config %q", name)
	}
	if cap > 0 {
		cfg.MaxWrites = cap
		cfg.Name += fmt.Sprintf("+cap%d", cap)
	}
	return cfg, nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
