// plimtab regenerates the evaluation tables of the DATE 2017 paper:
//
//	plimtab -table 1                 Table I  (write distribution, 5 configs)
//	plimtab -table 2                 Table II (#I and #R)
//	plimtab -table 3                 Table III (max-write cap trade-off)
//	plimtab -table cost              energy/latency/lifetime per config (extension)
//	plimtab -table ablation          per-technique isolation (extension)
//	plimtab -table all -format md    everything, Markdown (EXPERIMENTS.md)
//
// The cost table prices every compiled program under an instruction cost
// model — the built-in default, or a JSON model given with -cost-model
// (see plim.LoadCostModel). Pricing never changes the compiled programs,
// so Tables I–III are byte-identical whatever the model.
//
// Flags select benchmarks, rewriting effort, output format and a datapath
// shrink factor for quick runs. The suite runs on a plim.Engine: Ctrl-C
// cancels between benchmarks, and -v streams per-benchmark and per-cycle
// progress events.
//
// With -cache-dir (default $PLIM_CACHE_DIR) rewrite results and benchmark
// builds persist on disk across invocations, so regenerating a table — or
// compiling one of its benchmarks with plimc afterwards — skips every
// rewrite an earlier run already performed, byte-identically. A cache
// summary is printed to stderr unless -q is given.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"plim"
)

func main() {
	var (
		table     = flag.String("table", "all", "1|2|3|cost|ablation|all")
		costPath  = flag.String("cost-model", "", "JSON instruction cost model (default: built-in)")
		benches   = flag.String("benchmarks", "", "comma-separated subset (default: all 18)")
		effort    = flag.Int("effort", plim.DefaultEffort, "MIG rewriting cycles (0 = none)")
		shrink    = flag.Int("shrink", 1, "divide datapath widths (quick runs)")
		format    = flag.String("format", "text", "text|md|csv")
		outFile   = flag.String("out", "", "write to file instead of stdout")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel benchmark workers")
		caps      = flag.String("caps", "10,20,50,100", "write caps for Table III")
		quiet     = flag.Bool("q", false, "suppress progress output")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON trace of the run (with -v: also a span tree on stderr)")
		verbose   = flag.Bool("v", false, "stream per-benchmark progress events to stderr")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared across plimtab/plimc invocations (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engOpts := []plim.Option{
		plim.WithEffort(*effort),
		plim.WithShrink(*shrink),
		plim.WithWorkers(*workers),
		plim.WithPersistentCache(*cacheDir),
		plim.WithTrace(*tracePath != ""),
	}
	if *costPath != "" {
		cm, err := plim.LoadCostModel(*costPath)
		if err != nil {
			fatal(err)
		}
		engOpts = append(engOpts, plim.WithCostModel(cm))
	}
	if *verbose && !*quiet {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			switch ev.(type) {
			case plim.EventRewriteCycle:
				return // per-cycle spam is only useful for single runs; see plimc -v
			case plim.EventCompileStart:
				return // the matching EventCompileDone carries the payload
			case plim.EventTaskStart:
				return // the matching EventTaskDone carries the timing
			}
			fmt.Fprintln(os.Stderr, plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	render := func(g *plim.Grid) {
		switch *format {
		case "text":
			fmt.Fprintln(out, g.Text())
		case "md":
			fmt.Fprintln(out, g.Markdown())
		case "csv":
			fmt.Fprintln(out, g.CSV())
		default:
			fatal(fmt.Errorf("plimtab: unknown format %q", *format))
		}
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}

	want := func(name string) bool { return *table == "all" || *table == name }
	start := time.Now()

	if want("1") || want("2") || want("cost") {
		progress("running Table I/II configurations...")
		sr, err := eng.RunSuite(ctx, plim.TableIConfigs(), names...)
		if err != nil {
			fatal(err)
		}
		if want("1") {
			d, err := plim.TableI(sr)
			if err != nil {
				fatal(err)
			}
			render(d.Grid())
		}
		if want("2") {
			d, err := plim.TableII(sr)
			if err != nil {
				fatal(err)
			}
			render(d.Grid())
		}
		if want("cost") {
			d, err := plim.TableCost(sr)
			if err != nil {
				fatal(err)
			}
			render(d.Grid())
		}
	}

	if want("3") {
		progress("running Table III cap sweep...")
		var cfgs []plim.Config
		for _, c := range strings.Split(*caps, ",") {
			var w uint64
			if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &w); err != nil {
				fatal(fmt.Errorf("plimtab: bad cap %q", c))
			}
			cfgs = append(cfgs, plim.FullCap(w))
		}
		sr, err := eng.RunSuite(ctx, cfgs, names...)
		if err != nil {
			fatal(err)
		}
		d, err := plim.TableIII(sr)
		if err != nil {
			fatal(err)
		}
		render(d.Grid())
	}

	if want("ablation") {
		progress("running ablation configurations...")
		sr, err := eng.RunSuite(ctx, plim.AblationConfigs(), names...)
		if err != nil {
			fatal(err)
		}
		d, err := plim.TableI(sr)
		if err != nil {
			fatal(err)
		}
		g := d.Grid()
		g.Title = "Ablation: each endurance technique in isolation (STDEV improvement vs naive)"
		render(g)
	}

	if *tracePath != "" {
		if err := writeTrace(eng, *tracePath, *verbose && !*quiet); err != nil {
			fatal(err)
		}
	}
	if s, ok := eng.CacheSummary(); ok {
		progress(s)
	}
	progress(fmt.Sprintf("done in %v", time.Since(start).Round(time.Millisecond)))
}

// writeTrace exports the engine's recorded trace as Chrome trace-event
// JSON; with verbose set it also renders the span tree to stderr.
func writeTrace(eng *plim.Engine, path string, verbose bool) error {
	tr := eng.TakeTrace()
	if tr == nil {
		return fmt.Errorf("plimtab: -trace: no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "trace:")
		tr.Render(os.Stderr)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
