package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// errQueueFull is returned by acquire when the bounded wait queue already
// holds its configured number of waiters; the handler answers 429 with a
// Retry-After estimate instead of queueing unboundedly.
var errQueueFull = errors.New("server: admission queue full")

// admission is the server's bounded work queue: at most concurrency
// computations run at once, at most queueDepth more wait for a slot, and
// everything beyond that is rejected immediately. Waiting respects the
// caller's context, so a request deadline spent in the queue is a deadline
// honoured.
type admission struct {
	concurrency int
	queueDepth  int
	slots       chan struct{} // occupied while a computation runs
	queue       chan struct{} // occupied while waiting *or* running

	mu   sync.Mutex
	ewma float64 // exponentially-weighted average service seconds
}

func newAdmission(concurrency, queueDepth int) *admission {
	return &admission{
		concurrency: concurrency,
		queueDepth:  queueDepth,
		slots:       make(chan struct{}, concurrency),
		queue:       make(chan struct{}, concurrency+queueDepth),
	}
}

// acquire claims a run slot, waiting in the bounded queue if necessary.
// It returns a release function on success, errQueueFull when the queue is
// at capacity, or ctx.Err() when the caller's context expires while
// waiting. release must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, errQueueFull
	}
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		<-a.queue
		return nil, ctx.Err()
	}
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.observe(time.Since(start))
			<-a.slots
			<-a.queue
		})
	}, nil
}

// observe folds one service time into the EWMA that retryAfter scales.
func (a *admission) observe(d time.Duration) {
	const alpha = 0.3
	a.mu.Lock()
	if a.ewma == 0 {
		a.ewma = d.Seconds()
	} else {
		a.ewma = alpha*d.Seconds() + (1-alpha)*a.ewma
	}
	a.mu.Unlock()
}

// running reports how many computations hold a slot right now.
func (a *admission) running() int { return len(a.slots) }

// queuedWaiting reports how many admitted computations are waiting for a
// slot (queue occupancy minus the running ones).
func (a *admission) queuedWaiting() int {
	q := len(a.queue) - len(a.slots)
	if q < 0 {
		q = 0 // the two reads race benignly
	}
	return q
}

// retryAfter estimates when a rejected client should try again: the queue's
// current backlog divided by the service rate, using the observed average
// service time (1s before any observation), clamped to [1s, 60s].
func (a *admission) retryAfter() time.Duration {
	a.mu.Lock()
	ewma := a.ewma
	a.mu.Unlock()
	if ewma <= 0 {
		ewma = 1
	}
	backlog := float64(len(a.queue)) / float64(a.concurrency)
	secs := math.Ceil(ewma * backlog)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}
