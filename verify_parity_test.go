package plim

import (
	"context"
	"testing"

	"plim/internal/verify"
)

// TestStaticDynamicWriteParity pins the contract the whole endurance model
// rests on: for straight-line RM3 programs, the verifier's static per-cell
// write counts are exact — equal to the allocator's accounting, to the
// wear the scalar interpreter's crossbar records, and to the batched
// executor's aggregate wear divided by the lane count. It runs every
// Table I configuration plus the capped Table III configuration, with the
// engine's verification stage enabled (so a violation fails compilation
// itself).
func TestStaticDynamicWriteParity(t *testing.T) {
	ctx := context.Background()
	const lanes = 64

	eng := NewEngine(WithShrink(4), WithVerify(true))
	if !eng.Verified() {
		t.Fatal("WithVerify(true) not reflected by Verified()")
	}
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}

	configs := append(TableIConfigs(), FullCap(50))
	for _, cfg := range configs {
		t.Run(cfg.Name, func(t *testing.T) {
			rep, err := eng.Run(ctx, m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			vr := rep.Verify
			if vr == nil {
				t.Fatal("engine ran WithVerify but Report.Verify is nil")
			}
			if !vr.OK() {
				t.Fatalf("verifier rejected a production compile: %v", vr.Err())
			}
			if len(vr.DeadWrites) != 0 {
				t.Fatalf("compiler emitted %d dead writes: %v", len(vr.DeadWrites), vr.DeadWrites)
			}

			p := rep.Result.Program
			static := vr.WriteCounts
			mustEqual(t, "allocator", static, rep.Result.WriteCounts, 1)
			mustEqual(t, "isa.StaticWriteCounts", static, p.StaticWriteCounts(), 1)

			// Scalar interpreter: one run on a fresh crossbar.
			inputs := make([]bool, len(p.PICells))
			for i := range inputs {
				inputs[i] = i%3 == 0
			}
			_, xbar, err := Execute(p, inputs)
			if err != nil {
				t.Fatal(err)
			}
			mustEqual(t, "interpreter crossbar", static, xbar.WriteCounts(int(p.NumCells)), 1)

			// Batched executor: aggregate wear over 64 lanes is 64× static.
			b := RandomBatch(len(p.PICells), lanes, 7)
			res, err := ExecuteBatch(p, b, ExecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mustEqual(t, "batched executor", static, res.Writes, lanes)

			// And the library-level cross-check agrees.
			if !verify.CheckWriteParity(vr, rep.Result.WriteCounts, "allocator-recheck") {
				t.Fatalf("CheckWriteParity diverged: %v", vr.Violations)
			}
		})
	}
}

// mustEqual asserts got[i] == scale*static[i] for every cell.
func mustEqual(t *testing.T, source string, static, got []uint64, scale uint64) {
	t.Helper()
	if len(got) != len(static) {
		t.Fatalf("%s: %d cells, verifier saw %d", source, len(got), len(static))
	}
	for i := range static {
		if got[i] != static[i]*scale {
			t.Fatalf("%s: cell %d wrote %d times, static count %d (scale %d): static and dynamic wear diverged",
				source, i, got[i], static[i], scale)
		}
	}
}
