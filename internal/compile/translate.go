package compile

import (
	"fmt"

	"plim/internal/isa"
	"plim/internal/mig"
)

// contribution is one of the three values entering a node's majority.
type contribution struct {
	isConst  bool
	constVal bool       // value when isConst
	node     mig.NodeID // child node when !isConst
	comp     bool       // contribution is the complement of the child's value
}

// slot costs discovered during planning.
type slotPlan struct {
	// extraInsts is 0 (free), 1 (preset) or 2 (preset+copy / preset+invert).
	extraInsts int
	// freshCells is 1 when the slot needs a new device.
	freshCells int
	// inPlace marks a Z slot that overwrites the dying child's device.
	inPlace bool
}

type plan struct {
	perm  [3]int // contribution index for slots A, B, Z
	insts int
	fresh int
	valid bool
}

const (
	slotA = 0
	slotB = 1
	slotZ = 2
)

// translate emits the RM3 sequence computing node n and updates liveness.
func (c *compiler) translate(n mig.NodeID) error {
	ch := c.m.Children(n)
	var contribs [3]contribution
	for i, s := range ch {
		if s.IsConst() {
			contribs[i] = contribution{isConst: true, constVal: s == mig.Const1}
			continue
		}
		if !c.computed[s.Node()] {
			return fmt.Errorf("compile: node %d selected before child %d", n, s.Node())
		}
		contribs[i] = contribution{node: s.Node(), comp: s.Complemented()}
	}

	best := plan{valid: false}
	perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		p := c.evaluatePlan(n, contribs, perm)
		if !p.valid {
			continue
		}
		if !best.valid || c.planLess(p, best) {
			best = p
		}
	}
	if !best.valid {
		return fmt.Errorf("compile: node %d has no feasible operand assignment", n)
	}
	return c.executePlan(n, contribs, best)
}

// planLess orders plans: fewest instructions, fewest fresh devices, then
// permutation order for determinism. Deliberately NOT a function of write
// counts: the paper's minimum-write strategy lives entirely in the
// allocator, which keeps translation identical across allocation policies
// (the paper's observation that min-write changes neither #I nor #R falls
// out structurally). An earlier revision broke ties toward the least-written
// in-place destination; on mux-heavy circuits that systematically released
// the hottest device into a near-empty free pool, which then recycled it
// for the next copy destination, concentrating writes instead of spreading
// them.
func (c *compiler) planLess(a, b plan) bool {
	if a.insts != b.insts {
		return a.insts < b.insts
	}
	if a.fresh != b.fresh {
		return a.fresh < b.fresh
	}
	return false // earlier permutation wins (evaluation order)
}

// evaluatePlan costs one operand assignment without emitting anything.
func (c *compiler) evaluatePlan(n mig.NodeID, contribs [3]contribution, perm [3]int) plan {
	p := plan{perm: perm, valid: true}
	for slot := slotA; slot <= slotZ; slot++ {
		ct := contribs[perm[slot]]
		sp, ok := c.evaluateSlot(n, ct, slot)
		if !ok {
			return plan{valid: false}
		}
		p.insts += sp.extraInsts
		p.fresh += sp.freshCells
	}
	p.insts++ // the main RM3
	return p
}

func (c *compiler) evaluateSlot(n mig.NodeID, ct contribution, slot int) (slotPlan, bool) {
	switch slot {
	case slotA:
		if ct.isConst || !ct.comp {
			return slotPlan{}, true
		}
		return slotPlan{extraInsts: 2, freshCells: 1}, true // inverted copy
	case slotB:
		if ct.isConst || ct.comp {
			return slotPlan{}, true
		}
		return slotPlan{extraInsts: 2, freshCells: 1}, true // inverted copy
	default: // slotZ
		if ct.isConst {
			return slotPlan{extraInsts: 1, freshCells: 1}, true // preset
		}
		if !ct.comp && c.isLastUse(n, ct.node) && c.alloc.CanWrite(c.cell[ct.node], 1) {
			return slotPlan{inPlace: true}, true
		}
		// Plain or inverted copy into a fresh device.
		return slotPlan{extraInsts: 2, freshCells: 1}, true
	}
}

// isLastUse reports whether node n is the last consumer of child cn: the
// child's remaining uses all come from n's own fanin edges.
func (c *compiler) isLastUse(n mig.NodeID, cn mig.NodeID) bool {
	uses := int32(0)
	for _, s := range c.m.Children(n) {
		if s.Node() == cn {
			uses++
		}
	}
	return c.remaining[cn] == uses
}

// executePlan emits the instructions for the chosen plan and updates
// compiler state.
func (c *compiler) executePlan(n mig.NodeID, contribs [3]contribution, p plan) error {
	var ops [2]isa.Operand // A and B
	// Inverted copies to release after the main RM3: at most one per
	// A/B slot, so a fixed array avoids a per-node allocation.
	var temps [2]uint32
	nTemps := 0
	var dest uint32
	inPlaceChild := mig.NodeID(0)
	hasInPlace := false

	// Materialize the destination first (its copy reads child devices that
	// nothing below destroys), then the temporaries.
	ctZ := contribs[p.perm[slotZ]]
	switch {
	case ctZ.isConst:
		dest = c.alloc.Acquire(2)
		c.emitPreset(dest, ctZ.constVal)
	case !ctZ.comp && c.isLastUse(n, ctZ.node) && c.alloc.CanWrite(c.cell[ctZ.node], 1):
		dest = c.cell[ctZ.node]
		inPlaceChild = ctZ.node
		hasInPlace = true
	case ctZ.comp:
		// Fresh device preloaded with the complemented child value.
		dest = c.alloc.Acquire(3)
		c.emitPreset(dest, true)
		c.emit(isa.Instruction{A: isa.Zero, B: isa.Cell(c.cell[ctZ.node]), Z: dest})
	default:
		// Fresh device preloaded with the plain child value.
		dest = c.alloc.Acquire(3)
		c.emitPreset(dest, false)
		c.emit(isa.Instruction{A: isa.Cell(c.cell[ctZ.node]), B: isa.Zero, Z: dest})
	}

	for slot := slotA; slot <= slotB; slot++ {
		ct := contribs[p.perm[slot]]
		switch {
		case ct.isConst:
			v := ct.constVal
			if slot == slotB {
				v = !v // the operation inverts B
			}
			ops[slot] = isa.Const(v)
		case (slot == slotA && !ct.comp) || (slot == slotB && ct.comp):
			ops[slot] = isa.Cell(c.cell[ct.node])
		default:
			// Inverted copy: tmp ← ¬child.
			tmp := c.alloc.Acquire(2)
			c.emitPreset(tmp, true)
			c.emit(isa.Instruction{A: isa.Zero, B: isa.Cell(c.cell[ct.node]), Z: tmp})
			ops[slot] = isa.Cell(tmp)
			temps[nTemps] = tmp
			nTemps++
		}
	}

	c.emit(isa.Instruction{A: ops[slotA], B: ops[slotB], Z: dest})

	// Liveness updates: child uses are consumed, then scratch devices die.
	// Children release before temporaries so that, under the naive LIFO
	// free list, the next scratch request reuses a freshly dead child
	// instead of ping-ponging on the same temporary device forever.
	for _, s := range c.m.Children(n) {
		cn := s.Node()
		if cn == 0 {
			continue
		}
		c.remaining[cn]--
		if c.remaining[cn] < 0 {
			return fmt.Errorf("compile: negative remaining uses on node %d", cn)
		}
	}
	ch := c.m.Children(n)
	for i, s := range ch {
		cn := s.Node()
		if cn == 0 {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if ch[j].Node() == cn {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if c.remaining[cn] == 0 && !(hasInPlace && cn == inPlaceChild) {
			c.alloc.Release(c.cell[cn])
		}
	}
	for _, tmp := range temps[:nTemps] {
		c.alloc.Release(tmp)
	}

	c.cell[n] = dest
	c.computed[n] = true
	return nil
}
