package diskcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// storeN stores n distinct benchmark entries and returns their paths in
// store order.
func storeN(t *testing.T, c *Cache, n int) []string {
	t.Helper()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		m := testMIG("gc", i)
		if err := c.StoreBenchmark("gc", i+1, m); err != nil {
			t.Fatal(err)
		}
		paths[i] = benchPath(c.Dir(), "gc", i+1)
	}
	return paths
}

// backdate moves an entry's modification time into the past.
func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestGCNoLimitsOnlyReports(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 3)
	st, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 3 || st.Removed != 0 || st.Entries != 3 || st.Bytes <= 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("entry %s vanished: %v", p, err)
		}
	}
}

func TestGCMaxAgeDeletesOldEntries(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 3)
	backdate(t, paths[0], 48*time.Hour)
	backdate(t, paths[1], 2*time.Hour)
	st, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 || st.Entries != 2 {
		t.Fatalf("want exactly the 48h entry removed, got %+v", st)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatalf("old entry survived: %v", err)
	}
	for _, p := range paths[1:] {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("young entry removed: %v", err)
		}
	}
}

func TestGCMaxBytesEvictsOldestFirst(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 4)
	// Stamp distinct ages: paths[0] oldest … paths[3] youngest.
	for i, p := range paths {
		backdate(t, p, time.Duration(len(paths)-i)*time.Hour)
	}
	size := func(p string) int64 {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	var total int64
	for _, p := range paths {
		total += size(p)
	}
	// A budget the two youngest entries fit under but adding half of the
	// second-oldest would bust: exactly the two oldest must go.
	budget := total - size(paths[0]) - size(paths[1])/2
	st, err := c.GC(0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 {
		t.Fatalf("want 2 evictions, got %+v", st)
	}
	if st.Bytes > budget {
		t.Fatalf("still over budget: %+v", st)
	}
	for _, p := range paths[:2] {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("oldest entry %s survived", p)
		}
	}
	for _, p := range paths[2:] {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("youngest entry %s evicted: %v", p, err)
		}
	}
}

func TestGCLoadRefreshesRecency(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 2)
	backdate(t, paths[0], 3*time.Hour)
	backdate(t, paths[1], 2*time.Hour)
	// A hit on the older entry must move it to the young end.
	if _, ok := c.LoadBenchmark("gc", 1); !ok {
		t.Fatal("load miss on stored entry")
	}
	var one int64
	if fi, err := os.Stat(paths[0]); err != nil {
		t.Fatal(err)
	} else {
		one = fi.Size()
	}
	st, err := c.GC(0, one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 {
		t.Fatalf("want 1 eviction, got %+v", st)
	}
	if _, err := os.Stat(paths[0]); err != nil {
		t.Fatal("recently loaded entry was evicted")
	}
	if _, err := os.Stat(paths[1]); !os.IsNotExist(err) {
		t.Fatal("stale entry survived the size sweep")
	}
}

// TestGCSparesConcurrentlyRefreshedEntry pins the load/GC race: an entry
// whose recency a load refreshes after GC's directory scan but before its
// deletion must survive the sweep — the stale scan-time age no longer
// describes it.
func TestGCSparesConcurrentlyRefreshedEntry(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 1)
	backdate(t, paths[0], 48*time.Hour)
	gcTestHookBeforeRemove = func(path string) {
		// A concurrent load hits the entry right now.
		if _, ok := c.LoadBenchmark("gc", 1); !ok {
			t.Error("load miss on stored entry")
		}
	}
	defer func() { gcTestHookBeforeRemove = nil }()
	st, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 {
		t.Fatalf("refreshed entry evicted: %+v", st)
	}
	if _, err := os.Stat(paths[0]); err != nil {
		t.Fatalf("refreshed entry vanished: %v", err)
	}
}

// TestGCToleratesConcurrentlyDeletedEntry: an entry deleted between the
// scan and the eviction (another janitor) is not an error and not counted.
func TestGCToleratesConcurrentlyDeletedEntry(t *testing.T) {
	c := open(t)
	paths := storeN(t, c, 1)
	backdate(t, paths[0], 48*time.Hour)
	gcTestHookBeforeRemove = func(path string) { os.Remove(path) }
	defer func() { gcTestHookBeforeRemove = nil }()
	st, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 || st.RemovedBytes != 0 {
		t.Fatalf("disappeared entry counted as removed: %+v", st)
	}
}

// TestGCConcurrentWithLoads hammers one cache directory with loads (each
// refreshing recency via Chtimes) racing aggressive GC sweeps; run under
// -race this pins the sweep's tolerance of concurrent refreshes and
// deletions. Loads may miss (GC evicts), but nothing may error.
func TestGCConcurrentWithLoads(t *testing.T) {
	c := open(t)
	const entries = 8
	storeN(t, c, entries)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.LoadBenchmark("gc", i%entries+1)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.GC(time.Nanosecond, 1); err != nil {
			t.Errorf("sweep %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGCReapsStaleTemps(t *testing.T) {
	c := open(t)
	stale := filepath.Join(c.Dir(), ".tmp-stale")
	fresh := filepath.Join(c.Dir(), ".tmp-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	backdate(t, stale, 2*staleTempAge)
	st, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TempsRemoved != 1 {
		t.Fatalf("want 1 temp reaped, got %+v", st)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp (possibly a live writer) was reaped")
	}
}

func TestGCIgnoresForeignFiles(t *testing.T) {
	c := open(t)
	storeN(t, c, 1)
	foreign := filepath.Join(c.Dir(), "README.txt")
	if err := os.WriteFile(foreign, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	backdate(t, foreign, 1000*time.Hour)
	st, err := c.GC(time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 1 {
		t.Fatalf("foreign file scanned as entry: %+v", st)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file deleted")
	}
}
