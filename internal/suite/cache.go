package suite

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"plim/internal/diskcache"
	"plim/internal/lru"
	"plim/internal/mig"
	"plim/internal/trace"
)

// errBuildPanicked is what waiters observe when the building caller
// panicked instead of completing; the entry is gone, so they retry.
var errBuildPanicked = errors.New("suite: benchmark build panicked")

// Cache memoizes benchmark generator output per (name, shrink). Every
// generator is deterministic, so a cached graph is structurally identical
// to a fresh build; the expensive word-level construction (and the
// follow-up Cleanup/Validate) runs once.
//
// Cached MIGs are shared between callers and must be treated as read-only.
// The compilation flow only reads its input, so internal/tables hands the
// shared instance straight to the staged runner; plim.Engine.Benchmark
// clones before returning a cached graph to user code.
//
// Concurrent callers of the same key share one build (singleflight).
// Errors (unknown benchmark, validation failure) are not cached. The cache
// is byte-budgeted: completed builds are charged their estimated size
// (mig.MemSize) and least-recently-used completed entries are evicted once
// the total exceeds the budget (in-flight builds are never evicted), so
// engines sweeping many (name, shrink) combinations stay bounded.
type Cache struct {
	mu      sync.Mutex
	entries *lru.Map[buildKey, *buildEntry]

	// disk, when non-nil, is the persistent second tier: an in-memory miss
	// probes the disk before running the generator, and fresh builds are
	// written back (best-effort). Generators are deterministic and their
	// output serializes fingerprint-faithfully, so a disk-served graph is
	// structurally identical to a fresh build.
	disk *diskcache.Cache

	// hits/misses count memory-tier probe outcomes (probes attaching to an
	// in-flight build count as hits). Feeds plimserve_cache_probe_total.
	hits, misses atomic.Uint64
}

type buildKey struct {
	name   string
	shrink int
}

type buildEntry struct {
	done chan struct{}
	m    *mig.MIG
	err  error
}

// NewCache returns an unbounded benchmark cache; long-lived callers should
// prefer NewCacheWithBudget.
func NewCache() *Cache {
	return NewCacheWithBudget(0)
}

// NewCacheWithBudget returns a cache evicting least-recently-used builds
// once their summed estimated bytes exceed budget; budget ≤ 0 means
// unbounded.
func NewCacheWithBudget(budget int) *Cache {
	return &Cache{entries: lru.New[buildKey, *buildEntry](budget)}
}

// SetDisk installs (or, with nil, removes) the persistent second tier.
// It must be called before the cache is shared across goroutines.
func (c *Cache) SetDisk(d *diskcache.Cache) { c.disk = d }

// Len reports the number of cached benchmark builds (including in-flight
// ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.Len()
}

// Budget reports the cache's byte budget (≤ 0 = unbounded).
func (c *Cache) Budget() int { return c.entries.Budget() }

// Probes reports the memory-tier probe counters. Nil-safe.
func (c *Cache) Probes() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// BuildScaled is suite.BuildScaled memoized through the cache. The
// returned MIG is shared: callers must not mutate it. A nil *Cache builds
// afresh.
func (c *Cache) BuildScaled(name string, shrink int) (*mig.MIG, error) {
	return c.BuildScaledContext(context.Background(), name, shrink)
}

// BuildScaledContext is BuildScaled with a context whose trace (if any)
// receives a cache-probe span annotated with the outcome — memory-hit /
// disk-hit / verify-miss / compute — as a child of the enclosing generate
// task span. The context does not cancel the build: generators are fast
// and singleflight-shared, so a build always runs to completion once
// started.
func (c *Cache) BuildScaledContext(ctx context.Context, name string, shrink int) (*mig.MIG, error) {
	if c == nil {
		return BuildScaled(name, shrink)
	}
	sp := trace.StartNoCtx(ctx, "cache", "benchmark-probe")
	if sp.Traced() {
		sp.Attr("benchmark", name)
	}
	key := buildKey{name: name, shrink: shrink}
	first := true
	for {
		c.mu.Lock()
		ent, ok := c.entries.Get(key)
		if first {
			first = false
			if ok {
				c.hits.Add(1)
			} else {
				c.misses.Add(1)
			}
		}
		if !ok {
			e := &buildEntry{done: make(chan struct{})}
			handle := c.entries.Add(key, e)
			c.mu.Unlock()
			// Publish via defer so a panicking generator still unindexes
			// the entry and closes done — waiters here have no context to
			// bail out on, so a stuck entry would deadlock them forever.
			completed := false
			func() {
				defer func() {
					if !completed && e.err == nil {
						e.err = errBuildPanicked
					}
					c.mu.Lock()
					if e.err != nil {
						c.entries.Delete(key)
					} else {
						handle.Evictable = true
						c.entries.SetCost(handle, e.m.MemSize())
						c.entries.EvictExcess(nil)
					}
					c.mu.Unlock()
					close(e.done)
				}()
				if c.disk != nil {
					dm, out := c.disk.ProbeBenchmark(name, shrink)
					if out == diskcache.ProbeHit {
						e.m = dm
						completed = true
						sp.Attr("outcome", "disk-hit")
						sp.End()
						return
					}
					if out == diskcache.ProbeVerifyMiss {
						sp.Attr("outcome", "verify-miss")
					} else {
						sp.Attr("outcome", "compute")
					}
				} else {
					sp.Attr("outcome", "compute")
				}
				sp.End() // generator time belongs to the generate task span
				e.m, e.err = BuildScaled(name, shrink)
				completed = true
				if e.err == nil && c.disk != nil {
					_ = c.disk.StoreBenchmark(name, shrink, e.m)
				}
			}()
			return e.m, e.err
		}
		e := ent.Value
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			sp.Attr("outcome", "memory-hit")
			sp.End()
			return e.m, nil
		}
		// The building caller failed and removed the entry; retry so this
		// caller either rebuilds or reports its own error.
	}
}
