package imply

import (
	"math/rand"
	"strings"
	"testing"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/mig"
	"plim/internal/stats"
)

func TestImplyPrimitiveSemantics(t *testing.T) {
	// q ← p → q over all four combinations, plus FALSE.
	for row := 0; row < 4; row++ {
		p := row&1 == 1
		q := row>>1&1 == 1
		prog := &Program{
			NumCells: 2,
			PICells:  []uint32{0, 1},
			POCells:  []uint32{1},
			Ops:      []Op{{Kind: OpImply, P: 0, Q: 1}},
		}
		out, writes, err := prog.Execute([]bool{p, q})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (!p || q) {
			t.Errorf("IMP(%v,%v) = %v, want %v", p, q, out[0], !p || q)
		}
		if writes[1] != 1 || writes[0] != 0 {
			t.Errorf("write accounting wrong: %v", writes)
		}
	}
	prog := &Program{NumCells: 1, PICells: []uint32{0}, POCells: []uint32{0},
		Ops: []Op{{Kind: OpFalse, Q: 0}}}
	out, _, err := prog.Execute([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] {
		t.Fatal("FALSE must clear the cell")
	}
}

func TestOpString(t *testing.T) {
	if (Op{Kind: OpFalse, Q: 3}).String() != "FALSE @3" {
		t.Fatal("FALSE rendering")
	}
	if (Op{Kind: OpImply, P: 1, Q: 2}).String() != "IMP @1 -> @2" {
		t.Fatal("IMP rendering")
	}
}

func TestExecuteInputMismatch(t *testing.T) {
	prog := &Program{NumCells: 1, PICells: []uint32{0}}
	if _, _, err := prog.Execute(nil); err == nil {
		t.Fatal("want input length error")
	}
}

// compileAndCheck compiles m to IMP and verifies against MIG evaluation on
// all 2^n assignments (n ≤ 10).
func compileAndCheck(t *testing.T, m *mig.MIG) *Program {
	t.Helper()
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumPIs()
	words := make([]uint64, n)
	for a := 0; a < 1<<uint(n); a++ {
		in := make([]bool, n)
		for v := 0; v < n; v++ {
			in[v] = a>>v&1 == 1
			words[v] = 0
			if in[v] {
				words[v] = 1
			}
		}
		out, _, err := prog.Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Eval(words)
		for i := range out {
			if out[i] != (want[i]&1 == 1) {
				t.Fatalf("input %v PO %d: imp %v, mig %v", in, i, out[i], want[i]&1 == 1)
			}
		}
	}
	return prog
}

func TestCompileGates(t *testing.T) {
	m := mig.New("gates")
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	m.AddPO(m.Maj(a, b, c), "maj")
	m.AddPO(m.And(a, b), "and")
	m.AddPO(m.Or(a, c).Not(), "nor")
	m.AddPO(m.Maj(a.Not(), b, c.Not()), "majn")
	m.AddPO(mig.Const1, "one")
	m.AddPO(mig.Const0, "zero")
	compileAndCheck(t, m)
}

func TestCompileRandomMIGs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := mig.New("rnd")
		sigs := []mig.Signal{m.AddPI(""), m.AddPI(""), m.AddPI(""), m.AddPI(""), m.AddPI(""), m.AddPI("")}
		for len(sigs) < 40 {
			pick := func() mig.Signal {
				s := sigs[rng.Intn(len(sigs))]
				if rng.Intn(3) == 0 {
					s = s.Not()
				}
				return s
			}
			sigs = append(sigs, m.Maj(pick(), pick(), pick()))
		}
		for i := 0; i < 4; i++ {
			m.AddPO(sigs[len(sigs)-1-rng.Intn(10)].NotIf(rng.Intn(3) == 0), "")
		}
		m = m.Cleanup()
		compileAndCheck(t, m)
	}
}

// TestWorkDeviceConcentration reproduces the paper's §II claim: IMP
// programs concentrate writes far more than the endurance-managed RM3 flow
// on the same function.
func TestWorkDeviceConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := mig.New("cmp")
	sigs := []mig.Signal{}
	for i := 0; i < 8; i++ {
		sigs = append(sigs, m.AddPI(""))
	}
	for len(sigs) < 120 {
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < 6; i++ {
		m.AddPO(sigs[len(sigs)-1-i], "")
	}
	m = m.Cleanup()

	impProg, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, m.NumPIs())
	_, impWrites, err := impProg.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	impStats := stats.Summarize(impWrites)

	rm3, err := compile.Compile(m, compile.Options{Selection: compile.Endurance, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	rm3Stats := stats.Summarize(rm3.WriteCounts)

	if impStats.Max <= rm3Stats.Max {
		t.Fatalf("IMP max writes %d should exceed endurance-managed RM3 max %d",
			impStats.Max, rm3Stats.Max)
	}
	if impStats.StdDev <= rm3Stats.StdDev {
		t.Fatalf("IMP stdev %.2f should exceed RM3 stdev %.2f",
			impStats.StdDev, rm3Stats.StdDev)
	}
}

func TestInvertedOperandsMemoized(t *testing.T) {
	// The same complemented child used twice must reuse one NOT gate.
	m := mig.New("memo")
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	d := m.AddPI("d")
	x := m.Maj(a, b, c)
	m.AddPO(m.Maj(x.Not(), b, d), "f")
	m.AddPO(m.Maj(x.Not(), a, d), "g")
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	nots := 0
	for i := 0; i+1 < len(prog.Ops); i++ {
		// A NOT is FALSE followed by exactly one IMP into the same cell
		// followed by an op on a different cell.
		if prog.Ops[i].Kind == OpFalse && prog.Ops[i+1].Kind == OpImply &&
			prog.Ops[i].Q == prog.Ops[i+1].Q &&
			(i+2 >= len(prog.Ops) || prog.Ops[i+2].Q != prog.Ops[i].Q) {
			nots++
		}
	}
	if nots < 1 {
		t.Fatal("expected at least one NOT gate")
	}
	// Compiling the same function with the memo disabled would need 2 NOTs
	// of x; assert the program stays within the memoized budget.
	compileAndCheck(t, m)
}

func TestProgramAccounting(t *testing.T) {
	m := mig.New("acct")
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	m.AddPO(m.Maj(a, b, c), "f")
	prog, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// One majority node: 4 NANDs (3 ops each) + 1 NOT (2 ops) + final NAND
	// shares the count: 5 NANDs + 1 NOT = 17 ops.
	if prog.NumOps() != 17 {
		t.Fatalf("maj expansion took %d ops, want 17", prog.NumOps())
	}
	if prog.NumCells < 4 {
		t.Fatalf("implausible cell count %d", prog.NumCells)
	}
	if !strings.Contains(prog.Ops[0].String(), "FALSE") {
		t.Fatal("first op should reset a work device")
	}
}
