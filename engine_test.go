package plim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// engineTestMIG builds a small function with enough structure for every
// rewriting pass to have something to do.
func engineTestMIG(t *testing.T) *MIG {
	t.Helper()
	b := NewNetlistBuilder("etest")
	x := b.Input("x", 6)
	y := b.Input("y", 6)
	sum, carry := b.Add(x, y, Const0)
	b.Output("s", sum)
	b.OutputBit("c", carry)
	return b.M
}

// engineRandomMIG builds structurally distinct small functions (the width
// varies with the seed, so fingerprints differ).
func engineRandomMIG(seed int64) *MIG {
	b := NewNetlistBuilder("etest-rnd")
	w := 3 + int(seed)
	x := b.Input("x", w)
	y := b.Input("y", w)
	sum, carry := b.Add(x, y, Const0)
	b.Output("s", sum)
	b.OutputBit("c", carry)
	return b.M
}

func TestEngineOptionAccessors(t *testing.T) {
	eng := NewEngine(WithEffort(3), WithWorkers(2), WithShrink(4))
	if eng.Effort() != 3 || eng.Workers() != 2 || eng.Shrink() != 4 {
		t.Fatalf("options not applied: effort=%d workers=%d shrink=%d",
			eng.Effort(), eng.Workers(), eng.Shrink())
	}
	def := NewEngine()
	if def.Effort() != DefaultEffort || def.Workers() < 1 || def.Shrink() != 1 {
		t.Fatalf("defaults wrong: effort=%d workers=%d shrink=%d",
			def.Effort(), def.Workers(), def.Shrink())
	}
	if def.CacheBudget() != DefaultCacheBudget {
		t.Fatalf("default cache budget = %d, want %d", def.CacheBudget(), DefaultCacheBudget)
	}
	if b := NewEngine(WithCacheBudget(7)).CacheBudget(); b != 7 {
		t.Fatalf("WithCacheBudget not applied: %d", b)
	}
}

// TestEngineCacheBudgetBoundsRewriteCache runs more distinct functions
// through a budget-1 engine than its caches may retain; results must stay
// correct and the rewrite cache must not grow past the budget.
func TestEngineCacheBudgetBoundsRewriteCache(t *testing.T) {
	eng := NewEngine(WithCacheBudget(1), WithEffort(2))
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		m := engineRandomMIG(seed)
		rep, err := eng.Run(ctx, m, Full)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NumInstructions() == 0 {
			t.Fatal("empty program")
		}
	}
	if n := eng.rwCache.Len(); n > 1 {
		t.Fatalf("rewrite cache holds %d entries over a budget of 1", n)
	}
}

func TestEngineInvalidOptionsSurface(t *testing.T) {
	ctx := context.Background()
	m := engineTestMIG(t)
	for name, eng := range map[string]*Engine{
		"effort":       NewEngine(WithEffort(-1)),
		"workers":      NewEngine(WithWorkers(0)),
		"shrink":       NewEngine(WithShrink(0)),
		"cache-budget": NewEngine(WithCacheBudget(0)),
	} {
		if _, err := eng.Run(ctx, m, Full); err == nil {
			t.Errorf("%s: invalid option not surfaced by Run", name)
		}
		if _, err := eng.RunSuite(ctx, TableIConfigs(), "ctrl"); err == nil {
			t.Errorf("%s: invalid option not surfaced by RunSuite", name)
		}
		if _, err := eng.Benchmark("ctrl"); err == nil {
			t.Errorf("%s: invalid option not surfaced by Benchmark", name)
		}
	}
}

// TestWithEffortZero checks the sentinel removal: effort 0 is a legitimate
// value that runs zero rewriting cycles (the legacy RunSuite silently
// rewrote it to DefaultEffort).
func TestWithEffortZero(t *testing.T) {
	m := engineTestMIG(t)
	sawCycle := false
	eng := NewEngine(WithEffort(0), WithProgress(func(ev Event) {
		if _, ok := ev.(EventRewriteCycle); ok {
			sawCycle = true
		}
	}))
	rep, err := eng.Run(context.Background(), m, Full)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewrite.Cycles != 0 {
		t.Fatalf("WithEffort(0) ran %d rewrite cycles", rep.Rewrite.Cycles)
	}
	if sawCycle {
		t.Fatal("WithEffort(0) emitted a rewrite-cycle event")
	}
	// And through a whole suite: every report must show zero cycles.
	sr, err := eng.RunSuite(context.Background(), TableIConfigs(), "ctrl")
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range sr.Reports[0] {
		if rep.Rewrite.Cycles != 0 {
			t.Fatalf("suite config %s ran %d cycles at effort 0", rep.Config.Name, rep.Rewrite.Cycles)
		}
	}
}

// TestEngineRunCancelBetweenRewriteCycles cancels from inside a rewrite-
// cycle progress event and expects Run to stop with context.Canceled
// instead of finishing the remaining cycles and the compilation.
func TestEngineRunCancelBetweenRewriteCycles(t *testing.T) {
	m := engineTestMIG(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cycles := 0
	eng := NewEngine(WithEffort(50), WithProgress(func(ev Event) {
		if _, ok := ev.(EventRewriteCycle); ok {
			cycles++
			cancel()
		}
	}))
	_, err := eng.Run(ctx, m, Full)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cycles != 1 {
		t.Fatalf("rewriting continued for %d cycles after cancellation", cycles)
	}
}

// TestEngineRunSuiteCancellation cancels after the first benchmark of a
// ≥3-benchmark suite completes; the suite must stop promptly (without
// running the remaining benchmarks) and return ctx.Err().
func TestEngineRunSuiteCancellation(t *testing.T) {
	benches := []string{"ctrl", "int2float", "dec", "router"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done []string
	eng := NewEngine(WithEffort(1), WithShrink(4), WithWorkers(1),
		WithProgress(func(ev Event) {
			if d, ok := ev.(EventBenchmarkDone); ok {
				done = append(done, d.Benchmark)
				cancel()
			}
		}))
	sr, err := eng.RunSuite(ctx, TableIConfigs(), benches...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (sr=%v)", err, sr)
	}
	if len(done) >= len(benches) {
		t.Fatalf("all %d benchmarks ran despite cancellation", len(done))
	}
}

// TestEngineProgressOrderSingleWorker pins the deterministic event order of
// a one-worker suite: for each benchmark, in list order, one start event,
// the rewrite cycles of its configurations, then one done event — and the
// same sequence again on a second run.
func TestEngineProgressOrderSingleWorker(t *testing.T) {
	benches := []string{"ctrl", "int2float"}

	type step struct {
		kind  string
		bench string
		index int
	}
	capture := func() []step {
		var steps []step
		eng := NewEngine(WithEffort(1), WithShrink(4), WithWorkers(1),
			WithProgress(func(ev Event) {
				switch ev := ev.(type) {
				case EventBenchmarkStart:
					steps = append(steps, step{"start", ev.Benchmark, ev.Index})
				case EventRewriteCycle:
					steps = append(steps, step{"cycle", ev.Function, -1})
				case EventBenchmarkDone:
					if ev.Err != nil {
						t.Errorf("benchmark %s failed: %v", ev.Benchmark, ev.Err)
					}
					steps = append(steps, step{"done", ev.Benchmark, ev.Index})
				}
			}))
		if _, err := eng.RunSuite(context.Background(), TableIConfigs(), benches...); err != nil {
			t.Fatal(err)
		}
		return steps
	}

	steps := capture()
	cur := -1 // index of the benchmark currently between start and done
	for _, s := range steps {
		switch s.kind {
		case "start":
			if cur != -1 {
				t.Fatalf("start of %q while %q still open", s.bench, benches[cur])
			}
			cur = s.index
			if benches[cur] != s.bench {
				t.Fatalf("start index %d does not match %q", s.index, s.bench)
			}
		case "cycle":
			if cur == -1 || s.bench != benches[cur] {
				t.Fatalf("rewrite cycle for %q outside its benchmark window", s.bench)
			}
		case "done":
			if cur == -1 || s.index != cur {
				t.Fatalf("done for %q without matching start", s.bench)
			}
			cur = -1
		}
	}
	if cur != -1 {
		t.Fatal("benchmark window left open")
	}
	starts := 0
	for _, s := range steps {
		if s.kind == "start" {
			starts++
		}
	}
	if starts != len(benches) {
		t.Fatalf("%d start events for %d benchmarks", starts, len(benches))
	}

	again := capture()
	if len(again) != len(steps) {
		t.Fatalf("nondeterministic event count: %d vs %d", len(steps), len(again))
	}
	for i := range steps {
		if steps[i] != again[i] {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, steps[i], again[i])
		}
	}
}

// TestDeprecatedRunMatchesEngine requires the deprecated free function to
// produce byte-identical programs and identical statistics to Engine.Run.
func TestDeprecatedRunMatchesEngine(t *testing.T) {
	for _, effort := range []int{0, 2, DefaultEffort} {
		mOld := engineTestMIG(t)
		mNew := engineTestMIG(t)
		old, err := Run(mOld, Full, effort)
		if err != nil {
			t.Fatal(err)
		}
		now, err := NewEngine(WithEffort(effort)).Run(context.Background(), mNew, Full)
		if err != nil {
			t.Fatal(err)
		}
		if old.Rewrite != now.Rewrite || old.Writes != now.Writes {
			t.Fatalf("effort %d: stats diverge: %+v vs %+v", effort, old.Rewrite, now.Rewrite)
		}
		var a, b bytes.Buffer
		if err := old.Result.Program.WriteAsm(&a); err != nil {
			t.Fatal(err)
		}
		if err := now.Result.Program.WriteAsm(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("effort %d: deprecated Run and Engine.Run compiled different programs", effort)
		}
	}
}

// TestDeprecatedRunSuiteMatchesEngine requires the deprecated RunSuite to
// render byte-identical tables to Engine.RunSuite under equivalent options
// (the legacy zero values mean Effort 5 / Shrink 1 / Workers GOMAXPROCS —
// here made explicit on both sides).
func TestDeprecatedRunSuiteMatchesEngine(t *testing.T) {
	benches := []string{"ctrl", "int2float"}
	old, err := RunSuite(TableIConfigs(), SuiteOptions{
		Benchmarks: benches, Effort: 1, Shrink: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithEffort(1), WithShrink(4))
	now, err := eng.RunSuite(context.Background(), TableIConfigs(), benches...)
	if err != nil {
		t.Fatal(err)
	}
	for _, proj := range []func(*SuiteResult) (*Grid, error){
		func(sr *SuiteResult) (*Grid, error) {
			d, err := TableI(sr)
			if err != nil {
				return nil, err
			}
			return d.Grid(), nil
		},
		func(sr *SuiteResult) (*Grid, error) {
			d, err := TableII(sr)
			if err != nil {
				return nil, err
			}
			return d.Grid(), nil
		},
	} {
		ga, err := proj(old)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := proj(now)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(ga.CSV()), []byte(gb.CSV())) {
			t.Fatalf("deprecated RunSuite and Engine.RunSuite rendered different tables:\n%s\nvs\n%s",
				ga.CSV(), gb.CSV())
		}
	}
}

// TestEngineRewrite drives the standalone rewriting entry point used by
// cmd/migstat: it must match rewrite statistics of a configuration run and
// preserve the function.
func TestEngineRewrite(t *testing.T) {
	m := engineTestMIG(t)
	eng := NewEngine(WithEffort(2))
	out, st, err := eng.Rewrite(context.Background(), m, RewriteAlgorithm2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 1 || out == nil {
		t.Fatalf("rewrite did not run: %+v", st)
	}
	res, err := Equivalent(m, out, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("rewriting changed the function at PO %d", res.PO)
	}
	// RewriteNone is the cleanup identity; its stats still carry the node
	// counts so callers can report N → M uniformly.
	same, st0, err := eng.Rewrite(context.Background(), m, RewriteNone)
	if err != nil || st0.Cycles != 0 || same == nil {
		t.Fatalf("RewriteNone: %v %+v", err, st0)
	}
	if st0.NodesBefore == 0 || st0.NodesAfter == 0 {
		t.Fatalf("RewriteNone stats not populated: %+v", st0)
	}
	if _, _, err := eng.Rewrite(context.Background(), m, RewriteKind(99)); err == nil {
		t.Fatal("unknown rewrite kind accepted")
	}
	// A cancelled context yields no result, matching every other path.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if out, _, err := eng.Rewrite(cancelled, m, RewriteNone); err == nil || out != nil {
		t.Fatalf("cancelled RewriteNone returned (%v, %v)", out, err)
	}
}

// TestEngineRunAll mirrors the core-level ordering guarantee through the
// facade.
func TestEngineRunAll(t *testing.T) {
	m := engineTestMIG(t)
	eng := NewEngine(WithEffort(1))
	reps, err := eng.RunAll(context.Background(), m, TableIConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("got %d reports", len(reps))
	}
	for i, cfg := range TableIConfigs() {
		if reps[i].Config.Name != cfg.Name {
			t.Fatalf("report %d is %q", i, reps[i].Config.Name)
		}
	}
}

// TestEngineBenchmarkDoneCarriesElapsed sanity-checks the timing payload on
// done events.
func TestEngineBenchmarkDoneCarriesElapsed(t *testing.T) {
	var elapsed time.Duration
	eng := NewEngine(WithEffort(1), WithShrink(8), WithWorkers(1),
		WithProgress(func(ev Event) {
			if d, ok := ev.(EventBenchmarkDone); ok {
				elapsed = d.Elapsed
			}
		}))
	if _, err := eng.RunSuite(context.Background(), []Config{Naive}, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("done event carries no elapsed time: %v", elapsed)
	}
}

// TestWithCacheBenchmarkIsPrivate checks that cached benchmark builds hand
// out independent clones: mutating one must not leak into the next.
func TestWithCacheBenchmarkIsPrivate(t *testing.T) {
	eng := NewEngine(WithShrink(8))
	if !eng.Cached() {
		t.Fatal("caching must default to on")
	}
	a, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	fp := a.Fingerprint()
	b, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("cached Benchmark returned a shared instance")
	}
	if b.Fingerprint() != fp {
		t.Fatal("cached Benchmark differs from the first build")
	}
	a.AddPO(Const1, "junk") // mutate the first copy
	c, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() != fp {
		t.Fatal("mutation of a returned benchmark leaked into the cache")
	}
	// The uncached engine still builds identical graphs.
	off := NewEngine(WithShrink(8), WithCache(false))
	if off.Cached() {
		t.Fatal("WithCache(false) ignored")
	}
	d, err := off.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() != fp {
		t.Fatal("uncached Benchmark differs from cached build")
	}
}

// TestEngineCachedRunMatchesUncached runs the same function through a
// cached and an uncached engine; reports must be byte-identical, and the
// cached engine's second run must skip the rewrite (no cycle events) while
// still producing the same program.
func TestEngineCachedRunMatchesUncached(t *testing.T) {
	ctx := context.Background()
	cycleEvents := 0
	cached := NewEngine(WithEffort(2), WithProgress(func(ev Event) {
		if _, ok := ev.(EventRewriteCycle); ok {
			cycleEvents++
		}
	}))
	uncached := NewEngine(WithEffort(2), WithCache(false))

	first, err := cached.Run(ctx, engineTestMIG(t), Full)
	if err != nil {
		t.Fatal(err)
	}
	firstCycles := cycleEvents
	if firstCycles == 0 {
		t.Fatal("first cached run emitted no rewrite cycles")
	}
	second, err := cached.Run(ctx, engineTestMIG(t), Full)
	if err != nil {
		t.Fatal(err)
	}
	if cycleEvents != firstCycles {
		t.Fatal("second cached run re-ran the rewrite")
	}
	plain, err := uncached.Run(ctx, engineTestMIG(t), Full)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"cached-hit": second, "uncached": plain} {
		if rep.Rewrite != first.Rewrite || rep.Writes != first.Writes {
			t.Fatalf("%s: stats diverge", name)
		}
		var a, b bytes.Buffer
		if err := first.Result.Program.WriteBinary(&a); err != nil {
			t.Fatal(err)
		}
		if err := rep.Result.Program.WriteBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: program differs", name)
		}
	}
}

// TestEngineCompileEvents checks that Run surrounds the compile stage with
// a start/done pair carrying the configuration and the #I/#R payload.
func TestEngineCompileEvents(t *testing.T) {
	var starts, dones []EventCompileDone
	eng := NewEngine(WithEffort(1), WithProgress(func(ev Event) {
		switch ev := ev.(type) {
		case EventCompileStart:
			starts = append(starts, EventCompileDone{Function: ev.Function, Config: ev.Config})
		case EventCompileDone:
			dones = append(dones, ev)
		}
	}))
	rep, err := eng.Run(context.Background(), engineTestMIG(t), Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 || len(dones) != 1 {
		t.Fatalf("got %d starts, %d dones, want 1 each", len(starts), len(dones))
	}
	if starts[0].Function != "etest" || starts[0].Config != "full" {
		t.Fatalf("start event misattributed: %+v", starts[0])
	}
	d := dones[0]
	if d.Function != "etest" || d.Config != "full" || d.Err != nil {
		t.Fatalf("done event misattributed: %+v", d)
	}
	if d.Instructions != rep.NumInstructions() || d.RRAMs != rep.NumRRAMs() {
		t.Fatalf("done event payload %d/%d does not match report %d/%d",
			d.Instructions, d.RRAMs, rep.NumInstructions(), rep.NumRRAMs())
	}
	for _, s := range []string{
		FormatEvent(EventCompileStart{Function: "f", Config: "full"}),
		FormatEvent(d),
	} {
		if s == "" || !strings.Contains(s, "compile") {
			t.Fatalf("FormatEvent rendering broken: %q", s)
		}
	}
}

// TestEngineRewriteCacheHitIsPrivate ensures a cached Engine.Rewrite hit
// returns a private clone, not the shared cache entry.
func TestEngineRewriteCacheHitIsPrivate(t *testing.T) {
	eng := NewEngine(WithEffort(2))
	first, st1, err := eng.Rewrite(context.Background(), engineTestMIG(t), RewriteAlgorithm2)
	if err != nil {
		t.Fatal(err)
	}
	second, st2, err := eng.Rewrite(context.Background(), engineTestMIG(t), RewriteAlgorithm2)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("cached rewrite stats diverge: %+v vs %+v", st1, st2)
	}
	if first == second {
		t.Fatal("Engine.Rewrite handed the shared cache entry to two callers")
	}
	fp := second.Fingerprint()
	first.AddPO(Const1, "junk")
	third, _, err := eng.Rewrite(context.Background(), engineTestMIG(t), RewriteAlgorithm2)
	if err != nil {
		t.Fatal(err)
	}
	if third.Fingerprint() != fp {
		t.Fatal("mutating a returned rewrite leaked into the cache")
	}
}

// TestEngineRewriteUncachedEffortZeroIsPrivate: even with caching off and
// effort 0 (where the rewriter hands the input back), Engine.Rewrite must
// honour its "returned MIG is always private" guarantee.
func TestEngineRewriteUncachedEffortZeroIsPrivate(t *testing.T) {
	eng := NewEngine(WithCache(false), WithEffort(0))
	m := engineTestMIG(t)
	out, st, err := eng.Rewrite(context.Background(), m, RewriteAlgorithm1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 0 {
		t.Fatalf("effort 0 ran %d cycles", st.Cycles)
	}
	if out == m {
		t.Fatal("Rewrite returned the caller's own MIG")
	}
}
