package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes a human-readable span tree — the `-v` summary shared by the
// CLIs. Children print in creation order under their parent, with duration,
// worker, queue wait and attrs:
//
//	request /v1/compile 12.4ms
//	├─ rewrite adder 8.1ms [w0 queue 12µs]
//	│  └─ cache rewrite-probe 80µs outcome=compute fp=ab12…
//	└─ compile adder/full 3.9ms [w1]
func (t *Trace) Render(w io.Writer) {
	spans := t.Spans()
	children := make([][]int32, len(spans))
	var roots []int32
	for _, sp := range spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(spans) {
			children[sp.Parent] = append(children[sp.Parent], sp.ID)
		} else {
			roots = append(roots, sp.ID)
		}
	}
	var rec func(id int32, prefix string, last bool, top bool)
	rec = func(id int32, prefix string, last, top bool) {
		sp := spans[id]
		branch, childPrefix := "", ""
		if !top {
			if last {
				branch, childPrefix = prefix+"└─ ", prefix+"   "
			} else {
				branch, childPrefix = prefix+"├─ ", prefix+"│  "
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s%s %s %s", branch, sp.Kind, sp.Name, fmtDur(sp.Dur))
		if sp.Worker >= 0 || sp.QueueWait > 0 {
			b.WriteString(" [")
			if sp.Worker >= 0 {
				fmt.Fprintf(&b, "w%d", sp.Worker)
			}
			if sp.QueueWait > 0 {
				if sp.Worker >= 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "queue %s", fmtDur(sp.QueueWait))
			}
			b.WriteByte(']')
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w, b.String())
		for i, c := range children[id] {
			rec(c, childPrefix, i == len(children[id])-1, false)
		}
	}
	for _, r := range roots {
		rec(r, "", true, true)
	}
}

// RenderString returns Render's output as a string.
func (t *Trace) RenderString() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func fmtDur(d time.Duration) string {
	if d < 0 {
		return "open"
	}
	return d.Round(time.Microsecond).String()
}

// A StageTotal is one pipeline stage's aggregate time across a trace.
type StageTotal struct {
	Name string
	Dur  time.Duration
}

// Totals aggregates span time by pipeline stage for the server's
// Server-Timing header: queue is the summed scheduler queue-wait across all
// tasks, cache the summed cache-probe time, and generate/rewrite/compile/
// exec the summed task run time per kind. Stages appear in a fixed order and
// zero stages are omitted; nested spans count toward their own stage, so the
// stages are independent measurements, not a partition of wall time.
func (t *Trace) Totals() []StageTotal {
	var queue, generate, rewrite, compile, exec, cache time.Duration
	t.mu.Lock()
	for i := range t.spans {
		sp := &t.spans[i]
		queue += sp.QueueWait
		d := sp.Dur
		if d < 0 {
			d = 0
		}
		switch sp.Kind {
		case "generate":
			generate += d
		case "rewrite":
			rewrite += d
		case "compile":
			compile += d
		case "exec_chunk":
			exec += d
		case "cache":
			cache += d
		}
	}
	t.mu.Unlock()
	all := []StageTotal{
		{"queue", queue},
		{"generate", generate},
		{"rewrite", rewrite},
		{"compile", compile},
		{"exec", exec},
		{"cache", cache},
	}
	out := all[:0]
	for _, st := range all {
		if st.Dur > 0 {
			out = append(out, st)
		}
	}
	return out
}
