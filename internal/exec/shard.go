package exec

import (
	"context"
	"sync/atomic"
	"time"

	"plim/internal/progress"
	"plim/internal/sched"
)

// RunSharded executes the batch like RunContext, but splits its 64-lane
// chunks into contiguous ranges and runs them as parallel leaves of a task
// graph on pool — one exec-chunk task per worker at most. The result is
// byte-identical to the sequential run: disjoint ranges write disjoint
// output words, per-range switch partials are summed at the join in range
// order (integer sums are associative, so the total equals one sequential
// pass), write counts are data-independent, and an endurance fault is
// detected identically by every range. Deadline orders the graph's tasks
// in the scheduler's injector; obs, when non-nil, receives the graph's
// task start/done events.
//
// Small batches (or single-worker pools) fall back to RunContext.
// opts.OnChunk runs on worker goroutines — concurrently, with monotone
// done counts delivered exactly once each, but in no particular order.
func (pl *Plan) RunSharded(ctx context.Context, b *Batch, opts Options, pool *sched.Pool, deadline time.Time, obs progress.Func) (*Result, error) {
	chunks := b.Chunks()
	shards := pool.Workers()
	if shards > chunks {
		shards = chunks
	}
	if shards <= 1 {
		return pl.RunContext(ctx, b, opts)
	}
	run, faultAt, err := pl.prepare(b, opts.Endurance)
	if err != nil {
		return nil, err
	}
	outputs := NewBatch(pl.NumOutputs(), b.Len())
	partials := make([][]uint64, shards)
	var done atomic.Int64
	var onChunk func(int)
	if opts.OnChunk != nil {
		onChunk = func(int) { opts.OnChunk(int(done.Add(1)), chunks) }
	}
	g := pool.NewGraph(ctx, sched.GraphOptions{Deadline: deadline, Progress: obs})
	per := (chunks + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo, hi := s*per, min((s+1)*per, chunks)
		if lo >= hi {
			break
		}
		part := make([]uint64, pl.numCells)
		partials[s] = part
		g.Task(sched.KindExecChunk, pl.src.Name, func(tctx context.Context) {
			// Cancellation errors are surfaced by Wait; nothing else can fail.
			_ = pl.runRange(tctx, b, run, faultAt < 0, part, outputs, lo, hi, onChunk)
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	switches := make([]uint64, pl.numCells)
	for _, part := range partials {
		for i, v := range part {
			switches[i] += v
		}
	}
	return pl.finalize(b, run, faultAt, switches, outputs, opts)
}
