package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// DefaultHotPathRoots are the pinned entry points of the two allocation-
// sensitive paths: the compiler (run once per compile request, gated by an
// allocs/op benchmark) and the batched executor's plan runner (run once per
// executed batch). Roots are written pkg.Func or pkg.Type.Method, where pkg
// is the import path or the bare package name.
var DefaultHotPathRoots = []string{
	"plim/internal/compile.CompileWith",
	"plim/internal/exec.Plan.RunContext",
}

// HotPathAlloc flags allocation sites in functions reachable from
// DefaultHotPathRoots. See HotPathAllocWithRoots for the mechanics.
var HotPathAlloc = HotPathAllocWithRoots(DefaultHotPathRoots)

// HotPathAllocWithRoots builds the hot-path allocation analyzer for a
// custom root set.
//
// The analyzer constructs a name-based call graph over all loaded packages:
// a plain call f() resolves to the same package's f; pkg.F() resolves
// through the file's imports; a method call x.M() conservatively resolves
// to every method named M in the same package and in the packages the file
// imports. Within the reachable set it flags construction of maps (make or
// literal), append onto a freshly constructed slice, explicit interface
// boxing (any(...) / interface{}(...)), and calls into sort or
// container/heap (which box their arguments). Calls through stored
// function values are invisible to a syntactic graph — keep hot-path
// indirection behind interfaces out of these packages, or add explicit
// roots. A deliberate allocation is acknowledged in place:
//
//	//plim:alloc-ok one-time result copy, not per-node
//	out := append([]uint64(nil), counts...)
func HotPathAllocWithRoots(roots []string) *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "flags allocations in functions reachable from the pinned hot-path roots",
		Run:  func(pkgs []*Package) []Diagnostic { return hotPathAlloc(pkgs, roots) },
	}
}

// A funcNode is one function or method in the call graph.
type funcNode struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
	// name is "F" for a function, "T.M" for a method on T.
	name string
	// root is the hot-path root this node was first reached from.
	root string
}

func (n *funcNode) method() (string, bool) {
	if _, m, ok := strings.Cut(n.name, "."); ok {
		return m, true
	}
	return "", false
}

func hotPathAlloc(pkgs []*Package, roots []string) []Diagnostic {
	// Index every function declaration.
	var nodes []*funcNode
	plain := make(map[*Package]map[string][]*funcNode)   // package → func name
	methods := make(map[*Package]map[string][]*funcNode) // package → method name
	byPath := make(map[string]*Package)
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
		plain[pkg] = make(map[string][]*funcNode)
		methods[pkg] = make(map[string][]*funcNode)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &funcNode{pkg: pkg, file: f, decl: fd, name: fd.Name.Name}
				if fd.Recv != nil {
					if t := recvTypeName(fd.Recv); t != "" {
						n.name = t + "." + fd.Name.Name
					}
				}
				nodes = append(nodes, n)
				if m, ok := n.method(); ok {
					methods[pkg][m] = append(methods[pkg][m], n)
				} else {
					plain[pkg][n.name] = append(plain[pkg][n.name], n)
				}
			}
		}
	}

	// Seed the worklist with the roots.
	rootSet := make(map[string]string, len(roots)) // qualified name → root spec
	for _, r := range roots {
		rootSet[r] = r
	}
	var queue []*funcNode
	reached := make(map[*funcNode]bool)
	for _, n := range nodes {
		for _, key := range []string{n.pkg.Path + "." + n.name, n.pkg.Name + "." + n.name} {
			if r, ok := rootSet[key]; ok && !reached[n] {
				n.root = r
				reached[n] = true
				queue = append(queue, n)
			}
		}
	}

	// Breadth-first reachability over name-resolved call edges.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		imports := fileImports(n.file)
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range resolve(call, n, imports, byPath, plain, methods) {
				if !reached[callee] {
					callee.root = n.root
					reached[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Scan reachable bodies for allocation sites.
	var diags []Diagnostic
	for _, n := range nodes {
		if !reached[n] {
			continue
		}
		ok := directiveLines(n.pkg.Fset, n.file, "plim:alloc-ok")
		imports := fileImports(n.file)
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			msg := allocSite(node, imports)
			if msg == "" {
				return true
			}
			pos := n.pkg.Fset.Position(node.Pos())
			if suppressed(ok, pos) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "hotpathalloc",
				Message: fmt.Sprintf("%s in %s.%s, reachable from hot-path root %s (annotate //plim:alloc-ok <reason> if deliberate)",
					msg, n.pkg.Name, n.name, n.root),
			})
			return true
		})
	}
	return diags
}

// resolve returns the possible callees of one call expression.
func resolve(call *ast.CallExpr, from *funcNode, imports map[string]string,
	byPath map[string]*Package, plain, methods map[*Package]map[string][]*funcNode) []*funcNode {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return plain[from.pkg][fun.Name]
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if path, isImport := imports[x.Name]; isImport {
				if pkg, loaded := byPath[path]; loaded {
					return plain[pkg][fun.Sel.Name]
				}
				return nil // stdlib or unloaded package
			}
		}
		// Method call (or a call through a package-level value): resolve by
		// name in this package and in every loaded package this file imports.
		var out []*funcNode
		out = append(out, methods[from.pkg][fun.Sel.Name]...)
		for _, path := range imports {
			if pkg, loaded := byPath[path]; loaded && pkg != from.pkg {
				out = append(out, methods[pkg][fun.Sel.Name]...)
			}
		}
		return out
	}
	return nil
}

// allocSite classifies one AST node as an allocation, returning "" for
// clean nodes.
func allocSite(node ast.Node, imports map[string]string) string {
	switch n := node.(type) {
	case *ast.CompositeLit:
		if _, ok := n.Type.(*ast.MapType); ok {
			return "map literal allocates"
		}
	case *ast.CallExpr:
		switch fun := n.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "make":
				if len(n.Args) > 0 {
					if _, ok := n.Args[0].(*ast.MapType); ok {
						return "make(map) allocates"
					}
				}
			case "append":
				if len(n.Args) > 0 && freshSlice(n.Args[0]) {
					return "append onto a fresh slice allocates"
				}
			case "any":
				return "conversion to any allocates (boxing)"
			}
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok {
				switch imports[x.Name] {
				case "sort", "container/heap":
					return fmt.Sprintf("%s.%s boxes its argument", x.Name, fun.Sel.Name)
				}
			}
		case *ast.InterfaceType:
			return "conversion to interface{} allocates (boxing)"
		case *ast.ParenExpr:
			if _, ok := fun.X.(*ast.InterfaceType); ok {
				return "conversion to interface{} allocates (boxing)"
			}
		}
	}
	return ""
}

// freshSlice reports whether an append base expression constructs its slice
// on the spot ([]T{...}, []T(nil), make([]T, ...)) rather than naming an
// existing one.
func freshSlice(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if fun, ok := e.Fun.(*ast.Ident); ok && fun.Name == "make" {
			return true
		}
		if _, ok := e.Fun.(*ast.ArrayType); ok {
			return true // []T(nil) conversion
		}
		if p, ok := e.Fun.(*ast.ParenExpr); ok {
			if _, ok := p.X.(*ast.ArrayType); ok {
				return true
			}
		}
	}
	return false
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) index the identifier.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
