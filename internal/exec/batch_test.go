package exec

import (
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	vectors := [][]bool{
		{true, false, true},
		{false, false, false},
		{true, true, true},
		{false, true, false},
	}
	b, err := Pack(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 || b.Lines() != 3 || b.Chunks() != 1 {
		t.Fatalf("got %d vectors × %d lines in %d chunks", b.Len(), b.Lines(), b.Chunks())
	}
	got := b.Unpack()
	for v := range vectors {
		for i := range vectors[v] {
			if got[v][i] != vectors[v][i] {
				t.Fatalf("vector %d line %d: got %v", v, i, got[v][i])
			}
		}
	}
}

func TestPackRejectsRaggedVectors(t *testing.T) {
	if _, err := Pack([][]bool{{true}, {true, false}}); err == nil {
		t.Fatal("ragged Pack succeeded")
	}
}

func TestPackStrings(t *testing.T) {
	b, err := PackStrings([]string{"01", "10", "11"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]bool{{false, true}, {true, false}, {true, true}}
	for v := range want {
		for i := range want[v] {
			if b.Get(v, i) != want[v][i] {
				t.Fatalf("vector %d line %d: got %v", v, i, b.Get(v, i))
			}
		}
	}
	if got := b.Strings(); got[0] != "01" || got[1] != "10" || got[2] != "11" {
		t.Fatalf("Strings round trip: %q", got)
	}
	if _, err := PackStrings([]string{"0x"}); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := PackStrings([]string{"01", "011"}); err == nil {
		t.Fatal("ragged strings accepted")
	}
}

func TestActiveMask(t *testing.T) {
	b := NewBatch(1, 70)
	if b.Chunks() != 2 {
		t.Fatalf("chunks = %d", b.Chunks())
	}
	if m := b.ActiveMask(0); m != ^uint64(0) {
		t.Fatalf("full chunk mask = %x", m)
	}
	if m := b.ActiveMask(1); m != 1<<6-1 {
		t.Fatalf("partial chunk mask = %x", m)
	}
}

func TestSetWordMasksInactiveLanes(t *testing.T) {
	b := NewBatch(1, 3)
	b.SetWord(0, 0, ^uint64(0))
	if w := b.Word(0, 0); w != 0b111 {
		t.Fatalf("word = %b, want inactive lanes cleared", w)
	}
}

func TestExhaustiveEnumeratesAllVectors(t *testing.T) {
	const lines = 8
	b, err := Exhaustive(lines)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1<<lines {
		t.Fatalf("len = %d", b.Len())
	}
	for v := 0; v < b.Len(); v++ {
		for i := 0; i < lines; i++ {
			if b.Get(v, i) != (v>>i&1 == 1) {
				t.Fatalf("vector %d line %d wrong", v, i)
			}
		}
	}
	if _, err := Exhaustive(25); err == nil {
		t.Fatal("oversized exhaustive batch accepted")
	}
}

func TestHashIsContentHash(t *testing.T) {
	a := Random(5, 100, 42)
	b := Random(5, 100, 42)
	if a.Hash() != b.Hash() {
		t.Fatal("same content, different hash")
	}
	// Bit-by-bit reconstruction must hash identically (canonical form).
	c := NewBatch(5, 100)
	for v := 0; v < 100; v++ {
		for i := 0; i < 5; i++ {
			c.Set(v, i, a.Get(v, i))
		}
	}
	if a.Hash() != c.Hash() {
		t.Fatal("reconstruction hashes differently")
	}
	c.Set(99, 4, !c.Get(99, 4))
	if a.Hash() == c.Hash() {
		t.Fatal("flipped bit, same hash")
	}
	if Random(5, 100, 43).Hash() == a.Hash() {
		t.Fatal("different seed, same hash")
	}
}

func TestRandomIsDeterministicAndMasked(t *testing.T) {
	b := Random(3, 65, 7)
	if got := b.Word(0, 1) &^ b.ActiveMask(1); got != 0 {
		t.Fatalf("inactive lanes set: %x", got)
	}
	c := Random(3, 65, 7)
	for i := 0; i < 3; i++ {
		for ch := 0; ch < b.Chunks(); ch++ {
			if b.Word(i, ch) != c.Word(i, ch) {
				t.Fatal("same seed, different batch")
			}
		}
	}
}

func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{0xa5, 0x5a})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(16), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, width uint8, data []byte) {
		lines := int(width%24) + 1
		n := len(data) * 8 / lines
		if n > 512 {
			n = 512
		}
		vectors := make([][]bool, n)
		bit := func(k int) bool { return data[k/8]>>(k%8)&1 == 1 }
		for v := range vectors {
			vec := make([]bool, lines)
			for i := range vec {
				vec[i] = bit(v*lines + i)
			}
			vectors[v] = vec
		}
		b, err := Pack(vectors)
		if err != nil {
			t.Fatalf("pack: %v", err)
		}
		got := b.Unpack()
		if len(got) != len(vectors) {
			t.Fatalf("unpacked %d vectors, want %d", len(got), len(vectors))
		}
		for v := range vectors {
			for i := range vectors[v] {
				if got[v][i] != vectors[v][i] {
					t.Fatalf("vector %d line %d mismatch", v, i)
				}
			}
		}
		// The string form must round-trip to an identical (hash-equal) batch.
		c, err := PackStrings(b.Strings())
		if err != nil {
			t.Fatalf("pack strings: %v", err)
		}
		if n > 0 && (c.Len() != b.Len() || c.Lines() != b.Lines() || c.Hash() != b.Hash()) {
			t.Fatal("string round trip changed the batch")
		}
	})
}
