package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
)

// Determinism flags sources of run-to-run instability in identity-
// producing code: functions whose name mentions Fingerprint, Hash or Key,
// plus every function in a codec.go or coalesce.go file. Those identities
// are persisted in the disk cache, used as coalescing keys across
// concurrent requests and compared between processes — so they must not
// depend on the clock (time.Now, time.Since) or on Go's randomized map
// iteration order. Ranging over a map is detected syntactically: the
// ranged expression is a map literal, a make(map...), or a name the
// function visibly binds to one (parameter, var declaration or := from a
// map construction). Sorting extracted keys first is the standard fix.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags time.Now and map iteration in fingerprint/codec/coalescing-key code",
	Run:  determinism,
}

// identityFiles are file basenames whose entire contents are in scope.
var identityFiles = map[string]bool{"codec.go": true, "coalesce.go": true}

func determinism(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wholeFile := identityFiles[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)]
			imports := fileImports(f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !wholeFile && !identityName(fd.Name.Name) {
					continue
				}
				diags = append(diags, checkDeterminism(pkg, f, fd, imports)...)
			}
		}
	}
	return diags
}

func identityName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "fingerprint") || strings.Contains(l, "hash") ||
		strings.Contains(l, "key")
}

func checkDeterminism(pkg *Package, f *ast.File, fd *ast.FuncDecl, imports map[string]string) []Diagnostic {
	mapNames := mapBindings(fd)
	var diags []Diagnostic
	report := func(node ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(node.Pos()),
			Analyzer: "determinism",
			Message:  fmt.Sprintf("%s in identity-sensitive %s.%s", msg, pkg.Name, fd.Name.Name),
		})
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && imports[x.Name] == "time" {
					switch sel.Sel.Name {
					case "Now", "Since", "Until":
						report(n, "time."+sel.Sel.Name+" call")
					}
				}
			}
		case *ast.RangeStmt:
			if isMapExpr(n.X, mapNames) {
				report(n, "iteration over a map (randomized order)")
			}
		}
		return true
	})
	return diags
}

// mapBindings collects the names a function visibly binds to maps:
// parameters declared with a map type, var declarations of map type, and
// short declarations whose right-hand side constructs a map.
func mapBindings(fd *ast.FuncDecl) map[string]bool {
	names := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, id := range field.Names {
					names[id.Name] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					names[id.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && isMapExpr(rhs, nil) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return names
}

// isMapExpr reports whether e syntactically constructs or names a map.
func isMapExpr(e ast.Expr, mapNames map[string]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return mapNames[e.Name]
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if fun, ok := e.Fun.(*ast.Ident); ok && fun.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}
