// Package core assembles the paper's endurance-management scheme: it wires
// MIG rewriting (internal/rewrite), node selection and translation
// (internal/compile) and device allocation (internal/alloc) into the named
// configurations evaluated in Shirinzadeh et al., DATE 2017, Tables I–III.
//
// The five incremental configurations of Table I are:
//
//	naive       no rewriting, node-order selection, LIFO allocation
//	compiler21  Algorithm 1 rewriting + standard selection + LIFO ([21])
//	minwrite    compiler21 + the minimum-write-count allocator
//	rewriting   Algorithm 2 rewriting + standard selection + min-write
//	full        Algorithm 2 + Algorithm 3 selection + min-write
//
// Table III adds the maximum-write-count strategy on top of full:
// FullCap(w) for w ∈ {10, 20, 50, 100}.
package core

import (
	"context"
	"fmt"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/rewrite"
	"plim/internal/stats"
)

// RewriteKind selects the rewriting algorithm applied before compilation.
type RewriteKind uint8

// Rewriting choices.
const (
	RewriteNone RewriteKind = iota
	RewriteAlgorithm1
	RewriteAlgorithm2
)

// String names the rewriting choice.
func (k RewriteKind) String() string {
	switch k {
	case RewriteNone:
		return "none"
	case RewriteAlgorithm1:
		return "algorithm1"
	case RewriteAlgorithm2:
		return "algorithm2"
	}
	return "?"
}

// DefaultEffort is the paper's MIG-rewriting cycle count (§IV).
const DefaultEffort = 5

// Config is one endurance-management configuration.
type Config struct {
	Name      string
	Rewrite   RewriteKind
	Selection compile.Selection
	Alloc     alloc.Kind
	MaxWrites uint64 // 0 = no maximum-write strategy
}

// The named configurations of the paper's evaluation.
var (
	// Naive benefits only from node translation (Table I column 1).
	Naive = Config{Name: "naive", Rewrite: RewriteNone, Selection: compile.NodeOrder, Alloc: alloc.LIFO}
	// Compiler21 is the DAC'16 PLiM compiler (Table I column 2).
	Compiler21 = Config{Name: "compiler21", Rewrite: RewriteAlgorithm1, Selection: compile.Standard, Alloc: alloc.LIFO}
	// MinWrite adds the minimum write count strategy (Table I column 3).
	MinWrite = Config{Name: "minwrite", Rewrite: RewriteAlgorithm1, Selection: compile.Standard, Alloc: alloc.MinWrite}
	// Rewriting swaps in the endurance-aware MIG rewriting (column 4).
	Rewriting = Config{Name: "rewriting", Rewrite: RewriteAlgorithm2, Selection: compile.Standard, Alloc: alloc.MinWrite}
	// Full adds the endurance-aware node selection (column 5).
	Full = Config{Name: "full", Rewrite: RewriteAlgorithm2, Selection: compile.Endurance, Alloc: alloc.MinWrite}
)

// FullCap is Full plus the maximum write count strategy (Table III).
func FullCap(w uint64) Config {
	c := Full
	c.Name = fmt.Sprintf("full+cap%d", w)
	c.MaxWrites = w
	return c
}

// TableIConfigs returns the five configurations of Table I in column order.
func TableIConfigs() []Config {
	return []Config{Naive, Compiler21, MinWrite, Rewriting, Full}
}

// Report is the outcome of running one configuration on one function.
type Report struct {
	Config  Config
	Rewrite rewrite.Stats
	Result  *compile.Result
	// Writes summarizes the per-device write counts (paper's min/max/STDEV).
	Writes stats.Summary
}

// NumInstructions is the paper's #I.
func (r *Report) NumInstructions() int { return r.Result.NumInstructions }

// NumRRAMs is the paper's #R.
func (r *Report) NumRRAMs() int { return r.Result.NumRRAMs }

// Lifetime estimates how many executions of the compiled program a memory
// with the given per-device endurance survives.
func (r *Report) Lifetime(endurance uint64) uint64 {
	return stats.Lifetime(r.Result.WriteCounts, endurance)
}

// PipelineFor maps a rewrite kind onto its pass schedule. RewriteNone maps
// to a nil pipeline.
func PipelineFor(kind RewriteKind) ([]rewrite.Pass, error) {
	switch kind {
	case RewriteNone:
		return nil, nil
	case RewriteAlgorithm1:
		return rewrite.Algorithm1, nil
	case RewriteAlgorithm2:
		return rewrite.Algorithm2, nil
	}
	return nil, fmt.Errorf("core: unknown rewrite kind %d", kind)
}

// Rewrite applies kind's pass schedule to m for up to effort cycles. The
// input MIG is not modified. RewriteNone only drops dangling nodes (every
// configuration compiles live nodes only); its stats report the node
// counts with zero cycles. obs (which may be nil) receives a
// progress.RewriteCycle event — tagged with cfgName, which may be empty —
// after every completed cycle. On cancellation the MIG is nil and the
// error is ctx.Err().
func Rewrite(ctx context.Context, m *mig.MIG, kind RewriteKind, effort int, obs progress.Func, cfgName string) (*mig.MIG, rewrite.Stats, error) {
	pipeline, err := PipelineFor(kind)
	if err != nil {
		return nil, rewrite.Stats{}, err
	}
	if pipeline == nil {
		if err := ctx.Err(); err != nil {
			return nil, rewrite.Stats{}, err
		}
		out := m.Cleanup()
		st := rewrite.Stats{
			NodesBefore:    m.Statistics().MajNodes,
			NodesAfter:     out.Statistics().MajNodes,
			CompHistBefore: m.ComplementHistogram(),
			CompHistAfter:  out.ComplementHistogram(),
		}
		_, st.DepthBefore = m.Levels()
		_, st.DepthAfter = out.Levels()
		return out, st, nil
	}
	return rewrite.RunContext(ctx, m, pipeline, effort, func(cycle, nodes int) {
		obs.Emit(progress.RewriteCycle{
			Function: m.Name, Config: cfgName,
			Cycle: cycle, Effort: effort, Nodes: nodes,
		})
	})
}

// Run rewrites m according to cfg (with the given effort) and compiles it.
// The input MIG is not modified. Cancellation is checked on entry, between
// rewrite cycles and before compilation; on cancellation the error is
// ctx.Err(). obs (which may be nil) receives a progress.RewriteCycle event
// after every completed rewrite cycle.
func Run(ctx context.Context, m *mig.MIG, cfg Config, effort int, obs progress.Func) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	cur, st, err := Rewrite(ctx, m, cfg.Rewrite, effort, obs, cfg.Name)
	if err != nil {
		return nil, err
	}
	rep.Rewrite = st
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := compile.Compile(cur, compile.Options{
		Selection: cfg.Selection,
		Alloc:     cfg.Alloc,
		MaxWrites: cfg.MaxWrites,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
	}
	rep.Result = res
	rep.Writes = stats.Summarize(res.WriteCounts)
	return rep, nil
}

// RunAll runs several configurations on the same function, checking
// cancellation between configurations.
func RunAll(ctx context.Context, m *mig.MIG, cfgs []Config, effort int, obs progress.Func) ([]*Report, error) {
	out := make([]*Report, len(cfgs))
	for i, cfg := range cfgs {
		rep, err := Run(ctx, m, cfg, effort, obs)
		if err != nil {
			return nil, err
		}
		out[i] = rep
	}
	return out, nil
}
