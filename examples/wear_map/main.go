// Wear map: compile one of the paper's benchmarks under the naive and the
// full endurance configuration, execute both programs on the crossbar
// simulator, and render ASCII heat maps of per-device write counts. The
// naive map shows a few scorched devices; the endurance-managed map is flat.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"plim"
)

func main() {
	bench := flag.String("bench", "sin", "benchmark to visualize")
	shrink := flag.Int("shrink", 2, "datapath shrink (1 = paper scale)")
	flag.Parse()

	eng := plim.NewEngine(plim.WithShrink(*shrink))
	m, err := eng.Benchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d inputs, %d outputs, %d majority nodes\n\n",
		*bench, m.NumPIs(), m.NumPOs(), m.Statistics().MajNodes)

	inputs := make([]bool, m.NumPIs())
	for i := range inputs {
		inputs[i] = i%3 == 0
	}

	for _, cfg := range []plim.Config{plim.Naive, plim.Full, plim.FullCap(10)} {
		rep, err := eng.Run(context.Background(), m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		_, xbar, err := plim.Execute(rep.Result.Program, inputs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: #I=%d #R=%d min/max=%d/%d stdev=%.2f\n",
			cfg.Name, rep.NumInstructions(), rep.NumRRAMs(),
			rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)
		fmt.Println(xbar.WearMap(rep.NumRRAMs()))
		fmt.Println()
	}
	fmt.Println("scale: '.' = never written, '0'..'9' = write count relative to the")
	fmt.Println("hottest device of that map. Note how 'full' flattens the profile and")
	fmt.Println("'full+cap10' bounds it at the cost of more devices.")
}
