// Fig. 2 of the paper: "blocked RRAMs". Node A feeds nodes far up the graph,
// so its device stays allocated (blocked) while siblings B and C are
// released and recycled quickly. The endurance-aware node selection
// (Algorithm 3) computes short-lived values first, shrinking the window in
// which blocked devices sit idle while others accumulate writes.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
)

// fig2 reproduces the paper's example graph:
//
//	A B C   (inputs of the region; A also feeds the root G)
//	D = ⟨A B x⟩, E = ⟨B C y⟩
//	F = ⟨D E z⟩
//	G = ⟨A F w⟩   (root: A must stay alive until here)
func fig2() *plim.MIG {
	m := plim.NewMIG("fig2")
	a := m.AddPI("A")
	b := m.AddPI("B")
	c := m.AddPI("C")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	w := m.AddPI("w")
	d := m.Maj(a, b.Not(), x)
	e := m.Maj(b, c.Not(), y)
	f := m.Maj(d, e.Not(), z)
	g := m.Maj(a.Not(), f, w)
	m.AddPO(g, "G")
	return m
}

func main() {
	m := fig2()
	fmt.Println("Fig. 2: the device holding node A is blocked until the root G")
	fmt.Println("computes, while B's and C's devices are recycled early.")
	fmt.Println()

	// WithEffort(0) is now directly expressible: the selection effect shows
	// up without any rewriting cycles touching the graph.
	ctx := context.Background()
	raw := plim.NewEngine(plim.WithEffort(0))
	for _, cfg := range []plim.Config{plim.Compiler21, plim.Full} {
		rep, err := raw.Run(ctx, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s  #I=%d #R=%d writes min/max=%d/%d stdev=%.2f\n",
			cfg.Name, rep.NumInstructions(), rep.NumRRAMs(),
			rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)
	}

	// Scale the phenomenon up: many independent Fig.2-like regions in
	// parallel. Each region produces one long-lived value (consumed only at
	// the very top, like node A) and a chain of short-lived values (like B
	// and C). With many computable candidates at once, the selection policy
	// decides whether blocked devices pile up early (standard: the
	// long-lived nodes release the most devices, so they are computed
	// first) or late (Algorithm 3: largest fanout level index goes last).
	big := plim.NewMIG("fig2-large")
	var longLived []plim.Signal
	var chainEnds []plim.Signal
	for r := 0; r < 24; r++ {
		p := big.AddPI(fmt.Sprintf("p%d", r))
		q := big.AddPI(fmt.Sprintf("q%d", r))
		s := big.AddPI(fmt.Sprintf("s%d", r))
		longLived = append(longLived, big.Maj(p, q.Not(), s))
		cur := big.Maj(q, s.Not(), p)
		for i := 0; i < 6; i++ {
			nx := big.AddPI(fmt.Sprintf("n%d_%d", r, i))
			cur = big.Maj(cur, nx.Not(), p)
		}
		chainEnds = append(chainEnds, cur)
	}
	// Chains combine pairwise (short waits); the long-lived values are all
	// consumed only at the very top (long waits — the blocked devices).
	top := chainEnds[0]
	for _, s := range chainEnds[1:] {
		top = big.Maj(top, s.Not(), plim.Const1)
	}
	for _, s := range longLived {
		top = big.Maj(top, s.Not(), plim.Const1)
	}
	big.AddPO(top, "out")

	fmt.Println()
	fmt.Println("Scaled up (24 blocked regions):")
	eng := plim.NewEngine()
	for _, cfg := range []plim.Config{plim.Compiler21, plim.MinWrite, plim.Full} {
		rep, err := eng.Run(ctx, big, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s  #I=%d #R=%d writes min/max=%d/%d stdev=%.2f\n",
			cfg.Name, rep.NumInstructions(), rep.NumRRAMs(),
			rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)
	}
	fmt.Println()
	fmt.Println("Algorithm 3 (the 'full' row) postpones long-waiting nodes, which")
	fmt.Println("the paper shows can only reduce — not eliminate — the imbalance")
	fmt.Println("caused by blocked devices.")
}
