// Package progress defines the typed progress events emitted by the
// long-running parts of the flow — MIG rewriting and benchmark-suite runs —
// and the callback type that receives them. The public facade re-exports
// the event types (plim.Event*, plim.WithProgress); internal packages emit
// them through a Func threaded down from the caller.
package progress

import (
	"context"
	"time"
)

// Event is a progress notification. The concrete types are RewriteCycle,
// CompileStart, CompileDone, BenchmarkStart, BenchmarkDone and
// ExecuteChunk.
type Event interface{ event() }

// Func receives progress events. A nil Func discards them. Unless the
// caller says otherwise (plim.Engine serializes), a Func may be invoked
// concurrently from worker goroutines.
type Func func(Event)

// Emit delivers ev unless f is nil.
func (f Func) Emit(ev Event) {
	if f != nil {
		f(ev)
	}
}

// ctxKey keys the per-call observer carried by a context.
type ctxKey struct{}

// NewContext returns a context carrying f as a per-call progress observer.
// Engine methods deliver the events of a call to the observer of the
// context the call was made with, in addition to any construction-time
// callback — the mechanism behind per-request progress streams in servers
// that share one long-lived engine. A nil f returns ctx unchanged; an
// observer already present is replaced for the derived context.
func NewContext(ctx context.Context, f Func) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, f)
}

// FromContext extracts the per-call observer from ctx (nil when absent).
func FromContext(ctx context.Context) Func {
	f, _ := ctx.Value(ctxKey{}).(Func)
	return f
}

// RewriteCycle reports one completed MIG-rewriting cycle.
type RewriteCycle struct {
	Function string // name of the MIG being rewritten
	Config   string // configuration name, "" outside a configuration run
	Cycle    int    // 1-based index of the completed cycle
	Effort   int    // total cycle budget
	Nodes    int    // majority nodes after the cycle
}

// CompileStart reports that the compile/alloc stage of one configuration
// began. In a staged run several configurations share one rewrite, so
// compile events are the per-configuration signal.
type CompileStart struct {
	Function string // name of the MIG being compiled
	Config   string // configuration name
}

// CompileDone reports that the compile/alloc stage of one configuration
// finished (Err != nil on failure). Instructions and RRAMs carry the
// paper's #I and #R on success.
type CompileDone struct {
	Function     string
	Config       string
	Elapsed      time.Duration
	Instructions int
	RRAMs        int
	Err          error
}

// BenchmarkStart reports that a suite job began building and compiling.
type BenchmarkStart struct {
	Benchmark string
	Index     int // position in the suite's benchmark list
	Total     int // number of benchmarks in the run
}

// BenchmarkDone reports that a suite job finished (Err != nil on failure).
type BenchmarkDone struct {
	Benchmark string
	Index     int
	Total     int
	Elapsed   time.Duration
	Err       error
}

// ExecuteChunk reports that a batched execution finished one 64-lane chunk
// (done in 1..Total). Vectors is the whole batch size; a chunk evaluates up
// to 64 of them.
type ExecuteChunk struct {
	Program string // name of the program being executed
	Done    int    // chunks completed
	Total   int    // chunks in the batch
	Vectors int    // vectors in the batch
}

// TaskStart reports that a scheduler worker picked up one DAG task.
// Kind is the task kind (generate, rewrite, compile, exec_chunk, join)
// and Label names the work unit (benchmark, stage or configuration).
type TaskStart struct {
	Kind  string
	Label string
}

// TaskDone reports that a scheduler task finished executing.
type TaskDone struct {
	Kind    string
	Label   string
	Elapsed time.Duration
}

func (RewriteCycle) event()   {}
func (CompileStart) event()   {}
func (CompileDone) event()    {}
func (BenchmarkStart) event() {}
func (BenchmarkDone) event()  {}
func (ExecuteChunk) event()   {}
func (TaskStart) event()      {}
func (TaskDone) event()       {}
