package exec

import "fmt"

// Builder packs vectors into a Batch one at a time, without knowing the
// final count up front — the streaming input path of the serving layer
// feeds it one NDJSON line per vector. The first vector fixes the width;
// word columns grow by one per 64 vectors (amortized append), so memory
// tracks the packed size of what has arrived, never the raw text.
//
// A Builder is single-goroutine. After an AddString error the builder may
// hold a partially packed vector and must be discarded.
type Builder struct {
	lines int
	n     int
	words [][]uint64 // [line][chunk]
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{lines: -1} }

// Len reports how many vectors have been added.
func (bu *Builder) Len() int { return bu.n }

// Lines reports the vector width fixed by the first vector (-1 before it).
func (bu *Builder) Lines() int { return bu.lines }

// AddString appends one "0101"-style vector (character i is line i).
func (bu *Builder) AddString(vec string) error {
	if bu.lines < 0 {
		bu.lines = len(vec)
		bu.words = make([][]uint64, bu.lines)
	}
	if len(vec) != bu.lines {
		return fmt.Errorf("exec: vector %d has %d lines, want %d", bu.n, len(vec), bu.lines)
	}
	chunk, bit := bu.n/wordBits, uint(bu.n%wordBits)
	if bit == 0 {
		for i := range bu.words {
			bu.words[i] = append(bu.words[i], 0)
		}
	}
	for i := 0; i < len(vec); i++ {
		switch vec[i] {
		case '0':
		case '1':
			bu.words[i][chunk] |= 1 << bit
		default:
			return fmt.Errorf("exec: vector %d: bad character %q (want 0 or 1)", bu.n, vec[i])
		}
	}
	bu.n++
	return nil
}

// Batch freezes the builder into a Batch aliasing its storage; the builder
// must not be used afterwards. Lanes beyond Len() were never set, so the
// batch is canonical (equal content ⇒ equal Hash) like every other
// constructor's.
func (bu *Builder) Batch() *Batch {
	lines := bu.lines
	if lines < 0 {
		lines = 0
	}
	chunks := (bu.n + wordBits - 1) / wordBits
	words := make([][]uint64, lines)
	for i := range words {
		words[i] = bu.words[i][:chunks:chunks]
	}
	return &Batch{lines: lines, n: bu.n, words: words}
}
