package plim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/core"
	"plim/internal/rewrite"
	"plim/internal/suite"
	"plim/internal/verify"
)

// compileDigest hashes everything the acceptance criteria pin: the binary
// program, the per-device write counts and the #I/#R metrics.
func compileDigest(t *testing.T, res *compile.Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Program.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	var word [8]byte
	for _, w := range res.WriteCounts {
		binary.LittleEndian.PutUint64(word[:], w)
		h.Write(word[:])
	}
	binary.LittleEndian.PutUint64(word[:], uint64(res.NumInstructions))
	h.Write(word[:])
	binary.LittleEndian.PutUint64(word[:], uint64(res.NumRRAMs))
	h.Write(word[:])
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TestCompileGoldenOutputs pins the compiler's exact output — program bytes,
// write counts, #I and #R — on the shrink-2 multiplier rewritten by
// Algorithm 2 at paper effort, for all three selection policies and both
// allocators. The hashes were recorded before the compile-scratch reuse
// landed, so any deviation means the allocation-lean path changed observable
// behaviour, which the refactor must never do.
func TestCompileGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep in short mode")
	}
	m, err := suite.BuildScaled("multiplier", 2)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, _ := rewrite.Run(m, rewrite.Algorithm2, core.DefaultEffort)
	cases := []struct {
		name string
		opts compile.Options
		want string
	}{
		{"node-order/lifo", compile.Options{Selection: compile.NodeOrder, Alloc: alloc.LIFO}, "c27638fe72a2b44c"},
		{"standard/lifo", compile.Options{Selection: compile.Standard, Alloc: alloc.LIFO}, "4f2de26384f4d89f"},
		{"standard/minwrite", compile.Options{Selection: compile.Standard, Alloc: alloc.MinWrite}, "375ee31bce332d83"},
		{"endurance/minwrite", compile.Options{Selection: compile.Endurance, Alloc: alloc.MinWrite}, "d678adec7364eabd"},
		{"endurance/minwrite/cap50", compile.Options{Selection: compile.Endurance, Alloc: alloc.MinWrite, MaxWrites: 50}, "2281cba13ebdb42a"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := compile.Compile(rewritten, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got := compileDigest(t, res)
			if got != tc.want {
				t.Fatalf("compile output changed: digest %s, want %s", got, tc.want)
			}
			// Every golden program must also pass static verification with
			// exact allocator parity and no dead writes — the pinned outputs
			// are proof the verifier accepts real compiler output, and the
			// verifier is proof the pinned outputs waste no endurance.
			vr := verify.Program(res.Program, verify.Options{MaxWrites: tc.opts.MaxWrites})
			verify.CheckWriteParity(vr, res.WriteCounts, "allocator")
			if err := vr.Err(); err != nil {
				t.Fatalf("golden program fails verification: %v", err)
			}
			if len(vr.DeadWrites) != 0 {
				t.Fatalf("golden program has %d dead writes: %v", len(vr.DeadWrites), vr.DeadWrites)
			}
			// A second compile of the same graph (which reuses the pooled
			// scratch the first call released) must be byte-identical too.
			res2, err := compile.Compile(rewritten, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if d2 := compileDigest(t, res2); d2 != got {
				t.Fatalf("repeat compile diverged: %s vs %s", d2, got)
			}
		})
	}
}
