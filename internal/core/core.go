// Package core assembles the paper's endurance-management scheme: it wires
// MIG rewriting (internal/rewrite), node selection and translation
// (internal/compile) and device allocation (internal/alloc) into the named
// configurations evaluated in Shirinzadeh et al., DATE 2017, Tables I–III.
//
// The five incremental configurations of Table I are:
//
//	naive       no rewriting, node-order selection, LIFO allocation
//	compiler21  Algorithm 1 rewriting + standard selection + LIFO ([21])
//	minwrite    compiler21 + the minimum-write-count allocator
//	rewriting   Algorithm 2 rewriting + standard selection + min-write
//	full        Algorithm 2 + Algorithm 3 selection + min-write
//
// Table III adds the maximum-write-count strategy on top of full:
// FullCap(w) for w ∈ {10, 20, 50, 100}.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/cost"
	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/rewrite"
	"plim/internal/sched"
	"plim/internal/stats"
	"plim/internal/verify"
)

// RewriteKind selects the rewriting algorithm applied before compilation.
type RewriteKind uint8

// Rewriting choices.
const (
	RewriteNone RewriteKind = iota
	RewriteAlgorithm1
	RewriteAlgorithm2
)

// String names the rewriting choice.
func (k RewriteKind) String() string {
	switch k {
	case RewriteNone:
		return "none"
	case RewriteAlgorithm1:
		return "algorithm1"
	case RewriteAlgorithm2:
		return "algorithm2"
	}
	return "?"
}

// DefaultEffort is the paper's MIG-rewriting cycle count (§IV).
const DefaultEffort = 5

// Config is one endurance-management configuration.
type Config struct {
	Name      string
	Rewrite   RewriteKind
	Selection compile.Selection
	Alloc     alloc.Kind
	MaxWrites uint64 // 0 = no maximum-write strategy
}

// The named configurations of the paper's evaluation.
var (
	// Naive benefits only from node translation (Table I column 1).
	Naive = Config{Name: "naive", Rewrite: RewriteNone, Selection: compile.NodeOrder, Alloc: alloc.LIFO}
	// Compiler21 is the DAC'16 PLiM compiler (Table I column 2).
	Compiler21 = Config{Name: "compiler21", Rewrite: RewriteAlgorithm1, Selection: compile.Standard, Alloc: alloc.LIFO}
	// MinWrite adds the minimum write count strategy (Table I column 3).
	MinWrite = Config{Name: "minwrite", Rewrite: RewriteAlgorithm1, Selection: compile.Standard, Alloc: alloc.MinWrite}
	// Rewriting swaps in the endurance-aware MIG rewriting (column 4).
	Rewriting = Config{Name: "rewriting", Rewrite: RewriteAlgorithm2, Selection: compile.Standard, Alloc: alloc.MinWrite}
	// Full adds the endurance-aware node selection (column 5).
	Full = Config{Name: "full", Rewrite: RewriteAlgorithm2, Selection: compile.Endurance, Alloc: alloc.MinWrite}
)

// FullCap is Full plus the maximum write count strategy (Table III).
func FullCap(w uint64) Config {
	c := Full
	c.Name = fmt.Sprintf("full+cap%d", w)
	c.MaxWrites = w
	return c
}

// TableIConfigs returns the five configurations of Table I in column order.
func TableIConfigs() []Config {
	return []Config{Naive, Compiler21, MinWrite, Rewriting, Full}
}

// Report is the outcome of running one configuration on one function.
type Report struct {
	Config  Config
	Rewrite rewrite.Stats
	Result  *compile.Result
	// Writes summarizes the per-device write counts (paper's min/max/STDEV).
	Writes stats.Summary
	// Verify is the static verification report for the compiled program;
	// nil unless the run was verified (StagedOptions.Verify /
	// plim.WithVerify). A non-nil report has no hard violations — those
	// fail the compile — but may list dead-write warnings.
	Verify *verify.Report
	// Cost is the per-run price of the compiled program under the
	// configured cost model (StagedOptions.CostModel / plim.WithCostModel);
	// nil without one. When the run is verified, static and allocator cost
	// parity has been proven before this report exists.
	Cost *cost.Cost
}

// NumInstructions is the paper's #I.
func (r *Report) NumInstructions() int { return r.Result.NumInstructions }

// NumRRAMs is the paper's #R.
func (r *Report) NumRRAMs() int { return r.Result.NumRRAMs }

// Lifetime estimates how many executions of the compiled program a memory
// with the given per-device endurance survives.
func (r *Report) Lifetime(endurance uint64) uint64 {
	return stats.Lifetime(r.Result.WriteCounts, endurance)
}

// PipelineFor maps a rewrite kind onto its pass schedule. RewriteNone maps
// to a nil pipeline.
func PipelineFor(kind RewriteKind) ([]rewrite.Pass, error) {
	switch kind {
	case RewriteNone:
		return nil, nil
	case RewriteAlgorithm1:
		return rewrite.Algorithm1, nil
	case RewriteAlgorithm2:
		return rewrite.Algorithm2, nil
	}
	return nil, fmt.Errorf("core: unknown rewrite kind %d", kind)
}

// Rewrite applies kind's pass schedule to m for up to effort cycles. The
// input MIG is not modified. RewriteNone only drops dangling nodes (every
// configuration compiles live nodes only); its stats report the node
// counts with zero cycles. obs (which may be nil) receives a
// progress.RewriteCycle event — tagged with cfgName, which may be empty —
// after every completed cycle. On cancellation the MIG is nil and the
// error is ctx.Err().
func Rewrite(ctx context.Context, m *mig.MIG, kind RewriteKind, effort int, obs progress.Func, cfgName string) (*mig.MIG, rewrite.Stats, error) {
	pipeline, err := PipelineFor(kind)
	if err != nil {
		return nil, rewrite.Stats{}, err
	}
	if pipeline == nil {
		if err := ctx.Err(); err != nil {
			return nil, rewrite.Stats{}, err
		}
		out := m.Cleanup()
		st := rewrite.Stats{
			NodesBefore:    m.Statistics().MajNodes,
			NodesAfter:     out.Statistics().MajNodes,
			CompHistBefore: m.ComplementHistogram(),
			CompHistAfter:  out.ComplementHistogram(),
		}
		_, st.DepthBefore = m.Levels()
		_, st.DepthAfter = out.Levels()
		return out, st, nil
	}
	return rewrite.RunContext(ctx, m, pipeline, effort, func(cycle, nodes int) {
		obs.Emit(progress.RewriteCycle{
			Function: m.Name, Config: cfgName,
			Cycle: cycle, Effort: effort, Nodes: nodes,
		})
	})
}

// Run rewrites m according to cfg (with the given effort) and compiles it.
// The input MIG is not modified. Cancellation is checked on entry, between
// rewrite cycles and before compilation; on cancellation the error is
// ctx.Err(). obs (which may be nil) receives a progress.RewriteCycle event
// after every completed rewrite cycle and a CompileStart/CompileDone pair
// around the compile/alloc stage.
func Run(ctx context.Context, m *mig.MIG, cfg Config, effort int, obs progress.Func) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur, st, err := Rewrite(ctx, m, cfg.Rewrite, effort, obs, cfg.Name)
	if err != nil {
		return nil, err
	}
	return CompileConfig(ctx, cur, cfg, st, obs, nil, false, nil)
}

// CompileConfig runs the compile/alloc stage of one configuration on an
// already-rewritten MIG, emitting CompileStart/CompileDone progress events.
// rst is the rewriting statistics to attach to the report (the staged
// runner shares one rewrite across several configurations). Scratch state
// is drawn from pool; a nil pool falls back to the compile package's shared
// default pool, so the fast path is always allocation-lean.
//
// When doVerify is set, the compiled program is statically verified
// (internal/verify) before the report is returned: def-before-use, range,
// output liveness, the policy's wear cap and static-vs-allocator write
// parity. A hard violation fails the compile; dead-write warnings land in
// Report.Verify.
//
// cm, when non-nil, prices the compilation (compile.Options.CostModel);
// with doVerify additionally set, static-vs-allocator cost parity is
// checked and a divergence fails the compile like any other violation.
func CompileConfig(ctx context.Context, rewritten *mig.MIG, cfg Config, rst rewrite.Stats, obs progress.Func, pool *compile.ScratchPool, doVerify bool, cm *cost.Model) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obs.Emit(progress.CompileStart{Function: rewritten.Name, Config: cfg.Name})
	start := time.Now()
	copts := compile.Options{
		Selection: cfg.Selection,
		Alloc:     cfg.Alloc,
		MaxWrites: cfg.MaxWrites,
		CostModel: cm,
	}
	var res *compile.Result
	var err error
	if pool != nil {
		res, err = compile.CompileWith(rewritten, copts, pool)
	} else {
		res, err = compile.Compile(rewritten, copts)
	}
	done := progress.CompileDone{
		Function: rewritten.Name, Config: cfg.Name,
		Elapsed: time.Since(start), Err: err,
	}
	if err == nil {
		done.Instructions = res.NumInstructions
		done.RRAMs = res.NumRRAMs
	}
	obs.Emit(done)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
	}
	report := &Report{
		Config:  cfg,
		Rewrite: rst,
		Result:  res,
		Writes:  stats.Summarize(res.WriteCounts),
		Cost:    res.Cost,
	}
	if doVerify {
		vr := verify.Program(res.Program, verify.Options{MaxWrites: cfg.MaxWrites, CostModel: cm})
		verify.CheckWriteParity(vr, res.WriteCounts, "allocator")
		if res.Cost != nil {
			verify.CheckCostParity(vr, *res.Cost, "allocator")
		}
		if err := vr.Err(); err != nil {
			return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
		}
		report.Verify = vr
	}
	return report, nil
}

// Stage is one rewrite stage of an execution plan: the set of planned
// configurations (as indices into the planned slice) that share a single
// rewriting pipeline and therefore a single rewritten MIG.
type Stage struct {
	Kind    RewriteKind
	Configs []int
}

// Plan groups configurations by rewriting kind, preserving the order of
// first appearance. The five Table I configurations plan into three
// stages: none{naive}, algorithm1{compiler21, minwrite} and
// algorithm2{rewriting, full} — so a staged run performs two rewrites
// instead of four.
func Plan(cfgs []Config) []Stage {
	var stages []Stage
	index := make(map[RewriteKind]int, 3)
	for i, cfg := range cfgs {
		si, ok := index[cfg.Rewrite]
		if !ok {
			si = len(stages)
			index[cfg.Rewrite] = si
			stages = append(stages, Stage{Kind: cfg.Rewrite})
		}
		stages[si].Configs = append(stages[si].Configs, i)
	}
	return stages
}

// stageLabel names a stage in RewriteCycle progress events: the sole
// configuration's name when the stage is private, the rewrite kind when it
// is shared.
func stageLabel(st Stage, cfgs []Config) string {
	if len(st.Configs) == 1 {
		return cfgs[st.Configs[0]].Name
	}
	return st.Kind.String()
}

// StagedOptions configures RunStaged.
type StagedOptions struct {
	// Effort is the rewriting cycle budget (0 = no cycles).
	Effort int
	// Workers sizes a transient scheduler when Sched is nil: values ≤ 1
	// run the plan on one worker, in deterministic depth-first order.
	Workers int
	// Sched, when non-nil, executes the plan's tasks on a shared
	// process-wide scheduler instead of a transient one (plim.Engine
	// threads its pool through here, so every call of one engine — and
	// every server request — interleaves at task granularity).
	Sched *sched.Pool
	// Cache memoizes rewrite stages across calls; nil rewrites afresh.
	Cache *RewriteCache
	// Scratch, when non-nil, supplies reusable compile scratch state to the
	// per-configuration compile jobs (plim.Engine threads its pool through
	// here); nil uses the compile package's shared default pool.
	Scratch *compile.ScratchPool
	// Progress receives rewrite-cycle, compile start/done and scheduler
	// task start/done events. It may be invoked concurrently when the
	// schedule runs on several workers.
	Progress progress.Func
	// Verify statically verifies every compiled program (see
	// CompileConfig); a hard violation fails that configuration's compile.
	Verify bool
	// CostModel, when non-nil, prices every compilation (Report.Cost) and
	// — with Verify set — proves static-vs-allocator cost parity.
	CostModel *cost.Model
}

// StagedGraph adds the staged plan of cfgs to graph g: one rewrite task
// per distinct rewriting pipeline, one compile task per configuration
// (depending on its stage's rewrite), all depending on dep when non-nil.
// mFn supplies the input MIG; it is called from task bodies after dep has
// completed and may return nil to signal that upstream work failed, in
// which case no stage runs and no events are emitted. Successful compiles
// write their reports into out (indexed like cfgs).
//
// The returned leaves are the plan's compile tasks (join/aggregation tasks
// should depend on them) and finish composes the plan's error in stage
// order; it must only be called after every leaf completed (e.g. from a
// task depending on all of them, or after Graph.Wait).
func StagedGraph(g *sched.Graph, dep *sched.Task, mFn func() *mig.MIG, cfgs []Config, opts StagedOptions, out []*Report) (leaves []*sched.Task, finish func() error) {
	stages := Plan(cfgs)
	rms := make([]*mig.MIG, len(stages))
	rsts := make([]rewrite.Stats, len(stages))
	rwErrs := make([]error, len(stages))
	cmpErrs := make([]error, len(cfgs))
	leaves = make([]*sched.Task, 0, len(cfgs))
	for si, st := range stages {
		label := stageLabel(st, cfgs)
		rw := g.Task(sched.KindRewrite, label, func(ctx context.Context) {
			m := mFn()
			if m == nil {
				return // upstream failure; its error is reported there
			}
			rms[si], rsts[si], rwErrs[si] = opts.Cache.Rewrite(ctx, m, st.Kind, opts.Effort, opts.Progress, label)
		}, dep)
		for _, ci := range st.Configs {
			ct := g.Task(sched.KindCompile, cfgs[ci].Name, func(ctx context.Context) {
				if rms[si] == nil {
					return // stage rewrite failed or was skipped
				}
				out[ci], cmpErrs[ci] = CompileConfig(ctx, rms[si], cfgs[ci], rsts[si], opts.Progress, opts.Scratch, opts.Verify, opts.CostModel)
			}, rw)
			leaves = append(leaves, ct)
		}
	}
	finish = func() error {
		var errs []error
		for si, st := range stages {
			if rwErrs[si] != nil {
				errs = append(errs, rwErrs[si])
				continue
			}
			for _, ci := range st.Configs {
				if cmpErrs[ci] != nil {
					errs = append(errs, cmpErrs[ci])
				}
			}
		}
		return errors.Join(errs...)
	}
	return leaves, finish
}

// RunStaged runs several configurations on the same function as a staged
// plan: each distinct rewriting pipeline runs once (memoized through
// opts.Cache when set) and the compile/alloc stages fan out over the
// shared rewritten MIG as independent scheduler tasks — on opts.Sched when
// set, otherwise on a transient opts.Workers-sized pool. Reports are
// returned in configuration order and are identical to those of sequential
// per-configuration Run calls. On cancellation the error is ctx.Err()
// itself; unstarted tasks of the plan never run.
func RunStaged(ctx context.Context, m *mig.MIG, cfgs []Config, opts StagedOptions) ([]*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := opts.Sched
	if pool == nil {
		pool = sched.New(opts.Workers)
		defer pool.Stop()
	}
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	g := pool.NewGraph(ctx, sched.GraphOptions{Deadline: deadline, Progress: opts.Progress})
	out := make([]*Report, len(cfgs))
	_, finish := StagedGraph(g, nil, func() *mig.MIG { return m }, cfgs, opts, out)
	if err := g.Wait(); err != nil {
		// Cancellation surfaces as ctx.Err() itself (the documented
		// contract), not wrapped inside errors.Join.
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll runs several configurations on the same function as a staged plan
// on a single transient worker, checking cancellation between stages and
// configurations. Reports match sequential Run calls exactly.
func RunAll(ctx context.Context, m *mig.MIG, cfgs []Config, effort int, obs progress.Func) ([]*Report, error) {
	return RunStaged(ctx, m, cfgs, StagedOptions{Effort: effort, Progress: obs})
}
