package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// gcTestHookBeforeRemove, when non-nil, runs before each eviction attempt —
// tests use it to interleave a load's recency refresh with the sweep.
var gcTestHookBeforeRemove func(path string)

// GCStats reports what one garbage-collection sweep did.
type GCStats struct {
	Scanned      int   // cache entries examined
	Removed      int   // cache entries deleted (age- or size-evicted)
	RemovedBytes int64 // bytes freed by deleting entries
	TempsRemoved int   // stray .tmp-* files reaped
	Entries      int   // cache entries remaining after the sweep
	Bytes        int64 // bytes remaining after the sweep
}

// GC bounds the cache directory: it deletes entries older than maxAge,
// then — oldest first — entries beyond the maxBytes size budget, and reaps
// stray .tmp-* files left behind by crashed writers. A zero (or negative)
// maxAge or maxBytes disables that limit, so GC(0, 0) only reaps temp
// files and reports the directory's size.
//
// "Oldest" is by modification time, which stores set and successful loads
// refresh (see load), so eviction order approximates least-recently-used.
// GC is safe to run concurrently with readers and writers sharing the
// directory: a deleted entry reads as a miss and is simply recomputed and
// stored again, an entry whose modification time moved forward after the
// scan (a load's recency refresh, or a fresh store) is spared rather than
// evicted on its stale age, and a concurrent store of a scanned entry at
// worst makes this sweep's accounting slightly stale. Individual deletions
// are best-effort; only an unreadable directory is an error.
func (c *Cache) GC(maxAge time.Duration, maxBytes int64) (GCStats, error) {
	var st GCStats
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return st, fmt.Errorf("diskcache: gc: %w", err)
	}
	type entry struct {
		path    string
		size    int64
		modTime time.Time
	}
	var entries []entry
	now := time.Now()
	tempCutoff := now.Add(-staleTempAge)
	for _, de := range des {
		name := de.Name()
		fi, err := de.Info()
		if err != nil || !fi.Mode().IsRegular() {
			continue // deleted concurrently, or not ours
		}
		switch {
		case filepath.Ext(name) == ".plimcache":
			entries = append(entries, entry{
				path:    filepath.Join(c.dir, name),
				size:    fi.Size(),
				modTime: fi.ModTime(),
			})
		case len(name) > 5 && name[:5] == ".tmp-":
			if fi.ModTime().Before(tempCutoff) {
				if os.Remove(filepath.Join(c.dir, name)) == nil {
					st.TempsRemoved++
				}
			}
		}
	}
	st.Scanned = len(entries)
	sort.Slice(entries, func(i, j int) bool { return entries[i].modTime.Before(entries[j].modTime) })
	var total int64
	for _, e := range entries {
		total += e.size
	}
	ageCutoff := now.Add(-maxAge)
	remove := func(e entry) {
		if gcTestHookBeforeRemove != nil {
			gcTestHookBeforeRemove(e.path)
		}
		// Re-check right before deleting: between the scan and this point a
		// load may have Chtimes-refreshed the entry (or a writer renamed a
		// fresh file over it), and a just-used entry must not be evicted on
		// its stale scan-time age. An entry already gone (another GC, a
		// concurrent janitor) is simply not counted — never an error.
		fi, err := os.Stat(e.path)
		if err != nil || fi.ModTime().After(e.modTime) {
			return
		}
		// A concurrent deleter racing us between the stat and here is fine;
		// only count and discount entries we actually removed.
		if os.Remove(e.path) == nil {
			st.Removed++
			st.RemovedBytes += e.size
			total -= e.size
		}
	}
	kept := entries[:0]
	for _, e := range entries {
		if maxAge > 0 && e.modTime.Before(ageCutoff) {
			remove(e)
		} else {
			kept = append(kept, e)
		}
	}
	if maxBytes > 0 {
		for _, e := range kept {
			if total <= maxBytes {
				break
			}
			remove(e)
		}
	}
	st.Entries = st.Scanned - st.Removed
	st.Bytes = total
	return st, nil
}
