// Package server exposes a plim.Engine over HTTP/JSON as a long-lived
// shared service: POST /v1/compile, /v1/rewrite and /v1/suite run the
// engine, POST /v1/execute compiles and then evaluates a program over a
// batch of input vectors with the 64-wide bit-sliced executor, GET
// /v1/benchmarks lists the paper's benchmarks, and /healthz and /metrics
// make the daemon operable. Beyond handler glue the package
// provides the serving machinery a shared compiler needs:
//
//   - admission control: a bounded in-flight budget sized from the engine's
//     worker count; beyond it requests are rejected with 429 + Retry-After
//     instead of accepting unboundedly. Admitted flights submit task graphs
//     to the engine's shared work-stealing scheduler, which multiplexes all
//     flights over one worker pool ordered by request deadline (timeout_ms
//     → graph priority), so a flight never occupies a serving slot for its
//     full wall-clock and per-request deadlines map onto context
//     cancellation end to end;
//   - request coalescing: identical in-flight requests share one
//     computation (and one admission slot) on top of the engine's
//     singleflight caches, so a thundering herd compiles once and every
//     client receives the byte-identical response;
//   - live progress: any compute request with Accept: text/event-stream
//     receives the engine's typed progress events as server-sent events,
//     fanned out per request via plim.ContextWithProgress — coalesced
//     followers replay the full stream of the shared computation;
//   - operability: /metrics exposes request counts, latency histograms,
//     coalescing/admission counters, scheduler depth/steal/task-latency
//     series and both cache tiers in Prometheus text format.
//
// POST /v1/execute additionally accepts a streamed NDJSON body
// (Content-Type: application/x-ndjson): the first line is the JSON request
// without a vector source, each following line one "0101" input vector,
// packed incrementally so the body is never buffered whole.
//
// cmd/plimserve wraps the package as a daemon with graceful drain and a
// periodic disk-cache janitor.
package server

import (
	"fmt"
	"time"

	"plim"
)

// computeRequest is the body shared by the three compute endpoints; each
// endpoint ignores the fields it has no use for.
type computeRequest struct {
	// Benchmark names one of the paper's benchmarks; Netlist inlines a .mig
	// netlist. Exactly one must be set on /v1/compile and /v1/rewrite;
	// /v1/suite takes the Benchmarks list instead.
	Benchmark string `json:"benchmark,omitempty"`
	Netlist   string `json:"netlist,omitempty"`

	// Config names an endurance configuration (naive, compiler21, minwrite,
	// rewriting, full; default full) for /v1/compile; Configs is the
	// /v1/suite variant (default: the five Table I configurations). A
	// "+capN" suffix (e.g. "full+cap20") applies the maximum-write cap.
	Config  string   `json:"config,omitempty"`
	Configs []string `json:"configs,omitempty"`

	// Cap is the per-device maximum write count (0 = unlimited); an
	// alternative to the "+capN" config suffix on /v1/compile.
	Cap uint64 `json:"cap,omitempty"`

	// Kind selects the rewriting algorithm on /v1/rewrite: none, alg1, alg2.
	Kind string `json:"kind,omitempty"`

	// Shrink divides benchmark datapath widths (0 = the server's default).
	// /v1/suite runs at the server's shrink only.
	Shrink int `json:"shrink,omitempty"`

	// Benchmarks is the /v1/suite benchmark subset (default: all 18).
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Emit adds the compiled program to a /v1/compile response: "asm" for
	// assembly text, "binary" for the base64-encoded binary encoding.
	Emit string `json:"emit,omitempty"`

	// Verify adds a static verification report to a /v1/compile response:
	// def-before-use, footprint range, output liveness, dead writes, the
	// policy's wear cap and static-vs-allocator write parity, proven
	// without executing the program. Violations come back as structured
	// JSON (verification.ok=false), not as an HTTP error.
	Verify bool `json:"verify,omitempty"`

	// Vectors lists /v1/execute input vectors as "0101" strings (character
	// i is primary input i); VectorsPacked is the compact bit-sliced
	// alternative. Random asks the server to generate that many uniformly
	// random vectors from Seed; Exhaustive executes the whole truth table
	// (input count ≤ 20). Exactly one vector source must be set.
	Vectors       []string       `json:"vectors,omitempty"`
	VectorsPacked *packedVectors `json:"vectors_packed,omitempty"`
	Random        int            `json:"random,omitempty"`
	Seed          int64          `json:"seed,omitempty"`
	Exhaustive    bool           `json:"exhaustive,omitempty"`

	// Endurance is the /v1/execute per-device write budget (0 = unlimited);
	// a worn-out device faults the whole batch, reported in the response.
	Endurance uint64 `json:"endurance,omitempty"`

	// Output selects the /v1/execute outputs encoding: "strings" (default)
	// or "packed".
	Output string `json:"output,omitempty"`

	// TimeoutMS caps this request's total time (queue wait included);
	// 0 uses the server default. Coalesced requests share the deadline of
	// the request that started the computation.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Trace records a span-per-task execution trace of the flight and
	// returns it as the response's "trace" block (plus a Server-Timing
	// header with per-stage totals and, on SSE requests, a final "trace"
	// frame). Traced responses embed timings, so the flag joins the
	// coalescing key: traced and untraced requests never share a flight and
	// the untraced warm path stays byte-identical.
	Trace bool `json:"trace,omitempty"`
}

// packedVectors is the bit-sliced wire form of a plim.Batch: line-major
// little-endian uint64 words, base64-encoded ([]byte JSON), with explicit
// dimensions. Lanes beyond N in the last word of each line must be zero.
type packedVectors struct {
	N     int    `json:"n"`
	Lines int    `json:"lines"`
	Words []byte `json:"words"`
}

// writesJSON is the paper's write-distribution summary on the wire.
type writesJSON struct {
	Devices int     `json:"devices"`
	Min     uint64  `json:"min"`
	Max     uint64  `json:"max"`
	Mean    float64 `json:"mean"`
	StdDev  float64 `json:"stdev"`
	Total   uint64  `json:"total"`
}

func summarizeWrites(s plim.WriteSummary) writesJSON {
	return writesJSON{Devices: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean, StdDev: s.StdDev, Total: s.Total}
}

// rewriteStatsJSON is rewrite.Stats on the wire.
type rewriteStatsJSON struct {
	Cycles      int   `json:"cycles"`
	NodesBefore int   `json:"nodes_before"`
	NodesAfter  int   `json:"nodes_after"`
	DepthBefore int32 `json:"depth_before"`
	DepthAfter  int32 `json:"depth_after"`
}

func rewriteStats(st plim.RewriteStats) rewriteStatsJSON {
	return rewriteStatsJSON{
		Cycles: st.Cycles, NodesBefore: st.NodesBefore, NodesAfter: st.NodesAfter,
		DepthBefore: st.DepthBefore, DepthAfter: st.DepthAfter,
	}
}

// compileResponse is the /v1/compile response body.
type compileResponse struct {
	Function      string           `json:"function"`
	Config        string           `json:"config"`
	Shrink        int              `json:"shrink,omitempty"` // set for benchmark sources
	Effort        int              `json:"effort"`
	Rewrite       rewriteStatsJSON `json:"rewrite"`
	Instructions  int              `json:"instructions"`
	RRAMs         int              `json:"rrams"`
	Writes        writesJSON       `json:"writes"`
	Lifetime1e10  uint64           `json:"lifetime_1e10"`
	ProgramAsm    string           `json:"program_asm,omitempty"`
	ProgramBinary []byte           `json:"program_binary,omitempty"` // base64 in JSON
	Verification  *verifyJSON      `json:"verification,omitempty"`   // set when the request asked for verify
	// Cost prices the compiled program under the server's cost model
	// (plimserve -cost-model; static == allocator parity holds whenever
	// verification ran). Unlimited lifetimes carry the raw sentinel value.
	Cost *plim.Cost `json:"cost,omitempty"`
}

// verifyJSON is a static verification report on the wire (verify=true on
// /v1/compile). Violation entries are hard findings; dead writes are
// wasted-endurance warnings.
type verifyJSON struct {
	OK            bool                   `json:"ok"`
	Clean         bool                   `json:"clean"` // ok and no dead writes
	Fingerprint   string                 `json:"program_fingerprint"`
	TotalWrites   uint64                 `json:"total_writes"`
	MaxCellWrites uint64                 `json:"max_cell_writes"`
	CellsWritten  int                    `json:"cells_written"`
	Violations    []plim.VerifyViolation `json:"violations,omitempty"`
	DeadWrites    []plim.VerifyViolation `json:"dead_writes,omitempty"`
}

func verifyReport(r *plim.VerifyReport) *verifyJSON {
	return &verifyJSON{
		OK:            r.OK(),
		Clean:         r.Clean(),
		Fingerprint:   fmt.Sprintf("%016x", r.Fingerprint),
		TotalWrites:   r.TotalWrites,
		MaxCellWrites: r.MaxCellWrites,
		CellsWritten:  r.CellsWritten,
		Violations:    r.Violations,
		DeadWrites:    r.DeadWrites,
	}
}

// rewriteResponse is the /v1/rewrite response body.
type rewriteResponse struct {
	Function string           `json:"function"`
	Kind     string           `json:"kind"`
	Effort   int              `json:"effort"`
	Shrink   int              `json:"shrink,omitempty"`
	Stats    rewriteStatsJSON `json:"stats"`
	MIG      string           `json:"mig"` // the rewritten netlist, .mig text format
}

// suiteReportJSON is one benchmark × configuration cell of a suite result.
type suiteReportJSON struct {
	Instructions int              `json:"instructions"`
	RRAMs        int              `json:"rrams"`
	Writes       writesJSON       `json:"writes"`
	Rewrite      rewriteStatsJSON `json:"rewrite"`
	Cost         *plim.Cost       `json:"cost,omitempty"` // priced under the server's cost model
}

// benchmarkJSON is one entry of /v1/benchmarks.
type benchmarkJSON struct {
	Name      string `json:"name"`
	PI        int    `json:"pi"`
	PO        int    `json:"po"`
	Synthetic bool   `json:"synthetic"`
}

// suiteResponse is the /v1/suite response body. Reports[b][c] pairs
// Benchmarks[b] with Configs[c].
type suiteResponse struct {
	Shrink     int                 `json:"shrink"`
	Effort     int                 `json:"effort"`
	Benchmarks []benchmarkJSON     `json:"benchmarks"`
	Configs    []string            `json:"configs"`
	Reports    [][]suiteReportJSON `json:"reports"`
}

// executeFaultJSON reports an endurance fault of a batched execution.
type executeFaultJSON struct {
	Inst  int    `json:"inst"`
	Error string `json:"error"`
}

// executeResponse is the /v1/execute response body. It carries no timing,
// so warm repeats of the same request are byte-identical (a property the CI
// smoke test pins).
type executeResponse struct {
	Function     string            `json:"function"`
	Config       string            `json:"config"`
	Shrink       int               `json:"shrink,omitempty"`
	Fingerprint  string            `json:"program_fingerprint"`
	Instructions int               `json:"instructions"`
	RRAMs        int               `json:"rrams"`
	Vectors      int               `json:"vectors"`
	Chunks       int               `json:"chunks"`
	Outputs      []string          `json:"outputs,omitempty"`
	OutputsPack  *packedVectors    `json:"outputs_packed,omitempty"`
	Writes       writesJSON        `json:"writes"`
	Switches     uint64            `json:"switches_total"`
	Fault        *executeFaultJSON `json:"fault,omitempty"`
	// Cost prices the executed batch (all lanes of the executed prefix)
	// under the server's cost model; LifetimeRuns stays the per-run bound.
	Cost *plim.Cost `json:"cost,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// eventPayload maps a typed progress event onto its SSE name and JSON
// payload.
func eventPayload(ev plim.Event) (name string, data any) {
	switch ev := ev.(type) {
	case plim.EventRewriteCycle:
		return "rewrite_cycle", struct {
			Function string `json:"function"`
			Config   string `json:"config,omitempty"`
			Cycle    int    `json:"cycle"`
			Effort   int    `json:"effort"`
			Nodes    int    `json:"nodes"`
		}{ev.Function, ev.Config, ev.Cycle, ev.Effort, ev.Nodes}
	case plim.EventCompileStart:
		return "compile_start", struct {
			Function string `json:"function"`
			Config   string `json:"config"`
		}{ev.Function, ev.Config}
	case plim.EventCompileDone:
		return "compile_done", struct {
			Function     string  `json:"function"`
			Config       string  `json:"config"`
			ElapsedMS    float64 `json:"elapsed_ms"`
			Instructions int     `json:"instructions"`
			RRAMs        int     `json:"rrams"`
			Error        string  `json:"error,omitempty"`
		}{ev.Function, ev.Config, ms(ev.Elapsed), ev.Instructions, ev.RRAMs, errString(ev.Err)}
	case plim.EventBenchmarkStart:
		return "benchmark_start", struct {
			Benchmark string `json:"benchmark"`
			Index     int    `json:"index"`
			Total     int    `json:"total"`
		}{ev.Benchmark, ev.Index, ev.Total}
	case plim.EventExecuteChunk:
		return "execute_chunk", struct {
			Program string `json:"program"`
			Done    int    `json:"done"`
			Total   int    `json:"total"`
			Vectors int    `json:"vectors"`
		}{ev.Program, ev.Done, ev.Total, ev.Vectors}
	case plim.EventBenchmarkDone:
		return "benchmark_done", struct {
			Benchmark string  `json:"benchmark"`
			Index     int     `json:"index"`
			Total     int     `json:"total"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Error     string  `json:"error,omitempty"`
		}{ev.Benchmark, ev.Index, ev.Total, ms(ev.Elapsed), errString(ev.Err)}
	case plim.EventTaskStart:
		return "task_start", struct {
			Kind  string `json:"kind"`
			Label string `json:"label"`
		}{ev.Kind, ev.Label}
	case plim.EventTaskDone:
		return "task_done", struct {
			Kind      string  `json:"kind"`
			Label     string  `json:"label"`
			ElapsedMS float64 `json:"elapsed_ms"`
		}{ev.Kind, ev.Label, ms(ev.Elapsed)}
	}
	return "unknown", struct {
		Description string `json:"description"`
	}{fmt.Sprintf("%T", ev)}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
