package plim

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// persistSubset keeps the persistent-cache tests fast while covering a
// functional and a synthetic benchmark.
var persistSubset = []string{"ctrl", "router"}

const persistShrink = 4

func suiteCSV(t *testing.T, eng *Engine) string {
	t.Helper()
	sr, err := eng.RunSuite(context.Background(), TableIConfigs(), persistSubset...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := TableI(sr)
	if err != nil {
		t.Fatal(err)
	}
	return d.Grid().CSV()
}

// TestPersistentCacheWarmSecondEngine is the PR's acceptance criterion at
// the library level: a second engine (standing in for a second CLI
// invocation) over a warm cache directory performs zero rewrite cycles —
// asserted via progress events — and produces byte-identical tables.
func TestPersistentCacheWarmSecondEngine(t *testing.T) {
	dir := t.TempDir()

	var mu sync.Mutex
	cycles := 0
	countCycles := WithProgress(func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := ev.(EventRewriteCycle); ok {
			cycles++
		}
	})

	cold := NewEngine(WithShrink(persistShrink), WithPersistentCache(dir), countCycles)
	baseline := NewEngine(WithShrink(persistShrink)) // no persistence at all
	csvCold := suiteCSV(t, cold)
	if csvCold != suiteCSV(t, baseline) {
		t.Fatal("persistent-cache run differs from a plain run")
	}
	if cycles == 0 {
		t.Fatal("cold run emitted no rewrite cycles")
	}
	st, ok := cold.PersistentCacheStats()
	if !ok || st.Stores == 0 {
		t.Fatalf("cold run persisted nothing: %+v ok=%v", st, ok)
	}

	cycles = 0
	warm := NewEngine(WithShrink(persistShrink), WithPersistentCache(dir), countCycles)
	csvWarm := suiteCSV(t, warm)
	if cycles != 0 {
		t.Fatalf("warm engine performed %d rewrite cycles, want 0", cycles)
	}
	if csvWarm != csvCold {
		t.Fatalf("warm table differs from cold table:\n--- cold ---\n%s\n--- warm ---\n%s", csvCold, csvWarm)
	}
	st, _ = warm.PersistentCacheStats()
	if st.RewriteHits == 0 || st.BenchmarkHits == 0 {
		t.Fatalf("warm engine reports no disk hits: %+v", st)
	}
	if st.RewriteMisses != 0 || st.BenchmarkMisses != 0 {
		t.Fatalf("warm engine missed on disk: %+v", st)
	}
}

// TestPersistentCacheProgramParity pins disk-served rewrites byte-identical
// to freshly computed ones at the program level, across every Table I
// configuration.
func TestPersistentCacheProgramParity(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	prime := NewEngine(WithShrink(persistShrink), WithPersistentCache(dir))
	m, err := prime.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewEngine(WithShrink(persistShrink)) // computes everything
	warm := NewEngine(WithShrink(persistShrink), WithPersistentCache(dir))
	for _, cfg := range TableIConfigs() {
		if _, err := prime.Run(ctx, m, cfg); err != nil { // populate the disk
			t.Fatal(err)
		}
		rf, err := fresh.Run(ctx, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Run(ctx, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pf, pw bytes.Buffer
		if err := rf.Result.Program.WriteBinary(&pf); err != nil {
			t.Fatal(err)
		}
		if err := rw.Result.Program.WriteBinary(&pw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pf.Bytes(), pw.Bytes()) {
			t.Fatalf("%s: disk-served program differs from freshly computed", cfg.Name)
		}
		if rf.Rewrite != rw.Rewrite {
			t.Fatalf("%s: rewrite stats differ: %+v vs %+v", cfg.Name, rf.Rewrite, rw.Rewrite)
		}
	}
	if st, _ := warm.PersistentCacheStats(); st.RewriteHits == 0 {
		t.Fatalf("warm engine never hit the disk: %+v", st)
	}
}

// TestPersistentCacheConcurrentEngines runs two engines over one cache
// directory at the same time (two processes sharing a directory, modulo
// the process boundary); run under -race in CI. Both must succeed and
// agree byte-for-byte.
func TestPersistentCacheConcurrentEngines(t *testing.T) {
	dir := t.TempDir()
	results := make([]string, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := NewEngine(WithShrink(persistShrink), WithPersistentCache(dir), WithWorkers(2))
			sr, err := eng.RunSuite(context.Background(), TableIConfigs(), persistSubset...)
			if err != nil {
				errs[i] = err
				return
			}
			d, err := TableI(sr)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = d.Grid().CSV()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	if results[0] != results[1] {
		t.Fatal("concurrent engines produced different tables")
	}
	if results[0] != suiteCSV(t, NewEngine(WithShrink(persistShrink))) {
		t.Fatal("concurrent engines diverged from the uncached reference")
	}
}

// TestPersistentCacheBadDirSurfaces: an unusable directory is reported by
// the first engine method, like any other invalid option.
func TestPersistentCacheBadDirSurfaces(t *testing.T) {
	eng := NewEngine(WithPersistentCache("/dev/null/not-a-dir"))
	if _, err := eng.Benchmark("ctrl"); err == nil {
		t.Fatal("unusable cache directory not surfaced")
	}
}

// TestPersistentCacheImpliesCaching: WithCache(false) + a persistent dir
// still caches (the disk tier hangs below the in-memory caches).
func TestPersistentCacheImpliesCaching(t *testing.T) {
	eng := NewEngine(WithCache(false), WithPersistentCache(t.TempDir()), WithShrink(persistShrink))
	if !eng.Cached() {
		t.Fatal("persistent cache did not enable caching")
	}
	if _, err := eng.Benchmark("ctrl"); err != nil {
		t.Fatal(err)
	}
	if st, ok := eng.PersistentCacheStats(); !ok || st.Stores == 0 {
		t.Fatalf("benchmark build not persisted: %+v ok=%v", st, ok)
	}
}
