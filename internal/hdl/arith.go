package hdl

import (
	"fmt"

	"plim/internal/mig"
)

// FullAdder returns (sum, carry). In native mode it uses the 3-node MIG
// construction carry = ⟨a b c⟩, sum = ⟨carry' ⟨a b c'⟩ c⟩; in netlist mode
// it uses the AND/OR/XOR decomposition an RTL netlist would contain, which
// majority rewriting can later compress.
func (b *Builder) FullAdder(a, c, cin mig.Signal) (sum, cout mig.Signal) {
	if b.Netlist {
		sum = b.M.Xor(b.M.Xor(a, c), cin)
		cout = b.M.Or(b.M.And(a, c), b.M.Or(b.M.And(a, cin), b.M.And(c, cin)))
		return sum, cout
	}
	cout = b.M.Maj(a, c, cin)
	inner := b.M.Maj(a, c, cin.Not())
	sum = b.M.Maj(cout.Not(), inner, cin)
	return sum, cout
}

// Add returns x + y + cin with both operands of equal width; the result has
// the same width plus the carry out.
func (b *Builder) Add(x, y Vec, cin mig.Signal) (Vec, mig.Signal) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("hdl: add width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Vec, len(x))
	c := cin
	for i := range x {
		out[i], c = b.FullAdder(x[i], y[i], c)
	}
	return out, c
}

// Sub returns x - y; borrow is 1 when x < y (unsigned).
func (b *Builder) Sub(x, y Vec) (Vec, mig.Signal) {
	diff, cout := b.Add(x, NotV(y), mig.Const1)
	return diff, cout.Not()
}

// AddSub computes x - y when sub = 1, else x + y, sharing one adder.
func (b *Builder) AddSub(x, y Vec, sub mig.Signal) Vec {
	yy := b.XorV(y, Repeat(sub, len(y)))
	out, _ := b.Add(x, yy, sub)
	return out
}

// Neg returns the two's complement of x.
func (b *Builder) Neg(x Vec) Vec {
	out, _ := b.Add(NotV(x), b.Const(0, len(x)), mig.Const1)
	return out
}

// LtU tests x < y, unsigned.
func (b *Builder) LtU(x, y Vec) mig.Signal {
	_, borrow := b.Sub(x, y)
	return borrow
}

// GeU tests x ≥ y, unsigned.
func (b *Builder) GeU(x, y Vec) mig.Signal { return b.LtU(x, y).Not() }

// MaxU returns the unsigned maximum of x and y plus a flag that is 1 when
// the maximum came from y.
func (b *Builder) MaxU(x, y Vec) (Vec, mig.Signal) {
	fromY := b.LtU(x, y)
	return b.MuxV(fromY, y, x), fromY
}

// Mul returns the full 2n-bit product of two n-bit unsigned operands using
// a shift-add array multiplier.
func (b *Builder) Mul(x, y Vec) Vec {
	n := len(x)
	if n != len(y) {
		panic(fmt.Sprintf("hdl: mul width mismatch %d vs %d", n, len(y)))
	}
	acc := b.Const(0, 2*n)
	for i := 0; i < n; i++ {
		pp := ZeroExt(b.AndBit(x, y[i]), 2*n-i)
		hi, _ := b.Add(acc[i:], pp, mig.Const0)
		copy(acc[i:], hi)
	}
	return acc
}

// Square returns the 2n-bit square of an n-bit operand.
func (b *Builder) Square(x Vec) Vec { return b.Mul(x, x) }

// ConstMulFrac multiplies x (treated as an unsigned integer) by the binary
// expansion of the positive constant c using shift-adds: the result is
// round(x · c) to within the truncation of expansion terms, returned with
// the given output width. terms bounds the number of one-bits of c used.
func (b *Builder) ConstMulFrac(x Vec, c float64, width, terms int) Vec {
	if c < 0 {
		panic("hdl: ConstMulFrac needs a non-negative constant")
	}
	// Find the highest power of two ≤ c, then walk down collecting bits.
	exp := 0
	for float64(uint64(1)<<uint(exp+1)) <= c {
		exp++
	}
	// Work wide enough that neither the operand's high bits nor the largest
	// left shift are lost, then truncate to the requested width (the caller
	// guarantees the product fits).
	wide := width
	if len(x)+exp+1 > wide {
		wide = len(x) + exp + 1
	}
	acc := b.Const(0, wide)
	xw := ZeroExt(x, wide)
	rem := c
	for t := 0; t < terms && exp > -wide && rem > 0; exp-- {
		w := pow2(exp)
		if rem >= w {
			rem -= w
			var shifted Vec
			if exp >= 0 {
				shifted = ShlConst(xw, exp)
			} else {
				shifted = ShrConst(xw, -exp, mig.Const0)
			}
			acc, _ = b.Add(acc, shifted, mig.Const0)
			t++
		}
	}
	return acc[:width]
}

func pow2(e int) float64 {
	v := 1.0
	for i := 0; i < e; i++ {
		v *= 2
	}
	for i := 0; i > e; i-- {
		v /= 2
	}
	return v
}

// DivRem computes restoring division of two equal-width unsigned operands,
// returning quotient and remainder. Division by zero follows the hardware
// recurrence: every trial subtraction of zero succeeds, so the quotient is
// all ones and the remainder replays the dividend.
func (b *Builder) DivRem(num, den Vec) (q, r Vec) {
	n := len(num)
	if n != len(den) {
		panic(fmt.Sprintf("hdl: div width mismatch %d vs %d", n, len(den)))
	}
	w := n + 1 // partial remainder width
	rem := b.Const(0, w)
	denX := ZeroExt(den, w)
	q = make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		rem = Concat(Vec{num[i]}, rem[:w-1]) // rem = rem<<1 | num[i]
		diff, borrow := b.Sub(rem, denX)
		q[i] = borrow.Not()
		rem = b.MuxV(borrow, rem, diff)
	}
	return q, rem[:n]
}

// Sqrt computes the restoring square root of a 2k-bit unsigned operand,
// returning the k-bit root.
func (b *Builder) Sqrt(x Vec) Vec {
	if len(x)%2 != 0 {
		panic("hdl: Sqrt needs an even operand width")
	}
	k := len(x) / 2
	w := k + 2 // partial remainder width
	rem := b.Const(0, w)
	root := b.Const(0, k) // current root, k bits
	for i := k - 1; i >= 0; i-- {
		// rem = rem<<2 | next two operand bits.
		rem = Concat(Vec{x[2*i], x[2*i+1]}, rem[:w-2])
		// trial = root<<2 | 01.
		trial := Concat(Vec{mig.Const1, mig.Const0}, root[:w-2])
		diff, borrow := b.Sub(rem, trial)
		rem = b.MuxV(borrow, rem, diff)
		// root = root<<1 | success.
		root = Concat(Vec{borrow.Not()}, root[:k-1])
	}
	return root
}
