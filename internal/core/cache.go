package core

import (
	"context"
	"sync"

	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/rewrite"
)

// RewriteCache memoizes rewriting runs across configurations, benchmarks
// and engine calls. Entries are keyed by (function fingerprint, rewrite
// kind, effort), so any structurally identical MIG — e.g. the same
// benchmark rebuilt by a later table — reuses the stored result instead of
// rewriting again.
//
// Concurrent callers with the same key share one computation
// (singleflight): the first caller rewrites and emits the progress events,
// the rest wait on the result. Failed computations (typically context
// cancellation) are never cached; the next caller retries.
//
// Cached MIGs are shared across callers and must be treated as read-only.
// The compilation stages only read their input, so the staged runners can
// share entries freely; the public facade clones before handing a cached
// graph to user code.
type RewriteCache struct {
	mu      sync.Mutex
	entries map[rewriteKey]*rewriteEntry
}

type rewriteKey struct {
	fp     uint64
	kind   RewriteKind
	effort int
}

type rewriteEntry struct {
	done chan struct{} // closed when the computation finishes
	m    *mig.MIG
	st   rewrite.Stats
	err  error
}

// NewRewriteCache returns an empty cache.
func NewRewriteCache() *RewriteCache {
	return &RewriteCache{entries: make(map[rewriteKey]*rewriteEntry)}
}

// Len reports the number of cached rewrites.
func (c *RewriteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Rewrite is core.Rewrite memoized through the cache. A nil *RewriteCache
// computes directly (the uncached path). On a hit no progress events are
// emitted — the rewrite simply did not run again.
func (c *RewriteCache) Rewrite(ctx context.Context, m *mig.MIG, kind RewriteKind, effort int, obs progress.Func, label string) (*mig.MIG, rewrite.Stats, error) {
	if err := ctx.Err(); err != nil {
		// Checked up front so a cancelled caller never races a ready cache
		// hit into returning a result.
		return nil, rewrite.Stats{}, err
	}
	if c == nil {
		return Rewrite(ctx, m, kind, effort, obs, label)
	}
	key := rewriteKey{fp: m.Fingerprint(), kind: kind, effort: effort}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &rewriteEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			e.m, e.st, e.err = Rewrite(ctx, m, kind, effort, obs, label)
			if e.err == nil && e.m == m {
				// Effort 0 (or RewriteNone on an already-clean graph) can
				// hand the caller's own MIG back; the cache must never
				// retain a graph the caller may keep mutating.
				e.m = m.Clone()
			}
			if e.err != nil {
				// Don't poison the cache with (usually cancellation)
				// errors; waiters observe it and retry or fail themselves.
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
			close(e.done)
			if e.err != nil {
				return nil, rewrite.Stats{}, e.err
			}
			return e.m, e.st, nil
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				return e.m, e.st, nil
			}
			// The computing caller failed; its entry is gone. Retry: either
			// this caller computes (and reports its own error) or it waits
			// on a newer computation.
		case <-ctx.Done():
			return nil, rewrite.Stats{}, ctx.Err()
		}
	}
}
