// plimserve exposes a shared, long-lived plim.Engine over HTTP/JSON, so
// many clients reuse one warm process (and one cache directory) instead of
// each paying the full rewrite cost in a fresh CLI invocation:
//
//	plimserve -addr :8080 -cache-dir /var/cache/plim
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/compile \
//	     -d '{"benchmark":"adder","config":"full"}'
//	curl -s -N -X POST -H 'Accept: text/event-stream' \
//	     localhost:8080/v1/compile -d '{"benchmark":"div","config":"full"}'
//	curl -s localhost:8080/metrics
//
// The server admits at most -concurrency + -queue in-flight computations
// (beyond that: 429 + Retry-After), coalesces identical in-flight requests
// into one computation, runs every flight's work on the engine's shared
// work-stealing scheduler ordered by request deadline, streams per-request
// progress as server-sent events, and exposes Prometheus metrics. SIGTERM
// (or Ctrl-C) drains gracefully: /healthz flips to 503, in-flight requests
// finish (up to -drain-timeout), then the process exits.
//
// With -cache-dir (default $PLIM_CACHE_DIR) the persistent cache tier is
// shared with the other CLIs, and a periodic janitor (-cache-gc-interval)
// keeps the directory within -cache-max-age / -cache-max-bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"plim"
	"plim/internal/diskcache"
	"plim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		effort      = flag.Int("effort", plim.DefaultEffort, "MIG rewriting cycles (0 = none)")
		shrink      = flag.Int("shrink", 1, "default benchmark datapath shrink")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker pool (also the default -concurrency)")
		cacheBudget = flag.Int("cache-budget", plim.DefaultCacheBudget, "in-memory cache byte budget per tier")
		cacheDir    = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared with plimc/plimtab/... (default $PLIM_CACHE_DIR; empty = off)")
		costPath = flag.String("cost-model", "",
			"JSON instruction cost model pricing every response's cost block (default: built-in)")

		concurrency = flag.Int("concurrency", 0, "in-flight computations counted as running (0 = -workers)")
		queue       = flag.Int("queue", 0, "in-flight computations beyond -concurrency (0 = 4×concurrency); beyond both: 429")
		reqTimeout  = flag.Duration("timeout", time.Minute, "default per-request deadline (<0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")

		gcInterval = flag.Duration("cache-gc-interval", 0, "disk-cache janitor period (0 = off; needs -cache-dir)")
		gcMaxAge   = flag.Duration("cache-max-age", 0, "janitor: delete disk entries older than this (0 = no age limit)")
		gcMaxBytes = flag.Int64("cache-max-bytes", 0, "janitor: keep the disk cache under this many bytes (0 = no size limit)")

		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		verbose      = flag.Bool("v", false, "log every progress event to stderr")
	)
	flag.Parse()

	engOpts := []plim.Option{
		plim.WithEffort(*effort),
		plim.WithShrink(*shrink),
		plim.WithWorkers(*workers),
		plim.WithCacheBudget(*cacheBudget),
		plim.WithPersistentCache(*cacheDir),
	}
	if *costPath != "" {
		cm, err := plim.LoadCostModel(*costPath)
		if err != nil {
			log.Fatal(err)
		}
		engOpts = append(engOpts, plim.WithCostModel(cm))
	}
	if *verbose {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			log.Println(plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	srv := server.New(eng, server.Options{
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gcInterval > 0 || *gcMaxAge > 0 || *gcMaxBytes > 0 {
		if *cacheDir == "" {
			fatal(errors.New("plimserve: the cache janitor flags need -cache-dir"))
		}
		if *gcInterval <= 0 {
			// A budget without a period would be a silently-unenforced
			// limit; default to an hourly sweep instead.
			*gcInterval = time.Hour
			log.Printf("cache janitor: -cache-gc-interval not set, defaulting to %v", *gcInterval)
		}
		go janitor(ctx, *cacheDir, *gcInterval, *gcMaxAge, *gcMaxBytes)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("plimserve listening on %s (effort %d, shrink %d, workers %d, cache-dir %q)",
		*addr, eng.Effort(), eng.Shrink(), eng.Workers(), eng.PersistentCacheDir())

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: advertise unhealthiness first so load balancers stop
	// routing here, then let in-flight requests finish.
	log.Printf("plimserve draining (budget %v)", *drainTimeout)
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("plimserve drain incomplete: %v", err)
		os.Exit(1)
	}
	if s, ok := eng.CacheSummary(); ok {
		log.Print(s)
	}
	log.Printf("plimserve stopped")
}

// janitor periodically bounds the shared cache directory. It opens its own
// diskcache handle: GC is pure directory hygiene, and concurrent engine
// reads/writes tolerate deletions by design (a deleted entry is a miss).
func janitor(ctx context.Context, dir string, interval, maxAge time.Duration, maxBytes int64) {
	c, err := diskcache.Open(dir)
	if err != nil {
		log.Printf("cache janitor disabled: %v", err)
		return
	}
	sweep := func() {
		st, err := c.GC(maxAge, maxBytes)
		if err != nil {
			log.Printf("cache gc: %v", err)
			return
		}
		if st.Removed > 0 || st.TempsRemoved > 0 {
			log.Printf("cache gc: removed %d entries (%d bytes) + %d stray temps; %d entries / %d bytes remain",
				st.Removed, st.RemovedBytes, st.TempsRemoved, st.Entries, st.Bytes)
		}
	}
	// Sweep once up front: a directory that outgrew its budget while the
	// limits were unset must not stay over budget for a whole interval.
	sweep()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		sweep()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
