package exec

import (
	"context"
	"errors"
	"slices"
	"sync"
	"testing"
	"time"

	"plim/internal/rram"
	"plim/internal/sched"
)

// TestRunShardedMatchesSequential is the determinism proof for parallel
// chunk joins: for every Table I policy, outputs, per-cell write counts
// and per-cell switch counts of the sharded run are exactly the
// sequential RunContext's, across several worker counts and batch shapes.
func TestRunShardedMatchesSequential(t *testing.T) {
	_, progs := compileAll(t, "int2float", 2)
	for name, p := range progs {
		pl, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, vectors := range []int{1, 64, 65, 257, 1024} {
			b := Random(pl.NumInputs(), vectors, int64(vectors)*7+3)
			want, err := pl.RunContext(context.Background(), b, Options{})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, vectors, err)
			}
			for _, workers := range []int{2, 3, 8} {
				pool := sched.New(workers)
				got, err := pl.RunSharded(context.Background(), b, Options{}, pool, time.Time{}, nil)
				pool.Stop()
				if err != nil {
					t.Fatalf("%s/%d/w%d: %v", name, vectors, workers, err)
				}
				if !slices.Equal(want.Writes, got.Writes) {
					t.Fatalf("%s/%d/w%d: write counts diverge", name, vectors, workers)
				}
				if !slices.Equal(want.Switches, got.Switches) {
					t.Fatalf("%s/%d/w%d: switch counts diverge", name, vectors, workers)
				}
				if want.Vectors != got.Vectors {
					t.Fatalf("%s/%d/w%d: vectors %d vs %d", name, vectors, workers, want.Vectors, got.Vectors)
				}
				if want.Outputs.Hash() != got.Outputs.Hash() ||
					!slices.Equal(want.Outputs.Strings(), got.Outputs.Strings()) {
					t.Fatalf("%s/%d/w%d: outputs diverge", name, vectors, workers)
				}
			}
		}
	}
}

// TestRunShardedFaultMatchesSequential: an endurance fault in the sharded
// run reports the same instruction and partial wear as the sequential one.
func TestRunShardedFaultMatchesSequential(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["naive"])
	if err != nil {
		t.Fatal(err)
	}
	b := Random(pl.NumInputs(), 300, 0xfeed)
	opts := Options{Endurance: 2}
	want, werr := pl.RunContext(context.Background(), b, opts)
	if werr == nil {
		t.Skip("naive/ctrl does not fault at endurance 2")
	}
	pool := sched.New(4)
	defer pool.Stop()
	got, gerr := pl.RunSharded(context.Background(), b, opts, pool, time.Time{}, nil)
	if gerr == nil {
		t.Fatal("sharded run did not fault")
	}
	var wf, gf *FaultError
	if !errors.As(werr, &wf) || !errors.As(gerr, &gf) {
		t.Fatalf("errors %v / %v are not FaultErrors", werr, gerr)
	}
	if wf.Inst != gf.Inst {
		t.Fatalf("fault at inst %d (sharded) vs %d (sequential)", gf.Inst, wf.Inst)
	}
	if !errors.Is(gerr, rram.ErrWornOut) {
		t.Fatal("sharded fault does not wrap ErrWornOut")
	}
	if !slices.Equal(want.Writes, got.Writes) || !slices.Equal(want.Switches, got.Switches) {
		t.Fatal("partial wear diverges on fault")
	}
}

// TestRunShardedOnChunk: every chunk is reported exactly once with
// monotone done counts (values 1..total, unordered across workers).
func TestRunShardedOnChunk(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["full"])
	if err != nil {
		t.Fatal(err)
	}
	b := Random(pl.NumInputs(), 64*9, 42)
	pool := sched.New(4)
	defer pool.Stop()
	var mu sync.Mutex
	seen := map[int]int{}
	_, err = pl.RunSharded(context.Background(), b, Options{
		OnChunk: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != 9 {
				t.Errorf("total = %d, want 9", total)
			}
			seen[done]++
		},
	}, pool, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 9; d++ {
		if seen[d] != 1 {
			t.Fatalf("done=%d reported %d times", d, seen[d])
		}
	}
}

// TestRunShardedCancellation: a cancelled context surfaces as ctx.Err().
func TestRunShardedCancellation(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["full"])
	if err != nil {
		t.Fatal(err)
	}
	b := Random(pl.NumInputs(), 64*32, 7)
	pool := sched.New(2)
	defer pool.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.RunSharded(ctx, b, Options{}, pool, time.Time{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
