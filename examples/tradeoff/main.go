// Trade-off explorer: the paper's Table III for a single benchmark — sweep
// the maximum write count and report how instructions (#I, latency) and
// devices (#R, area) buy write balance (STDEV) and lifetime.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"plim"
)

func main() {
	bench := flag.String("bench", "square", "benchmark to sweep")
	shrink := flag.Int("shrink", 2, "datapath shrink (1 = paper scale)")
	endurance := flag.Uint64("endurance", 1e6, "device endurance for lifetime estimates")
	flag.Parse()

	ctx := context.Background()
	eng := plim.NewEngine(plim.WithShrink(*shrink))
	m, err := eng.Benchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("maximum-write sweep on %s (endurance %d)\n\n", *bench, *endurance)
	fmt.Printf("%-10s  %8s  %8s  %8s  %8s  %12s\n", "cap", "#I", "#R", "max", "STDEV", "lifetime")

	baseline, err := eng.Run(ctx, m, plim.Naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s  %8d  %8d  %8d  %8.2f  %12d\n", "naive",
		baseline.NumInstructions(), baseline.NumRRAMs(),
		baseline.Writes.Max, baseline.Writes.StdDev, baseline.Lifetime(*endurance))

	for _, cap := range []uint64{0, 100, 50, 20, 10, 6} {
		cfg := plim.Full
		label := "full"
		if cap > 0 {
			cfg = plim.FullCap(cap)
			label = fmt.Sprintf("full+cap%d", cap)
		}
		rep, err := eng.Run(ctx, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %8d  %8d  %8d  %8.2f  %12d\n", label,
			rep.NumInstructions(), rep.NumRRAMs(),
			rep.Writes.Max, rep.Writes.StdDev, rep.Lifetime(*endurance))
	}

	fmt.Println()
	fmt.Println("Tighter caps lower the per-device maximum (longer lifetime) and the")
	fmt.Println("deviation, paying with extra devices — the paper calls cap 100 a good")
	fmt.Println("trade-off and cap 10 the near-uniform extreme.")
}
