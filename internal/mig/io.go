package mig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The .mig text format is a minimal line-oriented netlist:
//
//	.model <name>
//	.pi <name>            one line per primary input, in order
//	.maj <a> <b> <c>      one line per majority node, children as signals
//	.po <signal> [name]   one line per primary output, in order
//	.end
//
// Signals are written as a node index with an optional '!' prefix for
// complementation; "0" is the constant-0 node, so the constants are "0" and
// "!0". Node indices follow the file: the constant is node 0, the i-th .pi
// line is node i+1, and .maj lines continue the numbering.

// Write serializes the MIG in .mig format.
//
// The file format numbers nodes const-first, then all PIs, then all majority
// nodes, while in-memory graphs may interleave PI and majority creation
// freely. Signals are therefore renumbered into file order on the way out —
// writing an interleaved graph with raw in-memory ids would silently rebind
// its edges on Read. Names are written exactly as stored (a nameless PI or
// PO stays nameless), so a Write/Read round-trip of a canonically numbered
// graph preserves Fingerprint() — the property the fingerprint-keyed
// persistent cache depends on.
func (m *MIG) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", m.Name)
	fileID := make([]uint32, len(m.nodes))
	for i, pi := range m.piNodes {
		fileID[pi] = uint32(i + 1)
	}
	next := uint32(len(m.piNodes) + 1)
	for i := range m.nodes {
		if m.nodes[i].kind == KindMaj {
			fileID[i] = next
			next++
		}
	}
	tok := func(s Signal) string {
		if s.Complemented() {
			return fmt.Sprintf("!%d", fileID[s.Node()])
		}
		return fmt.Sprintf("%d", fileID[s.Node()])
	}
	for i := 0; i < m.NumPIs(); i++ {
		if name := m.piNames[i]; name != "" {
			fmt.Fprintf(bw, ".pi %s\n", name)
		} else {
			fmt.Fprintln(bw, ".pi")
		}
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj {
			continue
		}
		fmt.Fprintf(bw, ".maj %s %s %s\n", tok(n.children[0]), tok(n.children[1]), tok(n.children[2]))
	}
	for i, po := range m.pos {
		name := m.poNames[i]
		if name == "" {
			fmt.Fprintf(bw, ".po %s\n", tok(po))
		} else {
			fmt.Fprintf(bw, ".po %s %s\n", tok(po), name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// Read parses a .mig file produced by Write. Majority nodes are inserted
// through RawMaj, which re-canonicalizes on load — children are sorted and
// structurally hashed — but never applies the trivial folding rules, so the
// file's exact node structure is preserved. For a graph in canonical
// numbering (PIs before majority nodes, as produced by Cleanup, the rewrite
// passes and the benchmark generators), Read(Write(m)) reproduces m
// fingerprint-identically; interleaved graphs are renumbered by Write and
// stabilize after one round trip.
func Read(r io.Reader) (*MIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	m := New("")
	// File node numbering: 0 = const, then PIs, then majority nodes in
	// order of appearance. Because our in-memory numbering is identical,
	// signals can be parsed directly, but we validate ordering.
	lineNo := 0
	seenEnd := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				m.Name = fields[1]
			}
		case ".pi":
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			if m.NumMaj() > 0 {
				return nil, fmt.Errorf("mig: line %d: .pi after .maj", lineNo)
			}
			m.AddPI(name)
		case ".maj":
			if len(fields) != 4 {
				return nil, fmt.Errorf("mig: line %d: .maj needs 3 operands", lineNo)
			}
			var sig [3]Signal
			for i := 0; i < 3; i++ {
				s, err := parseSignal(fields[i+1], m.NumNodes())
				if err != nil {
					return nil, fmt.Errorf("mig: line %d: %v", lineNo, err)
				}
				sig[i] = s
			}
			m.RawMaj(sig[0], sig[1], sig[2])
		case ".po":
			if len(fields) < 2 {
				return nil, fmt.Errorf("mig: line %d: .po needs a signal", lineNo)
			}
			s, err := parseSignal(fields[1], m.NumNodes())
			if err != nil {
				return nil, fmt.Errorf("mig: line %d: %v", lineNo, err)
			}
			name := ""
			if len(fields) > 2 {
				name = fields[2]
			}
			m.AddPO(s, name)
		case ".end":
			seenEnd = true
		default:
			return nil, fmt.Errorf("mig: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenEnd {
		return nil, fmt.Errorf("mig: missing .end")
	}
	return m, nil
}

func parseSignal(tok string, numNodes int) (Signal, error) {
	comp := false
	if strings.HasPrefix(tok, "!") {
		comp = true
		tok = tok[1:]
	}
	id, err := strconv.ParseUint(tok, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad signal %q: %v", tok, err)
	}
	if int(id) >= numNodes {
		return 0, fmt.Errorf("signal %q references node %d before its definition", tok, id)
	}
	return MakeSignal(NodeID(id), comp), nil
}

// WriteDOT emits a Graphviz rendering of the MIG: majority nodes as circles,
// complemented edges dashed, PIs as boxes.
func (m *MIG) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", m.Name)
	fmt.Fprintln(bw, `  n0 [label="0",shape=box];`)
	for i := range m.nodes {
		n := &m.nodes[i]
		switch n.kind {
		case KindPI:
			name := m.piNames[n.piIndex]
			if name == "" {
				name = fmt.Sprintf("x%d", n.piIndex)
			}
			fmt.Fprintf(bw, "  n%d [label=%q,shape=box];\n", i, name)
		case KindMaj:
			fmt.Fprintf(bw, "  n%d [label=\"M%d\",shape=circle];\n", i, i)
			for _, c := range n.children {
				style := "solid"
				if c.Complemented() {
					style = "dashed"
				}
				fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", c.Node(), i, style)
			}
		}
	}
	for i, po := range m.pos {
		name := m.poNames[i]
		if name == "" {
			name = fmt.Sprintf("y%d", i)
		}
		style := "solid"
		if po.Complemented() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  po%d [label=%q,shape=invtriangle];\n", i, name)
		fmt.Fprintf(bw, "  n%d -> po%d [style=%s];\n", po.Node(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
