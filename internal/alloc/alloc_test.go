package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLIFOReusesMostRecent(t *testing.T) {
	a := New(LIFO, 0)
	d0 := a.Acquire(2)
	d1 := a.Acquire(2)
	d2 := a.Acquire(2)
	if d0 != 0 || d1 != 1 || d2 != 2 {
		t.Fatalf("fresh devices must be sequential: %d %d %d", d0, d1, d2)
	}
	a.Release(d0)
	a.Release(d2)
	if got := a.Acquire(2); got != d2 {
		t.Fatalf("LIFO must return the most recently released (%d), got %d", d2, got)
	}
	if got := a.Acquire(2); got != d0 {
		t.Fatalf("then the earlier release (%d), got %d", d0, got)
	}
	if a.NumCells() != 3 {
		t.Fatalf("NumCells = %d, want 3", a.NumCells())
	}
}

func TestMinWriteReturnsColdest(t *testing.T) {
	a := New(MinWrite, 0)
	d0 := a.Acquire(2)
	d1 := a.Acquire(2)
	d2 := a.Acquire(2)
	a.NoteWrite(d0, 5)
	a.NoteWrite(d1, 1)
	a.NoteWrite(d2, 3)
	a.Release(d0)
	a.Release(d1)
	a.Release(d2)
	order := []uint32{a.Acquire(2), a.Acquire(2), a.Acquire(2)}
	if order[0] != d1 || order[1] != d2 || order[2] != d0 {
		t.Fatalf("MinWrite order = %v, want [%d %d %d]", order, d1, d2, d0)
	}
}

func TestMinWriteTieBreaksByAddress(t *testing.T) {
	a := New(MinWrite, 0)
	d0 := a.Acquire(2)
	d1 := a.Acquire(2)
	a.NoteWrite(d0, 2)
	a.NoteWrite(d1, 2)
	a.Release(d1)
	a.Release(d0)
	if got := a.Acquire(2); got != d0 {
		t.Fatalf("equal counts must break ties by address: got %d", got)
	}
}

func TestCapRetiresDevices(t *testing.T) {
	a := New(MinWrite, 4)
	d0 := a.Acquire(2)
	a.NoteWrite(d0, 3) // headroom 2 → 3+2 > 4, no longer eligible
	a.Release(d0)
	if !a.Retired(d0) {
		t.Fatalf("device at cap boundary must retire on release")
	}
	d1 := a.Acquire(2)
	if d1 == d0 {
		t.Fatalf("retired device recycled")
	}
}

func TestCapRetiresLazilyFromFreeSet(t *testing.T) {
	// A device released with headroom can still be skipped at Acquire time
	// if... it cannot: free devices are not written. This test pins that
	// assumption: write counts of free devices never change, so a device
	// eligible at release stays eligible at acquire.
	a := New(MinWrite, 10)
	d0 := a.Acquire(2)
	a.NoteWrite(d0, 8)
	a.Release(d0)
	if got := a.Acquire(2); got != d0 {
		t.Fatalf("eligible device must be recycled, got %d", got)
	}
}

func TestAcquireSkipsDevicesWithoutHeadroomForLargerNeed(t *testing.T) {
	// A device that can take 2 more writes but not 3 must be skipped for a
	// need-3 request yet stay available for a later need-2 request.
	a := New(MinWrite, 10)
	d0 := a.Acquire(2)
	a.NoteWrite(d0, 8) // 8+2 ≤ 10, 8+3 > 10
	a.Release(d0)
	d1 := a.Acquire(3)
	if d1 == d0 {
		t.Fatalf("need-3 request must not get a device with only 2 writes of headroom")
	}
	if got := a.Acquire(2); got != d0 {
		t.Fatalf("skipped device must remain in the free set: got %d, want %d", got, d0)
	}

	// Same behaviour for the LIFO stack, preserving stack order.
	l := New(LIFO, 10)
	e0 := l.Acquire(2)
	e1 := l.Acquire(2)
	l.NoteWrite(e1, 8)
	l.Release(e0)
	l.Release(e1) // e1 on top with only 2 writes of headroom
	if got := l.Acquire(3); got != e0 {
		t.Fatalf("LIFO need-3: got %d, want %d", got, e0)
	}
	if got := l.Acquire(2); got != e1 {
		t.Fatalf("LIFO skipped entry lost: got %d, want %d", got, e1)
	}
}

func TestCanWrite(t *testing.T) {
	a := New(LIFO, 5)
	d := a.Acquire(2)
	a.NoteWrite(d, 4)
	if !a.CanWrite(d, 1) {
		t.Fatalf("4+1 ≤ 5 must be allowed")
	}
	if a.CanWrite(d, 2) {
		t.Fatalf("4+2 > 5 must be rejected")
	}
	uncapped := New(LIFO, 0)
	d2 := uncapped.Acquire(2)
	if !uncapped.CanWrite(d2, 1<<40) {
		t.Fatalf("uncapped allocator must always allow writes")
	}
}

func TestNoteWritePanicsBeyondCap(t *testing.T) {
	a := New(LIFO, 2)
	d := a.Acquire(2)
	a.NoteWrite(d, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("NoteWrite beyond cap must panic")
		}
	}()
	a.NoteWrite(d, 1)
}

func TestDoubleReleasePanics(t *testing.T) {
	a := New(LIFO, 0)
	d := a.Acquire(2)
	a.Release(d)
	defer func() {
		if recover() == nil {
			t.Fatalf("double release must panic")
		}
	}()
	a.Release(d)
}

func TestFreeCount(t *testing.T) {
	for _, k := range []Kind{LIFO, MinWrite} {
		a := New(k, 0)
		d0 := a.Acquire(2)
		d1 := a.Acquire(2)
		a.Release(d0)
		a.Release(d1)
		if a.FreeCount() != 2 {
			t.Fatalf("%v: FreeCount = %d, want 2", k, a.FreeCount())
		}
	}
}

func TestKindString(t *testing.T) {
	if LIFO.String() != "lifo" || MinWrite.String() != "minwrite" || Kind(9).String() != "?" {
		t.Fatalf("Kind.String broken")
	}
}

// Property: under MinWrite, every Acquire that recycles returns a device
// whose write count is minimal among the free set at that moment.
func TestMinWriteIsMinimalQuick(t *testing.T) {
	f := func(ops []byte) bool {
		a := New(MinWrite, 0)
		free := map[uint32]bool{}
		inUse := map[uint32]bool{}
		rng := rand.New(rand.NewSource(int64(len(ops))))
		for _, op := range ops {
			switch op % 3 {
			case 0: // acquire
				// Compute expected minimum over the free set.
				var best uint32
				bestW := uint64(1 << 62)
				hasFree := false
				for addr := range free {
					w := a.Writes(addr)
					if !hasFree || w < bestW || (w == bestW && addr < best) {
						best, bestW, hasFree = addr, w, true
					}
				}
				got := a.Acquire(2)
				if hasFree {
					if got != best {
						return false
					}
					delete(free, got)
				}
				inUse[got] = true
			case 1: // write an in-use device
				for addr := range inUse {
					a.NoteWrite(addr, uint64(rng.Intn(4)))
					break
				}
			case 2: // release one in-use device
				for addr := range inUse {
					a.Release(addr)
					delete(inUse, addr)
					free[addr] = true
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a cap, no device's write count ever exceeds the cap as
// long as callers respect CanWrite; Acquire never returns a device without
// headroom.
func TestCapInvariantQuick(t *testing.T) {
	f := func(ops []byte, capSeed uint8) bool {
		cap := uint64(capSeed%20) + 3
		a := New(MinWrite, cap)
		var inUse []uint32
		for _, op := range ops {
			switch op % 3 {
			case 0:
				d := a.Acquire(2)
				if a.Writes(d)+minNeed > cap {
					return false // no headroom
				}
				inUse = append(inUse, d)
			case 1:
				if len(inUse) > 0 {
					d := inUse[int(op)%len(inUse)]
					if a.CanWrite(d, 1) {
						a.NoteWrite(d, 1)
					}
				}
			case 2:
				if len(inUse) > 0 {
					i := int(op) % len(inUse)
					a.Release(inUse[i])
					inUse = append(inUse[:i], inUse[i+1:]...)
				}
			}
		}
		for addr := uint32(0); int(addr) < a.NumCells(); addr++ {
			if a.Writes(addr) > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDebugFacilities(t *testing.T) {
	SetDebugCheck(true)
	defer SetDebugCheck(false)
	var seen []uint32
	DebugAcquireHook = func(addr uint32, writes uint64, pool int) {
		seen = append(seen, addr)
	}
	defer func() { DebugAcquireHook = nil }()
	for _, k := range []Kind{LIFO, MinWrite} {
		seen = nil
		a := New(k, 0)
		d := a.Acquire(2)
		a.NoteWrite(d, 1)
		a.Release(d)
		if got := a.Acquire(2); got != d {
			t.Fatalf("%v: recycle expected", k)
		}
		if len(seen) != 1 || seen[0] != d {
			t.Fatalf("%v: hook saw %v", k, seen)
		}
	}
}

// TestResetMatchesFresh drives a deterministic acquire/write/release script
// against a freshly constructed allocator and against one that previously
// ran a different workload and was Reset — addresses, write counts, cell
// totals and retirements must match exactly. This pins the scratch pool's
// "reused allocator == fresh allocator" contract across both policies and
// the capped path.
func TestResetMatchesFresh(t *testing.T) {
	script := func(a *Allocator, seed int64) ([]uint32, []uint64, []bool) {
		rng := rand.New(rand.NewSource(seed))
		var addrs []uint32
		var inUse []uint32
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0:
				d := a.Acquire(uint64(2 + rng.Intn(2)))
				addrs = append(addrs, d)
				inUse = append(inUse, d)
			case 1:
				if len(inUse) > 0 {
					d := inUse[rng.Intn(len(inUse))]
					if a.CanWrite(d, 1) {
						a.NoteWrite(d, 1)
					}
				}
			case 2:
				if len(inUse) > 0 {
					j := rng.Intn(len(inUse))
					a.Release(inUse[j])
					inUse = append(inUse[:j], inUse[j+1:]...)
				}
			}
		}
		retired := make([]bool, a.NumCells())
		for d := uint32(0); int(d) < a.NumCells(); d++ {
			retired[d] = a.Retired(d)
		}
		return addrs, a.WriteCounts(), retired
	}
	cases := []struct {
		kind Kind
		cap  uint64
	}{
		{LIFO, 0}, {LIFO, 8}, {MinWrite, 0}, {MinWrite, 8},
	}
	for _, tc := range cases {
		fresh := New(tc.kind, tc.cap)
		wantAddrs, wantWrites, wantRetired := script(fresh, 42)

		// Dirty a reusable allocator with a different policy, cap and
		// workload, then Reset it into the case under test.
		reused := New(MinWrite, 6)
		script(reused, 7)
		reused.Reset(tc.kind, tc.cap)
		if reused.Kind() != tc.kind || reused.MaxWrites() != tc.cap {
			t.Fatalf("%v/cap%d: Reset did not apply policy", tc.kind, tc.cap)
		}
		if reused.NumCells() != 0 || reused.FreeCount() != 0 {
			t.Fatalf("%v/cap%d: Reset left state behind", tc.kind, tc.cap)
		}
		gotAddrs, gotWrites, gotRetired := script(reused, 42)

		if len(gotAddrs) != len(wantAddrs) {
			t.Fatalf("%v/cap%d: %d acquisitions vs %d fresh", tc.kind, tc.cap, len(gotAddrs), len(wantAddrs))
		}
		for i := range wantAddrs {
			if gotAddrs[i] != wantAddrs[i] {
				t.Fatalf("%v/cap%d: acquisition %d returned %d, fresh returned %d",
					tc.kind, tc.cap, i, gotAddrs[i], wantAddrs[i])
			}
		}
		for i := range wantWrites {
			if gotWrites[i] != wantWrites[i] {
				t.Fatalf("%v/cap%d: device %d has %d writes, fresh has %d",
					tc.kind, tc.cap, i, gotWrites[i], wantWrites[i])
			}
		}
		for i := range wantRetired {
			if gotRetired[i] != wantRetired[i] {
				t.Fatalf("%v/cap%d: device %d retirement differs", tc.kind, tc.cap, i)
			}
		}
	}
}
