package plim

import (
	"fmt"

	"plim/internal/progress"
)

// Event is a typed progress notification delivered to WithProgress
// callbacks. The concrete types are EventRewriteCycle, EventCompileStart,
// EventCompileDone, EventBenchmarkStart and EventBenchmarkDone; switch on
// them for structured consumption or use FormatEvent for a ready-made
// one-line rendering.
type Event = progress.Event

// EventRewriteCycle reports one completed MIG-rewriting cycle of a Run,
// RunAll, RunSuite or Rewrite call. In a staged run several configurations
// share one rewrite; the Config field then names the shared pipeline
// ("algorithm1"/"algorithm2") instead of a single configuration.
type EventRewriteCycle = progress.RewriteCycle

// EventCompileStart reports that the compile/alloc stage of one
// configuration began.
type EventCompileStart = progress.CompileStart

// EventCompileDone reports that the compile/alloc stage of one
// configuration finished, carrying the paper's #I and #R on success.
type EventCompileDone = progress.CompileDone

// EventBenchmarkStart reports that a RunSuite job began.
type EventBenchmarkStart = progress.BenchmarkStart

// EventBenchmarkDone reports that a RunSuite job finished.
type EventBenchmarkDone = progress.BenchmarkDone

// FormatEvent renders an event as a stable one-line human-readable string,
// as printed by the CLIs under -v.
func FormatEvent(ev Event) string {
	switch ev := ev.(type) {
	case EventRewriteCycle:
		who := ev.Function
		if ev.Config != "" {
			who += "/" + ev.Config
		}
		return fmt.Sprintf("rewrite %s: cycle %d/%d, %d nodes", who, ev.Cycle, ev.Effort, ev.Nodes)
	case EventCompileStart:
		return fmt.Sprintf("compile %s/%s: start", ev.Function, ev.Config)
	case EventCompileDone:
		if ev.Err != nil {
			return fmt.Sprintf("compile %s/%s: FAILED: %s", ev.Function, ev.Config, ev.Err)
		}
		return fmt.Sprintf("compile %s/%s: #I=%d #R=%d in %v",
			ev.Function, ev.Config, ev.Instructions, ev.RRAMs, ev.Elapsed.Round(1e6))
	case EventBenchmarkStart:
		return fmt.Sprintf("bench %s (%d/%d): start", ev.Benchmark, ev.Index+1, ev.Total)
	case EventBenchmarkDone:
		status := "done"
		if ev.Err != nil {
			status = "FAILED: " + ev.Err.Error()
		}
		return fmt.Sprintf("bench %s (%d/%d): %s in %v", ev.Benchmark, ev.Index+1, ev.Total, status, ev.Elapsed.Round(1e6))
	}
	return fmt.Sprintf("unknown event %T", ev)
}
