package isa

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// fuzzSeeds are the golden programs of the unit tests plus degenerate
// shapes (empty, constants-only, negated outputs), encoded to binary —
// the corpus FuzzCodecRoundTrip mutates.
func fuzzSeeds(f *testing.F) {
	seeds := []*Program{
		andnProgram(),
		andProgram(),
		{Name: "", NumCells: 1, POs: []PORef{{Addr: 0}}},
		{
			Name:     "neg",
			NumCells: 4,
			PICells:  []uint32{0, 1, 2},
			POs:      []PORef{{Addr: 3, Neg: true}, {Addr: 0}},
			Insts: []Instruction{
				{A: One, B: Zero, Z: 3},
				{A: Cell(0), B: Cell(1), Z: 3},
				{A: Zero, B: Cell(2), Z: 3},
			},
		},
	}
	for _, p := range seeds {
		var buf bytes.Buffer
		if err := p.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the binary decoder; any
// input it accepts must be a valid program that survives a binary
// re-encode bit-identically and — when its name is assembly-safe — an
// assembly round trip structurally.
func FuzzCodecRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; acceptance is what's checked
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid program: %v", err)
		}
		var bin bytes.Buffer
		if err := p.WriteBinary(&bin); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		p2, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("binary round trip changed the program:\n%+v\nvs\n%+v", p, p2)
		}
		var bin2 bytes.Buffer
		if err := p2.WriteBinary(&bin2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
			t.Fatal("binary encoding is not canonical")
		}
		// The assembly format stores the name as one whitespace-delimited
		// token; only round-trip through it when the name survives that.
		if asmSafeName(p.Name) {
			var asm bytes.Buffer
			if err := p.WriteAsm(&asm); err != nil {
				t.Fatalf("asm encode: %v", err)
			}
			p3, err := ReadAsm(bytes.NewReader(asm.Bytes()))
			if err != nil {
				t.Fatalf("asm round trip rejected %q: %v", asm.String(), err)
			}
			// Normalize: ReadAsm leaves nil slices where WriteAsm printed
			// empty sections.
			if p3.Name != p.Name || p3.NumCells != p.NumCells ||
				len(p3.PICells) != len(p.PICells) || len(p3.POs) != len(p.POs) ||
				len(p3.Insts) != len(p.Insts) {
				t.Fatalf("asm round trip changed the shape:\n%+v\nvs\n%+v", p, p3)
			}
			for i := range p.PICells {
				if p3.PICells[i] != p.PICells[i] {
					t.Fatalf("asm round trip changed PI %d", i)
				}
			}
			for i := range p.POs {
				if p3.POs[i] != p.POs[i] {
					t.Fatalf("asm round trip changed PO %d", i)
				}
			}
			for i := range p.Insts {
				if p3.Insts[i] != p.Insts[i] {
					t.Fatalf("asm round trip changed instruction %d", i)
				}
			}
		}
	})
}

// asmSafeName reports whether the assembly format can carry the name: a
// single non-empty printable token with no whitespace and no comment
// leaders.
func asmSafeName(name string) bool {
	if name == "" {
		return false
	}
	if strings.HasPrefix(name, "#") || strings.HasPrefix(name, ";") {
		return false
	}
	for _, r := range name {
		if unicode.IsSpace(r) || !unicode.IsPrint(r) {
			return false
		}
	}
	return true
}
