// plimcheck statically verifies PLiM RM3 programs and prints a
// wear/deadness report, without executing a single vector. It proves
// def-before-use for every operand, in-range cell references, output
// liveness, the exact per-cell write counts (the endurance model's input)
// and flags dead writes — wasted endurance. It accepts either a compiled
// program (binary or assembly, e.g. plimc -o out.bin) or a benchmark,
// which it compiles under a named configuration and then additionally
// cross-checks against the allocator's write accounting.
//
// Examples:
//
//	plimcheck -in prog.bin
//	plimcheck -in prog.plim -endurance 1e6 -v
//	plimcheck -bench ctrl -config full -shrink 4
//	plimcheck -bench div -config full -cap 20 -strict -json
//
// The exit status is 1 when any hard violation is found (or, with
// -strict, any dead write), making it suitable as a CI gate over every
// program a build emits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"plim"
	"plim/internal/verify"
)

func main() {
	var (
		inFile    = flag.String("in", "", "compiled program to verify (.bin binary or .plim/.asm assembly)")
		format    = flag.String("format", "auto", "input format: auto|bin|asm")
		benchName = flag.String("bench", "", "compile-and-verify a benchmark instead of reading a program")
		cfgName   = flag.String("config", "full", "configuration for -bench: naive|compiler21|minwrite|rewriting|full")
		cap       = flag.Uint64("cap", 0, "per-cell write cap to check against (0 = the config's cap, if any)")
		effort    = flag.Int("effort", plim.DefaultEffort, "MIG rewriting cycles for -bench")
		shrink    = flag.Int("shrink", 1, "benchmark datapath shrink for -bench")
		endurance = flag.Uint64("endurance", 1e10, "per-device endurance for the lifetime estimate (0 = omit)")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
		strict    = flag.Bool("strict", false, "also fail (exit 1) on dead writes")
		tracePath = flag.String("trace", "", "with -bench: write a Chrome trace-event JSON trace of the compile (with -v: also a span tree on stderr)")
		verbose   = flag.Bool("v", false, "list the full per-cell write histogram")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared with plimc/plimtab/migstat (default $PLIM_CACHE_DIR; empty = off)")
		costPath = flag.String("cost-model", "",
			"JSON instruction cost model pricing the report's cost block (default: built-in)")
	)
	flag.Parse()

	cm := plim.DefaultCostModel()
	if *costPath != "" {
		var err error
		if cm, err = plim.LoadCostModel(*costPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var rpt *plim.VerifyReport
	var err error
	switch {
	case *inFile != "" && *benchName != "":
		err = fmt.Errorf("plimcheck: use either -in or -bench, not both")
	case *tracePath != "" && *benchName == "":
		err = fmt.Errorf("plimcheck: -trace records the compile and needs -bench")
	case *inFile != "":
		rpt, err = checkFile(*inFile, *format, *cap, cm)
	case *benchName != "":
		rpt, err = checkBenchmark(*benchName, *cfgName, *cap, *effort, *shrink, *cacheDir, *tracePath, *verbose, cm)
	default:
		err = fmt.Errorf("plimcheck: need -in or -bench")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rpt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rpt.Render(os.Stdout, verify.RenderOptions{Endurance: *endurance, Verbose: *verbose})
	}
	if !rpt.OK() || (*strict && !rpt.Clean()) {
		os.Exit(1)
	}
}

// checkFile verifies a program read from disk. These bytes may come from
// anywhere — the codec rejects malformed streams with an error, and the
// verifier judges whatever decodes.
func checkFile(path, format string, cap uint64, cm *plim.CostModel) (*plim.VerifyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if format == "auto" {
		if bytes.HasPrefix(data, []byte("PLIM")) {
			format = "bin"
		} else {
			format = "asm"
		}
	}
	var p *plim.Program
	switch format {
	case "bin":
		p, err = plim.ReadProgram(bytes.NewReader(data))
	case "asm":
		p, err = plim.ReadProgramAsm(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("plimcheck: unknown -format %q (want auto, bin or asm)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("plimcheck: %s: %w", path, err)
	}
	return plim.Verify(p, plim.VerifyOptions{MaxWrites: cap, CostModel: cm}), nil
}

// checkBenchmark compiles a benchmark under the named configuration and
// verifies the result, including static-vs-allocator write parity — the
// cross-check that the wear accounting the paper's tables are built on is
// itself sound.
func checkBenchmark(bench, cfgName string, cap uint64, effort, shrink int, cacheDir, tracePath string, verbose bool, cm *plim.CostModel) (*plim.VerifyReport, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := configByName(cfgName, cap)
	if err != nil {
		return nil, err
	}
	eng := plim.NewEngine(
		plim.WithEffort(effort),
		plim.WithShrink(shrink),
		plim.WithPersistentCache(cacheDir),
		plim.WithVerify(true),
		plim.WithCostModel(cm),
		plim.WithTrace(tracePath != ""),
	)
	m, err := eng.Benchmark(bench)
	if err != nil {
		return nil, err
	}
	rep, err := eng.Run(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	// The engine ran WithVerify, so hard violations (including allocator
	// parity, checked in core) would have failed Run; the report remains
	// for wear numbers and dead-write warnings.
	rpt := rep.Verify
	if rpt == nil {
		rpt = plim.Verify(rep.Result.Program, plim.VerifyOptions{MaxWrites: cfg.MaxWrites, CostModel: cm})
		verify.CheckWriteParity(rpt, rep.Result.WriteCounts, "allocator")
	}
	if tracePath != "" {
		if err := writeTrace(eng, tracePath, verbose); err != nil {
			return nil, err
		}
	}
	if s, ok := eng.CacheSummary(); ok {
		fmt.Fprintln(os.Stderr, s)
	}
	return rpt, nil
}

// writeTrace exports the engine's recorded trace as Chrome trace-event
// JSON; with verbose set it also renders the span tree to stderr.
func writeTrace(eng *plim.Engine, path string, verbose bool) error {
	tr := eng.TakeTrace()
	if tr == nil {
		return fmt.Errorf("plimcheck: -trace: no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "trace:")
		tr.Render(os.Stderr)
	}
	return nil
}

func configByName(name string, cap uint64) (plim.Config, error) {
	var cfg plim.Config
	switch name {
	case "naive":
		cfg = plim.Naive
	case "compiler21":
		cfg = plim.Compiler21
	case "minwrite":
		cfg = plim.MinWrite
	case "rewriting":
		cfg = plim.Rewriting
	case "full":
		cfg = plim.Full
	default:
		return cfg, fmt.Errorf("plimcheck: unknown config %q", name)
	}
	if cap > 0 {
		cfg.MaxWrites = cap
		cfg.Name += fmt.Sprintf("+cap%d", cap)
	}
	return cfg, nil
}
