// plimexplore sweeps the endurance-management design space — compilation
// policy × rewriting effort × datapath shrink × instruction cost model —
// and emits the Pareto front of energy vs. latency vs. lifetime per
// benchmark as deterministic CSV or JSON:
//
//	plimexplore -benchmarks adder,ctrl -shrink 8
//	plimexplore -efforts 0,2,5 -configs naive,full,cap50 -format json
//	plimexplore -cost-models fast.json,lowpower.json -all -o sweep.csv
//
// The whole sweep runs as one task graph on the engine's work-stealing
// scheduler: each benchmark builds once per shrink, each rewriting
// pipeline runs once per (benchmark, shrink, effort) — served from the
// in-memory and, with -cache-dir, persistent caches — and the compile
// fan-out keeps every worker busy. Cost models are pure accounting, so the
// model axis multiplies output rows without recompiling anything.
//
// Output is byte-deterministic: the same sweep produces the same bytes,
// cold or cache-warm, which CI exploits to pin reproducibility. By default
// only Pareto-optimal rows (within each benchmark × shrink × model group)
// are emitted; -all includes dominated points, distinguished by the pareto
// column.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"plim"
)

func main() {
	var (
		benches   = flag.String("benchmarks", "", "comma-separated subset (default: all 18)")
		configs   = flag.String("configs", "table1", "table1 or a comma-separated list of naive|compiler21|minwrite|rewriting|full|capN")
		efforts   = flag.String("efforts", "", "comma-separated rewriting cycle budgets (default: 5)")
		shrinks   = flag.String("shrinks", "", "comma-separated datapath divisors (default: 1)")
		models    = flag.String("cost-models", "", "comma-separated JSON cost model files (default: built-in)")
		format    = flag.String("format", "csv", "csv|json")
		outFile   = flag.String("o", "", "write to file instead of stdout")
		all       = flag.Bool("all", false, "emit every swept point, not only the Pareto front")
		doVerify  = flag.Bool("verify", false, "statically verify every compile (incl. write and cost parity)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		quiet     = flag.Bool("q", false, "suppress the cache/timing summary on stderr")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON trace of the sweep (with -v: also a span tree on stderr)")
		verbose   = flag.Bool("v", false, "stream per-benchmark progress events to stderr")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared across plimc/plimtab/... (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := plim.ExploreOptions{Verify: *doVerify}
	var err error
	if *benches != "" {
		opts.Benchmarks = splitList(*benches)
	}
	if opts.Configs, err = parseConfigs(*configs); err != nil {
		fatal(err)
	}
	if opts.Efforts, err = parseInts(*efforts, "effort"); err != nil {
		fatal(err)
	}
	if opts.Shrinks, err = parseInts(*shrinks, "shrink"); err != nil {
		fatal(err)
	}
	for _, path := range splitList(*models) {
		m, err := plim.LoadCostModel(path)
		if err != nil {
			fatal(err)
		}
		opts.Models = append(opts.Models, m)
	}

	engOpts := []plim.Option{
		plim.WithWorkers(*workers),
		plim.WithPersistentCache(*cacheDir),
		plim.WithTrace(*tracePath != ""),
	}
	if *verbose && !*quiet {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			switch ev.(type) {
			case plim.EventRewriteCycle, plim.EventCompileStart, plim.EventTaskStart, plim.EventTaskDone:
				return // the sweep is wide; per-benchmark granularity is enough
			}
			fmt.Fprintln(os.Stderr, plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	start := time.Now()
	res, err := eng.Explore(ctx, opts)
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "csv":
		err = res.WriteCSV(out, !*all)
	case "json":
		err = res.WriteJSON(out, !*all)
	default:
		err = fmt.Errorf("plimexplore: unknown format %q (want csv or json)", *format)
	}
	if err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		if err := writeTrace(eng, *tracePath, *verbose && !*quiet); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		if s, ok := eng.CacheSummary(); ok {
			fmt.Fprintln(os.Stderr, s)
		}
		fmt.Fprintf(os.Stderr, "explored %d points (%d on front) in %v\n",
			len(res.Points), len(res.Front()), time.Since(start).Round(time.Millisecond))
	}
}

// writeTrace exports the engine's recorded trace as Chrome trace-event
// JSON; with verbose set it also renders the span tree to stderr.
func writeTrace(eng *plim.Engine, path string, verbose bool) error {
	tr := eng.TakeTrace()
	if tr == nil {
		return fmt.Errorf("plimexplore: -trace: no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "trace:")
		tr.Render(os.Stderr)
	}
	return nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s, what string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("plimexplore: bad %s %q", what, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseConfigs resolves -configs: "table1" expands to the paper's five
// incremental configurations; otherwise each name is a Table I
// configuration or capN for the full policy under a maximum write count.
func parseConfigs(s string) ([]plim.Config, error) {
	if s == "" || s == "table1" {
		return plim.TableIConfigs(), nil
	}
	var cfgs []plim.Config
	for _, name := range splitList(s) {
		switch name {
		case "naive":
			cfgs = append(cfgs, plim.Naive)
		case "compiler21":
			cfgs = append(cfgs, plim.Compiler21)
		case "minwrite":
			cfgs = append(cfgs, plim.MinWrite)
		case "rewriting":
			cfgs = append(cfgs, plim.Rewriting)
		case "full":
			cfgs = append(cfgs, plim.Full)
		default:
			if w, ok := strings.CutPrefix(name, "cap"); ok {
				n, err := strconv.ParseUint(w, 10, 64)
				if err == nil && n > 0 {
					cfgs = append(cfgs, plim.FullCap(n))
					continue
				}
			}
			return nil, fmt.Errorf("plimexplore: unknown config %q", name)
		}
	}
	return cfgs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
