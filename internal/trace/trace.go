// Package trace is a lightweight, allocation-conscious span recorder for
// attributing one engine call's wall time to its pipeline stages: scheduler
// tasks (rewrite/compile/generate/exec-chunk/join), cache probes and the
// server's per-request root span.
//
// A *Trace is carried through context.Context. Code instruments itself with
//
//	ctx, sp := trace.Start(ctx, "compile", "adder/full")
//	defer sp.End()
//	sp.Attr("outcome", "memory-hit")
//
// and the calls are no-ops when no trace is attached: Start returns the
// context unchanged and a zero Handle whose methods do nothing, costing one
// context value lookup and no allocations. That contract is what lets the
// compile hot path keep its pinned allocs/op with tracing disabled (see the
// plimbench trace/ family).
//
// Span timestamps are offsets from the trace's creation read from Go's
// monotonic clock, so spans order correctly even across wall-clock
// adjustments. Recording is mutex-guarded: spans live in one arena slice and
// a Handle indexes into it, so concurrent scheduler workers append safely.
package trace

import (
	"context"
	"sync"
	"time"
)

// An Attr is one key/value annotation on a span (cache outcome, fingerprint,
// steal origin, lane occupancy, ...).
type Attr struct {
	Key   string
	Value string
}

// A Span is one timed region. Start and Dur are monotonic offsets from the
// owning trace's creation; Parent is the span id of the enclosing span or
// -1 for a root. Worker is the scheduler worker that ran the span (-1 when
// not run by the pool) and QueueWait is how long the span's task sat
// runnable before a worker picked it up (zero for non-task spans).
type Span struct {
	ID        int32
	Parent    int32
	Kind      string
	Name      string
	Start     time.Duration
	Dur       time.Duration
	Worker    int
	QueueWait time.Duration
	Attrs     []Attr
}

// A Trace accumulates spans for one engine call or one server request.
type Trace struct {
	wall  time.Time // wall-clock anchor (Chrome export timestamps)
	begin time.Time // monotonic anchor (span offsets)

	mu    sync.Mutex
	spans []Span
}

// New returns an empty trace anchored at the current time.
func New() *Trace {
	now := time.Now()
	return &Trace{wall: now, begin: now}
}

// Wall returns the trace's wall-clock anchor: the instant offset 0
// corresponds to.
func (t *Trace) Wall() time.Time { return t.wall }

// Spans returns a snapshot copy of the recorded spans in creation order.
// Spans still open (End not yet called) have Dur < 0.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// scope is the context payload: which trace to record into and which span
// new children should parent under.
type scope struct {
	t      *Trace
	parent int32
}

type scopeKey struct{}

// NewContext returns a context carrying t; spans started from it parent at
// the root (-1). A nil t returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, &scope{t: t, parent: -1})
}

// FromContext returns the trace carried by ctx, or nil. The lookup does not
// allocate, so callers may use it to gate trace-only work.
func FromContext(ctx context.Context) *Trace {
	if sc, ok := ctx.Value(scopeKey{}).(*scope); ok {
		return sc.t
	}
	return nil
}

// A Handle names one started span. The zero Handle is valid and inert: every
// method is a no-op, so untraced code paths pay only for the nil check.
type Handle struct {
	t  *Trace
	id int32
}

// Traced reports whether the handle records into a real trace.
func (h Handle) Traced() bool { return h.t != nil }

// ID returns the span id, or -1 for the zero Handle.
func (h Handle) ID() int32 {
	if h.t == nil {
		return -1
	}
	return h.id
}

// Start begins a span under ctx's current scope and returns a derived
// context in which h's span is the parent, so nested instrumentation builds
// a tree. When ctx carries no trace it returns ctx unchanged and a zero
// Handle without allocating.
func Start(ctx context.Context, kind, name string) (context.Context, Handle) {
	sc, ok := ctx.Value(scopeKey{}).(*scope)
	if !ok {
		return ctx, Handle{}
	}
	h := sc.t.startSpan(kind, name, sc.parent)
	return context.WithValue(ctx, scopeKey{}, &scope{t: sc.t, parent: h.id}), h
}

// StartNoCtx begins a span under ctx's current scope without deriving a new
// context — for leaf spans (cache probes, chunk timings) whose body starts
// no children. Zero Handle when ctx carries no trace.
func StartNoCtx(ctx context.Context, kind, name string) Handle {
	sc, ok := ctx.Value(scopeKey{}).(*scope)
	if !ok {
		return Handle{}
	}
	return sc.t.startSpan(kind, name, sc.parent)
}

func (t *Trace) startSpan(kind, name string, parent int32) Handle {
	off := time.Since(t.begin)
	t.mu.Lock()
	id := int32(len(t.spans))
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Start:  off,
		Dur:    -1,
		Worker: -1,
	})
	t.mu.Unlock()
	return Handle{t: t, id: id}
}

// End closes the span at the current monotonic time. No-op on the zero
// Handle or if already ended.
func (h Handle) End() {
	if h.t == nil {
		return
	}
	off := time.Since(h.t.begin)
	h.t.mu.Lock()
	sp := &h.t.spans[h.id]
	if sp.Dur < 0 {
		sp.Dur = off - sp.Start
	}
	h.t.mu.Unlock()
}

// Attr annotates the span. No-op on the zero Handle.
func (h Handle) Attr(key, value string) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.id]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	h.t.mu.Unlock()
}

// SetWorker records which scheduler worker ran the span.
func (h Handle) SetWorker(id int) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	h.t.spans[h.id].Worker = id
	h.t.mu.Unlock()
}

// SetQueueWait records how long the span's task waited runnable before
// execution began.
func (h Handle) SetQueueWait(d time.Duration) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	h.t.spans[h.id].QueueWait = d
	h.t.mu.Unlock()
}
