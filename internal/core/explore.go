package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"plim/internal/compile"
	"plim/internal/cost"
	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/sched"
	"plim/internal/stats"
	"plim/internal/suite"
)

// ExploreOptions configures a design-space sweep (see Explore). The sweep
// axes (Benchmarks × Shrinks × Efforts × Configs × Models) default to the
// paper's evaluation: the full benchmark suite at paper scale, the
// default rewriting effort, the five Table I configurations and the
// built-in cost model.
type ExploreOptions struct {
	// Benchmarks to sweep; nil or empty means the full suite.
	Benchmarks []string
	// Configs are the compilation policies; nil means TableIConfigs().
	Configs []Config
	// Efforts are the rewriting cycle budgets; nil means {DefaultEffort}.
	Efforts []int
	// Shrinks are the datapath divisors; nil means {1} (paper scale).
	Shrinks []int
	// Models price every compiled program. The first model is also threaded
	// through compilation (Report.Cost and, with Verify, the parity check);
	// the rest price the identical programs after the fact — the model is
	// pure accounting and never influences compilation, so one compile per
	// (benchmark, shrink, effort, config) covers every model. Nil means
	// {cost.Default()}. Model names must be distinct: they key the output
	// rows and the Pareto grouping.
	Models []*cost.Model
	// Workers bounds parallelism when Sched is nil; must be ≥ 1.
	Workers int
	// Sched, when non-nil, runs the sweep's task graph on a shared
	// process-wide scheduler instead of a transient Workers-sized pool.
	Sched *sched.Pool
	// Progress receives generate/rewrite/compile/task events; it may be
	// invoked concurrently from worker goroutines.
	Progress progress.Func
	// BenchCache, when non-nil, memoizes benchmark builds per (name, shrink).
	BenchCache *suite.Cache
	// RewriteCache, when non-nil, memoizes rewrite stages across the sweep —
	// the axis product makes this the difference between O(points) and
	// O(distinct rewrites) graph work.
	RewriteCache *RewriteCache
	// Scratch, when non-nil, supplies reusable compile scratch state.
	Scratch *compile.ScratchPool
	// Verify statically verifies every compiled program, including
	// static-vs-allocator write and cost parity under Models[0].
	Verify bool
}

// ExplorePoint is one swept design point: a (benchmark, shrink, effort,
// config) compilation priced under one cost model.
type ExplorePoint struct {
	Benchmark    string    `json:"benchmark"`
	Config       string    `json:"config"`
	Effort       int       `json:"effort"`
	Shrink       int       `json:"shrink"`
	Model        string    `json:"model"`
	Instructions int       `json:"instructions"`
	RRAMs        int       `json:"rrams"`
	Cost         cost.Cost `json:"cost"`
	// Pareto marks the point as non-dominated on (energy, latency,
	// lifetime) within its (benchmark, shrink, model) group. Points priced
	// under different models, or compiled at different scales, are not
	// comparable and never dominate each other.
	Pareto bool `json:"pareto"`
}

// ExploreResult is the full sweep in deterministic order: benchmarks ×
// shrinks × efforts × configs × models, each axis in input order.
type ExploreResult struct {
	Points []ExplorePoint `json:"points"`
}

func (o *ExploreOptions) normalize() error {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = suite.Names()
	}
	if len(o.Configs) == 0 {
		o.Configs = TableIConfigs()
	}
	if len(o.Efforts) == 0 {
		o.Efforts = []int{DefaultEffort}
	}
	if len(o.Shrinks) == 0 {
		o.Shrinks = []int{1}
	}
	if len(o.Models) == 0 {
		o.Models = []*cost.Model{cost.Default()}
	}
	for _, e := range o.Efforts {
		if e < 0 {
			return fmt.Errorf("core: explore effort must be ≥ 0, got %d", e)
		}
	}
	for _, s := range o.Shrinks {
		if s < 1 {
			return fmt.Errorf("core: explore shrink must be ≥ 1, got %d", s)
		}
	}
	names := make(map[string]bool, len(o.Models))
	for _, m := range o.Models {
		if m == nil {
			return errors.New("core: explore cost models must be non-nil")
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("core: explore: %w", err)
		}
		if names[m.Name] {
			return fmt.Errorf("core: explore cost model name %q is not distinct", m.Name)
		}
		names[m.Name] = true
	}
	if o.Sched == nil && o.Workers < 1 {
		return fmt.Errorf("core: explore Workers must be ≥ 1, got %d", o.Workers)
	}
	return nil
}

// Explore sweeps the design space (benchmark × shrink × effort × config ×
// cost model) as one task graph on the work-stealing scheduler: one
// generate task per (benchmark, shrink), one rewrite task per distinct
// (benchmark, shrink, effort, pipeline) — memoized through the rewrite
// cache when set — and one compile task per (benchmark, shrink, effort,
// config). Pricing under each model is pure arithmetic on the compiled
// program, so the model axis multiplies output rows, not graph work.
//
// The result is deterministic: points appear in input axis order and every
// priced quantity derives from exact integer operation counts, so repeated
// sweeps — cold or through either cache tier — are byte-identical when
// rendered. On cancellation the error is ctx.Err() and unstarted tasks
// never run.
func Explore(ctx context.Context, opts ExploreOptions) (*ExploreResult, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := opts.Sched
	if pool == nil {
		pool = sched.New(opts.Workers)
		defer pool.Stop()
	}
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	g := pool.NewGraph(ctx, sched.GraphOptions{Deadline: deadline, Progress: opts.Progress})

	nb, ns, ne := len(opts.Benchmarks), len(opts.Shrinks), len(opts.Efforts)
	type cell struct {
		reports []*Report
		finish  func() error
	}
	cells := make([]cell, nb*ns*ne)
	migs := make([]*mig.MIG, nb*ns)
	genErrs := make([]error, nb*ns)
	for bi, name := range opts.Benchmarks {
		for si, shrink := range opts.Shrinks {
			gi := bi*ns + si
			name, shrink := name, shrink
			label := name
			if ns > 1 || shrink != 1 {
				label = fmt.Sprintf("%s/s%d", name, shrink)
			}
			gen := g.Task(sched.KindGenerate, label, func(ctx context.Context) {
				m, err := opts.BenchCache.BuildScaled(name, shrink)
				if err != nil {
					genErrs[gi] = fmt.Errorf("core: explore %s (shrink %d): %w", name, shrink, err)
					return
				}
				migs[gi] = m
			}, nil)
			for ei, effort := range opts.Efforts {
				reports := make([]*Report, len(opts.Configs))
				_, finish := StagedGraph(g, gen, func() *mig.MIG { return migs[gi] }, opts.Configs, StagedOptions{
					Effort:    effort,
					Cache:     opts.RewriteCache,
					Scratch:   opts.Scratch,
					Progress:  opts.Progress,
					Verify:    opts.Verify,
					CostModel: opts.Models[0],
				}, reports)
				cells[gi*ne+ei] = cell{reports: reports, finish: finish}
			}
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	var errs []error
	for gi, err := range genErrs {
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for ei := 0; ei < ne; ei++ {
			if err := cells[gi*ne+ei].finish(); err != nil {
				errs = append(errs, fmt.Errorf("core: explore %s (shrink %d, effort %d): %w",
					opts.Benchmarks[gi/ns], opts.Shrinks[gi%ns], opts.Efforts[ei], err))
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	res := &ExploreResult{Points: make([]ExplorePoint, 0, nb*ns*ne*len(opts.Configs)*len(opts.Models))}
	for bi := range opts.Benchmarks {
		for si, shrink := range opts.Shrinks {
			for ei, effort := range opts.Efforts {
				for ci, cfg := range opts.Configs {
					rep := cells[(bi*ns+si)*ne+ei].reports[ci]
					for _, m := range opts.Models {
						res.Points = append(res.Points, ExplorePoint{
							Benchmark:    opts.Benchmarks[bi],
							Config:       cfg.Name,
							Effort:       effort,
							Shrink:       shrink,
							Model:        m.Name,
							Instructions: rep.NumInstructions(),
							RRAMs:        rep.NumRRAMs(),
							Cost:         m.Program(rep.Result.Program),
						})
					}
				}
			}
		}
	}
	res.markPareto()
	return res, nil
}

// dominates reports whether a is at least as good as b on every objective
// (energy ↓, latency ↓, lifetime ↑) and strictly better on at least one.
func dominates(a, b *ExplorePoint) bool {
	if a.Cost.EnergyPJ > b.Cost.EnergyPJ ||
		a.Cost.LatencyCycles > b.Cost.LatencyCycles ||
		a.Cost.LifetimeRuns < b.Cost.LifetimeRuns {
		return false
	}
	return a.Cost.EnergyPJ < b.Cost.EnergyPJ ||
		a.Cost.LatencyCycles < b.Cost.LatencyCycles ||
		a.Cost.LifetimeRuns > b.Cost.LifetimeRuns
}

// markPareto sets Pareto on every non-dominated point of each (benchmark,
// shrink, model) group. Cost-identical points (e.g. a cap that never
// binds) are mutually non-dominating and all stay on the front.
func (r *ExploreResult) markPareto() {
	type key struct {
		bench  string
		shrink int
		model  string
	}
	groups := make(map[key][]int)
	for i, p := range r.Points {
		k := key{p.Benchmark, p.Shrink, p.Model}
		groups[k] = append(groups[k], i)
	}
	for _, idxs := range groups {
		for _, i := range idxs {
			dominated := false
			for _, j := range idxs {
				if i != j && dominates(&r.Points[j], &r.Points[i]) {
					dominated = true
					break
				}
			}
			r.Points[i].Pareto = !dominated
		}
	}
}

// Front returns only the Pareto-front points, in sweep order.
func (r *ExploreResult) Front() []ExplorePoint {
	var front []ExplorePoint
	for _, p := range r.Points {
		if p.Pareto {
			front = append(front, p)
		}
	}
	return front
}

// exploreCSVHeader is the stable column schema of WriteCSV.
const exploreCSVHeader = "benchmark,config,effort,shrink,model,instructions,rrams," +
	"resets,sets,rm3s,energy_pj,latency_cycles,total_wear,max_cell_wear,lifetime_runs,pareto"

// WriteCSV renders the sweep as CSV — the front only, or every point with
// frontOnly unset. Output is byte-deterministic: row order is sweep order
// and floats render shortest-exact, so identical sweeps produce identical
// bytes. An unlimited lifetime renders as "unlimited" (see
// stats.MaxLifetime).
func (r *ExploreResult) WriteCSV(w io.Writer, frontOnly bool) error {
	var b strings.Builder
	b.WriteString(exploreCSVHeader + "\n")
	for i := range r.Points {
		p := &r.Points[i]
		if frontOnly && !p.Pareto {
			continue
		}
		pareto := "0"
		if p.Pareto {
			pareto = "1"
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%s,%d,%d,%d,%d,%d,%s,%d,%d,%d,%s,%s\n",
			p.Benchmark, p.Config, p.Effort, p.Shrink, p.Model,
			p.Instructions, p.RRAMs,
			p.Cost.Resets, p.Cost.Sets, p.Cost.RM3s,
			strconv.FormatFloat(p.Cost.EnergyPJ, 'g', -1, 64),
			p.Cost.LatencyCycles, p.Cost.TotalWear, p.Cost.MaxCellWear,
			stats.FormatLifetime(p.Cost.LifetimeRuns), pareto)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the sweep as indented JSON — the front only, or every
// point with frontOnly unset. Like the CSV form, the bytes are
// deterministic for identical sweeps.
func (r *ExploreResult) WriteJSON(w io.Writer, frontOnly bool) error {
	out := r
	if frontOnly {
		out = &ExploreResult{Points: r.Front()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
