package cost

import (
	"strings"
	"testing"

	"plim/internal/isa"
	"plim/internal/stats"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		ins  isa.Instruction
		want Op
	}{
		{isa.Instruction{A: isa.Zero, B: isa.One, Z: 0}, OpReset},
		{isa.Instruction{A: isa.One, B: isa.Zero, Z: 0}, OpSet},
		{isa.Instruction{A: isa.Cell(1), B: isa.Zero, Z: 0}, OpRM3}, // copy
		{isa.Instruction{A: isa.Zero, B: isa.Cell(1), Z: 0}, OpRM3}, // invert
		{isa.Instruction{A: isa.Cell(1), B: isa.Cell(2), Z: 0}, OpRM3},
		{isa.Instruction{A: isa.Zero, B: isa.Zero, Z: 0}, OpRM3}, // ⟨0 1 Z⟩ = Z: not a preset
		{isa.Instruction{A: isa.One, B: isa.One, Z: 0}, OpRM3},   // ⟨1 0 Z⟩ = Z: not a preset
	}
	for _, c := range cases {
		if got := Classify(c.ins); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.ins, got, c.want)
		}
	}
}

// TestPriceMatchesStaticWriteCounts: under the default model (wear 1 per
// op) the priced wear must equal the program's static write counts — the
// parity the whole refactor preserves.
func TestPriceMatchesStaticWriteCounts(t *testing.T) {
	p := &isa.Program{
		Name:     "t",
		NumCells: 3,
		Insts: []isa.Instruction{
			{A: isa.Zero, B: isa.One, Z: 1},        // reset
			{A: isa.One, B: isa.Zero, Z: 2},        // set
			{A: isa.Cell(0), B: isa.Cell(2), Z: 1}, // rm3
			{A: isa.Cell(1), B: isa.Zero, Z: 2},    // rm3 (copy form)
		},
		PICells: []uint32{0},
		POs:     []isa.PORef{{Addr: 2}},
	}
	m := Default()
	c := m.Program(p)
	if c.Model != "default" || c.Resets != 1 || c.Sets != 1 || c.RM3s != 2 || c.Ops != 4 {
		t.Fatalf("counts: %+v", c)
	}
	wantEnergy := 1*m.Reset.EnergyPJ + 1*m.Set.EnergyPJ + 2*m.RM3.EnergyPJ
	if c.EnergyPJ != wantEnergy {
		t.Fatalf("energy %v, want %v", c.EnergyPJ, wantEnergy)
	}
	if want := uint64(1 + 1 + 2*3); c.LatencyCycles != want {
		t.Fatalf("latency %d, want %d", c.LatencyCycles, want)
	}
	counts := p.StaticWriteCounts()
	var maxW uint64
	var total uint64
	for _, w := range counts {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if c.TotalWear != total || c.MaxCellWear != maxW {
		t.Fatalf("wear total %d max %d, static total %d max %d", c.TotalWear, c.MaxCellWear, total, maxW)
	}
	if want := uint64(DefaultEndurance) / maxW; c.LifetimeRuns != want {
		t.Fatalf("lifetime %d, want %d", c.LifetimeRuns, want)
	}
}

// TestLifetimeConvention pins the shared infinite-lifetime convention: no
// wear, or no endurance budget, means the device never dies.
func TestLifetimeConvention(t *testing.T) {
	m := Default()
	empty := m.Price(nil, 4)
	if empty.LifetimeRuns != stats.MaxLifetime || !empty.Unlimited() {
		t.Fatalf("zero-write program lifetime = %d, want stats.MaxLifetime", empty.LifetimeRuns)
	}
	budgetless := *Default()
	budgetless.EnduranceWrites = 0
	c := budgetless.Price([]isa.Instruction{{A: isa.Zero, B: isa.One, Z: 0}}, 1)
	if !c.Unlimited() {
		t.Fatalf("budgetless model lifetime = %d, want unlimited", c.LifetimeRuns)
	}
}

// TestScaleParity: scaling a per-run cost over n lanes equals pricing the
// batch from scratch — including the float energy total — while the
// lifetime stays per-run.
func TestScaleParity(t *testing.T) {
	m := Default()
	insts := []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 0},
		{A: isa.One, B: isa.Zero, Z: 1},
		{A: isa.Cell(0), B: isa.Cell(1), Z: 0},
	}
	per := m.Price(insts, 2)
	const lanes = 64
	got := m.Scale(per, lanes)
	want := m.FromCounts(Counts{per.Resets * lanes, per.Sets * lanes, per.RM3s * lanes}, per.MaxCellWear*lanes)
	want.LifetimeRuns = per.LifetimeRuns
	if got != want {
		t.Fatalf("scaled cost %+v, want %+v", got, want)
	}
	if got.LifetimeRuns != per.LifetimeRuns {
		t.Fatalf("scaling changed the per-run lifetime: %d vs %d", got.LifetimeRuns, per.LifetimeRuns)
	}
	if got.EnergyPJ != float64(per.Resets*lanes)*m.Reset.EnergyPJ+
		float64(per.Sets*lanes)*m.Set.EnergyPJ+
		float64(per.RM3s*lanes)*m.RM3.EnergyPJ {
		t.Fatal("scaled energy not derived through the canonical expression")
	}
}

func TestLoadValidates(t *testing.T) {
	good := `{"name":"sandbox","reset":{"energy_pj":1,"latency_cycles":1,"wear":1},
	          "set":{"energy_pj":1,"latency_cycles":1,"wear":1},
	          "rm3":{"energy_pj":2,"latency_cycles":2,"wear":1},
	          "endurance_writes":1000}`
	m, err := Load(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "sandbox" || m.EnduranceWrites != 1000 {
		t.Fatalf("loaded %+v", m)
	}
	for _, bad := range []string{
		`{"reset":{"latency_cycles":1}}`,                           // no name
		`{"name":"x","reset":{"energy_pj":-1,"latency_cycles":1}}`, // negative energy
		`{"name":"x","reset":{"energy_pj":1,"latency_cycles":0}}`,  // zero latency
		`{"name":"x","bogus":1}`,                                   // unknown field
	} {
		if _, err := Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%s) accepted an invalid model", bad)
		}
	}
}

func TestValidateDefault(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}
