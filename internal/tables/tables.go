// Package tables regenerates the evaluation tables of Shirinzadeh et al.,
// DATE 2017: Table I (write distribution of the incremental endurance
// techniques), Table II (instruction and device costs) and Table III (the
// maximum-write-count trade-off), plus an ablation table that isolates each
// technique (not in the paper).
//
// A SuiteResult holds the full benchmark × configuration matrix of reports;
// the Table* functions project it into the paper's layouts and the Render*
// functions produce aligned text, Markdown and CSV.
package tables

import (
	"context"
	"errors"
	"fmt"
	"time"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/core"
	"plim/internal/cost"
	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/sched"
	"plim/internal/suite"
)

// SuiteResult is the benchmark × configuration report matrix.
type SuiteResult struct {
	Benchmarks []suite.Info
	Configs    []core.Config
	// Reports[b][c] is the report of Configs[c] on Benchmarks[b].
	Reports [][]*core.Report
}

// Options configures a suite run. All fields are explicit: Effort 0 really
// runs zero rewriting cycles and Workers/Shrink must be ≥ 1 (the legacy
// zero-value-means-default normalization lives only in the deprecated
// plim.RunSuite wrapper).
type Options struct {
	// Benchmarks to run; nil or empty means the full 18-benchmark suite.
	Benchmarks []string
	// Effort is the rewriting cycle budget; 0 disables rewriting cycles.
	Effort int
	// Shrink divides datapath widths for quick runs (1 = paper scale).
	Shrink int
	// Workers bounds parallelism across the whole run: benchmark jobs and
	// the compile jobs they fan out share one worker budget.
	Workers int
	// Progress receives typed suite events. It may be invoked concurrently
	// from worker goroutines; callers that need serialized delivery must
	// wrap it (plim.Engine does).
	Progress progress.Func
	// BenchCache, when non-nil, reuses benchmark generator output across
	// runs (shared read-only instances). plim.Engine threads its cache
	// through here.
	BenchCache *suite.Cache
	// RewriteCache, when non-nil, memoizes rewrite stages across
	// configurations, benchmarks and runs.
	RewriteCache *core.RewriteCache
	// Scratch, when non-nil, supplies reusable compile scratch state to
	// every compile job of the run; nil uses the compile package's shared
	// default pool.
	Scratch *compile.ScratchPool
	// Sched, when non-nil, executes the suite's task graph on a shared
	// process-wide scheduler (plim.Engine threads its pool through here);
	// nil runs on a transient Workers-sized pool.
	Sched *sched.Pool
	// Verify statically verifies every compiled program of the run (see
	// core.CompileConfig); a hard violation fails that configuration.
	Verify bool
	// CostModel, when non-nil, prices every compilation of the run
	// (core.Report.Cost) — the input of the cost table (TableCost).
	CostModel *cost.Model
}

func (o *Options) validate() error {
	if o.Effort < 0 {
		return fmt.Errorf("tables: Effort must be ≥ 0, got %d", o.Effort)
	}
	if o.Shrink < 1 {
		return fmt.Errorf("tables: Shrink must be ≥ 1, got %d", o.Shrink)
	}
	if o.Workers < 1 {
		return fmt.Errorf("tables: Workers must be ≥ 1, got %d", o.Workers)
	}
	return nil
}

// RunSuite evaluates every configuration on every requested benchmark as
// one task graph on the work-stealing scheduler. Each benchmark
// contributes a generate task (build the MIG through the benchmark cache,
// when set), one rewrite task per distinct pipeline of the configuration
// plan (memoized through the rewrite cache, when set), one compile task
// per configuration depending on its stage's rewrite, and a join task
// depending on all of them that aggregates errors and emits the
// benchmark-done event. Nothing serializes distinct benchmarks against
// each other, so one benchmark's compile fan-out overlaps the next one's
// rewrite and the whole run keeps opts.Workers workers busy (or shares
// opts.Sched with every other caller of the same pool).
//
// Results are deterministic and ordered; with one worker, tasks run in
// depth-first creation order, which reproduces the sequential
// per-benchmark event order exactly. Once ctx is cancelled unstarted tasks
// never run and RunSuite returns ctx.Err(). When several benchmarks fail
// independently, every failure is reported through one joined error.
func RunSuite(ctx context.Context, cfgs []core.Config, opts Options) (*SuiteResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = suite.Names()
	}
	sr := &SuiteResult{
		Benchmarks: make([]suite.Info, len(opts.Benchmarks)),
		Configs:    cfgs,
		Reports:    make([][]*core.Report, len(opts.Benchmarks)),
	}
	pool := opts.Sched
	if pool == nil {
		pool = sched.New(opts.Workers)
		defer pool.Stop()
	}
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	g := pool.NewGraph(ctx, sched.GraphOptions{Deadline: deadline, Progress: opts.Progress})
	errs := make([]error, len(opts.Benchmarks))
	for idx, name := range opts.Benchmarks {
		sr.addBenchmark(g, idx, name, cfgs, opts, errs)
	}
	if err := g.Wait(); err != nil {
		// Cancellation surfaces as ctx.Err() itself, not a joined wrap.
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return sr, nil
}

// addBenchmark adds one benchmark's generate → rewrites → compiles → join
// task chain to the suite graph. The join writes the benchmark's composed
// error into errs[idx].
func (sr *SuiteResult) addBenchmark(g *sched.Graph, idx int, name string, cfgs []core.Config, opts Options, errs []error) {
	var (
		m      *mig.MIG
		start  time.Time
		genErr error
	)
	total := len(opts.Benchmarks)
	gen := g.Task(sched.KindGenerate, name, func(ctx context.Context) {
		opts.Progress.Emit(progress.BenchmarkStart{
			Benchmark: name, Index: idx, Total: total,
		})
		start = time.Now()
		info, ok := suite.Get(name)
		if !ok {
			genErr = fmt.Errorf("tables: unknown benchmark %q", name)
			return
		}
		built, err := opts.BenchCache.BuildScaledContext(ctx, name, opts.Shrink)
		if err != nil {
			genErr = err
			return
		}
		if opts.Shrink != 1 {
			info.PI = built.NumPIs()
			info.PO = built.NumPOs()
		}
		sr.Benchmarks[idx] = info
		m = built
	}, nil)
	reports := make([]*core.Report, len(cfgs))
	leaves, finish := core.StagedGraph(g, gen, func() *mig.MIG { return m }, cfgs, core.StagedOptions{
		Effort:    opts.Effort,
		Cache:     opts.RewriteCache,
		Scratch:   opts.Scratch,
		Progress:  opts.Progress,
		Verify:    opts.Verify,
		CostModel: opts.CostModel,
	}, reports)
	g.Task(sched.KindJoin, name, func(ctx context.Context) {
		err := genErr
		if err == nil {
			if serr := finish(); serr != nil {
				if errors.Is(serr, context.Canceled) || errors.Is(serr, context.DeadlineExceeded) {
					err = serr // cancellation, not a benchmark failure: no wrap
				} else {
					err = fmt.Errorf("tables: %s: %w", name, serr)
				}
			} else {
				sr.Reports[idx] = reports
			}
		}
		errs[idx] = err
		opts.Progress.Emit(progress.BenchmarkDone{
			Benchmark: name, Index: idx, Total: total,
			Elapsed: time.Since(start), Err: err,
		})
	}, append(leaves, gen)...)
}

// ConfigIndex locates a configuration by name.
func (sr *SuiteResult) ConfigIndex(name string) int {
	for i, c := range sr.Configs {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AblationConfigs isolates each endurance technique on top of the naive
// baseline — an extension beyond the paper that quantifies how much each
// lever contributes on its own.
func AblationConfigs() []core.Config {
	return []core.Config{
		core.Naive,
		{Name: "minwrite-only", Rewrite: core.RewriteNone, Selection: compile.NodeOrder, Alloc: alloc.MinWrite},
		{Name: "selection-only", Rewrite: core.RewriteNone, Selection: compile.Endurance, Alloc: alloc.LIFO},
		{Name: "rewriting-only", Rewrite: core.RewriteAlgorithm2, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		{Name: "alg1-rewriting-only", Rewrite: core.RewriteAlgorithm1, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		core.Full,
	}
}
