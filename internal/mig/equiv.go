package mig

import (
	"fmt"
	"math/rand"
)

// EquivalenceResult reports the outcome of a simulation-based equivalence
// check between two MIGs.
type EquivalenceResult struct {
	Equivalent bool
	// Counterexample holds one failing input assignment (one bit per PI)
	// when Equivalent is false and the check found a concrete mismatch.
	Counterexample []bool
	// PO is the index of the first mismatching primary output.
	PO int
	// Exhaustive is true when all 2^n assignments were enumerated, making
	// the verdict a proof rather than statistical evidence.
	Exhaustive bool
	// Patterns is the number of input assignments simulated.
	Patterns int
}

// Equivalent checks whether two MIGs with identical PI/PO counts compute the
// same functions. For up to maxExhaustiveInputs primary inputs the check is
// exhaustive (a proof); above that it simulates rounds×64 random patterns
// drawn from a deterministic source seeded with seed.
func Equivalent(a, b *MIG, rounds int, seed int64) (EquivalenceResult, error) {
	const maxExhaustiveInputs = 14
	if a.NumPIs() != b.NumPIs() {
		return EquivalenceResult{}, fmt.Errorf("mig: PI count mismatch %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return EquivalenceResult{}, fmt.Errorf("mig: PO count mismatch %d vs %d", a.NumPOs(), b.NumPOs())
	}
	n := a.NumPIs()
	if n <= maxExhaustiveInputs {
		return equivalentExhaustive(a, b), nil
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]uint64, n)
	valsA := make([]uint64, a.NumNodes())
	valsB := make([]uint64, b.NumNodes())
	patterns := 0
	for r := 0; r < rounds; r++ {
		for i := range inputs {
			inputs[i] = rng.Uint64()
		}
		a.EvalInto(inputs, valsA)
		b.EvalInto(inputs, valsB)
		patterns += 64
		for i := 0; i < a.NumPOs(); i++ {
			va := poWord(a, valsA, i)
			vb := poWord(b, valsB, i)
			if va != vb {
				bit := trailingDiff(va, vb)
				cex := make([]bool, n)
				for j := range cex {
					cex[j] = inputs[j]>>bit&1 == 1
				}
				return EquivalenceResult{PO: i, Counterexample: cex, Patterns: patterns}, nil
			}
		}
	}
	return EquivalenceResult{Equivalent: true, Patterns: patterns}, nil
}

func equivalentExhaustive(a, b *MIG) EquivalenceResult {
	n := a.NumPIs()
	words := PatternWords(n)
	inputs := make([]uint64, n)
	valsA := make([]uint64, a.NumNodes())
	valsB := make([]uint64, b.NumNodes())
	mask := ^uint64(0)
	if n < 6 {
		mask = 1<<(1<<uint(n)) - 1
	}
	for w := 0; w < words; w++ {
		for v := 0; v < n; v++ {
			inputs[v] = ExhaustivePattern(v, w)
		}
		a.EvalInto(inputs, valsA)
		b.EvalInto(inputs, valsB)
		for i := 0; i < a.NumPOs(); i++ {
			va := poWord(a, valsA, i) & mask
			vb := poWord(b, valsB, i) & mask
			if va != vb {
				bit := trailingDiff(va, vb)
				cex := make([]bool, n)
				for j := range cex {
					cex[j] = inputs[j]>>bit&1 == 1
				}
				return EquivalenceResult{PO: i, Counterexample: cex, Exhaustive: true, Patterns: (w + 1) * 64}
			}
		}
	}
	return EquivalenceResult{Equivalent: true, Exhaustive: true, Patterns: words * 64}
}

func poWord(m *MIG, vals []uint64, i int) uint64 {
	po := m.PO(i)
	v := vals[po.Node()]
	if po.Complemented() {
		v = ^v
	}
	return v
}

func trailingDiff(a, b uint64) uint {
	d := a ^ b
	var bit uint
	for d&1 == 0 {
		d >>= 1
		bit++
	}
	return bit
}

// MustBeEquivalent panics unless a and b are equivalent; it is a convenience
// for generators and examples that must never silently corrupt a function.
func MustBeEquivalent(a, b *MIG, rounds int, seed int64) {
	res, err := Equivalent(a, b, rounds, seed)
	if err != nil {
		panic(err)
	}
	if !res.Equivalent {
		panic(fmt.Sprintf("mig: %q and %q differ on PO %d (cex %v)", a.Name, b.Name, res.PO, res.Counterexample))
	}
}
