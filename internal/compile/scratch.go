package compile

import (
	"math/bits"
	"sync"

	"plim/internal/alloc"
	"plim/internal/isa"
	"plim/internal/mig"
)

// compileScratch is the reusable state of one compilation: every per-node
// table the compiler sweeps, the flattened parent adjacency, the candidate
// heap and instruction buffers, and a resettable device allocator. A scratch
// is acquired from a ScratchPool sized for the graph, so compiling many
// functions (or one function under many configurations) performs O(1)
// graph-sized allocations per run instead of rebuilding every table.
//
// Nothing in a scratch outlives the compilation that used it: the emitted
// Result copies the instruction stream, PI/PO tables and write counts into
// exactly-sized private slices before the scratch returns to its pool.
type compileScratch struct {
	alloc alloc.Allocator

	cell      []uint32
	remaining []int32
	computed  []bool
	foLevel   []int32
	level     []int32
	live      []bool
	pending   []int32

	// Flattened parent adjacency: node n's distinct majority parents are
	// parentBuf[parentOff[n]:parentOff[n+1]]. parentCur holds the fill
	// cursors while the adjacency is built.
	parentOff []int32
	parentCur []int32
	parentBuf []mig.NodeID

	heapEntries []heapEntry
	insts       []isa.Instruction
	piCells     []uint32
	pos         []isa.PORef

	invPOCells map[mig.NodeID]uint32
}

// growClear returns buf resized to n with every element zeroed, reusing
// capacity when possible.
func growClear[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		s := buf[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// grow returns buf resized to n without clearing; callers must overwrite
// every element before reading it.
func grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// ScratchPool recycles compile scratch state across compilations, bucketed
// by graph size so a tiny function never pins the tables of a huge one (and
// vice versa: a huge graph never churns through scratches grown for small
// ones). The zero value is NOT usable; call NewScratchPool. A nil
// *ScratchPool is valid and disables reuse (every compilation allocates a
// fresh scratch), which the parity tests use as the reuse-free reference.
//
// Pools are safe for concurrent use; the staged compile fan-out hands one
// pool to every worker.
type ScratchPool struct {
	classes [poolClasses]sync.Pool
}

const (
	// Graphs below 2^poolMinBits nodes share the smallest class; beyond
	// 2^poolMaxBits they share the largest.
	poolMinBits = 8
	poolMaxBits = 24
	poolClasses = poolMaxBits - poolMinBits + 1
)

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return &ScratchPool{}
}

// defaultScratchPool backs plain Compile calls, so every caller benefits
// from scratch reuse without threading a pool explicitly.
var defaultScratchPool = NewScratchPool()

func sizeClass(n int) int {
	b := bits.Len(uint(n))
	if b < poolMinBits {
		b = poolMinBits
	}
	if b > poolMaxBits {
		b = poolMaxBits
	}
	return b - poolMinBits
}

// get returns a scratch whose tables are (typically) already sized for a
// graph of n nodes. The caller must resize every table before use; get
// guarantees nothing about the returned scratch's contents.
func (p *ScratchPool) get(n int) *compileScratch {
	if p == nil {
		return &compileScratch{}
	}
	if sc, ok := p.classes[sizeClass(n)].Get().(*compileScratch); ok {
		return sc
	}
	return &compileScratch{}
}

// put returns a scratch to the pool bucket matching its grown capacity.
func (p *ScratchPool) put(sc *compileScratch) {
	if p == nil {
		return
	}
	p.classes[sizeClass(cap(sc.cell))].Put(sc)
}
