// migstat inspects and rewrites MIG netlists: it reports structural
// statistics (nodes, depth, complement histogram — the quantities that
// drive PLiM cost), runs either rewriting algorithm through the
// plim.Engine (Ctrl-C cancels between cycles, -v streams per-cycle
// progress), and exports .mig or Graphviz DOT.
//
// Examples:
//
//	migstat -bench sin
//	migstat -bench sin -rewrite alg2 -o sin_opt.mig
//	migstat -in design.mig -rewrite alg1 -effort 3 -dot design.dot -v
//	migstat -bench log2 -rewrite alg2 -cache-dir ~/.cache/plim
//	migstat -bench ctrl -shrink 4 -rewrite alg2 -verify
//
// With -verify the (rewritten) MIG is additionally compiled with the
// minimum-write allocator (no further rewriting, so the graph is judged as
// it stands) and statically verified — the same dataflow/wear report
// plimcheck prints — so a rewriting experiment shows its downstream write
// pressure immediately.
//
// With -cache-dir (default $PLIM_CACHE_DIR) rewrite results and benchmark
// builds persist across invocations and are shared with the other CLIs, so
// a rewrite that plimtab or plimc already performed is served from disk
// with zero cycles. A per-run cache summary is printed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"plim"
	"plim/internal/verify"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name")
		inFile    = flag.String("in", "", "input .mig netlist")
		shrink    = flag.Int("shrink", 1, "benchmark datapath shrink")
		rw        = flag.String("rewrite", "none", "none|alg1|alg2")
		effort    = flag.Int("effort", plim.DefaultEffort, "rewriting cycles (0 = none)")
		outMig    = flag.String("o", "", "write the (rewritten) MIG")
		outDot    = flag.String("dot", "", "write Graphviz DOT")
		checkEq   = flag.Bool("check", true, "verify rewriting preserved the function")
		doVerify  = flag.Bool("verify", false, "compile the result (full config) and print the static verification report")
		verbose   = flag.Bool("v", false, "stream per-cycle progress events to stderr")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared across plimc/plimtab/migstat invocations (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engOpts := []plim.Option{
		plim.WithEffort(*effort),
		plim.WithShrink(*shrink),
		plim.WithPersistentCache(*cacheDir),
		plim.WithVerify(*doVerify),
	}
	if *verbose {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			fmt.Fprintln(os.Stderr, plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	var m *plim.MIG
	var err error
	switch {
	case *benchName != "":
		m, err = eng.Benchmark(*benchName)
	case *inFile != "":
		var f *os.File
		if f, err = os.Open(*inFile); err == nil {
			m, err = plim.ReadMIG(f)
			f.Close()
		}
	default:
		err = fmt.Errorf("migstat: need -bench or -in")
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("input       %s: %s\n", m.Name, m.Statistics())

	out := m
	var kind plim.RewriteKind
	switch *rw {
	case "none":
		kind = plim.RewriteNone
	case "alg1":
		kind = plim.RewriteAlgorithm1
	case "alg2":
		kind = plim.RewriteAlgorithm2
	default:
		fatal(fmt.Errorf("migstat: unknown -rewrite %q", *rw))
	}
	if kind != plim.RewriteNone {
		var st plim.RewriteStats
		out, st, err = eng.Rewrite(ctx, m, kind)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rewritten   %s: %s\n", *rw, out.Statistics())
		fmt.Printf("            %d → %d nodes, depth %d → %d, %d cycles\n",
			st.NodesBefore, st.NodesAfter, st.DepthBefore, st.DepthAfter, st.Cycles)
		if *checkEq {
			res, err := plim.Equivalent(m, out, 16, 1)
			if err != nil {
				fatal(err)
			}
			if !res.Equivalent {
				fatal(fmt.Errorf("migstat: rewriting changed the function at PO %d", res.PO))
			}
			mode := "random simulation"
			if res.Exhaustive {
				mode = "exhaustively"
			}
			fmt.Printf("equivalence verified %s (%d patterns)\n", mode, res.Patterns)
		}
	}

	if *doVerify {
		rep, err := eng.Run(ctx, out, plim.MinWrite)
		if err != nil {
			fatal(err)
		}
		vr := rep.Verify
		if vr == nil {
			vr = plim.Verify(rep.Result.Program, plim.VerifyOptions{CostModel: eng.CostModel()})
			verify.CheckWriteParity(vr, rep.Result.WriteCounts, "allocator")
		}
		fmt.Println()
		vr.Render(os.Stdout, verify.RenderOptions{Verbose: *verbose})
		if !vr.OK() {
			os.Exit(1)
		}
	}

	if *outMig != "" {
		if err := withFile(*outMig, out.Write); err != nil {
			fatal(err)
		}
	}
	if *outDot != "" {
		if err := withFile(*outDot, out.WriteDOT); err != nil {
			fatal(err)
		}
	}
	if s, ok := eng.CacheSummary(); ok {
		fmt.Fprintln(os.Stderr, s)
	}
}

func withFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
