// Package diskcache is the persistent second tier below the engine's
// in-memory caches: a content-addressed on-disk store for MIG rewrite
// results and benchmark generator output. Separate CLI invocations
// (plimtab, then plimc) start with cold processes but share a cache
// directory, so the second invocation skips every rewrite the first one
// already performed.
//
// Two entry kinds are stored, mirroring the in-memory tiers they back:
//
//   - rewrite results, keyed by (input-MIG fingerprint, rewrite kind,
//     effort) exactly like core.RewriteCache, holding the rewritten MIG in
//     the .mig text format plus its rewrite.Stats;
//   - benchmark builds, keyed by (benchmark name, shrink) exactly like
//     suite.Cache, holding the generated MIG.
//
// Every entry is one file: a small text header (magic, format version, the
// full key, payload length and CRC-32) followed by the .mig payload.
// Writes go through a temp file in the cache directory and an atomic
// rename, so concurrent processes sharing a directory never observe a
// partially written entry and the last writer simply wins. Reads verify
// the header, the key, the payload length and the checksum; any mismatch —
// a corrupt file, a torn write left by a crash, an entry from an older
// format version — is treated as a cache miss, never as an error. A miss
// merely costs a recomputation, and the fresh store overwrites the bad
// entry.
//
// Invalidation is by construction: keys are content-addressed (a different
// input graph, algorithm or effort is a different file) and FormatVersion
// is bumped whenever the .mig serialization, the stats layout or the
// fingerprint function changes, which orphans every old entry at once.
package diskcache

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
	"unicode"

	"plim/internal/mig"
	"plim/internal/rewrite"
)

// FormatVersion is written into every entry header and checked on load.
// Bump it whenever the entry layout, the .mig text format, rewrite.Stats
// or mig.Fingerprint changes incompatibly; all existing entries then read
// as misses and are rewritten on the next store.
//
// Version history: 1 = initial layout; 2 = entries additionally record the
// stored graph's own fingerprint (the "out" header line), enabling
// load-time re-verification under SetVerify.
const FormatVersion = 2

const magic = "plimcache"

// Entry kind tags inside the header.
const (
	kindRewrite   = "rewrite"
	kindBenchmark = "bench"
)

// ProbeOutcome classifies one disk probe for trace spans and metrics:
// ProbeVerifyMiss is the subset of misses where a structurally readable
// entry was rejected solely by SetVerify fingerprint re-verification.
type ProbeOutcome uint8

// Probe outcomes.
const (
	ProbeMiss ProbeOutcome = iota
	ProbeHit
	ProbeVerifyMiss
)

// String names the outcome the way trace spans and metrics label it.
func (o ProbeOutcome) String() string {
	switch o {
	case ProbeHit:
		return "hit"
	case ProbeVerifyMiss:
		return "verify_miss"
	}
	return "miss"
}

// Counters is a snapshot of a cache's hit/miss/store accounting. Loads
// that fail verification (corrupt, truncated, version-mismatched entries)
// count as misses.
type Counters struct {
	RewriteHits, RewriteMisses     uint64
	BenchmarkHits, BenchmarkMisses uint64
	Stores, StoreErrors            uint64
}

// Cache is an open persistent cache directory. It is safe for concurrent
// use by multiple goroutines and by multiple processes sharing the same
// directory.
type Cache struct {
	dir string

	// verify arms load-time re-verification: a hit must also reproduce the
	// fingerprint recorded at store time (see SetVerify).
	verify atomic.Bool

	rewriteHits, rewriteMisses atomic.Uint64
	benchHits, benchMisses     atomic.Uint64
	stores, storeErrors        atomic.Uint64
	verifyMisses               atomic.Uint64
}

// Open creates (if needed) and opens a cache directory. Stale temp files
// left behind by crashed writers are swept on open.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	sweepStaleTemps(dir)
	return &Cache{dir: dir}, nil
}

// staleTempAge is how old a .tmp-* file must be before Open reclaims it.
// Stores buffer the whole entry in memory first, so a healthy writer holds
// its temp file for milliseconds; an hour leaves a huge margin for slow
// filesystems while still bounding the garbage a crashy fleet can leave in
// a shared directory.
const staleTempAge = time.Hour

func sweepStaleTemps(dir string) {
	tmps, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, p := range tmps {
		if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() && fi.ModTime().Before(cutoff) {
			os.Remove(p) // best-effort; a concurrent writer's rename already moved its file away
		}
	}
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// SetVerify toggles load-time re-verification (default off; plim.Engine
// arms it under WithVerify). Every entry records the fingerprint of the
// graph it stores; with verification on, a load additionally recomputes
// the parsed graph's fingerprint and treats any mismatch as a miss. The
// CRC already catches torn writes and random corruption; the fingerprint
// closes the residual gap — a corrupted-but-CRC-colliding payload, or an
// entry written by a build whose serialization drifted without a
// FormatVersion bump — so a verifying engine can never be served a graph
// that is not byte-for-byte the one that was stored.
func (c *Cache) SetVerify(enabled bool) { c.verify.Store(enabled) }

// VerifyMisses counts loads rejected by SetVerify re-verification alone.
func (c *Cache) VerifyMisses() uint64 { return c.verifyMisses.Load() }

// Counters returns a snapshot of the cache's accounting.
func (c *Cache) Counters() Counters {
	return Counters{
		RewriteHits:     c.rewriteHits.Load(),
		RewriteMisses:   c.rewriteMisses.Load(),
		BenchmarkHits:   c.benchHits.Load(),
		BenchmarkMisses: c.benchMisses.Load(),
		Stores:          c.stores.Load(),
		StoreErrors:     c.storeErrors.Load(),
	}
}

func rewritePath(dir string, fp uint64, kind uint8, effort int) string {
	return filepath.Join(dir, fmt.Sprintf("rw-%016x-k%d-e%d.plimcache", fp, kind, effort))
}

func benchPath(dir, name string, shrink int) string {
	return filepath.Join(dir, fmt.Sprintf("bench-%s-s%d.plimcache", sanitize(name), shrink))
}

// sanitize keeps benchmark-derived file names path-safe. Registry names
// are plain identifiers already; anything else is hex-escaped.
func sanitize(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if !(ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' || ch == '_' || ch == '-' || ch == '.') {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	return fmt.Sprintf("x%x", name)
}

// Storable reports whether m round-trips faithfully through the .mig text
// format, which a persisted entry must (a disk hit is contractually
// byte-identical to a fresh computation). Two properties are required:
//
//   - canonical numbering: the format puts all PIs before any majority
//     node, so a graph that interleaves them would come back renumbered —
//     structurally equivalent but not fingerprint- or node-order-identical;
//   - token-safe names: the format is line- and whitespace-delimited, so a
//     model/PI/PO name containing whitespace would be truncated (or, with
//     a newline, reparsed as a directive) on load.
//
// Both are only violable by hand-built MIGs — every generator, Cleanup and
// rewrite output is canonical with identifier-style names — and such
// graphs are simply not persisted.
func Storable(m *mig.MIG) bool {
	for i := 0; i < m.NumPIs(); i++ {
		if m.PINode(i) != mig.NodeID(i+1) {
			return false
		}
	}
	if !tokenSafe(m.Name) {
		return false
	}
	for i := 0; i < m.NumPIs(); i++ {
		if !tokenSafe(m.PIName(i)) {
			return false
		}
	}
	for i := 0; i < m.NumPOs(); i++ {
		if !tokenSafe(m.POName(i)) {
			return false
		}
	}
	return true
}

// tokenSafe reports whether a name survives the whitespace-delimited .mig
// format unchanged ("" is fine: nameless pins serialize as bare
// directives).
func tokenSafe(name string) bool {
	return !strings.ContainsFunc(name, unicode.IsSpace)
}

// StoreRewrite persists a rewrite result under (fp, kind, effort). Graphs
// that cannot round-trip faithfully (see Storable) are skipped without
// error. Store failures are counted but otherwise best-effort: the caller
// already holds the computed result.
func (c *Cache) StoreRewrite(fp uint64, kind uint8, effort int, m *mig.MIG, st rewrite.Stats) error {
	if !Storable(m) {
		return nil
	}
	var head bytes.Buffer
	fmt.Fprintf(&head, "key %016x %d %d\n", fp, kind, effort)
	fmt.Fprintf(&head, "out %016x\n", m.Fingerprint())
	fmt.Fprintf(&head, "stats %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
		st.Cycles, st.NodesBefore, st.NodesAfter, st.DepthBefore, st.DepthAfter,
		st.CompHistBefore[0], st.CompHistBefore[1], st.CompHistBefore[2], st.CompHistBefore[3],
		st.CompHistAfter[0], st.CompHistAfter[1], st.CompHistAfter[2], st.CompHistAfter[3])
	return c.store(rewritePath(c.dir, fp, kind, effort), kindRewrite, head.Bytes(), m)
}

// LoadRewrite probes the cache for a rewrite result. ok is false on any
// miss, including unreadable, corrupt or version-mismatched entries.
func (c *Cache) LoadRewrite(fp uint64, kind uint8, effort int) (m *mig.MIG, st rewrite.Stats, ok bool) {
	m, st, out := c.ProbeRewrite(fp, kind, effort)
	return m, st, out == ProbeHit
}

// ProbeRewrite is LoadRewrite reporting how the probe resolved, so callers
// can annotate trace spans with hit / miss / verify_miss.
func (c *Cache) ProbeRewrite(fp uint64, kind uint8, effort int) (m *mig.MIG, st rewrite.Stats, out ProbeOutcome) {
	payload, header, ok := c.load(rewritePath(c.dir, fp, kind, effort), kindRewrite)
	if ok {
		m, st, out = c.parseRewrite(payload, header, fp, kind, effort)
	}
	if out == ProbeHit {
		c.rewriteHits.Add(1)
	} else {
		c.rewriteMisses.Add(1)
	}
	return m, st, out
}

func (c *Cache) parseRewrite(payload []byte, header []string, fp uint64, kind uint8, effort int) (*mig.MIG, rewrite.Stats, ProbeOutcome) {
	var st rewrite.Stats
	if len(header) != 3 {
		return nil, st, ProbeMiss
	}
	var gotFP uint64
	var gotKind, gotEffort int
	if _, err := fmt.Sscanf(header[0], "key %x %d %d", &gotFP, &gotKind, &gotEffort); err != nil ||
		gotFP != fp || gotKind != int(kind) || gotEffort != effort {
		return nil, st, ProbeMiss
	}
	if _, err := fmt.Sscanf(header[2], "stats %d %d %d %d %d %d %d %d %d %d %d %d %d",
		&st.Cycles, &st.NodesBefore, &st.NodesAfter, &st.DepthBefore, &st.DepthAfter,
		&st.CompHistBefore[0], &st.CompHistBefore[1], &st.CompHistBefore[2], &st.CompHistBefore[3],
		&st.CompHistAfter[0], &st.CompHistAfter[1], &st.CompHistAfter[2], &st.CompHistAfter[3]); err != nil {
		return nil, st, ProbeMiss
	}
	m, err := mig.Read(bytes.NewReader(payload))
	if err != nil || m.Validate() != nil {
		return nil, st, ProbeMiss
	}
	if out := c.checkOut(header[1], m); out != ProbeHit {
		return nil, st, out
	}
	return m, st, ProbeHit
}

// checkOut re-verifies a parsed graph against the "out <fingerprint>"
// header line recorded at store time. The line must parse regardless of
// the verify switch (it is part of the v2 layout); the fingerprint itself
// is only recomputed and compared when SetVerify armed the cache.
func (c *Cache) checkOut(line string, m *mig.MIG) ProbeOutcome {
	var want uint64
	if _, err := fmt.Sscanf(line, "out %x", &want); err != nil {
		return ProbeMiss
	}
	if !c.verify.Load() {
		return ProbeHit
	}
	if m.Fingerprint() != want {
		c.verifyMisses.Add(1)
		return ProbeVerifyMiss
	}
	return ProbeHit
}

// StoreBenchmark persists a benchmark build under (name, shrink).
func (c *Cache) StoreBenchmark(name string, shrink int, m *mig.MIG) error {
	if !Storable(m) {
		return nil
	}
	head := fmt.Appendf(nil, "key %q %d\nout %016x\n", name, shrink, m.Fingerprint())
	return c.store(benchPath(c.dir, name, shrink), kindBenchmark, head, m)
}

// LoadBenchmark probes the cache for a benchmark build.
func (c *Cache) LoadBenchmark(name string, shrink int) (*mig.MIG, bool) {
	m, out := c.ProbeBenchmark(name, shrink)
	return m, out == ProbeHit
}

// ProbeBenchmark is LoadBenchmark reporting how the probe resolved.
func (c *Cache) ProbeBenchmark(name string, shrink int) (m *mig.MIG, out ProbeOutcome) {
	payload, header, ok := c.load(benchPath(c.dir, name, shrink), kindBenchmark)
	if ok {
		m, out = c.parseBenchmark(payload, header, name, shrink)
	}
	if out == ProbeHit {
		c.benchHits.Add(1)
	} else {
		c.benchMisses.Add(1)
	}
	return m, out
}

func (c *Cache) parseBenchmark(payload []byte, header []string, name string, shrink int) (*mig.MIG, ProbeOutcome) {
	if len(header) != 2 {
		return nil, ProbeMiss
	}
	var gotName string
	var gotShrink int
	if _, err := fmt.Sscanf(header[0], "key %q %d", &gotName, &gotShrink); err != nil ||
		gotName != name || gotShrink != shrink {
		return nil, ProbeMiss
	}
	m, err := mig.Read(bytes.NewReader(payload))
	if err != nil || m.Validate() != nil {
		return nil, ProbeMiss
	}
	if out := c.checkOut(header[1], m); out != ProbeHit {
		return nil, out
	}
	return m, ProbeHit
}

// store writes one entry atomically: serialize into memory, write a temp
// file in the cache directory, rename over the final path. Concurrent
// writers race benignly (both write complete files; the last rename wins)
// and a crash mid-write leaves only a temp file or a truncated temp file,
// never a truncated entry under the final name.
func (c *Cache) store(path, entryKind string, header []byte, m *mig.MIG) error {
	err := c.storeFile(path, entryKind, header, m)
	if err != nil {
		c.storeErrors.Add(1)
	} else {
		c.stores.Add(1)
	}
	return err
}

func (c *Cache) storeFile(path, entryKind string, header []byte, m *mig.MIG) error {
	var payload bytes.Buffer
	if err := m.Write(&payload); err != nil {
		return fmt.Errorf("diskcache: serialize: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d %s\n", magic, FormatVersion, entryKind)
	buf.Write(header)
	fmt.Fprintf(&buf, "payload %d %08x\n", payload.Len(), crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(payload.Bytes())

	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// load reads one entry file and verifies everything below the key: magic,
// version, entry kind, payload length and checksum. It returns the payload
// and the header lines between the magic line and the payload line; any
// problem is a miss (nil, nil, false).
func (c *Cache) load(path, entryKind string) (payload []byte, header []string, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false
	}
	line, rest, found := bytes.Cut(data, []byte{'\n'})
	if !found {
		return nil, nil, false
	}
	var ver int
	var gotMagic, gotKind string
	if _, err := fmt.Sscanf(string(line), "%s %d %s", &gotMagic, &ver, &gotKind); err != nil ||
		gotMagic != magic || ver != FormatVersion || gotKind != entryKind {
		return nil, nil, false
	}
	for {
		line, rest, found = bytes.Cut(rest, []byte{'\n'})
		if !found {
			return nil, nil, false
		}
		if bytes.HasPrefix(line, []byte("payload ")) {
			var n int
			var sum uint32
			if _, err := fmt.Sscanf(string(line), "payload %d %x", &n, &sum); err != nil {
				return nil, nil, false
			}
			if len(rest) != n || crc32.ChecksumIEEE(rest) != sum {
				return nil, nil, false
			}
			// Mark the entry recently used so GC's oldest-first eviction
			// approximates LRU rather than FIFO. Best-effort: a concurrent
			// writer may just have renamed a fresh file over path, which only
			// makes the entry look even younger.
			now := time.Now()
			_ = os.Chtimes(path, now, now)
			return rest, header, true
		}
		header = append(header, string(line))
		if len(header) > 8 {
			return nil, nil, false // runaway header: not one of ours
		}
	}
}
