package rram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRM3TruthTable(t *testing.T) {
	// Z ← ⟨P Q̄ Z⟩ for all 8 combinations.
	for row := 0; row < 8; row++ {
		p := row&1 == 1
		q := row>>1&1 == 1
		z := row>>2&1 == 1
		c := NewLinear(1)
		c.Preload(0, z)
		if err := c.RM3(p, q, 0); err != nil {
			t.Fatal(err)
		}
		nq := !q
		want := p && z || nq && z || p && nq
		if got := c.Read(0); got != want {
			t.Errorf("RM3(p=%v q=%v z=%v) = %v, want %v", p, q, z, got, want)
		}
	}
}

func TestRM3IsNotCommutative(t *testing.T) {
	// §II of the paper: RM3 loses commutativity in its first two operands
	// because the second is inverted. Find a witness.
	witness := false
	for row := 0; row < 8; row++ {
		p := row&1 == 1
		q := row>>1&1 == 1
		z := row>>2&1 == 1
		a := NewLinear(1)
		a.Preload(0, z)
		_ = a.RM3(p, q, 0)
		b := NewLinear(1)
		b.Preload(0, z)
		_ = b.RM3(q, p, 0)
		if a.Read(0) != b.Read(0) {
			witness = true
		}
	}
	if !witness {
		t.Fatal("RM3(p,q,·) and RM3(q,p,·) agree everywhere; operand inversion lost")
	}
}

func TestWriteAndSwitchCounting(t *testing.T) {
	c := NewLinear(2)
	if err := c.Write(0, true); err != nil { // 0→1: write + switch
		t.Fatal(err)
	}
	if err := c.Write(0, true); err != nil { // 1→1: write only
		t.Fatal(err)
	}
	d := c.Device(0)
	if d.Writes() != 2 || d.Switches() != 1 {
		t.Fatalf("writes=%d switches=%d, want 2/1", d.Writes(), d.Switches())
	}
	if c.Device(1).Writes() != 0 {
		t.Fatalf("untouched device has writes")
	}
}

func TestPreloadDoesNotCount(t *testing.T) {
	c := NewLinear(1)
	c.Preload(0, true)
	if c.Device(0).Writes() != 0 {
		t.Fatalf("preload counted as write")
	}
	if !c.Read(0) {
		t.Fatalf("preload did not store the value")
	}
}

func TestEnduranceFailure(t *testing.T) {
	c := NewLinear(1, WithEndurance(3))
	for i := 0; i < 3; i++ {
		if err := c.Write(0, i%2 == 0); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if err := c.Write(0, true); err != ErrWornOut {
		t.Fatalf("4th write: got %v, want ErrWornOut", err)
	}
	if !c.Device(0).Failed() {
		t.Fatalf("device should be marked failed")
	}
	// Subsequent writes keep failing.
	if err := c.RM3(true, false, 0); err != ErrWornOut {
		t.Fatalf("RM3 after failure: got %v, want ErrWornOut", err)
	}
}

func TestCycleAccounting(t *testing.T) {
	c := NewLinear(4, WithCycleModel(CycleModel{Read: 2, Write: 5}))
	c.Read(0)
	_ = c.Write(1, true)
	_ = c.RM3(true, true, 2)
	reads, writes, cycles := c.Totals()
	if reads != 1 || writes != 2 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	if cycles != 2+5+5 {
		t.Fatalf("cycles=%d, want 12", cycles)
	}
}

func TestCrossbarGeometry(t *testing.T) {
	c := NewCrossbar(4, 8)
	if c.Size() != 32 || c.Rows() != 4 || c.Cols() != 8 {
		t.Fatalf("geometry wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range access must panic")
		}
	}()
	c.Read(32)
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewCrossbar(0,5) must panic")
		}
	}()
	NewCrossbar(0, 5)
}

func TestWriteCountsSnapshot(t *testing.T) {
	c := NewLinear(4)
	_ = c.Write(1, true)
	_ = c.Write(1, false)
	_ = c.Write(3, true)
	got := c.WriteCounts(4)
	want := []uint64{0, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WriteCounts = %v, want %v", got, want)
		}
	}
	sw := c.SwitchCounts(4)
	if sw[1] != 2 || sw[3] != 1 {
		t.Fatalf("SwitchCounts = %v", sw)
	}
	if len(c.WriteCounts(99)) != 4 {
		t.Fatalf("WriteCounts must clamp n")
	}
}

func TestWearMap(t *testing.T) {
	c := NewLinear(130)
	for i := 0; i < 9; i++ {
		_ = c.Write(0, i%2 == 0)
	}
	_ = c.Write(129, true)
	m := c.WearMap(130)
	if !strings.HasPrefix(m, "9") {
		t.Fatalf("hottest device should render as 9: %q", m[:8])
	}
	if !strings.Contains(m, "\n") {
		t.Fatalf("wear map should wrap lines")
	}
	if !strings.Contains(m, ".") {
		t.Fatalf("cold devices should render as dots")
	}
}

// Property: RM3 equals majority of (P, ¬Q, Z) for arbitrary bit sequences.
func TestRM3MatchesMajorityQuick(t *testing.T) {
	f := func(ops []byte) bool {
		c := NewLinear(1)
		z := false
		for _, op := range ops {
			p := op&1 == 1
			q := op>>1&1 == 1
			if err := c.RM3(p, q, 0); err != nil {
				return false
			}
			nq := !q
			z = p && z || nq && z || p && nq
			if c.Read(0) != z {
				return false
			}
		}
		return c.Device(0).Writes() == uint64(len(ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
