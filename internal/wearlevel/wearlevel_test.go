package wearlevel

import (
	"testing"
	"testing/quick"
)

func TestMapIsBijective(t *testing.T) {
	f := func(nSeed uint8, steps uint16) bool {
		n := int(nSeed%50) + 2
		sg := NewStartGap(n, 3)
		for s := 0; s < int(steps%200); s++ {
			sg.OnWrite()
		}
		seen := make(map[int]bool, n)
		for l := 0; l < n; l++ {
			p := sg.Map(l)
			if p < 0 || p > n {
				return false
			}
			if p == sg.GapPosition() {
				return false // gap holds no data
			}
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGapWalksAndStartAdvances(t *testing.T) {
	n := 4
	sg := NewStartGap(n, 1) // move the gap on every write
	positions := []int{sg.GapPosition()}
	for i := 0; i < n+1; i++ {
		sg.OnWrite()
		positions = append(positions, sg.GapPosition())
	}
	// Gap: 4 →3 →2 →1 →0 →4 (wrap with start advance).
	want := []int{4, 3, 2, 1, 0, 4}
	for i, w := range want {
		if positions[i] != w {
			t.Fatalf("gap walk %v, want %v", positions, want)
		}
	}
	if sg.Moves() != uint64(n+1) {
		t.Fatalf("moves = %d", sg.Moves())
	}
}

func TestMappingRotatesOverTime(t *testing.T) {
	// After enough writes, logical line 0 must have visited several
	// distinct physical lines — the essence of start-gap.
	n := 8
	sg := NewStartGap(n, 2)
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		seen[sg.Map(0)] = true
		sg.OnWrite()
	}
	if len(seen) < n/2 {
		t.Fatalf("logical 0 visited only %d physical lines", len(seen))
	}
}

func TestSimulateImprovesSkewedLifetime(t *testing.T) {
	// One scorching line, many cold ones — the compiled-program profile the
	// paper's naive configuration produces.
	profile := make([]uint64, 32)
	for i := range profile {
		profile[i] = 1
	}
	profile[0] = 40
	const endurance = 20000
	base := Baseline(profile, endurance)
	res := Simulate(profile, endurance, 16)
	if res.Runs <= base {
		t.Fatalf("rotation must beat the baseline on skewed profiles: %d vs %d", res.Runs, base)
	}
	// Ideal gain is max/mean ≈ 40/2.2 ≈ 18×; require at least 3× here.
	if res.Runs < 3*base {
		t.Fatalf("rotation gain too small: %d vs baseline %d", res.Runs, base)
	}
	if res.CopyWrites == 0 {
		t.Fatal("gap movement must cost copy writes")
	}
}

func TestSimulateUniformProfileNearBaseline(t *testing.T) {
	// Uniform wear gains nothing from rotation; the copy overhead must stay
	// small for large psi.
	profile := make([]uint64, 16)
	for i := range profile {
		profile[i] = 4
	}
	const endurance = 4000
	base := Baseline(profile, endurance)
	res := Simulate(profile, endurance, 256)
	if res.Runs > base+base/8+2 {
		t.Fatalf("uniform profile cannot gain much: %d vs %d", res.Runs, base)
	}
	if res.Runs < base-base/4 {
		t.Fatalf("overhead too high on uniform profile: %d vs %d", res.Runs, base)
	}
}

func TestBaselineZeroProfile(t *testing.T) {
	if Baseline([]uint64{0, 0}, 100) != ^uint64(0) {
		t.Fatal("zero profile must live forever")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewStartGap(%d,%d) must panic", c[0], c[1])
				}
			}()
			NewStartGap(c[0], uint64(c[1]))
		}()
	}
	sg := NewStartGap(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Map out of range must panic")
		}
	}()
	sg.Map(7)
}
