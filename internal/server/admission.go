package server

import (
	"errors"
	"math"
	"sync"
	"time"
)

// errQueueFull is returned by admit when the server already carries its
// configured number of in-flight computations; the handler answers 429
// with a Retry-After estimate instead of accepting unboundedly.
var errQueueFull = errors.New("server: admission queue full")

// admission bounds how many coalesced computations may be in flight at
// once. Since flights submit task graphs to the engine's shared
// work-stealing scheduler (which multiplexes every flight over one worker
// pool, ordered by request deadline), a flight no longer occupies a "run
// slot" for its wall-clock: admission is a pure back-pressure gate. The
// first concurrency admitted flights count as running, the excess — work
// the scheduler holds as backlog — as queued; beyond concurrency+queueDepth
// admit rejects immediately, without blocking.
type admission struct {
	concurrency int
	capacity    int // concurrency + queueDepth

	mu       sync.Mutex
	inflight int
	ewma     float64 // exponentially-weighted average service seconds
}

func newAdmission(concurrency, queueDepth int) *admission {
	return &admission{concurrency: concurrency, capacity: concurrency + queueDepth}
}

// admit claims an in-flight seat without blocking. It returns a release
// function on success or errQueueFull when capacity flights are already in
// flight. release must be called exactly once (extra calls are no-ops).
func (a *admission) admit() (release func(), err error) {
	a.mu.Lock()
	if a.inflight >= a.capacity {
		a.mu.Unlock()
		return nil, errQueueFull
	}
	a.inflight++
	a.mu.Unlock()
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(start)
			a.mu.Lock()
			a.inflight--
			a.observeLocked(d)
			a.mu.Unlock()
		})
	}, nil
}

// observeLocked folds one flight's service time into the EWMA that
// retryAfter scales. Callers hold mu.
func (a *admission) observeLocked(d time.Duration) {
	const alpha = 0.3
	if a.ewma == 0 {
		a.ewma = d.Seconds()
	} else {
		a.ewma = alpha*d.Seconds() + (1-alpha)*a.ewma
	}
}

// running reports how many in-flight computations count against the
// configured concurrency.
func (a *admission) running() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return min(a.inflight, a.concurrency)
}

// queuedWaiting reports the in-flight computations beyond the configured
// concurrency — the scheduler backlog admission still accepts.
func (a *admission) queuedWaiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return max(0, a.inflight-a.concurrency)
}

// retryAfter estimates when a rejected client should try again: the current
// in-flight backlog divided by the service rate, using the observed average
// flight time (1s before any observation), clamped to [1s, 60s].
func (a *admission) retryAfter() time.Duration {
	a.mu.Lock()
	ewma, inflight := a.ewma, a.inflight
	a.mu.Unlock()
	if ewma <= 0 {
		ewma = 1
	}
	backlog := float64(inflight) / float64(a.concurrency)
	secs := math.Ceil(ewma * backlog)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}
