// Package wearlevel implements start-gap wear leveling (Qureshi et al.,
// MICRO 2009 — reference [8] of the DATE 2017 paper) as an extension study:
// the paper balances writes within one compiled program, while start-gap
// rotates the logical→physical mapping across repeated executions, so the
// two compose.
//
// The memory owns one spare line. A gap position walks backwards through
// the physical lines, moving one step every psi writes; each move copies
// one line (one extra write). After a full sweep the start offset advances,
// so every logical line visits every physical line over time and per-line
// wear approaches the average instead of the maximum.
package wearlevel

import "fmt"

// StartGap maps n logical lines onto n+1 physical lines.
type StartGap struct {
	n     int
	start int
	gap   int
	psi   uint64 // gap moves one step every psi writes
	acc   uint64 // writes since the last gap movement
	moves uint64 // total gap movements (each costs one copy write)
}

// NewStartGap creates a mapper for n logical lines with gap period psi.
func NewStartGap(n int, psi uint64) *StartGap {
	if n < 1 || psi < 1 {
		panic(fmt.Sprintf("wearlevel: invalid start-gap config n=%d psi=%d", n, psi))
	}
	return &StartGap{n: n, gap: n, psi: psi}
}

// NumPhysical returns the physical line count (logical + 1 spare).
func (s *StartGap) NumPhysical() int { return s.n + 1 }

// Moves returns how many gap movements (copy writes) have happened.
func (s *StartGap) Moves() uint64 { return s.moves }

// Map translates a logical line to its current physical line.
func (s *StartGap) Map(logical int) int {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range %d", logical, s.n))
	}
	p := (logical + s.start) % s.n
	if p >= s.gap {
		p++
	}
	return p
}

// GapPosition returns the physical line currently holding no data.
func (s *StartGap) GapPosition() int { return s.gap }

// OnWrite accounts one data write and returns the physical line that
// received a copy write if the gap moved (-1 otherwise). Callers add that
// extra write to their wear accounting.
func (s *StartGap) OnWrite() int {
	s.acc++
	if s.acc < s.psi {
		return -1
	}
	s.acc = 0
	return s.moveGap()
}

// moveGap shifts the gap one step: the line before the gap moves into the
// gap position (one copy write to the old gap line), and the gap takes its
// place. A full sweep advances the start offset.
func (s *StartGap) moveGap() int {
	s.moves++
	dst := s.gap
	if s.gap == 0 {
		s.gap = s.n
		s.start = (s.start + 1) % s.n
		return dst
	}
	s.gap--
	return dst
}

// Result summarizes a rotation simulation.
type Result struct {
	// Runs is the number of complete program executions before the first
	// physical line exceeded the endurance budget.
	Runs uint64
	// MaxWear and MeanWear describe the final physical wear distribution.
	MaxWear  uint64
	MeanWear float64
	// CopyWrites is the total overhead spent moving the gap.
	CopyWrites uint64
}

// Simulate executes a program's per-logical-line write profile repeatedly
// through a start-gap mapping until some physical line would exceed
// endurance, and reports the achieved lifetime. psi is the gap period in
// writes. The baseline without rotation survives endurance/max(profile)
// runs; skewed profiles gain up to max/mean.
func Simulate(profile []uint64, endurance, psi uint64) Result {
	n := len(profile)
	sg := NewStartGap(n, psi)
	wear := make([]uint64, n+1)
	var res Result

	for {
		// Apply one run through the current mapping. The mapping can move
		// mid-run; per-write granularity keeps the accounting exact.
		for logical, w := range profile {
			for k := uint64(0); k < w; k++ {
				p := sg.Map(logical)
				wear[p]++
				if wear[p] > endurance {
					return res
				}
				if dst := sg.OnWrite(); dst >= 0 {
					wear[dst]++
					res.CopyWrites++
					if wear[dst] > endurance {
						return res
					}
				}
			}
		}
		res.Runs++
		res.MaxWear = 0
		var total uint64
		for _, w := range wear {
			total += w
			if w > res.MaxWear {
				res.MaxWear = w
			}
		}
		res.MeanWear = float64(total) / float64(len(wear))
	}
}

// Baseline returns the lifetime (runs) without rotation: endurance divided
// by the hottest line's per-run writes.
func Baseline(profile []uint64, endurance uint64) uint64 {
	var max uint64
	for _, w := range profile {
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return ^uint64(0)
	}
	return endurance / max
}
