package compile

import (
	"fmt"

	"plim/internal/mig"
)

// candidateHeap orders computable nodes by the configured selection policy.
// The "releasing" component of a key is dynamic — sibling computations can
// turn a child into a dying child — so entries carry a snapshot and popBest
// re-validates it lazily: a popped entry whose snapshot is stale is
// re-pushed with its fresh key. Releasing counts only grow while a node
// waits (uses of its children only decrease), so every node is popped a
// bounded number of times.
//
// The sift operations replicate container/heap's algorithm exactly (append
// + up on push; swap-root-to-end + down on pop) over a concretely-typed
// backing slice, so entry movement — and therefore tie-breaking among
// equal-priority candidates — is bit-identical to the former
// container/heap implementation while avoiding its per-operation interface
// boxing. The backing slice comes from the compile scratch and is reused
// across compilations.
type candidateHeap struct {
	policy  Selection
	entries []heapEntry
}

type heapEntry struct {
	node      mig.NodeID
	releasing int32
	foLevel   int32
}

func (h *candidateHeap) Len() int { return len(h.entries) }

func (h *candidateHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	switch h.policy {
	case Standard:
		// Max releasing first, then min fanout level, then id.
		if a.releasing != b.releasing {
			return a.releasing > b.releasing
		}
		if a.foLevel != b.foLevel {
			return a.foLevel < b.foLevel
		}
	case Endurance:
		// Min fanout level first (shortest storage duration), then max
		// releasing — paper Algorithm 3.
		if a.foLevel != b.foLevel {
			return a.foLevel < b.foLevel
		}
		if a.releasing != b.releasing {
			return a.releasing > b.releasing
		}
	}
	// NodeOrder and all ties: construction order.
	return a.node < b.node
}

func (h *candidateHeap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
}

func (h *candidateHeap) pushEntry(e heapEntry) {
	h.entries = append(h.entries, e)
	h.up(len(h.entries) - 1)
}

func (h *candidateHeap) popEntry() heapEntry {
	n := len(h.entries) - 1
	h.swap(0, n)
	h.down(0, n)
	e := h.entries[n]
	h.entries = h.entries[:n]
	return e
}

func (h *candidateHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *candidateHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2, right child
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
}

// releasingCount returns how many devices computing n would free: distinct
// non-constant children whose remaining uses are exactly n's own uses of
// them (n is their last consumer). One scan suffices: for each child, the
// backward half of the triple detects duplicates (only the first occurrence
// counts) and the forward half tallies n's remaining uses of it.
func (c *compiler) releasingCount(n mig.NodeID) int32 {
	ch := c.m.Children(n)
	var cnt int32
	for i, s := range ch {
		cn := s.Node()
		if cn == 0 {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if ch[j].Node() == cn {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		uses := int32(1)
		for j := i + 1; j < 3; j++ {
			if ch[j].Node() == cn {
				uses++
			}
		}
		if c.remaining[cn] == uses {
			cnt++
		}
	}
	return cnt
}

// push inserts a candidate with a fresh key snapshot.
func (c *compiler) push(n mig.NodeID) {
	c.heap.pushEntry(heapEntry{
		node:      n,
		releasing: c.releasingCount(n),
		foLevel:   c.foLevel[n],
	})
}

// popBest pops the top candidate, re-validating its dynamic key. It returns
// ok=false when the popped entry was stale and has been re-pushed; callers
// loop until the heap empties or a valid entry appears.
//
// Of the three key components only `releasing` is dynamic: a node's id never
// changes and its fanout level is fixed once newCompiler has swept the graph
// (no parent edges are added or removed during compilation), so those two
// are trusted from the snapshot and only the releasing count is recomputed.
// The invariant is asserted here — a drifting foLevel would mean the
// priority order itself is stale, which lazy re-push cannot repair.
func (c *compiler) popBest() (mig.NodeID, bool) {
	e := c.heap.popEntry()
	if e.foLevel != c.foLevel[e.node] {
		panic(fmt.Sprintf("compile: fanout level of node %d changed while queued (%d -> %d); popBest assumes it is static",
			e.node, e.foLevel, c.foLevel[e.node]))
	}
	if c.heap.policy != NodeOrder {
		if rel := c.releasingCount(e.node); rel != e.releasing {
			e.releasing = rel
			c.heap.pushEntry(e)
			return 0, false
		}
	}
	return e.node, true
}
