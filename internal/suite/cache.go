package suite

import (
	"sync"

	"plim/internal/mig"
)

// Cache memoizes benchmark generator output per (name, shrink). Every
// generator is deterministic, so a cached graph is structurally identical
// to a fresh build; the expensive word-level construction (and the
// follow-up Cleanup/Validate) runs once.
//
// Cached MIGs are shared between callers and must be treated as read-only.
// The compilation flow only reads its input, so internal/tables hands the
// shared instance straight to the staged runner; plim.Engine.Benchmark
// clones before returning a cached graph to user code.
//
// Concurrent callers of the same key share one build (singleflight).
// Errors (unknown benchmark, validation failure) are not cached.
type Cache struct {
	mu      sync.Mutex
	entries map[buildKey]*buildEntry
}

type buildKey struct {
	name   string
	shrink int
}

type buildEntry struct {
	done chan struct{}
	m    *mig.MIG
	err  error
}

// NewCache returns an empty benchmark cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[buildKey]*buildEntry)}
}

// Len reports the number of cached benchmark builds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// BuildScaled is suite.BuildScaled memoized through the cache. The
// returned MIG is shared: callers must not mutate it. A nil *Cache builds
// afresh.
func (c *Cache) BuildScaled(name string, shrink int) (*mig.MIG, error) {
	if c == nil {
		return BuildScaled(name, shrink)
	}
	key := buildKey{name: name, shrink: shrink}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &buildEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			e.m, e.err = BuildScaled(name, shrink)
			if e.err != nil {
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
			close(e.done)
			return e.m, e.err
		}
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			return e.m, nil
		}
		// The building caller failed and removed the entry; retry so this
		// caller either rebuilds or reports its own error.
	}
}
