package lint

import (
	"fmt"
	"go/ast"
)

// CtxFirst enforces the Go convention that a context.Context parameter
// comes first. It applies to exported functions, and to exported methods
// on exported types — the surfaces a library user calls. Long-running
// engine APIs grew context support over several PRs; this pins the
// signature shape so new entry points cannot regress it.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions taking a context.Context must take it first",
	Run:  ctxFirst,
}

func ctxFirst(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			imports := fileImports(f)
			if imports["context"] != "context" {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				if fd.Recv != nil && !ast.IsExported(recvTypeName(fd.Recv)) {
					continue
				}
				pos, idx := ctxParamIndex(fd)
				if idx > 0 {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(pos.Pos()),
						Analyzer: "ctxfirst",
						Message: fmt.Sprintf("%s.%s takes context.Context as parameter %d; contexts go first",
							pkg.Name, fd.Name.Name, idx+1),
					})
				}
			}
		}
	}
	return diags
}

// ctxParamIndex returns the position of the first context.Context parameter
// in flattened parameter order, or -1. Multi-name fields (a, b int) count
// each name as one position.
func ctxParamIndex(fd *ast.FuncDecl) (ast.Node, int) {
	if fd.Type.Params == nil {
		return nil, -1
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(field.Type) {
			return field, pos
		}
		pos += n
	}
	return nil, -1
}

func isContextType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context" && sel.Sel.Name == "Context"
}
