//go:build !race

package server

// minSpanCoverage is the fraction of a traced flight's wall time its spans
// must explain. 95% is the design bar (the measured coverage is ~98%: the
// only untraced wall time is request decoding and handler bookkeeping).
const minSpanCoverage = 0.95
