// migstat inspects and rewrites MIG netlists: it reports structural
// statistics (nodes, depth, complement histogram — the quantities that
// drive PLiM cost), runs either rewriting algorithm, and exports .mig or
// Graphviz DOT.
//
// Examples:
//
//	migstat -bench sin
//	migstat -bench sin -rewrite alg2 -o sin_opt.mig
//	migstat -in design.mig -rewrite alg1 -effort 3 -dot design.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"plim/internal/mig"
	"plim/internal/rewrite"
	"plim/internal/suite"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name")
		inFile    = flag.String("in", "", "input .mig netlist")
		shrink    = flag.Int("shrink", 1, "benchmark datapath shrink")
		rw        = flag.String("rewrite", "none", "none|alg1|alg2")
		effort    = flag.Int("effort", 5, "rewriting cycles")
		outMig    = flag.String("o", "", "write the (rewritten) MIG")
		outDot    = flag.String("dot", "", "write Graphviz DOT")
		checkEq   = flag.Bool("check", true, "verify rewriting preserved the function")
	)
	flag.Parse()

	var m *mig.MIG
	var err error
	switch {
	case *benchName != "":
		m, err = suite.BuildScaled(*benchName, *shrink)
	case *inFile != "":
		var f *os.File
		if f, err = os.Open(*inFile); err == nil {
			m, err = mig.Read(f)
			f.Close()
		}
	default:
		err = fmt.Errorf("migstat: need -bench or -in")
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("input       %s: %s\n", m.Name, m.Statistics())

	out := m
	switch *rw {
	case "none":
	case "alg1", "alg2":
		pipeline := rewrite.Algorithm1
		if *rw == "alg2" {
			pipeline = rewrite.Algorithm2
		}
		var st rewrite.Stats
		out, st = rewrite.Run(m, pipeline, *effort)
		fmt.Printf("rewritten   %s: %s\n", *rw, out.Statistics())
		fmt.Printf("            %d → %d nodes, depth %d → %d, %d cycles\n",
			st.NodesBefore, st.NodesAfter, st.DepthBefore, st.DepthAfter, st.Cycles)
		if *checkEq {
			res, err := mig.Equivalent(m, out, 16, 1)
			if err != nil {
				fatal(err)
			}
			if !res.Equivalent {
				fatal(fmt.Errorf("migstat: rewriting changed the function at PO %d", res.PO))
			}
			mode := "random simulation"
			if res.Exhaustive {
				mode = "exhaustively"
			}
			fmt.Printf("equivalence verified %s (%d patterns)\n", mode, res.Patterns)
		}
	default:
		fatal(fmt.Errorf("migstat: unknown -rewrite %q", *rw))
	}

	if *outMig != "" {
		if err := withFile(*outMig, out.Write); err != nil {
			fatal(err)
		}
	}
	if *outDot != "" {
		if err := withFile(*outDot, out.WriteDOT); err != nil {
			fatal(err)
		}
	}
}

func withFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
