package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStartNestsUnderParent(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "request", "/v1/compile")
	cctx, task := Start(ctx, "rewrite", "adder")
	probe := StartNoCtx(cctx, "cache", "rewrite-probe")
	probe.Attr("outcome", "compute")
	probe.End()
	task.SetWorker(2)
	task.SetQueueWait(5 * time.Microsecond)
	task.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != -1 {
		t.Errorf("root parent = %d, want -1", spans[0].Parent)
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("task parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Parent != spans[1].ID {
		t.Errorf("probe parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
	if spans[1].Worker != 2 {
		t.Errorf("task worker = %d, want 2", spans[1].Worker)
	}
	if spans[1].QueueWait != 5*time.Microsecond {
		t.Errorf("task queue wait = %v", spans[1].QueueWait)
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0] != (Attr{"outcome", "compute"}) {
		t.Errorf("probe attrs = %v", spans[2].Attrs)
	}
	for _, sp := range spans {
		if sp.Dur < 0 {
			t.Errorf("span %q still open after End", sp.Name)
		}
	}
}

func TestUntracedContextIsInert(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext on bare ctx = %v", got)
	}
	ctx2, h := Start(ctx, "compile", "x")
	if ctx2 != ctx {
		t.Error("Start without a trace should return ctx unchanged")
	}
	if h.Traced() || h.ID() != -1 {
		t.Errorf("zero handle: Traced=%v ID=%d", h.Traced(), h.ID())
	}
	// All methods must be safe no-ops.
	h.Attr("k", "v")
	h.SetWorker(1)
	h.SetQueueWait(time.Second)
	h.End()
	if h2 := StartNoCtx(ctx, "cache", "p"); h2.Traced() {
		t.Error("StartNoCtx without a trace should be inert")
	}
}

func TestUntracedStartDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, h := Start(ctx, "compile", "x")
		h.End()
		_ = c
		StartNoCtx(ctx, "cache", "p").End()
		_ = FromContext(ctx)
	})
	if allocs != 0 {
		t.Fatalf("untraced trace calls allocate %v allocs/op, want 0", allocs)
	}
}

func TestNewContextNilTrace(t *testing.T) {
	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Error("NewContext(nil) should return ctx unchanged")
	}
}

// TestWriteChromeFormat asserts the structural contract of the Chrome
// trace-event export: a traceEvents array of complete ("X") events with
// microsecond ts/dur, pid/tid, and span attrs flattened into args.
func TestWriteChromeFormat(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "request", "req")
	_, task := Start(ctx, "compile", "adder/full")
	task.SetWorker(1)
	task.SetQueueWait(3 * time.Microsecond)
	task.Attr("config", "full")
	time.Sleep(time.Millisecond)
	task.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(f.TraceEvents))
	}
	kinds := map[string]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts == nil || ev.Dur == nil {
			t.Fatalf("event %q missing ts/dur", ev.Name)
		}
		if *ev.Ts < 0 || *ev.Dur < 0 {
			t.Errorf("event %q negative ts/dur", ev.Name)
		}
		if ev.Pid != 1 {
			t.Errorf("event %q pid = %d", ev.Name, ev.Pid)
		}
		kinds[ev.Cat] = true
	}
	if !kinds["request"] || !kinds["compile"] {
		t.Errorf("event categories = %v, want request+compile", kinds)
	}
	for _, ev := range f.TraceEvents {
		if ev.Cat != "compile" {
			continue
		}
		if ev.Tid != 2 { // worker 1 → tid 2
			t.Errorf("compile tid = %d, want 2", ev.Tid)
		}
		if ev.Args["config"] != "full" {
			t.Errorf("compile args = %v", ev.Args)
		}
		if _, ok := ev.Args["queue_wait_us"]; !ok {
			t.Errorf("compile args missing queue_wait_us: %v", ev.Args)
		}
		if *ev.Dur < 900 { // slept 1ms; dur is µs
			t.Errorf("compile dur = %vµs, want ≈1000", *ev.Dur)
		}
	}
}

func TestRenderTree(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := Start(ctx, "request", "/v1/compile")
	cctx, task := Start(ctx, "rewrite", "adder")
	p := StartNoCtx(cctx, "cache", "rewrite-probe")
	p.Attr("outcome", "memory-hit")
	p.End()
	task.End()
	_, c2 := Start(ctx, "compile", "adder/full")
	c2.End()
	root.End()

	out := tr.RenderString()
	for _, want := range []string{
		"request /v1/compile",
		"├─ rewrite adder",
		"│  └─ cache rewrite-probe",
		"outcome=memory-hit",
		"└─ compile adder/full",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestTotals(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	_, task := Start(ctx, "compile", "a")
	task.SetQueueWait(2 * time.Millisecond)
	time.Sleep(time.Millisecond)
	task.End()
	p := StartNoCtx(ctx, "cache", "probe")
	p.End()

	totals := tr.Totals()
	got := map[string]time.Duration{}
	var order []string
	for _, st := range totals {
		got[st.Name] = st.Dur
		order = append(order, st.Name)
	}
	if got["queue"] != 2*time.Millisecond {
		t.Errorf("queue total = %v", got["queue"])
	}
	if got["compile"] < time.Millisecond {
		t.Errorf("compile total = %v", got["compile"])
	}
	if _, ok := got["rewrite"]; ok {
		t.Error("zero rewrite stage should be omitted")
	}
	if strings.Join(order, ",") != "queue,compile,cache" {
		t.Errorf("stage order = %v", order)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				_, h := Start(ctx, "compile", "x")
				h.Attr("k", "v")
				h.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if n := tr.Len(); n != 800 {
		t.Fatalf("got %d spans, want 800", n)
	}
}
