// Lifetime and failure injection: run a compiled program repeatedly on a
// crossbar with a small endurance budget and observe when the first device
// dies under each endurance configuration. The compiler-side prediction
// (endurance / max writes per run) matches the simulated failure point.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
	"plim/internal/isa"
	"plim/internal/rram"
)

func main() {
	const endurance = 2000

	eng := plim.NewEngine()
	m, err := eng.Benchmark("cavlc")
	if err != nil {
		log.Fatal(err)
	}
	inputs := make([]bool, m.NumPIs())
	for i := range inputs {
		inputs[i] = i%2 == 0
	}

	fmt.Printf("failure injection on %s with device endurance %d\n\n", m.Name, endurance)
	fmt.Printf("%-11s  %9s  %9s  %12s  %12s\n", "config", "max/run", "predicted", "simulated", "agreement")

	for _, cfg := range []plim.Config{plim.Naive, plim.MinWrite, plim.Full, plim.FullCap(10)} {
		rep, err := eng.Run(context.Background(), m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		predicted := rep.Lifetime(endurance)

		// Simulate: one crossbar, repeated executions until a device dies.
		xbar := rram.NewLinear(int(rep.Result.Program.NumCells), rram.WithEndurance(endurance))
		ctrl := isa.NewController(xbar)
		simulated := uint64(0)
		for {
			if err := ctrl.LoadInputs(rep.Result.Program, inputs); err != nil {
				log.Fatal(err)
			}
			if err := ctrl.Run(rep.Result.Program); err != nil {
				break // first device wore out mid-run
			}
			simulated++
			if simulated > predicted+2 {
				break // safety net; should not happen
			}
		}
		agree := "✓"
		if simulated != predicted {
			agree = fmt.Sprintf("off by %d", int64(simulated)-int64(predicted))
		}
		fmt.Printf("%-11s  %9d  %9d  %12d  %12s\n",
			cfg.Name, rep.Writes.Max, predicted, simulated, agree)
	}

	fmt.Println()
	fmt.Println("The maximum write count per execution determines the first failure;")
	fmt.Println("balancing writes multiplies the usable lifetime of the whole array.")
}
