// Package lru provides the least-recently-used bookkeeping shared by the
// repository's memoization caches (core.RewriteCache, suite.Cache). It is a
// map plus an intrusive recency list with an entry budget; eviction is
// explicit and skips entries the caller has marked not-yet-evictable, which
// is how the singleflight caches protect in-flight computations (waiters
// hold the entry pointer, so evicting a completed entry only drops it from
// the index — it never invalidates a reader).
//
// The container performs no locking; callers guard every method with their
// own mutex.
package lru

// Entry is one cached key/value pair threaded on the recency list.
type Entry[K comparable, V any] struct {
	Key   K
	Value V
	// Evictable marks entries EvictExcess may drop. Callers keep it false
	// while a computation is in flight so a budget overrun never evicts an
	// entry other goroutines are about to complete.
	Evictable bool

	prev, next *Entry[K, V]
	linked     bool
}

// Map is a budgeted LRU map. The zero value is not usable; call New.
type Map[K comparable, V any] struct {
	budget  int // ≤ 0 = unbounded
	entries map[K]*Entry[K, V]
	// head is the most recently used entry, tail the least.
	head, tail *Entry[K, V]
}

// New returns an empty map evicting beyond budget entries; budget ≤ 0
// disables eviction.
func New[K comparable, V any](budget int) *Map[K, V] {
	return &Map[K, V]{budget: budget, entries: make(map[K]*Entry[K, V])}
}

// Budget returns the entry budget (≤ 0 = unbounded).
func (m *Map[K, V]) Budget() int { return m.budget }

// Len returns the number of entries currently indexed.
func (m *Map[K, V]) Len() int { return len(m.entries) }

// Get returns the entry for k and marks it most recently used.
func (m *Map[K, V]) Get(k K) (*Entry[K, V], bool) {
	e, ok := m.entries[k]
	if !ok {
		return nil, false
	}
	m.unlink(e)
	m.pushFront(e)
	return e, true
}

// Add inserts a fresh (non-evictable) entry for k as most recently used and
// returns it. The caller must ensure k is not already present.
func (m *Map[K, V]) Add(k K, v V) *Entry[K, V] {
	e := &Entry[K, V]{Key: k, Value: v}
	m.entries[k] = e
	m.pushFront(e)
	return e
}

// Delete drops the entry for k, if any.
func (m *Map[K, V]) Delete(k K) {
	if e, ok := m.entries[k]; ok {
		m.unlink(e)
		delete(m.entries, k)
	}
}

// EvictExcess drops evictable entries, least recently used first, until the
// map is within budget (or only non-evictable entries remain). Each victim
// is reported to onEvict (which may be nil) after it is unindexed.
func (m *Map[K, V]) EvictExcess(onEvict func(*Entry[K, V])) {
	if m.budget <= 0 {
		return
	}
	for e := m.tail; e != nil && len(m.entries) > m.budget; {
		victim := e
		e = e.prev
		if !victim.Evictable {
			continue
		}
		m.unlink(victim)
		delete(m.entries, victim.Key)
		if onEvict != nil {
			onEvict(victim)
		}
	}
}

func (m *Map[K, V]) pushFront(e *Entry[K, V]) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
	e.linked = true
}

func (m *Map[K, V]) unlink(e *Entry[K, V]) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}
