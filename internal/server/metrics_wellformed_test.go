package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"plim"
)

// The /metrics output promises the Prometheus text exposition format. This
// file parses every line of a populated scrape — instead of grepping a few
// known names — so any future family that breaks the format (bad name,
// missing HELP/TYPE, non-monotonic histogram) fails here, not in the
// scraper.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// metricSample is one parsed sample line.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses a text-format scrape, failing the test on any
// malformed line, and returns the samples plus the HELP/TYPE declarations.
func parseExposition(t *testing.T, body string) (samples []metricSample, help, typ map[string]string) {
	t.Helper()
	help, typ = map[string]string{}, map[string]string{}
	seenSample := map[string]bool{} // family → any sample emitted yet
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if _, dup := help[parts[0]]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, parts[0])
			}
			help[parts[0]] = parts[1]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			if _, ok := help[parts[0]]; !ok {
				t.Fatalf("line %d: TYPE %s without a preceding HELP", ln+1, parts[0])
			}
			if _, dup := typ[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			if seenSample[parts[0]] {
				t.Fatalf("line %d: TYPE %s after its samples", ln+1, parts[0])
			}
			typ[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			s := metricSample{name: m[1], labels: map[string]string{}}
			if m[3] != "" {
				for _, pair := range strings.Split(m[3], ",") {
					lm := labelRe.FindStringSubmatch(pair)
					if lm == nil || !labelNameRe.MatchString(lm[1]) {
						t.Fatalf("line %d: malformed label %q in %q", ln+1, pair, line)
					}
					if _, dup := s.labels[lm[1]]; dup {
						t.Fatalf("line %d: duplicate label %s", ln+1, lm[1])
					}
					s.labels[lm[1]] = lm[2]
				}
			}
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil && m[4] != "+Inf" && m[4] != "-Inf" && m[4] != "NaN" {
				t.Fatalf("line %d: bad value %q: %v", ln+1, m[4], err)
			}
			s.value = v
			seenSample[familyOf(s.name)] = true
			samples = append(samples, s)
		}
	}
	return samples, help, typ
}

// familyOf strips the histogram/summary sample suffixes back to the
// declared family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

func TestMetricsExpositionWellFormed(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{}, plim.WithPersistentCache(t.TempDir()))

	// Populate: a compile (latency histograms, sched task kinds, cache
	// probes across both tiers) and an execute (vector counters).
	if resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full"}`, nil); resp.StatusCode != 200 {
		t.Fatalf("compile: %d %s", resp.StatusCode, b)
	}
	if resp, b := postJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","random":70}`, nil); resp.StatusCode != 200 {
		t.Fatalf("execute: %d %s", resp.StatusCode, b)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, help, typ := parseExposition(t, string(body))
	if len(samples) == 0 {
		t.Fatal("no samples scraped")
	}

	// Every sample's family must be declared with HELP and TYPE; histogram
	// suffixes belong to histogram-typed families only.
	for _, s := range samples {
		fam := familyOf(s.name)
		if _, ok := typ[fam]; !ok {
			t.Fatalf("sample %s has no TYPE declaration (family %s)", s.name, fam)
		}
		if _, ok := help[fam]; !ok {
			t.Fatalf("sample %s has no HELP declaration (family %s)", s.name, fam)
		}
		if s.name != fam && typ[fam] != "histogram" {
			t.Fatalf("sample %s uses a histogram suffix on %s family %s", s.name, typ[fam], fam)
		}
	}

	// The families this PR promises must be present.
	for _, fam := range []string{
		"plimserve_build_info",
		"plimserve_cache_probe_total",
		"plimserve_requests_total",
		"plimserve_request_seconds",
	} {
		if _, ok := typ[fam]; !ok {
			t.Fatalf("family %s missing from scrape", fam)
		}
	}
	for _, s := range samples {
		if s.name == "plimserve_build_info" {
			if s.value != 1 || s.labels["go_version"] == "" {
				t.Fatalf("build_info: %+v", s)
			}
		}
	}

	checkHistograms(t, samples, typ)
}

// checkHistograms verifies, per histogram series (family × non-le labels):
// buckets are cumulative and non-decreasing in le order, the +Inf bucket
// exists and equals _count, and _sum/_count are present.
func checkHistograms(t *testing.T, samples []metricSample, typ map[string]string) {
	t.Helper()
	type bucket struct {
		le  float64
		val float64
	}
	series := func(s metricSample) string {
		var keys []string
		for k := range s.labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		id := familyOf(s.name)
		for _, k := range keys {
			id += fmt.Sprintf("|%s=%s", k, s.labels[k])
		}
		return id
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range samples {
		fam := familyOf(s.name)
		if typ[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("bucket without le label: %+v", s)
			}
			ub := parseLe(t, le)
			buckets[series(s)] = append(buckets[series(s)], bucket{ub, s.value})
		case strings.HasSuffix(s.name, "_count"):
			counts[series(s)] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sums[series(s)] = true
		default:
			t.Fatalf("histogram family %s emits bare sample %s", fam, s.name)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series scraped")
	}
	for id, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Fatalf("series %s has no +Inf bucket", id)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				t.Fatalf("series %s: bucket le=%v count %v < previous %v (not cumulative)",
					id, bs[i].le, bs[i].val, bs[i-1].val)
			}
		}
		cnt, ok := counts[id]
		if !ok || !sums[id] {
			t.Fatalf("series %s misses _count/_sum", id)
		}
		if last.val != cnt {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", id, last.val, cnt)
		}
	}
}

func parseLe(t *testing.T, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return math.Inf(1)
	}
	ub, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le bound %q: %v", le, err)
	}
	return ub
}
