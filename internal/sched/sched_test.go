package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plim/internal/progress"
)

// TestSingleWorkerDepthFirstOrder pins the determinism contract: one worker
// executes a graph in depth-first creation order, because newly-ready
// dependents are pushed in reverse creation order onto a LIFO deque.
func TestSingleWorkerDepthFirstOrder(t *testing.T) {
	p := New(1)
	defer p.Stop()
	g := p.NewGraph(context.Background(), GraphOptions{})
	var order []string
	rec := func(name string) func(context.Context) {
		return func(context.Context) { order = append(order, name) }
	}
	a := g.Task(KindGenerate, "a", rec("a"))
	b1 := g.Task(KindRewrite, "b1", rec("b1"), a)
	b2 := g.Task(KindRewrite, "b2", rec("b2"), a)
	g.Task(KindCompile, "c1", rec("c1"), b1)
	g.Task(KindCompile, "c2", rec("c2"), b2)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b1", "c1", "b2", "c2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want depth-first %v", order, want)
	}
}

// TestSingleWorkerGraphFIFO: deadline-free graphs drain from the injector
// in submission order on one worker.
func TestSingleWorkerGraphFIFO(t *testing.T) {
	p := New(1)
	defer p.Stop()
	var mu sync.Mutex
	var order []string
	graphs := make([]*Graph, 3)
	for i := range graphs {
		g := p.NewGraph(context.Background(), GraphOptions{})
		name := fmt.Sprintf("g%d", i)
		root := g.Task(KindGenerate, name, func(context.Context) {
			mu.Lock()
			order = append(order, name+"/root")
			mu.Unlock()
		})
		g.Task(KindJoin, name, func(context.Context) {
			mu.Lock()
			order = append(order, name+"/join")
			mu.Unlock()
		}, root)
		graphs[i] = g
	}
	for _, g := range graphs {
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"g0/root", "g0/join", "g1/root", "g1/join", "g2/root", "g2/join"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestDeadlinePriority: a near-deadline graph submitted while a long
// deadline-free graph floods the pool must be picked up ahead of the
// remaining flood — the fairness property that keeps a small compile
// request from starving behind a long suite.
func TestDeadlinePriority(t *testing.T) {
	p := New(2)
	defer p.Stop()
	long := p.NewGraph(context.Background(), GraphOptions{})
	var longDone atomic.Int64
	for i := 0; i < 40; i++ {
		long.Task(KindCompile, "slow", func(context.Context) {
			time.Sleep(2 * time.Millisecond)
			longDone.Add(1)
		})
	}
	// Give the flood a head start so workers are mid-flight.
	time.Sleep(5 * time.Millisecond)
	urgent := p.NewGraph(context.Background(), GraphOptions{Deadline: time.Now().Add(50 * time.Millisecond)})
	var doneAfter int64
	urgent.Task(KindCompile, "urgent", func(context.Context) {
		doneAfter = longDone.Load()
	})
	if err := urgent.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := long.Wait(); err != nil {
		t.Fatal(err)
	}
	if doneAfter >= 39 {
		t.Fatalf("urgent task ran after %d/40 long tasks — starved behind the deadline-free flood", doneAfter)
	}
}

// TestCancellationSkipsUnstartedDependents: cancelling a graph mid-root
// must prevent unstarted dependents from ever running, while Wait still
// drains and returns the context error itself.
func TestCancellationSkipsUnstartedDependents(t *testing.T) {
	p := New(2)
	defer p.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	g := p.NewGraph(ctx, GraphOptions{})
	started := make(chan struct{})
	var ran atomic.Bool
	root := g.Task(KindRewrite, "root", func(c context.Context) {
		close(started)
		<-c.Done()
	})
	g.Task(KindCompile, "dep", func(context.Context) { ran.Store(true) }, root)
	g.Task(KindJoin, "join", func(context.Context) { ran.Store(true) }, root)
	<-started
	cancel()
	if err := g.Wait(); err != context.Canceled {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("dependent of a cancelled root ran")
	}
}

// TestPreCancelledGraphDrains: a graph built on an already-cancelled
// context never runs any task body.
func TestPreCancelledGraphDrains(t *testing.T) {
	p := New(2)
	defer p.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := p.NewGraph(ctx, GraphOptions{})
	var ran atomic.Bool
	r := g.Task(KindGenerate, "r", func(context.Context) { ran.Store(true) })
	g.Task(KindJoin, "j", func(context.Context) { ran.Store(true) }, r)
	if err := g.Wait(); err != context.Canceled {
		t.Fatalf("Wait returned %v", err)
	}
	if ran.Load() {
		t.Fatal("task body ran on a pre-cancelled graph")
	}
}

// TestStealsOccur: a wide fan-out landing on one worker's deque must be
// stolen by its peers.
func TestStealsOccur(t *testing.T) {
	p := New(4)
	defer p.Stop()
	g := p.NewGraph(context.Background(), GraphOptions{})
	root := g.Task(KindGenerate, "root", func(context.Context) {})
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		g.Task(KindCompile, "fan", func(context.Context) {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}, root)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 64 {
		t.Fatalf("ran %d/64 fan-out tasks", n.Load())
	}
	st := p.Stats()
	var steals uint64
	for _, s := range st.Steals {
		steals += s
	}
	if steals == 0 {
		t.Fatal("no steals recorded for a 64-wide fan-out on 4 workers")
	}
}

// TestStats: runnable drains to zero, and latency histograms account every
// executed task under its kind.
func TestStats(t *testing.T) {
	p := New(2)
	defer p.Stop()
	g := p.NewGraph(context.Background(), GraphOptions{})
	root := g.Task(KindGenerate, "g", func(context.Context) {})
	for i := 0; i < 5; i++ {
		g.Task(KindCompile, "c", func(context.Context) {}, root)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Runnable != 0 {
		t.Fatalf("runnable = %d after drain", st.Runnable)
	}
	if st.Workers != 2 || len(st.Steals) != 2 {
		t.Fatalf("workers = %d, steals len %d", st.Workers, len(st.Steals))
	}
	if st.Latency[KindGenerate].Count != 1 {
		t.Fatalf("generate count = %d, want 1", st.Latency[KindGenerate].Count)
	}
	if st.Latency[KindCompile].Count != 5 {
		t.Fatalf("compile count = %d, want 5", st.Latency[KindCompile].Count)
	}
	var b uint64
	for _, c := range st.Latency[KindCompile].Buckets {
		b += c
	}
	if b != 5 {
		t.Fatalf("compile bucket sum = %d, want 5", b)
	}
}

// TestTaskEvents: every executed task emits a TaskStart/TaskDone pair to
// the graph observer; skipped tasks emit nothing.
func TestTaskEvents(t *testing.T) {
	p := New(1)
	defer p.Stop()
	var mu sync.Mutex
	var evs []string
	obs := func(ev progress.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case progress.TaskStart:
			evs = append(evs, "start:"+e.Kind+":"+e.Label)
		case progress.TaskDone:
			if e.Elapsed < 0 {
				t.Errorf("negative elapsed on %s", e.Label)
			}
			evs = append(evs, "done:"+e.Kind+":"+e.Label)
		}
	}
	g := p.NewGraph(context.Background(), GraphOptions{Progress: obs})
	r := g.Task(KindRewrite, "alg1", func(context.Context) {})
	g.Task(KindCompile, "full", func(context.Context) {}, r)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:rewrite:alg1", "done:rewrite:alg1", "start:compile:full", "done:compile:full"}
	if fmt.Sprint(evs) != fmt.Sprint(want) {
		t.Fatalf("events %v, want %v", evs, want)
	}
}

// TestDependencyOnCompletedTask: adding a task whose dependency already
// completed must schedule it immediately rather than wait forever.
func TestDependencyOnCompletedTask(t *testing.T) {
	p := New(2)
	defer p.Stop()
	g := p.NewGraph(context.Background(), GraphOptions{})
	done := make(chan struct{})
	root := g.Task(KindGenerate, "root", func(context.Context) { close(done) })
	<-done
	time.Sleep(2 * time.Millisecond) // let the completion bookkeeping land
	var ran atomic.Bool
	g.Task(KindJoin, "late", func(context.Context) { ran.Store(true) }, root, nil)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("late task never ran")
	}
}

// TestStealStorm hammers one pool from 16 goroutines submitting mixed
// diamond DAGs — run under -race in CI. Every task must execute exactly
// once.
func TestStealStorm(t *testing.T) {
	p := New(8)
	defer p.Stop()
	const goroutines = 16
	const rounds = 30
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var opts GraphOptions
				if id%3 == 0 {
					opts.Deadline = time.Now().Add(time.Duration(50+id) * time.Millisecond)
				}
				g := p.NewGraph(context.Background(), opts)
				count := func(context.Context) { total.Add(1) }
				root := g.Task(KindGenerate, "root", count)
				width := 1 + (id+r)%5
				deps := make([]*Task, width)
				for w := 0; w < width; w++ {
					mid := g.Task(KindRewrite, "mid", count, root)
					deps[w] = g.Task(KindCompile, "leaf", count, mid)
				}
				g.Task(KindJoin, "join", count, deps...)
				if err := g.Wait(); err != nil {
					t.Errorf("goroutine %d round %d: %v", id, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	want := int64(0)
	for i := 0; i < goroutines; i++ {
		for r := 0; r < rounds; r++ {
			want += int64(2 + 2*(1+(i+r)%5))
		}
	}
	if total.Load() != want {
		t.Fatalf("ran %d tasks, want %d", total.Load(), want)
	}
}

// TestInjectorAging pins the aged priority key: a deadline-free task that
// has waited past AgingHorizon is due now, outranking every task whose
// (effective) deadline still lies ahead — including a near-deadline
// arrival, and a fortiori a far-deadline one. The heap is exercised
// directly with keys computed the way injectLocked fixes them at enqueue
// time.
func TestInjectorAging(t *testing.T) {
	p := New(1)
	defer p.Stop()
	now := time.Now().UnixNano()
	free := p.NewGraph(context.Background(), GraphOptions{})
	far := p.NewGraph(context.Background(), GraphOptions{Deadline: time.Now().Add(AgingHorizon + time.Hour)})
	near := p.NewGraph(context.Background(), GraphOptions{Deadline: time.Now().Add(time.Millisecond)})

	// One deadline-free task enqueued AgingHorizon+1min ago, then a
	// far-deadline and a near-deadline task enqueued now — submission order
	// aged, fresh, urgent.
	mk := func(g *Graph, name string, seq uint64, enqNs int64) *Task {
		tk := &Task{g: g, kind: KindCompile, label: name, seq: seq, enqNs: enqNs}
		tk.effDeadline = g.deadline
		if aged := enqNs + int64(AgingHorizon); aged < tk.effDeadline {
			tk.effDeadline = aged
		}
		return tk
	}
	aged := mk(free, "aged", 1, now-int64(AgingHorizon)-int64(time.Minute))
	fresh := mk(far, "far-deadline", 2, now)
	urgent := mk(near, "near-deadline", 3, now)

	var q injector
	q.push(aged)
	q.push(fresh)
	q.push(urgent)
	var order []string
	for q.peek() != nil {
		order = append(order, q.pop().label)
	}
	want := []string{"aged", "near-deadline", "far-deadline"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("injector pop order %v, want %v", order, want)
	}
}

// TestInjectLockedSetsAgedKey: injectLocked must fix the aged key at
// enqueue time — graph deadline when it is nearer than the horizon, the
// aged bound otherwise (deadline-free graphs in particular).
func TestInjectLockedSetsAgedKey(t *testing.T) {
	p := New(1)
	defer p.Stop()
	free := p.NewGraph(context.Background(), GraphOptions{})
	near := p.NewGraph(context.Background(), GraphOptions{Deadline: time.Now().Add(time.Second)})

	freeTask := &Task{g: free, kind: KindJoin}
	nearTask := &Task{g: near, kind: KindJoin}
	p.mu.Lock()
	p.injectLocked(freeTask)
	p.injectLocked(nearTask)
	// Drain so the pool's worker never sees these synthetic tasks.
	for p.inj.peek() != nil {
		p.popInjectorLocked()
	}
	p.mu.Unlock()

	if want := freeTask.enqNs + int64(AgingHorizon); freeTask.effDeadline != want {
		t.Fatalf("deadline-free task effDeadline = %d, want enq+horizon %d", freeTask.effDeadline, want)
	}
	if nearTask.effDeadline != near.deadline {
		t.Fatalf("near-deadline task effDeadline = %d, want graph deadline %d", nearTask.effDeadline, near.deadline)
	}
}

// TestStatsMaxInjectorWait: the starvation metric reports the worst
// enqueue-to-pop wait and the per-kind runnable split drains to empty.
func TestStatsMaxInjectorWait(t *testing.T) {
	p := New(1)
	defer p.Stop()
	g := p.NewGraph(context.Background(), GraphOptions{})
	block := make(chan struct{})
	g.Task(KindGenerate, "blocker", func(context.Context) { <-block })
	// While the worker is blocked, queued tasks accumulate injector wait
	// and show up in the per-kind runnable split.
	g.Task(KindCompile, "queued", func(context.Context) {})
	deadlineByKind := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadlineByKind) {
		if p.Stats().RunnableByKind[KindCompile] == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().RunnableByKind[KindCompile]; got != 1 {
		t.Fatalf("RunnableByKind[compile] = %d while queued, want 1", got)
	}
	time.Sleep(5 * time.Millisecond) // let the queued task accumulate wait
	close(block)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if len(st.RunnableByKind) != 0 {
		t.Fatalf("RunnableByKind = %v after drain, want empty", st.RunnableByKind)
	}
	if st.MaxInjectorWaitSeconds < 0.005 {
		t.Fatalf("MaxInjectorWaitSeconds = %g, want ≥ 5ms (the queued task waited behind the blocker)", st.MaxInjectorWaitSeconds)
	}
}
