package exec

import (
	"context"
	"errors"
	"testing"

	"plim/internal/core"
	"plim/internal/isa"
	"plim/internal/mig"
	"plim/internal/rram"
	"plim/internal/suite"
)

// compileAll compiles a benchmark under every Table I policy at a small
// effort and returns the source graph plus one program per configuration.
func compileAll(t *testing.T, name string, shrink int) (*mig.MIG, map[string]*isa.Program) {
	t.Helper()
	m, err := suite.BuildScaled(name, shrink)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	progs := make(map[string]*isa.Program)
	for _, cfg := range core.TableIConfigs() {
		rep, err := core.Run(context.Background(), m, cfg, 2, nil)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, cfg.Name, err)
		}
		progs[cfg.Name] = rep.Result.Program
	}
	return m, progs
}

// inputBatch picks the equivalence stimulus: the whole truth table for
// small input counts, packed random vectors otherwise.
func inputBatch(t *testing.T, pis int) *Batch {
	t.Helper()
	if pis <= 10 {
		b, err := Exhaustive(pis)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	return Random(pis, 192, 0x5eed)
}

// TestEquivalenceAllPolicies is the property harness of the acceptance
// criteria: for every Table I compile policy, the 64-wide executor, the
// scalar interpreter and word-parallel MIG simulation agree on every output
// bit, and the executor's aggregate wear equals the sum of the scalar
// interpreter's per-run crossbar counters.
func TestEquivalenceAllPolicies(t *testing.T) {
	cases := []struct {
		name   string
		shrink int
	}{
		{"ctrl", 1},      // 7 PIs: exhaustive
		{"dec", 1},       // 8 PIs: exhaustive, wide fan-out
		{"int2float", 1}, // 11 PIs: random vectors
		{"sin", 8},       // shrunk datapath, random vectors
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, progs := compileAll(t, tc.name, tc.shrink)
			b := inputBatch(t, m.NumPIs())
			for cfgName, p := range progs {
				pl, err := Compile(p)
				if err != nil {
					t.Fatalf("%s: compile plan: %v", cfgName, err)
				}
				res, err := pl.RunContext(context.Background(), b, Options{})
				if err != nil {
					t.Fatalf("%s: run: %v", cfgName, err)
				}

				// exec64 == mig.Eval on the source graph, word for word.
				inWords := make([]uint64, b.Lines())
				for c := 0; c < b.Chunks(); c++ {
					for i := range inWords {
						inWords[i] = b.Word(i, c)
					}
					outWords := m.Eval(inWords)
					mask := b.ActiveMask(c)
					for o, w := range outWords {
						if got := res.Outputs.Word(o, c); got != w&mask {
							t.Fatalf("%s: chunk %d PO %d: exec %016x, mig.Eval %016x", cfgName, c, o, got, w&mask)
						}
					}
				}

				// exec64 == scalar isa.Execute per vector, and aggregate wear
				// equals the sum of per-run crossbar counters.
				writes := make([]uint64, p.NumCells)
				switches := make([]uint64, p.NumCells)
				for v := 0; v < b.Len(); v++ {
					out, xbar, err := isa.Execute(p, b.Vector(v))
					if err != nil {
						t.Fatalf("%s: scalar vector %d: %v", cfgName, v, err)
					}
					for o, bit := range out {
						if res.Outputs.Get(v, o) != bit {
							t.Fatalf("%s: vector %d PO %d: exec %v, scalar %v", cfgName, v, o, res.Outputs.Get(v, o), bit)
						}
					}
					for z, w := range xbar.WriteCounts(int(p.NumCells)) {
						writes[z] += w
					}
					for z, sw := range xbar.SwitchCounts(int(p.NumCells)) {
						switches[z] += sw
					}
				}
				for z := range writes {
					if res.Writes[z] != writes[z] {
						t.Fatalf("%s: cell %d: exec writes %d, scalar sum %d", cfgName, z, res.Writes[z], writes[z])
					}
					if res.Switches[z] != switches[z] {
						t.Fatalf("%s: cell %d: exec switches %d, scalar sum %d", cfgName, z, res.Switches[z], switches[z])
					}
				}
				if res.Vectors != b.Len() {
					t.Fatalf("%s: result reports %d vectors, batch has %d", cfgName, res.Vectors, b.Len())
				}
			}
		})
	}
}

// scalarFaultIndex steps the scalar controller to the failing instruction.
func scalarFaultIndex(t *testing.T, p *isa.Program, inputs []bool, endurance uint64) int {
	t.Helper()
	x := rram.NewLinear(int(p.NumCells), rram.WithEndurance(endurance))
	c := isa.NewController(x)
	if err := c.LoadInputs(p, inputs); err != nil {
		t.Fatal(err)
	}
	for n, ins := range p.Insts {
		if err := c.Step(ins); err != nil {
			if !errors.Is(err, rram.ErrWornOut) {
				t.Fatalf("inst %d: unexpected error %v", n, err)
			}
			return n
		}
	}
	return -1
}

func TestEnduranceFaultMatchesScalar(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	p := progs["full"]
	static := p.StaticWriteCounts()
	var maxWrites uint64
	for _, w := range static {
		if w > maxWrites {
			maxWrites = w
		}
	}
	if maxWrites < 2 {
		t.Fatalf("degenerate program: max static writes %d", maxWrites)
	}
	b, err := Exhaustive(len(p.PICells))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, endurance := range []uint64{1, maxWrites - 1, maxWrites, maxWrites + 1} {
		res, err := pl.RunContext(context.Background(), b, Options{Endurance: endurance})
		scalarAt := scalarFaultIndex(t, p, b.Vector(0), endurance)
		if scalarAt < 0 {
			if err != nil {
				t.Fatalf("endurance %d: exec faulted (%v), scalar did not", endurance, err)
			}
			continue
		}
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("endurance %d: exec error %v, want FaultError", endurance, err)
		}
		if !errors.Is(err, rram.ErrWornOut) {
			t.Fatalf("endurance %d: fault does not wrap rram.ErrWornOut", endurance)
		}
		if fe.Inst != scalarAt {
			t.Fatalf("endurance %d: exec faults at inst %d, scalar at %d", endurance, fe.Inst, scalarAt)
		}
		if res == nil || res.Outputs != nil {
			t.Fatalf("endurance %d: faulted run must carry wear but no outputs", endurance)
		}
		// Partial wear equals the scalar prefix, summed over all lanes.
		x := rram.NewLinear(int(p.NumCells), rram.WithEndurance(endurance))
		c := isa.NewController(x)
		if err := c.LoadInputs(p, b.Vector(0)); err != nil {
			t.Fatal(err)
		}
		for _, ins := range p.Insts[:scalarAt] {
			if err := c.Step(ins); err != nil {
				t.Fatal(err)
			}
		}
		n := uint64(b.Len())
		for z, w := range x.WriteCounts(int(p.NumCells)) {
			if res.Writes[z] != w*n {
				t.Fatalf("endurance %d: cell %d writes %d, want %d", endurance, z, res.Writes[z], w*n)
			}
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["naive"])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := Exhaustive(pl.NumInputs())
	if _, err := pl.RunContext(ctx, b, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestOnChunkProgress(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["naive"])
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Exhaustive(pl.NumInputs()) // 128 vectors = 2 chunks
	var calls []int
	_, err = pl.RunContext(context.Background(), b, Options{
		OnChunk: func(done, total int) {
			if total != b.Chunks() {
				t.Fatalf("total = %d, want %d", total, b.Chunks())
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != b.Chunks() || calls[0] != 1 || calls[len(calls)-1] != b.Chunks() {
		t.Fatalf("chunk callbacks: %v", calls)
	}
}

func TestInputWidthMismatch(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["naive"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(NewBatch(pl.NumInputs()+1, 4)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	pl, err := Compile(progs["naive"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(NewBatch(pl.NumInputs(), 0))
	if err != nil {
		t.Fatal(err)
	}
	for z, w := range res.Writes {
		if w != 0 || res.Switches[z] != 0 {
			t.Fatal("empty batch aged devices")
		}
	}
	// Even a would-fault endurance budget has no lane to fault in.
	if _, err := pl.RunContext(context.Background(), NewBatch(pl.NumInputs(), 0), Options{Endurance: 1}); err != nil {
		t.Fatalf("empty batch faulted: %v", err)
	}
}

func TestProgramFingerprintDistinguishesPrograms(t *testing.T) {
	_, progs := compileAll(t, "ctrl", 1)
	fps := make(map[uint64]string)
	for name, p := range progs {
		fp := p.Fingerprint()
		if prev, ok := fps[fp]; ok {
			// Distinct policies may legitimately produce identical programs,
			// but not across all five; flag exact collisions only when the
			// programs differ.
			if len(p.Insts) != len(progs[prev].Insts) {
				t.Fatalf("fingerprint collision between %s and %s", name, prev)
			}
			continue
		}
		fps[fp] = name
	}
	if len(fps) < 2 {
		t.Fatal("all five policies share one fingerprint")
	}
	p := progs["full"]
	fp := p.Fingerprint()
	clone := *p
	clone.Name = "renamed"
	if clone.Fingerprint() != fp {
		t.Fatal("fingerprint must ignore the name")
	}
	mutated := *p
	mutated.Insts = append([]isa.Instruction(nil), p.Insts...)
	mutated.Insts[0].Z++
	if mutated.Fingerprint() == fp {
		t.Fatal("mutated program shares fingerprint")
	}
}

func BenchmarkExec64(b *testing.B) {
	m, err := suite.BuildScaled("sin", 8)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Run(context.Background(), m, core.Naive, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := Compile(rep.Result.Program)
	if err != nil {
		b.Fatal(err)
	}
	batch := Random(pl.NumInputs(), 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Run(batch); err != nil {
			b.Fatal(err)
		}
	}
}
