package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"plim/internal/mig"
)

func randomMIG(name string, pis, nodes, pos int, seed int64) *mig.MIG {
	m := mig.New(name)
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]mig.Signal, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.AddPI(""))
	}
	for len(sigs) < pis+nodes {
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < pos; i++ {
		s := sigs[len(sigs)-1-rng.Intn(nodes/2)]
		if rng.Intn(4) == 0 {
			s = s.Not()
		}
		m.AddPO(s, "")
	}
	return m.Cleanup()
}

func TestNamedConfigs(t *testing.T) {
	cfgs := TableIConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("Table I has 5 configurations, got %d", len(cfgs))
	}
	names := []string{"naive", "compiler21", "minwrite", "rewriting", "full"}
	for i, c := range cfgs {
		if c.Name != names[i] {
			t.Fatalf("config %d = %q, want %q", i, c.Name, names[i])
		}
	}
	cap := FullCap(20)
	if cap.MaxWrites != 20 || !strings.Contains(cap.Name, "20") {
		t.Fatalf("FullCap broken: %+v", cap)
	}
	if Full.MaxWrites != 0 {
		t.Fatalf("FullCap must not mutate Full")
	}
}

func TestRewriteKindString(t *testing.T) {
	if RewriteNone.String() != "none" || RewriteAlgorithm1.String() != "algorithm1" ||
		RewriteAlgorithm2.String() != "algorithm2" || RewriteKind(9).String() != "?" {
		t.Fatal("RewriteKind.String broken")
	}
}

func TestRunPreservesFunctionAcrossConfigs(t *testing.T) {
	m := randomMIG("f", 8, 120, 8, 11)
	cfgs := append(TableIConfigs(), FullCap(10), FullCap(50))
	for _, cfg := range cfgs {
		rep, err := Run(context.Background(), m, cfg, DefaultEffort, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if rep.Result == nil || rep.Result.Program == nil {
			t.Fatalf("%s: missing result", cfg.Name)
		}
		if rep.Writes.N != rep.NumRRAMs() {
			t.Fatalf("%s: summary over %d devices, #R=%d", cfg.Name, rep.Writes.N, rep.NumRRAMs())
		}
		if rep.NumInstructions() != rep.Result.NumInstructions {
			t.Fatalf("%s: #I accessor mismatch", cfg.Name)
		}
	}
}

func TestRunAllOrdersReports(t *testing.T) {
	m := randomMIG("f", 6, 60, 4, 5)
	reps, err := RunAll(context.Background(), m, TableIConfigs(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("got %d reports", len(reps))
	}
	for i, cfg := range TableIConfigs() {
		if reps[i].Config.Name != cfg.Name {
			t.Fatalf("report %d is %q", i, reps[i].Config.Name)
		}
	}
}

// TestPaperTrendOnRandomControl checks the headline ordering of Table I on
// deterministic random control logic: the full scheme must beat the naive
// scheme on write-count deviation, and rewriting must cut instructions.
func TestPaperTrendOnRandomControl(t *testing.T) {
	var naiveSD, fullSD, naiveI, fullI float64
	for seed := int64(1); seed <= 5; seed++ {
		m := randomMIG("ctrl-like", 10, 300, 12, seed)
		naive, err := Run(context.Background(), m, Naive, DefaultEffort, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(context.Background(), m, Full, DefaultEffort, nil)
		if err != nil {
			t.Fatal(err)
		}
		naiveSD += naive.Writes.StdDev
		fullSD += full.Writes.StdDev
		naiveI += float64(naive.NumInstructions())
		fullI += float64(full.NumInstructions())
	}
	if fullSD >= naiveSD {
		t.Fatalf("full scheme must reduce aggregate STDEV: naive %.2f vs full %.2f", naiveSD, fullSD)
	}
	if fullI >= naiveI {
		t.Fatalf("rewriting must reduce aggregate #I: naive %.0f vs full %.0f", naiveI, fullI)
	}
}

func TestCapImprovesBalanceAtCost(t *testing.T) {
	m := randomMIG("f", 10, 300, 10, 9)
	uncapped, err := Run(context.Background(), m, Full, DefaultEffort, nil)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(context.Background(), m, FullCap(10), DefaultEffort, nil)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Writes.Max > 10 {
		t.Fatalf("cap violated: max = %d", capped.Writes.Max)
	}
	if capped.NumRRAMs() < uncapped.NumRRAMs() {
		t.Fatalf("capping cannot reduce #R: %d vs %d", capped.NumRRAMs(), uncapped.NumRRAMs())
	}
	if capped.Writes.StdDev > uncapped.Writes.StdDev {
		t.Fatalf("cap 10 should tighten the distribution: %.2f vs %.2f",
			capped.Writes.StdDev, uncapped.Writes.StdDev)
	}
}

func TestLifetimeAccessor(t *testing.T) {
	m := randomMIG("f", 6, 40, 4, 2)
	rep, err := Run(context.Background(), m, Full, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lt := rep.Lifetime(1000)
	if lt == 0 {
		t.Fatalf("lifetime must be positive for small programs")
	}
	if lt != 1000/rep.Writes.Max {
		t.Fatalf("lifetime = %d, want endurance/max = %d", lt, 1000/rep.Writes.Max)
	}
}
