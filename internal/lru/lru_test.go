package lru

import "testing"

func keys[K comparable, V any](m *Map[K, V]) []K {
	var out []K
	for e := m.head; e != nil; e = e.next {
		out = append(out, e.Key)
	}
	return out
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	m := New[int, string](2)
	m.Add(1, "a").Evictable = true
	m.Add(2, "b").Evictable = true
	m.Add(3, "c").Evictable = true
	var evicted []int
	m.EvictExcess(func(e *Entry[int, string]) { evicted = append(evicted, e.Key) })
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("evicted key still indexed")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	m := New[int, string](2)
	m.Add(1, "a").Evictable = true
	m.Add(2, "b").Evictable = true
	if _, ok := m.Get(1); !ok {
		t.Fatal("key 1 missing")
	}
	m.Add(3, "c").Evictable = true
	m.EvictExcess(nil)
	if _, ok := m.Get(2); ok {
		t.Fatal("key 2 should have been the LRU victim")
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("refreshed key 1 must survive")
	}
}

func TestEvictionSkipsNonEvictable(t *testing.T) {
	m := New[int, string](1)
	m.Add(1, "a") // Evictable defaults to false: pinned while in flight
	m.Add(2, "b").Evictable = true
	m.Add(3, "c").Evictable = true
	m.EvictExcess(nil)
	// The pinned entry is skipped; both evictable entries go to reach the
	// budget, leaving only the pinned one.
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("in-flight entry evicted")
	}

	// A map full of pinned entries may overshoot its budget; eviction
	// must leave them all alone.
	p := New[int, string](1)
	p.Add(1, "a")
	p.Add(2, "b")
	p.EvictExcess(nil)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (pinned entries cannot be evicted)", p.Len())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	m := New[int, int](0)
	for i := 0; i < 100; i++ {
		m.Add(i, i).Evictable = true
	}
	m.EvictExcess(nil)
	if m.Len() != 100 {
		t.Fatalf("unbounded map evicted down to %d", m.Len())
	}
}

func TestDeleteUnlinks(t *testing.T) {
	m := New[int, int](3)
	m.Add(1, 1)
	m.Add(2, 2)
	m.Add(3, 3)
	m.Delete(2)
	got := keys(m)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("recency order after delete = %v, want [3 1]", got)
	}
	m.Delete(2) // deleting a missing key is a no-op
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}
