//go:build race

package server

// Under the race detector every uninstrumented gap — request decoding,
// context plumbing, mutex handoffs between spans — dilates several-fold,
// so the coverage bar drops. The real 95% acceptance bar is enforced by
// the non-race build (coverage_norace_test.go), which is what CI's tier-1
// run executes.
const minSpanCoverage = 0.75
