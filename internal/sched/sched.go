// Package sched is the engine-wide work-stealing DAG scheduler. Callers
// build dependency graphs of typed tasks (benchmark generation, rewriting,
// compilation, execution chunks, aggregation joins) and a fixed pool of
// workers executes them: every worker owns a LIFO deque of runnable tasks,
// external submissions land in a global injector queue ordered by deadline,
// and a worker that runs dry steals half of a random victim's deque. The
// result is one process-wide schedule: a suite's compile fan-out overlaps
// the next benchmark's rewrite, and server requests interleave at task
// granularity instead of queueing whole.
//
// Determinism contract: with a single worker, tasks run in depth-first
// creation order — a completed task's newly-ready dependents are pushed
// onto the worker's deque in reverse creation order, so the LIFO pop walks
// them oldest-first before returning to the injector. This reproduces the
// sequential execution order of the pre-scheduler staged runner exactly,
// which is what keeps single-worker progress-event streams stable across
// runs (and is pinned by engine tests).
//
// Priority: every graph carries an optional deadline (servers map a
// request's timeout to it). The injector is a min-heap on (effective
// deadline, submission order), and a worker prefers the injector's head
// over its own deque when the head's graph deadline is strictly earlier
// than that of its local work — so near-deadline flights are picked up
// first and a long suite cannot starve a small compile request.
//
// Fairness: a task's effective deadline is min(graph deadline, enqueue
// time + AgingHorizon), fixed when it enters the injector. Deadline-free
// tasks therefore age into priority instead of waiting behind an unbounded
// stream of deadline flights: after the horizon they outrank any newly
// arriving deadline further out, which bounds injector starvation. Among
// deadline-free tasks the aged ordering is still FIFO (enqueue times are
// monotone under the pool lock), so the single-worker determinism contract
// is unchanged. Stats reports the worst observed injector wait.
//
// Cancellation: a graph's context cancels the whole graph. Workers never
// start a task whose graph is cancelled — the task is skipped, still counts
// toward graph completion (so Wait drains), and its dependents cascade the
// same way. Tasks that already started run to completion; task bodies see
// the graph context and honour it at their own cancellation points.
package sched

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plim/internal/progress"
	"plim/internal/trace"
)

// Kind classifies a task for latency accounting and progress events.
type Kind uint8

// Task kinds.
const (
	KindGenerate  Kind = iota // benchmark MIG generation
	KindRewrite               // a shared rewrite stage
	KindCompile               // one configuration's compile/alloc stage
	KindExecChunk             // a range of 64-lane execution chunks
	KindJoin                  // aggregation / bookkeeping barrier
	numKinds
)

// String names the kind (used in metrics labels and progress events).
func (k Kind) String() string {
	switch k {
	case KindGenerate:
		return "generate"
	case KindRewrite:
		return "rewrite"
	case KindCompile:
		return "compile"
	case KindExecChunk:
		return "exec_chunk"
	case KindJoin:
		return "join"
	}
	return "?"
}

// Kinds lists every task kind in label order (for metrics rendering).
func Kinds() []Kind {
	return []Kind{KindGenerate, KindRewrite, KindCompile, KindExecChunk, KindJoin}
}

// noDeadline orders deadline-free graphs after every real deadline.
const noDeadline = int64(math.MaxInt64)

// AgingHorizon bounds injector starvation: a task queued that long is
// treated as if its deadline were due, outranking every graph whose
// deadline is further out (see the fairness note in the package comment).
const AgingHorizon = 5 * time.Minute

// Task is one node of a dependency graph. Tasks are created with
// Graph.Task and scheduled automatically once every dependency completed.
type Task struct {
	g     *Graph
	kind  Kind
	label string
	fn    func(context.Context)

	// Scheduling state, guarded by the pool mutex.
	waits    int     // unfinished dependencies
	children []*Task // tasks waiting on this one
	done     bool
	seq      uint64 // global submission order, tie-breaks equal deadlines

	// Injector state, set by injectLocked: enqueue time and the aged
	// priority key min(graph deadline, enqNs + AgingHorizon). Tasks that
	// become ready on a worker's deque never enter the injector and leave
	// both zero.
	enqNs       int64
	effDeadline int64

	// Tracing state: readyNs is when the task became runnable (injector
	// enqueue or local push — queue wait = start − readyNs), and stolen is
	// 1 + the victim worker's id when the task changed deques via a steal
	// (0 = ran where it was pushed). Both feed per-task trace spans only.
	readyNs int64
	stolen  int32
}

// Graph is a set of tasks with dependency edges, executed by a Pool.
type Graph struct {
	p        *Pool
	ctx      context.Context
	deadline int64 // unix nanos; noDeadline when absent
	obs      progress.Func

	pending int // unfinished tasks + 1 builder hold, guarded by pool mutex
	doneCh  chan struct{}
}

// GraphOptions configures a graph.
type GraphOptions struct {
	// Deadline orders this graph's tasks in the injector: earlier deadlines
	// are picked up first. The zero time means "no deadline" (lowest
	// priority, FIFO among themselves). The deadline does NOT cancel the
	// graph — pass a deadline context for that.
	Deadline time.Time
	// Progress, when non-nil, receives a TaskStart/TaskDone event pair
	// around every executed task (skipped tasks emit nothing). It may be
	// invoked concurrently from workers.
	Progress progress.Func
}

// worker is one scheduler worker's state.
type worker struct {
	id     int     // index into Pool.workers, recorded on task trace spans
	deque  []*Task // LIFO: push/pop at the tail
	steals atomic.Uint64
	rng    uint64 // xorshift state for victim selection
}

// Pool is a fixed-size work-stealing worker pool. The zero value is not
// usable; construct with New. Workers start lazily on the first graph and
// run until Stop.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	inj     injector // min-heap on (deadline, seq)
	idle    int      // workers parked on cond
	stopped bool
	seq     uint64 // task submission counter

	startOnce sync.Once
	runnable  atomic.Int64 // queued tasks across injector + deques

	// runnableByKind splits the runnable gauge per task kind — the input of
	// scheduler-aware Retry-After estimates (queued work × mean latency).
	runnableByKind [numKinds]atomic.Int64

	// maxWaitNs is the worst observed injector wait (enqueue → pop), the
	// starvation metric the aging horizon bounds.
	maxWaitNs atomic.Int64

	// lat[kind] accumulates task-latency histograms.
	lat [numKinds]latHist
}

// New returns a pool of n workers (n < 1 is treated as 1). Worker
// goroutines are not started until the first graph is created.
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: make([]*worker, n)}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.workers {
		p.workers[i] = &worker{id: i, rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// start launches the worker goroutines (idempotent).
func (p *Pool) start() {
	p.startOnce.Do(func() {
		for i := range p.workers {
			go p.run(p.workers[i])
		}
	})
}

// Stop shuts the pool down: workers finish the tasks already queued, then
// exit. Graphs must not be created on a stopped pool.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// NewGraph starts an empty task graph on the pool. The context governs
// cancellation of every task in the graph; Wait returns its error once the
// graph has drained.
func (p *Pool) NewGraph(ctx context.Context, opts GraphOptions) *Graph {
	p.start()
	g := &Graph{
		p:        p,
		ctx:      ctx,
		deadline: noDeadline,
		obs:      opts.Progress,
		pending:  1, // builder hold, released by Wait
		doneCh:   make(chan struct{}),
	}
	if !opts.Deadline.IsZero() {
		g.deadline = opts.Deadline.UnixNano()
	}
	return g
}

// Task adds a task to the graph. fn runs once every dep has completed; it
// receives the graph context. fn must handle its own errors (write them to
// captured slots) — the scheduler only tracks completion. Task may be
// called concurrently with the graph executing, but not after Wait. Nil
// dependencies are ignored.
func (g *Graph) Task(kind Kind, label string, fn func(context.Context), deps ...*Task) *Task {
	t := &Task{g: g, kind: kind, label: label, fn: fn}
	p := g.p
	p.mu.Lock()
	g.pending++
	p.seq++
	t.seq = p.seq
	for _, d := range deps {
		if d == nil || d.done {
			continue
		}
		d.children = append(d.children, t)
		t.waits++
	}
	if t.waits == 0 {
		// External submission: no worker context, go through the injector.
		p.injectLocked(t)
	}
	p.mu.Unlock()
	return t
}

// Wait releases the builder hold and blocks until every task of the graph
// has run or been skipped, then returns the graph context's error (nil when
// the graph completed uncancelled). Wait must not be called from a task
// body — a worker waiting on its own pool deadlocks the schedule.
func (g *Graph) Wait() error {
	p := g.p
	p.mu.Lock()
	g.pending--
	done := g.pending == 0
	p.mu.Unlock()
	if done {
		close(g.doneCh)
	}
	<-g.doneCh
	return g.ctx.Err()
}

// injectLocked queues t on the global injector with its aged priority key.
// Enqueue times are taken under the pool mutex, so they are monotone with
// seq and deadline-free tasks stay FIFO among themselves. Pool mutex held.
func (p *Pool) injectLocked(t *Task) {
	t.enqNs = time.Now().UnixNano()
	t.readyNs = t.enqNs
	t.effDeadline = t.g.deadline
	if aged := t.enqNs + int64(AgingHorizon); aged < t.effDeadline {
		t.effDeadline = aged
	}
	p.inj.push(t)
	p.runnable.Add(1)
	p.runnableByKind[t.kind].Add(1)
	if p.idle > 0 {
		p.cond.Signal()
	}
}

// popInjectorLocked pops the injector head, recording its queue wait in
// the starvation metric. Pool mutex held.
func (p *Pool) popInjectorLocked() *Task {
	t := p.inj.pop()
	if wait := time.Now().UnixNano() - t.enqNs; wait > p.maxWaitNs.Load() {
		p.maxWaitNs.Store(wait)
	}
	p.noteDequeuedLocked(t)
	return t
}

// noteDequeuedLocked maintains the runnable gauges for one dequeued task.
// Pool mutex held.
func (p *Pool) noteDequeuedLocked(t *Task) {
	p.runnable.Add(-1)
	p.runnableByKind[t.kind].Add(-1)
}

// pushLocalLocked appends newly-ready tasks to w's deque (callers pass
// them in reverse creation order so the LIFO pop yields creation order)
// and wakes one parked worker per task beyond the one w will pop itself.
// Pool mutex held.
func (p *Pool) pushLocalLocked(w *worker, ts []*Task) {
	if len(ts) > 0 {
		now := time.Now().UnixNano()
		for _, t := range ts {
			t.readyNs = now
		}
	}
	w.deque = append(w.deque, ts...)
	p.runnable.Add(int64(len(ts)))
	for _, t := range ts {
		p.runnableByKind[t.kind].Add(1)
	}
	for i := 1; i < len(ts) && p.idle > 0; i++ {
		p.cond.Signal()
	}
}

// next returns the next task for w, parking when the pool is empty. A nil
// return means the pool is stopped and drained.
func (p *Pool) next(w *worker) *Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		// Prefer local LIFO work unless the injector's head belongs to a
		// graph with a strictly earlier deadline — deadline pressure wins
		// over locality. The raw graph deadline decides here, not the aged
		// key: aging reorders waiting injector entries among themselves, it
		// never lets an aged root preempt a graph mid-execution (which would
		// break the single-worker FIFO contract).
		if n := len(w.deque); n > 0 {
			if h := p.inj.peek(); h != nil && h.g.deadline < w.deque[n-1].g.deadline {
				return p.popInjectorLocked()
			}
			t := w.deque[n-1]
			w.deque[n-1] = nil
			w.deque = w.deque[:n-1]
			p.noteDequeuedLocked(t)
			return t
		}
		if p.inj.peek() != nil {
			return p.popInjectorLocked()
		}
		// Steal half of a random victim's deque (the oldest half — the
		// victim keeps the hot tail it is about to pop).
		if t := p.stealLocked(w); t != nil {
			p.noteDequeuedLocked(t)
			return t
		}
		if p.stopped {
			return nil
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// stealLocked scans victims from a random start, moves the older half of
// the first non-empty deque onto w's, and returns the first stolen task.
// Pool mutex held.
func (p *Pool) stealLocked(w *worker) *Task {
	n := len(p.workers)
	if n < 2 {
		return nil
	}
	// xorshift64 — cheap, per-worker, no global rand contention.
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	start := int(w.rng % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w || len(v.deque) == 0 {
			continue
		}
		half := (len(v.deque) + 1) / 2
		stolen := v.deque[:half]
		v.deque = append([]*Task(nil), v.deque[half:]...)
		w.steals.Add(1)
		for _, s := range stolen {
			s.stolen = int32(v.id) + 1
		}
		t := stolen[0]
		// stolen is oldest-first; keep that age order on our LIFO deque by
		// pushing the rest newest-first (t, the oldest, runs right now).
		for j := len(stolen) - 1; j >= 1; j-- {
			w.deque = append(w.deque, stolen[j])
		}
		return t
	}
	return nil
}

// run is a worker's main loop.
func (p *Pool) run(w *worker) {
	for {
		t := p.next(w)
		if t == nil {
			return
		}
		p.exec(w, t)
	}
}

// exec runs (or skips) one task and completes it: dependents whose last
// dependency this was become runnable on w's deque, and the graph's
// pending count drops (releasing Wait at zero). Tasks of a cancelled graph
// skip the body but still complete, so cancelled graphs drain without
// running unstarted work.
func (p *Pool) exec(w *worker, t *Task) {
	g := t.g
	if g.ctx.Err() == nil {
		g.obs.Emit(progress.TaskStart{Kind: t.kind.String(), Label: t.label})
		// One span per executed task. When the graph context carries no
		// trace this is a zero Handle and tctx == g.ctx — no allocation.
		tctx, sp := trace.Start(g.ctx, t.kind.String(), t.label)
		start := time.Now()
		if sp.Traced() {
			sp.SetWorker(w.id)
			if t.readyNs > 0 {
				sp.SetQueueWait(time.Duration(start.UnixNano() - t.readyNs))
			}
			if t.stolen > 0 {
				sp.Attr("stolen_from", "w"+strconv.Itoa(int(t.stolen-1)))
			}
		}
		t.fn(tctx)
		elapsed := time.Since(start)
		sp.End()
		p.lat[t.kind].observe(elapsed)
		g.obs.Emit(progress.TaskDone{Kind: t.kind.String(), Label: t.label, Elapsed: elapsed})
	}
	p.mu.Lock()
	t.done = true
	var ready []*Task
	for _, c := range t.children {
		c.waits--
		if c.waits == 0 {
			ready = append(ready, c)
		}
	}
	t.children = nil
	// Reverse creation order: the LIFO pop then walks dependents
	// oldest-first (the determinism contract).
	for i, j := 0, len(ready)-1; i < j; i, j = i+1, j-1 {
		ready[i], ready[j] = ready[j], ready[i]
	}
	p.pushLocalLocked(w, ready)
	g.pending--
	done := g.pending == 0
	p.mu.Unlock()
	if done {
		close(g.doneCh)
	}
}

// injector is a min-heap of tasks on (effective deadline, submission seq).
// The effective deadline is the aged key set by injectLocked, so entries
// that waited past AgingHorizon rise above later-deadline arrivals.
type injector struct{ h []*Task }

func (q *injector) less(a, b *Task) bool {
	if a.effDeadline != b.effDeadline {
		return a.effDeadline < b.effDeadline
	}
	return a.seq < b.seq
}

func (q *injector) peek() *Task {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *injector) push(t *Task) {
	q.h = append(q.h, t)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *injector) pop() *Task {
	t := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = nil
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.h) && q.less(q.h[l], q.h[small]) {
			small = l
		}
		if r < len(q.h) && q.less(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return t
}

// latBuckets are the task-latency histogram upper bounds, in seconds.
var latBuckets = [...]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// latHist is a lock-free latency histogram.
type latHist struct {
	buckets [len(latBuckets) + 1]atomic.Uint64 // +Inf overflow bucket
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *latHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latBuckets) && s > latBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// Histogram is a snapshot of one kind's task-latency distribution.
// Buckets[i] counts tasks with latency ≤ LatencyBuckets()[i]
// (non-cumulative); the final extra bucket is the overflow.
type Histogram struct {
	Buckets    []uint64
	Count      uint64
	SumSeconds float64
}

// LatencyBuckets returns the histogram bucket upper bounds in seconds.
func LatencyBuckets() []float64 { return append([]float64(nil), latBuckets[:]...) }

// Stats is a point-in-time snapshot of scheduler state.
type Stats struct {
	Workers  int
	Runnable int      // tasks queued (injector + all deques), excluding running
	Steals   []uint64 // per-worker successful steal counts
	Latency  map[Kind]Histogram
	// RunnableByKind splits Runnable per task kind. Combined with each
	// kind's mean latency it estimates the backlog drain time — the
	// scheduler-aware Retry-After input (kinds with zero queued tasks are
	// absent).
	RunnableByKind map[Kind]int
	// MaxInjectorWaitSeconds is the worst enqueue-to-pop wait any task
	// spent in the global injector since the pool started — the starvation
	// metric bounded by AgingHorizon plus one task's execution time.
	MaxInjectorWaitSeconds float64
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Workers:                len(p.workers),
		Runnable:               int(max(0, p.runnable.Load())),
		Steals:                 make([]uint64, len(p.workers)),
		Latency:                make(map[Kind]Histogram, int(numKinds)),
		RunnableByKind:         make(map[Kind]int, int(numKinds)),
		MaxInjectorWaitSeconds: float64(p.maxWaitNs.Load()) / 1e9,
	}
	for k := Kind(0); k < numKinds; k++ {
		if n := p.runnableByKind[k].Load(); n > 0 {
			st.RunnableByKind[k] = int(n)
		}
	}
	for i, w := range p.workers {
		st.Steals[i] = w.steals.Load()
	}
	for k := Kind(0); k < numKinds; k++ {
		h := &p.lat[k]
		if c := h.count.Load(); c > 0 {
			snap := Histogram{
				Buckets:    make([]uint64, len(h.buckets)),
				Count:      c,
				SumSeconds: float64(h.sumNs.Load()) / 1e9,
			}
			for i := range h.buckets {
				snap.Buckets[i] = h.buckets[i].Load()
			}
			st.Latency[k] = snap
		}
	}
	return st
}
