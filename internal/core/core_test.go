package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"plim/internal/compile"
	"plim/internal/diskcache"
	"plim/internal/mig"
	"plim/internal/progress"
)

func randomMIG(name string, pis, nodes, pos int, seed int64) *mig.MIG {
	m := mig.New(name)
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]mig.Signal, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.AddPI(""))
	}
	for len(sigs) < pis+nodes {
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < pos; i++ {
		s := sigs[len(sigs)-1-rng.Intn(nodes/2)]
		if rng.Intn(4) == 0 {
			s = s.Not()
		}
		m.AddPO(s, "")
	}
	return m.Cleanup()
}

func TestNamedConfigs(t *testing.T) {
	cfgs := TableIConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("Table I has 5 configurations, got %d", len(cfgs))
	}
	names := []string{"naive", "compiler21", "minwrite", "rewriting", "full"}
	for i, c := range cfgs {
		if c.Name != names[i] {
			t.Fatalf("config %d = %q, want %q", i, c.Name, names[i])
		}
	}
	cap := FullCap(20)
	if cap.MaxWrites != 20 || !strings.Contains(cap.Name, "20") {
		t.Fatalf("FullCap broken: %+v", cap)
	}
	if Full.MaxWrites != 0 {
		t.Fatalf("FullCap must not mutate Full")
	}
}

func TestRewriteKindString(t *testing.T) {
	if RewriteNone.String() != "none" || RewriteAlgorithm1.String() != "algorithm1" ||
		RewriteAlgorithm2.String() != "algorithm2" || RewriteKind(9).String() != "?" {
		t.Fatal("RewriteKind.String broken")
	}
}

func TestRunPreservesFunctionAcrossConfigs(t *testing.T) {
	m := randomMIG("f", 8, 120, 8, 11)
	cfgs := append(TableIConfigs(), FullCap(10), FullCap(50))
	for _, cfg := range cfgs {
		rep, err := Run(context.Background(), m, cfg, DefaultEffort, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if rep.Result == nil || rep.Result.Program == nil {
			t.Fatalf("%s: missing result", cfg.Name)
		}
		if rep.Writes.N != rep.NumRRAMs() {
			t.Fatalf("%s: summary over %d devices, #R=%d", cfg.Name, rep.Writes.N, rep.NumRRAMs())
		}
		if rep.NumInstructions() != rep.Result.NumInstructions {
			t.Fatalf("%s: #I accessor mismatch", cfg.Name)
		}
	}
}

func TestRunAllOrdersReports(t *testing.T) {
	m := randomMIG("f", 6, 60, 4, 5)
	reps, err := RunAll(context.Background(), m, TableIConfigs(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("got %d reports", len(reps))
	}
	for i, cfg := range TableIConfigs() {
		if reps[i].Config.Name != cfg.Name {
			t.Fatalf("report %d is %q", i, reps[i].Config.Name)
		}
	}
}

// TestPaperTrendOnRandomControl checks the headline ordering of Table I on
// deterministic random control logic: the full scheme must beat the naive
// scheme on write-count deviation, and rewriting must cut instructions.
func TestPaperTrendOnRandomControl(t *testing.T) {
	var naiveSD, fullSD, naiveI, fullI float64
	for seed := int64(1); seed <= 5; seed++ {
		m := randomMIG("ctrl-like", 10, 300, 12, seed)
		naive, err := Run(context.Background(), m, Naive, DefaultEffort, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(context.Background(), m, Full, DefaultEffort, nil)
		if err != nil {
			t.Fatal(err)
		}
		naiveSD += naive.Writes.StdDev
		fullSD += full.Writes.StdDev
		naiveI += float64(naive.NumInstructions())
		fullI += float64(full.NumInstructions())
	}
	if fullSD >= naiveSD {
		t.Fatalf("full scheme must reduce aggregate STDEV: naive %.2f vs full %.2f", naiveSD, fullSD)
	}
	if fullI >= naiveI {
		t.Fatalf("rewriting must reduce aggregate #I: naive %.0f vs full %.0f", naiveI, fullI)
	}
}

func TestCapImprovesBalanceAtCost(t *testing.T) {
	m := randomMIG("f", 10, 300, 10, 9)
	uncapped, err := Run(context.Background(), m, Full, DefaultEffort, nil)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(context.Background(), m, FullCap(10), DefaultEffort, nil)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Writes.Max > 10 {
		t.Fatalf("cap violated: max = %d", capped.Writes.Max)
	}
	if capped.NumRRAMs() < uncapped.NumRRAMs() {
		t.Fatalf("capping cannot reduce #R: %d vs %d", capped.NumRRAMs(), uncapped.NumRRAMs())
	}
	if capped.Writes.StdDev > uncapped.Writes.StdDev {
		t.Fatalf("cap 10 should tighten the distribution: %.2f vs %.2f",
			capped.Writes.StdDev, uncapped.Writes.StdDev)
	}
}

func TestLifetimeAccessor(t *testing.T) {
	m := randomMIG("f", 6, 40, 4, 2)
	rep, err := Run(context.Background(), m, Full, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lt := rep.Lifetime(1000)
	if lt == 0 {
		t.Fatalf("lifetime must be positive for small programs")
	}
	if lt != 1000/rep.Writes.Max {
		t.Fatalf("lifetime = %d, want endurance/max = %d", lt, 1000/rep.Writes.Max)
	}
}

// TestPlanGroupsByKind pins the stage grouping of the Table I plan: three
// stages in first-appearance order, covering every configuration index
// exactly once.
func TestPlanGroupsByKind(t *testing.T) {
	stages := Plan(append(TableIConfigs(), FullCap(10), FullCap(20)))
	if len(stages) != 3 {
		t.Fatalf("Table I (+caps) plans into %d stages, want 3", len(stages))
	}
	wantKinds := []RewriteKind{RewriteNone, RewriteAlgorithm1, RewriteAlgorithm2}
	wantConfigs := [][]int{{0}, {1, 2}, {3, 4, 5, 6}}
	for i, st := range stages {
		if st.Kind != wantKinds[i] {
			t.Fatalf("stage %d kind = %v, want %v", i, st.Kind, wantKinds[i])
		}
		if len(st.Configs) != len(wantConfigs[i]) {
			t.Fatalf("stage %d has configs %v, want %v", i, st.Configs, wantConfigs[i])
		}
		for j, ci := range st.Configs {
			if ci != wantConfigs[i][j] {
				t.Fatalf("stage %d has configs %v, want %v", i, st.Configs, wantConfigs[i])
			}
		}
	}
	if len(Plan(nil)) != 0 {
		t.Fatal("empty plan must have no stages")
	}
}

// TestRunStagedMatchesSequential requires the staged runner — with and
// without a cache, inline and fanned out — to produce byte-identical
// programs and identical per-device write counts to sequential Run calls.
func TestRunStagedMatchesSequential(t *testing.T) {
	m := randomMIG("f", 8, 150, 8, 7)
	cfgs := append(TableIConfigs(), FullCap(10), FullCap(50))
	want := make([]*Report, len(cfgs))
	for i, cfg := range cfgs {
		rep, err := Run(context.Background(), m, cfg, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for name, opts := range map[string]StagedOptions{
		"inline":          {Effort: 2},
		"workers":         {Effort: 2, Workers: 4},
		"cached":          {Effort: 2, Cache: NewRewriteCache()},
		"cached+worker":   {Effort: 2, Workers: 4, Cache: NewRewriteCache()},
		"scratch":         {Effort: 2, Scratch: compile.NewScratchPool()},
		"scratch+staged":  {Effort: 2, Workers: 4, Cache: NewRewriteCacheWithBudget(2), Scratch: compile.NewScratchPool()},
		"scratch+bounded": {Effort: 2, Cache: NewRewriteCacheWithBudget(1), Scratch: compile.NewScratchPool()},
	} {
		got, err := RunStaged(context.Background(), m, cfgs, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range cfgs {
			if got[i].Config.Name != want[i].Config.Name {
				t.Fatalf("%s: report %d is %q", name, i, got[i].Config.Name)
			}
			if got[i].Rewrite != want[i].Rewrite || got[i].Writes != want[i].Writes {
				t.Fatalf("%s/%s: stats diverge", name, cfgs[i].Name)
			}
			var a, b bytes.Buffer
			if err := want[i].Result.Program.WriteBinary(&a); err != nil {
				t.Fatal(err)
			}
			if err := got[i].Result.Program.WriteBinary(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("%s/%s: staged program differs from sequential", name, cfgs[i].Name)
			}
			if !slices.Equal(want[i].Result.WriteCounts, got[i].Result.WriteCounts) {
				t.Fatalf("%s/%s: per-device write counts differ", name, cfgs[i].Name)
			}
		}
	}
}

// TestRunStagedRewritesOncePerStage counts first-cycle rewrite events: a
// staged run of the five Table I configurations must start exactly two
// rewrites (algorithm 1 and algorithm 2), not four.
func TestRunStagedRewritesOncePerStage(t *testing.T) {
	m := randomMIG("f", 8, 150, 8, 3)
	starts := map[string]int{}
	_, err := RunStaged(context.Background(), m, TableIConfigs(), StagedOptions{
		Effort: 2,
		Progress: func(ev progress.Event) {
			if c, ok := ev.(progress.RewriteCycle); ok && c.Cycle == 1 {
				starts[c.Config]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 || starts["algorithm1"] != 1 || starts["algorithm2"] != 1 {
		t.Fatalf("rewrite starts = %v, want one per shared pipeline", starts)
	}
}

// TestRewriteCacheHitSharesResult checks memoization: the second call with
// an equal-fingerprint function returns the same MIG instance without
// emitting rewrite events, and Len reports the entry.
func TestRewriteCacheHitSharesResult(t *testing.T) {
	cache := NewRewriteCache()
	m := randomMIG("f", 8, 120, 8, 21)
	events := 0
	obs := progress.Func(func(progress.Event) { events++ })
	first, st1, err := cache.Rewrite(context.Background(), m, RewriteAlgorithm2, 2, obs, "x")
	if err != nil {
		t.Fatal(err)
	}
	firstEvents := events
	if firstEvents == 0 {
		t.Fatal("computing call emitted no rewrite events")
	}
	// A structurally identical rebuild must hit.
	second, st2, err := cache.Rewrite(context.Background(), randomMIG("f", 8, 120, 8, 21), RewriteAlgorithm2, 2, obs, "x")
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("cache hit returned a different instance")
	}
	if st1 != st2 {
		t.Fatalf("cache hit returned different stats: %+v vs %+v", st1, st2)
	}
	if events != firstEvents {
		t.Fatal("cache hit re-emitted rewrite events")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
	// Different effort is a different key.
	if _, _, err := cache.Rewrite(context.Background(), m, RewriteAlgorithm2, 3, nil, "x"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries after a new effort, want 2", cache.Len())
	}
}

// TestRewriteCacheDoesNotCacheCancellation: a cancelled computation must
// not poison the cache; the next caller recomputes successfully.
func TestRewriteCacheDoesNotCacheCancellation(t *testing.T) {
	cache := NewRewriteCache()
	m := randomMIG("f", 8, 120, 8, 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cache.Rewrite(cancelled, m, RewriteAlgorithm1, 2, nil, "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled computation cached (%d entries)", cache.Len())
	}
	out, st, err := cache.Rewrite(context.Background(), m, RewriteAlgorithm1, 2, nil, "x")
	if err != nil || out == nil || st.Cycles == 0 {
		t.Fatalf("retry after cancellation failed: %v %+v", err, st)
	}
}

// TestRewriteCacheSingleflight hammers one key from many goroutines; the
// underlying rewrite must run exactly once.
func TestRewriteCacheSingleflight(t *testing.T) {
	cache := NewRewriteCache()
	m := randomMIG("f", 8, 200, 8, 17)
	var computes atomic.Int32
	obs := progress.Func(func(ev progress.Event) {
		if c, ok := ev.(progress.RewriteCycle); ok && c.Cycle == 1 {
			computes.Add(1)
		}
	})
	var wg sync.WaitGroup
	outs := make([]*mig.MIG, 16)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := cache.Rewrite(context.Background(), m, RewriteAlgorithm2, 3, obs, "x")
			if err != nil {
				t.Error(err)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("rewrite computed %d times under contention, want 1", n)
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Fatal("concurrent callers saw different instances")
		}
	}
}

// TestRewriteCacheNeverRetainsCallerMIG: with effort 0 the rewriter can
// return the caller's own graph; the cache must store a private copy so
// later caller mutations cannot corrupt hits.
func TestRewriteCacheNeverRetainsCallerMIG(t *testing.T) {
	cache := NewRewriteCache()
	m := randomMIG("f", 6, 50, 4, 8)
	nodesBefore := m.NumMaj()
	out, st, err := cache.Rewrite(context.Background(), m, RewriteAlgorithm2, 0, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 0 {
		t.Fatalf("effort 0 ran %d cycles", st.Cycles)
	}
	if out == m {
		t.Fatal("cache handed back the caller's own MIG as the entry")
	}
	// The caller keeps building on its graph; the cached entry must not see it.
	m.AddPO(m.Maj(m.PO(0), m.PO(1), mig.Const1), "junk")
	hit, _, err := cache.Rewrite(context.Background(), randomMIG("f", 6, 50, 4, 8), RewriteAlgorithm2, 0, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if hit.NumMaj() != nodesBefore || hit.NumPOs() != 4 {
		t.Fatalf("cache entry was mutated through the caller's MIG: maj=%d po=%d", hit.NumMaj(), hit.NumPOs())
	}
}

// TestRewriteCacheBudgetEvictsLRU checks the rewrite cache's size bound:
// over-budget completions evict the least-recently-used entry, an evicted
// key recomputes (new instance), and a recently-touched key survives. The
// byte budget is derived from the actual result sizes so it holds m1 plus
// either other result, but not all three.
func TestRewriteCacheBudgetEvictsLRU(t *testing.T) {
	m1 := randomMIG("f1", 6, 60, 4, 1)
	m2 := randomMIG("f2", 6, 60, 4, 2)
	m3 := randomMIG("f3", 6, 60, 4, 3)
	resultSize := func(m *mig.MIG) int {
		out, _, err := Rewrite(context.Background(), m, RewriteAlgorithm2, 2, nil, "x")
		if err != nil {
			t.Fatal(err)
		}
		return out.MemSize()
	}
	s1, s2, s3 := resultSize(m1), resultSize(m2), resultSize(m3)
	budget := s1 + max(s2, s3)
	cache := NewRewriteCacheWithBudget(budget)
	if cache.Budget() != budget {
		t.Fatalf("Budget = %d, want %d", cache.Budget(), budget)
	}
	r1, _, err := cache.Rewrite(context.Background(), m1, RewriteAlgorithm2, 2, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := cache.Rewrite(context.Background(), m2, RewriteAlgorithm2, 2, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	// Touch m1 so m2 is the LRU entry, then overflow with m3.
	if hit, _, err := cache.Rewrite(context.Background(), m1, RewriteAlgorithm2, 2, nil, "x"); err != nil || hit != r1 {
		t.Fatalf("expected m1 hit before overflow (err %v)", err)
	}
	if _, _, err := cache.Rewrite(context.Background(), m3, RewriteAlgorithm2, 2, nil, "x"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 (budget %d bytes)", cache.Len(), budget)
	}
	// m1 was refreshed after m2, so m2 is the victim: recompute (fresh
	// instance) while m1 still hits.
	if hit, _, err := cache.Rewrite(context.Background(), m1, RewriteAlgorithm2, 2, nil, "x"); err != nil || hit != r1 {
		t.Fatalf("recently-used entry was evicted (err %v)", err)
	}
	again, _, err := cache.Rewrite(context.Background(), m2, RewriteAlgorithm2, 2, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if again == r2 {
		t.Fatal("evicted entry still served the old instance")
	}
}

// TestRewriteCachePanicDoesNotWedgeKey: a panicking computation (here a
// malformed MIG whose PO references a nonexistent node) must propagate to
// the computing caller but still unindex the entry and close its done
// channel — otherwise every future caller of the key would block forever.
func TestRewriteCachePanicDoesNotWedgeKey(t *testing.T) {
	cache := NewRewriteCacheWithBudget(4)
	bad := mig.New("bad")
	bad.AddPI("x")
	bad.AddPO(mig.MakeSignal(mig.NodeID(99), false), "f") // dangling reference
	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		cache.Rewrite(context.Background(), bad, RewriteAlgorithm2, 1, nil, "x")
	}()
	if !panicked {
		t.Fatal("malformed MIG did not panic; test premise broken")
	}
	if cache.Len() != 0 {
		t.Fatalf("panicked computation left %d entries behind", cache.Len())
	}
	// The cache still works for sane keys afterwards.
	good := randomMIG("f", 6, 50, 4, 1)
	if _, _, err := cache.Rewrite(context.Background(), good, RewriteAlgorithm2, 1, nil, "x"); err != nil {
		t.Fatal(err)
	}
}

// TestRunStagedCancellationIsCtxErr pins the documented contract: a run
// cancelled during the compile fan-out returns ctx.Err() itself, not a
// joined wrapper around it.
func TestRunStagedCancellationIsCtxErr(t *testing.T) {
	m := randomMIG("f", 8, 150, 8, 7)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := RunStaged(ctx, m, TableIConfigs(), StagedOptions{
		Effort: 1,
		Progress: func(ev progress.Event) {
			// Cancel once the first rewrite completes, so the compile
			// fan-out observes a cancelled context.
			if _, ok := ev.(progress.CompileStart); ok {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("cancelled staged run returned nil error")
	}
	if err != context.Canceled {
		t.Fatalf("staged cancellation returned %#v, want context.Canceled itself", err)
	}
}

// TestRewriteCacheDiskTier: an in-memory miss probes the disk tier; a
// fresh computation is written back, and a second cold cache over the same
// directory serves it without emitting rewrite-cycle events, byte-identical
// to the computed result.
func TestRewriteCacheDiskTier(t *testing.T) {
	disk, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := randomMIG("disk", 8, 160, 6, 31)
	ctx := context.Background()

	cycles := 0
	obs := progress.Func(func(ev progress.Event) {
		if _, ok := ev.(progress.RewriteCycle); ok {
			cycles++
		}
	})

	warmC := NewRewriteCache()
	warmC.SetDisk(disk)
	want, wantSt, err := warmC.Rewrite(ctx, m, RewriteAlgorithm2, DefaultEffort, obs, "")
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("cold computation emitted no rewrite cycles")
	}
	if c := disk.Counters(); c.Stores == 0 || c.RewriteHits != 0 {
		t.Fatalf("cold run counters: %+v", c)
	}

	// A brand-new in-memory cache (a new process) over the same directory.
	cycles = 0
	coldC := NewRewriteCache()
	coldC.SetDisk(disk)
	got, gotSt, err := coldC.Rewrite(ctx, m, RewriteAlgorithm2, DefaultEffort, obs, "")
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 {
		t.Fatalf("disk-served rewrite emitted %d rewrite cycles, want 0", cycles)
	}
	if gotSt != wantSt {
		t.Fatalf("disk-served stats differ: %+v vs %+v", gotSt, wantSt)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("disk-served MIG fingerprint differs from computed")
	}
	var a, b bytes.Buffer
	if err := want.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("disk-served MIG serialization differs from computed")
	}
	if c := disk.Counters(); c.RewriteHits != 1 {
		t.Fatalf("warm run counters: %+v", c)
	}

	// And the compiled programs must match exactly.
	for _, cfg := range TableIConfigs() {
		r1, err := CompileConfig(ctx, want, cfg, wantSt, nil, nil, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := CompileConfig(ctx, got, cfg, gotSt, nil, nil, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		var p1, p2 bytes.Buffer
		if err := r1.Result.Program.WriteBinary(&p1); err != nil {
			t.Fatal(err)
		}
		if err := r2.Result.Program.WriteBinary(&p2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
			t.Fatalf("%s: disk-served compile differs from computed", cfg.Name)
		}
	}
}

// TestRewriteCacheDiskTierFailedComputeNotStored: cancelled computations
// must not be persisted.
func TestRewriteCacheDiskTierFailedComputeNotStored(t *testing.T) {
	disk, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewRewriteCache()
	c.SetDisk(disk)
	m := randomMIG("cancel", 8, 160, 6, 32)
	ctx, cancel := context.WithCancel(context.Background())
	obs := progress.Func(func(ev progress.Event) {
		if _, ok := ev.(progress.RewriteCycle); ok {
			cancel() // cancel mid-run, after the first cycle
		}
	})
	if _, _, err := c.Rewrite(ctx, m, RewriteAlgorithm2, DefaultEffort, obs, ""); err == nil {
		t.Fatal("cancelled rewrite succeeded")
	}
	if cnt := disk.Counters(); cnt.Stores != 0 {
		t.Fatalf("cancelled computation was persisted: %+v", cnt)
	}
}
