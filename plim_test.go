package plim

import (
	"testing"
)

// TestQuickstartFlow exercises the README's quickstart path end to end
// through the public facade only.
func TestQuickstartFlow(t *testing.T) {
	// Build a tiny function: f = maj(a, ¬b, c), g = a ∧ b.
	m := NewMIG("quickstart")
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	m.AddPO(m.Maj(a, b.Not(), c), "f")
	m.AddPO(m.And(a, b), "g")

	rep, err := Run(m, Full, DefaultEffort)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumInstructions() == 0 || rep.NumRRAMs() < 3 {
		t.Fatalf("implausible report: #I=%d #R=%d", rep.NumInstructions(), rep.NumRRAMs())
	}

	// Execute on the simulated crossbar and check against the truth table.
	for row := 0; row < 8; row++ {
		in := []bool{row&1 == 1, row>>1&1 == 1, row>>2&1 == 1}
		out, xbar, err := Execute(rep.Result.Program, in)
		if err != nil {
			t.Fatal(err)
		}
		av, bv, cv := btoi(in[0]), btoi(in[1]), btoi(in[2])
		wantF := av+(1-bv)+cv >= 2
		wantG := av == 1 && bv == 1
		if out[0] != wantF || out[1] != wantG {
			t.Fatalf("row %d: got %v/%v want %v/%v", row, out[0], out[1], wantF, wantG)
		}
		if _, writes, _ := xbar.Totals(); writes != uint64(rep.NumInstructions()) {
			t.Fatalf("crossbar writes %d != #I %d", writes, rep.NumInstructions())
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder("inc")
	x := b.Input("x", 8)
	one := b.Const(1, 8)
	sum, _ := b.Add(x, one, Const0)
	b.Output("y", sum)

	rep, err := Run(b.M, MinWrite, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Execute(rep.Result.Program, boolsOf(0x7F, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := intOf(out); got != 0x80 {
		t.Fatalf("0x7F+1 = %#x", got)
	}
}

func boolsOf(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

func intOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestBenchmarkFacade(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("18 benchmarks expected, got %d", len(names))
	}
	m, err := BenchmarkScaled("adder", 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPIs() == 0 {
		t.Fatal("empty benchmark")
	}
	if _, err := Benchmark("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestConfigsFacade(t *testing.T) {
	if len(TableIConfigs()) != 5 {
		t.Fatal("Table I has five configurations")
	}
	if FullCap(42).MaxWrites != 42 {
		t.Fatal("FullCap broken")
	}
}

func TestEnduranceFailureFacade(t *testing.T) {
	m := NewMIG("hot")
	a := m.AddPI("a")
	b := m.AddPI("b")
	x := m.And(a, b)
	for i := 0; i < 6; i++ {
		x = m.And(x, a.NotIf(i%2 == 0))
	}
	m.AddPO(x, "f")
	rep, err := Run(m, Naive, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With endurance 1 the program must hit a worn-out device.
	if _, _, err := ExecuteWithEndurance(rep.Result.Program, []bool{true, true}, 1); err == nil {
		t.Fatal("expected a wear-out failure at endurance 1")
	}
	// With generous endurance it runs fine and the lifetime accessor
	// agrees with the write counts.
	if _, _, err := ExecuteWithEndurance(rep.Result.Program, []bool{true, true}, 1000); err != nil {
		t.Fatal(err)
	}
	sum := SummarizeWrites(rep.Result.WriteCounts)
	if lt := Lifetime(rep.Result.WriteCounts, 1000); lt != 1000/sum.Max {
		t.Fatalf("lifetime %d, want %d", lt, 1000/sum.Max)
	}
}

func TestSuiteFacade(t *testing.T) {
	sr, err := RunSuite(TableIConfigs(), SuiteOptions{
		Benchmarks: []string{"ctrl", "int2float"},
		Effort:     1,
		Shrink:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := TableI(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Benchmarks) != 2 {
		t.Fatal("Table I rows wrong")
	}
	if _, err := TableII(sr); err != nil {
		t.Fatal(err)
	}
	capped, err := RunSuite([]Config{FullCap(10), FullCap(20)}, SuiteOptions{
		Benchmarks: []string{"ctrl"}, Effort: 1, Shrink: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableIII(capped); err != nil {
		t.Fatal(err)
	}
}
