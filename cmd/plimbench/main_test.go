package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckRegressionsGate(t *testing.T) {
	base := Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1000},
		{Name: "rewrite/algorithm2", NsPerOp: 2000},
	}}
	path := writeBaseline(t, base)

	// Within tolerance (and a brand-new benchmark) passes.
	ok := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1050},
		{Name: "rewrite/algorithm2", NsPerOp: 1500},
		{Name: "compile/new-path", NsPerOp: 999999},
	}}
	if err := checkRegressions(path, ok, 10, 10); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}

	// Beyond tolerance fails and names the offender.
	bad := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1200},
		{Name: "rewrite/algorithm2", NsPerOp: 2000},
	}}
	err := checkRegressions(path, bad, 10, 10)
	if err == nil {
		t.Fatal("20% regression passed a 10% gate")
	}
	if !strings.Contains(err.Error(), "compile/full") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
	// A looser gate accepts the same numbers.
	if err := checkRegressions(path, bad, 25, 10); err != nil {
		t.Fatalf("20%% regression failed a 25%% gate: %v", err)
	}

	// An allocation regression fails even when ns/op improved (a faster
	// runner must not mask allocation churn)...
	churn := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 500, AllocsPerOp: 5000},
		{Name: "rewrite/algorithm2", NsPerOp: 2000},
	}}
	allocBase := writeBaseline(t, Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1000, AllocsPerOp: 12},
		{Name: "rewrite/algorithm2", NsPerOp: 2000},
	}})
	err = checkRegressions(allocBase, churn, 10, 10)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocation churn passed the gate: %v", err)
	}
	// ...but small absolute growth on a lean path stays under the floor.
	lean := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1000, AllocsPerOp: 20},
		{Name: "rewrite/algorithm2", NsPerOp: 2000},
	}}
	if err := checkRegressions(allocBase, lean, 10, 10); err != nil {
		t.Fatalf("12 -> 20 allocs/op must stay under the absolute floor: %v", err)
	}

	// Mismatched shrink is not comparable.
	if err := checkRegressions(path, &Report{Shrink: 1}, 10, 10); err == nil {
		t.Fatal("cross-shrink comparison must be rejected")
	}

	// Missing baseline is an error, not a silent pass.
	if err := checkRegressions(filepath.Join(t.TempDir(), "nope.json"), ok, 10, 10); err == nil {
		t.Fatal("missing baseline must error")
	}
}

// TestTimeGateSplitFromAllocGate: the ns/op leg has its own tolerance and
// can be skipped entirely (maxTime <= 0) without loosening the strict,
// deterministic allocs/op gate — the CI configuration for shared runners,
// where ±15% ns/op swings made the old single-tolerance gate cry wolf.
func TestTimeGateSplitFromAllocGate(t *testing.T) {
	base := writeBaseline(t, Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1000, AllocsPerOp: 100},
	}})

	// 15% slower: fails a 10% time gate, passes the default 25% one.
	noisy := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 1150, AllocsPerOp: 100},
	}}
	if err := checkRegressions(base, noisy, 10, 10); err == nil {
		t.Fatal("15% ns/op regression passed a 10% time gate")
	}
	if err := checkRegressions(base, noisy, 25, 10); err != nil {
		t.Fatalf("15%% ns/op noise failed the raised 25%% time gate: %v", err)
	}

	// With the time leg skipped, even a 3x slowdown passes...
	slow := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 3000, AllocsPerOp: 100},
	}}
	if err := checkRegressions(base, slow, 0, 10); err != nil {
		t.Fatalf("skipped time leg still gated ns/op: %v", err)
	}
	// ...but an allocation regression still fails strictly.
	churn := &Report{Shrink: 2, Benchmarks: []Entry{
		{Name: "compile/full", NsPerOp: 500, AllocsPerOp: 200},
	}}
	err := checkRegressions(base, churn, 0, 10)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocs/op gate loosened by skipping the time leg: %v", err)
	}
}
