package tables

import (
	"context"
	"errors"
	"math"
	"slices"
	"strings"
	"sync"
	"testing"

	"plim/internal/core"
	"plim/internal/cost"
	"plim/internal/progress"
	"plim/internal/suite"
)

// quickOpts runs a few small benchmarks at reduced scale so the full
// pipeline stays fast in unit tests.
func quickOpts() Options {
	return Options{
		Benchmarks: []string{"ctrl", "int2float", "dec", "router"},
		Effort:     2,
		Shrink:     4,
		Workers:    2,
	}
}

func TestRunSuiteShape(t *testing.T) {
	sr, err := RunSuite(context.Background(), core.TableIConfigs(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Benchmarks) != 4 || len(sr.Configs) != 5 {
		t.Fatalf("shape %dx%d", len(sr.Benchmarks), len(sr.Configs))
	}
	for b := range sr.Benchmarks {
		if len(sr.Reports[b]) != 5 {
			t.Fatalf("benchmark %d has %d reports", b, len(sr.Reports[b]))
		}
		for c, rep := range sr.Reports[b] {
			if rep == nil || rep.Result == nil {
				t.Fatalf("missing report [%d][%d]", b, c)
			}
		}
	}
	if sr.ConfigIndex("full") != 4 || sr.ConfigIndex("zzz") != -1 {
		t.Fatal("ConfigIndex broken")
	}
}

func TestRunSuiteRejectsUnknownBenchmark(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nope"}
	if _, err := RunSuite(context.Background(), core.TableIConfigs(), opts); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

func TestRunSuiteIsDeterministicAcrossWorkers(t *testing.T) {
	optsA := quickOpts()
	optsA.Workers = 1
	a, err := RunSuite(context.Background(), core.TableIConfigs(), optsA)
	if err != nil {
		t.Fatal(err)
	}
	optsB := quickOpts()
	optsB.Workers = 4
	b, err := RunSuite(context.Background(), core.TableIConfigs(), optsB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Benchmarks {
		for c := range a.Configs {
			ra, rb := a.Reports[i][c], b.Reports[i][c]
			if ra.NumInstructions() != rb.NumInstructions() ||
				ra.NumRRAMs() != rb.NumRRAMs() ||
				ra.Writes.StdDev != rb.Writes.StdDev {
				t.Fatalf("nondeterministic result at [%d][%d]", i, c)
			}
		}
	}
}

func TestTableI(t *testing.T) {
	sr, err := RunSuite(context.Background(), core.TableIConfigs(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	d, err := TableI(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 4 || len(d.Cells) != 4 || len(d.Cells[0]) != 5 {
		t.Fatalf("Table I shape wrong")
	}
	if !math.IsNaN(d.Avg[0].Impr) {
		t.Fatal("baseline column must have NaN improvement")
	}
	for b := range d.Cells {
		if !math.IsNaN(d.Cells[b][0].Impr) {
			t.Fatalf("row %d baseline cell has improvement", b)
		}
		if math.IsNaN(d.Cells[b][4].Impr) {
			t.Fatalf("row %d full cell lacks improvement", b)
		}
	}
	g := d.Grid()
	txt := g.Text()
	for _, want := range []string{"ctrl", "AVG", "naive STDEV", "full impr."} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Table I text missing %q:\n%s", want, txt)
		}
	}
	md := g.Markdown()
	if !strings.HasPrefix(md, "**Table I") || !strings.Contains(md, "| ctrl |") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
	csv := g.CSV()
	if strings.Count(csv, "\n") != len(g.Rows)+1 {
		t.Fatalf("csv row count wrong")
	}
}

func TestTableIRequiresNaive(t *testing.T) {
	sr, err := RunSuite(context.Background(), []core.Config{core.Full}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableI(sr); err == nil {
		t.Fatal("Table I must demand a naive baseline")
	}
}

func TestTableII(t *testing.T) {
	sr, err := RunSuite(context.Background(), core.TableIConfigs(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	d, err := TableII(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ConfigNames) != 3 {
		t.Fatalf("Table II defaults to 3 configurations")
	}
	for b := range d.I {
		for i := range d.I[b] {
			if d.I[b][i] <= 0 || d.R[b][i] <= 0 {
				t.Fatalf("non-positive cost at [%d][%d]", b, i)
			}
		}
	}
	if _, err := TableII(sr, "missing"); err == nil {
		t.Fatal("unknown config must error")
	}
	txt := d.Grid().Text()
	if !strings.Contains(txt, "naive #I") || !strings.Contains(txt, "AVG") {
		t.Fatalf("Table II text malformed:\n%s", txt)
	}
}

func TestTableIII(t *testing.T) {
	cfgs := []core.Config{core.FullCap(10), core.FullCap(20), core.FullCap(50), core.FullCap(100)}
	sr, err := RunSuite(context.Background(), cfgs, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	d, err := TableIII(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Caps) != 4 || d.Caps[0] != 10 || d.Caps[3] != 100 {
		t.Fatalf("caps = %v", d.Caps)
	}
	// Trend: average #R must not increase as the cap loosens, and average
	// STDEV must not decrease.
	for c := 1; c < 4; c++ {
		if d.AvgR[c] > d.AvgR[c-1] {
			t.Fatalf("avg #R grew from cap %d to %d: %.1f → %.1f", d.Caps[c-1], d.Caps[c], d.AvgR[c-1], d.AvgR[c])
		}
		if d.AvgSD[c] < d.AvgSD[c-1]-1e-9 {
			t.Fatalf("avg STDEV shrank as the cap loosened")
		}
	}
	// Small benchmarks saturate quickly: at least one dash must appear.
	foundDash := false
	for b := range d.Cells {
		for c := 1; c < 4; c++ {
			if d.Cells[b][c].Unchanged {
				foundDash = true
			}
		}
	}
	if !foundDash {
		t.Log("no unchanged cells on this subset (acceptable but unusual)")
	}
	txt := d.Grid().Text()
	if !strings.Contains(txt, "cap10 #I") {
		t.Fatalf("Table III text malformed:\n%s", txt)
	}

	// Uncapped configurations are rejected.
	srBad, err := RunSuite(context.Background(), []core.Config{core.Full}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableIII(srBad); err == nil {
		t.Fatal("Table III must reject uncapped configs")
	}
}

func TestAblationConfigs(t *testing.T) {
	cfgs := AblationConfigs()
	if len(cfgs) < 5 {
		t.Fatalf("ablation should isolate every technique, got %d configs", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Fatalf("duplicate config name %q", c.Name)
		}
		names[c.Name] = true
	}
	sr, err := RunSuite(context.Background(), cfgs, Options{Benchmarks: []string{"ctrl"}, Effort: 1, Shrink: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Reports[0]) != len(cfgs) {
		t.Fatal("missing ablation reports")
	}
}

func TestGridRendersEmptyTitle(t *testing.T) {
	g := &Grid{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if strings.HasPrefix(g.Text(), "\n") {
		t.Fatal("empty title must not emit a blank line")
	}
	if !strings.Contains(g.CSV(), "a,b") {
		t.Fatal("CSV header missing")
	}
}

func TestRunSuiteValidatesOptions(t *testing.T) {
	cases := map[string]Options{
		"zero workers":    {Benchmarks: []string{"ctrl"}, Effort: 1, Shrink: 4},
		"zero shrink":     {Benchmarks: []string{"ctrl"}, Effort: 1, Workers: 1},
		"negative effort": {Benchmarks: []string{"ctrl"}, Effort: -1, Shrink: 4, Workers: 1},
	}
	for name, opts := range cases {
		if _, err := RunSuite(context.Background(), core.TableIConfigs(), opts); err == nil {
			t.Errorf("%s: options accepted", name)
		}
	}
}

// TestRunSuiteJoinsAllErrors checks the aggregation fix: when several
// benchmarks fail independently, every failure must surface, not just the
// first one the old code happened to scan.
func TestRunSuiteJoinsAllErrors(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"bogus1", "ctrl", "bogus2"}
	_, err := RunSuite(context.Background(), core.TableIConfigs(), opts)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"bogus1", "bogus2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

// TestRunSuiteCancelledContext checks that a pre-cancelled context returns
// ctx.Err() without running anything.
func TestRunSuiteCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSuite(ctx, core.TableIConfigs(), quickOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// referenceSuite is the pre-staged sequential path: every configuration
// rewrites from scratch, every benchmark rebuilds its MIG, nothing is
// cached. The staged scheduler must be byte-identical to it.
func referenceSuite(t *testing.T, cfgs []core.Config, opts Options) *SuiteResult {
	t.Helper()
	sr := &SuiteResult{
		Benchmarks: make([]suite.Info, len(opts.Benchmarks)),
		Configs:    cfgs,
		Reports:    make([][]*core.Report, len(opts.Benchmarks)),
	}
	for i, name := range opts.Benchmarks {
		info, ok := suite.Get(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		m, err := suite.BuildScaled(name, opts.Shrink)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Shrink != 1 {
			info.PI = m.NumPIs()
			info.PO = m.NumPOs()
		}
		sr.Benchmarks[i] = info
		reps := make([]*core.Report, len(cfgs))
		for c, cfg := range cfgs {
			if reps[c], err = core.Run(context.Background(), m, cfg, opts.Effort, nil); err != nil {
				t.Fatalf("%s/%s: %v", name, cfg.Name, err)
			}
		}
		sr.Reports[i] = reps
	}
	return sr
}

// TestStagedSuiteParity requires the cached parallel scheduler to render
// byte-identical tables — and identical per-device write counts — to the
// sequential uncached path, for the Table I and Table III configurations.
func TestStagedSuiteParity(t *testing.T) {
	cases := map[string][]core.Config{
		"tableI":   core.TableIConfigs(),
		"tableIII": {core.FullCap(10), core.FullCap(20), core.FullCap(50), core.FullCap(100)},
	}
	for name, cfgs := range cases {
		opts := quickOpts()
		want := referenceSuite(t, cfgs, opts)
		opts.Workers = 4
		opts.BenchCache = suite.NewCache()
		opts.RewriteCache = core.NewRewriteCache()
		got, err := RunSuite(context.Background(), cfgs, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Run the staged path twice: the second pass is served from warm
		// caches and must still match.
		again, err := RunSuite(context.Background(), cfgs, opts)
		if err != nil {
			t.Fatalf("%s (warm): %v", name, err)
		}
		for _, staged := range []*SuiteResult{got, again} {
			for b := range want.Benchmarks {
				if want.Benchmarks[b] != staged.Benchmarks[b] {
					t.Fatalf("%s: benchmark info %d differs", name, b)
				}
				for c := range cfgs {
					ra, rb := want.Reports[b][c], staged.Reports[b][c]
					if ra.Rewrite != rb.Rewrite || ra.Writes != rb.Writes {
						t.Fatalf("%s: stats diverge at [%d][%d]", name, b, c)
					}
					if !slices.Equal(ra.Result.WriteCounts, rb.Result.WriteCounts) {
						t.Fatalf("%s: write counts diverge at [%d][%d]", name, b, c)
					}
				}
			}
			var ga, gb *Grid
			if name == "tableIII" {
				da, err := TableIII(want)
				if err != nil {
					t.Fatal(err)
				}
				db, err := TableIII(staged)
				if err != nil {
					t.Fatal(err)
				}
				ga, gb = da.Grid(), db.Grid()
			} else {
				da, err := TableI(want)
				if err != nil {
					t.Fatal(err)
				}
				db, err := TableI(staged)
				if err != nil {
					t.Fatal(err)
				}
				ga, gb = da.Grid(), db.Grid()
			}
			if ga.CSV() != gb.CSV() || ga.Text() != gb.Text() {
				t.Fatalf("%s: staged run rendered a different table", name)
			}
		}
	}
}

// TestRunSuitePipelineOncePerBenchmark asserts, by counting first-cycle
// rewrite events, that a Table I suite run starts each distinct rewriting
// pipeline exactly once per benchmark — two rewrites, not four.
func TestRunSuitePipelineOncePerBenchmark(t *testing.T) {
	opts := quickOpts()
	opts.Workers = 1
	var mu sync.Mutex
	starts := map[string]map[string]int{} // function -> pipeline -> count
	opts.Progress = func(ev progress.Event) {
		c, ok := ev.(progress.RewriteCycle)
		if !ok || c.Cycle != 1 {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if starts[c.Function] == nil {
			starts[c.Function] = map[string]int{}
		}
		starts[c.Function][c.Config]++
	}
	if _, err := RunSuite(context.Background(), core.TableIConfigs(), opts); err != nil {
		t.Fatal(err)
	}
	for _, bench := range opts.Benchmarks {
		got := starts[bench]
		if len(got) != 2 || got["algorithm1"] != 1 || got["algorithm2"] != 1 {
			t.Fatalf("%s: rewrite starts = %v, want exactly one per distinct pipeline", bench, got)
		}
	}
}

// TestRunSuiteEmitsCompileEvents checks the per-configuration compile
// events: one start/done pair per benchmark × configuration, with #I
// populated on success.
func TestRunSuiteEmitsCompileEvents(t *testing.T) {
	opts := quickOpts()
	opts.Workers = 1
	var mu sync.Mutex
	startN, doneN := 0, 0
	opts.Progress = func(ev progress.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev := ev.(type) {
		case progress.CompileStart:
			startN++
		case progress.CompileDone:
			doneN++
			if ev.Err != nil || ev.Instructions == 0 || ev.RRAMs == 0 {
				t.Errorf("compile done for %s/%s incomplete: %+v", ev.Function, ev.Config, ev)
			}
		}
	}
	if _, err := RunSuite(context.Background(), core.TableIConfigs(), opts); err != nil {
		t.Fatal(err)
	}
	want := len(opts.Benchmarks) * 5
	if startN != want || doneN != want {
		t.Fatalf("compile events: %d starts, %d dones, want %d each", startN, doneN, want)
	}
}

// TestTableCost pins the suite's cost columns: a priced run renders
// energy/latency/lifetime per configuration, the CSV is byte-identical
// across a cold and a cache-warm repeat, and an unpriced run is rejected
// with a pointer at Options.CostModel.
func TestTableCost(t *testing.T) {
	opts := quickOpts()
	opts.BenchCache = suite.NewCache()
	opts.RewriteCache = core.NewRewriteCache()
	opts.CostModel = cost.Default()
	sr, err := RunSuite(context.Background(), core.TableIConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := TableCost(sr)
	if err != nil {
		t.Fatal(err)
	}
	if d.Model != "default" {
		t.Fatalf("model = %q", d.Model)
	}
	g := d.Grid()
	for _, want := range []string{"naive energy(pJ)", "full latency", "full lifetime"} {
		if !slices.Contains(g.Columns, want) {
			t.Fatalf("cost table missing column %q: %v", want, g.Columns)
		}
	}
	csv := g.CSV()
	if !strings.Contains(csv, "AVG") {
		t.Fatalf("cost CSV missing AVG row:\n%s", csv)
	}
	for b := range d.Benchmarks {
		for c := range d.ConfigNames {
			cell := d.Cells[b][c]
			if cell.EnergyPJ <= 0 || cell.LatencyCycles == 0 || cell.LifetimeRuns == 0 {
				t.Fatalf("degenerate cost cell [%d][%d]: %+v", b, c, cell)
			}
		}
	}

	// Warm repeat through both in-memory caches: byte-identical CSV.
	again, err := RunSuite(context.Background(), core.TableIConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := TableCost(again)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Grid().CSV(); got != csv {
		t.Fatalf("cache-warm cost CSV diverged:\n%s\nvs\n%s", got, csv)
	}

	// Unpriced runs cannot render a cost table.
	unpriced := quickOpts()
	srBad, err := RunSuite(context.Background(), core.TableIConfigs(), unpriced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableCost(srBad); err == nil || !strings.Contains(err.Error(), "CostModel") {
		t.Fatalf("unpriced suite must be rejected with a CostModel hint, got %v", err)
	}
}
