package exec

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"

	"plim/internal/cost"
	"plim/internal/isa"
	"plim/internal/rram"
	"plim/internal/trace"
)

// op is one flattened RM3 instruction: state-slice indices for both source
// operands and the destination. Constant operands point at the two pseudo
// cells appended after the program's address space, so the execution loop
// has no operand-kind branches.
type op struct {
	a, b, z uint32
}

// Plan is a compiled program lowered to the bit-sliced execution form. A
// Plan is immutable after Compile and safe for concurrent Run calls; engines
// cache Plans keyed by Program.Fingerprint.
type Plan struct {
	src      *isa.Program
	ops      []op
	numCells int
	// staticWrites is the full-program per-cell write count. Straight-line
	// programs make it exact and data-independent, which is what lets a
	// batch run account wear without per-lane device state.
	staticWrites []uint64
}

// Compile validates and lowers a program for bit-sliced execution.
func Compile(p *isa.Program) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := int(p.NumCells)
	pl := &Plan{
		src:          p,
		ops:          make([]op, len(p.Insts)),
		numCells:     n,
		staticWrites: p.StaticWriteCounts(),
	}
	const0, const1 := uint32(n), uint32(n+1)
	operand := func(o isa.Operand) uint32 {
		switch o.Kind {
		case isa.OpConst0:
			return const0
		case isa.OpConst1:
			return const1
		default:
			return o.Addr
		}
	}
	for i, ins := range p.Insts {
		pl.ops[i] = op{a: operand(ins.A), b: operand(ins.B), z: ins.Z}
	}
	return pl, nil
}

// Program returns the source program.
func (pl *Plan) Program() *isa.Program { return pl.src }

// NumInputs reports the program's primary-input count.
func (pl *Plan) NumInputs() int { return len(pl.src.PICells) }

// NumOutputs reports the program's primary-output count.
func (pl *Plan) NumOutputs() int { return len(pl.src.POs) }

// MemSize estimates the plan's memory footprint in bytes (the cost charged
// against engine cache budgets).
func (pl *Plan) MemSize() int {
	return 128 + len(pl.ops)*12 + len(pl.staticWrites)*8
}

// faultIndex returns the index of the first instruction a per-device write
// budget of endurance would refuse (the scalar interpreter's failure point),
// or -1 when the whole program fits. The scan mirrors rram.Device.write:
// the write that would exceed the budget fails before being counted.
// Endurance failure is data-independent, so every lane of a batch faults at
// the same instruction.
func (pl *Plan) faultIndex(endurance uint64) int {
	if endurance == 0 {
		return -1
	}
	writes := make([]uint64, pl.numCells)
	for i, o := range pl.ops {
		if writes[o.z] >= endurance {
			return i
		}
		writes[o.z]++
	}
	return -1
}

// Options configures a batch run.
type Options struct {
	// Endurance is the per-device write budget (0 = unlimited); the batch
	// faults at exactly the instruction where the scalar interpreter's
	// crossbar would return rram.ErrWornOut.
	Endurance uint64
	// OnChunk, when non-nil, is invoked after each 64-lane chunk completes
	// (done in 1..total). It runs on the calling goroutine.
	OnChunk func(done, total int)
	// CostModel, when non-nil, prices the batch: Result.Cost aggregates the
	// executed instructions (the full program, or the prefix before an
	// endurance fault) over every lane.
	CostModel *cost.Model
}

// Result is the outcome of executing a batch.
type Result struct {
	// Outputs holds one primary-output vector per input vector. It is nil
	// when the run faulted on a worn-out device.
	Outputs *Batch
	// Writes and Switches are per-cell wear counts summed over all lanes;
	// each lane models a fresh crossbar, exactly like calling isa.Execute
	// once per vector.
	Writes   []uint64
	Switches []uint64
	// Vectors is the batch size the wear counts aggregate over.
	Vectors int
	// Cost prices the run under Options.CostModel (nil without one):
	// energy, latency and wear aggregate over all lanes of the executed
	// instructions; LifetimeRuns stays the per-run estimate. On an
	// endurance fault only the executed prefix is charged — writes that
	// never happened cost nothing.
	Cost *cost.Cost
}

// FaultError reports an endurance fault: the instruction whose destination
// device was worn out. It wraps rram.ErrWornOut and mirrors the scalar
// interpreter's failure point exactly.
type FaultError struct {
	Inst int
	Ins  isa.Instruction
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("exec: inst %d (%s): %s", e.Inst, e.Ins, rram.ErrWornOut)
}

func (e *FaultError) Unwrap() error { return rram.ErrWornOut }

// Run executes the batch with default options.
func (pl *Plan) Run(b *Batch) (*Result, error) {
	return pl.RunContext(context.Background(), b, Options{})
}

// prepare validates b against the plan and resolves the endurance prefix:
// the instructions to execute and the faulting instruction index (-1 when
// the whole program fits the budget).
func (pl *Plan) prepare(b *Batch, endurance uint64) (run []op, faultAt int, err error) {
	if b.Lines() != pl.NumInputs() {
		return nil, 0, fmt.Errorf("exec: got %d input lines, want %d", b.Lines(), pl.NumInputs())
	}
	run = pl.ops
	faultAt = pl.faultIndex(endurance)
	if faultAt >= 0 {
		run = pl.ops[:faultAt]
	}
	return run, faultAt, nil
}

// runRange executes the chunk range [lo, hi) of b: per-chunk crossbar
// state is rebuilt from scratch, switch counts accumulate into switches
// (len numCells) and, when writeOutputs is set, primary-output words land
// in outputs at the chunk's column. Disjoint ranges touch disjoint output
// words and private switch slices, which is what makes ranges safe to run
// as parallel scheduler tasks; summing the per-range switch partials in
// range order is bit-identical to one sequential pass (integer sums are
// associative). onChunk, when non-nil, observes each completed chunk
// index. Cancellation is honoured between chunks.
func (pl *Plan) runRange(ctx context.Context, b *Batch, run []op, writeOutputs bool, switches []uint64, outputs *Batch, lo, hi int, onChunk func(chunk int)) error {
	state := make([]uint64, pl.numCells+2)
	for c := lo; c < hi; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// One span per 64-lane chunk, annotated with its lane occupancy —
		// a zero Handle (all no-ops, no allocation) when ctx carries no
		// trace, which keeps RunContext's allocs/op pin intact.
		sp := trace.StartNoCtx(ctx, "exec_chunk", pl.src.Name)
		for i := range state[:pl.numCells] {
			state[i] = 0
		}
		state[pl.numCells] = 0
		state[pl.numCells+1] = ^uint64(0)
		for i, cell := range pl.src.PICells {
			state[cell] = b.Word(i, c)
		}
		mask := b.ActiveMask(c)
		for _, o := range run {
			a, nb, z := state[o.a], ^state[o.b], state[o.z]
			r := a&z | nb&z | a&nb
			switches[o.z] += uint64(bits.OnesCount64((z ^ r) & mask))
			state[o.z] = r
		}
		if writeOutputs {
			for i, po := range pl.src.POs {
				w := state[po.Addr]
				if po.Neg {
					w = ^w
				}
				outputs.SetWord(i, c, w)
			}
		}
		if sp.Traced() {
			sp.Attr("chunk", strconv.Itoa(c))
			sp.Attr("lanes", strconv.Itoa(bits.OnesCount64(mask)))
			sp.End()
		}
		if onChunk != nil {
			onChunk(c)
		}
	}
	return nil
}

// finalize assembles a Result from the aggregate switch counts of a full
// run. Write pulses are data-independent: each executed instruction pulses
// its destination once in every lane, so aggregate counts are the static
// per-cell counts of the executed prefix times the batch size — and the
// batch cost is likewise the executed prefix's per-run cost scaled by the
// lane count, which is what makes batched cost ÷ lanes equal the static
// cost exactly.
func (pl *Plan) finalize(b *Batch, run []op, faultAt int, switches []uint64, outputs *Batch, opts Options) (*Result, error) {
	res := &Result{
		Writes:   make([]uint64, pl.numCells),
		Switches: switches,
		Vectors:  b.Len(),
	}
	n := uint64(b.Len())
	if m := opts.CostModel; m != nil {
		// run is always a prefix of ops, which map 1:1 onto src.Insts.
		per := m.Price(pl.src.Insts[:len(run)], pl.numCells)
		c := m.Scale(per, n)
		res.Cost = &c
	}
	if faultAt < 0 || n == 0 {
		// An empty batch executes nothing, so even a program that would
		// fault has no lane to fault in.
		for z, cnt := range pl.staticWrites {
			res.Writes[z] = cnt * n
		}
		res.Outputs = outputs
		return res, nil
	}
	for _, o := range run {
		res.Writes[o.z] += n
	}
	return res, &FaultError{Inst: faultAt, Ins: pl.src.Insts[faultAt]}
}

// RunContext executes every vector of b through the program, 64 lanes per
// word column, and returns outputs plus aggregate wear. Cancellation is
// honoured between chunks. On an endurance fault the prefix before the
// failing instruction still ages every device (Result carries the partial
// wear) and the error is a *FaultError wrapping rram.ErrWornOut.
func (pl *Plan) RunContext(ctx context.Context, b *Batch, opts Options) (*Result, error) {
	run, faultAt, err := pl.prepare(b, opts.Endurance)
	if err != nil {
		return nil, err
	}
	switches := make([]uint64, pl.numCells)
	outputs := NewBatch(pl.NumOutputs(), b.Len())
	chunks := b.Chunks()
	var onChunk func(int)
	if opts.OnChunk != nil {
		onChunk = func(c int) { opts.OnChunk(c+1, chunks) }
	}
	if err := pl.runRange(ctx, b, run, faultAt < 0, switches, outputs, 0, chunks, onChunk); err != nil {
		return nil, err
	}
	return pl.finalize(b, run, faultAt, switches, outputs, opts)
}

// Execute compiles and runs in one call — the convenience entry point for
// one-shot callers; engines should Compile once and reuse the Plan.
func Execute(ctx context.Context, p *isa.Program, b *Batch, opts Options) (*Result, error) {
	pl, err := Compile(p)
	if err != nil {
		return nil, err
	}
	return pl.RunContext(ctx, b, opts)
}
