package verify

import (
	"fmt"
	"io"

	"plim/internal/stats"
)

// RenderOptions configures the textual report shared by cmd/plimcheck
// and migstat -verify.
type RenderOptions struct {
	// Endurance, when non-zero, adds a lifetime estimate
	// (endurance / hottest cell's static writes).
	Endurance uint64
	// Verbose lists the full per-cell write histogram.
	Verbose bool
}

// Render writes the human-readable verification report.
func (r *Report) Render(w io.Writer, opts RenderOptions) {
	fmt.Fprintf(w, "program %s  (fingerprint %016x)\n", r.name(), r.Fingerprint)
	fmt.Fprintf(w, "  instructions %d   cells %d (%d written)\n", r.Instructions, r.Cells, r.CellsWritten)
	fmt.Fprintf(w, "  writes: total %d   max/cell %d", r.TotalWrites, r.MaxCellWrites)
	if g := stats.Gini(r.WriteCounts); r.TotalWrites > 0 {
		fmt.Fprintf(w, "   gini %.3f", g)
	}
	fmt.Fprintln(w)
	if opts.Endurance > 0 {
		life := stats.Lifetime(r.WriteCounts, opts.Endurance)
		fmt.Fprintf(w, "  lifetime @ endurance %d: %s runs\n", opts.Endurance, stats.FormatLifetime(life))
	}
	if c := r.Cost; c != nil {
		fmt.Fprintf(w, "  cost (%s): %d resets + %d sets + %d rm3s\n", c.Model, c.Resets, c.Sets, c.RM3s)
		fmt.Fprintf(w, "    energy %.2f pJ   latency %d cycles   wear %d (max/cell %d)   lifetime %s runs\n",
			c.EnergyPJ, c.LatencyCycles, c.TotalWear, c.MaxCellWear, stats.FormatLifetime(c.LifetimeRuns))
	}
	if opts.Verbose {
		for c, n := range r.WriteCounts {
			if n > 0 {
				fmt.Fprintf(w, "    cell %4d  %d writes\n", c, n)
			}
		}
	}
	switch {
	case len(r.DeadWrites) == 0:
		fmt.Fprintln(w, "  dead writes: none")
	default:
		fmt.Fprintf(w, "  dead writes: %d (wasted endurance)\n", len(r.DeadWrites))
		for _, v := range r.DeadWrites {
			fmt.Fprintf(w, "    %s\n", v)
		}
	}
	switch {
	case r.OK():
		fmt.Fprintln(w, "  verify: OK")
	default:
		fmt.Fprintf(w, "  verify: FAIL (%d violations)\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
	}
}
