// Package hdl is a small word-level hardware construction layer over MIGs.
// It provides the building blocks — adders with majority carries, muxes,
// shifters, comparators, multipliers, dividers, encoders, CORDIC — from
// which internal/suite assembles the paper's 18 benchmark circuits.
//
// Vectors are little-endian: Vec[0] is the least significant bit.
package hdl

import (
	"fmt"

	"plim/internal/mig"
)

// Vec is a bit vector of MIG signals, LSB first.
type Vec []mig.Signal

// Builder wraps an MIG under construction.
type Builder struct {
	M *mig.MIG
	// Netlist selects netlist-style construction: logic is expressed with
	// AND/OR/XOR decompositions (the shape in which RTL netlists such as
	// the EPFL benchmarks arrive), leaving genuine slack for majority
	// rewriting to recover. When false the builder emits the compact native
	// majority forms directly (e.g. the 3-node full adder).
	Netlist bool
}

// New returns a builder over a fresh MIG using native majority forms.
func New(name string) *Builder { return &Builder{M: mig.New(name)} }

// NewNetlist returns a builder that mimics unoptimized RTL netlists.
func NewNetlist(name string) *Builder { return &Builder{M: mig.New(name), Netlist: true} }

// Input declares a width-bit primary input named name[0..width-1].
func (b *Builder) Input(name string, width int) Vec {
	v := make(Vec, width)
	for i := range v {
		v[i] = b.M.AddPI(fmt.Sprintf("%s[%d]", name, i))
	}
	return v
}

// InputBit declares a single-bit primary input.
func (b *Builder) InputBit(name string) mig.Signal { return b.M.AddPI(name) }

// Output declares the bits of v as primary outputs named name[i].
func (b *Builder) Output(name string, v Vec) {
	for i, s := range v {
		b.M.AddPO(s, fmt.Sprintf("%s[%d]", name, i))
	}
}

// OutputBit declares a single-bit primary output.
func (b *Builder) OutputBit(name string, s mig.Signal) { b.M.AddPO(s, name) }

// Const builds a width-bit constant vector holding val.
func (b *Builder) Const(val uint64, width int) Vec {
	v := make(Vec, width)
	for i := range v {
		if val>>uint(i)&1 == 1 {
			v[i] = mig.Const1
		} else {
			v[i] = mig.Const0
		}
	}
	return v
}

// Repeat builds a vector of n copies of s.
func Repeat(s mig.Signal, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = s
	}
	return v
}

// Concat joins vectors LSB-first: the first argument provides the low bits.
func Concat(vs ...Vec) Vec {
	var out Vec
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// ZeroExt extends v to width bits with zeros (or truncates).
func ZeroExt(v Vec, width int) Vec {
	out := make(Vec, width)
	for i := range out {
		if i < len(v) {
			out[i] = v[i]
		} else {
			out[i] = mig.Const0
		}
	}
	return out
}

// SignExt extends v to width bits with its MSB (or truncates).
func SignExt(v Vec, width int) Vec {
	out := make(Vec, width)
	msb := mig.Const0
	if len(v) > 0 {
		msb = v[len(v)-1]
	}
	for i := range out {
		if i < len(v) {
			out[i] = v[i]
		} else {
			out[i] = msb
		}
	}
	return out
}

// NotV complements every bit.
func NotV(v Vec) Vec {
	out := make(Vec, len(v))
	for i, s := range v {
		out[i] = s.Not()
	}
	return out
}

// AndV, OrV and XorV apply bitwise operations; operands must have equal
// widths.
func (b *Builder) AndV(x, y Vec) Vec { return b.zipWith(x, y, b.M.And) }

// OrV is the bitwise OR of equal-width vectors.
func (b *Builder) OrV(x, y Vec) Vec { return b.zipWith(x, y, b.M.Or) }

// XorV is the bitwise XOR of equal-width vectors.
func (b *Builder) XorV(x, y Vec) Vec { return b.zipWith(x, y, b.M.Xor) }

func (b *Builder) zipWith(x, y Vec, f func(a, c mig.Signal) mig.Signal) Vec {
	if len(x) != len(y) {
		panic(fmt.Sprintf("hdl: width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Vec, len(x))
	for i := range x {
		out[i] = f(x[i], y[i])
	}
	return out
}

// AndBit masks every bit of v with s.
func (b *Builder) AndBit(v Vec, s mig.Signal) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = b.M.And(v[i], s)
	}
	return out
}

// MuxV selects t when sel is 1, else f.
func (b *Builder) MuxV(sel mig.Signal, t, f Vec) Vec {
	if len(t) != len(f) {
		panic(fmt.Sprintf("hdl: mux width mismatch %d vs %d", len(t), len(f)))
	}
	out := make(Vec, len(t))
	for i := range t {
		out[i] = b.M.Mux(sel, t[i], f[i])
	}
	return out
}

// ReduceOr returns the OR of all bits (0 for the empty vector).
func (b *Builder) ReduceOr(v Vec) mig.Signal { return b.reduce(v, b.M.Or, mig.Const0) }

// ReduceAnd returns the AND of all bits (1 for the empty vector).
func (b *Builder) ReduceAnd(v Vec) mig.Signal { return b.reduce(v, b.M.And, mig.Const1) }

func (b *Builder) reduce(v Vec, f func(a, c mig.Signal) mig.Signal, empty mig.Signal) mig.Signal {
	if len(v) == 0 {
		return empty
	}
	// Balanced tree keeps depth logarithmic.
	for len(v) > 1 {
		next := make(Vec, 0, (len(v)+1)/2)
		for i := 0; i+1 < len(v); i += 2 {
			next = append(next, f(v[i], v[i+1]))
		}
		if len(v)%2 == 1 {
			next = append(next, v[len(v)-1])
		}
		v = next
	}
	return v[0]
}

// ShlConst shifts left by k, filling with zeros (width preserved).
func ShlConst(v Vec, k int) Vec {
	out := make(Vec, len(v))
	for i := range out {
		if i >= k {
			out[i] = v[i-k]
		} else {
			out[i] = mig.Const0
		}
	}
	return out
}

// ShrConst shifts right by k, filling with fill (width preserved).
func ShrConst(v Vec, k int, fill mig.Signal) Vec {
	out := make(Vec, len(v))
	for i := range out {
		if i+k < len(v) {
			out[i] = v[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// RotlConst rotates left by k.
func RotlConst(v Vec, k int) Vec {
	n := len(v)
	if n == 0 {
		return v
	}
	k = ((k % n) + n) % n
	out := make(Vec, n)
	for i := range out {
		out[i] = v[(i-k+n)%n]
	}
	return out
}

// BarrelRotl rotates v left by the dynamic amount sh (log-depth mux
// layers). len(v) should be a power of two for a clean modulo semantics.
func (b *Builder) BarrelRotl(v Vec, sh Vec) Vec {
	out := v
	for j, s := range sh {
		out = b.MuxV(s, RotlConst(out, 1<<uint(j)), out)
	}
	return out
}

// BarrelShl shifts v left by sh, filling with zeros.
func (b *Builder) BarrelShl(v Vec, sh Vec) Vec {
	out := v
	for j, s := range sh {
		out = b.MuxV(s, ShlConst(out, 1<<uint(j)), out)
	}
	return out
}

// BarrelShr shifts v right by sh, filling with zeros.
func (b *Builder) BarrelShr(v Vec, sh Vec) Vec {
	out := v
	for j, s := range sh {
		out = b.MuxV(s, ShrConst(out, 1<<uint(j), mig.Const0), out)
	}
	return out
}

// EqV tests equality of equal-width vectors.
func (b *Builder) EqV(x, y Vec) mig.Signal {
	return b.ReduceAnd(NotV(b.XorV(x, y)))
}
