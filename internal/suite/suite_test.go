package suite

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"plim/internal/diskcache"
	"plim/internal/mig"
)

func TestRegistryShapesMatchPaper(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("paper evaluates 18 benchmarks, registry has %d", len(names))
	}
	// PI/PO counts from the paper's Table I.
	want := map[string][2]int{
		"adder": {256, 129}, "bar": {135, 128}, "div": {128, 128},
		"log2": {32, 32}, "max": {512, 130}, "multiplier": {128, 128},
		"sin": {24, 25}, "sqrt": {128, 64}, "square": {64, 128},
		"cavlc": {10, 11}, "ctrl": {7, 26}, "dec": {8, 256},
		"i2c": {147, 142}, "int2float": {11, 7}, "mem_ctrl": {1204, 1231},
		"priority": {128, 8}, "router": {60, 30}, "voter": {1001, 1},
	}
	for name, pipo := range want {
		info, ok := Get(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		if info.PI != pipo[0] || info.PO != pipo[1] {
			t.Errorf("%s: registry says %d/%d, paper says %d/%d",
				name, info.PI, info.PO, pipo[0], pipo[1])
		}
	}
	if _, ok := Get("nonesuch"); ok {
		t.Fatal("Get must reject unknown names")
	}
	if _, err := Build("nonesuch"); err == nil {
		t.Fatal("Build must reject unknown names")
	}
	if _, err := BuildScaled("adder", 0); err == nil {
		t.Fatal("BuildScaled must reject shrink < 1")
	}
}

// TestAllBenchmarksBuildAtPaperScale builds every benchmark at full size and
// checks PI/PO counts, validity, and that all majority nodes are live.
func TestAllBenchmarksBuildAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale build in short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			info, _ := Get(name)
			m, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			if m.NumPIs() != info.PI || m.NumPOs() != info.PO {
				t.Fatalf("%s: built %d/%d, paper wants %d/%d",
					name, m.NumPIs(), m.NumPOs(), info.PI, info.PO)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			live := m.LiveNodes()
			m.ForEachMaj(func(n mig.NodeID, _ [3]mig.Signal) {
				if !live[n] {
					t.Fatalf("%s: node %d is dead after generation", name, n)
				}
			})
			if m.NumMaj() == 0 {
				t.Fatalf("%s: empty graph", name)
			}
		})
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	for _, name := range []string{"ctrl", "router", "cavlc", "dec", "int2float"} {
		a, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumMaj() != b.NumMaj() || a.NumPOs() != b.NumPOs() {
			t.Fatalf("%s: nondeterministic shape", name)
		}
		for i := 0; i < a.NumPOs(); i++ {
			if a.PO(i) != b.PO(i) {
				t.Fatalf("%s: PO %d differs across builds", name, i)
			}
		}
	}
}

// evalBits drives an MIG with one bit per PI and returns PO bits.
func evalBits(m *mig.MIG, in []bool) []bool {
	words := make([]uint64, len(in))
	for i, v := range in {
		if v {
			words[i] = 1
		}
	}
	out := m.Eval(words)
	res := make([]bool, len(out))
	for i, w := range out {
		res[i] = w&1 == 1
	}
	return res
}

func randBig(rng *rand.Rand, bits int) *big.Int {
	v := new(big.Int)
	for i := 0; i < bits; i++ {
		if rng.Intn(2) == 1 {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

func bitsOf(v *big.Int, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v.Bit(i) == 1
	}
	return out
}

func toBig(bits []bool) *big.Int {
	v := new(big.Int)
	for i, b := range bits {
		if b {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

func TestAdderFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("adder")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		a := randBig(rng, 128)
		b := randBig(rng, 128)
		in := append(bitsOf(a, 128), bitsOf(b, 128)...)
		out := toBig(evalBits(m, in))
		want := new(big.Int).Add(a, b)
		if out.Cmp(want) != 0 {
			t.Fatalf("adder: %v + %v = %v, want %v", a, b, out, want)
		}
	}
}

func TestMultiplierFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("multiplier")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		a := randBig(rng, 64)
		b := randBig(rng, 64)
		in := append(bitsOf(a, 64), bitsOf(b, 64)...)
		out := toBig(evalBits(m, in))
		want := new(big.Int).Mul(a, b)
		if out.Cmp(want) != 0 {
			t.Fatalf("multiplier: %v × %v = %v, want %v", a, b, out, want)
		}
	}
}

func TestDivFunctionalAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large divider in short mode")
	}
	m, err := Build("div")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		a := randBig(rng, 64)
		b := randBig(rng, 40) // nonzero with overwhelming probability
		if b.Sign() == 0 {
			b.SetInt64(7)
		}
		in := append(bitsOf(a, 64), bitsOf(b, 64)...)
		out := evalBits(m, in)
		q := toBig(out[:64])
		r := toBig(out[64:])
		wantQ := new(big.Int).Quo(a, b)
		wantR := new(big.Int).Rem(a, b)
		if q.Cmp(wantQ) != 0 || r.Cmp(wantR) != 0 {
			t.Fatalf("div: %v / %v = (%v, %v), want (%v, %v)", a, b, q, r, wantQ, wantR)
		}
	}
}

func TestSqrtFunctionalAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large square root in short mode")
	}
	m, err := Build("sqrt")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3; trial++ {
		x := randBig(rng, 128)
		out := toBig(evalBits(m, bitsOf(x, 128)))
		want := new(big.Int).Sqrt(x)
		if out.Cmp(want) != 0 {
			t.Fatalf("sqrt(%v) = %v, want %v", x, out, want)
		}
	}
}

func TestSquareFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("square")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		x := randBig(rng, 64)
		out := toBig(evalBits(m, bitsOf(x, 64)))
		want := new(big.Int).Mul(x, x)
		if out.Cmp(want) != 0 {
			t.Fatalf("square(%v) = %v, want %v", x, out, want)
		}
	}
}

func TestBarFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("bar")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		x := randBig(rng, 128)
		sh := rng.Intn(128)
		in := append(bitsOf(x, 128), bitsOf(big.NewInt(int64(sh)), 7)...)
		out := toBig(evalBits(m, in))
		want := new(big.Int).Lsh(x, uint(sh))
		hi := new(big.Int).Rsh(want, 128)
		want.SetBit(want, 255, 0) // avoid aliasing; mask below
		mask := new(big.Int).Lsh(big.NewInt(1), 128)
		mask.Sub(mask, big.NewInt(1))
		want.And(want, mask)
		want.Or(want, hi)
		if out.Cmp(want) != 0 {
			t.Fatalf("bar: rotl(%v, %d) = %v, want %v", x, sh, out, want)
		}
	}
}

func TestMaxFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("max")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var vals [4]*big.Int
		var in []bool
		for i := range vals {
			vals[i] = randBig(rng, 128)
			in = append(in, bitsOf(vals[i], 128)...)
		}
		out := evalBits(m, in)
		got := toBig(out[:128])
		gotIdx := 0
		if out[128] {
			gotIdx |= 1
		}
		if out[129] {
			gotIdx |= 2
		}
		best := 0
		for i := 1; i < 4; i++ {
			if vals[i].Cmp(vals[best]) > 0 {
				best = i
			}
		}
		if got.Cmp(vals[best]) != 0 {
			t.Fatalf("max value wrong: %v, want %v", got, vals[best])
		}
		if vals[gotIdx].Cmp(vals[best]) != 0 {
			t.Fatalf("max index %d does not hold the maximum", gotIdx)
		}
	}
}

func TestDecFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("dec")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 5, 127, 200, 255} {
		out := evalBits(m, bitsOf(big.NewInt(int64(v)), 8))
		for i, bit := range out {
			if bit != (i == v) {
				t.Fatalf("dec(%d): output %d = %v", v, i, bit)
			}
		}
	}
}

func TestPriorityFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("priority")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		x := randBig(rng, 128)
		out := evalBits(m, bitsOf(x, 128))
		idx := int(toBig(out[:7]).Int64())
		valid := out[7]
		if x.Sign() == 0 {
			if valid {
				t.Fatal("priority: valid on zero input")
			}
			continue
		}
		if !valid || idx != x.BitLen()-1 {
			t.Fatalf("priority(%v) = %d (valid %v), want %d", x, idx, valid, x.BitLen()-1)
		}
	}
}

func TestVoterFunctionalAtPaperScale(t *testing.T) {
	m, err := Build("voter")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		in := make([]bool, 1001)
		ones := 0
		for i := range in {
			in[i] = rng.Intn(2) == 1
			if in[i] {
				ones++
			}
		}
		out := evalBits(m, in)
		if out[0] != (ones >= 501) {
			t.Fatalf("voter with %d ones = %v", ones, out[0])
		}
	}
	// Boundary cases.
	in := make([]bool, 1001)
	for i := 0; i < 500; i++ {
		in[i] = true
	}
	if evalBits(m, in)[0] {
		t.Fatal("500 of 1001 must not be a majority")
	}
	in[500] = true
	if !evalBits(m, in)[0] {
		t.Fatal("501 of 1001 must be a majority")
	}
}

func TestScaledBuildsAreSmaller(t *testing.T) {
	for _, name := range []string{"adder", "div", "mem_ctrl", "voter"} {
		full, err := BuildScaled(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		paper, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if full.NumMaj() >= paper.NumMaj() {
			t.Fatalf("%s: shrink 4 has %d nodes, paper scale %d", name, full.NumMaj(), paper.NumMaj())
		}
	}
}

func TestSyntheticBenchmarksUseEveryInput(t *testing.T) {
	for _, name := range []string{"cavlc", "ctrl", "i2c", "router"} {
		m, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		fo := m.FanoutCounts()
		for i := 0; i < m.NumPIs(); i++ {
			if fo[m.PINode(i)] == 0 {
				t.Fatalf("%s: input %d unused", name, i)
			}
		}
	}
}

// TestCacheSharesDeterministicBuilds checks the benchmark cache: repeated
// builds return one shared instance, structurally identical to a fresh
// build, and distinct (name, shrink) keys get distinct entries.
func TestCacheSharesDeterministicBuilds(t *testing.T) {
	c := NewCache()
	a, err := c.BuildScaled("ctrl", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.BuildScaled("ctrl", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache rebuilt instead of sharing")
	}
	fresh, err := BuildScaled("ctrl", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("cached build differs from a fresh build")
	}
	if _, err := c.BuildScaled("ctrl", 2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, err := c.BuildScaled("no-such-benchmark", 1); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if c.Len() != 2 {
		t.Fatal("errors must not be cached")
	}
	// A nil cache is the uncached path.
	var nc *Cache
	if _, err := nc.BuildScaled("ctrl", 4); err != nil {
		t.Fatal(err)
	}
}

// TestCacheConcurrentSingleflight hammers one key concurrently; all
// callers must see the same instance.
func TestCacheConcurrentSingleflight(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	outs := make([]*mig.MIG, 8)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.BuildScaled("router", 2)
			if err != nil {
				t.Error(err)
			}
			outs[i] = m
		}(i)
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Fatal("concurrent callers saw different instances")
		}
	}
}

// buildSize measures a benchmark's estimated byte size with an uncached
// build, so the byte-budget tests can derive budgets that hold exactly the
// entries they intend (generators are deterministic, so a cached build has
// the same size).
func buildSize(t *testing.T, name string, shrink int) int {
	t.Helper()
	m, err := BuildScaled(name, shrink)
	if err != nil {
		t.Fatal(err)
	}
	return m.MemSize()
}

// TestCacheBudgetEvictsLRU checks the size bound: with a byte budget that
// fits either build alone but not both, the least-recently-used build is
// dropped when a second key lands, and the evicted key rebuilds (a fresh
// instance) on the next request while the surviving key keeps its shared
// instance.
func TestCacheBudgetEvictsLRU(t *testing.T) {
	sA, sB := buildSize(t, "ctrl", 8), buildSize(t, "i2c", 8)
	budget := max(sA, sB)
	c := NewCacheWithBudget(budget)
	if c.Budget() != budget {
		t.Fatalf("Budget = %d, want %d", c.Budget(), budget)
	}
	a1, err := c.BuildScaled("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c.BuildScaled("i2c", 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 (budget %d bytes)", c.Len(), budget)
	}
	// "i2c" is the survivor: it must still hit...
	b2, err := c.BuildScaled("i2c", 8)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Fatal("survivor was evicted")
	}
	// ...and "ctrl" was evicted: it rebuilds into a fresh instance.
	a2, err := c.BuildScaled("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a2 == a1 {
		t.Fatal("evicted entry still served the old instance")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after re-adding, want 1", c.Len())
	}
}

// TestCacheBudgetRespectsRecency: touching an entry protects it from the
// next eviction. The byte budget holds "ctrl" plus either of the other two
// builds, but not all three.
func TestCacheBudgetRespectsRecency(t *testing.T) {
	sCtrl, sI2c, sRouter := buildSize(t, "ctrl", 8), buildSize(t, "i2c", 8), buildSize(t, "router", 8)
	c := NewCacheWithBudget(sCtrl + max(sI2c, sRouter))
	a1, err := c.BuildScaled("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildScaled("i2c", 8); err != nil {
		t.Fatal(err)
	}
	// Refresh "ctrl", then insert a third key: "i2c" must be the victim.
	if _, err := c.BuildScaled("ctrl", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildScaled("router", 8); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	a2, err := c.BuildScaled("ctrl", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatal("recently-used entry was evicted instead of the LRU one")
	}
}

// TestCacheDiskTier: a cold Cache over a warm directory serves the
// generator output from disk, fingerprint-identical to a fresh build —
// the property the fingerprint-keyed rewrite cache depends on.
func TestCacheDiskTier(t *testing.T) {
	disk, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildScaled("router", 2)
	if err != nil {
		t.Fatal(err)
	}

	warm := NewCache()
	warm.SetDisk(disk)
	if _, err := warm.BuildScaled("router", 2); err != nil {
		t.Fatal(err)
	}
	if c := disk.Counters(); c.Stores != 1 || c.BenchmarkMisses != 1 {
		t.Fatalf("cold build counters: %+v", c)
	}

	cold := NewCache()
	cold.SetDisk(disk)
	got, err := cold.BuildScaled("router", 2)
	if err != nil {
		t.Fatal(err)
	}
	if c := disk.Counters(); c.BenchmarkHits != 1 {
		t.Fatalf("warm build counters: %+v", c)
	}
	if got.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("disk-served benchmark fingerprint differs from a fresh build")
	}
	mig.MustBeEquivalent(fresh, got, 2, 9)
}
