// Package lint is a small, dependency-free static-analysis framework plus
// the analyzers that encode this repository's invariants. It deliberately
// mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer with a
// name, doc string and Run function producing Diagnostics — but is built on
// the standard library alone (go/ast, go/parser, go/token), because the
// module carries no external dependencies. The analyzers are purely
// syntactic: they parse, they do not type-check, and their heuristics are
// tuned to this codebase (see each analyzer's doc).
//
// Three invariants are enforced:
//
//   - hotpathalloc: no fresh allocations (map construction, growth from a
//     fresh slice, interface boxing, sort/heap calls) in functions reachable
//     from the pinned hot-path roots compile.CompileWith and
//     exec.Plan.RunContext. These paths run per compile / per executed
//     batch and are covered by an allocs/op benchmark gate; a stray map
//     literal in a helper three calls down silently regresses it. The
//     //plim:alloc-ok <reason> line directive acknowledges a deliberate,
//     measured allocation.
//
//   - determinism: no time.Now and no ranging over maps in code that
//     produces stable identities — functions whose names mention
//     Fingerprint/Hash/Key, and everything in codec.go/coalesce.go files.
//     Fingerprints are persisted in the disk cache and compared across
//     processes; map iteration order would make them flap.
//
//   - ctxfirst: exported functions and methods that accept a
//     context.Context take it as the first parameter, per Go convention.
//
// The cmd/plimlint command runs all analyzers over a package tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named check over a set of packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "hotpathalloc").
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the packages and reports findings. Analyzers that need a
	// whole-program view (call graphs) receive every loaded package at once.
	Run func(pkgs []*Package) []Diagnostic
}

// A Package is one parsed (not type-checked) Go package.
type Package struct {
	// Path is the import path ("plim/internal/compile") when known, else the
	// package name.
	Path string
	// Name is the package clause name.
	Name string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all files of all packages loaded together.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPathAlloc, Determinism, CtxFirst}
}

// Load parses the non-test .go files of the package in dir into pkg using
// the shared fset. Test files are excluded: the invariants guard production
// code, and tests allocate freely. Returns nil (no error) for directories
// with no non-test Go files.
func Load(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Name = f.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	if pkg.Path == "" {
		pkg.Path = pkg.Name
	}
	return pkg, nil
}

// LoadTree loads every package under root (recursively), skipping testdata,
// vendor and hidden directories. modulePath, when non-empty, qualifies each
// package's import path as modulePath/relative-dir.
func LoadTree(fset *token.FileSet, root, modulePath string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(dir)
		if dir != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".")) {
			return filepath.SkipDir
		}
		path := ""
		if modulePath != "" {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			path = modulePath
			if rel != "." {
				path = modulePath + "/" + filepath.ToSlash(rel)
			}
		}
		pkg, err := Load(fset, dir, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	return pkgs, err
}

// ModulePath reads the module path from root/go.mod ("" when absent).
func ModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Run executes the analyzers over the packages and returns the findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(pkgs)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// fileImports maps local import names to import paths for one file, so
// syntactic analyzers can tell `time.Now` from a selector on a variable
// that happens to be called time.
func fileImports(f *ast.File) map[string]string {
	m := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

// directiveLines collects the line numbers carrying a //plim:<name> comment
// (the line of the comment itself). A directive suppresses diagnostics on
// its own line and, when it stands alone, on the following line.
func directiveLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+directive) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// suppressed reports whether a diagnostic at pos is covered by a directive
// on the same line or the line directly above.
func suppressed(lines map[int]bool, pos token.Position) bool {
	return lines[pos.Line] || lines[pos.Line-1]
}
