package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). Timestamps
// and durations are microseconds; pid/tid group spans into tracks —
// Perfetto and chrome://tracing both render one row per tid.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each scheduler worker
// becomes one track (tid = worker+1); spans not run by the pool (root
// request span, cache probes on the caller goroutine) land on tid 0.
// Still-open spans are clamped to zero duration.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	evs := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		dur := sp.Dur
		if dur < 0 {
			dur = 0
		}
		args := make(map[string]any, len(sp.Attrs)+2)
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		if sp.QueueWait > 0 {
			args["queue_wait_us"] = float64(sp.QueueWait.Microseconds())
		}
		if sp.Parent >= 0 {
			args["parent"] = fmt.Sprintf("%d:%s", sp.Parent, spans[sp.Parent].Name)
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Kind,
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.Worker + 1,
			Args: args,
		})
	}
	// Chrome sorts internally, but a deterministic (ts, tid) order keeps the
	// exported file stable for tests and diffing.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		return evs[i].Tid < evs[j].Tid
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
