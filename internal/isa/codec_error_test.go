package isa

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// These are the inputs plimcheck and /v1/compile?verify=true accept from
// the outside world: every malformed stream must come back as an error,
// never a panic or an unbounded allocation.

func validBinary(t *testing.T) []byte {
	t.Helper()
	p := &Program{
		Name:     "err-paths",
		NumCells: 4,
		PICells:  []uint32{0, 1},
		POs:      []PORef{{Addr: 3}, {Addr: 0, Neg: true}},
		Insts: []Instruction{
			{A: One, B: Zero, Z: 3},
			{A: Cell(0), B: Cell(1), Z: 3},
			{A: Zero, B: Cell(2), Z: 3},
		},
	}
	// Cell 2 is deliberately unwritten garbage for the verifier; the codec
	// only cares that addresses are in range.
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustFail(t *testing.T, data []byte, why string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked: %v", why, r)
		}
	}()
	if p, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatalf("%s: decoder accepted %d bytes: %+v", why, len(data), p)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	full := validBinary(t)
	for n := 0; n < len(full); n++ {
		mustFail(t, full[:n], "truncated")
	}
	if _, err := ReadBinary(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream must decode: %v", err)
	}
}

// header builds magic+version followed by raw bytes.
func header(rest ...byte) []byte {
	return append([]byte("PLIM\x01"), rest...)
}

func uv(vals ...uint64) []byte {
	var out []byte
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vals {
		out = append(out, buf[:binary.PutUvarint(buf[:], v)]...)
	}
	return out
}

func TestReadBinaryBadHeader(t *testing.T) {
	mustFail(t, []byte("MILP\x01"), "bad magic")
	mustFail(t, []byte("PLIM\x07"), "unsupported version")
}

func TestReadBinaryHugeCounts(t *testing.T) {
	// Each stream claims an astronomically large section and then ends.
	// The decoder must fail on EOF without allocating for the claim.
	mustFail(t, header(uv(1<<40)...), "huge name length")
	// name "" (len 0), cells 4, then a huge PI count.
	mustFail(t, header(uv(0, 4, 1<<50)...), "huge PI count")
	// ... huge PO count.
	mustFail(t, header(uv(0, 4, 0, 1<<50)...), "huge PO count")
	// ... huge instruction count.
	mustFail(t, header(uv(0, 4, 0, 0, 1<<50)...), "huge inst count")
}

func TestReadBinaryOverflow(t *testing.T) {
	// 2^33 cells does not fit the uint32 address space; truncating it
	// would decode a different program.
	mustFail(t, append(header(uv(0, 1<<33)...), uv(0, 0, 0)...), "cell count overflow")
	// PI cell address overflow.
	mustFail(t, append(header(uv(0, 4, 1, 1<<33)...), uv(0, 0)...), "PI address overflow")
	// PO address overflow ((addr<<1|neg) encoding).
	mustFail(t, append(header(uv(0, 4, 0, 1, 1<<34)...), uv(0)...), "PO address overflow")
}

func TestReadBinaryOutOfRangeCells(t *testing.T) {
	// Structurally well-formed, semantically invalid: addresses beyond
	// the declared cell count must be rejected by validation.
	outOfRange := func(mutate func(p *Program)) []byte {
		p := &Program{Name: "", NumCells: 2, PICells: []uint32{0}, POs: []PORef{{Addr: 1}},
			Insts: []Instruction{{A: One, B: Zero, Z: 1}}}
		mutate(p)
		var buf bytes.Buffer
		if err := p.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	mustFail(t, outOfRange(func(p *Program) { p.PICells[0] = 9 }), "PI out of range")
	mustFail(t, outOfRange(func(p *Program) { p.POs[0].Addr = 9 }), "PO out of range")
	mustFail(t, outOfRange(func(p *Program) { p.Insts[0].Z = 9 }), "destination out of range")
	mustFail(t, outOfRange(func(p *Program) { p.Insts[0].A = Cell(9) }), "operand out of range")
	mustFail(t, outOfRange(func(p *Program) { p.PICells = []uint32{0, 0} }), "duplicate PI")
}

func TestReadBinaryBadInstructionFlags(t *testing.T) {
	// kind 3 is not an operand kind; flag bits above the two kind fields
	// are reserved and must not be silently dropped.
	base := uv(0, 2, 0, 0, 1) // name "", 2 cells, no PIs, no POs, 1 inst
	mustFail(t, append(header(base...), 0x03, 0x00), "operand kind 3")
	mustFail(t, append(header(base...), 0x0c, 0x00), "operand kind 3 (B)")
	mustFail(t, append(header(base...), 0x10, 0x00), "reserved flag bits")
}

func TestReadAsmErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": ".plim x\n.cells 1\nFOO\n.end\n",
		"missing end":       ".plim x\n.cells 1\n",
		"bad cells":         ".plim x\n.cells many\n.end\n",
		"cells arity":       ".plim x\n.cells\n.end\n",
		"bad pi token":      ".plim x\n.cells 2\n.pi %0\n.end\n",
		"bad po token":      ".plim x\n.cells 2\n.po @x\n.end\n",
		"malformed rm3":     ".plim x\n.cells 2\nRM3 #0, #1\n.end\n",
		"rm3 arity":         ".plim x\n.cells 2\nRM3 #0 -> @0\n.end\n",
		"bad operand":       ".plim x\n.cells 2\nRM3 #2, #0 -> @0\n.end\n",
		"negated operand":   ".plim x\n.cells 2\nRM3 @1!, #0 -> @0\n.end\n",
		"negated dest":      ".plim x\n.cells 2\nRM3 #0, #1 -> @0!\n.end\n",
		"pi out of range":   ".plim x\n.cells 2\n.pi @5\n.end\n",
		"dest out of range": ".plim x\n.cells 2\nRM3 #0, #1 -> @5\n.end\n",
	}
	for name, src := range cases {
		if p, err := ReadAsm(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted: %+v", name, p)
		}
	}
}
