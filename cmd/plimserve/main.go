// plimserve exposes a shared, long-lived plim.Engine over HTTP/JSON, so
// many clients reuse one warm process (and one cache directory) instead of
// each paying the full rewrite cost in a fresh CLI invocation:
//
//	plimserve -addr :8080 -cache-dir /var/cache/plim
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/compile \
//	     -d '{"benchmark":"adder","config":"full"}'
//	curl -s -N -X POST -H 'Accept: text/event-stream' \
//	     localhost:8080/v1/compile -d '{"benchmark":"div","config":"full"}'
//	curl -s localhost:8080/metrics
//
// The server admits at most -concurrency + -queue in-flight computations
// (beyond that: 429 + Retry-After), coalesces identical in-flight requests
// into one computation, runs every flight's work on the engine's shared
// work-stealing scheduler ordered by request deadline, streams per-request
// progress as server-sent events, and exposes Prometheus metrics. SIGTERM
// (or Ctrl-C) drains gracefully: /healthz flips to 503, in-flight requests
// finish (up to -drain-timeout), then the process exits.
//
// Requests with "trace": true receive a span-per-task execution trace in
// the response (plus a Server-Timing header); -debug-addr starts a second
// listener with net/http/pprof under /debug/pprof/ and the ring of the
// slowest traced flights under /debug/trace/last. Logs are structured
// (log/slog, text format, stderr); -log-level adjusts verbosity.
//
// With -cache-dir (default $PLIM_CACHE_DIR) the persistent cache tier is
// shared with the other CLIs, and a periodic janitor (-cache-gc-interval)
// keeps the directory within -cache-max-age / -cache-max-bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"plim"
	"plim/internal/diskcache"
	"plim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		effort      = flag.Int("effort", plim.DefaultEffort, "MIG rewriting cycles (0 = none)")
		shrink      = flag.Int("shrink", 1, "default benchmark datapath shrink")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker pool (also the default -concurrency)")
		cacheBudget = flag.Int("cache-budget", plim.DefaultCacheBudget, "in-memory cache byte budget per tier")
		cacheDir    = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared with plimc/plimtab/... (default $PLIM_CACHE_DIR; empty = off)")
		costPath = flag.String("cost-model", "",
			"JSON instruction cost model pricing every response's cost block (default: built-in)")

		concurrency = flag.Int("concurrency", 0, "in-flight computations counted as running (0 = -workers)")
		queue       = flag.Int("queue", 0, "in-flight computations beyond -concurrency (0 = 4×concurrency); beyond both: 429")
		reqTimeout  = flag.Duration("timeout", time.Minute, "default per-request deadline (<0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")

		gcInterval = flag.Duration("cache-gc-interval", 0, "disk-cache janitor period (0 = off; needs -cache-dir)")
		gcMaxAge   = flag.Duration("cache-max-age", 0, "janitor: delete disk entries older than this (0 = no age limit)")
		gcMaxBytes = flag.Int64("cache-max-bytes", 0, "janitor: keep the disk cache under this many bytes (0 = no size limit)")

		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		debugAddr    = flag.String("debug-addr", "", "debug listener address serving /debug/pprof/ and /debug/trace/last (empty = off)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		verbose      = flag.Bool("v", false, "log every progress event")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("plimserve: bad -log-level %q (want debug, info, warn or error)", *logLevel))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	engOpts := []plim.Option{
		plim.WithEffort(*effort),
		plim.WithShrink(*shrink),
		plim.WithWorkers(*workers),
		plim.WithCacheBudget(*cacheBudget),
		plim.WithPersistentCache(*cacheDir),
	}
	if *costPath != "" {
		cm, err := plim.LoadCostModel(*costPath)
		if err != nil {
			fatal(err)
		}
		engOpts = append(engOpts, plim.WithCostModel(cm))
	}
	if *verbose {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			logger.Info("progress", "event", plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	srv := server.New(eng, server.Options{
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gcInterval > 0 || *gcMaxAge > 0 || *gcMaxBytes > 0 {
		if *cacheDir == "" {
			fatal(errors.New("plimserve: the cache janitor flags need -cache-dir"))
		}
		if *gcInterval <= 0 {
			// A budget without a period would be a silently-unenforced
			// limit; default to an hourly sweep instead.
			*gcInterval = time.Hour
			logger.Warn("cache janitor: -cache-gc-interval not set, using default", "interval", *gcInterval)
		}
		go janitor(ctx, logger, *cacheDir, *gcInterval, *gcMaxAge, *gcMaxBytes)
	}

	if *debugAddr != "" {
		// The debug listener is separate on purpose: profiles and retained
		// traces stay off the service port, so the main listener can face a
		// load balancer while /debug binds to localhost only.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/trace/last", srv.TraceLastHandler())
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		defer dbgSrv.Close()
		logger.Info("debug listener", "addr", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("plimserve listening",
		"addr", *addr,
		"effort", eng.Effort(),
		"shrink", eng.Shrink(),
		"workers", eng.Workers(),
		"cache_dir", eng.PersistentCacheDir())

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: advertise unhealthiness first so load balancers stop
	// routing here, then let in-flight requests finish.
	logger.Info("plimserve draining", "budget", *drainTimeout)
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("plimserve drain incomplete", "error", err)
		os.Exit(1)
	}
	if s, ok := eng.CacheSummary(); ok {
		// The one-line summary format is shared with the other CLIs (and
		// grepped by CI smoke jobs), so it stays a plain stderr line.
		fmt.Fprintln(os.Stderr, s)
	}
	logger.Info("plimserve stopped")
}

// janitor periodically bounds the shared cache directory. It opens its own
// diskcache handle: GC is pure directory hygiene, and concurrent engine
// reads/writes tolerate deletions by design (a deleted entry is a miss).
func janitor(ctx context.Context, logger *slog.Logger, dir string, interval, maxAge time.Duration, maxBytes int64) {
	c, err := diskcache.Open(dir)
	if err != nil {
		logger.Error("cache janitor disabled", "error", err)
		return
	}
	sweep := func() {
		st, err := c.GC(maxAge, maxBytes)
		if err != nil {
			logger.Error("cache gc failed", "error", err)
			return
		}
		if st.Removed > 0 || st.TempsRemoved > 0 {
			logger.Info("cache gc",
				"removed", st.Removed,
				"removed_bytes", st.RemovedBytes,
				"temps_removed", st.TempsRemoved,
				"entries", st.Entries,
				"bytes", st.Bytes)
		}
	}
	// Sweep once up front: a directory that outgrew its budget while the
	// limits were unset must not stay over budget for a whole interval.
	sweep()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		sweep()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
