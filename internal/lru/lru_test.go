package lru

import "testing"

func keys[K comparable, V any](m *Map[K, V]) []K {
	var out []K
	for e := m.head; e != nil; e = e.next {
		out = append(out, e.Key)
	}
	return out
}

// add inserts a completed entry: cost charged, evictable — the state the
// memoization caches reach once a computation finishes.
func add[K comparable, V any](m *Map[K, V], k K, v V, cost int) *Entry[K, V] {
	e := m.Add(k, v)
	m.SetCost(e, cost)
	e.Evictable = true
	return e
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	m := New[int, string](20)
	add(m, 1, "a", 10)
	add(m, 2, "b", 10)
	add(m, 3, "c", 10)
	var evicted []int
	m.EvictExcess(func(e *Entry[int, string]) { evicted = append(evicted, e.Key) })
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.Total() != 20 {
		t.Fatalf("Total = %d, want 20", m.Total())
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("evicted key still indexed")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	m := New[int, string](20)
	add(m, 1, "a", 10)
	add(m, 2, "b", 10)
	if _, ok := m.Get(1); !ok {
		t.Fatal("key 1 missing")
	}
	add(m, 3, "c", 10)
	m.EvictExcess(nil)
	if _, ok := m.Get(2); ok {
		t.Fatal("key 2 should have been the LRU victim")
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("refreshed key 1 must survive")
	}
}

func TestUnevenCostsEvictUntilWithinBudget(t *testing.T) {
	m := New[int, string](100)
	add(m, 1, "a", 30)
	add(m, 2, "b", 30)
	// One big entry forces out both older small ones.
	add(m, 3, "c", 90)
	m.EvictExcess(nil)
	if got := keys(m); len(got) != 1 || got[0] != 3 {
		t.Fatalf("surviving keys = %v, want [3]", got)
	}
	if m.Total() != 90 {
		t.Fatalf("Total = %d, want 90", m.Total())
	}
}

func TestEntryOverBudgetEvictsItself(t *testing.T) {
	m := New[int, string](10)
	add(m, 1, "a", 50)
	m.EvictExcess(nil)
	if m.Len() != 0 || m.Total() != 0 {
		t.Fatalf("oversized entry retained: len %d total %d", m.Len(), m.Total())
	}
}

func TestEvictionSkipsNonEvictable(t *testing.T) {
	m := New[int, string](5)
	m.Add(1, "a") // Evictable defaults to false: pinned while in flight
	add(m, 2, "b", 10)
	add(m, 3, "c", 10)
	m.EvictExcess(nil)
	// The pinned entry is skipped; both evictable entries go to reach the
	// budget, leaving only the pinned one.
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("in-flight entry evicted")
	}

	// A map full of pinned entries may overshoot its budget; eviction
	// must leave them all alone.
	p := New[int, string](10)
	e1 := p.Add(1, "a")
	p.SetCost(e1, 20)
	e2 := p.Add(2, "b")
	p.SetCost(e2, 20)
	p.EvictExcess(nil)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (pinned entries cannot be evicted)", p.Len())
	}
}

func TestSetCostAndDeleteTrackTotal(t *testing.T) {
	m := New[int, int](0)
	e := m.Add(1, 1)
	if m.Total() != 0 {
		t.Fatalf("in-flight entry charged %d", m.Total())
	}
	m.SetCost(e, 40)
	if m.Total() != 40 {
		t.Fatalf("Total = %d, want 40", m.Total())
	}
	m.SetCost(e, 15)
	if m.Total() != 15 {
		t.Fatalf("re-cost Total = %d, want 15", m.Total())
	}
	m.Delete(1)
	if m.Total() != 0 {
		t.Fatalf("Total after delete = %d, want 0", m.Total())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	m := New[int, int](0)
	for i := 0; i < 100; i++ {
		add(m, i, i, 1000)
	}
	m.EvictExcess(nil)
	if m.Len() != 100 {
		t.Fatalf("unbounded map evicted down to %d", m.Len())
	}
}

func TestDeleteUnlinks(t *testing.T) {
	m := New[int, int](3)
	m.Add(1, 1)
	m.Add(2, 2)
	m.Add(3, 3)
	m.Delete(2)
	got := keys(m)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("recency order after delete = %v, want [3 1]", got)
	}
	m.Delete(2) // deleting a missing key is a no-op
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}
