// Package imply implements the material-implication (IMP) in-memory logic
// style that §II of the DATE 2017 paper surveys as the write-unbalanced
// baseline: stateful IMP gates (Borghetti et al., Nature 2010) compute
//
//	q ← p → q = p̄ ∨ q
//
// with a FALSE (reset) primitive, and a NAND takes two devices and three
// steps, always rewriting the same work device. Because IMP is not
// commutative and concentrates every result write on the work device, IMP
// netlists show the intrinsic imbalance the paper contrasts RM3 against.
//
// The package compiles MIGs into IMP programs through a NAND decomposition
// and executes them on a write-counting cell array, so the write traffic of
// the two paradigms can be compared head to head (see the imply_baseline
// example and BenchmarkImplyBaseline).
package imply

import (
	"fmt"

	"plim/internal/mig"
)

// OpKind distinguishes the two IMP primitives.
type OpKind uint8

// The IMP machine's primitives.
const (
	OpFalse OpKind = iota // Q ← 0
	OpImply               // Q ← P → Q
)

// Op is one IMP instruction. P is unused for OpFalse.
type Op struct {
	Kind OpKind
	P, Q uint32
}

// String renders the instruction.
func (o Op) String() string {
	if o.Kind == OpFalse {
		return fmt.Sprintf("FALSE @%d", o.Q)
	}
	return fmt.Sprintf("IMP @%d -> @%d", o.P, o.Q)
}

// Program is a straight-line IMP program.
type Program struct {
	Name     string
	Ops      []Op
	NumCells uint32
	PICells  []uint32
	POCells  []uint32
}

// NumOps returns the instruction count.
func (p *Program) NumOps() int { return len(p.Ops) }

// Execute runs the program with the given inputs and returns the outputs
// and the per-cell write counts. Every FALSE and every IMP writes its Q
// cell once (reads are non-destructive).
func (p *Program) Execute(inputs []bool) (out []bool, writes []uint64, err error) {
	if len(inputs) != len(p.PICells) {
		return nil, nil, fmt.Errorf("imply: got %d inputs, want %d", len(inputs), len(p.PICells))
	}
	vals := make([]bool, p.NumCells)
	writes = make([]uint64, p.NumCells)
	for i, c := range p.PICells {
		vals[c] = inputs[i] // preload, not counted (as for PLiM PIs)
	}
	for _, op := range p.Ops {
		switch op.Kind {
		case OpFalse:
			vals[op.Q] = false
		case OpImply:
			vals[op.Q] = !vals[op.P] || vals[op.Q]
		}
		writes[op.Q]++
	}
	out = make([]bool, len(p.POCells))
	for i, c := range p.POCells {
		out[i] = vals[c]
	}
	return out, writes, nil
}

// compiler state: NAND-decompose the MIG bottom-up with a LIFO free list —
// the naive discipline §II describes.
type compiler struct {
	m    *mig.MIG
	prog *Program

	cell      []uint32 // node -> cell holding its value
	inverted  []int64  // node -> cell holding its complement (-1 = none)
	remaining []int32
	free      []uint32
	next      uint32
}

// Compile translates an MIG into an IMP program. Each majority node
// expands to NAND/NOT gates: ⟨a b c⟩ = NAND(NAND(ab, ac), NAND(bc, bc))
// — computed as OR of ANDs via De Morgan — and every NAND funnels its
// result writes into one work device.
func Compile(m *mig.MIG) (*Program, error) {
	c := &compiler{
		m:    m,
		prog: &Program{Name: m.Name},
	}
	n := m.NumNodes()
	c.cell = make([]uint32, n)
	c.inverted = make([]int64, n)
	for i := range c.inverted {
		c.inverted[i] = -1
	}
	c.remaining = m.FanoutCounts()

	// Inputs first.
	c.prog.PICells = make([]uint32, m.NumPIs())
	for i := 0; i < m.NumPIs(); i++ {
		cellID := c.acquire()
		c.prog.PICells[i] = cellID
		c.cell[m.PINode(i)] = cellID
	}
	// Constants: materialize 0 and 1 cells lazily, once each.
	const0, const1 := int64(-1), int64(-1)
	getConst := func(v bool) uint32 {
		if const0 < 0 {
			z := c.acquire()
			c.emit(Op{Kind: OpFalse, Q: z})
			const0 = int64(z)
		}
		if !v {
			return uint32(const0)
		}
		if const1 < 0 {
			one := c.acquire()
			c.emit(Op{Kind: OpFalse, Q: one})
			c.emit(Op{Kind: OpImply, P: uint32(const0), Q: one}) // 0→0 = 1
			const1 = int64(one)
		}
		return uint32(const1)
	}

	live := m.LiveNodes()
	var err error
	m.ForEachMaj(func(nd mig.NodeID, ch [3]mig.Signal) {
		if err != nil || !live[nd] {
			return
		}
		err = c.translateMaj(nd, ch, getConst)
	})
	if err != nil {
		return nil, err
	}

	// Outputs: complemented edges need a NOT; constants need materializing.
	for i := 0; i < m.NumPOs(); i++ {
		po := m.PO(i)
		var cellID uint32
		switch {
		case po.IsConst():
			cellID = getConst(po == mig.Const1)
		case po.Complemented():
			cellID = c.not(c.cell[po.Node()])
		default:
			cellID = c.cell[po.Node()]
		}
		c.prog.POCells = append(c.prog.POCells, cellID)
	}
	c.prog.NumCells = c.next
	return c.prog, nil
}

func (c *compiler) emit(op Op) { c.prog.Ops = append(c.prog.Ops, op) }

func (c *compiler) acquire() uint32 {
	if n := len(c.free); n > 0 {
		cellID := c.free[n-1]
		c.free = c.free[:n-1]
		return cellID
	}
	cellID := c.next
	c.next++
	return cellID
}

// not computes ¬v into a fresh work device: FALSE(s); s ← v IMP s.
func (c *compiler) not(v uint32) uint32 {
	s := c.acquire()
	c.emit(Op{Kind: OpFalse, Q: s})
	c.emit(Op{Kind: OpImply, P: v, Q: s})
	return s
}

// nand computes NAND(a, b) into a fresh work device, the three-step IMP
// sequence of [16]: FALSE(s); s ← a IMP s (= ā); s ← b IMP s (= ā ∨ b̄).
func (c *compiler) nand(a, b uint32) uint32 {
	s := c.acquire()
	c.emit(Op{Kind: OpFalse, Q: s})
	c.emit(Op{Kind: OpImply, P: a, Q: s})
	c.emit(Op{Kind: OpImply, P: b, Q: s})
	return s
}

// operand returns the cell holding the signal's value, inverting through a
// NOT gate when the edge is complemented (memoized per node).
func (c *compiler) operand(s mig.Signal, getConst func(bool) uint32) uint32 {
	if s.IsConst() {
		return getConst(s == mig.Const1)
	}
	base := c.cell[s.Node()]
	if !s.Complemented() {
		return base
	}
	if c.inverted[s.Node()] >= 0 {
		return uint32(c.inverted[s.Node()])
	}
	inv := c.not(base)
	c.inverted[s.Node()] = int64(inv)
	return inv
}

// translateMaj expands ⟨a b c⟩ = NAND(NAND(a·b, a·c... via
// maj = OR(AND(a,b), OR(AND(a,c), AND(b,c)))
//
//	= NAND(NOT(AND(a,b)), NAND(NOT(AND(a,c)), NOT(AND(b,c))))
//
// where AND(x,y) = NOT(NAND(x,y)) and NAND(x̄, ȳ) = OR(x, y).
func (c *compiler) translateMaj(nd mig.NodeID, ch [3]mig.Signal, getConst func(bool) uint32) error {
	a := c.operand(ch[0], getConst)
	b := c.operand(ch[1], getConst)
	d := c.operand(ch[2], getConst)
	// nab = NAND(a,b), etc. OR of the three ANDs via De Morgan:
	// maj = NAND(nab, NAND(nac, nbc))? NAND(x̄,ȳ) = x ∨ y with x = AND(a,b):
	// NAND(nab, NAND(nac, nbc)) = AND(a,b) ∨ ¬NAND(nac, nbc)
	//                           = ab ∨ (nac NAND nbc)'... expand carefully:
	// t = NAND(nac, nbc) = ac ∨ bc; maj = NAND(nab, NOT(t)) = ab ∨ t. ✓
	nab := c.nand(a, b)
	nac := c.nand(a, d)
	nbc := c.nand(b, d)
	t := c.nand(nac, nbc) // = ac ∨ bc
	nt := c.not(t)
	out := c.nand(nab, nt) // = ab ∨ ac ∨ bc
	c.cell[nd] = out

	// Recycle dead intermediates and consumed children (LIFO).
	c.release(nab)
	c.release(nac)
	c.release(nbc)
	c.release(t)
	c.release(nt)
	for _, s := range ch {
		cn := s.Node()
		if cn == 0 {
			continue
		}
		c.remaining[cn]--
		if c.remaining[cn] == 0 {
			c.release(c.cell[cn])
			if c.inverted[cn] >= 0 {
				c.release(uint32(c.inverted[cn]))
			}
		}
	}
	return nil
}

func (c *compiler) release(cellID uint32) { c.free = append(c.free, cellID) }
