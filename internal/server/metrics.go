package server

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"plim"
	"plim/internal/sched"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, spanning sub-millisecond cache hits to multi-minute paper-scale
// rewrites.
var latencyBuckets = [...]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket latency histogram (Prometheus semantics:
// cumulative buckets plus sum and count). The last slot is the +Inf bucket.
type histogram struct {
	buckets [len(latencyBuckets) + 1]uint64
	sum     float64
	count   uint64
}

func (h *histogram) observe(seconds float64) {
	h.sum += seconds
	h.count++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBuckets)]++ // +Inf
}

// metrics aggregates the server's operational counters. All mutation goes
// through the mutex; gauges (queue depth, cache sizes) are read live at
// render time.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64     // "route|code" → count
	latency   map[string]*histogram // route → latency histogram
	events    map[string]uint64     // progress event type → count
	flights   uint64                // computations started (coalescing leaders)
	coalesced uint64                // requests attached to an in-flight computation
	rejected  uint64                // admission rejections (429)

	// Batched-execution throughput: vectors evaluated, 64-lane chunks
	// processed and lane slots offered (chunks × 64). vectors/lane_slots is
	// the batch occupancy; rate(vectors) is the serving vectors/sec.
	execVectors   uint64
	execChunks    uint64
	execLaneSlots uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		latency:  make(map[string]*histogram),
		events:   make(map[string]uint64),
	}
}

func (m *metrics) observeRequest(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{}
		m.latency[route] = h
	}
	h.observe(elapsed.Seconds())
}

func (m *metrics) countEvent(ev plim.Event) {
	name, _ := eventPayload(ev)
	m.mu.Lock()
	m.events[name]++
	m.mu.Unlock()
}

func (m *metrics) flightStarted() {
	m.mu.Lock()
	m.flights++
	m.mu.Unlock()
}

func (m *metrics) requestCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *metrics) admissionRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) observeExecute(vectors, chunks int) {
	m.mu.Lock()
	m.execVectors += uint64(vectors)
	m.execChunks += uint64(chunks)
	m.execLaneSlots += 64 * uint64(chunks)
	m.mu.Unlock()
}

// buildVersion resolves the module version stamped into the binary
// ("(devel)" for plain go build/test).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// header writes the HELP/TYPE preamble of one metric family. Every family
// rendered below goes through it, which is what the exposition-format test
// relies on to assert HELP/TYPE pairing.
func header(b *strings.Builder, name, kind, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// render produces the Prometheus text exposition of every counter plus the
// live gauges supplied by the server (admission occupancy, cache state).
// Output is deterministically ordered so scrapes and tests are stable.
func (m *metrics) render(s *Server) string {
	var b strings.Builder

	header(&b, "plimserve_build_info", "gauge", "Build metadata carried in labels; the value is always 1.")
	fmt.Fprintf(&b, "plimserve_build_info{go_version=%q,version=%q} 1\n", runtime.Version(), buildVersion())

	m.mu.Lock()
	writeSorted := func(rows map[string]string) {
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, rows[k])
		}
	}

	reqRows := make(map[string]string, len(m.requests))
	for k, v := range m.requests {
		route, code, _ := strings.Cut(k, "|")
		reqRows[fmt.Sprintf("plimserve_requests_total{route=%q,code=%q}", route, code)] = fmt.Sprint(v)
	}
	header(&b, "plimserve_requests_total", "counter", "Requests served, by route and HTTP status code.")
	writeSorted(reqRows)

	header(&b, "plimserve_request_seconds", "histogram", "Request latency, by route.")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, route := range routes {
		h := m.latency[route]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(&b, "plimserve_request_seconds_bucket{route=%q,le=%q} %d\n", route, trimFloat(ub), cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(&b, "plimserve_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(&b, "plimserve_request_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(&b, "plimserve_request_seconds_count{route=%q} %d\n", route, h.count)
	}

	evRows := make(map[string]string, len(m.events))
	for k, v := range m.events {
		evRows[fmt.Sprintf("plimserve_progress_events_total{type=%q}", k)] = fmt.Sprint(v)
	}
	header(&b, "plimserve_progress_events_total", "counter", "Engine progress events published to flights, by event type.")
	writeSorted(evRows)

	header(&b, "plimserve_flights_total", "counter", "Computations started (coalescing leaders).")
	fmt.Fprintf(&b, "plimserve_flights_total %d\n", m.flights)
	header(&b, "plimserve_coalesced_requests_total", "counter", "Requests that attached to an already in-flight computation.")
	fmt.Fprintf(&b, "plimserve_coalesced_requests_total %d\n", m.coalesced)
	header(&b, "plimserve_admission_rejected_total", "counter", "Flights rejected by admission control (HTTP 429).")
	fmt.Fprintf(&b, "plimserve_admission_rejected_total %d\n", m.rejected)
	header(&b, "plimserve_execute_vectors_total", "counter", "Input vectors evaluated by /v1/execute.")
	fmt.Fprintf(&b, "plimserve_execute_vectors_total %d\n", m.execVectors)
	header(&b, "plimserve_execute_chunks_total", "counter", "64-lane execution chunks processed by /v1/execute.")
	fmt.Fprintf(&b, "plimserve_execute_chunks_total %d\n", m.execChunks)
	header(&b, "plimserve_execute_lane_slots_total", "counter", "Lane slots offered by processed chunks (chunks times 64).")
	fmt.Fprintf(&b, "plimserve_execute_lane_slots_total %d\n", m.execLaneSlots)
	m.mu.Unlock()

	// Live gauges: admission occupancy, the engine's task scheduler and the
	// two cache tiers.
	header(&b, "plimserve_inflight_computations", "gauge", "Flights currently computing (admission running set).")
	fmt.Fprintf(&b, "plimserve_inflight_computations %d\n", s.adm.running())
	header(&b, "plimserve_queued_computations", "gauge", "Flights admitted beyond the running set, waiting in the queue.")
	fmt.Fprintf(&b, "plimserve_queued_computations %d\n", s.adm.queuedWaiting())
	st := s.eng.SchedulerStats()
	header(&b, "plimserve_sched_runnable_tasks", "gauge", "Tasks runnable in the engine scheduler.")
	fmt.Fprintf(&b, "plimserve_sched_runnable_tasks %d\n", st.Runnable)
	header(&b, "plimserve_sched_runnable_tasks_by_kind", "gauge", "Tasks runnable in the engine scheduler, by task kind.")
	for _, k := range sched.Kinds() {
		if n, ok := st.RunnableByKind[k]; ok {
			fmt.Fprintf(&b, "plimserve_sched_runnable_tasks_by_kind{kind=%q} %d\n", k.String(), n)
		}
	}
	header(&b, "plimserve_sched_injector_max_wait_seconds", "gauge", "Age of the oldest task waiting in the scheduler injector.")
	fmt.Fprintf(&b, "plimserve_sched_injector_max_wait_seconds %g\n", st.MaxInjectorWaitSeconds)
	header(&b, "plimserve_sched_worker_steals_total", "counter", "Tasks stolen by each scheduler worker.")
	for i, n := range st.Steals {
		fmt.Fprintf(&b, "plimserve_sched_worker_steals_total{worker=\"%d\"} %d\n", i, n)
	}
	header(&b, "plimserve_sched_task_seconds", "histogram", "Scheduler task run time, by task kind.")
	bounds := sched.LatencyBuckets()
	for _, k := range sched.Kinds() {
		h, ok := st.Latency[k]
		if !ok {
			continue // a kind never executed renders no empty series
		}
		var cum uint64
		for i, ub := range bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "plimserve_sched_task_seconds_bucket{kind=%q,le=%q} %d\n", k.String(), trimFloat(ub), cum)
		}
		cum += h.Buckets[len(bounds)]
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k.String(), cum)
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_sum{kind=%q} %g\n", k.String(), h.SumSeconds)
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_count{kind=%q} %d\n", k.String(), h.Count)
	}
	rw, bench := s.eng.MemoryCacheLens()
	header(&b, "plimserve_cache_memory_entries", "gauge", "Entries held by the in-memory cache tier, by kind.")
	fmt.Fprintf(&b, "plimserve_cache_memory_entries{kind=\"benchmark\"} %d\n", bench)
	fmt.Fprintf(&b, "plimserve_cache_memory_entries{kind=\"rewrite\"} %d\n", rw)

	// Probe outcomes across both tiers under one family, so hit ratios per
	// tier are a single PromQL expression. The disk tier's verify_miss is
	// the subset of probes rejected by fingerprint re-verification alone;
	// it is split out of miss so the outcomes partition the probes.
	diskStats, hasDisk := s.eng.PersistentCacheStats()
	header(&b, "plimserve_cache_probe_total", "counter", "Cache probes, by tier (memory, disk) and outcome (hit, miss, verify_miss).")
	mh, mm := s.eng.MemoryCacheProbes()
	fmt.Fprintf(&b, "plimserve_cache_probe_total{tier=\"memory\",outcome=\"hit\"} %d\n", mh)
	fmt.Fprintf(&b, "plimserve_cache_probe_total{tier=\"memory\",outcome=\"miss\"} %d\n", mm)
	if hasDisk {
		miss := diskStats.RewriteMisses + diskStats.BenchmarkMisses
		vm := diskStats.VerifyMisses
		if vm > miss { // racy snapshots: never render a negative miss count
			vm = miss
		}
		fmt.Fprintf(&b, "plimserve_cache_probe_total{tier=\"disk\",outcome=\"hit\"} %d\n", diskStats.RewriteHits+diskStats.BenchmarkHits)
		fmt.Fprintf(&b, "plimserve_cache_probe_total{tier=\"disk\",outcome=\"miss\"} %d\n", miss-vm)
		fmt.Fprintf(&b, "plimserve_cache_probe_total{tier=\"disk\",outcome=\"verify_miss\"} %d\n", vm)
	}

	if hasDisk {
		st := diskStats
		header(&b, "plimserve_cache_disk_hits_total", "counter", "Persistent cache loads served, by kind.")
		fmt.Fprintf(&b, "plimserve_cache_disk_hits_total{kind=\"benchmark\"} %d\n", st.BenchmarkHits)
		fmt.Fprintf(&b, "plimserve_cache_disk_hits_total{kind=\"rewrite\"} %d\n", st.RewriteHits)
		header(&b, "plimserve_cache_disk_misses_total", "counter", "Persistent cache loads that missed (including verification failures), by kind.")
		fmt.Fprintf(&b, "plimserve_cache_disk_misses_total{kind=\"benchmark\"} %d\n", st.BenchmarkMisses)
		fmt.Fprintf(&b, "plimserve_cache_disk_misses_total{kind=\"rewrite\"} %d\n", st.RewriteMisses)
		header(&b, "plimserve_cache_disk_stores_total", "counter", "Persistent cache entries written.")
		fmt.Fprintf(&b, "plimserve_cache_disk_stores_total %d\n", st.Stores)
		header(&b, "plimserve_cache_disk_store_errors_total", "counter", "Persistent cache writes that failed.")
		fmt.Fprintf(&b, "plimserve_cache_disk_store_errors_total %d\n", st.StoreErrors)
	}
	return b.String()
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no trailing zeros: 0.0001, 0.25, 1, 30).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
