package plim

import (
	"context"
	"testing"

	"plim/internal/cost"
	"plim/internal/verify"
)

// TestCostParity pins the cost model's cross-layer contract: for every
// Table I policy (plus the capped Table III policy), the price of a
// compiled program is one exact value however it is derived —
//
//	static      the verifier's sweep over the instruction stream
//	allocator   the compiler's emit-time accounting (Report.Cost)
//	scalar      op classes of the program + the interpreter crossbar's
//	            recorded max cell wear
//	batched     the batched executor's aggregate, divided by the lanes
//
// Equality is ==, not approximate: every layer derives energy from the
// same integer per-class operation counts (cost.Model.FromCounts), so the
// floats are bit-identical by construction. Divergence anywhere means an
// accounting layer drifted from the instruction stream that actually
// executes.
func TestCostParity(t *testing.T) {
	ctx := context.Background()
	const lanes = 64
	cm := DefaultCostModel()

	eng := NewEngine(WithShrink(4), WithVerify(true))
	if eng.CostModelName() != cm.Name {
		t.Fatalf("engine cost model %q, want the default %q", eng.CostModelName(), cm.Name)
	}
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}

	configs := append(TableIConfigs(), FullCap(50))
	for _, cfg := range configs {
		t.Run(cfg.Name, func(t *testing.T) {
			rep, err := eng.Run(ctx, m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cost == nil {
				t.Fatal("engine runs are always priced, but Report.Cost is nil")
			}
			allocator := *rep.Cost

			vr := rep.Verify
			if vr == nil || vr.Cost == nil {
				t.Fatal("verified run carries no static cost")
			}
			static := *vr.Cost
			if static != allocator {
				t.Fatalf("static cost %+v != allocator cost %+v", static, allocator)
			}
			// The library-level parity check agrees (and is what gates
			// production compiles under WithVerify).
			if !verify.CheckCostParity(vr, allocator, "allocator-recheck") {
				t.Fatalf("CheckCostParity diverged: %v", vr.Violations)
			}

			// Scalar interpreter: classify the executed instructions and
			// read max cell wear off the crossbar the run actually wore.
			p := rep.Result.Program
			inputs := make([]bool, len(p.PICells))
			for i := range inputs {
				inputs[i] = i%3 == 0
			}
			_, xbar, err := Execute(p, inputs)
			if err != nil {
				t.Fatal(err)
			}
			var ops cost.Counts
			for _, ins := range p.Insts {
				ops.Note(cost.Classify(ins))
			}
			var maxWear uint64
			for _, w := range xbar.WriteCounts(int(p.NumCells)) {
				if w > maxWear {
					maxWear = w
				}
			}
			scalar := cm.FromCounts(ops, maxWear)
			if scalar != static {
				t.Fatalf("scalar cost %+v != static cost %+v", scalar, static)
			}

			// Batched executor: the batch cost is exactly lanes× the static
			// cost (wear scales; per-run lifetime does not).
			b := RandomBatch(len(p.PICells), lanes, 7)
			res, err := ExecuteBatch(p, b, ExecOptions{CostModel: cm})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost == nil {
				t.Fatal("ExecuteBatch with a cost model returned no cost")
			}
			if want := cm.Scale(static, lanes); *res.Cost != want {
				t.Fatalf("batched cost %+v != %d× static %+v", *res.Cost, lanes, want)
			}
			if res.Cost.LifetimeRuns != static.LifetimeRuns {
				t.Fatalf("batched lifetime %d != static lifetime %d (lifetime is per-run)",
					res.Cost.LifetimeRuns, static.LifetimeRuns)
			}
		})
	}
}

// TestCostParityAcrossModels pins that pricing is pure accounting: the
// compiled program is identical under every model, and a custom model's
// price obeys the same cross-layer equality as the default.
func TestCostParityAcrossModels(t *testing.T) {
	ctx := context.Background()
	custom := &CostModel{
		Name:            "hot",
		Reset:           cost.OpCost{EnergyPJ: 0.5, LatencyCycles: 2, Wear: 1},
		Set:             cost.OpCost{EnergyPJ: 0.9, LatencyCycles: 2, Wear: 1},
		RM3:             cost.OpCost{EnergyPJ: 4.25, LatencyCycles: 3, Wear: 1},
		EnduranceWrites: 1e6,
	}

	def := NewEngine(WithShrink(4), WithVerify(true))
	hot := NewEngine(WithShrink(4), WithVerify(true), WithCostModel(custom))
	mDef, err := def.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	mHot, err := hot.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}

	repDef, err := def.Run(ctx, mDef, Full)
	if err != nil {
		t.Fatal(err)
	}
	repHot, err := hot.Run(ctx, mHot, Full)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := repDef.Result.Program.Fingerprint(), repHot.Result.Program.Fingerprint(); a != b {
		t.Fatalf("cost model changed the compiled program: %016x vs %016x", a, b)
	}
	if repHot.Cost == nil || repHot.Verify == nil || repHot.Verify.Cost == nil {
		t.Fatal("custom-model run is unpriced")
	}
	if *repHot.Cost != *repHot.Verify.Cost {
		t.Fatalf("custom model static %+v != allocator %+v", *repHot.Verify.Cost, *repHot.Cost)
	}
	// Post-hoc pricing of the same program reproduces the in-run price —
	// the property Explore's model axis rests on.
	if got := custom.Program(repDef.Result.Program); got != *repHot.Cost {
		t.Fatalf("post-hoc price %+v != in-run price %+v", got, *repHot.Cost)
	}
}
