package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"plim/internal/cost"
	"plim/internal/suite"
)

func quickExplore() ExploreOptions {
	fast := cost.Default()
	fast.Name = "fast"
	fast.RM3.LatencyCycles = 1
	return ExploreOptions{
		Benchmarks: []string{"ctrl", "dec"},
		Efforts:    []int{0, 2},
		Shrinks:    []int{4},
		Models:     []*cost.Model{cost.Default(), fast},
		Workers:    2,
		Verify:     true,
	}
}

// TestExploreDeterministic pins the sweep's reproducibility contract: the
// same axes render byte-identical CSV and JSON, cold, warm through the
// caches, and at any worker count.
func TestExploreDeterministic(t *testing.T) {
	ctx := context.Background()
	render := func(r *ExploreResult) (string, string) {
		var csv, js bytes.Buffer
		if err := r.WriteCSV(&csv, false); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&js, false); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}

	cold, err := Explore(ctx, quickExplore())
	if err != nil {
		t.Fatal(err)
	}
	csvCold, jsonCold := render(cold)

	warm := quickExplore()
	warm.Workers = 4
	warm.BenchCache = suite.NewCache()
	warm.RewriteCache = NewRewriteCache()
	for i := 0; i < 2; i++ {
		r, err := Explore(ctx, warm)
		if err != nil {
			t.Fatal(err)
		}
		if csv, js := render(r); csv != csvCold || js != jsonCold {
			t.Fatalf("run %d diverged from the cold sweep:\n%s\nvs\n%s", i, csv, csvCold)
		}
	}
	wantPoints := 2 * 2 * 1 * len(TableIConfigs()) * 2 // benchmarks × efforts × shrinks × configs × models
	if len(cold.Points) != wantPoints {
		t.Fatalf("swept %d points, want %d", len(cold.Points), wantPoints)
	}
	if !strings.HasPrefix(csvCold, "benchmark,config,") {
		t.Fatalf("CSV header malformed:\n%s", csvCold)
	}
}

// TestExplorePareto checks the front semantics: every (benchmark, shrink,
// model) group keeps at least one non-dominated point, a dominated point
// is excluded from the front, and WriteCSV(frontOnly) emits exactly the
// front rows.
func TestExplorePareto(t *testing.T) {
	res, err := Explore(context.Background(), quickExplore())
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		bench, model string
	}
	fronts := map[key]int{}
	for _, p := range res.Points {
		if p.Pareto {
			fronts[key{p.Benchmark, p.Model}]++
		}
	}
	for _, b := range []string{"ctrl", "dec"} {
		for _, m := range []string{"default", "fast"} {
			if fronts[key{b, m}] == 0 {
				t.Fatalf("group %s/%s has an empty Pareto front", b, m)
			}
		}
	}
	for _, p := range res.Points {
		if p.Pareto {
			continue
		}
		dominated := false
		for j := range res.Points {
			q := &res.Points[j]
			if q.Benchmark == p.Benchmark && q.Shrink == p.Shrink && q.Model == p.Model && dominates(q, &p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("point off the front but dominated by nothing: %+v", p)
		}
	}

	var all, front bytes.Buffer
	if err := res.WriteCSV(&all, false); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&front, true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(front.String(), "\n"); n != len(res.Front())+1 {
		t.Fatalf("front CSV has %d lines, want %d rows + header", n, len(res.Front()))
	}
	if strings.Contains(front.String(), ",0\n") {
		t.Fatal("front-only CSV contains a dominated row")
	}
	// Every front row also appears, verbatim, in the full rendering.
	for _, line := range strings.Split(strings.TrimSuffix(front.String(), "\n"), "\n") {
		if !strings.Contains(all.String(), line+"\n") {
			t.Fatalf("front row missing from the full CSV: %s", line)
		}
	}
}

// TestExploreValidation rejects malformed sweeps up front.
func TestExploreValidation(t *testing.T) {
	ctx := context.Background()
	base := func() ExploreOptions { return quickExplore() }

	bad := base()
	bad.Shrinks = []int{0}
	if _, err := Explore(ctx, bad); err == nil {
		t.Fatal("shrink 0 accepted")
	}
	bad = base()
	bad.Efforts = []int{-1}
	if _, err := Explore(ctx, bad); err == nil {
		t.Fatal("negative effort accepted")
	}
	bad = base()
	bad.Models = []*cost.Model{cost.Default(), cost.Default()}
	if _, err := Explore(ctx, bad); err == nil {
		t.Fatal("duplicate model names accepted")
	}
	bad = base()
	bad.Workers = 0
	if _, err := Explore(ctx, bad); err == nil {
		t.Fatal("zero workers without a scheduler accepted")
	}
	bad = base()
	bad.Benchmarks = []string{"nope"}
	if _, err := Explore(ctx, bad); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
