// plimlint runs the repository's custom analysis suite (internal/lint)
// over a package tree: hotpathalloc (no allocations reachable from the
// pinned compile/execute hot paths), determinism (no time.Now or map
// iteration in fingerprint/codec/coalescing-key code) and ctxfirst
// (context.Context first on exported APIs). It is a standalone runner
// built only on the standard library — not a go vet -vettool plugin —
// because the module carries no external dependencies.
//
// Usage:
//
//	plimlint ./...          # whole module (the CI lint job)
//	plimlint -dir internal/lint/testdata/hotpath -hotpath-roots hotpath.Hot
//
// Diagnostics print as file:line:col: [analyzer] message; the exit status
// is 1 when any are found.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"plim/internal/lint"
)

func main() {
	var (
		dir   = flag.String("dir", "", "lint a single package directory instead of a tree")
		roots = flag.String("hotpath-roots", strings.Join(lint.DefaultHotPathRoots, ","),
			"comma-separated hot-path roots (pkg.Func or pkg.Type.Method)")
	)
	flag.Parse()

	fset := token.NewFileSet()
	var pkgs []*lint.Package
	var err error
	switch {
	case *dir != "":
		var pkg *lint.Package
		pkg, err = lint.Load(fset, *dir, "")
		if pkg != nil {
			pkgs = []*lint.Package{pkg}
		}
	default:
		root := "."
		if args := flag.Args(); len(args) > 0 {
			root = strings.TrimSuffix(strings.TrimSuffix(args[0], "..."), "/")
			if root == "" {
				root = "."
			}
		}
		pkgs, err = lint.LoadTree(fset, root, lint.ModulePath(root))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plimlint:", err)
		os.Exit(2)
	}

	analyzers := []*lint.Analyzer{
		lint.HotPathAllocWithRoots(strings.Split(*roots, ",")),
		lint.Determinism,
		lint.CtxFirst,
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "plimlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
