// Package lru provides the least-recently-used bookkeeping shared by the
// repository's memoization caches (core.RewriteCache, suite.Cache). It is a
// map plus an intrusive recency list with a cost budget; eviction is
// explicit and skips entries the caller has marked not-yet-evictable, which
// is how the singleflight caches protect in-flight computations (waiters
// hold the entry pointer, so evicting a completed entry only drops it from
// the index — it never invalidates a reader).
//
// The budget is expressed in the caller's cost unit — the memoization
// caches charge estimated bytes (mig.MemSize), the way diskcache.GC budgets
// the disk tier. Entries enter with cost 0 (in-flight computations occupy
// no budget and are pinned via Evictable anyway); the caller sets the real
// cost with SetCost once the value exists.
//
// The container performs no locking; callers guard every method with their
// own mutex.
package lru

// Entry is one cached key/value pair threaded on the recency list.
type Entry[K comparable, V any] struct {
	Key   K
	Value V
	// Cost is the entry's charge against the map's budget (typically
	// estimated bytes). Mutate it only through Map.SetCost so the running
	// total stays consistent.
	Cost int
	// Evictable marks entries EvictExcess may drop. Callers keep it false
	// while a computation is in flight so a budget overrun never evicts an
	// entry other goroutines are about to complete.
	Evictable bool

	prev, next *Entry[K, V]
	linked     bool
}

// Map is a budgeted LRU map. The zero value is not usable; call New.
type Map[K comparable, V any] struct {
	budget  int // ≤ 0 = unbounded
	total   int // sum of entry costs
	entries map[K]*Entry[K, V]
	// head is the most recently used entry, tail the least.
	head, tail *Entry[K, V]
}

// New returns an empty map evicting beyond a total cost of budget;
// budget ≤ 0 disables eviction.
func New[K comparable, V any](budget int) *Map[K, V] {
	return &Map[K, V]{budget: budget, entries: make(map[K]*Entry[K, V])}
}

// Budget returns the cost budget (≤ 0 = unbounded).
func (m *Map[K, V]) Budget() int { return m.budget }

// Len returns the number of entries currently indexed.
func (m *Map[K, V]) Len() int { return len(m.entries) }

// Total returns the summed cost of all indexed entries.
func (m *Map[K, V]) Total() int { return m.total }

// Get returns the entry for k and marks it most recently used.
func (m *Map[K, V]) Get(k K) (*Entry[K, V], bool) {
	e, ok := m.entries[k]
	if !ok {
		return nil, false
	}
	m.unlink(e)
	m.pushFront(e)
	return e, true
}

// Add inserts a fresh (non-evictable, cost-0) entry for k as most recently
// used and returns it. The caller must ensure k is not already present.
func (m *Map[K, V]) Add(k K, v V) *Entry[K, V] {
	e := &Entry[K, V]{Key: k, Value: v}
	m.entries[k] = e
	m.pushFront(e)
	return e
}

// SetCost re-charges an entry against the budget. Call it when the entry's
// value materializes (cost was 0 while in flight) or changes size.
func (m *Map[K, V]) SetCost(e *Entry[K, V], cost int) {
	m.total += cost - e.Cost
	e.Cost = cost
}

// Delete drops the entry for k, if any.
func (m *Map[K, V]) Delete(k K) {
	if e, ok := m.entries[k]; ok {
		m.unlink(e)
		m.total -= e.Cost
		delete(m.entries, k)
	}
}

// EvictExcess drops evictable entries, least recently used first, until the
// total cost is within budget (or only non-evictable entries remain). Each
// victim is reported to onEvict (which may be nil) after it is unindexed.
// A single entry costlier than the whole budget is itself evicted as soon
// as it becomes evictable — the budget is a bound, not a guarantee of
// residency.
func (m *Map[K, V]) EvictExcess(onEvict func(*Entry[K, V])) {
	if m.budget <= 0 {
		return
	}
	for e := m.tail; e != nil && m.total > m.budget; {
		victim := e
		e = e.prev
		if !victim.Evictable {
			continue
		}
		m.unlink(victim)
		m.total -= victim.Cost
		delete(m.entries, victim.Key)
		if onEvict != nil {
			onEvict(victim)
		}
	}
}

func (m *Map[K, V]) pushFront(e *Entry[K, V]) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
	e.linked = true
}

func (m *Map[K, V]) unlink(e *Entry[K, V]) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}
