package server

import (
	"errors"
	"testing"
	"time"
)

func TestAdmissionCapsInflight(t *testing.T) {
	a := newAdmission(1, 1)
	rel1, err := a.admit() // counts as running
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.admit() // beyond concurrency: counts as queued
	if err != nil {
		t.Fatal(err)
	}
	if a.running() != 1 || a.queuedWaiting() != 1 {
		t.Fatalf("gauges: running=%d queued=%d, want 1/1", a.running(), a.queuedWaiting())
	}
	// Capacity (concurrency + queue) reached: the next admit must reject
	// immediately, never block.
	if _, err := a.admit(); !errors.Is(err, errQueueFull) {
		t.Fatalf("want errQueueFull, got %v", err)
	}
	if ra := a.retryAfter(); ra < time.Second || ra > 60*time.Second {
		t.Fatalf("retryAfter out of range: %v", ra)
	}
	rel1()
	if a.running() != 1 || a.queuedWaiting() != 0 {
		t.Fatalf("after one release: running=%d queued=%d, want 1/0", a.running(), a.queuedWaiting())
	}
	rel2()
	if a.running() != 0 || a.queuedWaiting() != 0 {
		t.Fatalf("seats leaked: running=%d queued=%d", a.running(), a.queuedWaiting())
	}
	// Everything released: a fresh admission must succeed again.
	rel3, err := a.admit()
	if err != nil {
		t.Fatal(err)
	}
	rel3()
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newAdmission(2, 2)
	rel, err := a.admit()
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op, not a seat underflow
	if a.running() != 0 {
		t.Fatal("double release corrupted seat accounting")
	}
}
