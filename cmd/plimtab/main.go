// plimtab regenerates the evaluation tables of the DATE 2017 paper:
//
//	plimtab -table 1                 Table I  (write distribution, 5 configs)
//	plimtab -table 2                 Table II (#I and #R)
//	plimtab -table 3                 Table III (max-write cap trade-off)
//	plimtab -table ablation          per-technique isolation (extension)
//	plimtab -table all -format md    everything, Markdown (EXPERIMENTS.md)
//
// Flags select benchmarks, rewriting effort, output format and a datapath
// shrink factor for quick runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"plim/internal/core"
	"plim/internal/tables"
)

func main() {
	var (
		table   = flag.String("table", "all", "1|2|3|ablation|all")
		benches = flag.String("benchmarks", "", "comma-separated subset (default: all 18)")
		effort  = flag.Int("effort", core.DefaultEffort, "MIG rewriting cycles")
		shrink  = flag.Int("shrink", 1, "divide datapath widths (quick runs)")
		format  = flag.String("format", "text", "text|md|csv")
		outFile = flag.String("out", "", "write to file instead of stdout")
		workers = flag.Int("workers", 0, "parallel benchmark workers (0 = GOMAXPROCS)")
		caps    = flag.String("caps", "10,20,50,100", "write caps for Table III")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opts := tables.Options{Effort: *effort, Shrink: *shrink, Workers: *workers}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	render := func(g *tables.Grid) {
		switch *format {
		case "text":
			fmt.Fprintln(out, g.Text())
		case "md":
			fmt.Fprintln(out, g.Markdown())
		case "csv":
			fmt.Fprintln(out, g.CSV())
		default:
			fatal(fmt.Errorf("plimtab: unknown format %q", *format))
		}
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}

	want := func(name string) bool { return *table == "all" || *table == name }
	start := time.Now()

	if want("1") || want("2") {
		progress("running Table I/II configurations...")
		sr, err := tables.RunSuite(core.TableIConfigs(), opts)
		if err != nil {
			fatal(err)
		}
		if want("1") {
			d, err := tables.TableI(sr)
			if err != nil {
				fatal(err)
			}
			render(d.Grid())
		}
		if want("2") {
			d, err := tables.TableII(sr)
			if err != nil {
				fatal(err)
			}
			render(d.Grid())
		}
	}

	if want("3") {
		progress("running Table III cap sweep...")
		var cfgs []core.Config
		for _, c := range strings.Split(*caps, ",") {
			var w uint64
			if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &w); err != nil {
				fatal(fmt.Errorf("plimtab: bad cap %q", c))
			}
			cfgs = append(cfgs, core.FullCap(w))
		}
		sr, err := tables.RunSuite(cfgs, opts)
		if err != nil {
			fatal(err)
		}
		d, err := tables.TableIII(sr)
		if err != nil {
			fatal(err)
		}
		render(d.Grid())
	}

	if want("ablation") {
		progress("running ablation configurations...")
		sr, err := tables.RunSuite(tables.AblationConfigs(), opts)
		if err != nil {
			fatal(err)
		}
		d, err := tables.TableI(sr)
		if err != nil {
			fatal(err)
		}
		g := d.Grid()
		g.Title = "Ablation: each endurance technique in isolation (STDEV improvement vs naive)"
		render(g)
	}

	progress(fmt.Sprintf("done in %v", time.Since(start).Round(time.Millisecond)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
