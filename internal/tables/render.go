package tables

import (
	"fmt"
	"math"
	"strings"
)

// Grid is a rendered table: a title, one header row and string cells. It
// renders as aligned text, Markdown or CSV.
type Grid struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Text renders the grid with aligned columns.
func (g *Grid) Text() string {
	widths := make([]int, len(g.Columns))
	for i, c := range g.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range g.Rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(cell))
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		b.WriteByte('\n')
	}
	line(g.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range g.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the grid as a GitHub-flavoured Markdown table.
func (g *Grid) Markdown() string {
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", g.Title)
	}
	b.WriteString("| " + strings.Join(g.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(g.Columns)) + "\n")
	for _, row := range g.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the grid as comma-separated values (cells contain no commas).
func (g *Grid) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(g.Columns, ",") + "\n")
	for _, row := range g.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// TableICell is one configuration's write statistics on one benchmark.
type TableICell struct {
	Min, Max float64 // float so the AVG row can carry means
	StdDev   float64
	// Impr is the standard-deviation improvement vs the naive baseline in
	// percent; NaN in the baseline column.
	Impr float64
}

// TableIData is the paper's Table I.
type TableIData struct {
	ConfigNames []string
	Benchmarks  []string
	PIPO        [][2]int
	Cells       [][]TableICell // [benchmark][config]
	Avg         []TableICell   // column means (Impr = mean of row Imprs)
}

// TableI projects a suite result onto the paper's Table I layout. The
// result must include a configuration named "naive" as the baseline.
func TableI(sr *SuiteResult) (*TableIData, error) {
	base := sr.ConfigIndex("naive")
	if base < 0 {
		return nil, fmt.Errorf("tables: Table I needs a %q configuration", "naive")
	}
	d := &TableIData{}
	for _, c := range sr.Configs {
		d.ConfigNames = append(d.ConfigNames, c.Name)
	}
	d.Avg = make([]TableICell, len(sr.Configs))
	for b, info := range sr.Benchmarks {
		d.Benchmarks = append(d.Benchmarks, info.Name)
		d.PIPO = append(d.PIPO, [2]int{info.PI, info.PO})
		baseSD := sr.Reports[b][base].Writes.StdDev
		row := make([]TableICell, len(sr.Configs))
		for c, rep := range sr.Reports[b] {
			cell := TableICell{
				Min:    float64(rep.Writes.Min),
				Max:    float64(rep.Writes.Max),
				StdDev: rep.Writes.StdDev,
				Impr:   improvement(baseSD, rep.Writes.StdDev),
			}
			if c == base {
				cell.Impr = math.NaN()
			}
			row[c] = cell
			d.Avg[c].Min += cell.Min
			d.Avg[c].Max += cell.Max
			d.Avg[c].StdDev += cell.StdDev
			if c != base {
				d.Avg[c].Impr += cell.Impr
			}
		}
		d.Cells = append(d.Cells, row)
	}
	n := float64(len(sr.Benchmarks))
	for c := range d.Avg {
		d.Avg[c].Min /= n
		d.Avg[c].Max /= n
		d.Avg[c].StdDev /= n
		if c == base {
			d.Avg[c].Impr = math.NaN()
		} else {
			d.Avg[c].Impr /= n
		}
	}
	return d, nil
}

func improvement(base, cand float64) float64 {
	if base == 0 {
		if cand == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return (base - cand) / base * 100
}

// Grid renders Table I in the paper's column layout.
func (d *TableIData) Grid() *Grid {
	g := &Grid{Title: "Table I: write distribution (min/max, STDEV, improvement vs naive)"}
	g.Columns = []string{"benchmark", "PI/PO"}
	for i, name := range d.ConfigNames {
		g.Columns = append(g.Columns, name+" min/max", name+" STDEV")
		if !math.IsNaN(d.Avg[i].Impr) {
			g.Columns = append(g.Columns, name+" impr.")
		}
	}
	for b := range d.Benchmarks {
		out := []string{d.Benchmarks[b], fmt.Sprintf("%d/%d", d.PIPO[b][0], d.PIPO[b][1])}
		for c, cell := range d.Cells[b] {
			out = append(out, fmt.Sprintf("%.0f/%.0f", cell.Min, cell.Max), fmt.Sprintf("%.2f", cell.StdDev))
			if !math.IsNaN(d.Avg[c].Impr) {
				out = append(out, fmt.Sprintf("%.2f%%", cell.Impr))
			}
		}
		g.Rows = append(g.Rows, out)
	}
	avg := []string{"AVG", ""}
	for _, cell := range d.Avg {
		avg = append(avg, fmt.Sprintf("%.2f/%.2f", cell.Min, cell.Max), fmt.Sprintf("%.2f", cell.StdDev))
		if !math.IsNaN(cell.Impr) {
			avg = append(avg, fmt.Sprintf("%.2f%%", cell.Impr))
		}
	}
	g.Rows = append(g.Rows, avg)
	return g
}

// TableIIData is the paper's Table II: #I and #R per configuration.
type TableIIData struct {
	ConfigNames []string
	Benchmarks  []string
	PIPO        [][2]int
	I           [][]int // [benchmark][config]
	R           [][]int
	AvgI        []float64
	AvgR        []float64
}

// TableII projects the instruction/device costs of the given configuration
// names (paper: naive, rewriting, full).
func TableII(sr *SuiteResult, configNames ...string) (*TableIIData, error) {
	if len(configNames) == 0 {
		configNames = []string{"naive", "rewriting", "full"}
	}
	idx := make([]int, len(configNames))
	for i, n := range configNames {
		idx[i] = sr.ConfigIndex(n)
		if idx[i] < 0 {
			return nil, fmt.Errorf("tables: Table II needs configuration %q", n)
		}
	}
	d := &TableIIData{ConfigNames: configNames}
	d.AvgI = make([]float64, len(idx))
	d.AvgR = make([]float64, len(idx))
	for b, info := range sr.Benchmarks {
		d.Benchmarks = append(d.Benchmarks, info.Name)
		d.PIPO = append(d.PIPO, [2]int{info.PI, info.PO})
		ri := make([]int, len(idx))
		rr := make([]int, len(idx))
		for i, c := range idx {
			rep := sr.Reports[b][c]
			ri[i] = rep.NumInstructions()
			rr[i] = rep.NumRRAMs()
			d.AvgI[i] += float64(ri[i])
			d.AvgR[i] += float64(rr[i])
		}
		d.I = append(d.I, ri)
		d.R = append(d.R, rr)
	}
	n := float64(len(sr.Benchmarks))
	for i := range idx {
		d.AvgI[i] /= n
		d.AvgR[i] /= n
	}
	return d, nil
}

// Grid renders Table II.
func (d *TableIIData) Grid() *Grid {
	g := &Grid{Title: "Table II: instructions (#I) and devices (#R)"}
	g.Columns = []string{"benchmark", "PI/PO"}
	for _, name := range d.ConfigNames {
		g.Columns = append(g.Columns, name+" #I", name+" #R")
	}
	for b := range d.Benchmarks {
		row := []string{d.Benchmarks[b], fmt.Sprintf("%d/%d", d.PIPO[b][0], d.PIPO[b][1])}
		for i := range d.ConfigNames {
			row = append(row, fmt.Sprintf("%d", d.I[b][i]), fmt.Sprintf("%d", d.R[b][i]))
		}
		g.Rows = append(g.Rows, row)
	}
	avg := []string{"AVG", ""}
	for i := range d.ConfigNames {
		avg = append(avg, fmt.Sprintf("%.2f", d.AvgI[i]), fmt.Sprintf("%.2f", d.AvgR[i]))
	}
	g.Rows = append(g.Rows, avg)
	return g
}

// TableIIICell is one cap's outcome on one benchmark.
type TableIIICell struct {
	I, R   int
	StdDev float64
	// Unchanged marks cells equal to the previous (tighter) cap — the
	// paper prints dashes for these, because the cap exceeds the natural
	// maximum write count.
	Unchanged bool
}

// TableIIIData is the paper's Table III: the cap trade-off.
type TableIIIData struct {
	Caps       []uint64
	Benchmarks []string
	PIPO       [][2]int
	Cells      [][]TableIIICell // [benchmark][cap]
	AvgI       []float64
	AvgR       []float64
	AvgSD      []float64
}

// TableIII projects a suite result whose configurations are FullCap values
// in ascending cap order.
func TableIII(sr *SuiteResult) (*TableIIIData, error) {
	d := &TableIIIData{}
	for _, c := range sr.Configs {
		if c.MaxWrites == 0 {
			return nil, fmt.Errorf("tables: Table III wants capped configurations, got %q", c.Name)
		}
		d.Caps = append(d.Caps, c.MaxWrites)
	}
	n := len(sr.Configs)
	d.AvgI = make([]float64, n)
	d.AvgR = make([]float64, n)
	d.AvgSD = make([]float64, n)
	for b, info := range sr.Benchmarks {
		d.Benchmarks = append(d.Benchmarks, info.Name)
		d.PIPO = append(d.PIPO, [2]int{info.PI, info.PO})
		row := make([]TableIIICell, n)
		for c, rep := range sr.Reports[b] {
			row[c] = TableIIICell{
				I:      rep.NumInstructions(),
				R:      rep.NumRRAMs(),
				StdDev: rep.Writes.StdDev,
			}
			if c > 0 && row[c].I == row[c-1].I && row[c].R == row[c-1].R &&
				row[c].StdDev == row[c-1].StdDev {
				row[c].Unchanged = true
			}
			d.AvgI[c] += float64(row[c].I)
			d.AvgR[c] += float64(row[c].R)
			d.AvgSD[c] += row[c].StdDev
		}
		d.Cells = append(d.Cells, row)
	}
	bn := float64(len(sr.Benchmarks))
	for c := range sr.Configs {
		d.AvgI[c] /= bn
		d.AvgR[c] /= bn
		d.AvgSD[c] /= bn
	}
	return d, nil
}

// Grid renders Table III with the paper's dashes for unchanged cells.
func (d *TableIIIData) Grid() *Grid {
	g := &Grid{Title: "Table III: full endurance management under maximum write constraints"}
	g.Columns = []string{"benchmark", "PI/PO"}
	for _, cap := range d.Caps {
		g.Columns = append(g.Columns,
			fmt.Sprintf("cap%d #I", cap), fmt.Sprintf("cap%d #R", cap), fmt.Sprintf("cap%d STDEV", cap))
	}
	for b := range d.Benchmarks {
		row := []string{d.Benchmarks[b], fmt.Sprintf("%d/%d", d.PIPO[b][0], d.PIPO[b][1])}
		for _, cell := range d.Cells[b] {
			if cell.Unchanged {
				row = append(row, "-", "-", "-")
			} else {
				row = append(row, fmt.Sprintf("%d", cell.I), fmt.Sprintf("%d", cell.R), fmt.Sprintf("%.2f", cell.StdDev))
			}
		}
		g.Rows = append(g.Rows, row)
	}
	avg := []string{"AVG", ""}
	for c := range d.Caps {
		avg = append(avg, fmt.Sprintf("%.2f", d.AvgI[c]), fmt.Sprintf("%.2f", d.AvgR[c]), fmt.Sprintf("%.2f", d.AvgSD[c]))
	}
	g.Rows = append(g.Rows, avg)
	return g
}
