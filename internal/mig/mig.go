// Package mig implements Majority-Inverter Graphs (MIGs), the logic
// representation used by the PLiM in-memory computer and by the
// endurance-aware compilation flow of Shirinzadeh et al. (DATE 2017).
//
// An MIG is a directed acyclic graph whose internal nodes are three-input
// majority gates ⟨x y z⟩ = xy ∨ xz ∨ yz and whose edges may be complemented.
// Together with the constant 0, majority and complementation are universal.
//
// The package provides structural-hash construction (the trivial majority
// rules Ω.M are applied eagerly), word-parallel simulation, structural
// queries (levels, fanouts, topological order) used by the compiler's node
// selection, and a text serialization format.
package mig

import (
	"fmt"
	"maps"
	"math/bits"
	"sort"
)

// NodeID indexes a node inside an MIG. Node 0 is always the constant-0 node.
type NodeID uint32

// Signal is a reference to a node with an optional complement. The low bit
// holds the complement flag and the remaining bits the NodeID, so signals are
// cheap values that can be stored and compared directly.
type Signal uint32

// The two constant signals. Const0 is node 0 itself; Const1 is its
// complement.
const (
	Const0 Signal = 0
	Const1 Signal = 1
)

// MakeSignal builds a signal from a node and a complement flag.
func MakeSignal(n NodeID, complement bool) Signal {
	s := Signal(n) << 1
	if complement {
		s |= 1
	}
	return s
}

// Node returns the node the signal points to.
func (s Signal) Node() NodeID { return NodeID(s >> 1) }

// Complemented reports whether the signal inverts its node's value.
func (s Signal) Complemented() bool { return s&1 == 1 }

// Not returns the complemented signal.
func (s Signal) Not() Signal { return s ^ 1 }

// NotIf complements the signal when c is true.
func (s Signal) NotIf(c bool) Signal {
	if c {
		return s ^ 1
	}
	return s
}

// IsConst reports whether the signal is Const0 or Const1.
func (s Signal) IsConst() bool { return s.Node() == 0 }

// String renders the signal as the node id, prefixed by '!' when
// complemented; the constants render as "0" and "1".
func (s Signal) String() string {
	if s == Const0 {
		return "0"
	}
	if s == Const1 {
		return "1"
	}
	if s.Complemented() {
		return fmt.Sprintf("!%d", s.Node())
	}
	return fmt.Sprintf("%d", s.Node())
}

// Kind distinguishes the three node types of an MIG.
type Kind uint8

// Node kinds: the constant-0 node, primary inputs, and majority gates.
const (
	KindConst Kind = iota
	KindPI
	KindMaj
)

type node struct {
	kind     Kind
	children [3]Signal // valid for KindMaj only, sorted ascending
	piIndex  int32     // valid for KindPI only
}

// MIG is a mutable majority-inverter graph. The zero value is not usable;
// call New.
//
// Nodes are created in topological order: a majority node's children always
// have smaller NodeIDs, so iterating ids ascending is a topological sweep.
type MIG struct {
	Name string

	nodes   []node
	piNodes []NodeID
	piNames []string
	pos     []Signal
	poNames []string

	strash map[[3]Signal]NodeID
}

// New returns an empty MIG containing only the constant node. The
// structural-hash map grows lazily; callers that know their graph's
// magnitude should use NewSized.
func New(name string) *MIG {
	m := &MIG{
		Name:   name,
		nodes:  make([]node, 1, 1024),
		strash: make(map[[3]Signal]NodeID),
	}
	m.nodes[0] = node{kind: KindConst}
	return m
}

// NewSized returns an empty MIG with capacity reserved for roughly
// nodeCap nodes: both the node arena and the structural-hash map are
// pre-sized, so graphs of a known magnitude build without rehashing or
// slice growth. nodeCap is a hint, not a limit.
func NewSized(name string, nodeCap int) *MIG {
	if nodeCap < 1 {
		nodeCap = 1
	}
	m := &MIG{
		Name:   name,
		nodes:  make([]node, 1, 1+nodeCap),
		strash: make(map[[3]Signal]NodeID, nodeCap),
	}
	m.nodes[0] = node{kind: KindConst}
	return m
}

// Reset empties the MIG in place for reuse as a rebuild arena: the node
// slice is truncated (keeping its capacity), the structural-hash map is
// cleared (keeping its buckets) and the PI/PO tables drop to zero length.
// It must only be called on MIGs obtained from New or NewSized.
func (m *MIG) Reset(name string) {
	m.Name = name
	m.nodes = m.nodes[:1]
	m.nodes[0] = node{kind: KindConst}
	m.piNodes = m.piNodes[:0]
	m.piNames = m.piNames[:0]
	m.pos = m.pos[:0]
	m.poNames = m.poNames[:0]
	clear(m.strash)
}

// NumNodes returns the total node count including the constant node and the
// primary inputs.
func (m *MIG) NumNodes() int { return len(m.nodes) }

// NumMaj returns the number of majority nodes (the "size" of the MIG in the
// logic-synthesis sense).
func (m *MIG) NumMaj() int { return len(m.nodes) - 1 - len(m.piNodes) }

// NumPIs returns the number of primary inputs.
func (m *MIG) NumPIs() int { return len(m.piNodes) }

// NumPOs returns the number of primary outputs.
func (m *MIG) NumPOs() int { return len(m.pos) }

// Kind returns the kind of node n.
func (m *MIG) Kind(n NodeID) Kind { return m.nodes[n].kind }

// IsMaj reports whether n is a majority node.
func (m *MIG) IsMaj(n NodeID) bool { return m.nodes[n].kind == KindMaj }

// Children returns the three (sorted) child signals of majority node n.
// It must not be called on constants or PIs.
func (m *MIG) Children(n NodeID) [3]Signal {
	if m.nodes[n].kind != KindMaj {
		panic(fmt.Sprintf("mig: Children on non-majority node %d", n))
	}
	return m.nodes[n].children
}

// PIIndex returns the input index of PI node n.
func (m *MIG) PIIndex(n NodeID) int { return int(m.nodes[n].piIndex) }

// PINode returns the node of primary input i.
func (m *MIG) PINode(i int) NodeID { return m.piNodes[i] }

// PIName returns the name of primary input i ("" when unnamed).
func (m *MIG) PIName(i int) string { return m.piNames[i] }

// PO returns the signal driving primary output i.
func (m *MIG) PO(i int) Signal { return m.pos[i] }

// POName returns the name of primary output i ("" when unnamed).
func (m *MIG) POName(i int) string { return m.poNames[i] }

// SetPO redirects primary output i to signal s.
func (m *MIG) SetPO(i int, s Signal) { m.pos[i] = s }

// AddPI appends a primary input and returns its (uncomplemented) signal.
func (m *MIG) AddPI(name string) Signal {
	id := NodeID(len(m.nodes))
	m.nodes = append(m.nodes, node{kind: KindPI, piIndex: int32(len(m.piNodes))})
	m.piNodes = append(m.piNodes, id)
	m.piNames = append(m.piNames, name)
	return MakeSignal(id, false)
}

// AddPO appends a primary output driven by s and returns its index.
func (m *MIG) AddPO(s Signal, name string) int {
	m.pos = append(m.pos, s)
	m.poNames = append(m.poNames, name)
	return len(m.pos) - 1
}

// sort3 orders three signals ascending. Sorting by the raw Signal value
// orders primarily by NodeID and secondarily by complement, which gives the
// canonical form used for structural hashing (majority is commutative, Ω.C).
func sort3(a, b, c Signal) [3]Signal {
	if b < a {
		a, b = b, a
	}
	if c < b {
		b, c = c, b
		if b < a {
			a, b = b, a
		}
	}
	return [3]Signal{a, b, c}
}

// Maj returns a signal computing ⟨a b c⟩. The trivial majority rules
// (Ω.M: ⟨x x y⟩ = x and ⟨x x̄ y⟩ = y) are applied eagerly and structurally
// equivalent nodes are shared, so the returned signal may reference an
// existing node or be a constant.
func (m *MIG) Maj(a, b, c Signal) Signal {
	// Ω.M: two equal children decide; complementary children elect the third.
	if s, ok := TrivialMaj(a, b, c); ok {
		return s
	}
	key := sort3(a, b, c)
	if id, ok := m.strash[key]; ok {
		return MakeSignal(id, false)
	}
	// Canonical polarity: keep the node with at most one complemented
	// non-constant child? No — polarity canonicalization is the job of the
	// rewriting passes (Ω.I), which the paper schedules explicitly. The
	// constructor only canonicalizes order.
	id := NodeID(len(m.nodes))
	m.nodes = append(m.nodes, node{kind: KindMaj, children: key})
	m.strash[key] = id
	return MakeSignal(id, false)
}

// TrivialMaj applies only the trivial majority rules Ω.M and reports whether
// ⟨a b c⟩ folds to an existing signal without creating a node.
func TrivialMaj(a, b, c Signal) (Signal, bool) {
	switch {
	case a == b:
		return a, true
	case a == b.Not():
		return c, true
	case a == c:
		return a, true
	case a == c.Not():
		return b, true
	case b == c:
		return b, true
	case b == c.Not():
		return a, true
	}
	return 0, false
}

// LookupMaj reports whether ⟨a b c⟩ is available without creating a node:
// either it folds by the trivial rules or a structurally identical node
// already exists. The rewriting passes use it to decide whether a candidate
// transformation is free.
func (m *MIG) LookupMaj(a, b, c Signal) (Signal, bool) {
	if s, ok := TrivialMaj(a, b, c); ok {
		return s, true
	}
	if id, ok := m.strash[sort3(a, b, c)]; ok {
		return MakeSignal(id, false), true
	}
	return 0, false
}

// RawMaj inserts ⟨a b c⟩ without the trivial-rule folding (still strashed
// and sorted). It is used by tests and by deserialization, where the input
// graph's exact structure must be preserved.
func (m *MIG) RawMaj(a, b, c Signal) Signal {
	key := sort3(a, b, c)
	if id, ok := m.strash[key]; ok {
		return MakeSignal(id, false)
	}
	id := NodeID(len(m.nodes))
	m.nodes = append(m.nodes, node{kind: KindMaj, children: key})
	m.strash[key] = id
	return MakeSignal(id, false)
}

// And returns a ∧ b = ⟨a b 0⟩.
func (m *MIG) And(a, b Signal) Signal { return m.Maj(a, b, Const0) }

// Or returns a ∨ b = ⟨a b 1⟩.
func (m *MIG) Or(a, b Signal) Signal { return m.Maj(a, b, Const1) }

// Xor returns a ⊕ b built from two majority nodes.
func (m *MIG) Xor(a, b Signal) Signal {
	// a ⊕ b = (a ∨ b) ∧ ¬(a ∧ b)
	return m.And(m.Or(a, b), m.And(a, b).Not())
}

// Mux returns s ? t : f built from three majority nodes.
func (m *MIG) Mux(s, t, f Signal) Signal {
	return m.Or(m.And(s, t), m.And(s.Not(), f))
}

// Maj3 of three different word slices — helper for tests.

// ForEachMaj calls fn for every majority node in topological (ascending id)
// order.
func (m *MIG) ForEachMaj(fn func(n NodeID, children [3]Signal)) {
	for i := range m.nodes {
		if m.nodes[i].kind == KindMaj {
			fn(NodeID(i), m.nodes[i].children)
		}
	}
}

// Levels returns the level of every node: constants and PIs are level 0 and
// a majority node is one more than its deepest child. The second result is
// the depth (maximum level over POs' nodes).
func (m *MIG) Levels() (levels []int32, depth int32) {
	return m.LevelsInto(nil)
}

// LevelsInto is Levels with a caller-provided scratch slice: buf is grown
// (or allocated) to NumNodes, cleared and filled. Hot loops that level many
// graphs reuse one buffer instead of allocating per sweep.
func (m *MIG) LevelsInto(buf []int32) (levels []int32, depth int32) {
	if cap(buf) >= len(m.nodes) {
		levels = buf[:len(m.nodes)]
		clear(levels)
	} else {
		levels = make([]int32, len(m.nodes))
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj {
			continue
		}
		l := levels[n.children[0].Node()]
		if l2 := levels[n.children[1].Node()]; l2 > l {
			l = l2
		}
		if l2 := levels[n.children[2].Node()]; l2 > l {
			l = l2
		}
		levels[i] = l + 1
	}
	for _, po := range m.pos {
		if l := levels[po.Node()]; l > depth {
			depth = l
		}
	}
	return levels, depth
}

// FanoutCounts returns, for every node, the number of references to it:
// one per (parent, child-slot) plus one per primary output it drives.
// Dangling majority nodes (no references) can exist after rewriting and are
// skipped by the compiler.
func (m *MIG) FanoutCounts() []int32 {
	fanout := make([]int32, len(m.nodes))
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj {
			continue
		}
		for _, c := range n.children {
			fanout[c.Node()]++
		}
	}
	for _, po := range m.pos {
		fanout[po.Node()]++
	}
	return fanout
}

// LiveNodes marks every node reachable from a primary output.
func (m *MIG) LiveNodes() []bool {
	return m.LiveNodesInto(nil)
}

// LiveNodesInto is LiveNodes with a caller-provided scratch slice: buf is
// grown (or allocated) to NumNodes, cleared and filled. Hot loops that
// sweep many graphs reuse one buffer instead of allocating per sweep; with
// a large-enough buf the sweep is allocation-free.
func (m *MIG) LiveNodesInto(buf []bool) []bool {
	var live []bool
	if cap(buf) >= len(m.nodes) {
		live = buf[:len(m.nodes)]
		clear(live)
	} else {
		live = make([]bool, len(m.nodes))
	}
	for _, po := range m.pos {
		live[po.Node()] = true
	}
	// Children always have smaller ids than their parents, so one reverse
	// sweep propagates liveness from the POs down to the leaves — no DFS
	// stack needed, regardless of graph depth.
	for i := len(m.nodes) - 1; i > 0; i-- {
		if !live[i] {
			continue
		}
		nd := &m.nodes[i]
		if nd.kind != KindMaj {
			continue
		}
		for _, c := range nd.children {
			live[c.Node()] = true
		}
	}
	live[0] = true
	for _, pi := range m.piNodes {
		live[pi] = true
	}
	return live
}

// CountComplementedEdges returns the number of complemented fanin edges of
// live majority nodes, ignoring edges to the constant node (a complemented
// constant edge is just the constant 1 and costs nothing on PLiM), plus the
// number of complemented primary-output edges.
func (m *MIG) CountComplementedEdges() (fanin, po int) {
	live := m.LiveNodes()
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj || !live[i] {
			continue
		}
		for _, c := range n.children {
			if c.Complemented() && !c.IsConst() {
				fanin++
			}
		}
	}
	for _, p := range m.pos {
		if p.Complemented() && !p.IsConst() {
			po++
		}
	}
	return fanin, po
}

// ComplementHistogram returns hist[k] = number of live majority nodes with
// exactly k complemented non-constant fanin edges (k in 0..3). Nodes with
// k ≠ 1 need extra PLiM instructions, which is why the rewriting algorithms
// drive nodes toward k = 1.
func (m *MIG) ComplementHistogram() [4]int {
	var hist [4]int
	live := m.LiveNodes()
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj || !live[i] {
			continue
		}
		k := 0
		for _, c := range n.children {
			if c.Complemented() && !c.IsConst() {
				k++
			}
		}
		hist[k]++
	}
	return hist
}

// Eval simulates the MIG word-parallel: inputs[i] carries 64 Boolean
// assignments for primary input i (bit j of every word forms assignment j),
// and the result holds the corresponding 64 output values per primary
// output.
func (m *MIG) Eval(inputs []uint64) []uint64 {
	if len(inputs) != len(m.piNodes) {
		panic(fmt.Sprintf("mig: Eval got %d input words, want %d", len(inputs), len(m.piNodes)))
	}
	vals := make([]uint64, len(m.nodes))
	m.EvalInto(inputs, vals)
	out := make([]uint64, len(m.pos))
	for i, po := range m.pos {
		v := vals[po.Node()]
		if po.Complemented() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// EvalInto is Eval with a caller-provided scratch slice of length NumNodes;
// it fills vals with every node's value and avoids allocation in hot loops.
func (m *MIG) EvalInto(inputs []uint64, vals []uint64) {
	vals[0] = 0
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		switch n.kind {
		case KindPI:
			vals[i] = inputs[n.piIndex]
		case KindMaj:
			a := childWord(vals, n.children[0])
			b := childWord(vals, n.children[1])
			c := childWord(vals, n.children[2])
			vals[i] = (a & b) | (a & c) | (b & c)
		}
	}
}

func childWord(vals []uint64, s Signal) uint64 {
	v := vals[s.Node()]
	if s.Complemented() {
		return ^v
	}
	return v
}

// Stats summarizes the structure of an MIG.
type Stats struct {
	PIs, POs        int
	MajNodes        int // live majority nodes
	Depth           int32
	ComplementHist  [4]int // live nodes by complemented-fanin count
	ComplementedPOs int
}

// Statistics computes structural statistics over live nodes.
func (m *MIG) Statistics() Stats {
	live := m.LiveNodes()
	liveMaj := 0
	for i := range m.nodes {
		if m.nodes[i].kind == KindMaj && live[i] {
			liveMaj++
		}
	}
	_, depth := m.Levels()
	_, poComp := m.CountComplementedEdges()
	return Stats{
		PIs:             m.NumPIs(),
		POs:             m.NumPOs(),
		MajNodes:        liveMaj,
		Depth:           depth,
		ComplementHist:  m.ComplementHistogram(),
		ComplementedPOs: poComp,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("pi=%d po=%d maj=%d depth=%d comps=%v compPOs=%d",
		s.PIs, s.POs, s.MajNodes, s.Depth, s.ComplementHist, s.ComplementedPOs)
}

// Clone returns a deep copy of the MIG.
func (m *MIG) Clone() *MIG {
	return &MIG{
		Name:    m.Name,
		nodes:   append([]node(nil), m.nodes...),
		piNodes: append([]NodeID(nil), m.piNodes...),
		piNames: append([]string(nil), m.piNames...),
		pos:     append([]Signal(nil), m.pos...),
		poNames: append([]string(nil), m.poNames...),
		strash:  maps.Clone(m.strash),
	}
}

// Cleanup returns a copy of the MIG with dangling (unreachable) majority
// nodes removed and ids renumbered topologically. PIs and POs are preserved
// in order.
func (m *MIG) Cleanup() *MIG {
	live := m.LiveNodes()
	liveCount := 0
	for _, l := range live {
		if l {
			liveCount++
		}
	}
	out := NewSized(m.Name, liveCount)
	xl8 := make([]Signal, len(m.nodes)) // old node -> new signal (uncomplemented base)
	for i := range xl8 {
		xl8[i] = Const0
	}
	for i, name := range m.piNames {
		xl8[m.piNodes[i]] = out.AddPI(name)
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj || !live[i] {
			continue
		}
		a := mapSig(xl8, n.children[0])
		b := mapSig(xl8, n.children[1])
		c := mapSig(xl8, n.children[2])
		xl8[i] = out.RawMaj(a, b, c)
	}
	for i, po := range m.pos {
		out.AddPO(mapSig(xl8, po), m.poNames[i])
	}
	return out
}

func mapSig(xl8 []Signal, s Signal) Signal {
	return xl8[s.Node()].NotIf(s.Complemented())
}

// Validate checks internal invariants (children precede parents, strash
// consistency, PO targets in range) and returns a descriptive error on the
// first violation. It is used in tests after every transformation.
func (m *MIG) Validate() error {
	if len(m.nodes) == 0 || m.nodes[0].kind != KindConst {
		return fmt.Errorf("mig %q: node 0 is not the constant", m.Name)
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj {
			continue
		}
		for _, c := range n.children {
			if int(c.Node()) >= i {
				return fmt.Errorf("mig %q: node %d has child %s not preceding it", m.Name, i, c)
			}
		}
		cs := n.children
		if cs != sort3(cs[0], cs[1], cs[2]) {
			return fmt.Errorf("mig %q: node %d children not sorted: %v", m.Name, i, cs)
		}
		if cs[0].Node() == cs[1].Node() || cs[1].Node() == cs[2].Node() {
			// Duplicate underlying nodes are legal only via RawMaj (kept for
			// deserialized graphs); the compiler handles them, so Validate
			// accepts them. Nothing to check here beyond ordering.
			_ = cs
		}
	}
	for i, po := range m.pos {
		if int(po.Node()) >= len(m.nodes) {
			return fmt.Errorf("mig %q: PO %d references node %d out of range", m.Name, i, po.Node())
		}
	}
	for i, pi := range m.piNodes {
		if m.nodes[pi].kind != KindPI || int(m.nodes[pi].piIndex) != i {
			return fmt.Errorf("mig %q: PI table entry %d inconsistent", m.Name, i)
		}
	}
	return nil
}

// SortedStrashKeys is a test helper exposing deterministic iteration over
// the structural-hash table.
func (m *MIG) SortedStrashKeys() [][3]Signal {
	keys := make([][3]Signal, 0, len(m.strash))
	for k := range m.strash {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for t := 0; t < 3; t++ {
			if a[t] != b[t] {
				return a[t] < b[t]
			}
		}
		return false
	})
	return keys
}

// PatternWords returns the number of 64-bit words needed to enumerate all
// 2^n assignments of n variables exhaustively.
func PatternWords(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// ExhaustivePattern fills the word for variable v within pattern block w
// of an exhaustive enumeration: assignment index j (global bit position)
// assigns variable v the bit (j >> v) & 1.
func ExhaustivePattern(v, w int) uint64 {
	if v < 6 {
		// Repeating blocks of 2^v zeros then 2^v ones within each word.
		var basis = [6]uint64{
			0xAAAAAAAAAAAAAAAA,
			0xCCCCCCCCCCCCCCCC,
			0xF0F0F0F0F0F0F0F0,
			0xFF00FF00FF00FF00,
			0xFFFF0000FFFF0000,
			0xFFFFFFFF00000000,
		}
		return basis[v]
	}
	// Whole words are either all-0 or all-1 depending on bit (v-6) of w.
	if w>>(v-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// OnesCount64 is re-exported for convenience of callers building truth
// tables (avoids importing math/bits everywhere).
func OnesCount64(x uint64) int { return bits.OnesCount64(x) }

// MemSize estimates the graph's resident size in bytes: node storage, the
// PI/PO tables with their name strings, and the structural-hash index when
// present. It is an estimate (Go's allocator rounds size classes up), meant
// for byte-budgeted caches — see internal/lru and plim.WithCacheBudget —
// the way diskcache.GC budgets the disk tier.
func (m *MIG) MemSize() int {
	const (
		nodeBytes       = 20 // kind + 3 children + piIndex, aligned
		sliceHdr        = 24
		stringHdr       = 16
		strashEntry     = 64 // [3]Signal key + NodeID value + bucket overhead
		structANDlookup = 96 // MIG struct itself plus map header
	)
	sz := structANDlookup + len(m.Name)
	sz += sliceHdr + len(m.nodes)*nodeBytes
	sz += sliceHdr + len(m.piNodes)*4
	sz += sliceHdr + len(m.pos)*4
	sz += 2 * sliceHdr
	for _, s := range m.piNames {
		sz += stringHdr + len(s)
	}
	for _, s := range m.poNames {
		sz += stringHdr + len(s)
	}
	sz += len(m.strash) * strashEntry
	return sz
}

// Fingerprint returns a 64-bit structural hash of the MIG: its name, the
// placement and names of PIs, every majority node's (sorted) children and
// every primary output with its name. Two MIGs built by the same
// deterministic construction
// sequence share a fingerprint; any structural difference — an extra node,
// a flipped complement, a reordered PO — changes it with overwhelming
// probability. It is the function component of rewrite-memoization keys
// (see internal/core.RewriteCache) and costs one O(n) sweep.
func (m *MIG) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := 0; i < len(m.Name); i++ {
		h ^= uint64(m.Name[i])
		h *= prime64
	}
	mixString := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(uint64(len(m.piNodes)))
	for i, pi := range m.piNodes {
		mix(uint64(pi))
		mixString(m.piNames[i])
	}
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.kind != KindMaj {
			continue
		}
		mix(uint64(n.children[0]) | uint64(n.children[1])<<32)
		mix(uint64(n.children[2]) | uint64(i)<<32)
	}
	mix(uint64(len(m.pos)))
	for i, po := range m.pos {
		mix(uint64(po))
		mixString(m.poNames[i])
	}
	return h
}
