package mig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignalEncoding(t *testing.T) {
	s := MakeSignal(42, true)
	if s.Node() != 42 || !s.Complemented() {
		t.Fatalf("MakeSignal(42,true) = node %d comp %v", s.Node(), s.Complemented())
	}
	if s.Not().Complemented() {
		t.Fatalf("Not should clear the complement")
	}
	if s.Not().Node() != 42 {
		t.Fatalf("Not must not change the node")
	}
	if s.NotIf(false) != s || s.NotIf(true) != s.Not() {
		t.Fatalf("NotIf misbehaves")
	}
	if Const0.Not() != Const1 || Const1.Not() != Const0 {
		t.Fatalf("constant complements broken")
	}
	if !Const0.IsConst() || !Const1.IsConst() || MakeSignal(3, false).IsConst() {
		t.Fatalf("IsConst broken")
	}
}

func TestSignalString(t *testing.T) {
	cases := map[Signal]string{
		Const0:                "0",
		Const1:                "1",
		MakeSignal(7, false):  "7",
		MakeSignal(7, true):   "!7",
		MakeSignal(12, false): "12",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", s, got, want)
		}
	}
}

func TestTrivialMajorityRules(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")

	if got := m.Maj(x, x, y); got != x {
		t.Errorf("<x x y> = %v, want x", got)
	}
	if got := m.Maj(x, x.Not(), y); got != y {
		t.Errorf("<x !x y> = %v, want y", got)
	}
	if got := m.Maj(y, x, x); got != x {
		t.Errorf("<y x x> = %v, want x", got)
	}
	if got := m.Maj(x, y, y.Not()); got != x {
		t.Errorf("<x y !y> = %v, want x", got)
	}
	if got := m.Maj(Const0, Const1, z); got != z {
		t.Errorf("<0 1 z> = %v, want z", got)
	}
	if got := m.Maj(Const0, Const0, z); got != Const0 {
		t.Errorf("<0 0 z> = %v, want 0", got)
	}
	if m.NumMaj() != 0 {
		t.Errorf("trivial rules must not create nodes, have %d", m.NumMaj())
	}
}

func TestStructuralHashing(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	a := m.Maj(x, y, z)
	b := m.Maj(z, x, y) // commutative permutation
	c := m.Maj(y, z, x)
	if a != b || b != c {
		t.Fatalf("commutative permutations must hash to the same node: %v %v %v", a, b, c)
	}
	d := m.Maj(x.Not(), y, z)
	if d == a {
		t.Fatalf("different polarity must be a different node")
	}
	if m.NumMaj() != 2 {
		t.Fatalf("expected 2 nodes, got %d", m.NumMaj())
	}
}

func TestEvalMajorityTruthTable(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	m.AddPO(m.Maj(x, y, z), "maj")
	m.AddPO(m.Maj(x, y.Not(), z), "majn")

	in := []uint64{ExhaustivePattern(0, 0), ExhaustivePattern(1, 0), ExhaustivePattern(2, 0)}
	out := m.Eval(in)
	mask := uint64(1<<8 - 1)
	// maj(x,y,z) truth table over (z y x) = 000..111: 0,0,0,1,0,1,1,1 → bits 3,5,6,7.
	if got, want := out[0]&mask, uint64(0b11101000); got != want {
		t.Errorf("maj truth table = %08b, want %08b", got, want)
	}
	// maj(x,!y,z): rows where x + !y + z >= 2.
	var want uint64
	for row := 0; row < 8; row++ {
		x, y, z := row&1, row>>1&1, row>>2&1
		if x+(1-y)+z >= 2 {
			want |= 1 << row
		}
	}
	if got := out[1] & mask; got != want {
		t.Errorf("maj(x,!y,z) = %08b, want %08b", got, want)
	}
}

func TestDerivedGates(t *testing.T) {
	m := New("t")
	a := m.AddPI("a")
	b := m.AddPI("b")
	s := m.AddPI("s")
	m.AddPO(m.And(a, b), "and")
	m.AddPO(m.Or(a, b), "or")
	m.AddPO(m.Xor(a, b), "xor")
	m.AddPO(m.Mux(s, a, b), "mux")

	in := []uint64{ExhaustivePattern(0, 0), ExhaustivePattern(1, 0), ExhaustivePattern(2, 0)}
	out := m.Eval(in)
	mask := uint64(1<<8 - 1)
	for row := 0; row < 8; row++ {
		av := row & 1
		bv := row >> 1 & 1
		sv := row >> 2 & 1
		checks := []struct {
			name string
			got  uint64
			want int
		}{
			{"and", out[0], av & bv},
			{"or", out[1], av | bv},
			{"xor", out[2], av ^ bv},
			{"mux", out[3], map[bool]int{true: av, false: bv}[sv == 1]},
		}
		for _, c := range checks {
			if int(c.got>>row&1) != c.want {
				t.Errorf("row %d: %s = %d, want %d", row, c.name, c.got>>row&1, c.want)
			}
		}
	}
	_ = mask
}

func TestLevels(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n1 := m.Maj(x, y, z)
	n2 := m.Maj(n1, x, Const1)
	n3 := m.Maj(n2, n1, y)
	m.AddPO(n3, "f")
	levels, depth := m.Levels()
	if levels[x.Node()] != 0 || levels[n1.Node()] != 1 || levels[n2.Node()] != 2 || levels[n3.Node()] != 3 {
		t.Fatalf("levels wrong: %v", levels)
	}
	if depth != 3 {
		t.Fatalf("depth = %d, want 3", depth)
	}
}

func TestFanoutCounts(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n1 := m.Maj(x, y, z)
	n2 := m.Maj(n1, x, Const1)
	m.AddPO(n2, "f")
	m.AddPO(n1, "g")
	fo := m.FanoutCounts()
	if fo[n1.Node()] != 2 { // one parent + one PO
		t.Errorf("fanout(n1) = %d, want 2", fo[n1.Node()])
	}
	if fo[x.Node()] != 2 {
		t.Errorf("fanout(x) = %d, want 2", fo[x.Node()])
	}
	if fo[0] != 1 { // constant used by n2
		t.Errorf("fanout(const) = %d, want 1", fo[0])
	}
}

func TestLiveNodesAndCleanup(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n1 := m.Maj(x, y, z)
	_ = m.Maj(x, y, Const0) // dangling
	n3 := m.Maj(n1, z, Const1)
	m.AddPO(n3.Not(), "f")

	live := m.LiveNodes()
	if live[2] != true { // PI y
		t.Errorf("PI must be live")
	}
	cl := m.Cleanup()
	if cl.NumMaj() != 2 {
		t.Fatalf("cleanup kept %d nodes, want 2", cl.NumMaj())
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	MustBeEquivalent(m, cl, 4, 1)
}

func TestComplementHistogram(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	m.AddPO(m.Maj(x, y, z), "a")             // 0 complemented
	m.AddPO(m.Maj(x.Not(), y, z.Not()), "b") // 2 complemented
	m.AddPO(m.Maj(x.Not(), y, Const1), "c")  // 1 complemented (const doesn't count)
	hist := m.ComplementHistogram()
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 || hist[3] != 0 {
		t.Fatalf("hist = %v", hist)
	}
	fanin, po := m.CountComplementedEdges()
	if fanin != 3 {
		t.Errorf("complemented fanins = %d, want 3", fanin)
	}
	if po != 0 {
		t.Errorf("complemented POs = %d, want 0", po)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	m.AddPO(m.And(x, y), "f")
	c := m.Clone()
	c.AddPO(c.Or(x, y), "g")
	if m.NumPOs() != 1 || c.NumPOs() != 2 {
		t.Fatalf("clone not independent")
	}
	MustBeEquivalentPO0(t, m, c)
}

// MustBeEquivalentPO0 checks PO 0 of two MIGs with equal PI counts agrees.
func MustBeEquivalentPO0(t *testing.T, a, b *MIG) {
	t.Helper()
	in := make([]uint64, a.NumPIs())
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		in[i] = rng.Uint64()
	}
	if a.Eval(in)[0] != b.Eval(in)[0] {
		t.Fatalf("PO0 differs")
	}
}

func TestValidate(t *testing.T) {
	m := New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	m.AddPO(m.Maj(x, y, z), "f")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := New("rt")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n1 := m.Maj(x, y.Not(), z)
	n2 := m.Maj(n1, x, Const1)
	m.AddPO(n2.Not(), "f")
	m.AddPO(n1, "g")

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.NumPIs() != 3 || got.NumPOs() != 2 || got.NumMaj() != 2 {
		t.Fatalf("round-trip mismatch: %s pi=%d po=%d maj=%d", got.Name, got.NumPIs(), got.NumPOs(), got.NumMaj())
	}
	MustBeEquivalent(m, got, 4, 2)
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		".maj 1 2",                          // arity
		".model m\n.maj 5 1 2\n.end",        // forward reference
		".model m\n.po 9\n.end",             // undefined signal
		".model m\n.pi a\n.frob\n.end",      // unknown directive
		".model m\n.pi a",                   // missing .end
		".model m\n.maj 0 0 0\n.pi a\n.end", // .pi after .maj
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	m := New("dot")
	x := m.AddPI("x")
	y := m.AddPI("y")
	m.AddPO(m.And(x, y).Not(), "f")
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "shape=box", "style=dashed", "invtriangle"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestExhaustivePattern(t *testing.T) {
	// For 8 variables the pattern enumerates all 256 assignments across 4 words.
	n := 8
	words := PatternWords(n)
	if words != 4 {
		t.Fatalf("PatternWords(8) = %d, want 4", words)
	}
	seen := make(map[int]bool)
	for w := 0; w < words; w++ {
		for bit := 0; bit < 64; bit++ {
			idx := 0
			for v := 0; v < n; v++ {
				if ExhaustivePattern(v, w)>>uint(bit)&1 == 1 {
					idx |= 1 << v
				}
			}
			if seen[idx] {
				t.Fatalf("assignment %d seen twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 256 {
		t.Fatalf("enumerated %d assignments, want 256", len(seen))
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := New("a")
	x := a.AddPI("x")
	y := a.AddPI("y")
	a.AddPO(a.And(x, y), "f")

	b := New("b")
	x2 := b.AddPI("x")
	y2 := b.AddPI("y")
	b.AddPO(b.Or(x2, y2), "f")

	res, err := Equivalent(a, b, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatalf("AND and OR reported equivalent")
	}
	if !res.Exhaustive {
		t.Fatalf("2-input check should be exhaustive")
	}
	if res.Counterexample == nil {
		t.Fatalf("missing counterexample")
	}
	// Verify the counterexample actually distinguishes.
	xa := res.Counterexample[0]
	ya := res.Counterexample[1]
	if (xa && ya) == (xa || ya) {
		t.Fatalf("counterexample %v does not distinguish AND from OR", res.Counterexample)
	}
}

func TestEquivalentErrorsOnShapeMismatch(t *testing.T) {
	a := New("a")
	a.AddPI("x")
	b := New("b")
	if _, err := Equivalent(a, b, 1, 1); err == nil {
		t.Fatal("want PI mismatch error")
	}
	b.AddPI("x")
	a.AddPO(Const0, "f")
	if _, err := Equivalent(a, b, 1, 1); err == nil {
		t.Fatal("want PO mismatch error")
	}
}

// Property: Maj agrees with the Boolean majority under arbitrary inputs and
// polarities (word-parallel).
func TestMajPropertyQuick(t *testing.T) {
	f := func(xa, ya, za uint64, cx, cy, cz bool) bool {
		m := New("q")
		x := m.AddPI("x").NotIf(cx)
		y := m.AddPI("y").NotIf(cy)
		z := m.AddPI("z").NotIf(cz)
		m.AddPO(m.Maj(x, y, z), "f")
		out := m.Eval([]uint64{xa, ya, za})[0]
		ax, ay, az := xa, ya, za
		if cx {
			ax = ^ax
		}
		if cy {
			ay = ^ay
		}
		if cz {
			az = ^az
		}
		want := ax&ay | ax&az | ay&az
		return out == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the self-duality of majority: ⟨x̄ ȳ z̄⟩ = ¬⟨x y z⟩.
func TestMajSelfDualQuick(t *testing.T) {
	f := func(xa, ya, za uint64) bool {
		m := New("q")
		x := m.AddPI("x")
		y := m.AddPI("y")
		z := m.AddPI("z")
		m.AddPO(m.Maj(x.Not(), y.Not(), z.Not()), "a")
		m.AddPO(m.Maj(x, y, z).Not(), "b")
		out := m.Eval([]uint64{xa, ya, za})
		return out[0] == out[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatisticsString(t *testing.T) {
	m := New("s")
	x := m.AddPI("x")
	y := m.AddPI("y")
	m.AddPO(m.And(x, y.Not()), "f")
	st := m.Statistics()
	if st.MajNodes != 1 || st.PIs != 2 || st.POs != 1 || st.Depth != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "maj=1") {
		t.Fatalf("String() = %q", st.String())
	}
}

// TestReadNeverPanicsOnMutatedInput mutates a valid .mig file byte-by-byte
// and demands the parser either succeeds or returns an error — never
// panics and never accepts a graph that fails validation.
func TestReadNeverPanicsOnMutatedInput(t *testing.T) {
	m := New("fuzz")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n1 := m.Maj(x, y.Not(), z)
	m.AddPO(m.Maj(n1, x, Const1).Not(), "f")
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), orig...)
		for k := 0; k <= rng.Intn(3); k++ {
			pos := rng.Intn(len(mut))
			mut[pos] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on mutated input %q: %v", mut, r)
				}
			}()
			got, err := Read(bytes.NewReader(mut))
			if err != nil {
				return
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("Read accepted an invalid graph: %v\ninput: %q", verr, mut)
			}
		}()
	}
}

// buildFpMIG is a small deterministic graph for fingerprint/reset tests.
func buildFpMIG(name string) *MIG {
	m := New(name)
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	x := m.Maj(a, b, c)
	y := m.And(x, a.Not())
	m.AddPO(m.Or(y, c), "o")
	m.AddPO(y.Not(), "p")
	return m
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	m := buildFpMIG("f")
	if m.Fingerprint() != m.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	if m.Fingerprint() != buildFpMIG("f").Fingerprint() {
		t.Fatal("identical construction sequences must share a fingerprint")
	}
	if m.Fingerprint() == buildFpMIG("g").Fingerprint() {
		t.Fatal("fingerprint ignores the name")
	}
	bigger := buildFpMIG("f")
	bigger.AddPO(Const1, "q")
	if m.Fingerprint() == bigger.Fingerprint() {
		t.Fatal("fingerprint ignores an extra PO")
	}
	flipped := buildFpMIG("f")
	flipped.SetPO(0, flipped.PO(0).Not())
	if m.Fingerprint() == flipped.Fingerprint() {
		t.Fatal("fingerprint ignores PO polarity")
	}
}

// TestResetReuse empties a graph in place and rebuilds a different one; the
// result must be indistinguishable from a fresh build.
func TestResetReuse(t *testing.T) {
	m := buildFpMIG("first")
	m.Reset("f")
	if m.NumNodes() != 1 || m.NumPIs() != 0 || m.NumPOs() != 0 || m.NumMaj() != 0 {
		t.Fatalf("Reset left state behind: %v", m.Statistics())
	}
	// Rebuild the reference graph into the reused arena.
	a := m.AddPI("a")
	b := m.AddPI("b")
	c := m.AddPI("c")
	x := m.Maj(a, b, c)
	y := m.And(x, a.Not())
	m.AddPO(m.Or(y, c), "o")
	m.AddPO(y.Not(), "p")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != buildFpMIG("f").Fingerprint() {
		t.Fatal("rebuild into a Reset arena differs from a fresh build")
	}
}

func TestNewSizedMatchesNew(t *testing.T) {
	m := NewSized("f", 500)
	if m.NumNodes() != 1 || m.Kind(0) != KindConst {
		t.Fatal("NewSized must start with only the constant node")
	}
	a := m.AddPI("a")
	b := m.AddPI("b")
	m.AddPO(m.And(a, b), "o")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New("f")
	na := n.AddPI("a")
	nb := n.AddPI("b")
	n.AddPO(n.And(na, nb), "o")
	if m.Fingerprint() != n.Fingerprint() {
		t.Fatal("NewSized and New build different graphs")
	}
}

func TestLiveNodesIntoMatchesLiveNodes(t *testing.T) {
	m := buildFpMIG("f")
	// Add a dangling node so liveness is non-trivial.
	m.Maj(m.PO(0), m.PO(1), Const1)
	want := m.LiveNodes()
	buf := make([]bool, 2) // too small: must reallocate
	got := m.LiveNodesInto(buf)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("live[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// A large dirty buffer must be cleared and reused.
	big := make([]bool, len(want)+32)
	for i := range big {
		big[i] = true
	}
	got2 := m.LiveNodesInto(big)
	if &got2[0] != &big[0] {
		t.Fatal("large buffer was not reused")
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("reused buffer live[%d] = %v, want %v", i, got2[i], want[i])
		}
	}
}

// TestFingerprintCoversPinNames: structurally identical graphs with
// different PI/PO names must not collide (a rewrite-cache hit would
// otherwise return a graph carrying the first caller's names).
func TestFingerprintCoversPinNames(t *testing.T) {
	build := func(pi1, pi2, po string) *MIG {
		m := New("f")
		a := m.AddPI(pi1)
		b := m.AddPI(pi2)
		m.AddPO(m.And(a, b), po)
		return m
	}
	base := build("a", "b", "o").Fingerprint()
	if build("x", "b", "o").Fingerprint() == base {
		t.Fatal("fingerprint ignores PI names")
	}
	if build("a", "b", "p").Fingerprint() == base {
		t.Fatal("fingerprint ignores PO names")
	}
	// Shifting a name boundary must also be visible.
	if build("ab", "", "o").Fingerprint() == build("a", "b", "o").Fingerprint() {
		t.Fatal("fingerprint is ambiguous across name boundaries")
	}
}

// roundTrip serializes m and parses it back.
func roundTrip(t *testing.T, m *MIG) *MIG {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestWriteReadPreservesFingerprint: the persistent cache keys benchmark
// builds and rewrite results by Fingerprint(), so a Write/Read round trip
// of a canonically numbered graph — including nameless PIs and POs, which
// Write used to rename to x0/x1/… defaults — must reproduce the
// fingerprint exactly, or disk-served entries would silently never match
// freshly built graphs.
func TestWriteReadPreservesFingerprint(t *testing.T) {
	named := New("named")
	a := named.AddPI("a[0]")
	b := named.AddPI("b[0]")
	c := named.AddPI("")
	n1 := named.Maj(a, b.Not(), c)
	named.AddPO(n1, "s[0]")
	named.AddPO(named.And(n1, a).Not(), "")

	anon := New("anon")
	x := anon.AddPI("")
	y := anon.AddPI("")
	anon.AddPO(anon.Or(x, y), "")

	// A RawMaj-built graph keeps trivially foldable nodes; they must
	// survive the round trip verbatim too.
	raw := New("raw")
	p := raw.AddPI("p")
	q := raw.AddPI("q")
	raw.AddPO(raw.RawMaj(p, p, q), "o")

	for _, m := range []*MIG{named, anon, raw} {
		got := roundTrip(t, m)
		if got.Fingerprint() != m.Fingerprint() {
			t.Errorf("%s: round trip changed fingerprint", m.Name)
			for i := 0; i < m.NumPIs(); i++ {
				if m.PIName(i) != got.PIName(i) {
					t.Errorf("%s: PI %d name %q became %q", m.Name, i, m.PIName(i), got.PIName(i))
				}
			}
		}
		MustBeEquivalent(m, got, 2, 7)
	}
}

// TestWriteRenumbersInterleavedPIs: in-memory graphs may add a PI after a
// majority node, but the file format numbers all PIs first. Write must
// renumber signals into file order — emitting raw in-memory ids used to
// rebind edges silently — and the result must stabilize after one round
// trip (Write∘Read is then the identity on the serialized form).
func TestWriteRenumbersInterleavedPIs(t *testing.T) {
	m := New("interleave")
	p := m.AddPI("p")
	q := m.AddPI("q")
	g := m.And(p, q)
	r := m.AddPI("r") // PI created after a majority node
	m.AddPO(m.Or(g, r), "o")

	got := roundTrip(t, m)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumMaj() != m.NumMaj() || got.NumPIs() != m.NumPIs() {
		t.Fatalf("round trip changed shape: maj %d→%d pi %d→%d",
			m.NumMaj(), got.NumMaj(), m.NumPIs(), got.NumPIs())
	}
	MustBeEquivalent(m, got, 2, 7)

	// Once canonical, further round trips are fingerprint- and
	// byte-stable.
	again := roundTrip(t, got)
	if again.Fingerprint() != got.Fingerprint() {
		t.Fatal("second round trip changed fingerprint")
	}
	var first, second bytes.Buffer
	if err := got.Write(&first); err != nil {
		t.Fatal(err)
	}
	if err := again.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("serialized form not stable after one round trip")
	}
}

// TestLiveNodesIntoAllocationFree pins the satellite fix for the warm-suite
// allocation residue: with a caller-provided buffer, the liveness sweep
// performs zero allocations (the old implementation built a DFS stack per
// call).
func TestLiveNodesIntoAllocationFree(t *testing.T) {
	m := New("allocfree")
	sigs := []Signal{m.AddPI("a"), m.AddPI("b"), m.AddPI("c")}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))].Not()
		c := sigs[rng.Intn(len(sigs))]
		if s := m.Maj(a, b, c); !s.IsConst() {
			sigs = append(sigs, s)
		}
	}
	m.AddPO(sigs[len(sigs)-1], "o")
	buf := make([]bool, m.NumNodes())
	if avg := testing.AllocsPerRun(20, func() {
		buf = m.LiveNodesInto(buf)
	}); avg != 0 {
		t.Fatalf("LiveNodesInto allocates %.1f times per call with a warm buffer, want 0", avg)
	}
}

// TestLiveNodesDeepChain: the reverse-sweep implementation must handle
// graphs far deeper than any recursion or fixed-size stack would.
func TestLiveNodesDeepChain(t *testing.T) {
	m := New("deep")
	a := m.AddPI("a")
	b := m.AddPI("b")
	cur := m.And(a, b)
	for i := 0; i < 200000; i++ {
		cur = m.Maj(cur, a.NotIf(i%2 == 0), b.NotIf(i%3 == 0))
	}
	m.AddPO(cur, "o")
	live := m.LiveNodes()
	n := 0
	for _, l := range live {
		if l {
			n++
		}
	}
	if n != m.NumNodes() {
		t.Fatalf("deep chain: %d/%d nodes live, want all", n, m.NumNodes())
	}
}
