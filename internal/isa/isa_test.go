package isa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"plim/internal/rram"
)

// andnProgram hand-codes z = a ∧ ¬b, the "ideal" single-complement case the
// paper's cost model rewards — two instructions, no extra device:
//
//	RM3 #0,#1 -> @2   ; z ← 0
//	RM3 @0,@1 -> @2   ; z ← ⟨a b̄ 0⟩ = a ∧ ¬b
func andnProgram() *Program {
	return &Program{
		Name:     "andn",
		NumCells: 3,
		PICells:  []uint32{0, 1},
		POs:      []PORef{{Addr: 2}},
		Insts: []Instruction{
			{A: Zero, B: One, Z: 2},
			{A: Cell(0), B: Cell(1), Z: 2},
		},
	}
}

// andProgram hand-codes z = a ∧ b = ⟨a b 0⟩. The node has zero complemented
// fanins, so — exactly as the paper's §III cost model says — it needs two
// extra instructions and one extra device to materialize an inverted copy
// of b that the RM3 B operand can re-invert:
//
//	RM3 #1,#0 -> @2   ; t ← 1
//	RM3 #0,@1 -> @2   ; t ← ⟨0 b̄ 1⟩ = b̄
//	RM3 #0,#1 -> @3   ; z ← 0
//	RM3 @0,@2 -> @3   ; z ← ⟨a ¬b̄ 0⟩ = a ∧ b
func andProgram() *Program {
	return &Program{
		Name:     "and",
		NumCells: 4,
		PICells:  []uint32{0, 1},
		POs:      []PORef{{Addr: 3}},
		Insts: []Instruction{
			{A: One, B: Zero, Z: 2},
			{A: Zero, B: Cell(1), Z: 2},
			{A: Zero, B: One, Z: 3},
			{A: Cell(0), B: Cell(2), Z: 3},
		},
	}
}

func TestHandCodedAndNot(t *testing.T) {
	p := andnProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 4; row++ {
		a := row&1 == 1
		b := row>>1&1 == 1
		out, _, err := Execute(p, []bool{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (a && !b) {
			t.Errorf("ANDN(%v,%v) = %v", a, b, out[0])
		}
	}
}

func TestHandCodedAnd(t *testing.T) {
	p := andProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 4; row++ {
		a := row&1 == 1
		b := row>>1&1 == 1
		out, _, err := Execute(p, []bool{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != (a && b) {
			t.Errorf("AND(%v,%v) = %v", a, b, out[0])
		}
	}
}

func TestPresetCopyInvertIdioms(t *testing.T) {
	// Verify the four RM3 idioms documented in the package comment.
	x := rram.NewLinear(2)
	c := NewController(x)
	x.Preload(0, true) // source value x = 1

	must := func(ins Instruction) {
		t.Helper()
		if err := c.Step(ins); err != nil {
			t.Fatal(err)
		}
	}
	must(Instruction{A: Zero, B: One, Z: 1}) // preset 0
	if x.Read(1) != false {
		t.Fatal("preset-0 failed")
	}
	must(Instruction{A: Cell(0), B: Zero, Z: 1}) // copy x
	if x.Read(1) != true {
		t.Fatal("copy failed")
	}
	must(Instruction{A: One, B: Zero, Z: 1}) // preset 1
	if x.Read(1) != true {
		t.Fatal("preset-1 failed")
	}
	must(Instruction{A: Zero, B: Cell(0), Z: 1}) // invert x
	if x.Read(1) != false {
		t.Fatal("invert failed")
	}
}

func TestStaticWriteCountsMatchInterpreter(t *testing.T) {
	p := andProgram()
	static := p.StaticWriteCounts()
	_, x, err := Execute(p, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	measured := x.WriteCounts(int(p.NumCells))
	for i := range static {
		if static[i] != measured[i] {
			t.Fatalf("cell %d: static %d, measured %d", i, static[i], measured[i])
		}
	}
}

func TestNegatedPO(t *testing.T) {
	p := andnProgram()
	p.POs[0].Neg = true
	out, _, err := Execute(p, []bool{true, false}) // a∧¬b = 1, negated = 0
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Fatal("negated PO not applied")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []*Program{
		{NumCells: 1, PICells: []uint32{5}},                              // PI out of range
		{NumCells: 2, PICells: []uint32{0, 0}},                           // duplicate PI
		{NumCells: 1, POs: []PORef{{Addr: 3}}},                           // PO out of range
		{NumCells: 1, Insts: []Instruction{{A: Zero, B: Zero, Z: 9}}},    // Z out of range
		{NumCells: 1, Insts: []Instruction{{A: Cell(7), B: Zero, Z: 0}}}, // operand range
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad program", i)
		}
	}
}

func TestLoadInputsLengthMismatch(t *testing.T) {
	p := andProgram()
	c := NewController(rram.NewLinear(3))
	if err := c.LoadInputs(p, []bool{true}); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestRunStopsOnWornDevice(t *testing.T) {
	p := andProgram()
	x := rram.NewLinear(4, rram.WithEndurance(1))
	c := NewController(x)
	if err := c.LoadInputs(p, []bool{true, true}); err != nil {
		t.Fatal(err)
	}
	err := c.Run(p)
	if err == nil {
		t.Fatal("want wear-out failure (2 writes to cell 2 with endurance 1)")
	}
	if !strings.Contains(err.Error(), "inst 1") {
		t.Fatalf("error should name the failing instruction: %v", err)
	}
	if c.PC != 1 {
		t.Fatalf("PC = %d, want 1 retired instruction", c.PC)
	}
}

func TestAsmRoundTrip(t *testing.T) {
	p := andProgram()
	p.POs = append(p.POs, PORef{Addr: 0, Neg: true})
	var buf bytes.Buffer
	if err := p.WriteAsm(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAsm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertProgramsEqual(t, p, got)
}

func TestAsmReadErrors(t *testing.T) {
	cases := []string{
		"RM3 #0 -> @1\n.end",               // one operand
		"RM3 #0, #1 @1\n.end",              // missing arrow
		".cells\n.end",                     // missing count
		".plim x\n.frobnicate\n.end",       // unknown directive
		".plim x\n.cells 1",                // missing .end
		".cells 1\nRM3 #0,#1 -> @0!\n.end", // negated destination
		".cells 1\nRM3 %3,#1 -> @0\n.end",  // bad operand
	}
	for _, src := range cases {
		if _, err := ReadAsm(strings.NewReader(src)); err == nil {
			t.Errorf("ReadAsm(%q) succeeded, want error", src)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := andProgram()
	p.POs = append(p.POs, PORef{Addr: 1, Neg: true})
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertProgramsEqual(t, p, got)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("PLIM\x07")); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadBinary(strings.NewReader("PLI")); err == nil {
		t.Fatal("truncated accepted")
	}
}

func assertProgramsEqual(t *testing.T, want, got *Program) {
	t.Helper()
	if got.Name != want.Name || got.NumCells != want.NumCells {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", got.Name, got.NumCells, want.Name, want.NumCells)
	}
	if len(got.PICells) != len(want.PICells) || len(got.POs) != len(want.POs) || len(got.Insts) != len(want.Insts) {
		t.Fatalf("shape mismatch")
	}
	for i := range want.PICells {
		if got.PICells[i] != want.PICells[i] {
			t.Fatalf("PI %d mismatch", i)
		}
	}
	for i := range want.POs {
		if got.POs[i] != want.POs[i] {
			t.Fatalf("PO %d mismatch", i)
		}
	}
	for i := range want.Insts {
		if got.Insts[i] != want.Insts[i] {
			t.Fatalf("inst %d: %v vs %v", i, got.Insts[i], want.Insts[i])
		}
	}
}

// Property: binary round-trip preserves arbitrary generated programs.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		// Derive a syntactically valid program from the fuzz bytes.
		p := &Program{Name: "q", NumCells: 16}
		for i, b := range raw {
			ins := Instruction{
				A: Operand{Kind: OperandKind(b % 3)},
				B: Operand{Kind: OperandKind(b / 3 % 3)},
				Z: uint32(b) % p.NumCells,
			}
			if ins.A.Kind == OpCell {
				ins.A.Addr = uint32(i) % p.NumCells
			}
			if ins.B.Kind == OpCell {
				ins.B.Addr = uint32(b>>4) % p.NumCells
			}
			p.Insts = append(p.Insts, ins)
		}
		var buf bytes.Buffer
		if err := p.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Insts) != len(p.Insts) {
			return false
		}
		for i := range p.Insts {
			if got.Insts[i] != p.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOperandString(t *testing.T) {
	if Zero.String() != "#0" || One.String() != "#1" || Cell(5).String() != "@5" {
		t.Fatal("operand rendering broken")
	}
	ins := Instruction{A: Cell(1), B: One, Z: 9}
	if ins.String() != "RM3 @1, #1 -> @9" {
		t.Fatalf("instruction rendering: %q", ins.String())
	}
}

// TestReadAsmNeverPanicsOnMutatedInput mirrors the MIG parser fuzz check
// for the assembly reader: mutated programs either parse into something
// Validate accepts or fail cleanly.
func TestReadAsmNeverPanicsOnMutatedInput(t *testing.T) {
	var buf bytes.Buffer
	if err := andProgram().WriteAsm(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), orig...)
		for k := 0; k <= rng.Intn(3); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadAsm panicked on %q: %v", mut, r)
				}
			}()
			got, err := ReadAsm(bytes.NewReader(mut))
			if err != nil {
				return
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("ReadAsm accepted an invalid program: %v", verr)
			}
		}()
	}
}
