package determinism

import "time"

// CacheKey is in scope by name (contains "Key").
func CacheKey(parts map[string]string) string {
	k := ""
	for _, v := range parts { // want: map iteration
		k += v
	}
	return k
}

// Fingerprint is in scope by name.
func Fingerprint() uint64 {
	seed := make(map[int]int)
	seed[1] = 2
	for _, v := range seed { // want: map iteration
		return uint64(v)
	}
	return 0
}

// Elapsed is NOT identity-sensitive and not in a codec/coalesce file:
// the clock is fine here.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
