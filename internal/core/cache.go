package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"plim/internal/diskcache"
	"plim/internal/lru"
	"plim/internal/mig"
	"plim/internal/progress"
	"plim/internal/rewrite"
	"plim/internal/trace"
)

// errComputePanicked is what waiters observe when the computing caller
// panicked instead of completing: the entry is gone, so they retry (and hit
// the same panic in their own stack if it is deterministic).
var errComputePanicked = errors.New("core: rewrite computation panicked")

// RewriteCache memoizes rewriting runs across configurations, benchmarks
// and engine calls. Entries are keyed by (function fingerprint, rewrite
// kind, effort), so any structurally identical MIG — e.g. the same
// benchmark rebuilt by a later table — reuses the stored result instead of
// rewriting again.
//
// Concurrent callers with the same key share one computation
// (singleflight): the first caller rewrites and emits the progress events,
// the rest wait on the result. Failed computations (typically context
// cancellation) are never cached; the next caller retries.
//
// The cache is byte-budgeted: each completed entry is charged its graph's
// estimated size (mig.MemSize), and completing a computation evicts the
// least-recently-used completed entries until the total fits the budget —
// so long-lived engines do not accumulate one rewritten MIG per distinct
// function they ever saw. In-flight computations are never evicted. Waiters that already
// hold an entry observe its result even if it is evicted concurrently —
// eviction only unindexes.
//
// Cached MIGs are shared across callers and must be treated as read-only.
// The compilation stages only read their input, so the staged runners can
// share entries freely; the public facade clones before handing a cached
// graph to user code.
type RewriteCache struct {
	mu      sync.Mutex
	entries *lru.Map[rewriteKey, *rewriteEntry]

	// hits/misses count memory-tier probe outcomes (a probe that attaches
	// to an in-flight computation counts as a hit; disk-tier accounting
	// lives in diskcache.Counters). Feeds plimserve_cache_probe_total.
	hits, misses atomic.Uint64

	// disk, when non-nil, is the persistent second tier: an in-memory miss
	// probes the disk before computing, and freshly computed results are
	// written back (best-effort). Disk-served results are byte-identical to
	// computed ones and emit no progress events, exactly like memory hits.
	disk *diskcache.Cache
}

type rewriteKey struct {
	fp     uint64
	kind   RewriteKind
	effort int
}

type rewriteEntry struct {
	done chan struct{} // closed when the computation finishes
	m    *mig.MIG
	st   rewrite.Stats
	err  error
}

// NewRewriteCache returns an unbounded cache (every distinct key is kept
// until the cache is dropped). Long-lived callers should prefer
// NewRewriteCacheWithBudget.
func NewRewriteCache() *RewriteCache {
	return NewRewriteCacheWithBudget(0)
}

// NewRewriteCacheWithBudget returns a cache evicting least-recently-used
// entries once their summed estimated bytes exceed budget; budget ≤ 0
// means unbounded.
func NewRewriteCacheWithBudget(budget int) *RewriteCache {
	return &RewriteCache{entries: lru.New[rewriteKey, *rewriteEntry](budget)}
}

// SetDisk installs (or, with nil, removes) the persistent second tier.
// It must be called before the cache is shared across goroutines.
func (c *RewriteCache) SetDisk(d *diskcache.Cache) { c.disk = d }

// Len reports the number of cached rewrites (including in-flight ones).
func (c *RewriteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.Len()
}

// Budget reports the cache's byte budget (≤ 0 = unbounded).
func (c *RewriteCache) Budget() int { return c.entries.Budget() }

// Probes reports the memory-tier probe counters: hits (including probes
// that attached to an in-flight computation) and misses (probes that had
// to compute or go to disk). Nil-safe.
func (c *RewriteCache) Probes() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Rewrite is core.Rewrite memoized through the cache. A nil *RewriteCache
// computes directly (the uncached path). On a hit no progress events are
// emitted — the rewrite simply did not run again.
func (c *RewriteCache) Rewrite(ctx context.Context, m *mig.MIG, kind RewriteKind, effort int, obs progress.Func, label string) (*mig.MIG, rewrite.Stats, error) {
	if err := ctx.Err(); err != nil {
		// Checked up front so a cancelled caller never races a ready cache
		// hit into returning a result.
		return nil, rewrite.Stats{}, err
	}
	if c == nil {
		return Rewrite(ctx, m, kind, effort, obs, label)
	}
	key := rewriteKey{fp: m.Fingerprint(), kind: kind, effort: effort}
	// One cache span per probe, a child of the enclosing rewrite task span.
	// It covers the lookup (and, for a coalesced caller, the wait on the
	// in-flight computation), never the computation itself, and is annotated
	// with the resolved outcome: memory-hit / disk-hit / verify-miss /
	// compute. Zero Handle (free no-ops) when ctx carries no trace.
	sp := trace.StartNoCtx(ctx, "cache", "rewrite-probe")
	if sp.Traced() {
		sp.Attr("fp", fmt.Sprintf("%016x", key.fp))
	}
	first := true
	for {
		c.mu.Lock()
		ent, ok := c.entries.Get(key)
		if first {
			first = false
			if ok {
				c.hits.Add(1)
			} else {
				c.misses.Add(1)
			}
		}
		if !ok {
			e := &rewriteEntry{done: make(chan struct{})}
			handle := c.entries.Add(key, e)
			c.mu.Unlock()
			// Publish via defer so a panicking rewrite (a compiler-invariant
			// panic, a malformed caller-built MIG) still unindexes the entry
			// and closes done — otherwise every future caller of this key
			// would block forever on an entry nobody is computing.
			completed := false
			func() {
				defer func() {
					if !completed && e.err == nil {
						e.err = errComputePanicked
					}
					c.mu.Lock()
					if e.err != nil {
						// Don't poison the cache with (usually cancellation)
						// errors; waiters observe the error and retry or
						// fail themselves.
						c.entries.Delete(key)
					} else {
						handle.Evictable = true
						c.entries.SetCost(handle, e.m.MemSize())
						c.entries.EvictExcess(nil)
					}
					c.mu.Unlock()
					close(e.done)
				}()
				if c.disk != nil {
					dm, dst, out := c.disk.ProbeRewrite(key.fp, uint8(kind), effort)
					if out == diskcache.ProbeHit {
						// Disk hit: the stored graph was computed (possibly by
						// another process) from a fingerprint-identical input,
						// so it is byte-identical to what Rewrite would
						// produce. No progress events, like any cache hit.
						e.m, e.st = dm, dst
						completed = true
						sp.Attr("outcome", "disk-hit")
						sp.End()
						return
					}
					if out == diskcache.ProbeVerifyMiss {
						sp.Attr("outcome", "verify-miss")
					} else {
						sp.Attr("outcome", "compute")
					}
				} else {
					sp.Attr("outcome", "compute")
				}
				sp.End() // the computation itself is the task span's time
				e.m, e.st, e.err = Rewrite(ctx, m, kind, effort, obs, label)
				if e.err == nil && e.m == m {
					// Effort 0 (or RewriteNone on an already-clean graph) can
					// hand the caller's own MIG back; the cache must never
					// retain a graph the caller may keep mutating.
					e.m = m.Clone()
				}
				completed = true
				if e.err == nil && c.disk != nil {
					// Best-effort write-back; a failed store only costs the
					// next cold process a recomputation.
					_ = c.disk.StoreRewrite(key.fp, uint8(kind), effort, e.m, e.st)
				}
			}()
			if e.err != nil {
				return nil, rewrite.Stats{}, e.err
			}
			return e.m, e.st, nil
		}
		e := ent.Value
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				sp.Attr("outcome", "memory-hit")
				sp.End()
				return e.m, e.st, nil
			}
			// The computing caller failed; its entry is gone. Retry: either
			// this caller computes (and reports its own error) or it waits
			// on a newer computation.
		case <-ctx.Done():
			sp.End()
			return nil, rewrite.Stats{}, ctx.Err()
		}
	}
}
