package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := Load(fset, filepath.Join("testdata", name), "")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s: no Go files", name)
	}
	return []*Package{pkg}
}

// expectDiags asserts one diagnostic per expected substring, in order.
func expectDiags(t *testing.T, diags []Diagnostic, want []string) {
	t.Helper()
	for _, d := range diags {
		t.Logf("  %s", d)
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].String(), w) {
			t.Errorf("diagnostic %d = %s, want substring %q", i, diags[i], w)
		}
	}
}

func TestHotPathFixture(t *testing.T) {
	pkgs := loadFixture(t, "hotpath")
	a := HotPathAllocWithRoots([]string{"hotpath.Hot"})
	diags := Run(pkgs, []*Analyzer{a})
	expectDiags(t, diags, []string{
		"make(map) allocates",       // newState
		"append onto a fresh slice", // helper ys
		"sort.Ints",                 // helper sort
		"conversion to any",         // helper boxing
		"map literal",               // thing.method
	})
	for _, d := range diags {
		if strings.Contains(d.Message, "Cold") {
			t.Errorf("unreachable Cold was flagged: %s", d)
		}
	}
	// The //plim:alloc-ok site in helper is line 24; assert it is absent.
	for _, d := range diags {
		if d.Pos.Line == 24 {
			t.Errorf("annotated allocation was flagged: %s", d)
		}
	}
}

func TestHotPathNoRootsNoFindings(t *testing.T) {
	pkgs := loadFixture(t, "hotpath")
	a := HotPathAllocWithRoots([]string{"hotpath.NoSuchRoot"})
	if diags := Run(pkgs, []*Analyzer{a}); len(diags) != 0 {
		t.Fatalf("no reachable roots but got %d diagnostics: %v", len(diags), diags)
	}
}

func TestDeterminismFixture(t *testing.T) {
	pkgs := loadFixture(t, "determinism")
	diags := Run(pkgs, []*Analyzer{Determinism})
	expectDiags(t, diags, []string{
		"time.Now call in identity-sensitive determinism.stamp",
		"iteration over a map (randomized order) in identity-sensitive determinism.serialize",
		"iteration over a map (randomized order) in identity-sensitive determinism.CacheKey",
		"iteration over a map (randomized order) in identity-sensitive determinism.Fingerprint",
	})
	for _, d := range diags {
		if strings.Contains(d.Message, "Elapsed") || strings.Contains(d.Message, "serializeSlice") {
			t.Errorf("out-of-scope function flagged: %s", d)
		}
	}
}

func TestCtxFirstFixture(t *testing.T) {
	pkgs := loadFixture(t, "ctxfirst")
	diags := Run(pkgs, []*Analyzer{CtxFirst})
	expectDiags(t, diags, []string{
		"ctxfirst.Bad takes context.Context as parameter 2",
		"ctxfirst.Run takes context.Context as parameter 2",
	})
}

// TestModuleClean is the invariant itself: the full analyzer suite finds
// nothing in the real module. A regression here means a hot path gained an
// unannotated allocation, identity code started consulting the clock or a
// map's order, or an exported API buried its context.
func TestModuleClean(t *testing.T) {
	root := filepath.Join("..", "..")
	fset := token.NewFileSet()
	module := ModulePath(root)
	if module == "" {
		t.Fatal("module path not found from go.mod")
	}
	pkgs, err := LoadTree(fset, root, module)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; tree walk is broken", len(pkgs), root)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d lint finding(s) in the module", len(diags))
	}
}

func TestModulePath(t *testing.T) {
	if got := ModulePath(filepath.Join("..", "..")); got != "plim" {
		t.Fatalf("ModulePath = %q, want plim", got)
	}
	if got := ModulePath("testdata"); got != "" {
		t.Fatalf("ModulePath(testdata) = %q, want empty", got)
	}
}
