// Package cost prices PLiM instructions. It is the single pluggable cost
// abstraction behind every layer that previously carried its own write/wear
// accounting: a Model assigns each instruction class an energy, a cycle
// latency and a wear increment, and every layer (static verification,
// the compiler's allocator bookkeeping, the scalar interpreter, the batched
// executor) derives its totals from the same per-class op counts — so
// their costs must agree exactly, a parity the tests pin.
//
// The class of an instruction follows the PLiM operand forms: the two
// destination-independent presets RM3 #0,#1 → Z (RESET, Z ← 0) and
// RM3 #1,#0 → Z (SET, Z ← 1) are priced as bulk switching operations;
// every other instruction — compute, copy, invert — is a full resistive
// majority (RM3) whose result depends on the destination's prior state.
//
// Costs are derived canonically: totals are computed from integer per-class
// counts in one fixed expression (FromCounts), never accumulated
// per-instruction in floating point, so two layers that agree on the counts
// produce bit-identical energy totals regardless of summation order.
package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"plim/internal/isa"
	"plim/internal/stats"
)

// Op is an instruction class.
type Op uint8

// Instruction classes.
const (
	OpReset Op = iota // RM3 #0,#1 → Z (Z ← 0)
	OpSet             // RM3 #1,#0 → Z (Z ← 1)
	OpRM3             // any other RM3: compute, copy, invert
	NumOps
)

// String names the class.
func (o Op) String() string {
	switch o {
	case OpReset:
		return "reset"
	case OpSet:
		return "set"
	case OpRM3:
		return "rm3"
	}
	return "?"
}

// Classify returns the class of one instruction. The two preset forms are
// the only destination-independent instructions (verify.isPreset proves the
// same property); everything else is a full majority.
func Classify(ins isa.Instruction) Op {
	switch {
	case ins.A.Kind == isa.OpConst0 && ins.B.Kind == isa.OpConst1:
		return OpReset
	case ins.A.Kind == isa.OpConst1 && ins.B.Kind == isa.OpConst0:
		return OpSet
	default:
		return OpRM3
	}
}

// Counts are per-class op totals — the integer quantity every layer
// accumulates independently and FromCounts prices canonically.
type Counts [NumOps]uint64

// Note counts one instruction of class op.
func (c *Counts) Note(op Op) { c[op]++ }

// Total sums all classes.
func (c Counts) Total() uint64 { return c[OpReset] + c[OpSet] + c[OpRM3] }

// OpCost prices one instruction class.
type OpCost struct {
	// EnergyPJ is the switching energy of one operation in picojoules.
	EnergyPJ float64 `json:"energy_pj"`
	// LatencyCycles is the controller occupancy of one operation.
	LatencyCycles uint64 `json:"latency_cycles"`
	// Wear is the endurance consumed by the destination cell per operation.
	// The default of 1 makes per-cell wear identical to the write counts the
	// rest of the system proves exact.
	Wear uint64 `json:"wear"`
}

// Model prices the three instruction classes and carries the endurance
// budget that turns wear into a lifetime estimate. Models never change
// which program is compiled — they only annotate it.
type Model struct {
	Name  string `json:"name"`
	Reset OpCost `json:"reset"`
	Set   OpCost `json:"set"`
	RM3   OpCost `json:"rm3"`
	// EnduranceWrites is the per-cell wear budget a device survives
	// (0 = unlimited; see Cost.LifetimeRuns).
	EnduranceWrites uint64 `json:"endurance_writes"`
}

// DefaultEndurance is the default model's per-cell endurance budget,
// matching the 10^10 write-cycle figure the serving layer reports
// lifetimes against.
const DefaultEndurance = 1e10

// Default returns the built-in model: representative metal-oxide RRAM
// switching energies (RESET pulses are cheaper than SET, and a full
// majority adds the operand reads), single-cycle presets against a
// three-cycle read-read-write majority, and a wear increment of 1 per
// write pulse — which makes default per-cell wear exactly the write
// counts the verifier proves, the parity the tests pin.
func Default() *Model {
	return &Model{
		Name:            "default",
		Reset:           OpCost{EnergyPJ: 1.4, LatencyCycles: 1, Wear: 1},
		Set:             OpCost{EnergyPJ: 2.1, LatencyCycles: 1, Wear: 1},
		RM3:             OpCost{EnergyPJ: 2.8, LatencyCycles: 3, Wear: 1},
		EnduranceWrites: DefaultEndurance,
	}
}

// Of returns the price of one class.
func (m *Model) Of(op Op) OpCost {
	switch op {
	case OpReset:
		return m.Reset
	case OpSet:
		return m.Set
	default:
		return m.RM3
	}
}

// Validate rejects models that cannot price a program sensibly.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("cost: model has no name")
	}
	for op := OpReset; op < NumOps; op++ {
		oc := m.Of(op)
		if math.IsNaN(oc.EnergyPJ) || math.IsInf(oc.EnergyPJ, 0) || oc.EnergyPJ < 0 {
			return fmt.Errorf("cost: model %q: %s energy %v is not a finite non-negative number", m.Name, op, oc.EnergyPJ)
		}
		if oc.LatencyCycles == 0 {
			return fmt.Errorf("cost: model %q: %s latency must be at least one cycle", m.Name, op)
		}
	}
	return nil
}

// Load decodes a JSON model and validates it.
func Load(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	m := new(Model)
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("cost: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile reads a JSON model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Cost is the priced outcome of one program execution (or, scaled, of a
// batch of executions). All totals derive from the per-class counts via
// FromCounts, so equal counts guarantee bit-identical totals.
type Cost struct {
	// Model names the model that priced this cost; costs priced under
	// different models are not comparable.
	Model string `json:"model"`

	Resets uint64 `json:"resets"`
	Sets   uint64 `json:"sets"`
	RM3s   uint64 `json:"rm3s"`
	// Ops is the total instruction count (the paper's #I when scale is 1).
	Ops uint64 `json:"ops"`

	EnergyPJ      float64 `json:"energy_pj"`
	LatencyCycles uint64  `json:"latency_cycles"`

	// TotalWear sums wear over all cells; MaxCellWear is the hottest cell's
	// wear — the quantity that bounds lifetime.
	TotalWear   uint64 `json:"total_wear"`
	MaxCellWear uint64 `json:"max_cell_wear"`

	// LifetimeRuns estimates how many runs of the program the endurance
	// budget survives: EnduranceWrites / MaxCellWear per single run. It is
	// stats.MaxLifetime (reported as unlimited) when the program writes no
	// cell or the model declares no budget, and stays a per-run figure even
	// in costs scaled over a batch.
	LifetimeRuns uint64 `json:"lifetime_runs"`
}

// Unlimited reports whether the cost's lifetime is unbounded (no wear, or
// no endurance budget to exhaust).
func (c Cost) Unlimited() bool { return c.LifetimeRuns == stats.MaxLifetime }

// FromCounts prices per-class op counts. maxCellWear is the hottest cell's
// accumulated wear, which the caller tracks per cell (the canonical helpers
// Price and Program do). This is the single derivation every layer shares.
func (m *Model) FromCounts(ops Counts, maxCellWear uint64) Cost {
	c := Cost{
		Model:       m.Name,
		Resets:      ops[OpReset],
		Sets:        ops[OpSet],
		RM3s:        ops[OpRM3],
		Ops:         ops.Total(),
		MaxCellWear: maxCellWear,
	}
	c.EnergyPJ = float64(ops[OpReset])*m.Reset.EnergyPJ +
		float64(ops[OpSet])*m.Set.EnergyPJ +
		float64(ops[OpRM3])*m.RM3.EnergyPJ
	c.LatencyCycles = ops[OpReset]*m.Reset.LatencyCycles +
		ops[OpSet]*m.Set.LatencyCycles +
		ops[OpRM3]*m.RM3.LatencyCycles
	c.TotalWear = ops[OpReset]*m.Reset.Wear +
		ops[OpSet]*m.Set.Wear +
		ops[OpRM3]*m.RM3.Wear
	c.LifetimeRuns = lifetimeRuns(m.EnduranceWrites, maxCellWear)
	return c
}

// lifetimeRuns applies the infinite-lifetime convention shared with
// stats.Lifetime: a program that wears no cell — or a model without an
// endurance budget — never exhausts a device.
func lifetimeRuns(endurance, maxCellWear uint64) uint64 {
	if maxCellWear == 0 || endurance == 0 {
		return stats.MaxLifetime
	}
	return endurance / maxCellWear
}

// Price prices an instruction slice over numCells cells in one walk:
// per-class counts plus per-cell wear for the lifetime bound.
func (m *Model) Price(insts []isa.Instruction, numCells int) Cost {
	var ops Counts
	wear := make([]uint64, numCells)
	for _, ins := range insts {
		op := Classify(ins)
		ops[op]++
		wear[ins.Z] += m.Of(op).Wear
	}
	var maxWear uint64
	for _, w := range wear {
		if w > maxWear {
			maxWear = w
		}
	}
	return m.FromCounts(ops, maxWear)
}

// Program prices a whole program.
func (m *Model) Program(p *isa.Program) Cost {
	return m.Price(p.Insts, int(p.NumCells))
}

// Scale prices n executions of a run costing c: counts, energy, latency and
// wear all scale by n, re-derived through the canonical expression so a
// scaled cost equals an independently accumulated batch cost exactly.
// LifetimeRuns stays the per-run figure — a batch does not change how many
// runs the endurance budget survives.
func (m *Model) Scale(c Cost, n uint64) Cost {
	out := m.FromCounts(Counts{c.Resets * n, c.Sets * n, c.RM3s * n}, c.MaxCellWear*n)
	out.LifetimeRuns = c.LifetimeRuns
	return out
}
