// Package tables regenerates the evaluation tables of Shirinzadeh et al.,
// DATE 2017: Table I (write distribution of the incremental endurance
// techniques), Table II (instruction and device costs) and Table III (the
// maximum-write-count trade-off), plus an ablation table that isolates each
// technique (not in the paper).
//
// A SuiteResult holds the full benchmark × configuration matrix of reports;
// the Table* functions project it into the paper's layouts and the Render*
// functions produce aligned text, Markdown and CSV.
package tables

import (
	"fmt"
	"runtime"
	"sync"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/core"
	"plim/internal/suite"
)

// SuiteResult is the benchmark × configuration report matrix.
type SuiteResult struct {
	Benchmarks []suite.Info
	Configs    []core.Config
	// Reports[b][c] is the report of Configs[c] on Benchmarks[b].
	Reports [][]*core.Report
}

// Options configures a suite run.
type Options struct {
	// Benchmarks to run; nil means the full 18-benchmark suite.
	Benchmarks []string
	// Effort is the rewriting cycle budget (0 → core.DefaultEffort = 5).
	Effort int
	// Shrink divides datapath widths for quick runs (0 or 1 → paper scale).
	Shrink int
	// Workers bounds parallelism (0 → GOMAXPROCS).
	Workers int
}

func (o *Options) normalize() {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = suite.Names()
	}
	if o.Effort == 0 {
		o.Effort = core.DefaultEffort
	}
	if o.Shrink == 0 {
		o.Shrink = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// RunSuite evaluates every configuration on every requested benchmark.
// Benchmarks run in parallel; results are deterministic and ordered.
func RunSuite(cfgs []core.Config, opts Options) (*SuiteResult, error) {
	opts.normalize()
	sr := &SuiteResult{
		Benchmarks: make([]suite.Info, len(opts.Benchmarks)),
		Configs:    cfgs,
		Reports:    make([][]*core.Report, len(opts.Benchmarks)),
	}
	type job struct{ idx int }
	jobs := make(chan job)
	errs := make([]error, len(opts.Benchmarks))
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				errs[j.idx] = sr.runOne(j.idx, opts)
			}
		}()
	}
	for i := range opts.Benchmarks {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sr, nil
}

func (sr *SuiteResult) runOne(idx int, opts Options) error {
	name := opts.Benchmarks[idx]
	info, ok := suite.Get(name)
	if !ok {
		return fmt.Errorf("tables: unknown benchmark %q", name)
	}
	m, err := suite.BuildScaled(name, opts.Shrink)
	if err != nil {
		return err
	}
	if opts.Shrink != 1 {
		info.PI = m.NumPIs()
		info.PO = m.NumPOs()
	}
	sr.Benchmarks[idx] = info
	reports := make([]*core.Report, len(sr.Configs))
	for c, cfg := range sr.Configs {
		rep, err := core.Run(m, cfg, opts.Effort)
		if err != nil {
			return fmt.Errorf("tables: %s/%s: %w", name, cfg.Name, err)
		}
		reports[c] = rep
	}
	sr.Reports[idx] = reports
	return nil
}

// ConfigIndex locates a configuration by name.
func (sr *SuiteResult) ConfigIndex(name string) int {
	for i, c := range sr.Configs {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AblationConfigs isolates each endurance technique on top of the naive
// baseline — an extension beyond the paper that quantifies how much each
// lever contributes on its own.
func AblationConfigs() []core.Config {
	return []core.Config{
		core.Naive,
		{Name: "minwrite-only", Rewrite: core.RewriteNone, Selection: compile.NodeOrder, Alloc: alloc.MinWrite},
		{Name: "selection-only", Rewrite: core.RewriteNone, Selection: compile.Endurance, Alloc: alloc.LIFO},
		{Name: "rewriting-only", Rewrite: core.RewriteAlgorithm2, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		{Name: "alg1-rewriting-only", Rewrite: core.RewriteAlgorithm1, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		core.Full,
	}
}
