// Package tables regenerates the evaluation tables of Shirinzadeh et al.,
// DATE 2017: Table I (write distribution of the incremental endurance
// techniques), Table II (instruction and device costs) and Table III (the
// maximum-write-count trade-off), plus an ablation table that isolates each
// technique (not in the paper).
//
// A SuiteResult holds the full benchmark × configuration matrix of reports;
// the Table* functions project it into the paper's layouts and the Render*
// functions produce aligned text, Markdown and CSV.
package tables

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"plim/internal/alloc"
	"plim/internal/compile"
	"plim/internal/core"
	"plim/internal/progress"
	"plim/internal/suite"
)

// SuiteResult is the benchmark × configuration report matrix.
type SuiteResult struct {
	Benchmarks []suite.Info
	Configs    []core.Config
	// Reports[b][c] is the report of Configs[c] on Benchmarks[b].
	Reports [][]*core.Report
}

// Options configures a suite run. All fields are explicit: Effort 0 really
// runs zero rewriting cycles and Workers/Shrink must be ≥ 1 (the legacy
// zero-value-means-default normalization lives only in the deprecated
// plim.RunSuite wrapper).
type Options struct {
	// Benchmarks to run; nil or empty means the full 18-benchmark suite.
	Benchmarks []string
	// Effort is the rewriting cycle budget; 0 disables rewriting cycles.
	Effort int
	// Shrink divides datapath widths for quick runs (1 = paper scale).
	Shrink int
	// Workers bounds parallelism across the whole run: benchmark jobs and
	// the compile jobs they fan out share one worker budget.
	Workers int
	// Progress receives typed suite events. It may be invoked concurrently
	// from worker goroutines; callers that need serialized delivery must
	// wrap it (plim.Engine does).
	Progress progress.Func
	// BenchCache, when non-nil, reuses benchmark generator output across
	// runs (shared read-only instances). plim.Engine threads its cache
	// through here.
	BenchCache *suite.Cache
	// RewriteCache, when non-nil, memoizes rewrite stages across
	// configurations, benchmarks and runs.
	RewriteCache *core.RewriteCache
	// Scratch, when non-nil, supplies reusable compile scratch state to
	// every compile job of the run; nil uses the compile package's shared
	// default pool.
	Scratch *compile.ScratchPool
}

func (o *Options) validate() error {
	if o.Effort < 0 {
		return fmt.Errorf("tables: Effort must be ≥ 0, got %d", o.Effort)
	}
	if o.Shrink < 1 {
		return fmt.Errorf("tables: Shrink must be ≥ 1, got %d", o.Shrink)
	}
	if o.Workers < 1 {
		return fmt.Errorf("tables: Workers must be ≥ 1, got %d", o.Workers)
	}
	return nil
}

// RunSuite evaluates every configuration on every requested benchmark as a
// two-level schedule. Level one runs benchmark jobs in parallel: build the
// MIG (through the benchmark cache, when set) and run each distinct
// rewrite stage of the configuration plan exactly once (memoized through
// the rewrite cache, when set). Level two fans the per-configuration
// compile jobs out over the same worker budget: a benchmark job holds one
// worker and borrows idle spare workers for its compile stages, so the
// whole run never exceeds opts.Workers goroutines doing work.
//
// Results are deterministic and ordered. Cancellation is checked between
// suite jobs (and, inside each job, between rewrite cycles and compile
// stages); once ctx is cancelled RunSuite stops dispatching work and
// returns ctx.Err(). When several benchmarks fail independently, every
// failure is reported through one joined error.
func RunSuite(ctx context.Context, cfgs []core.Config, opts Options) (*SuiteResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = suite.Names()
	}
	sr := &SuiteResult{
		Benchmarks: make([]suite.Info, len(opts.Benchmarks)),
		Configs:    cfgs,
		Reports:    make([][]*core.Report, len(opts.Benchmarks)),
	}
	// Workers not running benchmark jobs are spare tokens the compile
	// fan-out of in-flight benchmarks may borrow.
	benchWorkers := min(opts.Workers, len(opts.Benchmarks))
	spare := make(chan struct{}, opts.Workers)
	for i := 0; i < opts.Workers-benchWorkers; i++ {
		spare <- struct{}{}
	}
	jobs := make(chan int)
	errs := make([]error, len(opts.Benchmarks))
	var wg sync.WaitGroup
	for w := 0; w < benchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				errs[idx] = sr.runOne(ctx, idx, opts, spare)
			}
		}()
	}
dispatch:
	for i := range opts.Benchmarks {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return sr, nil
}

func (sr *SuiteResult) runOne(ctx context.Context, idx int, opts Options, spare chan struct{}) error {
	name := opts.Benchmarks[idx]
	opts.Progress.Emit(progress.BenchmarkStart{
		Benchmark: name, Index: idx, Total: len(opts.Benchmarks),
	})
	start := time.Now()
	err := sr.buildAndRun(ctx, idx, opts, spare)
	opts.Progress.Emit(progress.BenchmarkDone{
		Benchmark: name, Index: idx, Total: len(opts.Benchmarks),
		Elapsed: time.Since(start), Err: err,
	})
	return err
}

func (sr *SuiteResult) buildAndRun(ctx context.Context, idx int, opts Options, spare chan struct{}) error {
	name := opts.Benchmarks[idx]
	info, ok := suite.Get(name)
	if !ok {
		return fmt.Errorf("tables: unknown benchmark %q", name)
	}
	m, err := opts.BenchCache.BuildScaled(name, opts.Shrink)
	if err != nil {
		return err
	}
	if opts.Shrink != 1 {
		info.PI = m.NumPIs()
		info.PO = m.NumPOs()
	}
	sr.Benchmarks[idx] = info
	reports, err := core.RunStaged(ctx, m, sr.Configs, core.StagedOptions{
		Effort:   opts.Effort,
		Spare:    spare,
		Cache:    opts.RewriteCache,
		Scratch:  opts.Scratch,
		Progress: opts.Progress,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err // cancellation, not a benchmark failure: no wrap
		}
		return fmt.Errorf("tables: %s: %w", name, err)
	}
	sr.Reports[idx] = reports
	return nil
}

// ConfigIndex locates a configuration by name.
func (sr *SuiteResult) ConfigIndex(name string) int {
	for i, c := range sr.Configs {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// AblationConfigs isolates each endurance technique on top of the naive
// baseline — an extension beyond the paper that quantifies how much each
// lever contributes on its own.
func AblationConfigs() []core.Config {
	return []core.Config{
		core.Naive,
		{Name: "minwrite-only", Rewrite: core.RewriteNone, Selection: compile.NodeOrder, Alloc: alloc.MinWrite},
		{Name: "selection-only", Rewrite: core.RewriteNone, Selection: compile.Endurance, Alloc: alloc.LIFO},
		{Name: "rewriting-only", Rewrite: core.RewriteAlgorithm2, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		{Name: "alg1-rewriting-only", Rewrite: core.RewriteAlgorithm1, Selection: compile.NodeOrder, Alloc: alloc.LIFO},
		core.Full,
	}
}
