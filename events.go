package plim

import (
	"context"
	"fmt"

	"plim/internal/progress"
)

// Event is a typed progress notification delivered to WithProgress
// callbacks. The concrete types are EventRewriteCycle, EventCompileStart,
// EventCompileDone, EventBenchmarkStart, EventBenchmarkDone,
// EventExecuteChunk, EventTaskStart and EventTaskDone; switch on
// them for structured consumption or use FormatEvent for a ready-made
// one-line rendering.
type Event = progress.Event

// EventRewriteCycle reports one completed MIG-rewriting cycle of a Run,
// RunAll, RunSuite or Rewrite call. In a staged run several configurations
// share one rewrite; the Config field then names the shared pipeline
// ("algorithm1"/"algorithm2") instead of a single configuration.
type EventRewriteCycle = progress.RewriteCycle

// EventCompileStart reports that the compile/alloc stage of one
// configuration began.
type EventCompileStart = progress.CompileStart

// EventCompileDone reports that the compile/alloc stage of one
// configuration finished, carrying the paper's #I and #R on success.
type EventCompileDone = progress.CompileDone

// EventBenchmarkStart reports that a RunSuite job began.
type EventBenchmarkStart = progress.BenchmarkStart

// EventBenchmarkDone reports that a RunSuite job finished.
type EventBenchmarkDone = progress.BenchmarkDone

// EventExecuteChunk reports that an Execute/ExecuteBatch call finished one
// 64-lane chunk of a batched execution.
type EventExecuteChunk = progress.ExecuteChunk

// EventTaskStart reports that a scheduler worker picked up one task of the
// engine's dependency graph (kinds: generate, rewrite, compile,
// exec_chunk, join).
type EventTaskStart = progress.TaskStart

// EventTaskDone reports that a scheduler task finished executing.
type EventTaskDone = progress.TaskDone

// ContextWithProgress returns a context that carries fn as a per-call
// progress observer: an Engine method invoked with the returned context
// delivers that call's events to fn, in addition to the engine-wide
// WithProgress callback. This is how many concurrent users of one shared
// engine each get their own progress stream — e.g. one SSE subscriber per
// HTTP request in cmd/plimserve — without re-configuring the engine.
//
// Delivery stays serialized under the engine's lock: neither fn nor the
// WithProgress callback is ever invoked concurrently with any other
// observer of the same engine, so fn must not block for long. Like the
// engine-wide callback, fn only sees events of work that actually runs in
// this call: results served from the engine's caches (or computed by a
// concurrent call that arrived first) emit no events.
func ContextWithProgress(ctx context.Context, fn func(Event)) context.Context {
	return progress.NewContext(ctx, progress.Func(fn))
}

// FormatEvent renders an event as a stable one-line human-readable string,
// as printed by the CLIs under -v.
func FormatEvent(ev Event) string {
	switch ev := ev.(type) {
	case EventRewriteCycle:
		who := ev.Function
		if ev.Config != "" {
			who += "/" + ev.Config
		}
		return fmt.Sprintf("rewrite %s: cycle %d/%d, %d nodes", who, ev.Cycle, ev.Effort, ev.Nodes)
	case EventCompileStart:
		return fmt.Sprintf("compile %s/%s: start", ev.Function, ev.Config)
	case EventCompileDone:
		if ev.Err != nil {
			return fmt.Sprintf("compile %s/%s: FAILED: %s", ev.Function, ev.Config, ev.Err)
		}
		return fmt.Sprintf("compile %s/%s: #I=%d #R=%d in %v",
			ev.Function, ev.Config, ev.Instructions, ev.RRAMs, ev.Elapsed.Round(1e6))
	case EventBenchmarkStart:
		return fmt.Sprintf("bench %s (%d/%d): start", ev.Benchmark, ev.Index+1, ev.Total)
	case EventBenchmarkDone:
		status := "done"
		if ev.Err != nil {
			status = "FAILED: " + ev.Err.Error()
		}
		return fmt.Sprintf("bench %s (%d/%d): %s in %v", ev.Benchmark, ev.Index+1, ev.Total, status, ev.Elapsed.Round(1e6))
	case EventExecuteChunk:
		return fmt.Sprintf("execute %s: chunk %d/%d (%d vectors)", ev.Program, ev.Done, ev.Total, ev.Vectors)
	case EventTaskStart:
		return fmt.Sprintf("task %s %s: start", ev.Kind, ev.Label)
	case EventTaskDone:
		return fmt.Sprintf("task %s %s: done in %v", ev.Kind, ev.Label, ev.Elapsed.Round(1e6))
	}
	return fmt.Sprintf("unknown event %T", ev)
}
