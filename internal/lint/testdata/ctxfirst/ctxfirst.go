// Package ctxfirst is a lint fixture for the ctxfirst analyzer.
package ctxfirst

import "context"

// Bad takes its context second. // want: contexts go first
func Bad(name string, ctx context.Context) error { _ = name; _ = ctx; return nil }

// Good takes its context first: clean.
func Good(ctx context.Context, name string) error { _ = name; _ = ctx; return nil }

// NoContext has no context at all: clean.
func NoContext(name string) error { _ = name; return nil }

// internalBad is unexported: out of scope even with ctx second.
func internalBad(name string, ctx context.Context) error { _ = name; _ = ctx; return nil }

// Runner is exported; its exported method with ctx second is in scope.
type Runner struct{}

// Run is a method with ctx second. // want: contexts go first
func (Runner) Run(n int, ctx context.Context) error { _ = n; _ = ctx; return nil }

type hidden struct{}

// Run on an unexported receiver is out of scope.
func (hidden) Run(n int, ctx context.Context) error { _ = n; _ = ctx; return nil }
