// Progress streaming and cancellation: the two capabilities the Engine API
// adds over the legacy free functions. A small suite runs with a live
// event stream, then the same suite is started again under a context that
// is cancelled after the first benchmark — the run stops promptly between
// jobs instead of grinding through the rest of the suite.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"plim"
)

func main() {
	benches := []string{"ctrl", "int2float", "dec", "router"}

	// Part 1: stream typed progress events. One worker keeps the event
	// order deterministic: start → rewrite cycles → done, benchmark by
	// benchmark.
	fmt.Println("streaming a 4-benchmark suite (1 worker, effort 2, shrink 4):")
	eng := plim.NewEngine(
		plim.WithEffort(2),
		plim.WithShrink(4),
		plim.WithWorkers(1),
		plim.WithProgress(func(ev plim.Event) {
			fmt.Println("  " + plim.FormatEvent(ev))
		}),
	)
	sr, err := eng.RunSuite(context.Background(), plim.TableIConfigs(), benches...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite done: %d benchmarks × %d configs\n\n", len(sr.Benchmarks), len(sr.Configs))

	// Part 2: cancel mid-suite. The progress callback pulls the plug as
	// soon as the first benchmark finishes; the engine stops dispatching
	// and surfaces context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelling := plim.NewEngine(
		plim.WithEffort(2),
		plim.WithShrink(4),
		plim.WithWorkers(1),
		plim.WithProgress(func(ev plim.Event) {
			if done, ok := ev.(plim.EventBenchmarkDone); ok {
				fmt.Printf("cancelling after %s\n", done.Benchmark)
				cancel()
			}
		}),
	)
	start := time.Now()
	_, err = cancelling.RunSuite(ctx, plim.TableIConfigs(), benches...)
	fmt.Printf("suite aborted after %v: %v (context.Canceled: %v)\n",
		time.Since(start).Round(time.Millisecond), err, errors.Is(err, context.Canceled))
}
