package plim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFormatEventTaskSpans(t *testing.T) {
	start := FormatEvent(EventTaskStart{Kind: "rewrite", Label: "adder/full"})
	if start != "task rewrite adder/full: start" {
		t.Fatalf("TaskStart rendering: %q", start)
	}
	done := FormatEvent(EventTaskDone{Kind: "compile", Label: "adder/full", Elapsed: 1500 * time.Millisecond})
	if done != "task compile adder/full: done in 1.5s" {
		t.Fatalf("TaskDone rendering: %q", done)
	}
}

// TestFormatEventAllTypesRender pins that every progress event type — the
// full set a WithProgress callback can see — renders to a non-empty line
// that never falls through to the unknown-event branch.
func TestFormatEventAllTypesRender(t *testing.T) {
	events := []Event{
		EventRewriteCycle{Function: "adder", Config: "full", Cycle: 2, Effort: 5, Nodes: 120},
		EventRewriteCycle{Function: "adder", Cycle: 1, Effort: 5, Nodes: 130}, // no config
		EventCompileStart{Function: "adder", Config: "full"},
		EventCompileDone{Function: "adder", Config: "full", Elapsed: time.Millisecond, Instructions: 7, RRAMs: 3},
		EventCompileDone{Function: "adder", Config: "full", Err: errors.New("boom")},
		EventBenchmarkStart{Benchmark: "ctrl", Index: 0, Total: 18},
		EventBenchmarkDone{Benchmark: "ctrl", Index: 0, Total: 18, Elapsed: time.Second},
		EventBenchmarkDone{Benchmark: "ctrl", Index: 1, Total: 18, Err: errors.New("boom")},
		EventExecuteChunk{Program: "adder", Done: 1, Total: 4, Vectors: 256},
		EventTaskStart{Kind: "generate", Label: "ctrl"},
		EventTaskDone{Kind: "join", Label: "suite", Elapsed: time.Microsecond},
	}
	for _, ev := range events {
		s := FormatEvent(ev)
		if s == "" {
			t.Fatalf("FormatEvent(%T) rendered empty", ev)
		}
		if strings.HasPrefix(s, "unknown event") {
			t.Fatalf("FormatEvent(%T) fell through to the unknown branch: %q", ev, s)
		}
	}

	// Failure renderings surface the error, not just timings.
	if s := FormatEvent(EventCompileDone{Function: "f", Config: "full", Err: errors.New("boom")}); !strings.Contains(s, "FAILED") || !strings.Contains(s, "boom") {
		t.Fatalf("failed compile rendering hides the error: %q", s)
	}
	if s := FormatEvent(EventBenchmarkDone{Benchmark: "b", Total: 1, Err: errors.New("boom")}); !strings.Contains(s, "FAILED") || !strings.Contains(s, "boom") {
		t.Fatalf("failed benchmark rendering hides the error: %q", s)
	}
}

// TestFormatEventUnknownType pins the fallback for event types FormatEvent
// does not know (future additions degrade to a typed placeholder, never a
// panic).
func TestFormatEventUnknownType(t *testing.T) {
	if s := FormatEvent(nil); !strings.HasPrefix(s, "unknown event") {
		t.Fatalf("nil event: %q", s)
	}
}
