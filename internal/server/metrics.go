package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"plim"
	"plim/internal/sched"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, spanning sub-millisecond cache hits to multi-minute paper-scale
// rewrites.
var latencyBuckets = [...]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket latency histogram (Prometheus semantics:
// cumulative buckets plus sum and count). The last slot is the +Inf bucket.
type histogram struct {
	buckets [len(latencyBuckets) + 1]uint64
	sum     float64
	count   uint64
}

func (h *histogram) observe(seconds float64) {
	h.sum += seconds
	h.count++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBuckets)]++ // +Inf
}

// metrics aggregates the server's operational counters. All mutation goes
// through the mutex; gauges (queue depth, cache sizes) are read live at
// render time.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64     // "route|code" → count
	latency   map[string]*histogram // route → latency histogram
	events    map[string]uint64     // progress event type → count
	flights   uint64                // computations started (coalescing leaders)
	coalesced uint64                // requests attached to an in-flight computation
	rejected  uint64                // admission rejections (429)

	// Batched-execution throughput: vectors evaluated, 64-lane chunks
	// processed and lane slots offered (chunks × 64). vectors/lane_slots is
	// the batch occupancy; rate(vectors) is the serving vectors/sec.
	execVectors   uint64
	execChunks    uint64
	execLaneSlots uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		latency:  make(map[string]*histogram),
		events:   make(map[string]uint64),
	}
}

func (m *metrics) observeRequest(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{}
		m.latency[route] = h
	}
	h.observe(elapsed.Seconds())
}

func (m *metrics) countEvent(ev plim.Event) {
	name, _ := eventPayload(ev)
	m.mu.Lock()
	m.events[name]++
	m.mu.Unlock()
}

func (m *metrics) flightStarted() {
	m.mu.Lock()
	m.flights++
	m.mu.Unlock()
}

func (m *metrics) requestCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *metrics) admissionRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) observeExecute(vectors, chunks int) {
	m.mu.Lock()
	m.execVectors += uint64(vectors)
	m.execChunks += uint64(chunks)
	m.execLaneSlots += 64 * uint64(chunks)
	m.mu.Unlock()
}

// render produces the Prometheus text exposition of every counter plus the
// live gauges supplied by the server (admission occupancy, cache state).
// Output is deterministically ordered so scrapes and tests are stable.
func (m *metrics) render(s *Server) string {
	var b strings.Builder

	m.mu.Lock()
	writeSorted := func(header string, rows map[string]string) {
		b.WriteString(header)
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, rows[k])
		}
	}

	reqRows := make(map[string]string, len(m.requests))
	for k, v := range m.requests {
		route, code, _ := strings.Cut(k, "|")
		reqRows[fmt.Sprintf("plimserve_requests_total{route=%q,code=%q}", route, code)] = fmt.Sprint(v)
	}
	writeSorted("# TYPE plimserve_requests_total counter\n", reqRows)

	b.WriteString("# TYPE plimserve_request_seconds histogram\n")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, route := range routes {
		h := m.latency[route]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(&b, "plimserve_request_seconds_bucket{route=%q,le=%q} %d\n", route, trimFloat(ub), cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(&b, "plimserve_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(&b, "plimserve_request_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(&b, "plimserve_request_seconds_count{route=%q} %d\n", route, h.count)
	}

	evRows := make(map[string]string, len(m.events))
	for k, v := range m.events {
		evRows[fmt.Sprintf("plimserve_progress_events_total{type=%q}", k)] = fmt.Sprint(v)
	}
	writeSorted("# TYPE plimserve_progress_events_total counter\n", evRows)

	fmt.Fprintf(&b, "# TYPE plimserve_flights_total counter\nplimserve_flights_total %d\n", m.flights)
	fmt.Fprintf(&b, "# TYPE plimserve_coalesced_requests_total counter\nplimserve_coalesced_requests_total %d\n", m.coalesced)
	fmt.Fprintf(&b, "# TYPE plimserve_admission_rejected_total counter\nplimserve_admission_rejected_total %d\n", m.rejected)
	fmt.Fprintf(&b, "# TYPE plimserve_execute_vectors_total counter\nplimserve_execute_vectors_total %d\n", m.execVectors)
	fmt.Fprintf(&b, "# TYPE plimserve_execute_chunks_total counter\nplimserve_execute_chunks_total %d\n", m.execChunks)
	fmt.Fprintf(&b, "# TYPE plimserve_execute_lane_slots_total counter\nplimserve_execute_lane_slots_total %d\n", m.execLaneSlots)
	m.mu.Unlock()

	// Live gauges: admission occupancy, the engine's task scheduler and the
	// two cache tiers.
	fmt.Fprintf(&b, "# TYPE plimserve_inflight_computations gauge\nplimserve_inflight_computations %d\n", s.adm.running())
	fmt.Fprintf(&b, "# TYPE plimserve_queued_computations gauge\nplimserve_queued_computations %d\n", s.adm.queuedWaiting())
	st := s.eng.SchedulerStats()
	fmt.Fprintf(&b, "# TYPE plimserve_sched_runnable_tasks gauge\nplimserve_sched_runnable_tasks %d\n", st.Runnable)
	b.WriteString("# TYPE plimserve_sched_runnable_tasks_by_kind gauge\n")
	for _, k := range sched.Kinds() {
		if n, ok := st.RunnableByKind[k]; ok {
			fmt.Fprintf(&b, "plimserve_sched_runnable_tasks_by_kind{kind=%q} %d\n", k.String(), n)
		}
	}
	fmt.Fprintf(&b, "# TYPE plimserve_sched_injector_max_wait_seconds gauge\nplimserve_sched_injector_max_wait_seconds %g\n", st.MaxInjectorWaitSeconds)
	b.WriteString("# TYPE plimserve_sched_worker_steals_total counter\n")
	for i, n := range st.Steals {
		fmt.Fprintf(&b, "plimserve_sched_worker_steals_total{worker=\"%d\"} %d\n", i, n)
	}
	b.WriteString("# TYPE plimserve_sched_task_seconds histogram\n")
	bounds := sched.LatencyBuckets()
	for _, k := range sched.Kinds() {
		h, ok := st.Latency[k]
		if !ok {
			continue // a kind never executed renders no empty series
		}
		var cum uint64
		for i, ub := range bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "plimserve_sched_task_seconds_bucket{kind=%q,le=%q} %d\n", k.String(), trimFloat(ub), cum)
		}
		cum += h.Buckets[len(bounds)]
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k.String(), cum)
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_sum{kind=%q} %g\n", k.String(), h.SumSeconds)
		fmt.Fprintf(&b, "plimserve_sched_task_seconds_count{kind=%q} %d\n", k.String(), h.Count)
	}
	rw, bench := s.eng.MemoryCacheLens()
	fmt.Fprintf(&b, "# TYPE plimserve_cache_memory_entries gauge\n")
	fmt.Fprintf(&b, "plimserve_cache_memory_entries{kind=\"benchmark\"} %d\n", bench)
	fmt.Fprintf(&b, "plimserve_cache_memory_entries{kind=\"rewrite\"} %d\n", rw)
	if st, ok := s.eng.PersistentCacheStats(); ok {
		fmt.Fprintf(&b, "# TYPE plimserve_cache_disk_hits_total counter\n")
		fmt.Fprintf(&b, "plimserve_cache_disk_hits_total{kind=\"benchmark\"} %d\n", st.BenchmarkHits)
		fmt.Fprintf(&b, "plimserve_cache_disk_hits_total{kind=\"rewrite\"} %d\n", st.RewriteHits)
		fmt.Fprintf(&b, "# TYPE plimserve_cache_disk_misses_total counter\n")
		fmt.Fprintf(&b, "plimserve_cache_disk_misses_total{kind=\"benchmark\"} %d\n", st.BenchmarkMisses)
		fmt.Fprintf(&b, "plimserve_cache_disk_misses_total{kind=\"rewrite\"} %d\n", st.RewriteMisses)
		fmt.Fprintf(&b, "# TYPE plimserve_cache_disk_stores_total counter\n")
		fmt.Fprintf(&b, "plimserve_cache_disk_stores_total %d\n", st.Stores)
		fmt.Fprintf(&b, "# TYPE plimserve_cache_disk_store_errors_total counter\n")
		fmt.Fprintf(&b, "plimserve_cache_disk_store_errors_total %d\n", st.StoreErrors)
	}
	return b.String()
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no trailing zeros: 0.0001, 0.25, 1, 30).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
