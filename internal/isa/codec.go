package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Assembly format:
//
//	.plim <name>
//	.cells <n>
//	.pi @<cell> ...            (one line, inputs in order)
//	.po @<cell>[!] ...         (one line, outputs in order, ! = negated)
//	RM3 <op>, <op> -> @<cell>  (one line per instruction)
//	.end
//
// Operands are #0, #1 or @<cell>.

// WriteAsm emits the program in assembly form.
func (p *Program) WriteAsm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".plim %s\n.cells %d\n", p.Name, p.NumCells)
	fmt.Fprint(bw, ".pi")
	for _, c := range p.PICells {
		fmt.Fprintf(bw, " @%d", c)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".po")
	for _, po := range p.POs {
		if po.Neg {
			fmt.Fprintf(bw, " @%d!", po.Addr)
		} else {
			fmt.Fprintf(bw, " @%d", po.Addr)
		}
	}
	fmt.Fprintln(bw)
	for _, ins := range p.Insts {
		fmt.Fprintln(bw, ins.String())
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ReadAsm parses the assembly format written by WriteAsm.
func ReadAsm(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	p := &Program{}
	line := 0
	seenEnd := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case ".plim":
			if len(fields) > 1 {
				p.Name = fields[1]
			}
		case ".cells":
			if len(fields) != 2 {
				return nil, fmt.Errorf("isa: line %d: .cells needs a count", line)
			}
			n, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", line, err)
			}
			p.NumCells = uint32(n)
		case ".pi":
			for _, tok := range fields[1:] {
				addr, _, err := parseCellTok(tok)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: %v", line, err)
				}
				p.PICells = append(p.PICells, addr)
			}
		case ".po":
			for _, tok := range fields[1:] {
				addr, neg, err := parseCellTok(tok)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: %v", line, err)
				}
				p.POs = append(p.POs, PORef{Addr: addr, Neg: neg})
			}
		case "RM3":
			// RM3 <op>, <op> -> @<cell>
			rest := strings.TrimPrefix(text, "RM3")
			parts := strings.Split(rest, "->")
			if len(parts) != 2 {
				return nil, fmt.Errorf("isa: line %d: malformed RM3", line)
			}
			ops := strings.Split(parts[0], ",")
			if len(ops) != 2 {
				return nil, fmt.Errorf("isa: line %d: RM3 needs two source operands", line)
			}
			a, err := parseOperand(strings.TrimSpace(ops[0]))
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", line, err)
			}
			b, err := parseOperand(strings.TrimSpace(ops[1]))
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", line, err)
			}
			z, neg, err := parseCellTok(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", line, err)
			}
			if neg {
				return nil, fmt.Errorf("isa: line %d: destination cannot be negated", line)
			}
			p.Insts = append(p.Insts, Instruction{A: a, B: b, Z: z})
		case ".end":
			seenEnd = true
		default:
			return nil, fmt.Errorf("isa: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenEnd {
		return nil, fmt.Errorf("isa: missing .end")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseCellTok(tok string) (addr uint32, neg bool, err error) {
	if strings.HasSuffix(tok, "!") {
		neg = true
		tok = tok[:len(tok)-1]
	}
	if !strings.HasPrefix(tok, "@") {
		return 0, false, fmt.Errorf("bad cell token %q", tok)
	}
	n, err := strconv.ParseUint(tok[1:], 10, 32)
	if err != nil {
		return 0, false, fmt.Errorf("bad cell token %q: %v", tok, err)
	}
	return uint32(n), neg, nil
}

func parseOperand(tok string) (Operand, error) {
	switch tok {
	case "#0":
		return Zero, nil
	case "#1":
		return One, nil
	}
	addr, neg, err := parseCellTok(tok)
	if err != nil || neg {
		return Operand{}, fmt.Errorf("bad operand %q", tok)
	}
	return Cell(addr), nil
}

// Binary format (little-endian):
//
//	magic "PLIM"            4 bytes
//	version                 u8 (=1)
//	name length + bytes     uvarint + raw
//	numCells                uvarint
//	#PI + PI cells          uvarint + uvarints
//	#PO + (addr<<1|neg)     uvarint + uvarints
//	#insts                  uvarint
//	per inst: flags u8 (kindA | kindB<<2), then addrA? addrB? addrZ uvarints
const (
	binaryMagic   = "PLIM"
	binaryVersion = 1
	// maxBinaryName bounds the decoded name: a length prefix beyond it is
	// corruption, not a program.
	maxBinaryName = 1 << 20
	// decodeChunk caps the capacity pre-reserved from untrusted count
	// prefixes. Decoded slices grow by append, so memory tracks bytes
	// actually parsed — a truncated or hostile stream claiming 2^60
	// elements hits EOF long before it can allocate anything large.
	decodeChunk = 1 << 16
)

// WriteBinary encodes the program in the compact binary format.
func (p *Program) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	bw.WriteByte(binaryVersion)
	writeUvarint(bw, uint64(len(p.Name)))
	bw.WriteString(p.Name)
	writeUvarint(bw, uint64(p.NumCells))
	writeUvarint(bw, uint64(len(p.PICells)))
	for _, c := range p.PICells {
		writeUvarint(bw, uint64(c))
	}
	writeUvarint(bw, uint64(len(p.POs)))
	for _, po := range p.POs {
		v := uint64(po.Addr) << 1
		if po.Neg {
			v |= 1
		}
		writeUvarint(bw, v)
	}
	writeUvarint(bw, uint64(len(p.Insts)))
	for _, ins := range p.Insts {
		flags := byte(ins.A.Kind) | byte(ins.B.Kind)<<2
		bw.WriteByte(flags)
		if ins.A.Kind == OpCell {
			writeUvarint(bw, uint64(ins.A.Addr))
		}
		if ins.B.Kind == OpCell {
			writeUvarint(bw, uint64(ins.B.Addr))
		}
		writeUvarint(bw, uint64(ins.Z))
	}
	return bw.Flush()
}

// ReadBinary decodes a program written by WriteBinary.
func ReadBinary(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("isa: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("isa: unsupported version %d", ver)
	}
	p := &Program{}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > maxBinaryName {
		return nil, fmt.Errorf("isa: name length %d exceeds limit %d", nameLen, maxBinaryName)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	p.Name = string(name)
	if p.NumCells, err = readU32(br, "cell count"); err != nil {
		return nil, err
	}
	npi, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	p.PICells = make([]uint32, 0, min(npi, decodeChunk))
	for i := uint64(0); i < npi; i++ {
		v, err := readU32(br, "PI cell")
		if err != nil {
			return nil, err
		}
		p.PICells = append(p.PICells, v)
	}
	npo, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	p.POs = make([]PORef, 0, min(npo, decodeChunk))
	for i := uint64(0); i < npo; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if v>>1 > maxUint32 {
			return nil, fmt.Errorf("isa: PO address %d overflows uint32", v>>1)
		}
		p.POs = append(p.POs, PORef{Addr: uint32(v >> 1), Neg: v&1 == 1})
	}
	ninst, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	p.Insts = make([]Instruction, 0, min(ninst, decodeChunk))
	for i := uint64(0); i < ninst; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if flags>>4 != 0 {
			return nil, fmt.Errorf("isa: inst %d: bad instruction flags %#x", i, flags)
		}
		ins := Instruction{
			A: Operand{Kind: OperandKind(flags & 3)},
			B: Operand{Kind: OperandKind(flags >> 2 & 3)},
		}
		if ins.A.Kind > OpCell || ins.B.Kind > OpCell {
			return nil, fmt.Errorf("isa: inst %d: bad operand kind", i)
		}
		if ins.A.Kind == OpCell {
			if ins.A.Addr, err = readU32(br, "operand A"); err != nil {
				return nil, err
			}
		}
		if ins.B.Kind == OpCell {
			if ins.B.Addr, err = readU32(br, "operand B"); err != nil {
				return nil, err
			}
		}
		if ins.Z, err = readU32(br, "destination"); err != nil {
			return nil, err
		}
		p.Insts = append(p.Insts, ins)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

const maxUint32 = 1<<32 - 1

// readU32 decodes a uvarint that must fit a 32-bit address or count;
// silently truncating an oversized value would let a corrupt stream
// decode into a different (possibly valid) program.
func readU32(br *bufio.Reader, what string) (uint32, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if v > maxUint32 {
		return 0, fmt.Errorf("isa: %s %d overflows uint32", what, v)
	}
	return uint32(v), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
