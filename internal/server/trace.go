package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"plim/internal/trace"
)

// traceJSON is the "trace" block embedded in the response of a traced
// flight ("trace": true on the request): the flight's wall time, per-stage
// totals and every recorded span. Spans reference their parent by id
// (parent -1 is the root request span).
type traceJSON struct {
	WallMS float64         `json:"wall_ms"`
	Stages []stageJSON     `json:"stages_ms"`
	Spans  []traceSpanJSON `json:"spans"`
}

// stageJSON is one aggregate stage total (queue wait plus per-kind span
// time), in the fixed queue/generate/rewrite/compile/exec/cache order with
// zero stages omitted.
type stageJSON struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// traceSpanJSON is one span on the wire. Worker -1 means the span did not
// run on a scheduler worker.
type traceSpanJSON struct {
	ID          int32             `json:"id"`
	Parent      int32             `json:"parent"`
	Kind        string            `json:"kind"`
	Name        string            `json:"name"`
	StartMS     float64           `json:"start_ms"`
	DurMS       float64           `json:"dur_ms"`
	Worker      int               `json:"worker"`
	QueueWaitMS float64           `json:"queue_wait_ms,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// buildTrace renders a finished flight trace into its response artifacts:
// the raw JSON block, the Server-Timing header value and the flight's wall
// time in milliseconds.
func buildTrace(tr *trace.Trace) (blob []byte, serverTiming string, wallMS float64) {
	spans := tr.Spans()
	var wall time.Duration
	tj := traceJSON{Spans: make([]traceSpanJSON, len(spans))}
	for i, sp := range spans {
		if end := sp.Start + sp.Dur; sp.Dur >= 0 && end > wall {
			wall = end
		}
		sj := traceSpanJSON{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Kind:    sp.Kind,
			Name:    sp.Name,
			StartMS: ms(sp.Start),
			DurMS:   ms(sp.Dur),
			Worker:  sp.Worker,
		}
		if sp.Dur < 0 {
			sj.DurMS = 0 // still open at export: clamp, like the Chrome export
		}
		if sp.QueueWait > 0 {
			sj.QueueWaitMS = ms(sp.QueueWait)
		}
		if len(sp.Attrs) > 0 {
			sj.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		tj.Spans[i] = sj
	}
	tj.WallMS = ms(wall)

	var st strings.Builder
	fmt.Fprintf(&st, "total;dur=%.3f", tj.WallMS)
	for _, t := range tr.Totals() {
		d := ms(t.Dur)
		tj.Stages = append(tj.Stages, stageJSON{Name: t.Name, MS: d})
		fmt.Fprintf(&st, ", %s;dur=%.3f", t.Name, d)
	}
	blob, err := json.Marshal(tj)
	if err != nil {
		blob = []byte(`{"error":"trace encoding failure"}`)
	}
	return blob, st.String(), tj.WallMS
}

// spliceTrace inserts the trace block as a top-level "trace" member of a
// JSON-object response body, so every endpoint's response carries the
// trace without each handler knowing about tracing. Non-object bodies are
// returned unchanged.
func spliceTrace(body, blob []byte) []byte {
	i := bytes.LastIndexByte(body, '}')
	if i <= 0 {
		return body
	}
	out := make([]byte, 0, len(body)+len(blob)+16)
	out = append(out, body[:i]...)
	if body[i-1] != '{' {
		out = append(out, ',')
	}
	out = append(out, `"trace":`...)
	out = append(out, blob...)
	out = append(out, body[i:]...)
	return out
}

// traceRingSize bounds the /debug/trace/last ring: the N slowest traced
// flights since the server started.
const traceRingSize = 32

// traceRing keeps the slowest traced flights for post-hoc inspection. Only
// flights that asked for tracing are recorded — tracing is opt-in, so the
// ring never makes untraced requests pay for span bookkeeping.
type traceRing struct {
	mu      sync.Mutex
	entries []ringEntry
}

// ringEntry is one retained flight trace.
type ringEntry struct {
	Flight string          `json:"flight"`
	WallMS float64         `json:"wall_ms"`
	UnixMS int64           `json:"unix_ms"` // completion time
	Trace  json.RawMessage `json:"trace"`
}

// record retains the trace when the ring has room or the flight is slower
// than the ring's current fastest entry.
func (r *traceRing) record(flight string, wallMS float64, blob []byte) {
	e := ringEntry{Flight: flight, WallMS: wallMS, UnixMS: time.Now().UnixMilli(), Trace: blob}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < traceRingSize {
		r.entries = append(r.entries, e)
		return
	}
	min := 0
	for i := range r.entries {
		if r.entries[i].WallMS < r.entries[min].WallMS {
			min = i
		}
	}
	if e.WallMS > r.entries[min].WallMS {
		r.entries[min] = e
	}
}

// snapshot returns the retained traces, slowest first.
func (r *traceRing) snapshot() []ringEntry {
	r.mu.Lock()
	out := append([]ringEntry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].WallMS > out[j].WallMS })
	return out
}

// TraceLastHandler serves the ring of the slowest traced flights as a JSON
// array (slowest first). cmd/plimserve mounts it at /debug/trace/last on
// the -debug-addr listener, next to net/http/pprof.
func (s *Server) TraceLastHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entries := s.traces.snapshot()
		if entries == nil {
			entries = []ringEntry{}
		}
		writeJSON(w, http.StatusOK, entries)
	})
}
