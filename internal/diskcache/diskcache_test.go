package diskcache

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"plim/internal/mig"
	"plim/internal/rewrite"
)

func testMIG(name string, seed int) *mig.MIG {
	m := mig.New(name)
	sigs := []mig.Signal{m.AddPI("a"), m.AddPI("b"), m.AddPI("c")}
	for i := 0; i < 60; i++ {
		a := sigs[(i+seed)%len(sigs)]
		b := sigs[(i*7+seed)%len(sigs)].Not()
		c := sigs[(i*13)%len(sigs)]
		if s := m.Maj(a, b, c); !s.IsConst() {
			sigs = append(sigs, s)
		}
	}
	m.AddPO(sigs[len(sigs)-1], "o")
	m.AddPO(sigs[len(sigs)-2].Not(), "p")
	return m.Cleanup()
}

func testStats() rewrite.Stats {
	return rewrite.Stats{
		Cycles: 3, NodesBefore: 60, NodesAfter: 41,
		DepthBefore: 12, DepthAfter: 9,
		CompHistBefore: [4]int{1, 2, 3, 4},
		CompHistAfter:  [4]int{5, 6, 7, 8},
	}
}

func open(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// entryFile returns the single entry file in the cache directory.
func entryFile(t *testing.T, c *Cache) string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(c.Dir(), "*.plimcache"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one entry file, got %v (%v)", entries, err)
	}
	return entries[0]
}

func TestRewriteRoundTrip(t *testing.T) {
	c := open(t)
	m := testMIG("rt", 1)
	st := testStats()
	fp := m.Fingerprint()

	if _, _, ok := c.LoadRewrite(fp, 2, 5); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.StoreRewrite(fp, 2, 5, m, st); err != nil {
		t.Fatal(err)
	}
	got, gotSt, ok := c.LoadRewrite(fp, 2, 5)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if gotSt != st {
		t.Fatalf("stats changed: %+v vs %+v", gotSt, st)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("loaded MIG fingerprint differs from stored")
	}
	var a, b bytes.Buffer
	if err := m.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("loaded MIG serialization differs from stored")
	}

	// Different key components are different entries.
	if _, _, ok := c.LoadRewrite(fp, 1, 5); ok {
		t.Fatal("kind is not part of the key")
	}
	if _, _, ok := c.LoadRewrite(fp, 2, 4); ok {
		t.Fatal("effort is not part of the key")
	}
	if _, _, ok := c.LoadRewrite(fp+1, 2, 5); ok {
		t.Fatal("fingerprint is not part of the key")
	}

	cnt := c.Counters()
	if cnt.RewriteHits != 1 || cnt.RewriteMisses != 4 || cnt.Stores != 1 {
		t.Fatalf("counters = %+v", cnt)
	}
}

func TestBenchmarkRoundTrip(t *testing.T) {
	c := open(t)
	m := testMIG("ctrl", 2)
	if _, ok := c.LoadBenchmark("ctrl", 2); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.StoreBenchmark("ctrl", 2, m); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadBenchmark("ctrl", 2)
	if !ok {
		t.Fatal("stored benchmark missed")
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("loaded benchmark fingerprint differs")
	}
	if _, ok := c.LoadBenchmark("ctrl", 3); ok {
		t.Fatal("shrink is not part of the key")
	}
	if _, ok := c.LoadBenchmark("ctrl2", 2); ok {
		t.Fatal("name is not part of the key")
	}
}

// TestCorruptEntryIsAMiss flips payload bytes in a stored entry: the CRC
// check must turn it into a miss, never an error or a bad graph.
func TestCorruptEntryIsAMiss(t *testing.T) {
	c := open(t)
	m := testMIG("corrupt", 3)
	fp := m.Fingerprint()
	if err := c.StoreRewrite(fp, 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)-10] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadRewrite(fp, 2, 5); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// A fresh store heals the entry.
	if err := c.StoreRewrite(fp, 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadRewrite(fp, 2, 5); !ok {
		t.Fatal("re-stored entry missed")
	}
}

// TestTruncatedEntryIsAMiss simulates a torn write (a crash between write
// and rename would leave only a temp file, but a crashed copy or a full
// disk can truncate): every prefix of a valid entry must read as a miss.
func TestTruncatedEntryIsAMiss(t *testing.T) {
	c := open(t)
	m := testMIG("trunc", 4)
	fp := m.Fingerprint()
	if err := c.StoreRewrite(fp, 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 10, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.LoadRewrite(fp, 2, 5); ok {
			t.Fatalf("entry truncated to %d/%d bytes served as a hit", n, len(data))
		}
	}
}

// TestVersionBumpInvalidates: entries from another format version must be
// ignored wholesale.
func TestVersionBumpInvalidates(t *testing.T) {
	c := open(t)
	m := testMIG("ver", 5)
	fp := m.Fingerprint()
	if err := c.StoreRewrite(fp, 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := fmt.Sprintf("%s %d ", magic, FormatVersion)
	next := fmt.Sprintf("%s %d ", magic, FormatVersion+1)
	mut := strings.Replace(string(data), old, next, 1)
	if mut == string(data) {
		t.Fatal("did not find header to rewrite")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadRewrite(fp, 2, 5); ok {
		t.Fatal("entry from a different format version served as a hit")
	}
}

// TestMismatchedKeyInsideEntry: an entry whose header key disagrees with
// its file name (e.g. a file copied or renamed by hand) is a miss.
func TestMismatchedKeyInsideEntry(t *testing.T) {
	c := open(t)
	m := testMIG("key", 6)
	fp := m.Fingerprint()
	if err := c.StoreRewrite(fp, 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	other := rewritePath(c.Dir(), fp+1, 2, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadRewrite(fp+1, 2, 5); ok {
		t.Fatal("entry with mismatched embedded key served as a hit")
	}
}

// TestInterleavedGraphNotStored: graphs that cannot round-trip faithfully
// through the file format are skipped, not mangled.
func TestInterleavedGraphNotStored(t *testing.T) {
	m := mig.New("interleave")
	p := m.AddPI("p")
	q := m.AddPI("q")
	g := m.And(p, q)
	r := m.AddPI("r")
	m.AddPO(m.Or(g, r), "o")
	if Storable(m) {
		t.Fatal("interleaved graph reported storable")
	}
	c := open(t)
	if err := c.StoreRewrite(m.Fingerprint(), 0, 0, m, rewrite.Stats{}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadRewrite(m.Fingerprint(), 0, 0); ok {
		t.Fatal("unstorable graph was stored anyway")
	}
}

// TestConcurrentStoreLoad hammers one directory from many goroutines (two
// Cache handles, as two engines or processes would) under -race: every
// load must either miss or return a fully consistent entry.
func TestConcurrentStoreLoad(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4
	migs := make([]*mig.MIG, keys)
	fps := make([]uint64, keys)
	for i := range migs {
		migs[i] = testMIG(fmt.Sprintf("c%d", i), i)
		fps[i] = migs[i].Fingerprint()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := c1
			if w%2 == 1 {
				c = c2
			}
			for i := 0; i < 50; i++ {
				k := (w + i) % keys
				if i%3 == 0 {
					if err := c.StoreRewrite(fps[k], 2, 5, migs[k], testStats()); err != nil {
						t.Errorf("store: %v", err)
						return
					}
				}
				if m, _, ok := c.LoadRewrite(fps[k], 2, 5); ok {
					if m.Fingerprint() != fps[k] {
						t.Errorf("load returned wrong graph for key %d", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestWhitespaceNamesNotStored: the .mig format is whitespace-delimited,
// so a name containing spaces (or worse, a newline) would come back
// truncated or reparsed — such graphs must not be persisted.
func TestWhitespaceNamesNotStored(t *testing.T) {
	build := func(model, piName, poName string) *mig.MIG {
		m := mig.New(model)
		a := m.AddPI(piName)
		b := m.AddPI("b")
		m.AddPO(m.And(a, b), poName)
		return m
	}
	if !Storable(build("ok", "in", "out")) {
		t.Fatal("clean names reported unstorable")
	}
	if !Storable(build("ok", "", "")) {
		t.Fatal("nameless pins reported unstorable")
	}
	cases := []*mig.MIG{
		build("mo del", "in", "out"),
		build("ok", "in a", "out"),
		build("ok", "in", "out\n.pi evil"),
		build("ok", "in\tb", "out"),
	}
	c := open(t)
	for i, m := range cases {
		if Storable(m) {
			t.Errorf("case %d: whitespace name reported storable", i)
		}
		if err := c.StoreRewrite(m.Fingerprint(), 0, 0, m, rewrite.Stats{}); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.LoadRewrite(m.Fingerprint(), 0, 0); ok {
			t.Errorf("case %d: whitespace-named graph was persisted", i)
		}
	}
}

// TestOpenSweepsStaleTemps: temp files abandoned by crashed writers are
// reclaimed on Open; fresh temp files (a concurrent writer's) and real
// entries are left alone.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testMIG("sweep", 7)
	if err := c.StoreRewrite(m.Fingerprint(), 2, 5, m, testStats()); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-crashed")
	fresh := filepath.Join(dir, ".tmp-inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was reaped")
	}
	if _, _, ok := c.LoadRewrite(m.Fingerprint(), 2, 5); !ok {
		t.Error("real entry lost during sweep")
	}
}

// TestVerifyOnLoadRejectsCRCCollision simulates the failure the CRC alone
// cannot catch: an entry whose payload was swapped for a different —
// structurally valid — graph with a matching checksum line. Without
// SetVerify the load succeeds (the CRC was "right"); with it, the
// fingerprint recorded at store time exposes the substitution.
func TestVerifyOnLoadRejectsCRCCollision(t *testing.T) {
	m := testMIG("victim", 1)
	imposter := testMIG("victim", 2) // same name, different structure
	if m.Fingerprint() == imposter.Fingerprint() {
		t.Fatal("test graphs must differ")
	}

	forge := func(t *testing.T, c *Cache) {
		t.Helper()
		if err := c.StoreRewrite(m.Fingerprint(), 2, 5, m, testStats()); err != nil {
			t.Fatal(err)
		}
		// Rewrite the entry in place with the imposter payload and a
		// freshly computed (i.e. "colliding") CRC line.
		path := entryFile(t, c)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		head, _, ok := strings.Cut(string(data), "payload ")
		if !ok {
			t.Fatal("no payload line")
		}
		var payload bytes.Buffer
		if err := imposter.Write(&payload); err != nil {
			t.Fatal(err)
		}
		forged := fmt.Sprintf("%spayload %d %08x\n%s", head, payload.Len(), crc32ieee(payload.Bytes()), payload.Bytes())
		if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("unverified-load-accepts", func(t *testing.T) {
		c := open(t)
		forge(t, c)
		got, _, ok := c.LoadRewrite(m.Fingerprint(), 2, 5)
		if !ok {
			t.Fatal("unverified cache should accept the CRC-consistent forgery")
		}
		if got.Fingerprint() != imposter.Fingerprint() {
			t.Fatal("expected the imposter graph back")
		}
	})

	t.Run("verified-load-rejects", func(t *testing.T) {
		c := open(t)
		c.SetVerify(true)
		forge(t, c)
		if _, _, ok := c.LoadRewrite(m.Fingerprint(), 2, 5); ok {
			t.Fatal("verified cache served a forged entry")
		}
		if c.VerifyMisses() != 1 {
			t.Fatalf("verify miss not counted: %d", c.VerifyMisses())
		}
		if c.Counters().RewriteMisses != 1 {
			t.Fatal("verify rejection must account as a miss")
		}
	})

	t.Run("verified-load-accepts-honest-entry", func(t *testing.T) {
		c := open(t)
		c.SetVerify(true)
		if err := c.StoreRewrite(m.Fingerprint(), 2, 5, m, testStats()); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.LoadRewrite(m.Fingerprint(), 2, 5); !ok {
			t.Fatal("verified cache rejected an honest entry")
		}
	})
}

// TestVerifyOnLoadBenchmark covers the benchmark entry kind: verification
// is part of the v2 layout there too.
func TestVerifyOnLoadBenchmark(t *testing.T) {
	c := open(t)
	c.SetVerify(true)
	m := testMIG("adder", 3)
	if err := c.StoreBenchmark("adder", 2, m); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadBenchmark("adder", 2)
	if !ok || got.Fingerprint() != m.Fingerprint() {
		t.Fatal("verified benchmark load failed on an honest entry")
	}

	// A v2 entry with a garbled "out" line is a miss even unverified: the
	// line is part of the layout.
	path := entryFile(t, c)
	data, _ := os.ReadFile(path)
	mangled := strings.Replace(string(data), "out ", "oot ", 1)
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	c.SetVerify(false)
	if _, ok := c.LoadBenchmark("adder", 2); ok {
		t.Fatal("mangled out line must be a miss")
	}
}

func crc32ieee(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
