package hdl

import (
	"math"

	"plim/internal/mig"
)

// Sin builds a CORDIC sine circuit. The input is an angleBits-bit unsigned
// angle θ encoding θ/2^angleBits · π/2 radians (one quadrant); the output
// has angleBits+1 bits in fixed point Q(angleBits): sin ∈ [0, 1] with 1.0
// representable as the MSB. iters CORDIC rotations give roughly iters bits
// of precision; the datapath carries guard bits.
//
// This reproduces the structure of the EPFL `sin` benchmark (24-bit in,
// 25-bit out): a cascade of conditional add/subtract stages with constant
// shifts — exactly the fanout/level profile the endurance experiments need.
func (b *Builder) Sin(angle Vec, iters int) Vec {
	ab := len(angle)
	frac := ab + 2      // fraction bits of the internal fixed point
	w := frac + 3       // total width: sign + 2 integer bits + fraction
	scale := pow2(frac) // 1.0 in fixed point
	_ = scale

	// z0 = θ · (π/2)/2^ab in Q(frac): multiply the integer θ by the
	// constant (π/2)·2^(frac-ab) = π·2^(frac-ab-1).
	z := b.ConstMulFrac(ZeroExt(angle, w), math.Pi*pow2(frac-ab-1), w, 16)

	// x0 = K (the CORDIC gain compensation), y0 = 0.
	k := 1.0
	for i := 0; i < iters; i++ {
		k *= 1 / math.Sqrt(1+pow2(-2*i))
	}
	x := b.Const(uint64(math.Round(k*pow2(frac))), w)
	y := b.Const(0, w)

	for i := 0; i < iters; i++ {
		atan := uint64(math.Round(math.Atan(pow2(-i)) * pow2(frac)))
		neg := z[w-1] // z < 0
		xs := shrSigned(x, i)
		ys := shrSigned(y, i)
		// z ≥ 0: x -= y>>i, y += x>>i, z -= atan; else the opposite.
		nx := b.AddSub(x, ys, neg.Not())
		ny := b.AddSub(y, xs, neg)
		nz := b.AddSub(z, b.Const(atan, w), neg.Not())
		x, y, z = nx, ny, nz
	}

	// y is in [0, 1] (Q frac); emit Q(ab) with one integer bit.
	out := make(Vec, ab+1)
	for i := range out {
		out[i] = y[i+frac-ab]
	}
	return out
}

// shrSigned is an arithmetic right shift by a constant.
func shrSigned(v Vec, k int) Vec {
	return ShrConst(v, k, v[len(v)-1])
}

// Log2 builds a base-2 logarithm circuit: for an n-bit unsigned input x ≥ 1
// it returns ⌈log2 n⌉ integer bits and fracBits fraction bits of log2(x),
// using a leading-one detector, a normalizing barrel shifter and the
// quadratic interpolation log2(1+t) ≈ t + c·t·(1−t) with c = 0.3465
// (maximum error ≈ 0.008). The input 0 yields 0.
//
// It reproduces the structure of the EPFL `log2` benchmark (32 bits in and
// out) as a mixed encoder/shifter/multiplier datapath; see DESIGN.md for
// the fidelity note.
func (b *Builder) Log2(x Vec, fracBits int) (intPart, fracPart Vec) {
	n := 1
	for n < len(x) {
		n *= 2
	}
	xx := ZeroExt(x, n)
	p, valid := b.PriorityEncoder(xx)
	shift := NotV(p) // n-1-p
	norm := b.BarrelShl(xx, shift)
	// t = bits below the leading one, as a Q(n-1) fraction in [0, 1).
	t := norm[:n-1]

	// Quadratic correction on a truncated 16-bit version of t.
	tb := 16
	if n-1 < tb {
		tb = n - 1
	}
	tTop := t[len(t)-tb:]        // top tb bits of t: Q(tb)
	u := b.Mul(tTop, NotV(tTop)) // ≈ t·(1−t), Q(2tb), width 2tb
	uTop := u[len(u)-tb:]        // back to Q(tb)
	corr := b.ConstMulFrac(uTop, 0.3465*pow2(fracBits-tb), fracBits, 12)

	// frac = t (aligned to fracBits) + correction.
	var tAligned Vec
	if fracBits <= len(t) {
		tAligned = t[len(t)-fracBits:]
	} else {
		tAligned = Concat(b.Const(0, fracBits-len(t)), t)
	}
	frac, _ := b.Add(tAligned, corr, mig.Const0)

	intPart = b.AndBit(p, valid)
	fracPart = b.AndBit(frac, valid)
	return intPart, fracPart
}
