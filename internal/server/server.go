package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"plim"
	"plim/internal/trace"
	"plim/internal/verify"
)

// Options configures a Server. The zero value derives everything from the
// engine: concurrency from WithWorkers, a 4× wait queue, a 60 s default
// request deadline capped at 10 min, 8 MiB request bodies.
type Options struct {
	// Concurrency is the number of in-flight computations regarded as
	// running (default: the engine's worker count). Flights submit task
	// graphs to the engine's shared scheduler, which owns the actual CPU
	// parallelism; Concurrency only anchors the running/queued gauge split
	// and the Retry-After estimate.
	Concurrency int
	// QueueDepth bounds how many computations beyond Concurrency may be in
	// flight at once (default 4 × Concurrency). Beyond Concurrency +
	// QueueDepth requests are answered 429 immediately.
	QueueDepth int
	// DefaultTimeout is the per-request deadline applied when a request
	// names none (default 60 s; negative = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 10 min).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB). Netlists beyond
	// it are rejected with 400.
	MaxBodyBytes int64
	// Logger receives structured access and flight logs (default: discard).
	// Access lines log every request with route/status/duration; flight
	// lines are keyed by the flight's coalescing key, so the lifecycle of a
	// computation shared by many requests reads as one story.
	Logger *slog.Logger
}

func (o Options) withDefaults(eng *plim.Engine) Options {
	if o.Concurrency <= 0 {
		o.Concurrency = eng.Workers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Concurrency
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// statusClientClosed is the non-standard code (nginx convention) recorded
// when a client disconnects before its response exists.
const statusClientClosed = 499

// Server serves one shared plim.Engine over HTTP. It implements
// http.Handler; see the package comment for the endpoint list and the
// serving machinery.
type Server struct {
	eng      *plim.Engine
	opts     Options
	mux      *http.ServeMux
	adm      *admission
	flights  *flightGroup
	met      *metrics
	log      *slog.Logger
	traces   *traceRing
	draining atomic.Bool
}

// New builds a Server over eng. The engine must be valid (an engine
// carrying a construction error answers every request 500).
func New(eng *plim.Engine, opts Options) *Server {
	opts = opts.withDefaults(eng)
	s := &Server{
		eng:     eng,
		opts:    opts,
		mux:     http.NewServeMux(),
		adm:     newAdmission(opts.Concurrency, opts.QueueDepth),
		flights: newFlightGroup(),
		met:     newMetrics(),
		log:     opts.Logger,
		traces:  &traceRing{},
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/benchmarks", s.instrument("benchmarks", s.handleBenchmarks))
	s.mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/execute", s.instrument("execute", s.handleExecute))
	s.mux.HandleFunc("POST /v1/rewrite", s.instrument("rewrite", s.handleRewrite))
	s.mux.HandleFunc("POST /v1/suite", s.instrument("suite", s.handleSuite))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the health endpoint to 503 so load balancers stop
// routing new traffic while in-flight requests finish (cmd/plimserve sets
// it on SIGTERM before calling http.Server.Shutdown).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// statusRecorder captures the response code for metrics while forwarding
// Flush, which the SSE path requires.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer so flusherOf (and
// http.ResponseController) can find the real Flusher. statusRecorder
// deliberately does not implement Flush itself: claiming the interface
// unconditionally would make the SSE path believe every writer can stream.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// flusherOf finds the genuine http.Flusher behind any chain of wrappers
// exposing Unwrap.
func flusherOf(w http.ResponseWriter) (http.Flusher, bool) {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f, true
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil, false
		}
		w = u.Unwrap()
	}
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	// Probe routes (health checks, scrapes) log at debug so an idle but
	// monitored server stays quiet at the default info level.
	level := slog.LevelInfo
	if route == "healthz" || route == "metrics" {
		level = slog.LevelDebug
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.met.observeRequest(route, rec.status, elapsed)
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.met.render(s))
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	names := plim.Benchmarks()
	out := make([]benchmarkJSON, 0, len(names))
	for _, n := range names {
		info, _ := plim.LookupBenchmark(n)
		out = append(out, benchmarkJSON{Name: n, PI: info.PI, PO: info.PO, Synthetic: info.Synthetic})
	}
	writeJSON(w, http.StatusOK, out)
}

// badRequest is a request-validation failure answered before any
// computation is planned.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (computeRequest, error) {
	var req computeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if errors.Is(err, io.EOF) {
			return req, nil // empty body: all defaults
		}
		return req, badRequest{fmt.Sprintf("invalid request body: %s", err)}
	}
	if req.TimeoutMS < 0 {
		return req, badRequest{"timeout_ms must be ≥ 0"}
	}
	if req.Shrink < 0 {
		return req, badRequest{"shrink must be ≥ 1 (or 0 for the server default)"}
	}
	return req, nil
}

// sourceMIG resolves the request's function source. Benchmark sources
// return a loader (so cache-served flights never build eagerly); netlist
// sources parse immediately — the fingerprint is the coalescing key.
func (s *Server) sourceMIG(req computeRequest) (key string, shrink int, load func(ctx context.Context) (*plim.MIG, error), err error) {
	shrink = req.Shrink
	if shrink == 0 {
		shrink = s.eng.Shrink()
	}
	switch {
	case req.Benchmark != "" && req.Netlist != "":
		return "", 0, nil, badRequest{"set either benchmark or netlist, not both"}
	case req.Benchmark != "":
		if _, ok := plim.LookupBenchmark(req.Benchmark); !ok {
			return "", 0, nil, badRequest{fmt.Sprintf("unknown benchmark %q", req.Benchmark)}
		}
		name := req.Benchmark
		return fmt.Sprintf("bench:%s@%d", name, shrink), shrink,
			func(ctx context.Context) (*plim.MIG, error) { return s.eng.BenchmarkScaledContext(ctx, name, shrink) }, nil
	case req.Netlist != "":
		if req.Shrink != 0 {
			return "", 0, nil, badRequest{"shrink applies to benchmark sources only"}
		}
		m, err := plim.ReadMIG(strings.NewReader(req.Netlist))
		if err != nil {
			return "", 0, nil, badRequest{fmt.Sprintf("invalid netlist: %s", err)}
		}
		return fmt.Sprintf("mig:%016x", m.Fingerprint()), 0,
			func(context.Context) (*plim.MIG, error) { return m, nil }, nil
	}
	return "", 0, nil, badRequest{"need benchmark or netlist"}
}

// parseConfig resolves a configuration name with optional "+capN" suffix
// plus an explicit cap override.
func parseConfig(name string, cap uint64) (plim.Config, error) {
	if name == "" {
		name = "full"
	}
	base, capSuffix, hasSuffix := strings.Cut(name, "+cap")
	if hasSuffix {
		w, err := strconv.ParseUint(capSuffix, 10, 64)
		if err != nil || w == 0 {
			return plim.Config{}, badRequest{fmt.Sprintf("bad cap suffix in config %q", name)}
		}
		if cap != 0 && cap != w {
			return plim.Config{}, badRequest{fmt.Sprintf("config %q and cap %d disagree", name, cap)}
		}
		cap = w
	}
	var cfg plim.Config
	switch base {
	case "naive":
		cfg = plim.Naive
	case "compiler21":
		cfg = plim.Compiler21
	case "minwrite":
		cfg = plim.MinWrite
	case "rewriting":
		cfg = plim.Rewriting
	case "full":
		cfg = plim.Full
	default:
		return plim.Config{}, badRequest{fmt.Sprintf("unknown config %q", name)}
	}
	if cap > 0 {
		cfg.MaxWrites = cap
		cfg.Name += fmt.Sprintf("+cap%d", cap)
	}
	return cfg, nil
}

func parseKind(kind string) (plim.RewriteKind, error) {
	switch kind {
	case "none":
		return plim.RewriteNone, nil
	case "alg1", "algorithm1":
		return plim.RewriteAlgorithm1, nil
	case "alg2", "algorithm2", "":
		return plim.RewriteAlgorithm2, nil
	}
	return 0, badRequest{fmt.Sprintf("unknown rewrite kind %q (want none, alg1 or alg2)", kind)}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	if err == nil && req.Emit != "" && req.Emit != "asm" && req.Emit != "binary" {
		err = badRequest{fmt.Sprintf("unknown emit %q (want asm or binary)", req.Emit)}
	}
	var cfg plim.Config
	if err == nil {
		cfg, err = parseConfig(req.Config, req.Cap)
	}
	var srcKey string
	var shrink int
	var load func(ctx context.Context) (*plim.MIG, error)
	if err == nil {
		srcKey, shrink, load, err = s.sourceMIG(req)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// The cost model name joins the key: responses embed priced totals, so
	// requests served by engines priced differently must never coalesce.
	key := fmt.Sprintf("compile|%s|%s|%s|verify=%t|cm=%s|trace=%t", srcKey, cfg.Name, req.Emit, req.Verify, s.eng.CostModelName(), req.Trace)
	s.dispatch(w, r, req.TimeoutMS, key, req.Trace, func(ctx context.Context, publish func(plim.Event)) response {
		m, err := load(ctx)
		if err != nil {
			return errorResult(err)
		}
		rep, err := s.eng.Run(plim.ContextWithProgress(ctx, publish), m, cfg)
		if err != nil {
			return errorResult(err)
		}
		// The tail — verify, program emission, JSON encoding — is wall time
		// too; the span keeps traced flights accounted end to end.
		esp := trace.StartNoCtx(ctx, "encode", "response")
		defer esp.End()
		out := compileResponse{
			Function:     m.Name,
			Config:       cfg.Name,
			Shrink:       shrink,
			Effort:       s.eng.Effort(),
			Rewrite:      rewriteStats(rep.Rewrite),
			Instructions: rep.NumInstructions(),
			RRAMs:        rep.NumRRAMs(),
			Writes:       summarizeWrites(rep.Writes),
			Lifetime1e10: rep.Lifetime(1e10),
			Cost:         rep.Cost,
		}
		if req.Verify {
			vr := rep.Verify // already computed when the engine runs WithVerify
			if vr == nil {
				vr = plim.Verify(rep.Result.Program, plim.VerifyOptions{MaxWrites: cfg.MaxWrites})
				verify.CheckWriteParity(vr, rep.Result.WriteCounts, "allocator")
			}
			out.Verification = verifyReport(vr)
		}
		switch req.Emit {
		case "asm":
			var b bytes.Buffer
			if err := rep.Result.Program.WriteAsm(&b); err != nil {
				return errorResult(err)
			}
			out.ProgramAsm = b.String()
		case "binary":
			var b bytes.Buffer
			if err := rep.Result.Program.WriteBinary(&b); err != nil {
				return errorResult(err)
			}
			out.ProgramBinary = b.Bytes()
		}
		return jsonResult(http.StatusOK, out)
	})
}

// maxExecuteVectors bounds one /v1/execute batch (explicit, random or
// exhaustive): 2^20 vectors keep the packed state of even wide programs in
// the tens of megabytes.
const maxExecuteVectors = 1 << 20

// unpackVectors decodes the bit-sliced wire form into a batch. Inactive
// lanes are masked off (SetWord), so equal vector sets coalesce regardless
// of junk beyond N.
func unpackVectors(pv *packedVectors) (*plim.Batch, error) {
	if pv.Lines <= 0 || pv.N < 0 || pv.N > maxExecuteVectors {
		return nil, badRequest{fmt.Sprintf("vectors_packed: need 1 ≤ lines and 0 ≤ n ≤ %d", maxExecuteVectors)}
	}
	chunks := (pv.N + 63) / 64
	if want := pv.Lines * chunks * 8; len(pv.Words) != want {
		return nil, badRequest{fmt.Sprintf("vectors_packed.words: got %d bytes, want %d (lines × ⌈n/64⌉ × 8)", len(pv.Words), want)}
	}
	b := plim.NewBatch(pv.Lines, pv.N)
	k := 0
	for i := 0; i < pv.Lines; i++ {
		for c := 0; c < chunks; c++ {
			b.SetWord(i, c, binary.LittleEndian.Uint64(pv.Words[k:]))
			k += 8
		}
	}
	return b, nil
}

// packVectors is the inverse wire encoding, used for "output": "packed".
func packVectors(b *plim.Batch) *packedVectors {
	words := make([]byte, b.Lines()*b.Chunks()*8)
	k := 0
	for i := 0; i < b.Lines(); i++ {
		for c := 0; c < b.Chunks(); c++ {
			binary.LittleEndian.PutUint64(words[k:], b.Word(i, c))
			k += 8
		}
	}
	return &packedVectors{N: b.Len(), Lines: b.Lines(), Words: words}
}

// vectorSource resolves the request's input vectors into a coalescing key
// component and a constructor. Explicit vectors pack (and content-hash)
// immediately; random and exhaustive batches are generated inside the
// flight, once the program's input count is known.
func vectorSource(req computeRequest) (key string, mk func(pis int) (*plim.Batch, error), err error) {
	sources := 0
	for _, set := range []bool{len(req.Vectors) > 0, req.VectorsPacked != nil, req.Random != 0, req.Exhaustive} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return "", nil, badRequest{"set exactly one of vectors, vectors_packed, random, exhaustive"}
	}
	if req.Seed != 0 && req.Random == 0 {
		return "", nil, badRequest{"seed applies to random vectors only"}
	}
	switch {
	case len(req.Vectors) > 0:
		if len(req.Vectors) > maxExecuteVectors {
			return "", nil, badRequest{fmt.Sprintf("at most %d vectors per request", maxExecuteVectors)}
		}
		b, err := plim.PackBatchStrings(req.Vectors)
		if err != nil {
			return "", nil, badRequest{fmt.Sprintf("invalid vectors: %s", err)}
		}
		return fmt.Sprintf("v:%016x", b.Hash()), func(int) (*plim.Batch, error) { return b, nil }, nil
	case req.VectorsPacked != nil:
		b, err := unpackVectors(req.VectorsPacked)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("v:%016x", b.Hash()), func(int) (*plim.Batch, error) { return b, nil }, nil
	case req.Random != 0:
		if req.Random < 0 || req.Random > maxExecuteVectors {
			return "", nil, badRequest{fmt.Sprintf("random must be between 1 and %d", maxExecuteVectors)}
		}
		n, seed := req.Random, req.Seed
		return fmt.Sprintf("rand:%d:%d", n, seed),
			func(pis int) (*plim.Batch, error) { return plim.RandomBatch(pis, n, seed), nil }, nil
	default: // exhaustive
		return "exh", func(pis int) (*plim.Batch, error) {
			if pis > 20 { // 2^20 = maxExecuteVectors
				return nil, badRequest{fmt.Sprintf("exhaustive execution needs ≤ 20 inputs, program has %d", pis)}
			}
			return plim.ExhaustiveBatch(pis)
		}, nil
	}
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/x-ndjson") {
		s.handleExecuteStream(w, r)
		return
	}
	req, err := s.decodeRequest(w, r)
	if err == nil {
		err = validateExecute(req)
	}
	var cfg plim.Config
	if err == nil {
		cfg, err = parseConfig(req.Config, req.Cap)
	}
	var vecKey string
	var mkBatch func(pis int) (*plim.Batch, error)
	if err == nil {
		vecKey, mkBatch, err = vectorSource(req)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.dispatchExecute(w, r, req, cfg, vecKey, mkBatch)
}

// validateExecute checks the execute-only request fields shared by the JSON
// and NDJSON input forms.
func validateExecute(req computeRequest) error {
	if req.Output != "" && req.Output != "strings" && req.Output != "packed" {
		return badRequest{fmt.Sprintf("unknown output %q (want strings or packed)", req.Output)}
	}
	return nil
}

// handleExecuteStream is the streaming input form of /v1/execute
// (Content-Type: application/x-ndjson): the first line is the JSON request
// — without a vector source, and with vectors following as one raw "0101"
// line each. Vectors are packed into 64-lane chunks as they arrive, so the
// body is never buffered whole; it bypasses the MaxBodyBytes cap and is
// bounded by the vector cap times the width fixed by the first vector.
// The packed batch content-hashes into the same coalescing key as the
// buffered forms, so a streamed request coalesces with (and answers
// byte-identically to) an equivalent JSON one.
func (s *Server) handleExecuteStream(w http.ResponseWriter, r *http.Request) {
	fail := func(msg string) { writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg}) }
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			fail(fmt.Sprintf("reading request line: %s", err))
		} else {
			fail("ndjson body: missing request line")
		}
		return
	}
	var req computeRequest
	dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Sprintf("invalid request line: %s", err))
		return
	}
	switch {
	case req.TimeoutMS < 0:
		fail("timeout_ms must be ≥ 0")
		return
	case req.Shrink < 0:
		fail("shrink must be ≥ 1 (or 0 for the server default)")
		return
	case len(req.Vectors) > 0 || req.VectorsPacked != nil || req.Random != 0 || req.Seed != 0 || req.Exhaustive:
		fail("ndjson execute: vectors are the body lines; remove the vector-source fields")
		return
	}
	if err := validateExecute(req); err != nil {
		fail(err.Error())
		return
	}
	cfg, err := parseConfig(req.Config, req.Cap)
	if err != nil {
		fail(err.Error())
		return
	}
	bu := plim.NewBatchBuilder()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue // tolerate blank lines and trailing newlines
		}
		if bu.Len() >= maxExecuteVectors {
			fail(fmt.Sprintf("at most %d vectors per request", maxExecuteVectors))
			return
		}
		if err := bu.AddString(line); err != nil {
			fail(fmt.Sprintf("invalid vector: %s", err))
			return
		}
	}
	if err := sc.Err(); err != nil {
		fail(fmt.Sprintf("reading vectors: %s", err))
		return
	}
	if bu.Len() == 0 {
		fail("ndjson body carries no vectors")
		return
	}
	b := bu.Batch()
	vecKey := fmt.Sprintf("v:%016x", b.Hash())
	s.dispatchExecute(w, r, req, cfg, vecKey, func(int) (*plim.Batch, error) { return b, nil })
}

// dispatchExecute is the request path shared by the JSON and NDJSON input
// forms of /v1/execute, from function-source resolution onward.
func (s *Server) dispatchExecute(w http.ResponseWriter, r *http.Request, req computeRequest, cfg plim.Config, vecKey string, mkBatch func(pis int) (*plim.Batch, error)) {
	srcKey, shrink, load, err := s.sourceMIG(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := fmt.Sprintf("execute|%s|%s|e%d|%s|%s|cm=%s|trace=%t", srcKey, cfg.Name, req.Endurance, vecKey, req.Output, s.eng.CostModelName(), req.Trace)
	endurance, packedOut := req.Endurance, req.Output == "packed"
	s.dispatch(w, r, req.TimeoutMS, key, req.Trace, func(ctx context.Context, publish func(plim.Event)) response {
		m, err := load(ctx)
		if err != nil {
			return errorResult(err)
		}
		pctx := plim.ContextWithProgress(ctx, publish)
		rep, err := s.eng.Run(pctx, m, cfg)
		if err != nil {
			return errorResult(err)
		}
		p := rep.Result.Program
		b, err := mkBatch(len(p.PICells))
		if err != nil {
			var br badRequest
			if errors.As(err, &br) {
				return response{status: http.StatusBadRequest, body: mustJSON(errorResponse{Error: br.msg})}
			}
			return errorResult(err)
		}
		res, err := s.eng.ExecuteBatch(pctx, p, b, plim.ExecOptions{Endurance: endurance})
		var fault *plim.ExecFaultError
		if err != nil && !errors.As(err, &fault) {
			return errorResult(err)
		}
		s.met.observeExecute(b.Len(), b.Chunks())
		esp := trace.StartNoCtx(ctx, "encode", "response")
		defer esp.End()
		out := executeResponse{
			Function:     m.Name,
			Config:       cfg.Name,
			Shrink:       shrink,
			Fingerprint:  fmt.Sprintf("%016x", p.Fingerprint()),
			Instructions: len(p.Insts),
			RRAMs:        int(p.NumCells),
			Vectors:      b.Len(),
			Chunks:       b.Chunks(),
			Writes:       summarizeWrites(plim.SummarizeWrites(res.Writes)),
			Switches:     total(res.Switches),
			Cost:         res.Cost,
		}
		switch {
		case fault != nil:
			out.Fault = &executeFaultJSON{Inst: fault.Inst, Error: fault.Error()}
		case packedOut:
			out.OutputsPack = packVectors(res.Outputs)
		default:
			out.Outputs = res.Outputs.Strings()
		}
		return jsonResult(http.StatusOK, out)
	})
}

// total sums a per-cell counter vector.
func total(counts []uint64) uint64 {
	var t uint64
	for _, c := range counts {
		t += c
	}
	return t
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	var kind plim.RewriteKind
	if err == nil {
		kind, err = parseKind(req.Kind)
	}
	var srcKey string
	var shrink int
	var load func(ctx context.Context) (*plim.MIG, error)
	if err == nil {
		srcKey, shrink, load, err = s.sourceMIG(req)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := fmt.Sprintf("rewrite|%s|%s|trace=%t", srcKey, kind, req.Trace)
	s.dispatch(w, r, req.TimeoutMS, key, req.Trace, func(ctx context.Context, publish func(plim.Event)) response {
		m, err := load(ctx)
		if err != nil {
			return errorResult(err)
		}
		out, st, err := s.eng.Rewrite(plim.ContextWithProgress(ctx, publish), m, kind)
		if err != nil {
			return errorResult(err)
		}
		esp := trace.StartNoCtx(ctx, "encode", "response")
		defer esp.End()
		var mig bytes.Buffer
		if err := out.Write(&mig); err != nil {
			return errorResult(err)
		}
		return jsonResult(http.StatusOK, rewriteResponse{
			Function: m.Name,
			Kind:     kind.String(),
			Effort:   s.eng.Effort(),
			Shrink:   shrink,
			Stats:    rewriteStats(st),
			MIG:      mig.String(),
		})
	})
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	if err == nil {
		switch {
		case req.Benchmark != "" || req.Netlist != "":
			err = badRequest{"suite requests take a benchmarks list, not benchmark/netlist"}
		case req.Shrink != 0 && req.Shrink != s.eng.Shrink():
			err = badRequest{fmt.Sprintf("suite runs at the server's shrink (%d)", s.eng.Shrink())}
		}
	}
	if err == nil {
		for _, b := range req.Benchmarks {
			if _, ok := plim.LookupBenchmark(b); !ok {
				err = badRequest{fmt.Sprintf("unknown benchmark %q", b)}
				break
			}
		}
	}
	var cfgs []plim.Config
	if err == nil {
		if len(req.Configs) == 0 {
			cfgs = plim.TableIConfigs()
		} else {
			cfgs = make([]plim.Config, len(req.Configs))
			for i, name := range req.Configs {
				if cfgs[i], err = parseConfig(name, 0); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cfgNames := make([]string, len(cfgs))
	for i, c := range cfgs {
		cfgNames[i] = c.Name
	}
	key := fmt.Sprintf("suite|%s|%s|cm=%s|trace=%t", strings.Join(req.Benchmarks, ","), strings.Join(cfgNames, ","), s.eng.CostModelName(), req.Trace)
	benchmarks := req.Benchmarks
	s.dispatch(w, r, req.TimeoutMS, key, req.Trace, func(ctx context.Context, publish func(plim.Event)) response {
		sr, err := s.eng.RunSuite(plim.ContextWithProgress(ctx, publish), cfgs, benchmarks...)
		if err != nil {
			return errorResult(err)
		}
		esp := trace.StartNoCtx(ctx, "encode", "response")
		defer esp.End()
		out := suiteResponse{
			Shrink:  s.eng.Shrink(),
			Effort:  s.eng.Effort(),
			Configs: cfgNames,
		}
		for _, info := range sr.Benchmarks {
			out.Benchmarks = append(out.Benchmarks, benchmarkJSON{
				Name: info.Name, PI: info.PI, PO: info.PO, Synthetic: info.Synthetic,
			})
		}
		out.Reports = make([][]suiteReportJSON, len(sr.Reports))
		for b, row := range sr.Reports {
			out.Reports[b] = make([]suiteReportJSON, len(row))
			for c, rep := range row {
				out.Reports[b][c] = suiteReportJSON{
					Instructions: rep.NumInstructions(),
					RRAMs:        rep.NumRRAMs(),
					Writes:       summarizeWrites(rep.Writes),
					Rewrite:      rewriteStats(rep.Rewrite),
					Cost:         rep.Cost,
				}
			}
		}
		return jsonResult(http.StatusOK, out)
	})
}

// effectiveTimeout maps a request's timeout_ms onto the server's policy.
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if ms == 0 {
		if s.opts.DefaultTimeout < 0 {
			return 0
		}
		d = s.opts.DefaultTimeout
	}
	if s.opts.MaxTimeout > 0 && d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// dispatch is the shared serving path of the three compute endpoints:
// apply the request deadline, coalesce onto (or start) the flight for key,
// then either stream progress (SSE) or wait for the shared response. With
// traced set, the leader opens a per-flight trace whose root "request" span
// carries the flight key and the leader role; coalesced followers receive
// the shared trace (their coalescing is visible as the X-Plim-Coalesced
// header plus the follower's own access-log line).
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, timeoutMS int64, key string, traced bool, fn func(context.Context, func(plim.Event)) response) {
	reqCtx := r.Context()
	if d := s.effectiveTimeout(timeoutMS); d > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, d)
		defer cancel()
	}
	f, leader := s.flights.join(key)
	defer s.flights.leave(f)
	if leader {
		s.met.flightStarted()
		// The computation context deliberately does NOT descend from this
		// request: coalesced followers must survive the leader's disconnect.
		// It carries the leader's deadline and is cancelled when the last
		// subscriber leaves (flightGroup.leave).
		cctx := context.Background()
		var cancel context.CancelFunc
		if d := s.effectiveTimeout(timeoutMS); d > 0 {
			cctx, cancel = context.WithTimeout(cctx, d)
		} else {
			cctx, cancel = context.WithCancel(cctx)
		}
		var tr *trace.Trace
		var root trace.Handle
		if traced {
			tr = trace.New()
			endpoint, _, _ := strings.Cut(key, "|")
			cctx, root = trace.Start(trace.NewContext(cctx, tr), "request", endpoint)
			root.Attr("flight", key)
			root.Attr("role", "leader")
		}
		s.flights.setCancel(f, cancel)
		s.log.LogAttrs(reqCtx, slog.LevelInfo, "flight start",
			slog.String("flight", key), slog.Bool("trace", traced))
		go s.runFlight(cctx, cancel, f, tr, root, fn)
	} else {
		s.met.requestCoalesced()
		w.Header().Set("X-Plim-Coalesced", "1")
	}
	if wantsSSE(r) {
		s.streamSSE(w, reqCtx, f)
		return
	}
	resp, err := f.wait(reqCtx)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request deadline exceeded"})
		} else {
			// The client is gone; nobody reads the body, but the status
			// must still reach the metrics (499, nginx's client-closed
			// convention) so disconnects don't count as successes.
			w.WriteHeader(statusClientClosed)
		}
		return
	}
	writeResponse(w, resp)
}

// runFlight executes one coalesced computation: admission first (the whole
// flight holds exactly one in-flight seat no matter how many requests share
// it), then the engine call, whose work the engine's scheduler multiplexes
// with every other flight's by request deadline.
func (s *Server) runFlight(ctx context.Context, cancel context.CancelFunc, f *flight, tr *trace.Trace, root trace.Handle, fn func(context.Context, func(plim.Event)) response) {
	defer cancel()
	start := time.Now()
	var resp response
	release, err := s.adm.admit()
	if err != nil {
		s.met.admissionRejected()
		resp = response{
			status:     http.StatusTooManyRequests,
			retryAfter: s.retryAfter(),
			body:       mustJSON(errorResponse{Error: "server at capacity, retry later"}),
		}
	} else {
		resp = s.safeCompute(ctx, f, fn)
		release()
	}
	if tr != nil {
		root.Attr("status", strconv.Itoa(resp.status))
		root.End()
		blob, serverTiming, wallMS := buildTrace(tr)
		resp.body = spliceTrace(resp.body, blob)
		resp.serverTiming = serverTiming
		resp.trace = blob
		s.traces.record(f.key, wallMS, blob)
	}
	s.flights.forget(f)
	f.finish(resp)
	s.log.LogAttrs(ctx, slog.LevelInfo, "flight done",
		slog.String("flight", f.key),
		slog.Int("status", resp.status),
		slog.Duration("elapsed", time.Since(start)))
}

// retryAfter estimates when a rejected client should try again. The
// primary estimate is scheduler-aware: the tasks queued in the engine's
// scheduler, per kind, times that kind's observed mean task latency,
// divided across the workers draining them — how long the current backlog
// actually needs, rather than a guess from whole-flight wall-clocks. Kinds
// without latency history yet contribute nothing; when no queued kind has
// history (cold server, or a backlog of flights admission counts but the
// scheduler has not seen), it falls back to the admission EWMA estimate.
// Clamped to [1s, 60s] like the fallback.
func (s *Server) retryAfter() time.Duration {
	st := s.eng.SchedulerStats()
	var secs float64
	known := false
	for k, n := range st.RunnableByKind {
		h, ok := st.Latency[k]
		if !ok || h.Count == 0 {
			continue
		}
		secs += float64(n) * (h.SumSeconds / float64(h.Count))
		known = true
	}
	if !known {
		return s.adm.retryAfter()
	}
	if st.Workers > 0 {
		secs /= float64(st.Workers)
	}
	secs = math.Ceil(secs)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// safeCompute runs the computation with a panic barrier: runFlight executes
// on a bare goroutine, outside net/http's per-request recovery, so without
// this one adversarial netlist tripping a compiler invariant would take
// down the whole daemon instead of failing one flight.
func (s *Server) safeCompute(ctx context.Context, f *flight, fn func(context.Context, func(plim.Event)) response) (resp response) {
	defer func() {
		if r := recover(); r != nil {
			resp = response{
				status: http.StatusInternalServerError,
				body:   mustJSON(errorResponse{Error: fmt.Sprintf("computation panicked: %v", r)}),
			}
		}
	}()
	return fn(ctx, func(ev plim.Event) {
		s.met.countEvent(ev)
		f.publish(ev)
	})
}

func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamSSE renders the flight as a server-sent-event stream: every
// progress event as it happens (replayed from the start for coalesced
// followers), then one final "result" (or "error") event carrying the
// response body.
func (s *Server) streamSSE(w http.ResponseWriter, ctx context.Context, f *flight) {
	fl, ok := flusherOf(w)
	if !ok {
		// No streaming support (unusual): degrade to the plain JSON path.
		resp, err := f.wait(ctx)
		if err == nil {
			writeResponse(w, resp)
		}
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	resp, err := f.stream(ctx, func(ev plim.Event) error {
		name, data := eventPayload(ev)
		b, err := json.Marshal(data)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b); err != nil {
			return err
		}
		fl.Flush()
		return nil
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(w, "event: error\ndata: %s\n", mustJSON(errorResponse{Error: "request deadline exceeded"}))
			fl.Flush()
		}
		return
	}
	if resp.trace != nil {
		// Traced flights get their own frame before the result, so SSE
		// consumers can render the trace without parsing the result body.
		fmt.Fprintf(w, "event: trace\ndata: %s\n\n", resp.trace)
		fl.Flush()
	}
	final := "result"
	if resp.status >= 400 {
		final = "error"
	}
	// resp.body is newline-terminated already; one more newline ends the
	// SSE frame.
	fmt.Fprintf(w, "event: %s\ndata: %s\n", final, resp.body)
	fl.Flush()
}

// errorResult maps a computation error onto a response: deadline → 504,
// cancellation → 503 (drain/abandonment), anything else → 500.
func errorResult(err error) response {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	return response{status: status, body: mustJSON(errorResponse{Error: err.Error()})}
}

func jsonResult(status int, v any) response {
	b, err := json.Marshal(v)
	if err != nil {
		return errorResult(fmt.Errorf("encode response: %w", err))
	}
	return response{status: status, body: append(b, '\n')}
}

// mustJSON marshals a value that cannot fail (plain structs of strings).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"internal encoding failure"}`)
	}
	return append(b, '\n')
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustJSON(v))
}

func writeResponse(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", "application/json")
	if resp.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(resp.retryAfter/time.Second)))
	}
	if resp.serverTiming != "" {
		w.Header().Set("Server-Timing", resp.serverTiming)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}
