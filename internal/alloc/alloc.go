// Package alloc provides the RRAM device allocation strategies of the
// endurance-management scheme (Shirinzadeh et al., DATE 2017).
//
// The PLiM compiler requests a device whenever a value needs a fresh home
// and releases devices whose values are dead. How the free set answers a
// request is the first endurance lever:
//
//   - LIFO: a plain free stack. The most recently released device is reused
//     first, concentrating writes — this is the naive behaviour and also what
//     the baseline compiler [21] uses.
//   - MinWrite: the free device with the smallest write count is returned
//     (the paper's "minimum write count strategy").
//
// Independently, a maximum write cap can be set (the paper's "maximum write
// count strategy"): a device whose write count reaches the cap is retired
// instead of returning to the free set, forcing fresh allocations and
// trading area/latency for balance. The cap is enforced so no device ever
// exceeds MaxWrites writes; the compiler additionally consults CanWrite
// before overwriting a device in place.
package alloc

import (
	"fmt"
)

// Kind selects a free-set policy.
type Kind uint8

// Allocation policies.
const (
	LIFO Kind = iota
	MinWrite
)

// String names the policy.
func (k Kind) String() string {
	switch k {
	case LIFO:
		return "lifo"
	case MinWrite:
		return "minwrite"
	}
	return "?"
}

// Allocator hands out device addresses and tracks per-device write counts.
// It is the single bookkeeper for the paper's #R metric (NumCells) and for
// the write-count distribution the tables report.
type Allocator struct {
	kind Kind
	// maxWrites is the per-device cap; 0 = unlimited.
	maxWrites uint64

	writes  []uint64 // per allocated device
	inUse   []bool
	retired []bool

	// wear is the per-device cost-weighted wear (internal/cost), maintained
	// lazily by NoteWear: compilations without a cost model never touch it.
	// It annotates allocator decisions without influencing them — the free
	// set policies order by writes, so behaviour is unchanged by default.
	wear []uint64

	freeStack []uint32  // LIFO policy
	freeHeap  writeHeap // MinWrite policy

	// Acquire-time scratch for free-set entries skipped because they lack
	// headroom for the current request. Reused across calls so a cap-heavy
	// compilation does not allocate per Acquire.
	skipStack []uint32
	skipHeap  []heapEntry
}

// New returns an allocator with the given policy and write cap (0 = none).
func New(kind Kind, maxWrites uint64) *Allocator {
	return &Allocator{kind: kind, maxWrites: maxWrites}
}

// Reset re-initializes the allocator for a new program under a (possibly
// different) policy and cap, keeping the capacity of every internal slice.
// A reset allocator behaves exactly like a fresh New(kind, maxWrites): all
// devices, write counts, retirements and free-set state are dropped. It is
// the reuse hook of the compile scratch pool — one Allocator serves many
// compilations without reallocating its tables.
func (a *Allocator) Reset(kind Kind, maxWrites uint64) {
	a.kind = kind
	a.maxWrites = maxWrites
	a.writes = a.writes[:0]
	a.inUse = a.inUse[:0]
	a.retired = a.retired[:0]
	a.wear = a.wear[:0]
	a.freeStack = a.freeStack[:0]
	a.freeHeap = a.freeHeap[:0]
}

// Kind returns the policy.
func (a *Allocator) Kind() Kind { return a.kind }

// MaxWrites returns the per-device cap (0 = unlimited).
func (a *Allocator) MaxWrites() uint64 { return a.maxWrites }

// NumCells returns the total number of devices ever allocated — the paper's
// #R metric.
func (a *Allocator) NumCells() int { return len(a.writes) }

// Writes returns the write count of device addr.
func (a *Allocator) Writes(addr uint32) uint64 { return a.writes[addr] }

// WriteCounts returns a copy of all per-device write counts.
func (a *Allocator) WriteCounts() []uint64 {
	//plim:alloc-ok one result copy per compile, not per operation
	return append([]uint64(nil), a.writes...)
}

// minNeed is the smallest number of writes any recycled device receives
// (a preset followed by the main RM3). Devices without even that headroom
// are retired on release; they can never serve a request again.
const minNeed = 2

func (a *Allocator) eligible(addr uint32, need uint64) bool {
	return a.maxWrites == 0 || a.writes[addr]+need <= a.maxWrites
}

// CanWrite reports whether device addr may take n more writes without
// violating the cap. The compiler uses it to decide whether a value's
// device can be overwritten in place.
func (a *Allocator) CanWrite(addr uint32, n uint64) bool {
	return a.maxWrites == 0 || a.writes[addr]+n <= a.maxWrites
}

// Acquire returns a device that can still absorb need more writes: a
// recycled one according to the policy when available, otherwise a fresh
// device. Free devices that lack headroom for this request but could serve
// a smaller one are skipped and kept in the free set.
func (a *Allocator) Acquire(need uint64) uint32 {
	switch a.kind {
	case LIFO:
		skipped := a.skipStack[:0]
		for len(a.freeStack) > 0 {
			addr := a.freeStack[len(a.freeStack)-1]
			a.freeStack = a.freeStack[:len(a.freeStack)-1]
			if a.eligible(addr, need) {
				// Restore skipped entries in their original order.
				for i := len(skipped) - 1; i >= 0; i-- {
					a.freeStack = append(a.freeStack, skipped[i])
				}
				a.skipStack = skipped[:0]
				a.inUse[addr] = true
				if DebugAcquireHook != nil {
					DebugAcquireHook(addr, a.writes[addr], len(a.freeStack))
				}
				return addr
			}
			skipped = append(skipped, addr)
		}
		for i := len(skipped) - 1; i >= 0; i-- {
			a.freeStack = append(a.freeStack, skipped[i])
		}
		a.skipStack = skipped[:0]
	case MinWrite:
		skipped := a.skipHeap[:0]
		for a.freeHeap.Len() > 0 {
			addr := a.freeHeap.pop()
			if debugCheck {
				for _, e := range a.freeHeap {
					if a.writes[e.addr] < a.writes[addr] {
						panic(fmt.Sprintf("alloc: popped %d (w=%d) but %d (w=%d) is free",
							addr, a.writes[addr], e.addr, a.writes[e.addr]))
					}
				}
			}
			if a.eligible(addr, need) {
				for _, e := range skipped {
					a.freeHeap.push(e)
				}
				a.skipHeap = skipped[:0]
				a.inUse[addr] = true
				if DebugAcquireHook != nil {
					DebugAcquireHook(addr, a.writes[addr], a.freeHeap.Len())
				}
				return addr
			}
			skipped = append(skipped, heapEntry{addr: addr, writes: a.writes[addr]})
		}
		for _, e := range skipped {
			a.freeHeap.push(e)
		}
		a.skipHeap = skipped[:0]
	}
	addr := uint32(len(a.writes))
	a.writes = append(a.writes, 0)
	a.inUse = append(a.inUse, true)
	a.retired = append(a.retired, false)
	return addr
}

// Release returns a device to the free set (or retires it when it no longer
// has cap headroom).
func (a *Allocator) Release(addr uint32) {
	if !a.inUse[addr] {
		panic(fmt.Sprintf("alloc: double release of device %d", addr))
	}
	a.inUse[addr] = false
	if !a.eligible(addr, minNeed) {
		a.retired[addr] = true
		return
	}
	switch a.kind {
	case LIFO:
		a.freeStack = append(a.freeStack, addr)
	case MinWrite:
		a.freeHeap.push(heapEntry{addr: addr, writes: a.writes[addr]})
	}
}

// NoteWrite records n write pulses on device addr. It panics if the cap
// would be exceeded — the compiler must check CanWrite first, so a panic
// here is a compiler bug, not an input error.
func (a *Allocator) NoteWrite(addr uint32, n uint64) {
	if a.maxWrites > 0 && a.writes[addr]+n > a.maxWrites {
		panic(fmt.Sprintf("alloc: device %d would exceed cap %d (has %d, +%d)",
			addr, a.maxWrites, a.writes[addr], n))
	}
	a.writes[addr] += n
}

// NoteWear records w cost-weighted wear on device addr (see internal/cost:
// the model's per-class wear increment, 1 per write pulse by default). The
// wear table grows lazily to the current device count, so compilations that
// never call NoteWear pay nothing for it.
func (a *Allocator) NoteWear(addr uint32, w uint64) {
	if int(addr) >= len(a.wear) {
		a.wear = append(a.wear, make([]uint64, len(a.writes)-len(a.wear))...)
	}
	a.wear[addr] += w
}

// MaxWear returns the hottest device's cost-weighted wear — the quantity
// that bounds the compiled program's lifetime under a cost model. It is
// zero when NoteWear was never called.
func (a *Allocator) MaxWear() uint64 {
	var max uint64
	for _, w := range a.wear {
		if w > max {
			max = w
		}
	}
	return max
}

// WearCounts returns a copy of the per-device cost-weighted wear, padded to
// NumCells (devices allocated after the last NoteWear have zero wear).
func (a *Allocator) WearCounts() []uint64 {
	//plim:alloc-ok one result copy per compile, not per operation
	out := make([]uint64, len(a.writes))
	copy(out, a.wear)
	return out
}

// Retired reports whether addr was retired by the cap.
func (a *Allocator) Retired(addr uint32) bool { return a.retired[addr] }

// FreeCount returns the number of devices currently in the free set
// (possibly including devices that will be retired on their next pop).
func (a *Allocator) FreeCount() int {
	if a.kind == LIFO {
		return len(a.freeStack)
	}
	return a.freeHeap.Len()
}

// writeHeap is a min-heap of free devices ordered by write count with the
// address as a deterministic tie-break. Write counts of free devices never
// change (only in-use devices are written), so stored keys stay valid.
//
// The sift operations replicate container/heap's algorithm exactly over the
// concretely-typed slice, so element movement (and thus pop order among
// re-heapified entries) is bit-identical to the former container/heap
// implementation while avoiding its per-Push interface boxing — one heap
// allocation per device release, which dominated allocation counts under
// the MinWrite policy.
type heapEntry struct {
	addr   uint32
	writes uint64
}

type writeHeap []heapEntry

func (h writeHeap) Len() int { return len(h) }
func (h writeHeap) less(i, j int) bool {
	if h[i].writes != h[j].writes {
		return h[i].writes < h[j].writes
	}
	return h[i].addr < h[j].addr
}
func (h writeHeap) swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *writeHeap) push(e heapEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *writeHeap) pop() uint32 {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	old.down(0, n)
	e := old[n]
	*h = old[:n]
	return e.addr
}

func (h writeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h writeHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2, right child
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
}

// debugCheck enables expensive internal invariant checks; tests and probes
// may flip it.
var debugCheck = false

// SetDebugCheck toggles the internal invariant checks.
func SetDebugCheck(v bool) { debugCheck = v }

// DebugAcquireHook, when non-nil, observes every successful recycled-device
// acquisition (debug/probing aid).
var DebugAcquireHook func(addr uint32, writes uint64, poolSize int)
