package plim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"plim/internal/compile"
	"plim/internal/core"
	"plim/internal/cost"
	"plim/internal/diskcache"
	"plim/internal/exec"
	"plim/internal/lru"
	"plim/internal/progress"
	"plim/internal/sched"
	"plim/internal/suite"
	"plim/internal/tables"
	"plim/internal/trace"
)

// Engine is the primary entry point of the package: a reusable, configured
// compilation flow. An Engine is built once with functional options and may
// then run any number of functions, configurations or whole benchmark
// suites concurrently:
//
//	eng := plim.NewEngine(
//		plim.WithEffort(5),
//		plim.WithWorkers(8),
//		plim.WithProgress(func(ev plim.Event) { log.Println(plim.FormatEvent(ev)) }),
//	)
//	rep, err := eng.Run(ctx, m, plim.Full)
//
// Every method takes a context.Context; cancellation is honoured between
// rewrite cycles, between configurations and between suite jobs. Unlike the
// deprecated free functions, option values are explicit: WithEffort(0)
// really runs zero rewriting cycles, and WithWorkers(1) really serializes a
// suite (which also makes progress-event order deterministic).
type Engine struct {
	effort      int
	workers     int
	shrink      int
	cache       bool
	cacheBudget int
	verify      bool
	persistDir  string
	costModel   *cost.Model
	progress    progress.Func
	mu          sync.Mutex // serializes progress delivery
	err         error      // first invalid option; surfaced by every method

	// Populated at construction when cache is true: benchCache memoizes
	// benchmark generator output, rwCache memoizes rewrite stages by
	// (function fingerprint, pipeline, effort). Both are byte-budgeted at
	// cacheBudget estimated bytes each (least-recently-used entries are
	// evicted), so a long-lived engine fed a stream of distinct functions
	// stays bounded.
	benchCache *suite.Cache
	rwCache    *core.RewriteCache

	// execPlans memoizes bit-sliced execution plans by program fingerprint
	// (see Engine.ExecuteBatch); planMu guards it.
	planMu    sync.Mutex
	execPlans *lru.Map[uint64, *exec.Plan]

	// disk is the persistent second tier below both caches, opened at
	// construction when WithPersistentCache names a directory.
	disk *diskcache.Cache

	// scratch recycles compile-stage state (per-node tables, candidate
	// heap, device allocator) across every compilation the engine runs.
	scratch *compile.ScratchPool

	// traceOn arms span recording (WithTrace): every engine call then
	// records scheduler-task, cache-probe and exec-chunk spans into the
	// current trace, harvested by TakeTrace. traceMu guards tr.
	traceOn bool
	traceMu sync.Mutex
	tr      *trace.Trace

	// sched is the engine's process-wide work-stealing task scheduler,
	// sized by WithWorkers and created lazily on first use. Every Run /
	// RunAll / RunSuite / ExecuteBatch call of this engine — including
	// concurrent server flights — submits its work as one dependency graph
	// to this pool, so execution interleaves at task granularity and
	// near-deadline requests are picked up first.
	sched     *sched.Pool
	schedOnce sync.Once
}

// DefaultCacheBudget is the default byte budget of each of the engine's
// in-memory caches (benchmark builds, rewrite results, execution plans):
// 256 MiB of estimated resident size per tier. Entries hold whole MIGs
// whose sizes vary by orders of magnitude, so the budget is accounted in
// bytes (mig.MemSize estimates) rather than entry counts; a full paper
// sweep (18 benchmarks × 3 distinct pipelines) fits with ample headroom.
const DefaultCacheBudget = 256 << 20

// Option configures an Engine at construction time.
type Option func(*Engine)

// NewEngine returns an Engine with the paper's defaults — effort
// DefaultEffort (5), workers GOMAXPROCS, shrink 1 (paper scale), caching
// on, no progress reporting — overridden by the given options. An invalid
// option does not panic; it is reported by the first Engine method call.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		effort:      DefaultEffort,
		workers:     runtime.GOMAXPROCS(0),
		shrink:      1,
		cache:       true,
		cacheBudget: DefaultCacheBudget,
		costModel:   cost.Default(),
		scratch:     compile.NewScratchPool(),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.persistDir != "" {
		// The disk tier sits below the in-memory caches, so persistence
		// implies caching even under WithCache(false).
		e.cache = true
	}
	if e.cache {
		e.benchCache = suite.NewCacheWithBudget(e.cacheBudget)
		e.rwCache = core.NewRewriteCacheWithBudget(e.cacheBudget)
		e.execPlans = lru.New[uint64, *exec.Plan](e.cacheBudget)
	}
	if e.persistDir != "" && e.err == nil {
		d, err := diskcache.Open(e.persistDir)
		if err != nil {
			e.fail(fmt.Errorf("plim: WithPersistentCache(%q): %w", e.persistDir, err))
		} else {
			e.disk = d
			d.SetVerify(e.verify)
			e.benchCache.SetDisk(d)
			e.rwCache.SetDisk(d)
		}
	}
	return e
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// WithEffort sets the MIG-rewriting cycle budget. 0 disables rewriting
// cycles entirely; negative values are invalid.
func WithEffort(cycles int) Option {
	return func(e *Engine) {
		if cycles < 0 {
			e.fail(fmt.Errorf("plim: WithEffort(%d): effort must be ≥ 0", cycles))
			return
		}
		e.effort = cycles
	}
}

// WithWorkers bounds suite parallelism; it must be ≥ 1. One worker makes
// suite runs (and their progress events) fully sequential.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			e.fail(fmt.Errorf("plim: WithWorkers(%d): need at least one worker", n))
			return
		}
		e.workers = n
	}
}

// WithShrink divides benchmark datapath widths for quick runs; it must be
// ≥ 1 (1 = paper scale). It affects Engine.Benchmark and Engine.RunSuite.
func WithShrink(s int) Option {
	return func(e *Engine) {
		if s < 1 {
			e.fail(fmt.Errorf("plim: WithShrink(%d): shrink must be ≥ 1", s))
			return
		}
		e.shrink = s
	}
}

// WithCache toggles the engine's memoization (default on): a benchmark
// cache that reuses generator output across runs and a rewrite cache that
// runs each distinct (function, pipeline, effort) rewrite once — so
// regenerating Table III after Table I skips every algorithm-2 rewrite.
// Results are bit-identical either way. Both caches are LRU-bounded (see
// WithCacheBudget), so even engines fed an unbounded stream of distinct
// functions stay within budget; WithCache(false) turns memoization off
// entirely.
func WithCache(enabled bool) Option {
	return func(e *Engine) { e.cache = enabled }
}

// WithCacheBudget bounds each of the engine's in-memory caches (benchmark
// builds, rewrite results, execution plans) to n estimated bytes; beyond
// the budget least-recently-used entries are evicted. Cached entries hold
// whole MIGs of wildly varying size, so the budget is accounted in bytes
// (mig.MemSize), making it the engine's memory knob for server-style
// workloads over unbounded streams of distinct functions. n must be ≥ 1;
// the default is DefaultCacheBudget (256 MiB). To disable memoization
// entirely use WithCache(false).
func WithCacheBudget(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			e.fail(fmt.Errorf("plim: WithCacheBudget(%d): budget must be ≥ 1", n))
			return
		}
		e.cacheBudget = n
	}
}

// WithPersistentCache adds a persistent on-disk tier below the engine's
// in-memory caches: rewrite results (keyed by function fingerprint,
// pipeline and effort) and benchmark builds (keyed by name and shrink) are
// spilled to dir and reloaded by later engines — including engines in
// other processes, so a plimtab run warms the cache for a following plimc
// run. Entries are written atomically and verified on load (corrupt,
// truncated or version-mismatched files read as misses), the directory may
// be shared by concurrent processes, and disk-served results are
// byte-identical to freshly computed ones. The empty string disables
// persistence (the default); a non-empty dir implies WithCache(true). The
// directory is created if needed; a directory that cannot be created is
// reported by the first Engine method call.
func WithPersistentCache(dir string) Option {
	return func(e *Engine) { e.persistDir = dir }
}

// CacheCounters is a snapshot of the persistent cache tier's accounting.
// Loads that fail verification count as misses; VerifyMisses counts the
// subset of misses rejected by fingerprint re-verification alone (engines
// built WithVerify re-verify disk-served graphs).
type CacheCounters struct {
	RewriteHits, RewriteMisses     uint64
	BenchmarkHits, BenchmarkMisses uint64
	Stores, StoreErrors            uint64
	VerifyMisses                   uint64
}

// PersistentCacheStats reports the persistent tier's hit/miss/store
// counters since the engine was built. ok is false when the engine has no
// persistent cache.
func (e *Engine) PersistentCacheStats() (c CacheCounters, ok bool) {
	if e.disk == nil {
		return CacheCounters{}, false
	}
	d := e.disk.Counters()
	return CacheCounters{
		RewriteHits:   d.RewriteHits,
		RewriteMisses: d.RewriteMisses,
		BenchmarkHits: d.BenchmarkHits, BenchmarkMisses: d.BenchmarkMisses,
		Stores: d.Stores, StoreErrors: d.StoreErrors,
		VerifyMisses: e.disk.VerifyMisses(),
	}, true
}

// PersistentCacheDir reports the persistent cache directory ("" when
// persistence is off).
func (e *Engine) PersistentCacheDir() string { return e.persistDir }

// CacheSummary renders the persistent tier's accounting as the stable
// one-line summary the CLIs print on stderr (and CI smoke jobs grep for).
// ok is false when the engine has no persistent cache.
func (e *Engine) CacheSummary() (s string, ok bool) {
	st, ok := e.PersistentCacheStats()
	if !ok {
		return "", false
	}
	return fmt.Sprintf("persistent cache: rewrite %d hits / %d misses, benchmark %d hits / %d misses, %d stores (dir %s)",
		st.RewriteHits, st.RewriteMisses, st.BenchmarkHits, st.BenchmarkMisses, st.Stores, e.persistDir), true
}

// WithVerify toggles static verification of every program the engine
// compiles (default off). With verification on, each compiled program is
// proven — without executing it — to read only defined cells, stay inside
// its allocated footprint, compute every declared output, respect the
// policy's per-cell write cap, and carry static per-cell write counts
// that match the allocator's wear accounting exactly; a violation fails
// the run with a structured error. Dead-write warnings (writes nothing
// observes — wasted endurance) are attached to Report.Verify without
// failing. The check is one linear sweep per compile, cheap enough for
// production; it also arms the persistent cache tier's load-time
// re-verification (stale or corrupted-but-CRC-colliding entries read as
// misses instead of serving unverifiable state). The CI/test suites run
// with it on.
func WithVerify(enabled bool) Option {
	return func(e *Engine) { e.verify = enabled }
}

// Verified reports whether the engine statically verifies every compiled
// program.
func (e *Engine) Verified() bool { return e.verify }

// WithCostModel sets the instruction cost model that prices everything the
// engine compiles and executes (default DefaultCostModel). The model is
// pure accounting: it never influences rewriting, node selection or device
// allocation, so two engines differing only in cost model emit
// byte-identical programs — only Report.Cost / ExecResult.Cost change.
// With WithVerify on, static-vs-allocator cost parity is proven for every
// compile; a divergence fails the run. A nil model is invalid — cost
// accounting is always on (it is one integer classify per emitted
// instruction); it cannot be disabled, only re-priced.
func WithCostModel(m *CostModel) Option {
	return func(e *Engine) {
		if m == nil {
			e.fail(fmt.Errorf("plim: WithCostModel(nil): model must be non-nil"))
			return
		}
		if err := m.Validate(); err != nil {
			e.fail(fmt.Errorf("plim: WithCostModel: %w", err))
			return
		}
		e.costModel = m
	}
}

// CostModelName reports the name of the engine's cost model.
func (e *Engine) CostModelName() string { return e.costModel.Name }

// CostModel returns the engine's cost model.
func (e *Engine) CostModel() *CostModel { return e.costModel }

// WithTrace toggles span tracing (default off). With tracing on, every
// engine call records a span tree — one span per scheduler task with
// queue-wait, worker id and steal origin, one per cache probe with its
// outcome (memory-hit / disk-hit / verify-miss / compute), one per executed
// 64-lane chunk with lane occupancy — into an accumulating trace that
// TakeTrace harvests. Calls whose context already carries a trace (server
// flights built with trace.NewContext) keep recording into that per-request
// trace instead. With tracing off the instrumentation is inert: the hot
// paths pay only context lookups and nil checks, no allocations (pinned by
// the plimbench trace/ family).
func WithTrace(enabled bool) Option {
	return func(e *Engine) { e.traceOn = enabled }
}

// Trace is a recorded span tree — see Engine.TakeTrace. It exports Chrome
// trace-event JSON (WriteChrome, loadable in Perfetto or chrome://tracing),
// a human-readable tree (Render/RenderString) and per-stage totals (Totals).
type Trace = trace.Trace

// TraceSpan is one span of a Trace.
type TraceSpan = trace.Span

// TakeTrace returns the spans recorded since the engine was built (or since
// the previous TakeTrace) and resets the accumulator. It returns nil when
// WithTrace is off or nothing traced ran.
func (e *Engine) TakeTrace() *Trace {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	t := e.tr
	e.tr = nil
	return t
}

// traceCtx opens a "call" span for one engine call — see traceSpan.
func (e *Engine) traceCtx(ctx context.Context, call string) (context.Context, trace.Handle) {
	return e.traceSpan(ctx, "call", call)
}

// traceSpan opens a span on whichever trace applies: a trace already
// carried by ctx (a server flight's per-request trace) records the span as
// a child of the caller's current span; otherwise, with WithTrace on, the
// span roots in the engine's own accumulating trace. With neither, ctx is
// returned unchanged with an inert Handle.
func (e *Engine) traceSpan(ctx context.Context, kind, name string) (context.Context, trace.Handle) {
	if trace.FromContext(ctx) == nil {
		if !e.traceOn {
			return ctx, trace.Handle{}
		}
		e.traceMu.Lock()
		if e.tr == nil {
			e.tr = trace.New()
		}
		t := e.tr
		e.traceMu.Unlock()
		ctx = trace.NewContext(ctx, t)
	}
	return trace.Start(ctx, kind, name)
}

// WithProgress installs a progress callback. The engine serializes
// delivery: fn is never invoked concurrently, even during parallel suite
// runs. fn must not block for long — it runs on the worker's critical path.
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.progress = progress.Func(fn) }
}

// observer merges the engine's construction-time callback with the
// per-call observer carried by ctx (see ContextWithProgress), both behind
// the engine's delivery lock: no observer — construction-time or per-call,
// on any concurrent call of the same engine — is ever invoked concurrently
// with another.
func (e *Engine) observer(ctx context.Context) progress.Func {
	perCall := progress.FromContext(ctx)
	if e.progress == nil && perCall == nil {
		return nil
	}
	return func(ev progress.Event) {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.progress != nil {
			e.progress(ev)
		}
		if perCall != nil {
			perCall(ev)
		}
	}
}

// scheduler returns the engine's work-stealing pool, creating it on first
// use. Engines have no Close method, so the pool's workers are stopped by
// a GC cleanup once the engine becomes unreachable (parked workers hold
// only the pool, not the engine, so they never keep the engine alive).
func (e *Engine) scheduler() *sched.Pool {
	e.schedOnce.Do(func() {
		pool := sched.New(e.workers)
		runtime.AddCleanup(e, func(p *sched.Pool) { p.Stop() }, pool)
		e.sched = pool
	})
	return e.sched
}

// SchedStats is a snapshot of the engine scheduler's state: queued-task
// depth, per-worker steal counts and task-latency histograms by kind.
type SchedStats = sched.Stats

// SchedulerStats snapshots the engine's task scheduler (servers export it
// under /metrics). An engine that has not run anything yet reports zeros.
func (e *Engine) SchedulerStats() SchedStats { return e.scheduler().Stats() }

// Effort reports the engine's rewriting cycle budget.
func (e *Engine) Effort() int { return e.effort }

// Workers reports the engine's suite parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// Shrink reports the engine's benchmark datapath divisor.
func (e *Engine) Shrink() int { return e.shrink }

// Cached reports whether the engine memoizes benchmark builds and rewrite
// stages.
func (e *Engine) Cached() bool { return e.cache }

// CacheBudget reports the byte budget of each of the engine's in-memory
// caches.
func (e *Engine) CacheBudget() int { return e.cacheBudget }

// Run rewrites and compiles m under the given configuration. The input MIG
// is not modified; the rewrite stage is served from the engine's cache
// when it has already run for this function. Cancellation is honoured
// between rewrite cycles and before compilation; on cancellation the error
// is ctx.Err().
func (e *Engine) Run(ctx context.Context, m *MIG, cfg Config) (*Report, error) {
	if e.err != nil {
		return nil, e.err
	}
	ctx, csp := e.traceCtx(ctx, "run")
	defer csp.End()
	reps, err := core.RunStaged(ctx, m, []Config{cfg}, core.StagedOptions{
		Effort:    e.effort,
		Sched:     e.scheduler(),
		Cache:     e.rwCache,
		Scratch:   e.scratch,
		Progress:  e.observer(ctx),
		Verify:    e.verify,
		CostModel: e.costModel,
	})
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// RunAll runs several configurations on the same function as a staged
// plan: each distinct rewriting pipeline runs once (memoized) and the
// compile stages fan out across the engine's workers. Reports come back in
// configuration order and are identical to per-configuration Run calls.
func (e *Engine) RunAll(ctx context.Context, m *MIG, cfgs []Config) ([]*Report, error) {
	if e.err != nil {
		return nil, e.err
	}
	ctx, csp := e.traceCtx(ctx, "run-all")
	defer csp.End()
	return core.RunStaged(ctx, m, cfgs, core.StagedOptions{
		Effort:    e.effort,
		Sched:     e.scheduler(),
		Cache:     e.rwCache,
		Scratch:   e.scratch,
		Progress:  e.observer(ctx),
		Verify:    e.verify,
		CostModel: e.costModel,
	})
}

// RunSuite evaluates every configuration on every named benchmark (all 18
// when none are named). Benchmarks run on the engine's worker pool at the
// engine's shrink, each as a staged plan: one rewrite per distinct
// pipeline, compile jobs fanned out over idle workers, benchmark MIGs and
// rewrites served from the engine's caches. Progress events report
// per-benchmark start/done, per-cycle rewriting and per-configuration
// compile start/done. On cancellation RunSuite stops dispatching jobs and
// returns ctx.Err() once in-flight jobs reach their next cancellation
// point.
func (e *Engine) RunSuite(ctx context.Context, cfgs []Config, benchmarks ...string) (*SuiteResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	ctx, csp := e.traceCtx(ctx, "suite")
	defer csp.End()
	return tables.RunSuite(ctx, cfgs, tables.Options{
		Benchmarks:   benchmarks,
		Effort:       e.effort,
		Shrink:       e.shrink,
		Workers:      e.workers,
		Sched:        e.scheduler(),
		Progress:     e.observer(ctx),
		BenchCache:   e.benchCache,
		RewriteCache: e.rwCache,
		Scratch:      e.scratch,
		Verify:       e.verify,
		CostModel:    e.costModel,
	})
}

// Explore sweeps the design space (benchmark × shrink × effort × config ×
// cost model) as one task graph on the engine's scheduler and caches, and
// returns every point with its (benchmark, shrink, model)-local Pareto
// front marked — see core.Explore. Only the sweep axes and Verify are
// taken from opts: the plumbing fields (Workers, Sched, Progress, caches,
// Scratch) are the engine's own. Empty axes default to the engine's
// configuration — its effort, its shrink, its cost model — rather than the
// package-level defaults, so a bare ExploreOptions{} sweeps exactly what
// Run would compile. Verification is on when either opts.Verify or the
// engine's WithVerify is set.
func (e *Engine) Explore(ctx context.Context, opts ExploreOptions) (*ExploreResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	ctx, csp := e.traceCtx(ctx, "explore")
	defer csp.End()
	if len(opts.Efforts) == 0 {
		opts.Efforts = []int{e.effort}
	}
	if len(opts.Shrinks) == 0 {
		opts.Shrinks = []int{e.shrink}
	}
	if len(opts.Models) == 0 {
		opts.Models = []*CostModel{e.costModel}
	}
	opts.Workers = e.workers
	opts.Sched = e.scheduler()
	opts.Progress = e.observer(ctx)
	opts.BenchCache = e.benchCache
	opts.RewriteCache = e.rwCache
	opts.Scratch = e.scratch
	opts.Verify = opts.Verify || e.verify
	return core.Explore(ctx, opts)
}

// Rewrite applies one of the MIG rewriting algorithms with the engine's
// effort, without compiling. RewriteNone merely drops dangling nodes (its
// stats report the node counts with zero cycles). The input MIG is not
// modified, and the returned MIG is always private to the caller (cache
// hits are cloned before they are handed out).
func (e *Engine) Rewrite(ctx context.Context, m *MIG, kind RewriteKind) (*MIG, RewriteStats, error) {
	if e.err != nil {
		return nil, RewriteStats{}, e.err
	}
	ctx, csp := e.traceCtx(ctx, "rewrite")
	defer csp.End()
	out, st, err := e.rwCache.Rewrite(ctx, m, kind, e.effort, e.observer(ctx), "")
	if err != nil {
		return nil, st, err
	}
	if e.rwCache != nil {
		out = out.Clone() // cache entries are shared; hand out a private copy
	} else if out == m {
		// Uncached effort-0 (or RewriteNone on a clean graph) hands the
		// input straight back; the privacy guarantee still holds.
		out = out.Clone()
	}
	return out, st, nil
}

// Benchmark builds one of the paper's benchmarks at the engine's shrink.
// With caching on, repeated builds of the same benchmark clone one cached
// graph instead of regenerating it; the result is always private to the
// caller.
func (e *Engine) Benchmark(name string) (*MIG, error) {
	return e.BenchmarkScaled(name, e.shrink)
}

// BenchmarkScaled builds a benchmark at an explicit shrink, overriding the
// engine's WithShrink setting for this one build. It shares the engine's
// benchmark caches (memory and disk), so servers answering requests at
// mixed shrinks still build each (benchmark, shrink) once. The result is
// always private to the caller.
func (e *Engine) BenchmarkScaled(name string, shrink int) (*MIG, error) {
	return e.BenchmarkScaledContext(context.Background(), name, shrink)
}

// BenchmarkScaledContext is BenchmarkScaled with a context: when ctx
// carries a trace (a server flight) or the engine traces (WithTrace), the
// build records a generate span with the cache probe nested inside, so
// traced requests account for benchmark generation, not just the compile.
func (e *Engine) BenchmarkScaledContext(ctx context.Context, name string, shrink int) (*MIG, error) {
	if e.err != nil {
		return nil, e.err
	}
	if shrink < 1 {
		return nil, fmt.Errorf("plim: BenchmarkScaled(%q, %d): shrink must be ≥ 1", name, shrink)
	}
	ctx, sp := e.traceSpan(ctx, "generate", name)
	defer sp.End()
	if e.benchCache == nil {
		return suite.BuildScaled(name, shrink)
	}
	m, err := e.benchCache.BuildScaledContext(ctx, name, shrink)
	if err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

// MemoryCacheLens reports how many entries the engine's in-memory caches
// currently hold (rewrite results and benchmark builds, including in-flight
// singleflight computations). Both are 0 with WithCache(false). Servers
// export these alongside the persistent tier's CacheCounters.
func (e *Engine) MemoryCacheLens() (rewrites, benchmarks int) {
	if e.rwCache != nil {
		rewrites = e.rwCache.Len()
	}
	if e.benchCache != nil {
		benchmarks = e.benchCache.Len()
	}
	return rewrites, benchmarks
}

// MemoryCacheProbes reports the in-memory tiers' probe counters summed over
// the rewrite and benchmark caches: hits include probes that attached to an
// in-flight singleflight computation. Servers export these as
// plimserve_cache_probe_total{tier="memory"}.
func (e *Engine) MemoryCacheProbes() (hits, misses uint64) {
	rh, rm := e.rwCache.Probes()
	bh, bm := e.benchCache.Probes()
	return rh + bh, rm + bm
}

// plan returns the bit-sliced execution plan for p, memoized by program
// fingerprint when caching is on. Plans are immutable and shared; callers
// must not mutate a Program after executing it through the engine, or a
// later fingerprint-identical call may be served the stale plan.
func (e *Engine) plan(p *Program) (*exec.Plan, error) {
	if e.execPlans == nil {
		return exec.Compile(p)
	}
	fp := p.Fingerprint()
	e.planMu.Lock()
	if ent, ok := e.execPlans.Get(fp); ok {
		pl := ent.Value
		e.planMu.Unlock()
		return pl, nil
	}
	e.planMu.Unlock()
	pl, err := exec.Compile(p)
	if err != nil {
		return nil, err
	}
	e.planMu.Lock()
	if ent, ok := e.execPlans.Get(fp); ok {
		// A concurrent call compiled the same program first; share its plan.
		pl = ent.Value
	} else {
		ent := e.execPlans.Add(fp, pl)
		ent.Evictable = true
		e.execPlans.SetCost(ent, pl.MemSize())
		e.execPlans.EvictExcess(nil)
	}
	e.planMu.Unlock()
	return pl, nil
}

// ExecuteBatch evaluates a compiled program over a bit-sliced batch of
// input vectors, 64 lanes per machine word — the high-throughput
// counterpart of the scalar plim.Execute. The result carries one output
// vector per input vector plus per-cell write and switch counts summed over
// all lanes; each lane models a fresh crossbar, so the aggregate wear is
// exactly what len(batch) scalar Execute calls would accumulate, and an
// endurance budget (ExecOptions.Endurance) faults at exactly the scalar
// interpreter's failing instruction, with the error wrapping
// rram.ErrWornOut.
//
// Cancellation is honoured between 64-lane chunks, and every completed
// chunk emits an EventExecuteChunk to the engine's observers. Compiled
// execution plans are memoized by Program.Fingerprint in a byte-budgeted
// cache, so servers replaying hot programs skip the lowering step.
//
// On multi-worker engines, batches spanning several chunks are split into
// contiguous chunk ranges that run as parallel leaves of one task graph on
// the engine's scheduler; the joined result — outputs, write counts,
// switch counts — is byte-identical to the sequential run (chunk ranges
// touch disjoint output words, and summing per-range switch partials in
// range order reproduces the sequential integer sums exactly). Chunk
// progress events then arrive with monotone done counts but in no
// particular order.
func (e *Engine) ExecuteBatch(ctx context.Context, p *Program, b *Batch, opts ExecOptions) (*ExecResult, error) {
	if e.err != nil {
		return nil, e.err
	}
	ctx, csp := e.traceCtx(ctx, "execute-batch")
	defer csp.End()
	pl, err := e.plan(p)
	if err != nil {
		return nil, err
	}
	if opts.CostModel == nil {
		// Engine runs are always priced; an explicit per-call model (e.g. a
		// design-space sweep re-pricing one program) overrides the engine's.
		opts.CostModel = e.costModel
	}
	obs := e.observer(ctx)
	if obs != nil {
		name, vectors := p.Name, b.Len()
		prev := opts.OnChunk
		opts.OnChunk = func(done, total int) {
			obs.Emit(progress.ExecuteChunk{Program: name, Done: done, Total: total, Vectors: vectors})
			if prev != nil {
				prev(done, total)
			}
		}
	}
	if e.workers > 1 && b.Chunks() > 1 {
		var deadline time.Time
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
		return pl.RunSharded(ctx, b, opts, e.scheduler(), deadline, obs)
	}
	return pl.RunContext(ctx, b, opts)
}

// Execute runs one input vector through the batched execution engine and
// returns the primary outputs. It is a single-lane ExecuteBatch; use
// plim.Execute for the scalar interpreter with crossbar inspection.
func (e *Engine) Execute(ctx context.Context, p *Program, inputs []bool) ([]bool, error) {
	b, err := exec.Pack([][]bool{inputs})
	if err != nil {
		return nil, err
	}
	res, err := e.ExecuteBatch(ctx, p, b, ExecOptions{})
	if err != nil {
		return nil, err
	}
	return res.Outputs.Vector(0), nil
}
