// plimrun executes a compiled PLiM program on the RRAM crossbar simulator.
// It can load binary or assembly programs, drive them with given input
// vectors (inline, from a batch file or randomly generated), verify outputs
// against a reference .mig netlist, and render the wear map of the array.
// Everything runs through the public plim facade; all input vectors of one
// invocation execute as a single bit-sliced batch (64 vectors per machine
// word), so large pattern sets cost a fraction of one-at-a-time runs.
//
// Examples:
//
//	plimc -bench adder -config full -o adder.bin
//	plimrun -in adder.bin -random 4 -wearmap
//	plimrun -in adder.bin -batch vectors.txt
//	printf '0101\n1100\n' | plimrun -in adder.bin -batch -
//	plimrun -in adder.bin -verify adder.mig -patterns 16
//	plimrun -in adder.bin -verify adder -shrink 1 -cache-dir ~/.cache/plim
//
// -verify accepts either a .mig netlist file or the name of one of the
// paper's benchmarks; a benchmark reference is rebuilt at -shrink through
// the persistent cache when -cache-dir (default $PLIM_CACHE_DIR) is set,
// so verification reuses the build an earlier plimc/plimtab run stored.
// When no explicit patterns are given, -verify checks the whole truth
// table for programs of up to 16 inputs and falls back to -patterns random
// vectors beyond that.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plim"
)

func main() {
	var (
		inFile    = flag.String("in", "", "compiled program (.bin or .plim assembly)")
		inputsHex = flag.String("inputs", "", "input bits, LSB-first string of 0/1 (length = #PI)")
		batchFile = flag.String("batch", "", `file of input vectors, one 0/1 string per line ("-" = stdin)`)
		random    = flag.Int("random", 0, "run N random input vectors instead")
		verify    = flag.String("verify", "", "reference to check outputs against: a .mig netlist file or a benchmark name")
		patterns  = flag.Int("patterns", 8, "number of random patterns for -verify (beyond 16 inputs)")
		seed      = flag.Int64("seed", 1, "random seed")
		wearmap   = flag.Bool("wearmap", false, "print the crossbar wear map after the run")
		endurance = flag.Uint64("endurance", 0, "per-device write budget (0 = unlimited)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON trace of the batch execution")
		shrink    = flag.Int("shrink", 1, "datapath divisor when -verify names a benchmark")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory for benchmark rebuilds (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	if *inFile == "" {
		fatal(fmt.Errorf("plimrun: need -in"))
	}
	prog, err := loadProgram(*inFile)
	if err != nil {
		fatal(err)
	}
	npi := len(prog.PICells)
	fmt.Printf("program     %s: %d instructions, %d devices, %d inputs, %d outputs\n",
		prog.Name, prog.NumInstructions(), prog.NumCells, npi, len(prog.POs))

	var ref *plim.MIG
	if *verify != "" {
		ref, err = loadReference(*verify, *shrink, *cacheDir)
		if err != nil {
			fatal(err)
		}
		if ref.NumPIs() != npi || ref.NumPOs() != len(prog.POs) {
			fatal(fmt.Errorf("plimrun: reference shape %d/%d does not match program %d/%d",
				ref.NumPIs(), ref.NumPOs(), npi, len(prog.POs)))
		}
	}

	batch, exhaustive, err := buildBatch(*inputsHex, *batchFile, *random, *patterns, *seed, ref != nil, npi)
	if err != nil {
		fatal(err)
	}
	if batch == nil || batch.Len() == 0 {
		fatal(fmt.Errorf("plimrun: provide -inputs, -batch, -random or -verify"))
	}
	if batch.Lines() != npi {
		fatal(fmt.Errorf("plimrun: input vectors have %d bits, program needs %d", batch.Lines(), npi))
	}

	// Execution goes through an engine so -trace can record per-chunk
	// spans; without -trace this is equivalent to the plain ExecuteBatch
	// free function (the engine stays cold apart from the plan cache).
	eng := plim.NewEngine(plim.WithTrace(*tracePath != ""))
	res, err := eng.ExecuteBatch(context.Background(), prog, batch, plim.ExecOptions{Endurance: *endurance})
	if err != nil {
		fatal(fmt.Errorf("plimrun: %w", err))
	}
	if *tracePath != "" {
		if err := writeTrace(eng, *tracePath); err != nil {
			fatal(err)
		}
	}

	if ref != nil {
		if err := checkBatch(ref, batch, res.Outputs); err != nil {
			fatal(fmt.Errorf("plimrun: %w", err))
		}
		if exhaustive {
			fmt.Printf("verify      OK (exhaustive: all %d input patterns match the reference netlist)\n", batch.Len())
		} else {
			fmt.Printf("verify      OK (%d patterns match the reference netlist)\n", batch.Len())
		}
	} else {
		ins, outs := batch.Strings(), res.Outputs.Strings()
		for i := range ins {
			fmt.Printf("run %d: in=%s out=%s\n", i, ins[i], outs[i])
		}
	}

	// Write counts are data-independent, so the aggregate divides exactly
	// back into the per-execution wear the paper's statistics are about.
	per := make([]uint64, len(res.Writes))
	for z, w := range res.Writes {
		per[z] = w / uint64(res.Vectors)
	}
	s := plim.SummarizeWrites(per)
	fmt.Printf("writes      min=%d max=%d stdev=%.2f (per execution)\n", s.Min, s.Max, s.StdDev)
	if *wearmap {
		fmt.Println("wear map (0-9 relative, '.' = untouched):")
		fmt.Println(plim.WearMap(per))
	}
}

// buildBatch assembles the input vectors of this invocation into one
// bit-sliced batch: the -inputs vector, then the -batch file's vectors, then
// -random random ones. A bare -verify with no other source checks the whole
// truth table up to 16 inputs and falls back to random patterns beyond.
func buildBatch(inputs, batchFile string, random, patterns int, seed int64, verifying bool, npi int) (*plim.Batch, bool, error) {
	var vecs []string
	if inputs != "" {
		vecs = append(vecs, inputs)
	}
	if batchFile != "" {
		fromFile, err := readVectors(batchFile)
		if err != nil {
			return nil, false, err
		}
		vecs = append(vecs, fromFile...)
	}
	n := random
	if verifying && n == 0 && len(vecs) == 0 {
		if npi <= 16 {
			b, err := plim.ExhaustiveBatch(npi)
			return b, true, err
		}
		n = patterns
	}
	if n > 0 {
		vecs = append(vecs, plim.RandomBatch(npi, n, seed).Strings()...)
	}
	if len(vecs) == 0 {
		return nil, false, nil
	}
	b, err := plim.PackBatchStrings(vecs)
	if err != nil {
		return nil, false, fmt.Errorf("plimrun: %w", err)
	}
	return b, false, nil
}

// readVectors loads one 0/1 vector string per line ("-" = stdin).
func readVectors(path string) ([]string, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("plimrun: read vectors: %w", err)
	}
	return strings.Fields(string(data)), nil
}

// loadReference resolves -verify: an existing file is parsed as a .mig
// netlist; otherwise the value must name one of the paper's benchmarks,
// rebuilt at the given shrink through the persistent cache (when set).
func loadReference(ref string, shrink int, cacheDir string) (*plim.MIG, error) {
	if _, statErr := os.Stat(ref); statErr == nil {
		f, err := os.Open(ref)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return plim.ReadMIG(f)
	}
	if _, ok := plim.LookupBenchmark(ref); !ok {
		return nil, fmt.Errorf("plimrun: -verify %q is neither a readable file nor a benchmark name", ref)
	}
	eng := plim.NewEngine(plim.WithShrink(shrink), plim.WithPersistentCache(cacheDir))
	return eng.Benchmark(ref)
}

func loadProgram(path string) (*plim.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".plim") || strings.HasSuffix(path, ".asm") {
		return plim.ReadProgramAsm(f)
	}
	return plim.ReadProgram(f)
}

// checkBatch compares the executor's packed outputs against word-parallel
// reference simulation, one 64-vector chunk at a time.
func checkBatch(ref *plim.MIG, in, out *plim.Batch) error {
	words := make([]uint64, in.Lines())
	for c := 0; c < in.Chunks(); c++ {
		for i := range words {
			words[i] = in.Word(i, c)
		}
		want := ref.Eval(words)
		mask := in.ActiveMask(c)
		for o, w := range want {
			if got := out.Word(o, c); got != w&mask {
				v := firstDiff(got, w&mask, c)
				return fmt.Errorf("run %d: output %d mismatch: crossbar %v, reference %v",
					v, o, out.Get(v, o), w>>(uint(v)%64)&1 == 1)
			}
		}
	}
	return nil
}

// firstDiff locates the lowest differing lane of a chunk as a vector index.
func firstDiff(a, b uint64, chunk int) int {
	d := a ^ b
	i := 0
	for d&1 == 0 {
		d >>= 1
		i++
	}
	return chunk*64 + i
}

// writeTrace exports the engine's recorded trace as Chrome trace-event
// JSON (chrome://tracing, Perfetto).
func writeTrace(eng *plim.Engine, path string) error {
	tr := eng.TakeTrace()
	if tr == nil {
		return fmt.Errorf("plimrun: -trace: no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
