package compile

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"plim/internal/alloc"
	"plim/internal/isa"
	"plim/internal/mig"
)

// allOptions enumerates the interesting option combinations shared by the
// behavioural tests.
func allOptions() []Options {
	return []Options{
		{Selection: NodeOrder, Alloc: alloc.LIFO},
		{Selection: Standard, Alloc: alloc.LIFO},
		{Selection: Standard, Alloc: alloc.MinWrite},
		{Selection: Endurance, Alloc: alloc.MinWrite},
		{Selection: Endurance, Alloc: alloc.MinWrite, MaxWrites: 10},
		{Selection: Endurance, Alloc: alloc.MinWrite, MaxWrites: 4},
		{Selection: Standard, Alloc: alloc.MinWrite, KeepComplementedPOs: true},
		{Selection: Standard, Alloc: alloc.MinWrite, PinPIs: true},
	}
}

// verifyCompiled checks a compiled program against the MIG on explicit
// input assignments: exhaustive for ≤ 10 PIs, 64 random assignments
// otherwise. It also cross-checks the three write-count views (compiler
// allocator, static scan, interpreter).
func verifyCompiled(t *testing.T, m *mig.MIG, res *Result) {
	t.Helper()
	prog := res.Program
	n := m.NumPIs()

	var assigns [][]bool
	if n <= 10 {
		for a := 0; a < 1<<uint(n); a++ {
			in := make([]bool, n)
			for v := 0; v < n; v++ {
				in[v] = a>>v&1 == 1
			}
			assigns = append(assigns, in)
		}
	} else {
		rng := rand.New(rand.NewSource(99))
		for a := 0; a < 64; a++ {
			in := make([]bool, n)
			for v := range in {
				in[v] = rng.Intn(2) == 1
			}
			assigns = append(assigns, in)
		}
	}

	words := make([]uint64, n)
	for _, in := range assigns {
		for v := range words {
			words[v] = 0
			if in[v] {
				words[v] = 1
			}
		}
		want := m.Eval(words)
		got, xbar, err := isa.Execute(prog, in)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		for i := range want {
			if (want[i]&1 == 1) != got[i] {
				t.Fatalf("PO %d mismatch on input %v: got %v, want %v", i, in, got[i], want[i]&1)
			}
		}
		// Static, compiler and measured write counts must agree cell by cell.
		static := prog.StaticWriteCounts()
		measured := xbar.WriteCounts(int(prog.NumCells))
		for cell := range static {
			if static[cell] != measured[cell] {
				t.Fatalf("cell %d: static %d writes, measured %d", cell, static[cell], measured[cell])
			}
			if static[cell] != res.WriteCounts[cell] {
				t.Fatalf("cell %d: static %d writes, compiler recorded %d", cell, static[cell], res.WriteCounts[cell])
			}
		}
	}
}

func fullAdderMIG() *mig.MIG {
	m := mig.New("fa")
	a := m.AddPI("a")
	b := m.AddPI("b")
	cin := m.AddPI("cin")
	carry := m.Maj(a, b, cin)
	sum := m.Xor(m.Xor(a, b), cin)
	m.AddPO(sum, "sum")
	m.AddPO(carry, "carry")
	return m
}

func TestCompileFullAdderAllConfigs(t *testing.T) {
	for _, opts := range allOptions() {
		opts := opts
		name := opts.Selection.String() + "/" + opts.Alloc.String()
		if opts.MaxWrites > 0 {
			name += "/capped"
		}
		t.Run(name, func(t *testing.T) {
			m := fullAdderMIG()
			res, err := Compile(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			verifyCompiled(t, m, res)
		})
	}
}

func TestCompileSingleMajority(t *testing.T) {
	m := mig.New("maj")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	m.AddPO(m.Maj(x, y.Not(), z), "f")
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal node: one complemented fanin, a dying uncomplemented child for
	// the destination → exactly one instruction.
	if res.NumInstructions != 1 {
		t.Fatalf("ideal node took %d instructions, want 1", res.NumInstructions)
	}
	if res.NumRRAMs != 3 {
		t.Fatalf("ideal node used %d devices, want 3 (the PIs)", res.NumRRAMs)
	}
	verifyCompiled(t, m, res)
}

func TestCompileAndGate(t *testing.T) {
	// ⟨a b 0⟩: the constant absorbs the B-slot inversion, so AND is also a
	// single instruction when a child can be overwritten.
	m := mig.New("and")
	a := m.AddPI("a")
	b := m.AddPI("b")
	m.AddPO(m.And(a, b), "f")
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInstructions != 1 {
		t.Fatalf("AND took %d instructions, want 1", res.NumInstructions)
	}
	verifyCompiled(t, m, res)
}

func TestZeroComplementThreeFanoutCostsExtra(t *testing.T) {
	// ⟨a b c⟩ with no complemented edge and no constant requires an inverted
	// copy: 2 extra instructions and 1 extra device (paper §III cost model).
	m := mig.New("plain")
	a := m.AddPI("a")
	b := m.AddPI("b")
	cc := m.AddPI("c")
	m.AddPO(m.Maj(a, b, cc), "f")
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInstructions != 3 {
		t.Fatalf("plain majority took %d instructions, want 3", res.NumInstructions)
	}
	if res.NumRRAMs != 4 {
		t.Fatalf("plain majority used %d devices, want 4", res.NumRRAMs)
	}
	verifyCompiled(t, m, res)
}

func TestBlockedDestinationCostsExtra(t *testing.T) {
	// The Fig. 1 situation: the only dying child is unavailable because all
	// children have other fanouts, so the compiler must copy.
	m := mig.New("blocked")
	a := m.AddPI("a")
	b := m.AddPI("b")
	cc := m.AddPI("c")
	n := m.Maj(a, b.Not(), cc)
	m.AddPO(n, "f")
	m.AddPO(a, "ka")
	m.AddPO(b, "kb")
	m.AddPO(cc, "kc") // every child pinned by a PO
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	// preset+copy+RM3 = 3 instructions, one fresh device beyond the 3 PIs.
	if res.NumInstructions != 3 {
		t.Fatalf("blocked node took %d instructions, want 3", res.NumInstructions)
	}
	if res.NumRRAMs != 4 {
		t.Fatalf("blocked node used %d devices, want 4", res.NumRRAMs)
	}
	verifyCompiled(t, m, res)
}

func TestComplementedPOMaterialization(t *testing.T) {
	m := mig.New("po")
	a := m.AddPI("a")
	b := m.AddPI("b")
	n := m.And(a, b)
	m.AddPO(n.Not(), "nf")
	m.AddPO(n.Not(), "nf2") // shares the materialized inversion
	m.AddPO(n, "f")

	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, m, res)
	if res.Program.POs[0].Neg || res.Program.POs[1].Neg || res.Program.POs[2].Neg {
		t.Fatalf("materialized POs must not be negated reads")
	}
	if res.Program.POs[0].Addr != res.Program.POs[1].Addr {
		t.Fatalf("equal complemented POs must share one device")
	}

	kept, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite, KeepComplementedPOs: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, m, kept)
	if !kept.Program.POs[0].Neg {
		t.Fatalf("KeepComplementedPOs must keep the negated read")
	}
	if kept.NumInstructions >= res.NumInstructions {
		t.Fatalf("keeping complements must save instructions (%d vs %d)", kept.NumInstructions, res.NumInstructions)
	}
}

func TestConstAndPIOutputs(t *testing.T) {
	m := mig.New("po2")
	a := m.AddPI("a")
	b := m.AddPI("b")
	m.AddPO(mig.Const0, "zero")
	m.AddPO(mig.Const1, "one")
	m.AddPO(mig.Const1, "one2") // shared
	m.AddPO(a, "pass")
	m.AddPO(a.Not(), "npass")
	m.AddPO(m.Or(a, b), "or")
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, m, res)
	if res.Program.POs[1].Addr != res.Program.POs[2].Addr {
		t.Fatalf("constant POs must share devices")
	}
}

func TestCapNeverExceeded(t *testing.T) {
	m := buildRandomMIG("capped", 10, 150, 8, 42)
	for _, cap := range []uint64{4, 10, 20} {
		res, err := Compile(m, Options{Selection: Endurance, Alloc: alloc.MinWrite, MaxWrites: cap})
		if err != nil {
			t.Fatal(err)
		}
		for cell, w := range res.WriteCounts {
			if w > cap {
				t.Fatalf("cap %d: cell %d has %d writes", cap, cell, w)
			}
		}
		verifyCompiled(t, m, res)
	}
}

func TestCapTradeoffMonotonic(t *testing.T) {
	// Tighter caps must not reduce devices; looser caps must not increase
	// them (paper Table III trend).
	m := buildRandomMIG("trade", 12, 300, 10, 7)
	var lastR = 1 << 30
	var lastI = 1 << 30
	for _, cap := range []uint64{6, 10, 20, 50, 0} {
		res, err := Compile(m, Options{Selection: Endurance, Alloc: alloc.MinWrite, MaxWrites: cap})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRRAMs > lastR {
			t.Fatalf("cap %d: #R grew from %d to %d as cap loosened", cap, lastR, res.NumRRAMs)
		}
		if res.NumInstructions > lastI+2 { // tiny non-monotonicities can occur via destination choices
			t.Fatalf("cap %d: #I grew from %d to %d as cap loosened", cap, lastI, res.NumInstructions)
		}
		lastR, lastI = res.NumRRAMs, res.NumInstructions
	}
}

func TestRejectsTinyCaps(t *testing.T) {
	m := fullAdderMIG()
	for _, cap := range []uint64{1, 2, 3} {
		if _, err := Compile(m, Options{MaxWrites: cap}); err == nil {
			t.Fatalf("cap %d must be rejected", cap)
		}
	}
}

// TestMinWriteStrategyDoesNotChangeCosts reproduces the paper's observation
// that "the minimum write count strategy does not influence the number of
// required instructions and RRAMs".
func TestMinWriteStrategyDoesNotChangeCosts(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		m := buildRandomMIG("inv", 10, 200, 8, seed)
		lifo, err := Compile(m, Options{Selection: Standard, Alloc: alloc.LIFO})
		if err != nil {
			t.Fatal(err)
		}
		minw, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite})
		if err != nil {
			t.Fatal(err)
		}
		if lifo.NumInstructions != minw.NumInstructions {
			t.Fatalf("seed %d: #I differs: lifo %d vs minwrite %d", seed, lifo.NumInstructions, minw.NumInstructions)
		}
		if lifo.NumRRAMs != minw.NumRRAMs {
			t.Fatalf("seed %d: #R differs: lifo %d vs minwrite %d", seed, lifo.NumRRAMs, minw.NumRRAMs)
		}
	}
}

func TestPinPIsKeepsInputs(t *testing.T) {
	m := fullAdderMIG()
	res, err := Compile(m, Options{Selection: Standard, Alloc: alloc.MinWrite, PinPIs: true})
	if err != nil {
		t.Fatal(err)
	}
	// With pinned PIs, no instruction may target a PI cell.
	piSet := map[uint32]bool{}
	for _, c := range res.Program.PICells {
		piSet[c] = true
	}
	for _, ins := range res.Program.Insts {
		if piSet[ins.Z] {
			t.Fatalf("instruction writes pinned PI cell: %v", ins)
		}
	}
	verifyCompiled(t, m, res)
}

func TestUnusedPIStillGetsCell(t *testing.T) {
	m := mig.New("unused")
	a := m.AddPI("a")
	_ = m.AddPI("ghost")
	m.AddPO(a, "f")
	res, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRRAMs < 2 {
		t.Fatalf("unused PI must still hold a device: #R = %d", res.NumRRAMs)
	}
	verifyCompiled(t, m, res)
}

func TestDuplicateChildNodes(t *testing.T) {
	// RawMaj can produce ⟨x x y⟩; the compiler must handle duplicate child
	// nodes (reads before the in-place write keep this sound).
	m := mig.New("dup")
	x := m.AddPI("x")
	y := m.AddPI("y")
	n := m.RawMaj(x, x, y) // = x, but structurally a node
	m.AddPO(n, "f")
	for _, opts := range allOptions() {
		res, err := Compile(m, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		verifyCompiled(t, m, res)
	}
}

func TestSelectionStrings(t *testing.T) {
	if NodeOrder.String() != "node-order" || Standard.String() != "standard" ||
		Endurance.String() != "endurance" || Selection(9).String() != "?" {
		t.Fatal("Selection.String broken")
	}
}

// buildRandomMIG builds a deterministic random MIG (same generator contract
// as the rewrite tests, duplicated to avoid an internal test-only package).
func buildRandomMIG(name string, pis, nodes, pos int, seed int64) *mig.MIG {
	m := mig.New(name)
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]mig.Signal, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.AddPI(""))
	}
	for len(sigs) < pis+nodes {
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		sigs = append(sigs, m.Maj(pick(), pick(), pick()))
	}
	for i := 0; i < pos; i++ {
		s := sigs[len(sigs)-1-rng.Intn(nodes/2)]
		if rng.Intn(4) == 0 {
			s = s.Not()
		}
		m.AddPO(s, "")
	}
	return m.Cleanup()
}

func TestRandomMIGsAllConfigs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		m := buildRandomMIG("rnd", 8, 80, 6, seed)
		for _, opts := range allOptions() {
			res, err := Compile(m, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			verifyCompiled(t, m, res)
			if res.NumRRAMs < m.NumPIs() {
				t.Fatalf("#R=%d below PI count %d", res.NumRRAMs, m.NumPIs())
			}
		}
	}
}

// TestEnduranceSelectionImprovesBalance checks the headline direction on a
// structured workload: a deep chain with long-lived side values (the Fig. 2
// pattern scaled up) must get a smaller write-count deviation with the full
// endurance configuration than with the naive one.
func TestEnduranceSelectionImprovesBalance(t *testing.T) {
	m := buildRandomMIG("bal", 12, 400, 6, 3)
	naive, err := Compile(m, Options{Selection: NodeOrder, Alloc: alloc.LIFO})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compile(m, Options{Selection: Endurance, Alloc: alloc.MinWrite})
	if err != nil {
		t.Fatal(err)
	}
	if sd(full.WriteCounts) >= sd(naive.WriteCounts) {
		t.Fatalf("endurance config did not improve balance: naive %.3f vs full %.3f",
			sd(naive.WriteCounts), sd(full.WriteCounts))
	}
}

func sd(w []uint64) float64 {
	var mean float64
	for _, x := range w {
		mean += float64(x)
	}
	mean /= float64(len(w))
	var ss float64
	for _, x := range w {
		d := float64(x) - mean
		ss += d * d
	}
	return ss / float64(len(w))
}

// TestCompileAllocsPinned pins the steady-state allocation count of Compile
// under every selection policy. With the scratch pool warm, a compilation
// should only allocate its outputs (Program, instruction/PI/PO copies,
// write counts, Result) plus small fixed overheads — a graph-sized table
// rebuild would blow the budget by orders of magnitude and fail here before
// it shows up in BENCH_plim.json.
func TestCompileAllocsPinned(t *testing.T) {
	m := buildRandomMIG("allocpin", 10, 400, 8, 5)
	cases := []struct {
		name string
		opts Options
	}{
		{"node-order/lifo", Options{Selection: NodeOrder, Alloc: alloc.LIFO}},
		{"standard/minwrite", Options{Selection: Standard, Alloc: alloc.MinWrite}},
		{"endurance/minwrite", Options{Selection: Endurance, Alloc: alloc.MinWrite}},
		{"endurance/capped", Options{Selection: Endurance, Alloc: alloc.MinWrite, MaxWrites: 20}},
	}
	// The budget is deliberately loose (the steady state is ~10, one lower
	// since the LiveNodesInto reverse-sweep change, but -race inflates it
	// past 40): it only needs to catch a regression back to per-node
	// allocation, which costs hundreds on this graph.
	const budget = 48.0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the pool so the measurement sees the steady state.
			if _, err := Compile(m, tc.opts); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(20, func() {
				if _, err := Compile(m, tc.opts); err != nil {
					t.Fatal(err)
				}
			})
			if avg > budget {
				t.Errorf("Compile averages %.1f allocs/run, budget %.0f", avg, budget)
			}
		})
	}
}

// TestScratchReuseParity compiles the same graphs over and over through one
// pool (so every table and the Allocator are reused) and against a nil pool
// (fresh scratch each time): programs, write counts and metrics must be
// byte-identical. This is the reused-allocator == fresh-allocator guarantee
// the scratch pool's Reset contract promises.
func TestScratchReuseParity(t *testing.T) {
	pool := NewScratchPool()
	for seed := int64(1); seed <= 4; seed++ {
		m := buildRandomMIG("parity", 9, 220, 8, seed)
		for _, opts := range allOptions() {
			fresh, err := CompileWith(m, opts, nil)
			if err != nil {
				t.Fatalf("seed %d %+v: %v", seed, opts, err)
			}
			for round := 0; round < 3; round++ {
				pooled, err := CompileWith(m, opts, pool)
				if err != nil {
					t.Fatalf("seed %d %+v round %d: %v", seed, opts, round, err)
				}
				var a, b bytes.Buffer
				if err := fresh.Program.WriteBinary(&a); err != nil {
					t.Fatal(err)
				}
				if err := pooled.Program.WriteBinary(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("seed %d %+v round %d: pooled program differs from fresh", seed, opts, round)
				}
				if !slices.Equal(fresh.WriteCounts, pooled.WriteCounts) {
					t.Fatalf("seed %d %+v round %d: write counts differ", seed, opts, round)
				}
				if fresh.NumInstructions != pooled.NumInstructions || fresh.NumRRAMs != pooled.NumRRAMs {
					t.Fatalf("seed %d %+v round %d: metrics differ", seed, opts, round)
				}
			}
		}
	}
}

// TestResultDoesNotAliasScratch: the Result must stay intact after the
// scratch that built it is reused by another compilation.
func TestResultDoesNotAliasScratch(t *testing.T) {
	pool := NewScratchPool()
	m1 := buildRandomMIG("alias1", 8, 150, 6, 11)
	m2 := buildRandomMIG("alias2", 8, 150, 6, 12)
	opts := Options{Selection: Endurance, Alloc: alloc.MinWrite}
	r1, err := CompileWith(m1, opts, pool)
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := r1.Program.WriteBinary(&before); err != nil {
		t.Fatal(err)
	}
	wcBefore := append([]uint64(nil), r1.WriteCounts...)
	// Reuse the scratch on a different graph, then re-serialize r1.
	if _, err := CompileWith(m2, opts, pool); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := r1.Program.WriteBinary(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Result program mutated by a later compilation reusing the scratch")
	}
	if !slices.Equal(wcBefore, r1.WriteCounts) {
		t.Fatal("Result write counts mutated by a later compilation")
	}
}
