package hdl

import (
	"plim/internal/mig"
)

// Popcount returns the number of set bits of v as a ⌈log2(len+1)⌉-bit
// vector, built as a carry-save full-adder tree.
func (b *Builder) Popcount(v Vec) Vec {
	if len(v) == 0 {
		return Vec{mig.Const0}
	}
	// buckets[w] holds signals of weight 2^w.
	buckets := [][]mig.Signal{append([]mig.Signal(nil), v...)}
	for w := 0; w < len(buckets); w++ {
		for len(buckets[w]) >= 3 {
			n := len(buckets[w])
			a, c, d := buckets[w][n-3], buckets[w][n-2], buckets[w][n-1]
			buckets[w] = buckets[w][:n-3]
			sum, carry := b.FullAdder(a, c, d)
			buckets[w] = append([]mig.Signal{sum}, buckets[w]...)
			if w+1 == len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[w+1] = append(buckets[w+1], carry)
		}
		if len(buckets[w]) == 2 {
			a, c := buckets[w][0], buckets[w][1]
			sum, carry := b.FullAdder(a, c, mig.Const0)
			buckets[w] = []mig.Signal{sum}
			if w+1 == len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[w+1] = append(buckets[w+1], carry)
		}
	}
	out := make(Vec, len(buckets))
	for w := range buckets {
		if len(buckets[w]) == 1 {
			out[w] = buckets[w][0]
		} else {
			out[w] = mig.Const0
		}
	}
	return out
}

// Decoder expands a k-bit selector into 2^k one-hot outputs
// (out[i] = 1 ⟺ sel == i).
func (b *Builder) Decoder(sel Vec) Vec {
	outs := Vec{mig.Const1}
	for j, s := range sel {
		next := make(Vec, len(outs)*2)
		for i, o := range outs {
			next[i] = b.M.And(o, s.Not())
			next[i|1<<uint(j)] = b.M.And(o, s)
		}
		outs = next
	}
	return outs
}

// PriorityEncoder returns the index of the highest set bit of v and a valid
// flag (0 when v is all zeros, in which case the index is 0). The recursive
// construction halves the vector, so depth is logarithmic.
func (b *Builder) PriorityEncoder(v Vec) (idx Vec, valid mig.Signal) {
	// Pad to a power of two.
	n := 1
	for n < len(v) {
		n *= 2
	}
	v = ZeroExt(v, n)
	return b.priorityRec(v)
}

func (b *Builder) priorityRec(v Vec) (Vec, mig.Signal) {
	if len(v) == 1 {
		return Vec{}, v[0]
	}
	half := len(v) / 2
	loIdx, loValid := b.priorityRec(v[:half])
	hiIdx, hiValid := b.priorityRec(v[half:])
	idx := b.MuxV(hiValid, hiIdx, loIdx)
	idx = append(idx, hiValid) // MSB: which half won
	return idx, b.M.Or(hiValid, loValid)
}

// IntToFloat converts an unsigned integer into a compact float with expBits
// exponent bits and manBits mantissa bits (no sign), the format used by the
// int2float benchmark:
//
//	x < 2^manBits         → exponent 0, mantissa x (denormal)
//	otherwise, p = ⌊log2 x⌋ → exponent p-manBits+1,
//	                         mantissa = bits below the leading one
//
// Saturates to all-ones when the exponent overflows. The Go reference model
// lives in the tests.
func (b *Builder) IntToFloat(x Vec, expBits, manBits int) (exp, man Vec) {
	p, valid := b.PriorityEncoder(x)
	// Normalize: shift the leading one to the top bit of a window, then the
	// mantissa is the manBits bits just below it. Shift left by
	// (len(x)-1 - p): with len(x) a power of two that is the bitwise
	// complement of p, but stay general with a barrel shifter on ~p after
	// zero-extending to a power of two.
	n := 1
	for n < len(x) {
		n *= 2
	}
	xx := ZeroExt(x, n)
	pp := ZeroExt(p, log2Ceil(n))
	shift := NotV(pp) // n-1 - p for p in [0, n)
	norm := b.BarrelShl(xx, shift)
	// norm now has the leading one at bit n-1; the mantissa is below it.
	man = make(Vec, manBits)
	for i := 0; i < manBits; i++ {
		man[i] = norm[n-1-manBits+i]
	}
	// Exponent: p - manBits + 1, clamped at 0 (denormal) and saturated at max.
	pw := len(pp)
	pExt := ZeroExt(pp, pw+1)
	diff, borrow := b.Sub(pExt, b.Const(uint64(manBits-1), pw+1))
	denormal := borrow // p < manBits-1
	expRaw := b.MuxV(denormal, b.Const(0, pw+1), diff)

	// Denormal mantissa is x itself (low bits).
	man = b.MuxV(denormal, ZeroExt(x, manBits), man)

	// Saturate when expRaw ≥ 2^expBits.
	var over mig.Signal = mig.Const0
	for i := expBits; i < len(expRaw); i++ {
		over = b.M.Or(over, expRaw[i])
	}
	exp = make(Vec, expBits)
	for i := range exp {
		exp[i] = b.M.Or(expRaw[i], over)
	}
	man = b.MuxV(over, b.Const((1<<uint(manBits))-1, manBits), man)

	// All-zero input: exponent and mantissa zero.
	exp = b.AndBit(exp, valid)
	man = b.AndBit(man, valid)
	return exp, man
}

func log2Ceil(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
