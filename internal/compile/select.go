package compile

import (
	"container/heap"

	"plim/internal/mig"
)

// candidateHeap orders computable nodes by the configured selection policy.
// The "releasing" component of a key is dynamic — sibling computations can
// turn a child into a dying child — so entries carry a snapshot and popBest
// re-validates it lazily: a popped entry whose snapshot is stale is
// re-pushed with its fresh key. Releasing counts only grow while a node
// waits (uses of its children only decrease), so every node is popped a
// bounded number of times.
type candidateHeap struct {
	policy  Selection
	entries []heapEntry
}

type heapEntry struct {
	node      mig.NodeID
	releasing int32
	foLevel   int32
}

func (h *candidateHeap) Len() int { return len(h.entries) }

func (h *candidateHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	switch h.policy {
	case Standard:
		// Max releasing first, then min fanout level, then id.
		if a.releasing != b.releasing {
			return a.releasing > b.releasing
		}
		if a.foLevel != b.foLevel {
			return a.foLevel < b.foLevel
		}
	case Endurance:
		// Min fanout level first (shortest storage duration), then max
		// releasing — paper Algorithm 3.
		if a.foLevel != b.foLevel {
			return a.foLevel < b.foLevel
		}
		if a.releasing != b.releasing {
			return a.releasing > b.releasing
		}
	}
	// NodeOrder and all ties: construction order.
	return a.node < b.node
}

func (h *candidateHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }

func (h *candidateHeap) Push(x interface{}) { h.entries = append(h.entries, x.(heapEntry)) }

func (h *candidateHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// releasingCount returns how many devices computing n would free: distinct
// non-constant children whose remaining uses are exactly n's own uses of
// them (n is their last consumer).
func (c *compiler) releasingCount(n mig.NodeID) int32 {
	ch := c.m.Children(n)
	var cnt int32
	for i, s := range ch {
		cn := s.Node()
		if cn == 0 {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if ch[j].Node() == cn {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		uses := int32(0)
		for _, s2 := range ch {
			if s2.Node() == cn {
				uses++
			}
		}
		if c.remaining[cn] == uses {
			cnt++
		}
	}
	return cnt
}

// push inserts a candidate with a fresh key snapshot.
func (c *compiler) push(n mig.NodeID) {
	heap.Push(&c.heap, heapEntry{
		node:      n,
		releasing: c.releasingCount(n),
		foLevel:   c.foLevel[n],
	})
}

// popBest pops the top candidate, re-validating its dynamic key. It returns
// ok=false when the popped entry was stale and has been re-pushed; callers
// loop until the heap empties or a valid entry appears.
func (c *compiler) popBest() (mig.NodeID, bool) {
	e := heap.Pop(&c.heap).(heapEntry)
	if c.heap.policy != NodeOrder {
		if rel := c.releasingCount(e.node); rel != e.releasing {
			e.releasing = rel
			heap.Push(&c.heap, e)
			return 0, false
		}
	}
	return e.node, true
}
