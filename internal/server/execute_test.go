package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"plim"
)

// referenceProgram compiles a benchmark exactly as the test server does
// (shrink 8, effort 2) so expectations can be computed with the library.
func referenceProgram(t *testing.T, name, config string) (*plim.MIG, *plim.Program) {
	t.Helper()
	eng := plim.NewEngine(plim.WithShrink(8), plim.WithEffort(2))
	m, err := eng.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parseConfig(config, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, rep.Result.Program
}

func TestExecuteEndpointMatchesLibrary(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	m, p := referenceProgram(t, "ctrl", "full")
	batch := plim.RandomBatch(m.NumPIs(), 100, 7)
	want, err := plim.ExecuteBatch(p, batch, plim.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(computeRequest{Benchmark: "ctrl", Config: "full", Vectors: batch.Strings()})
	resp, b := postJSON(t, ts.URL+"/v1/execute", string(body), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("execute: %d %s", resp.StatusCode, b)
	}
	var out executeResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Vectors != 100 || out.Chunks != batch.Chunks() {
		t.Fatalf("dimensions: %+v", out)
	}
	if out.Fingerprint != fmt.Sprintf("%016x", p.Fingerprint()) {
		t.Fatalf("fingerprint %s, want the locally compiled program's", out.Fingerprint)
	}
	wantOut := want.Outputs.Strings()
	if len(out.Outputs) != len(wantOut) {
		t.Fatalf("got %d output vectors, want %d", len(out.Outputs), len(wantOut))
	}
	for i := range wantOut {
		if out.Outputs[i] != wantOut[i] {
			t.Fatalf("output %d: server %q, library %q", i, out.Outputs[i], wantOut[i])
		}
	}
	var writes, switches uint64
	for z, w := range want.Writes {
		writes += w
		switches += want.Switches[z]
	}
	if out.Writes.Total != writes || out.Switches != switches {
		t.Fatalf("wear: server %d/%d, library %d/%d", out.Writes.Total, out.Switches, writes, switches)
	}
}

func TestExecuteWarmRepeatByteIdentical(t *testing.T) {
	_, ts, probe := newTestServer(t, Options{})
	body := `{"benchmark":"ctrl","config":"full","random":128,"seed":3}`
	resp1, b1 := postJSON(t, ts.URL+"/v1/execute", body, nil)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold: %d %s", resp1.StatusCode, b1)
	}
	cold := probe.cycles.Load()
	resp2, b2 := postJSON(t, ts.URL+"/v1/execute", body, nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("warm response differs:\ncold: %s\nwarm: %s", b1, b2)
	}
	if got := probe.cycles.Load(); got != cold {
		t.Fatalf("warm execute re-ran rewriting: %d cycles after cold's %d", got, cold)
	}
}

func TestExecutePackedVectorsRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	m, _ := referenceProgram(t, "ctrl", "full")
	batch := plim.RandomBatch(m.NumPIs(), 70, 11) // 2 chunks, partial last

	asStrings, _ := json.Marshal(computeRequest{Benchmark: "ctrl", Vectors: batch.Strings()})
	respS, bs := postJSON(t, ts.URL+"/v1/execute", string(asStrings), nil)
	asPacked, _ := json.Marshal(computeRequest{Benchmark: "ctrl", VectorsPacked: packVectors(batch), Output: "packed"})
	respP, bp := postJSON(t, ts.URL+"/v1/execute", string(asPacked), nil)
	if respS.StatusCode != 200 || respP.StatusCode != 200 {
		t.Fatalf("status %d / %d: %s %s", respS.StatusCode, respP.StatusCode, bs, bp)
	}
	var outS, outP executeResponse
	if err := json.Unmarshal(bs, &outS); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bp, &outP); err != nil {
		t.Fatal(err)
	}
	if outP.Outputs != nil || outP.OutputsPack == nil {
		t.Fatalf("packed output shape: %+v", outP)
	}
	decoded, err := unpackVectors(outP.OutputsPack)
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.Strings()
	if len(got) != len(outS.Outputs) {
		t.Fatalf("packed run returned %d vectors, strings run %d", len(got), len(outS.Outputs))
	}
	for i := range got {
		if got[i] != outS.Outputs[i] {
			t.Fatalf("vector %d: packed %q, strings %q", i, got[i], outS.Outputs[i])
		}
	}
}

func TestExecuteExhaustive(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	m, _ := referenceProgram(t, "ctrl", "full")
	resp, b := postJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","exhaustive":true}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("execute: %d %s", resp.StatusCode, b)
	}
	var out executeResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Vectors != 1<<m.NumPIs() {
		t.Fatalf("exhaustive over %d inputs returned %d vectors", m.NumPIs(), out.Vectors)
	}
	if len(out.Outputs) != out.Vectors {
		t.Fatalf("outputs %d, vectors %d", len(out.Outputs), out.Vectors)
	}
}

func TestExecuteEnduranceFault(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, b := postJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","random":64,"endurance":1}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("execute: %d %s", resp.StatusCode, b)
	}
	var out executeResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Fault == nil {
		t.Fatalf("endurance 1 did not fault: %s", b)
	}
	if out.Fault.Inst < 0 || !strings.Contains(out.Fault.Error, "worn out") {
		t.Fatalf("fault: %+v", out.Fault)
	}
	if out.Outputs != nil || out.OutputsPack != nil {
		t.Fatal("faulted execution must not report outputs")
	}
	if out.Writes.Total == 0 {
		t.Fatal("faulted execution must still report partial wear")
	}
}

func TestExecuteBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	cases := []struct {
		name, body string
	}{
		{"no vector source", `{"benchmark":"ctrl"}`},
		{"two vector sources", `{"benchmark":"ctrl","random":4,"exhaustive":true}`},
		{"seed without random", `{"benchmark":"ctrl","exhaustive":true,"seed":9}`},
		{"negative random", `{"benchmark":"ctrl","random":-1}`},
		{"oversized random", `{"benchmark":"ctrl","random":1048577}`},
		{"bad vector chars", `{"benchmark":"ctrl","vectors":["01x"]}`},
		{"ragged vectors", `{"benchmark":"ctrl","vectors":["01","011"]}`},
		{"bad packed dims", `{"benchmark":"ctrl","vectors_packed":{"n":70,"lines":2,"words":"AAAAAAAAAAA="}}`},
		{"unknown output", `{"benchmark":"ctrl","random":4,"output":"hex"}`},
		{"no function source", `{"random":4}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/execute", tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("want 400, got %d: %s", resp.StatusCode, body)
			}
		})
	}
	// Vector width mismatches surface from inside the flight as a
	// computation error, not a 400: the PI count is only known post-compile.
	resp, body := postJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","vectors":["0"]}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("width mismatch: want 500, got %d: %s", resp.StatusCode, body)
	}
}

func TestExecuteSSEStreamsChunkProgress(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/execute",
		strings.NewReader(`{"benchmark":"ctrl","random":256,"seed":1}`))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := map[string]int{}
	var resultData []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var current string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events[current]++
		case strings.HasPrefix(line, "data: ") && current == "result":
			resultData = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["execute_chunk"] != 4 { // 256 vectors = 4 chunks
		t.Fatalf("want 4 execute_chunk events, got %v", events)
	}
	if events["result"] != 1 {
		t.Fatalf("want one result event, got %v", events)
	}
	var out executeResponse
	if err := json.Unmarshal(resultData, &out); err != nil {
		t.Fatal(err)
	}
	if out.Vectors != 256 {
		t.Fatalf("streamed result reports %d vectors", out.Vectors)
	}
}

func TestExecuteMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	if resp, b := postJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","random":100}`, nil); resp.StatusCode != 200 {
		t.Fatalf("execute: %d %s", resp.StatusCode, b)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`plimserve_execute_vectors_total 100`,
		`plimserve_execute_chunks_total 2`,
		`plimserve_execute_lane_slots_total 128`,
		`plimserve_requests_total{route="execute",code="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// postNDJSON issues a streamed /v1/execute request: reqLine is the JSON
// request line, vectors follow one per line.
func postNDJSON(t *testing.T, url, reqLine string, vectors []string) (*http.Response, []byte) {
	t.Helper()
	body := reqLine + "\n" + strings.Join(vectors, "\n") + "\n"
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestExecuteNDJSONMatchesJSON: a streamed request answers byte-identically
// to the buffered JSON form with the same vectors — they share one
// coalescing key, so the warm repeat is a flight-cache/engine-cache hit.
func TestExecuteNDJSONMatchesJSON(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	m, _ := referenceProgram(t, "ctrl", "full")
	batch := plim.RandomBatch(m.NumPIs(), 100, 21)
	vectors := batch.Strings()

	jsonBody, _ := json.Marshal(computeRequest{Benchmark: "ctrl", Config: "full", Vectors: vectors})
	respJ, bj := postJSON(t, ts.URL+"/v1/execute", string(jsonBody), nil)
	if respJ.StatusCode != 200 {
		t.Fatalf("json form: %d %s", respJ.StatusCode, bj)
	}
	respN, bn := postNDJSON(t, ts.URL+"/v1/execute", `{"benchmark":"ctrl","config":"full"}`, vectors)
	if respN.StatusCode != 200 {
		t.Fatalf("ndjson form: %d %s", respN.StatusCode, bn)
	}
	if !bytes.Equal(bj, bn) {
		t.Fatalf("streamed response differs from buffered:\njson:   %s\nndjson: %s", bj, bn)
	}
}

func TestExecuteNDJSONBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	cases := []struct {
		name, reqLine string
		vectors       []string
	}{
		{"vector source in request line", `{"benchmark":"ctrl","random":4}`, []string{"0101010"}},
		{"exhaustive in request line", `{"benchmark":"ctrl","exhaustive":true}`, []string{"0101010"}},
		{"no vectors", `{"benchmark":"ctrl"}`, nil},
		{"bad vector chars", `{"benchmark":"ctrl"}`, []string{"01x"}},
		{"ragged vectors", `{"benchmark":"ctrl"}`, []string{"01", "011"}},
		{"bad request line", `{"benchmark"`, []string{"01"}},
		{"unknown field", `{"benchmark":"ctrl","frobnicate":1}`, []string{"01"}},
		{"unknown output", `{"benchmark":"ctrl","output":"hex"}`, []string{"01"}},
		{"no function source", `{}`, []string{"01"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postNDJSON(t, ts.URL+"/v1/execute", tc.reqLine, tc.vectors)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("want 400, got %d: %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON: %s", body)
			}
		})
	}
}

// TestExecuteConcurrentBatches hammers one shared engine with parallel
// /v1/execute requests — distinct batches, configs and endurance budgets
// interleaved with identical (coalescable) requests. Run under -race this
// pins down the thread safety of the plan cache and the executor.
func TestExecuteConcurrentBatches(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Concurrency: 4})
	configs := []string{"naive", "full"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"benchmark":"ctrl","config":%q,"random":128,"seed":%d,"endurance":%d}`,
				configs[i%len(configs)], i%4, 1000000*uint64(i%2))
			req, err := http.NewRequest("POST", ts.URL+"/v1/execute", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("request %d: %d %s", i, resp.StatusCode, b)
				return
			}
			var out executeResponse
			if err := json.Unmarshal(b, &out); err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			if out.Vectors != 128 {
				errs <- fmt.Errorf("request %d: %d vectors", i, out.Vectors)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
