// Package suite provides the 18 benchmark functions of the paper's
// evaluation (§IV). The originals are the EPFL combinational benchmarks
// (http://lsi.epfl.ch/benchmarks), which cannot be fetched in an offline
// reproduction, so this package regenerates them:
//
//   - The arithmetic circuits are real functional implementations built
//     with internal/hdl at the paper's exact PI/PO counts (adder, bar, div,
//     log2, max, multiplier, sin, sqrt, square) plus the structural control
//     circuits that have a crisp specification (dec, int2float, priority,
//     voter).
//   - The five "random/control" circuits without a public specification
//     (cavlc, ctrl, i2c, mem_ctrl, router) are deterministic seeded random
//     MIGs with the paper's PI/PO counts and EPFL-comparable sizes.
//
// DESIGN.md discusses why this substitution preserves the paper's
// experimental trends. Every generator is deterministic: Build(name) always
// returns a structurally identical graph.
package suite

import (
	"fmt"
	"math/rand"
	"sort"

	"plim/internal/hdl"
	"plim/internal/mig"
)

// Info describes one benchmark at paper scale.
type Info struct {
	Name string
	PI   int // paper's primary input count
	PO   int // paper's primary output count
	// Synthetic marks the seeded random substitutes for EPFL circuits
	// without a public functional specification.
	Synthetic bool
}

type entry struct {
	info  Info
	build func(shrink int) *mig.MIG
}

// registry in the paper's Table I row order.
var registry = []entry{
	{Info{"adder", 256, 129, false}, buildAdder},
	{Info{"bar", 135, 128, false}, buildBar},
	{Info{"div", 128, 128, false}, buildDiv},
	{Info{"log2", 32, 32, false}, buildLog2},
	{Info{"max", 512, 130, false}, buildMax},
	{Info{"multiplier", 128, 128, false}, buildMultiplier},
	{Info{"sin", 24, 25, false}, buildSin},
	{Info{"sqrt", 128, 64, false}, buildSqrt},
	{Info{"square", 64, 128, false}, buildSquare},
	{Info{"cavlc", 10, 11, true}, buildCavlc},
	{Info{"ctrl", 7, 26, true}, buildCtrl},
	{Info{"dec", 8, 256, false}, buildDec},
	{Info{"i2c", 147, 142, true}, buildI2C},
	{Info{"int2float", 11, 7, false}, buildInt2Float},
	{Info{"mem_ctrl", 1204, 1231, true}, buildMemCtrl},
	{Info{"priority", 128, 8, false}, buildPriority},
	{Info{"router", 60, 30, true}, buildRouter},
	{Info{"voter", 1001, 1, false}, buildVoter},
}

// Names returns the benchmark names in the paper's table order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.info.Name
	}
	return out
}

// Get returns the paper-scale metadata for a benchmark.
func Get(name string) (Info, bool) {
	for _, e := range registry {
		if e.info.Name == name {
			return e.info, true
		}
	}
	return Info{}, false
}

// Build constructs a benchmark at paper scale.
func Build(name string) (*mig.MIG, error) { return BuildScaled(name, 1) }

// BuildScaled constructs a benchmark with datapath widths divided by shrink
// (minimum widths apply), for fast tests and benchmarks. shrink = 1 is
// paper scale; PI/PO counts only match Info at shrink 1.
func BuildScaled(name string, shrink int) (*mig.MIG, error) {
	if shrink < 1 {
		return nil, fmt.Errorf("suite: shrink must be ≥ 1")
	}
	for _, e := range registry {
		if e.info.Name == name {
			m := e.build(shrink)
			m.Name = name
			// Word-level construction leaves dangling helper nodes (unused
			// remainders, comparator internals); ship the live subgraph.
			m = m.Cleanup()
			if err := m.Validate(); err != nil {
				return nil, fmt.Errorf("suite: %s: %w", name, err)
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown benchmark %q (have %v)", name, Names())
}

func scaled(full, shrink, min int) int {
	w := full / shrink
	if w < min {
		w = min
	}
	return w
}

func buildAdder(shrink int) *mig.MIG {
	w := scaled(128, shrink, 4)
	b := hdl.NewNetlist("adder")
	x := b.Input("a", w)
	y := b.Input("b", w)
	sum, cout := b.Add(x, y, mig.Const0)
	b.Output("s", append(append(hdl.Vec{}, sum...), cout))
	return b.M
}

func buildBar(shrink int) *mig.MIG {
	w := scaled(128, shrink, 8) // power of two for rotation
	sh := 0
	for 1<<uint(sh) < w {
		sh++
	}
	b := hdl.NewNetlist("bar")
	data := b.Input("d", w)
	amount := b.Input("sh", sh)
	b.Output("o", b.BarrelRotl(data, amount))
	return b.M
}

func buildDiv(shrink int) *mig.MIG {
	w := scaled(64, shrink, 4)
	b := hdl.NewNetlist("div")
	num := b.Input("n", w)
	den := b.Input("d", w)
	q, r := b.DivRem(num, den)
	b.Output("q", q)
	b.Output("r", r)
	return b.M
}

func buildLog2(shrink int) *mig.MIG {
	w := scaled(32, shrink, 8)
	b := hdl.NewNetlist("log2")
	x := b.Input("x", w)
	intBits := 0
	for 1<<uint(intBits) < w {
		intBits++
	}
	ip, fp := b.Log2(x, w-intBits)
	b.Output("f", fp)
	b.Output("i", ip)
	return b.M
}

func buildMax(shrink int) *mig.MIG {
	w := scaled(128, shrink, 4)
	b := hdl.NewNetlist("max")
	var ins [4]hdl.Vec
	for i := range ins {
		ins[i] = b.Input(fmt.Sprintf("x%d", i), w)
	}
	m01, f01 := b.MaxU(ins[0], ins[1])
	m23, f23 := b.MaxU(ins[2], ins[3])
	m, fHi := b.MaxU(m01, m23)
	idxLo := b.M.Mux(fHi, f23, f01)
	b.Output("m", m)
	b.Output("idx", hdl.Vec{idxLo, fHi})
	return b.M
}

func buildMultiplier(shrink int) *mig.MIG {
	w := scaled(64, shrink, 4)
	b := hdl.NewNetlist("multiplier")
	x := b.Input("a", w)
	y := b.Input("b", w)
	b.Output("p", b.Mul(x, y))
	return b.M
}

func buildSin(shrink int) *mig.MIG {
	w := scaled(24, shrink, 8)
	b := hdl.NewNetlist("sin")
	angle := b.Input("theta", w)
	iters := w - 4
	if iters < 8 {
		iters = 8
	}
	b.Output("s", b.Sin(angle, iters))
	return b.M
}

func buildSqrt(shrink int) *mig.MIG {
	w := scaled(128, shrink, 4)
	if w%2 == 1 {
		w++
	}
	b := hdl.NewNetlist("sqrt")
	x := b.Input("x", w)
	b.Output("r", b.Sqrt(x))
	return b.M
}

func buildSquare(shrink int) *mig.MIG {
	w := scaled(64, shrink, 4)
	b := hdl.NewNetlist("square")
	x := b.Input("x", w)
	b.Output("p", b.Square(x))
	return b.M
}

func buildDec(shrink int) *mig.MIG {
	w := scaled(8, shrink, 3)
	b := hdl.NewNetlist("dec")
	sel := b.Input("s", w)
	b.Output("o", b.Decoder(sel))
	return b.M
}

func buildInt2Float(shrink int) *mig.MIG {
	// Small already; shrink has no effect.
	b := hdl.NewNetlist("int2float")
	x := b.Input("x", 11)
	exp, man := b.IntToFloat(x, 4, 3)
	b.Output("m", man)
	b.Output("e", exp)
	return b.M
}

func buildPriority(shrink int) *mig.MIG {
	w := scaled(128, shrink, 8)
	b := hdl.NewNetlist("priority")
	x := b.Input("r", w)
	idx, valid := b.PriorityEncoder(x)
	b.Output("i", idx)
	b.OutputBit("v", valid)
	return b.M
}

func buildVoter(shrink int) *mig.MIG {
	n := scaled(1001, shrink, 15)
	if n%2 == 0 {
		n++ // odd electorate, clean majority threshold
	}
	b := hdl.NewNetlist("voter")
	votes := b.Input("v", n)
	count := b.Popcount(votes)
	threshold := b.Const(uint64(n/2+1), len(count))
	b.OutputBit("maj", b.GeU(count, threshold))
	return b.M
}

// Seeded random control networks. Node-count targets are of the same order
// as the EPFL originals' gate counts.

func buildCavlc(shrink int) *mig.MIG {
	return randomControl("cavlc", 10, 11, scaledNodes(690, shrink), 0xCA41C)
}

func buildCtrl(shrink int) *mig.MIG {
	return randomControl("ctrl", 7, 26, scaledNodes(170, shrink), 0xC124)
}

func buildI2C(shrink int) *mig.MIG {
	return randomControl("i2c", 147, 142, scaledNodes(1340, shrink), 0x12C)
}

func buildMemCtrl(shrink int) *mig.MIG {
	return randomControl("mem_ctrl", 1204, 1231, scaledNodes(30000, shrink), 0x3E3C)
}

func buildRouter(shrink int) *mig.MIG {
	return randomControl("router", 60, 30, scaledNodes(260, shrink), 0x40_73)
}

func scaledNodes(full, shrink int) int {
	n := full / (shrink * shrink)
	if n < 40 {
		n = 40
	}
	return n
}

// randomControl generates a deterministic random MIG with exactly pis
// inputs and pos outputs and roughly targetNodes live majority nodes. The
// generator mimics control logic: mostly local fanin (recent signals) with
// occasional long-range edges — the level-diverse fanout structure behind
// the paper's "blocked RRAM" effect — and guarantees every input is used
// and every node stays live (sinks are merged and exported as outputs).
func randomControl(name string, pis, pos, targetNodes int, seed int64) *mig.MIG {
	rng := rand.New(rand.NewSource(seed))
	m := mig.New(name)

	sigs := make([]mig.Signal, 0, pis+targetNodes+pos)
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.AddPI(fmt.Sprintf("x%d", i)))
	}
	unusedPIs := make([]mig.Signal, len(sigs))
	copy(unusedPIs, sigs)

	const window = 48
	pick := func() mig.Signal {
		var s mig.Signal
		if rng.Intn(10) < 7 && len(sigs) > window {
			s = sigs[len(sigs)-1-rng.Intn(window)] // local edge
		} else {
			s = sigs[rng.Intn(len(sigs))] // long-range edge
		}
		if rng.Intn(3) == 0 {
			s = s.Not()
		}
		return s
	}

	for m.NumMaj() < targetNodes {
		a := pick()
		// Feed unused inputs in early so every PI is structurally used.
		if len(unusedPIs) > 0 {
			a = unusedPIs[0]
			unusedPIs = unusedPIs[1:]
			if rng.Intn(3) == 0 {
				a = a.Not()
			}
		}
		before := m.NumMaj()
		// Control netlists (the EPFL originals are AIG-derived) are
		// dominated by two-input gates; a minority of native majorities
		// keeps the structure MIG-flavoured.
		var s mig.Signal
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			s = m.And(a, pick())
		case 4, 5, 6:
			s = m.Or(a, pick())
		case 7:
			s = m.Maj(a, pick(), pick())
		default:
			s = m.Mux(pick(), a, pick())
		}
		if m.NumMaj() > before {
			sigs = append(sigs, s)
		} else if len(unusedPIs) == 0 {
			continue // folded or deduped; retry
		} else {
			// The unused PI folded away; put it back and retry with
			// different partners.
			unusedPIs = append([]mig.Signal{a}, unusedPIs...)
		}
	}

	// Merge sinks (fanout-0 nodes) until they fit the output count, then
	// export them; pad with random internal taps.
	sinks := sinkNodes(m)
	for len(sinks) > pos {
		a := sinks[len(sinks)-1]
		b := sinks[len(sinks)-2]
		sinks = sinks[:len(sinks)-2]
		var c mig.Signal
		if len(sinks) > 0 {
			c = mig.MakeSignal(sinks[rng.Intn(len(sinks))], false).Not()
		} else {
			c = pick()
		}
		s := m.Maj(mig.MakeSignal(a, false), mig.MakeSignal(b, rng.Intn(2) == 0), c)
		if !s.IsConst() && m.IsMaj(s.Node()) {
			sinks = append(sinks, s.Node())
			sinks = dedupe(sinks)
			sinks = onlySinks(m, sinks)
		}
	}
	for _, n := range sinks {
		comp := rng.Intn(4) == 0
		m.AddPO(mig.MakeSignal(n, comp), fmt.Sprintf("y%d", m.NumPOs()))
	}
	for m.NumPOs() < pos {
		s := sigs[len(sigs)-1-rng.Intn(min(len(sigs)-1, targetNodes/2+1))]
		if rng.Intn(4) == 0 {
			s = s.Not()
		}
		m.AddPO(s, fmt.Sprintf("y%d", m.NumPOs()))
	}
	return m.Cleanup()
}

func sinkNodes(m *mig.MIG) []mig.NodeID {
	fo := m.FanoutCounts()
	var sinks []mig.NodeID
	m.ForEachMaj(func(n mig.NodeID, _ [3]mig.Signal) {
		if fo[n] == 0 {
			sinks = append(sinks, n)
		}
	})
	return sinks
}

func dedupe(ns []mig.NodeID) []mig.NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || n != ns[i-1] {
			out = append(out, n)
		}
	}
	return out
}

func onlySinks(m *mig.MIG, ns []mig.NodeID) []mig.NodeID {
	fo := m.FanoutCounts()
	out := ns[:0]
	for _, n := range ns {
		if fo[n] == 0 {
			out = append(out, n)
		}
	}
	return out
}
