// Package rewrite implements the MIG Boolean-algebra rewriting passes used
// by the PLiM compiler (Soeken et al., DAC 2016, "Algorithm 1") and the
// endurance-aware variant proposed by Shirinzadeh et al. (DATE 2017,
// "Algorithm 2").
//
// All passes are implemented as deterministic topological reconstructions:
// the source MIG is swept in topological order, every live node is re-created
// in a fresh MIG through the structural-hashing constructor (which applies
// the trivial majority rules Ω.M eagerly), and individual passes additionally
// apply one axiom where it is locally profitable. Reconstruction guarantees
// termination and keeps graphs canonical between passes.
//
// Implemented axioms (naming follows the paper):
//
//	Ω.M            trivial majority rules (applied by every pass)
//	Ω.D  (R→L)     ⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩
//	Ω.A            ⟨x u ⟨y u z⟩⟩ → ⟨z u ⟨y u x⟩⟩ (profit-guided)
//	Ψ.C            ⟨x u ⟨y ū z⟩⟩ → ⟨x u ⟨y x z⟩⟩ (profit-guided)
//	Ω.I  (R→L 1–3) nodes with ≥2 complemented fanins → complemented node
//	               with ≤1 complemented fanins
//	Ω.I  (R→L)     nodes with 3 complemented fanins → complemented plain node
//
// Note on the paper text: the DATE 2017 PDF renders Ψ.C with a garbled
// overline (⟨y x̄ z⟩ instead of ⟨y ū z⟩). The version implemented here is the
// sound identity from Amarù et al. (DAC 2014): for every assignment either
// u = x (then both outer majorities collapse to x) or u = x̄ (then the outer
// majority selects its third input, which is the same on both sides). The
// rewrite tests prove all axioms over 8-row truth tables.
package rewrite

import (
	"context"

	"plim/internal/mig"
)

// Pass identifies a single rewriting pass in a pipeline.
type Pass uint8

// The individual passes. Their order inside a pipeline is the algorithm.
const (
	PassM     Pass = iota // Ω.M + Ω.D R→L is split: PassM is Ω.M only
	PassDRL               // Ω.D right-to-left
	PassA                 // Ω.A associativity (profit-guided)
	PassPsiC              // Ψ.C complementary associativity (profit-guided)
	PassIRL13             // Ω.I R→L rules (1)–(3): normalize to ≤1 complemented fanins
	PassIRL               // Ω.I R→L rule (1) only: eliminate 3-complemented nodes
)

// String names a pass like the paper does.
func (p Pass) String() string {
	switch p {
	case PassM:
		return "Ω.M"
	case PassDRL:
		return "Ω.D(R→L)"
	case PassA:
		return "Ω.A"
	case PassPsiC:
		return "Ψ.C"
	case PassIRL13:
		return "Ω.I(R→L,1–3)"
	case PassIRL:
		return "Ω.I(R→L)"
	}
	return "?"
}

// Algorithm1 is the MIG rewriting schedule of the baseline PLiM compiler
// (paper Algorithm 1): node minimization followed by inverter propagation.
var Algorithm1 = []Pass{
	PassM, PassDRL,
	PassA, PassPsiC,
	PassM, PassDRL,
	PassIRL13,
	PassIRL,
}

// Algorithm2 is the endurance-aware rewriting schedule (paper Algorithm 2):
// Ψ.C is removed (it destroys ideal single-complement nodes) and Ω.A is
// sandwiched between inverter-propagation passes.
var Algorithm2 = []Pass{
	PassM, PassDRL,
	PassIRL13, PassIRL,
	PassA,
	PassIRL13, PassIRL,
	PassM, PassDRL,
	PassIRL,
}

// Stats reports the effect of a rewriting run.
type Stats struct {
	Cycles         int // cycles actually executed (early exit on fixpoint)
	NodesBefore    int
	NodesAfter     int
	DepthBefore    int32
	DepthAfter     int32
	CompHistBefore [4]int
	CompHistAfter  [4]int
}

// Run applies the pipeline for up to effort cycles (the paper uses
// effort = 5) and returns the rewritten MIG together with statistics. The
// input MIG is not modified. Rewriting stops early when a full cycle reaches
// a fixpoint. Run cannot be cancelled; use RunContext for that.
func Run(m *mig.MIG, pipeline []Pass, effort int) (*mig.MIG, Stats) {
	out, st, _ := RunContext(context.Background(), m, pipeline, effort, nil)
	return out, st
}

// RunContext is Run with cooperative cancellation and per-cycle progress.
// Cancellation is checked between cycles (one cycle is the atomic unit of
// work); on cancellation the MIG result is nil and the error is ctx.Err().
// After every completed cycle onCycle (if non-nil) receives the 1-based
// cycle index and the current majority-node count.
//
// Internally the per-cycle pass loop runs over a pair of per-call arena
// MIGs (see scratch), so a whole rewriting run performs O(1) graph
// allocations regardless of effort; ownership of the final arena passes to
// the caller. When no cycle changes anything the input m itself is
// returned — callers needing a private copy must clone on that path.
func RunContext(ctx context.Context, m *mig.MIG, pipeline []Pass, effort int, onCycle func(cycle, nodes int)) (*mig.MIG, Stats, error) {
	st := Stats{
		NodesBefore:    m.Statistics().MajNodes,
		CompHistBefore: m.ComplementHistogram(),
	}
	_, st.DepthBefore = m.Levels()
	cur := m
	sc := &scratch{}
	for cycle := 0; cycle < effort; cycle++ {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		before := fingerprint(cur)
		for _, p := range pipeline {
			cur = applyPass(sc, cur, p)
		}
		cur = cleanupPass(sc, cur)
		st.Cycles = cycle + 1
		if onCycle != nil {
			onCycle(st.Cycles, cur.NumMaj())
		}
		if fingerprint(cur) == before {
			break
		}
	}
	// cur is either the caller's input (zero productive cycles) or one of
	// sc's two arenas. The scratch is private to this call and dies with it,
	// so the arena transfers ownership to the caller directly — cloning it
	// here would only duplicate the result to throw one copy away. Callers
	// that must not alias the input (core.RewriteCache) already clone on the
	// cur == m path themselves.
	st.NodesAfter = cur.Statistics().MajNodes
	st.CompHistAfter = cur.ComplementHistogram()
	_, st.DepthAfter = cur.Levels()
	return cur, st, nil
}

// fingerprint summarizes a graph cheaply; equal fingerprints across a cycle
// mean the cycle was an (extremely likely) fixpoint. Node count, PO signals
// and complement histogram change whenever any pass changes anything
// structurally relevant to compilation.
func fingerprint(m *mig.MIG) [8]int {
	h := m.ComplementHistogram()
	fp := [8]int{m.NumMaj(), m.NumPOs(), h[0], h[1], h[2], h[3]}
	for i := 0; i < m.NumPOs(); i++ {
		fp[6] = fp[6]*31 + int(m.PO(i))
	}
	_, d := m.Levels()
	fp[7] = int(d)
	return fp
}

func applyPass(sc *scratch, m *mig.MIG, p Pass) *mig.MIG {
	switch p {
	case PassM:
		return passMajority(sc, m)
	case PassDRL:
		return passDistributivityRL(sc, m)
	case PassA:
		return passAssociativity(sc, m)
	case PassPsiC:
		return passPsiC(sc, m)
	case PassIRL13:
		return passInverters(sc, m, true)
	case PassIRL:
		return passInverters(sc, m, false)
	}
	panic("rewrite: unknown pass")
}

// scratch is the reusable state of a rewriting run: two arena MIGs the
// per-cycle pass loop ping-pongs between (each pass reads one and rebuilds
// into the other, Reset in place) plus the translation/liveness/fanout
// buffers every sweep needs. A nil *scratch makes each pass allocate
// fresh state, which is what the single-pass axiom tests use.
type scratch struct {
	arenas [2]*mig.MIG
	xl8    []mig.Signal
	live   []bool
	fanout []int32
}

// nextArena returns an empty arena distinct from src, creating it on first
// use. src is at most one of the two arenas, so one is always free.
func (sc *scratch) nextArena(src *mig.MIG) *mig.MIG {
	for i := range sc.arenas {
		if sc.arenas[i] == src {
			continue
		}
		if sc.arenas[i] == nil {
			sc.arenas[i] = mig.NewSized(src.Name, src.NumNodes())
		} else {
			sc.arenas[i].Reset(src.Name)
		}
		return sc.arenas[i]
	}
	panic("rewrite: both arenas alias the source")
}

// rebuild holds the state of one reconstruction sweep.
type rebuild struct {
	src    *mig.MIG
	dst    *mig.MIG
	xl8    []mig.Signal // src node -> dst signal for the uncomplemented node
	live   []bool
	fanout []int32
}

func newRebuild(src *mig.MIG, sc *scratch) *rebuild {
	n := src.NumNodes()
	r := &rebuild{src: src}
	if sc == nil {
		r.dst = mig.NewSized(src.Name, n)
		r.xl8 = make([]mig.Signal, n)
		r.live = src.LiveNodes()
		r.fanout = make([]int32, n)
	} else {
		r.dst = sc.nextArena(src)
		if cap(sc.xl8) < n {
			sc.xl8 = make([]mig.Signal, n)
		}
		r.xl8 = sc.xl8[:n]
		clear(r.xl8)
		sc.live = src.LiveNodesInto(sc.live)
		r.live = sc.live
		if cap(sc.fanout) < n {
			sc.fanout = make([]int32, n)
		}
		r.fanout = sc.fanout[:n]
		clear(r.fanout)
	}
	// Fanout restricted to live parents: passes may leave dangling nodes
	// behind, and a dangling parent must not block a single-fanout guard.
	src.ForEachMaj(func(n mig.NodeID, c [3]mig.Signal) {
		if !r.live[n] {
			return
		}
		for _, ch := range c {
			r.fanout[ch.Node()]++
		}
	})
	for i := 0; i < src.NumPOs(); i++ {
		r.fanout[src.PO(i).Node()]++
	}
	for i := 0; i < src.NumPIs(); i++ {
		r.xl8[src.PINode(i)] = r.dst.AddPI(src.PIName(i))
	}
	return r
}

// get maps a source signal into the destination graph.
func (r *rebuild) get(s mig.Signal) mig.Signal {
	return r.xl8[s.Node()].NotIf(s.Complemented())
}

// finish copies the POs and returns the rebuilt graph.
func (r *rebuild) finish() *mig.MIG {
	for i := 0; i < r.src.NumPOs(); i++ {
		r.dst.AddPO(r.get(r.src.PO(i)), r.src.POName(i))
	}
	return r.dst
}

// sweep runs fn over every live majority node in topological order; fn must
// return the destination signal for the node.
func (r *rebuild) sweep(fn func(n mig.NodeID, c [3]mig.Signal) mig.Signal) *mig.MIG {
	r.src.ForEachMaj(func(n mig.NodeID, c [3]mig.Signal) {
		if !r.live[n] {
			return
		}
		r.xl8[n] = fn(n, c)
	})
	return r.finish()
}

// cleanupPass is mig.Cleanup as an arena sweep: dangling nodes are dropped
// and ids renumbered, but the surviving structure is preserved exactly
// (RawMaj, no folding), matching Cleanup's semantics without allocating a
// fresh graph per cycle.
func cleanupPass(sc *scratch, m *mig.MIG) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(_ mig.NodeID, c [3]mig.Signal) mig.Signal {
		return r.dst.RawMaj(r.get(c[0]), r.get(c[1]), r.get(c[2]))
	})
}

// passMajority rebuilds the graph through the hashing constructor, which
// applies Ω.M everywhere (including opportunities opened by earlier folds).
func passMajority(sc *scratch, m *mig.MIG) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(_ mig.NodeID, c [3]mig.Signal) mig.Signal {
		return r.dst.Maj(r.get(c[0]), r.get(c[1]), r.get(c[2]))
	})
}

// effChildren returns the effective child signals of a majority node seen
// through an edge with polarity comp: by self-duality,
// ⟨x y z⟩' = ⟨x̄ ȳ z̄⟩, so a complemented edge complements every child.
func effChildren(c [3]mig.Signal, comp bool) [3]mig.Signal {
	if !comp {
		return c
	}
	return [3]mig.Signal{c[0].Not(), c[1].Not(), c[2].Not()}
}

// passDistributivityRL applies Ω.D right-to-left:
// ⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩, saving one node whenever the two
// inner nodes have no other fanout. Polarities are handled through
// self-duality, so e.g. ⟨⟨x y u⟩' ⟨x̄ ȳ v⟩ z⟩ also matches with {x̄, ȳ}.
func passDistributivityRL(sc *scratch, m *mig.MIG) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(n mig.NodeID, c [3]mig.Signal) mig.Signal {
		// Try each pair of children as the two products.
		for ia := 0; ia < 3; ia++ {
			for ib := ia + 1; ib < 3; ib++ {
				a, b := c[ia], c[ib]
				if !m.IsMaj(a.Node()) || !m.IsMaj(b.Node()) {
					continue
				}
				// Only rewrite when the products die afterwards; otherwise
				// the rewrite adds a node instead of removing one.
				if r.fanout[a.Node()] != 1 || r.fanout[b.Node()] != 1 {
					continue
				}
				ea := effChildren(m.Children(a.Node()), a.Complemented())
				eb := effChildren(m.Children(b.Node()), b.Complemented())
				shared, restA, restB, ok := sharedPair(ea, eb)
				if !ok {
					continue
				}
				z := c[3-ia-ib] // the remaining child index
				inner := r.dst.Maj(r.get(restA), r.get(restB), r.get(z))
				return r.dst.Maj(r.get(shared[0]), r.get(shared[1]), inner)
			}
		}
		return r.dst.Maj(r.get(c[0]), r.get(c[1]), r.get(c[2]))
	})
}

// sharedPair finds exactly two signals common to both effective child sets
// and returns them plus each set's leftover signal.
func sharedPair(a, b [3]mig.Signal) (shared [2]mig.Signal, restA, restB mig.Signal, ok bool) {
	var inB [3]bool
	count := 0
	for _, sa := range a {
		for j, sb := range b {
			if sa == sb && !inB[j] {
				if count < 2 {
					shared[count] = sa
				}
				count++
				inB[j] = true
				break
			}
		}
	}
	if count != 2 {
		return shared, 0, 0, false
	}
	restA = remaining(a, shared)
	restB = remaining(b, shared)
	return shared, restA, restB, true
}

func remaining(set [3]mig.Signal, shared [2]mig.Signal) mig.Signal {
	used := [2]bool{}
	for _, s := range set {
		if s == shared[0] && !used[0] {
			used[0] = true
			continue
		}
		if s == shared[1] && !used[1] {
			used[1] = true
			continue
		}
		return s
	}
	return set[2]
}

// passAssociativity applies Ω.A, ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩, when the
// swap is profitable: the new inner node ⟨y u x⟩ folds by Ω.M or already
// exists (sharing). The inner node must be single-fanout so the graph cannot
// grow.
func passAssociativity(sc *scratch, m *mig.MIG) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(n mig.NodeID, c [3]mig.Signal) mig.Signal {
		for ii := 0; ii < 3; ii++ { // candidate inner child
			w := c[ii]
			if !m.IsMaj(w.Node()) || r.fanout[w.Node()] != 1 {
				continue
			}
			ew := effChildren(m.Children(w.Node()), w.Complemented())
			rest := [2]int{(ii + 1) % 3, (ii + 2) % 3}
			for _, ui := range rest { // candidate shared operand u
				u := c[ui]
				xi := rest[0] + rest[1] - ui
				x := c[xi]
				// Find u inside the inner node's effective children.
				for k := 0; k < 3; k++ {
					if ew[k] != u {
						continue
					}
					// The other two inner children are y and z candidates.
					o1, o2 := ew[(k+1)%3], ew[(k+2)%3]
					for _, yz := range [2][2]mig.Signal{{o1, o2}, {o2, o1}} {
						y, z := yz[0], yz[1]
						du := r.get(u)
						dx := r.get(x)
						dy := r.get(y)
						if _, ok := r.dst.LookupMaj(dy, du, dx); ok {
							inner := r.dst.Maj(dy, du, dx)
							return r.dst.Maj(r.get(z), du, inner)
						}
					}
				}
			}
		}
		return r.dst.Maj(r.get(c[0]), r.get(c[1]), r.get(c[2]))
	})
}

// passPsiC applies Ψ.C, ⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩, whenever the pattern
// matches on a single-fanout inner node. This mirrors the DAC'16 compiler's
// use of the axiom for node sharing — and reproduces exactly what the DATE'17
// paper criticizes about it: replacing the complemented operand ū by the
// plain x "removes a single complemented edge of an MIG node", destroying
// the ideal one-complement shape that maps to a single RM3 instruction.
// The endurance-aware Algorithm 2 therefore drops this pass.
func passPsiC(sc *scratch, m *mig.MIG) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(n mig.NodeID, c [3]mig.Signal) mig.Signal {
		for ii := 0; ii < 3; ii++ {
			w := c[ii]
			if !m.IsMaj(w.Node()) || r.fanout[w.Node()] != 1 {
				continue
			}
			ew := effChildren(m.Children(w.Node()), w.Complemented())
			rest := [2]int{(ii + 1) % 3, (ii + 2) % 3}
			for _, ui := range rest {
				u := c[ui]
				xi := rest[0] + rest[1] - ui
				x := c[xi]
				for k := 0; k < 3; k++ {
					if ew[k] != u.Not() {
						continue
					}
					// Inner contains ū: replace it by x.
					y, z := ew[(k+1)%3], ew[(k+2)%3]
					dx, dy, dz := r.get(x), r.get(y), r.get(z)
					inner := r.dst.Maj(dy, dx, dz)
					return r.dst.Maj(dx, r.get(u), inner)
				}
			}
		}
		return r.dst.Maj(r.get(c[0]), r.get(c[1]), r.get(c[2]))
	})
}

// passInverters normalizes complemented fanin edges (Ω.I right-to-left).
// With full=true it implements rules (1)–(3): any node whose rebuilt children
// carry two or three complemented non-constant edges is replaced by the
// complement of the node with all child polarities flipped, leaving at most
// one complemented fanin. With full=false only rule (1) applies (all three
// fanins complemented). The complement moves to the node's fanout edges and
// primary-output edges, where the sweep picks it up via the translation map.
func passInverters(sc *scratch, m *mig.MIG, full bool) *mig.MIG {
	r := newRebuild(m, sc)
	return r.sweep(func(n mig.NodeID, c [3]mig.Signal) mig.Signal {
		d := [3]mig.Signal{r.get(c[0]), r.get(c[1]), r.get(c[2])}
		comp, nonconst := 0, 0
		for _, s := range d {
			if s.IsConst() {
				continue
			}
			nonconst++
			if s.Complemented() {
				comp++
			}
		}
		flip := false
		if full {
			flip = comp >= 2 && nonconst-comp < comp
		} else {
			flip = comp == 3
		}
		if flip {
			return r.dst.Maj(d[0].Not(), d[1].Not(), d[2].Not()).Not()
		}
		return r.dst.Maj(d[0], d[1], d[2])
	})
}
