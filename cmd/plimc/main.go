// plimc compiles a Boolean function (one of the paper's benchmarks or a
// .mig netlist) into a PLiM RM3 program under a chosen endurance
// configuration, reporting the paper's #I/#R/write-distribution metrics.
// It is built on the plim.Engine API: Ctrl-C cancels a long rewrite, and
// -v streams per-cycle rewriting progress plus compile-stage start/done
// events.
//
// Examples:
//
//	plimc -bench adder -config full
//	plimc -bench div -config full -cap 20 -asm div.plim
//	plimc -in design.mig -config naive -o design.bin -stats -v
//	plimc -bench log2 -config full -cache-dir ~/.cache/plim
//
// With -cache-dir (default $PLIM_CACHE_DIR) rewrite results and benchmark
// builds persist across invocations: a run that plimtab (or an earlier
// plimc) already performed is served from disk, byte-identical and with
// zero rewrite cycles. A per-run cache summary is printed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"plim"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (see -list)")
		inFile    = flag.String("in", "", "input .mig netlist (alternative to -bench)")
		cfgName   = flag.String("config", "full", "configuration: naive|compiler21|minwrite|rewriting|full")
		cap       = flag.Uint64("cap", 0, "maximum write count per device (0 = unlimited)")
		effort    = flag.Int("effort", plim.DefaultEffort, "MIG rewriting cycles (0 = none)")
		shrink    = flag.Int("shrink", 1, "divide benchmark datapath widths (quick runs)")
		outBin    = flag.String("o", "", "write the compiled program in binary form")
		outAsm    = flag.String("asm", "", "write the compiled program as assembly")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		showStats = flag.Bool("stats", true, "print compilation statistics")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON trace of this run (with -v: also a span tree on stderr)")
		verbose   = flag.Bool("v", false, "stream progress events to stderr")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory shared across plimc/plimtab invocations (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	if *list {
		for _, n := range plim.Benchmarks() {
			info, _ := plim.LookupBenchmark(n)
			kind := "functional"
			if info.Synthetic {
				kind = "synthetic"
			}
			fmt.Printf("%-12s %4d/%-4d %s\n", n, info.PI, info.PO, kind)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engOpts := []plim.Option{
		plim.WithEffort(*effort),
		plim.WithShrink(*shrink),
		plim.WithPersistentCache(*cacheDir),
		plim.WithTrace(*tracePath != ""),
	}
	if *verbose {
		engOpts = append(engOpts, plim.WithProgress(func(ev plim.Event) {
			fmt.Fprintln(os.Stderr, plim.FormatEvent(ev))
		}))
	}
	eng := plim.NewEngine(engOpts...)

	m, err := loadMIG(eng, *benchName, *inFile)
	if err != nil {
		fatal(err)
	}
	cfg, err := configByName(*cfgName, *cap)
	if err != nil {
		fatal(err)
	}
	rep, err := eng.Run(ctx, m, cfg)
	if err != nil {
		fatal(err)
	}
	if *showStats {
		fmt.Printf("function    %s (pi=%d po=%d maj=%d)\n", m.Name, m.NumPIs(), m.NumPOs(), m.Statistics().MajNodes)
		fmt.Printf("config      %s\n", cfg.Name)
		if cfg.Rewrite != plim.RewriteNone {
			fmt.Printf("rewriting   %d → %d nodes in %d cycles\n",
				rep.Rewrite.NodesBefore, rep.Rewrite.NodesAfter, rep.Rewrite.Cycles)
		}
		fmt.Printf("#I          %d\n#R          %d\n", rep.NumInstructions(), rep.NumRRAMs())
		fmt.Printf("writes      min=%d max=%d stdev=%.2f\n",
			rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)
		fmt.Printf("lifetime    %d executions at endurance 1e10\n", rep.Lifetime(1e10))
	}
	if *outBin != "" {
		if err := writeFile(*outBin, rep.Result.Program.WriteBinary); err != nil {
			fatal(err)
		}
	}
	if *outAsm != "" {
		if err := writeFile(*outAsm, rep.Result.Program.WriteAsm); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(eng, *tracePath, *verbose); err != nil {
			fatal(err)
		}
	}
	printCacheSummary(eng)
}

// printCacheSummary reports the persistent tier's per-run accounting; the
// CI cold-vs-warm smoke job asserts on this line.
func printCacheSummary(eng *plim.Engine) {
	if s, ok := eng.CacheSummary(); ok {
		fmt.Fprintln(os.Stderr, s)
	}
}

// writeTrace exports the engine's recorded trace as Chrome trace-event
// JSON (chrome://tracing, Perfetto); with verbose set it also renders the
// span tree to stderr.
func writeTrace(eng *plim.Engine, path string, verbose bool) error {
	tr := eng.TakeTrace()
	if tr == nil {
		return fmt.Errorf("plimc: -trace: no spans recorded")
	}
	if err := writeFile(path, tr.WriteChrome); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "trace:")
		tr.Render(os.Stderr)
	}
	return nil
}

func loadMIG(eng *plim.Engine, bench, file string) (*plim.MIG, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("plimc: use either -bench or -in, not both")
	case bench != "":
		return eng.Benchmark(bench)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return plim.ReadMIG(f)
	}
	return nil, fmt.Errorf("plimc: need -bench or -in (try -list)")
}

func configByName(name string, cap uint64) (plim.Config, error) {
	var cfg plim.Config
	switch name {
	case "naive":
		cfg = plim.Naive
	case "compiler21":
		cfg = plim.Compiler21
	case "minwrite":
		cfg = plim.MinWrite
	case "rewriting":
		cfg = plim.Rewriting
	case "full":
		cfg = plim.Full
	default:
		return cfg, fmt.Errorf("plimc: unknown config %q", name)
	}
	if cap > 0 {
		cfg.MaxWrites = cap
		cfg.Name += fmt.Sprintf("+cap%d", cap)
	}
	return cfg, nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
