package hdl

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"plim/internal/mig"
)

// evalCircuit drives the builder's MIG with one assignment per input vector
// and returns the output vectors as integers. Inputs/outputs are located by
// bit position: callers pass the values for the PIs in declaration order.
type harness struct {
	b       *Builder
	inputs  []Vec
	outputs []Vec
}

func newHarness(name string) *harness { return &harness{b: New(name)} }

func (h *harness) in(name string, width int) Vec {
	v := h.b.Input(name, width)
	h.inputs = append(h.inputs, v)
	return v
}

func (h *harness) out(name string, v Vec) {
	h.b.Output(name, v)
	h.outputs = append(h.outputs, v)
}

// run evaluates with the given input values (LSB-first per vector) and
// returns one integer per output vector.
func (h *harness) run(vals ...uint64) []uint64 {
	words := make([]uint64, h.b.M.NumPIs())
	pi := 0
	for vi, v := range h.inputs {
		for j := range v {
			if vals[vi]>>uint(j)&1 == 1 {
				words[pi] = ^uint64(0)
			}
			pi++
		}
	}
	if pi != len(words) {
		panic("harness: PI bookkeeping broken")
	}
	nodeVals := make([]uint64, h.b.M.NumNodes())
	h.b.M.EvalInto(words, nodeVals)
	outs := make([]uint64, len(h.outputs))
	for oi, v := range h.outputs {
		var x uint64
		for j, s := range v {
			bit := nodeVals[s.Node()]
			if s.Complemented() {
				bit = ^bit
			}
			if bit&1 == 1 {
				x |= 1 << uint(j)
			}
		}
		outs[oi] = x
	}
	return outs
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

func TestAddQuick(t *testing.T) {
	const w = 16
	h := newHarness("add")
	a := h.in("a", w)
	b := h.in("b", w)
	sum, cout := h.b.Add(a, b, mig.Const0)
	h.out("s", append(append(Vec{}, sum...), cout))
	f := func(x, y uint16) bool {
		got := h.run(uint64(x), uint64(y))[0]
		return got == uint64(x)+uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFullAdderExhaustive(t *testing.T) {
	h := newHarness("fa")
	a := h.in("a", 1)
	b := h.in("b", 1)
	c := h.in("c", 1)
	sum, cout := h.b.FullAdder(a[0], b[0], c[0])
	h.out("o", Vec{sum, cout})
	for row := 0; row < 8; row++ {
		x, y, z := uint64(row&1), uint64(row>>1&1), uint64(row>>2&1)
		got := h.run(x, y, z)[0]
		want := x + y + z
		if got != want {
			t.Fatalf("FA(%d,%d,%d) = %d, want %d", x, y, z, got, want)
		}
	}
}

func TestSubAndComparisons(t *testing.T) {
	const w = 12
	h := newHarness("sub")
	a := h.in("a", w)
	b := h.in("b", w)
	diff, borrow := h.b.Sub(a, b)
	h.out("d", diff)
	h.out("bo", Vec{borrow})
	h.out("lt", Vec{h.b.LtU(a, b)})
	h.out("ge", Vec{h.b.GeU(a, b)})
	h.out("eq", Vec{h.b.EqV(a, b)})
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&mask(w), uint64(y)&mask(w)
		outs := h.run(xv, yv)
		if outs[0] != (xv-yv)&mask(w) {
			return false
		}
		if (outs[1] == 1) != (xv < yv) {
			return false
		}
		if (outs[2] == 1) != (xv < yv) || (outs[3] == 1) != (xv >= yv) {
			return false
		}
		return (outs[4] == 1) == (xv == yv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubNeg(t *testing.T) {
	const w = 10
	h := newHarness("addsub")
	a := h.in("a", w)
	b := h.in("b", w)
	s := h.in("s", 1)
	h.out("r", h.b.AddSub(a, b, s[0]))
	h.out("n", h.b.Neg(a))
	f := func(x, y uint16, sub bool) bool {
		xv, yv := uint64(x)&mask(w), uint64(y)&mask(w)
		sv := uint64(0)
		want := (xv + yv) & mask(w)
		if sub {
			sv = 1
			want = (xv - yv) & mask(w)
		}
		outs := h.run(xv, yv, sv)
		return outs[0] == want && outs[1] == (-xv)&mask(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSquareQuick(t *testing.T) {
	const w = 10
	h := newHarness("mul")
	a := h.in("a", w)
	b := h.in("b", w)
	h.out("p", h.b.Mul(a, b))
	h.out("sq", h.b.Square(a))
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&mask(w), uint64(y)&mask(w)
		outs := h.run(xv, yv)
		return outs[0] == xv*yv && outs[1] == xv*xv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDivRemQuick(t *testing.T) {
	const w = 10
	h := newHarness("div")
	a := h.in("a", w)
	b := h.in("b", w)
	q, r := h.b.DivRem(a, b)
	h.out("q", q)
	h.out("r", r)
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&mask(w), uint64(y)&mask(w)
		outs := h.run(xv, yv)
		if yv == 0 {
			// Hardware recurrence: every trial subtraction of 0 succeeds,
			// so the quotient saturates and the remainder replays the
			// dividend.
			return outs[0] == mask(w) && outs[1] == xv
		}
		return outs[0] == xv/yv && outs[1] == xv%yv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtQuick(t *testing.T) {
	const w = 16 // input width; 8-bit root
	h := newHarness("sqrt")
	a := h.in("a", w)
	h.out("r", h.b.Sqrt(a))
	f := func(x uint16) bool {
		xv := uint64(x)
		want := uint64(math.Sqrt(float64(xv)))
		// Floating point can land one off around perfect squares; compute
		// the integer sqrt exactly.
		for want*want > xv {
			want--
		}
		for (want+1)*(want+1) <= xv {
			want++
		}
		return h.run(xv)[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftersQuick(t *testing.T) {
	const w = 16 // power of two for clean rotation semantics
	h := newHarness("shift")
	a := h.in("a", w)
	sh := h.in("sh", 4)
	h.out("rot", h.b.BarrelRotl(a, sh))
	h.out("shl", h.b.BarrelShl(a, sh))
	h.out("shr", h.b.BarrelShr(a, sh))
	f := func(x uint16, s uint8) bool {
		sv := uint64(s % 16)
		xv := uint64(x)
		outs := h.run(xv, sv)
		rot := (xv<<sv | xv>>(16-sv)) & mask(w)
		if sv == 0 {
			rot = xv
		}
		return outs[0] == rot && outs[1] == (xv<<sv)&mask(w) && outs[2] == xv>>sv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstShifts(t *testing.T) {
	h := newHarness("cshift")
	a := h.in("a", 8)
	h.out("shl3", ShlConst(a, 3))
	h.out("shr2", ShrConst(a, 2, mig.Const0))
	h.out("rot3", RotlConst(a, 3))
	outs := h.run(0b10110101)
	if outs[0] != (0b10110101<<3)&0xFF {
		t.Fatalf("shl3 = %08b", outs[0])
	}
	if outs[1] != 0b10110101>>2 {
		t.Fatalf("shr2 = %08b", outs[1])
	}
	want := uint64((0b10110101<<3 | 0b10110101>>5) & 0xFF)
	if outs[2] != want {
		t.Fatalf("rot3 = %08b, want %08b", outs[2], want)
	}
}

func TestPopcountQuick(t *testing.T) {
	for _, w := range []int{1, 7, 16, 33} {
		w := w
		h := newHarness("pop")
		a := h.in("a", w)
		h.out("c", h.b.Popcount(a))
		f := func(x uint64) bool {
			xv := x & mask(w)
			return h.run(xv)[0] == uint64(bits.OnesCount64(xv))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
	}
}

func TestDecoderExhaustive(t *testing.T) {
	h := newHarness("dec")
	sel := h.in("s", 4)
	h.out("o", h.b.Decoder(sel))
	for v := uint64(0); v < 16; v++ {
		got := h.run(v)[0]
		if got != 1<<v {
			t.Fatalf("decode(%d) = %016b", v, got)
		}
	}
}

func TestPriorityEncoderQuick(t *testing.T) {
	for _, w := range []int{8, 13, 32} {
		w := w
		h := newHarness("prio")
		a := h.in("a", w)
		idx, valid := h.b.PriorityEncoder(a)
		h.out("i", idx)
		h.out("v", Vec{valid})
		f := func(x uint64) bool {
			xv := x & mask(w)
			outs := h.run(xv)
			if xv == 0 {
				return outs[1] == 0
			}
			return outs[1] == 1 && outs[0] == uint64(bits.Len64(xv)-1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
	}
}

func TestMaxU(t *testing.T) {
	const w = 9
	h := newHarness("max")
	a := h.in("a", w)
	b := h.in("b", w)
	m, fromB := h.b.MaxU(a, b)
	h.out("m", m)
	h.out("f", Vec{fromB})
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&mask(w), uint64(y)&mask(w)
		outs := h.run(xv, yv)
		want := xv
		if yv > xv {
			want = yv
		}
		return outs[0] == want && (outs[1] == 1) == (xv < yv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// refIntToFloat mirrors the circuit's conversion bit-exactly.
func refIntToFloat(x uint64, n, expBits, manBits int) (exp, man uint64) {
	if x == 0 {
		return 0, 0
	}
	p := bits.Len64(x) - 1
	if p < manBits-1 {
		return 0, x & mask(manBits)
	}
	big := 1
	for big < n {
		big *= 2
	}
	norm := x << uint(big-1-p)
	man = (norm >> uint(big-1-manBits)) & mask(manBits)
	e := uint64(p - (manBits - 1))
	if e >= 1<<uint(expBits) {
		return mask(expBits), mask(manBits)
	}
	return e, man
}

func TestIntToFloatQuick(t *testing.T) {
	const w, eb, mb = 11, 4, 3
	h := newHarness("i2f")
	a := h.in("a", w)
	exp, man := h.b.IntToFloat(a, eb, mb)
	h.out("e", exp)
	h.out("m", man)
	f := func(x uint16) bool {
		xv := uint64(x) & mask(w)
		outs := h.run(xv)
		we, wm := refIntToFloat(xv, w, eb, mb)
		return outs[0] == we && outs[1] == wm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSinAccuracy(t *testing.T) {
	const ab, iters = 12, 16
	h := newHarness("sin")
	a := h.in("a", ab)
	h.out("s", h.b.Sin(a, iters))
	for _, theta := range []uint64{0, 1, 100, 1 << 8, 1 << 10, 1<<11 + 7, 1<<12 - 1} {
		got := float64(h.run(theta)[0]) / math.Pow(2, ab)
		want := math.Sin(float64(theta) / math.Pow(2, ab) * math.Pi / 2)
		if math.Abs(got-want) > 3e-3 {
			t.Fatalf("sin(%d) = %.6f, want %.6f", theta, got, want)
		}
	}
}

func TestLog2Accuracy(t *testing.T) {
	const w, fb = 16, 12
	h := newHarness("log2")
	a := h.in("a", w)
	ip, fp := h.b.Log2(a, fb)
	h.out("i", ip)
	h.out("f", fp)
	for _, x := range []uint64{1, 2, 3, 5, 7, 100, 1000, 30000, 65535} {
		outs := h.run(x)
		got := float64(outs[0]) + float64(outs[1])/math.Pow(2, fb)
		want := math.Log2(float64(x))
		if math.Abs(got-want) > 0.012 { // quadratic-fit error bound
			t.Fatalf("log2(%d) = %.5f, want %.5f", x, got, want)
		}
	}
	if outs := h.run(0); outs[0] != 0 || outs[1] != 0 {
		t.Fatalf("log2(0) must be zero, got %v", outs)
	}
}

func TestConstMulFrac(t *testing.T) {
	const w = 24
	h := newHarness("cmul")
	a := h.in("a", 12)
	h.out("p", h.b.ConstMulFrac(ZeroExt(a, w), math.Pi, w, 16))
	// Each shift-add term floors, so the absolute error is bounded by the
	// term count plus the constant's truncated tail times x.
	for _, x := range []uint64{1, 10, 1000, 4095} {
		got := float64(h.run(x)[0])
		want := float64(x) * math.Pi
		if got > want || want-got > 16+want*1e-3 {
			t.Fatalf("π·%d = %.2f, want %.2f", x, got, want)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	h := newHarness("help")
	a := h.in("a", 4)
	b := h.in("b", 4)
	h.out("and", h.b.AndV(a, b))
	h.out("or", h.b.OrV(a, b))
	h.out("xor", h.b.XorV(a, b))
	h.out("not", NotV(a))
	h.out("mask", h.b.AndBit(a, b[0]))
	h.out("ror", Vec{h.b.ReduceOr(a)})
	h.out("rand", Vec{h.b.ReduceAnd(a)})
	outs := h.run(0b1100, 0b1010)
	checks := []uint64{0b1000, 0b1110, 0b0110, 0b0011, 0b0000, 1, 0}
	for i, want := range checks {
		if outs[i] != want {
			t.Fatalf("helper %d = %04b, want %04b", i, outs[i], want)
		}
	}
}

func TestExtendsAndConcat(t *testing.T) {
	h := newHarness("ext")
	a := h.in("a", 4)
	h.out("z", ZeroExt(a, 8))
	h.out("s", SignExt(a, 8))
	h.out("t", ZeroExt(a, 2))
	h.out("c", Concat(a[:2], a[2:]))
	outs := h.run(0b1010)
	if outs[0] != 0b00001010 || outs[1] != 0b11111010 || outs[2] != 0b10 || outs[3] != 0b1010 {
		t.Fatalf("extends = %v", outs)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	h := newHarness("panic")
	a := h.in("a", 3)
	b := h.in("b", 4)
	for name, f := range map[string]func(){
		"add": func() { h.b.Add(a, b, mig.Const0) },
		"and": func() { h.b.AndV(a, b) },
		"mux": func() { h.b.MuxV(a[0], a, b) },
		"mul": func() { h.b.Mul(a, b) },
		"div": func() { h.b.DivRem(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic on width mismatch", name)
				}
			}()
			f()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sqrt must reject odd widths")
			}
		}()
		h.b.Sqrt(a)
	}()
}
