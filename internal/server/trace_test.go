package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// tracedBody is a response envelope that only looks at the spliced trace
// block, leaving the endpoint-specific members alone.
type tracedBody struct {
	Trace *traceJSON `json:"trace"`
}

// spanCoverage returns the fraction of the wall time covered by the union
// of all non-root span intervals — the acceptance metric for "the trace
// explains where the time went" (gaps are untraced wall time).
func spanCoverage(tj *traceJSON) float64 {
	type iv struct{ lo, hi float64 }
	var ivs []iv
	for _, sp := range tj.Spans {
		if sp.Kind == "request" {
			continue
		}
		ivs = append(ivs, iv{sp.StartMS, sp.StartMS + sp.DurMS})
	}
	if len(ivs) == 0 || tj.WallMS <= 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, hi float64
	for _, v := range ivs {
		if v.lo > hi {
			covered += v.hi - v.lo
			hi = v.hi
		} else if v.hi > hi {
			covered += v.hi - hi
			hi = v.hi
		}
	}
	return covered / tj.WallMS
}

func TestCompileTraceBlock(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full","trace":true}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("traced compile: %d %s", resp.StatusCode, b)
	}

	// The body stays a valid compile response with the trace spliced in.
	var out compileResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Instructions == 0 || out.RRAMs == 0 {
		t.Fatalf("traced response lost the compile payload: %+v", out)
	}
	var env tracedBody
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	tj := env.Trace
	if tj == nil {
		t.Fatalf("no trace block in traced response: %s", b)
	}
	if tj.WallMS <= 0 || len(tj.Spans) == 0 || len(tj.Stages) == 0 {
		t.Fatalf("empty trace: wall=%v spans=%d stages=%d", tj.WallMS, len(tj.Spans), len(tj.Stages))
	}

	// Exactly one root span: the request itself, annotated with the flight
	// key, leader role and final status.
	kinds := map[string]int{}
	var roots int
	for _, sp := range tj.Spans {
		kinds[sp.Kind]++
		if sp.Parent != -1 {
			continue
		}
		roots++
		if sp.Kind != "request" || sp.Name != "compile" {
			t.Fatalf("root span is %s/%s, want request/compile", sp.Kind, sp.Name)
		}
		if sp.Attrs["role"] != "leader" || sp.Attrs["status"] != "200" {
			t.Fatalf("root attrs: %v", sp.Attrs)
		}
		if !strings.HasPrefix(sp.Attrs["flight"], "compile|") {
			t.Fatalf("root flight attr: %q", sp.Attrs["flight"])
		}
	}
	if roots != 1 {
		t.Fatalf("want 1 root span, got %d", roots)
	}
	if kinds["rewrite"] == 0 || kinds["compile"] == 0 {
		t.Fatalf("trace misses pipeline stages: %v", kinds)
	}

	// Acceptance bar: the spans explain at least 95% of the wall time
	// (relaxed under the race detector, whose overhead inflates the
	// untraced gaps between spans — see minSpanCoverage).
	if cov := spanCoverage(tj); cov < minSpanCoverage {
		t.Fatalf("spans cover %.1f%% of wall time, want >= %.0f%%", 100*cov, 100*minSpanCoverage)
	}

	// Server-Timing mirrors the stage totals for browser dev tools.
	st := resp.Header.Get("Server-Timing")
	if !strings.HasPrefix(st, "total;dur=") || !strings.Contains(st, "compile;dur=") {
		t.Fatalf("Server-Timing: %q", st)
	}
}

func TestTracedAndUntracedFlightsStayApart(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	body := `{"benchmark":"ctrl","config":"full"}`
	traced := `{"benchmark":"ctrl","config":"full","trace":true}`

	_, before := postJSON(t, ts.URL+"/v1/compile", body, nil)
	if bytes.Contains(before, []byte(`"trace"`)) {
		t.Fatalf("untraced response carries a trace block: %s", before)
	}
	resp, withTrace := postJSON(t, ts.URL+"/v1/compile", traced, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("traced: %d %s", resp.StatusCode, withTrace)
	}
	if !bytes.Contains(withTrace, []byte(`"trace"`)) {
		t.Fatal("traced response has no trace block")
	}
	// The traced flight must not have replaced the untraced cache entry:
	// warm untraced repeats stay byte-identical across a traced interleave.
	_, after := postJSON(t, ts.URL+"/v1/compile", body, nil)
	if !bytes.Equal(before, after) {
		t.Fatalf("untraced warm response changed after a traced request:\nbefore: %s\nafter:  %s", before, after)
	}
	if resp2, _ := postJSON(t, ts.URL+"/v1/compile", body, nil); resp2.Header.Get("Server-Timing") != "" {
		t.Fatal("untraced response carries a Server-Timing header")
	}
}

func TestSSETraceFrame(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compile",
		strings.NewReader(`{"benchmark":"ctrl","config":"full","trace":true}`))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("SSE request: %d", resp.StatusCode)
	}

	var order []string
	var traceData []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var current string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			if current == "trace" || current == "result" {
				order = append(order, current)
			}
		case strings.HasPrefix(line, "data: ") && current == "trace":
			traceData = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "trace" || order[1] != "result" {
		t.Fatalf("want a trace frame then the result, got %v", order)
	}
	var tj traceJSON
	if err := json.Unmarshal(traceData, &tj); err != nil {
		t.Fatalf("trace frame does not parse: %v\n%s", err, traceData)
	}
	if tj.WallMS <= 0 || len(tj.Spans) == 0 {
		t.Fatalf("empty SSE trace frame: %s", traceData)
	}
}

func TestTraceLastRing(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{})
	if resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","trace":true}`, nil); resp.StatusCode != 200 {
		t.Fatalf("traced compile: %d %s", resp.StatusCode, b)
	}

	rec := httptest.NewRecorder()
	s.TraceLastHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/last", nil))
	if rec.Code != 200 {
		t.Fatalf("trace ring: %d", rec.Code)
	}
	var entries []ringEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 retained trace, got %d", len(entries))
	}
	e := entries[0]
	if !strings.HasPrefix(e.Flight, "compile|") || e.WallMS <= 0 || e.UnixMS == 0 {
		t.Fatalf("implausible ring entry: %+v", e)
	}
	var tj traceJSON
	if err := json.Unmarshal(e.Trace, &tj); err != nil {
		t.Fatalf("retained trace does not parse: %v", err)
	}
	if len(tj.Spans) == 0 {
		t.Fatal("retained trace has no spans")
	}
}

func TestTraceLastEmptyRingServesEmptyArray(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	rec := httptest.NewRecorder()
	s.TraceLastHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/last", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Fatalf("empty ring: want [], got %q", got)
	}
}

func TestTraceRingKeepsSlowest(t *testing.T) {
	r := &traceRing{}
	for i := 0; i < traceRingSize+8; i++ {
		r.record(fmt.Sprintf("f%d", i), float64(i), []byte("{}"))
	}
	got := r.snapshot()
	if len(got) != traceRingSize {
		t.Fatalf("ring holds %d entries, want %d", len(got), traceRingSize)
	}
	// Slowest first, and the 8 fastest flights evicted.
	for i, e := range got {
		want := float64(traceRingSize + 7 - i)
		if e.WallMS != want {
			t.Fatalf("entry %d: wall %v, want %v", i, e.WallMS, want)
		}
	}
}

func TestSpliceTrace(t *testing.T) {
	blob := []byte(`{"wall_ms":1}`)
	cases := []struct{ in, want string }{
		{`{"a":1}` + "\n", `{"a":1,"trace":{"wall_ms":1}}` + "\n"},
		{`{}`, `{"trace":{"wall_ms":1}}`},
		{`not json`, `not json`},
	}
	for _, c := range cases {
		if got := string(spliceTrace([]byte(c.in), blob)); got != c.want {
			t.Fatalf("spliceTrace(%q) = %q, want %q", c.in, got, c.want)
		}
		if json.Valid([]byte(c.want)) != json.Valid([]byte(c.in)) {
			t.Fatalf("splice changed JSON validity for %q", c.in)
		}
	}
}
