// Package rram models bipolar resistive switches (BRS) and the RRAM
// crossbar array underlying the PLiM computer (Gaillardon et al., DATE
// 2016). The model is behavioural: a device stores one bit as its
// resistance state (LRS = logic 1, HRS = logic 0), counts write and switch
// events, and optionally fails hard once a configurable endurance budget is
// exhausted — the failure mode that motivates the DATE 2017 endurance
// management paper.
//
// The characteristic operation is the intrinsic three-input resistive
// majority RM3: applying signals P and Q to the top and bottom electrodes
// of a device storing Z updates it to
//
//	Z ← ⟨P Q̄ Z⟩ = PZ ∨ Q̄Z ∨ PQ̄.
//
// (The DATE 2017 PDF drops the overline on Q in transcription; the inversion
// of the second operand is what breaks commutativity, as §II of the paper
// discusses, and is reproduced here.)
package rram

import (
	"errors"
	"fmt"
)

// ErrWornOut is returned when a write is attempted on a device whose
// endurance budget is exhausted.
var ErrWornOut = errors.New("rram: device worn out")

// Device is a single bipolar resistive switch.
type Device struct {
	value    bool
	writes   uint64
	switches uint64
	failed   bool
}

// Value returns the stored bit.
func (d *Device) Value() bool { return d.value }

// Writes returns the number of write pulses the device received. Every
// write pulse stresses the device whether or not the state changes; this is
// the quantity whose distribution the paper balances.
func (d *Device) Writes() uint64 { return d.writes }

// Switches returns the number of writes that actually toggled the state;
// it is tracked separately so ablation studies can compare both wear models.
func (d *Device) Switches() uint64 { return d.switches }

// Failed reports whether the device has worn out.
func (d *Device) Failed() bool { return d.failed }

// write applies a write pulse. endurance == 0 means unlimited.
func (d *Device) write(v bool, endurance uint64) error {
	if d.failed {
		return ErrWornOut
	}
	if endurance > 0 && d.writes >= endurance {
		d.failed = true
		return ErrWornOut
	}
	d.writes++
	if d.value != v {
		d.switches++
		d.value = v
	}
	return nil
}

// Crossbar is a rows×cols array of devices with linear addressing
// (addr = row*cols + col), shared peripheral circuitry, and a cycle model.
// The PLiM controller wraps a crossbar and executes RM3 instructions on it.
type Crossbar struct {
	rows, cols int
	devices    []Device
	endurance  uint64 // per-device write budget; 0 = unlimited

	reads      uint64
	writeOps   uint64
	cycleModel CycleModel
	cycles     uint64
}

// CycleModel assigns latencies (in controller cycles) to the primitive
// array operations. The defaults follow the PLiM controller's
// fetch/read/read/write loop: one cycle per operand read and one per write.
type CycleModel struct {
	Read  uint64
	Write uint64
}

// DefaultCycleModel is the PLiM controller timing used when none is given.
var DefaultCycleModel = CycleModel{Read: 1, Write: 1}

// Option configures a Crossbar.
type Option func(*Crossbar)

// WithEndurance sets the per-device write budget (0 = unlimited).
func WithEndurance(limit uint64) Option {
	return func(c *Crossbar) { c.endurance = limit }
}

// WithCycleModel overrides the peripheral timing model.
func WithCycleModel(m CycleModel) Option {
	return func(c *Crossbar) { c.cycleModel = m }
}

// NewCrossbar allocates a rows×cols crossbar with all devices reset to 0.
func NewCrossbar(rows, cols int, opts ...Option) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("rram: invalid crossbar geometry %dx%d", rows, cols))
	}
	c := &Crossbar{
		rows:       rows,
		cols:       cols,
		devices:    make([]Device, rows*cols),
		cycleModel: DefaultCycleModel,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewLinear allocates a 1×n crossbar; the compiler's address space is
// linear, so most callers use this.
func NewLinear(n int, opts ...Option) *Crossbar { return NewCrossbar(1, n, opts...) }

// Size returns the number of devices.
func (c *Crossbar) Size() int { return len(c.devices) }

// Rows and Cols return the geometry.
func (c *Crossbar) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *Crossbar) Cols() int { return c.cols }

func (c *Crossbar) check(addr uint32) {
	if int(addr) >= len(c.devices) {
		panic(fmt.Sprintf("rram: address %d out of range (size %d)", addr, len(c.devices)))
	}
}

// Read returns the bit stored at addr. Reads are non-destructive and do not
// age the device.
func (c *Crossbar) Read(addr uint32) bool {
	c.check(addr)
	c.reads++
	c.cycles += c.cycleModel.Read
	return c.devices[addr].value
}

// Write stores v at addr, counting one write pulse.
func (c *Crossbar) Write(addr uint32, v bool) error {
	c.check(addr)
	c.writeOps++
	c.cycles += c.cycleModel.Write
	return c.devices[addr].write(v, c.endurance)
}

// Preload stores v at addr without counting a write pulse. It models data
// already resident in memory before in-memory computation starts (the PLiM
// assumption for primary inputs); the paper's `min = 0` write counts come
// from devices that are only ever preloaded.
func (c *Crossbar) Preload(addr uint32, v bool) {
	c.check(addr)
	d := &c.devices[addr]
	d.value = v
}

// RM3 applies the resistive majority operation with operand values p and q
// to the device at addr: Z ← ⟨p q̄ Z⟩. It counts one write pulse.
func (c *Crossbar) RM3(p, q bool, addr uint32) error {
	c.check(addr)
	z := c.devices[addr].value
	nq := !q
	res := p && z || nq && z || p && nq
	c.writeOps++
	c.cycles += c.cycleModel.Write
	return c.devices[addr].write(res, c.endurance)
}

// Device returns a read-only view of the device at addr.
func (c *Crossbar) Device(addr uint32) *Device {
	c.check(addr)
	return &c.devices[addr]
}

// WriteCounts snapshots per-device write counters for the first n devices
// (n ≤ Size). The compiler knows how many devices a program uses; passing
// that n restricts statistics to devices the program allocated.
func (c *Crossbar) WriteCounts(n int) []uint64 {
	if n > len(c.devices) {
		n = len(c.devices)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.devices[i].writes
	}
	return out
}

// SwitchCounts snapshots per-device switch counters, like WriteCounts.
func (c *Crossbar) SwitchCounts(n int) []uint64 {
	if n > len(c.devices) {
		n = len(c.devices)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.devices[i].switches
	}
	return out
}

// Totals returns aggregate operation counters.
func (c *Crossbar) Totals() (reads, writes, cycles uint64) {
	return c.reads, c.writeOps, c.cycles
}

// WearMap renders an ASCII heat map of write counts (row-major), bucketing
// each device's writes into 0-9 relative to the maximum. It is a debugging
// and demo aid for the examples.
func (c *Crossbar) WearMap(n int) string {
	return RenderWearMap(c.WriteCounts(n))
}

// RenderWearMap renders any per-device write-count vector the way
// Crossbar.WearMap does — rows of 64 relative-wear digits, '.' for
// untouched devices. It lets wear gathered outside a Crossbar (the batched
// executor's aggregate counters, say) reuse the same visualization.
func RenderWearMap(writes []uint64) string {
	var max uint64
	for _, w := range writes {
		if w > max {
			max = w
		}
	}
	n := len(writes)
	buf := make([]byte, 0, n+n/64+1)
	for i, w := range writes {
		if i > 0 && i%64 == 0 {
			buf = append(buf, '\n')
		}
		switch {
		case max == 0 || w == 0:
			buf = append(buf, '.')
		default:
			buf = append(buf, byte('0'+(w*9)/max))
		}
	}
	return string(buf)
}
