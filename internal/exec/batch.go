// Package exec provides a bit-sliced executor for compiled PLiM programs:
// 64 input vectors are packed into each machine word, so one pass over the
// instruction stream evaluates 64 executions at once. Crossbar cells become
// uint64 state words, the RM3 majority becomes three logic ops per
// instruction, and wear accounting aggregates per-cell write and switch
// counts across all lanes (switches via popcount), keeping the results
// semantically identical to running internal/isa's scalar interpreter once
// per vector on a fresh crossbar.
package exec

import (
	"fmt"
	"math/rand"
)

// wordBits is the lane count: vectors per state word.
const wordBits = 64

// Batch is a bit-sliced block of boolean vectors: vector v's line i value is
// bit (v % 64) of words[i][v/64]. The same layout carries program inputs
// (lines = primary inputs) and outputs (lines = primary outputs). Lanes
// beyond Len() in the final chunk are inactive: they hold zeros and are
// excluded from wear accounting and unpacking.
type Batch struct {
	lines int
	n     int
	words [][]uint64 // [line][chunk]
}

// NewBatch returns an all-zero batch of n vectors of the given width.
func NewBatch(lines, n int) *Batch {
	if lines < 0 || n < 0 {
		panic("exec: negative batch dimensions")
	}
	chunks := (n + wordBits - 1) / wordBits
	words := make([][]uint64, lines)
	backing := make([]uint64, lines*chunks)
	for i := range words {
		words[i], backing = backing[:chunks:chunks], backing[chunks:]
	}
	return &Batch{lines: lines, n: n, words: words}
}

// Pack builds a batch from one []bool per vector; all vectors must share a
// width (width 0 is allowed only for an empty batch).
func Pack(vectors [][]bool) (*Batch, error) {
	if len(vectors) == 0 {
		return NewBatch(0, 0), nil
	}
	b := NewBatch(len(vectors[0]), len(vectors))
	for v, vec := range vectors {
		if len(vec) != b.lines {
			return nil, fmt.Errorf("exec: vector %d has %d lines, want %d", v, len(vec), b.lines)
		}
		for i, val := range vec {
			b.Set(v, i, val)
		}
	}
	return b, nil
}

// PackStrings builds a batch from "0101"-style vector strings (character i
// is line i), the format the CLIs and the server accept.
func PackStrings(vectors []string) (*Batch, error) {
	if len(vectors) == 0 {
		return NewBatch(0, 0), nil
	}
	b := NewBatch(len(vectors[0]), len(vectors))
	for v, vec := range vectors {
		if len(vec) != b.lines {
			return nil, fmt.Errorf("exec: vector %d has %d lines, want %d", v, len(vec), b.lines)
		}
		for i := 0; i < len(vec); i++ {
			switch vec[i] {
			case '0':
			case '1':
				b.Set(v, i, true)
			default:
				return nil, fmt.Errorf("exec: vector %d: bad character %q (want 0 or 1)", v, vec[i])
			}
		}
	}
	return b, nil
}

// Random returns a batch of n uniformly random vectors, deterministic in
// seed.
func Random(lines, n int, seed int64) *Batch {
	b := NewBatch(lines, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < lines; i++ {
		for c := range b.words[i] {
			b.words[i][c] = rng.Uint64() & b.ActiveMask(c)
		}
	}
	return b
}

// Exhaustive returns the full truth-table batch: 2^lines vectors where
// vector v's line i is bit i of v. lines is capped at 24 (16 Mi vectors).
func Exhaustive(lines int) (*Batch, error) {
	if lines > 24 {
		return nil, fmt.Errorf("exec: exhaustive batch over %d inputs is too large (max 24)", lines)
	}
	b := NewBatch(lines, 1<<lines)
	for i := 0; i < lines; i++ {
		for c := range b.words[i] {
			b.words[i][c] = exhaustiveWord(i, c) & b.ActiveMask(c)
		}
	}
	return b, nil
}

// basisWords[i] has bit l set iff bit i of l is set — the six alternating
// patterns that enumerate lane indices inside one 64-lane chunk.
var basisWords = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// exhaustiveWord returns the word of line i in chunk c of the exhaustive
// enumeration: bit l = bit i of vector index c*64+l. Below bit 6 that is a
// basis pattern; from bit 6 upward the bit is constant across a chunk.
func exhaustiveWord(i, c int) uint64 {
	if i < 6 {
		return basisWords[i]
	}
	if c>>(i-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// Len reports the number of vectors in the batch.
func (b *Batch) Len() int { return b.n }

// Lines reports the vector width (bit-lines per vector).
func (b *Batch) Lines() int { return b.lines }

// Chunks reports the number of 64-lane word columns.
func (b *Batch) Chunks() int { return (b.n + wordBits - 1) / wordBits }

// ActiveMask returns the mask of in-range lanes for a chunk: all ones except
// on the final, possibly partial, chunk.
func (b *Batch) ActiveMask(chunk int) uint64 {
	if rem := b.n - chunk*wordBits; rem < wordBits {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

// Word returns the state word of one line in one chunk.
func (b *Batch) Word(line, chunk int) uint64 { return b.words[line][chunk] }

// SetWord stores a state word; inactive lanes are masked off so every batch
// stays canonical (equal content ⇒ equal words, which Hash relies on).
func (b *Batch) SetWord(line, chunk int, w uint64) {
	b.words[line][chunk] = w & b.ActiveMask(chunk)
}

// Set assigns one bit.
func (b *Batch) Set(vector, line int, v bool) {
	if v {
		b.words[line][vector/wordBits] |= 1 << uint(vector%wordBits)
	} else {
		b.words[line][vector/wordBits] &^= 1 << uint(vector%wordBits)
	}
}

// Get reads one bit.
func (b *Batch) Get(vector, line int) bool {
	return b.words[line][vector/wordBits]>>uint(vector%wordBits)&1 == 1
}

// Vector unpacks one vector.
func (b *Batch) Vector(v int) []bool {
	out := make([]bool, b.lines)
	for i := range out {
		out[i] = b.Get(v, i)
	}
	return out
}

// Unpack expands the batch back into one []bool per vector.
func (b *Batch) Unpack() [][]bool {
	out := make([][]bool, b.n)
	for v := range out {
		out[v] = b.Vector(v)
	}
	return out
}

// Strings renders every vector in the "0101" format accepted by
// PackStrings.
func (b *Batch) Strings() []string {
	out := make([]string, b.n)
	buf := make([]byte, b.lines)
	for v := range out {
		for i := 0; i < b.lines; i++ {
			if b.Get(v, i) {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		out[v] = string(buf)
	}
	return out
}

// Hash returns a 64-bit FNV-1a content hash over the batch's dimensions and
// words — the input component of serving-layer coalescing keys. SetWord
// keeps inactive lanes zero, so equal content hashes equally regardless of
// how the batch was built.
func (b *Batch) Hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(b.lines))
	mix(uint64(b.n))
	for _, line := range b.words {
		for _, w := range line {
			mix(w)
		}
	}
	return h
}

// MemSize estimates the batch's memory footprint in bytes.
func (b *Batch) MemSize() int {
	return 64 + len(b.words)*(24+8*b.Chunks())
}
