// IMP baseline (§II of the paper): compile the same functions with the
// material-implication NAND style of Borghetti et al. and with the
// endurance-managed RM3 flow, and compare write traffic. IMP funnels every
// gate's result writes into a work device, so its maxima and deviations dwarf
// the balanced RM3 programs — the observation that motivates the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
	"plim/internal/imply"
	"plim/internal/stats"
)

func main() {
	fmt.Println("write traffic: IMP (NAND, naive) vs RM3 (full endurance management)")
	fmt.Println()
	fmt.Printf("%-12s  %10s  %10s  %10s | %10s  %10s  %10s\n",
		"benchmark", "IMP ops", "IMP max", "IMP stdev", "RM3 #I", "RM3 max", "RM3 stdev")

	eng := plim.NewEngine()
	for _, name := range []string{"ctrl", "cavlc", "int2float", "dec", "router"} {
		m, err := eng.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}

		impProg, err := imply.Compile(m)
		if err != nil {
			log.Fatal(err)
		}
		in := make([]bool, m.NumPIs())
		for i := range in {
			in[i] = i%2 == 1
		}
		_, impWrites, err := impProg.Execute(in)
		if err != nil {
			log.Fatal(err)
		}
		impStats := stats.Summarize(impWrites)

		rep, err := eng.Run(context.Background(), m, plim.Full)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-12s  %10d  %10d  %10.2f | %10d  %10d  %10.2f\n",
			name, impProg.NumOps(), impStats.Max, impStats.StdDev,
			rep.NumInstructions(), rep.Writes.Max, rep.Writes.StdDev)
	}

	fmt.Println()
	fmt.Println("IMP loses commutativity (q ← p̄ ∨ q rewrites only q), so every NAND")
	fmt.Println("concentrates three writes on its work device; RM3 spreads results")
	fmt.Println("across three operands and the endurance-aware compiler levels the rest.")
}
