package verify

import (
	"strings"
	"testing"

	"plim/internal/isa"
)

// prog builds a minimal valid program: cells 0..1 are PIs, the rest is up
// to the caller.
func prog(cells uint32, insts []isa.Instruction, pos ...isa.PORef) *isa.Program {
	return &isa.Program{
		Name:     "t",
		NumCells: cells,
		PICells:  []uint32{0, 1},
		POs:      pos,
		Insts:    insts,
	}
}

func hasCheck(vs []Violation, check string) bool {
	for _, v := range vs {
		if v.Check == check {
			return true
		}
	}
	return false
}

func TestCleanProgram(t *testing.T) {
	// Preset cell 2 to 0, copy PI 0 into it, majority with PI 1, output.
	p := prog(3, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},     // preset 0
		{A: isa.Cell(0), B: isa.Zero, Z: 2}, // copy
		{A: isa.Cell(1), B: isa.Zero, Z: 2}, // majority over old value
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	if !r.Clean() {
		t.Fatalf("expected clean, got violations %v dead %v", r.Violations, r.DeadWrites)
	}
	if r.TotalWrites != 3 || r.MaxCellWrites != 3 || r.CellsWritten != 1 {
		t.Fatalf("wear aggregates wrong: %+v", r)
	}
	if got := r.WriteCounts[2]; got != 3 {
		t.Fatalf("cell 2 static count = %d, want 3", got)
	}
}

func TestDefBeforeUseOperand(t *testing.T) {
	p := prog(4, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 3},
		{A: isa.Cell(2), B: isa.Zero, Z: 3}, // cell 2 never written, not a PI
	}, isa.PORef{Addr: 3})
	r := Program(p, Options{})
	if !hasCheck(r.Violations, CheckDefUse) {
		t.Fatalf("undefined operand read not caught: %+v", r.Violations)
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), CheckDefUse) {
		t.Fatalf("Err() should name the check: %v", r.Err())
	}
}

func TestDefBeforeUseDestination(t *testing.T) {
	// First touch of cell 2 is a copy, not a preset: RM3 x,#0→Z requires
	// Z = 0, i.e. it reads the destination's prior (undefined) value.
	p := prog(3, []isa.Instruction{
		{A: isa.Cell(0), B: isa.Zero, Z: 2},
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	if !hasCheck(r.Violations, CheckDefUse) {
		t.Fatalf("undefined destination read not caught: %+v", r.Violations)
	}
}

func TestPresetDefinesDestination(t *testing.T) {
	// Both preset polarities define Z without reading it.
	for _, ins := range []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.One, B: isa.Zero, Z: 2},
	} {
		r := Program(prog(3, []isa.Instruction{ins}, isa.PORef{Addr: 2}), Options{})
		if !r.OK() {
			t.Fatalf("%v should define its destination: %+v", ins, r.Violations)
		}
	}
	// Same-constant pairs are identities, not presets: they read Z.
	for _, ins := range []isa.Instruction{
		{A: isa.Zero, B: isa.Zero, Z: 2},
		{A: isa.One, B: isa.One, Z: 2},
	} {
		r := Program(prog(3, []isa.Instruction{ins}, isa.PORef{Addr: 2}), Options{})
		if !hasCheck(r.Violations, CheckDefUse) {
			t.Fatalf("%v reads its destination and should be flagged: %+v", ins, r.Violations)
		}
	}
}

func TestRangeViolations(t *testing.T) {
	p := prog(3, []isa.Instruction{
		{A: isa.Cell(7), B: isa.Zero, Z: 2}, // operand out of range
		{A: isa.Zero, B: isa.One, Z: 9},     // destination out of range
	}, isa.PORef{Addr: 8}) // PO out of range
	p.PICells = []uint32{0, 5} // PI out of range
	r := Program(p, Options{})
	var n int
	for _, v := range r.Violations {
		if v.Check == CheckRange {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("want 4 range violations, got %d: %+v", n, r.Violations)
	}
}

func TestPIOverlap(t *testing.T) {
	p := prog(3, nil, isa.PORef{Addr: 0})
	p.PICells = []uint32{1, 1}
	r := Program(p, Options{})
	if !hasCheck(r.Violations, CheckPIOverlap) {
		t.Fatalf("shared PI cell not caught: %+v", r.Violations)
	}
}

func TestDeadWriteOverwritten(t *testing.T) {
	// The copy into cell 2 is erased by a preset before anything reads it.
	p := prog(3, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.Cell(0), B: isa.Zero, Z: 2}, // dead: next event is a preset
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.Cell(1), B: isa.Zero, Z: 2},
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	if !r.OK() {
		t.Fatalf("unexpected hard violations: %+v", r.Violations)
	}
	if len(r.DeadWrites) != 1 || r.DeadWrites[0].Inst != 1 {
		t.Fatalf("want dead write at inst 1, got %+v", r.DeadWrites)
	}
}

func TestDeadWriteNeverRead(t *testing.T) {
	// Cell 2 is computed but is neither read nor an output.
	p := prog(4, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.One, B: isa.Zero, Z: 3},
	}, isa.PORef{Addr: 3})
	r := Program(p, Options{})
	if len(r.DeadWrites) != 1 || r.DeadWrites[0].Cell != 2 {
		t.Fatalf("want never-read dead write on cell 2, got %+v", r.DeadWrites)
	}
	if r.Clean() {
		t.Fatal("Clean() must be false with dead writes")
	}
	if !r.OK() {
		t.Fatal("dead writes are warnings, not hard violations")
	}
}

func TestNonPresetWriteConsumesPending(t *testing.T) {
	// A copy onto a pending write reads the old value first — not dead.
	p := prog(3, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.Cell(0), B: isa.Cell(1), Z: 2}, // majority reads inst 0's preset
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	if len(r.DeadWrites) != 0 {
		t.Fatalf("majority write consumes the pending preset: %+v", r.DeadWrites)
	}
}

func TestOutputLiveness(t *testing.T) {
	p := prog(4, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
	}, isa.PORef{Addr: 2}, isa.PORef{Addr: 3}) // PO 1 never computed
	r := Program(p, Options{})
	if !hasCheck(r.Violations, CheckLiveness) {
		t.Fatalf("missing output not caught: %+v", r.Violations)
	}
	// A PO on a PI cell is a legal passthrough.
	p2 := prog(2, nil, isa.PORef{Addr: 0})
	if r2 := Program(p2, Options{}); !r2.OK() {
		t.Fatalf("PI passthrough PO flagged: %+v", r2.Violations)
	}
}

func TestWearCap(t *testing.T) {
	insts := []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.Cell(0), B: isa.Zero, Z: 2},
		{A: isa.Cell(1), B: isa.Zero, Z: 2},
	}
	p := prog(3, insts, isa.PORef{Addr: 2})
	if r := Program(p, Options{MaxWrites: 3}); !r.OK() {
		t.Fatalf("cap 3 should pass with 3 writes: %+v", r.Violations)
	}
	r := Program(p, Options{MaxWrites: 2})
	if !hasCheck(r.Violations, CheckWearCap) {
		t.Fatalf("cap 2 should fail with 3 writes: %+v", r.Violations)
	}
}

func TestCheckWriteParity(t *testing.T) {
	p := prog(3, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	if !CheckWriteParity(r, []uint64{0, 0, 1}, "test") {
		t.Fatalf("matching counts flagged: %+v", r.Violations)
	}
	if CheckWriteParity(r, []uint64{0, 0, 2}, "test") || !hasCheck(r.Violations, CheckWriteCount) {
		t.Fatalf("diverging counts not flagged: %+v", r.Violations)
	}
	r2 := Program(p, Options{})
	if CheckWriteParity(r2, []uint64{1}, "test") || !hasCheck(r2.Violations, CheckWriteCount) {
		t.Fatalf("length mismatch not flagged: %+v", r2.Violations)
	}
}

func TestRenderSmoke(t *testing.T) {
	p := prog(3, []isa.Instruction{
		{A: isa.Zero, B: isa.One, Z: 2},
		{A: isa.Cell(0), B: isa.Zero, Z: 2},
	}, isa.PORef{Addr: 2})
	r := Program(p, Options{})
	var sb strings.Builder
	r.Render(&sb, RenderOptions{Endurance: 1e6, Verbose: true})
	out := sb.String()
	for _, want := range []string{"verify: OK", "lifetime", "dead writes: none", "cell    2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
