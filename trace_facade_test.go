package plim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestEngineTraceRecordsPipeline drives one compile through a tracing
// engine and checks the facade contract: TakeTrace harvests a span tree
// with the pipeline stages, exports valid Chrome trace-event JSON, renders
// a non-empty text tree and resets the accumulator.
func TestEngineTraceRecordsPipeline(t *testing.T) {
	eng := NewEngine(WithShrink(8), WithEffort(2), WithTrace(true))
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), m, Full); err != nil {
		t.Fatal(err)
	}

	tr := eng.TakeTrace()
	if tr == nil {
		t.Fatal("TakeTrace returned nil after a traced run")
	}
	spans := tr.Spans()
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		if sp.Dur < 0 {
			t.Fatalf("span %d (%s/%s) still open at export", sp.ID, sp.Kind, sp.Name)
		}
		if sp.Parent >= int32(len(spans)) {
			t.Fatalf("span %d has out-of-range parent %d", sp.ID, sp.Parent)
		}
	}
	for _, want := range []string{"call", "generate", "rewrite", "compile", "cache"} {
		if kinds[want] == 0 {
			t.Fatalf("no %s span recorded; got %v", want, kinds)
		}
	}

	// The Chrome export is the object form: traceEvents holds one complete
	// ("ph":"X") event per span.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("Chrome export does not parse: %v", err)
	}
	if len(chrome.TraceEvents) != len(spans) {
		t.Fatalf("Chrome export has %d events for %d spans", len(chrome.TraceEvents), len(spans))
	}
	for _, ev := range chrome.TraceEvents {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Fatalf("malformed Chrome event: %v", ev)
		}
	}

	if txt := tr.RenderString(); !strings.Contains(txt, "rewrite") || !strings.Contains(txt, "compile") {
		t.Fatalf("rendered tree misses pipeline stages:\n%s", txt)
	}
	if tot := tr.Totals(); len(tot) == 0 {
		t.Fatal("Totals is empty for a traced run")
	}

	// Harvesting resets: a second TakeTrace with no traced work is nil.
	if tr2 := eng.TakeTrace(); tr2 != nil {
		t.Fatalf("second TakeTrace returned %d spans, want nil", len(tr2.Spans()))
	}
}

// TestEngineUntracedStaysInert pins WithTrace's default: no trace is
// accumulated, and TakeTrace stays nil however much work runs.
func TestEngineUntracedStaysInert(t *testing.T) {
	eng := NewEngine(WithShrink(8), WithEffort(2))
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), m, Full); err != nil {
		t.Fatal(err)
	}
	if tr := eng.TakeTrace(); tr != nil {
		t.Fatalf("untraced engine accumulated %d spans", len(tr.Spans()))
	}
}
