package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plim"
	"plim/internal/trace"
)

// testServer builds a small fast engine (shrink 8) behind a Server and an
// httptest listener. The returned probe counts rewrite cycles and can gate
// the first one to hold a computation open while a test attaches more
// requests.
type testProbe struct {
	cycles   atomic.Int64
	compiles atomic.Int64
	gateOnce sync.Once
	started  chan struct{} // closed when the first gated cycle is reached
	release  chan struct{} // closing it lets the gated computation continue
	gated    atomic.Bool
}

func (p *testProbe) observe(ev plim.Event) {
	switch ev.(type) {
	case plim.EventRewriteCycle:
		p.cycles.Add(1)
		if p.gated.Load() {
			// Every gated cycle blocks (holding its scheduler worker) until
			// the test releases; the first one signals arrival.
			p.gateOnce.Do(func() { close(p.started) })
			<-p.release
		}
	case plim.EventCompileStart:
		p.compiles.Add(1)
	}
}

func newTestServer(t *testing.T, opts Options, engOpts ...plim.Option) (*Server, *httptest.Server, *testProbe) {
	t.Helper()
	p := &testProbe{started: make(chan struct{}), release: make(chan struct{})}
	t.Cleanup(func() {
		// Unblock a still-gated computation so no goroutine outlives the test.
		p.gateOnce.Do(func() {})
		select {
		case <-p.release:
		default:
			close(p.release)
		}
	})
	all := append([]plim.Option{
		plim.WithShrink(8),
		plim.WithEffort(2),
		plim.WithWorkers(2),
		plim.WithProgress(p.observe),
	}, engOpts...)
	eng := plim.NewEngine(all...)
	s := New(eng, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, p
}

func postJSON(t *testing.T, url string, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: want 503, got %d", resp.StatusCode)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []benchmarkJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(plim.Benchmarks()) {
		t.Fatalf("want %d benchmarks, got %d", len(plim.Benchmarks()), len(list))
	}
	if list[0].Name == "" || list[0].PI == 0 {
		t.Fatalf("benchmark entry not populated: %+v", list[0])
	}
}

func TestCompileWarmPathByteIdentical(t *testing.T) {
	_, ts, p := newTestServer(t, Options{})
	body := `{"benchmark":"ctrl","config":"full"}`
	resp1, b1 := postJSON(t, ts.URL+"/v1/compile", body, nil)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold: %d %s", resp1.StatusCode, b1)
	}
	if p.cycles.Load() == 0 {
		t.Fatal("cold compile ran no rewrite cycles")
	}
	cold := p.cycles.Load()
	resp2, b2 := postJSON(t, ts.URL+"/v1/compile", body, nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("warm response differs:\ncold: %s\nwarm: %s", b1, b2)
	}
	if got := p.cycles.Load(); got != cold {
		t.Fatalf("warm compile re-ran rewriting: %d cycles after cold's %d", got, cold)
	}
	if resp2.Header.Get("X-Plim-Coalesced") != "" {
		t.Fatal("sequential request marked coalesced")
	}
	var out compileResponse
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Instructions == 0 || out.RRAMs == 0 || out.Writes.Devices == 0 {
		t.Fatalf("implausible compile response: %+v", out)
	}
}

func TestCompileEmitsProgram(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	_, bAsm := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","emit":"asm"}`, nil)
	var outAsm compileResponse
	if err := json.Unmarshal(bAsm, &outAsm); err != nil {
		t.Fatal(err)
	}
	if outAsm.ProgramAsm == "" || len(outAsm.ProgramBinary) != 0 {
		t.Fatal("emit=asm did not return assembly only")
	}
	_, bBin := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","emit":"binary"}`, nil)
	var outBin compileResponse
	if err := json.Unmarshal(bBin, &outBin); err != nil {
		t.Fatal(err)
	}
	if len(outBin.ProgramBinary) == 0 {
		t.Fatal("emit=binary returned no program")
	}
	prog, err := plim.ReadProgram(bytes.NewReader(outBin.ProgramBinary))
	if err != nil {
		t.Fatalf("emitted binary does not parse: %v", err)
	}
	if prog2, err := plim.ReadProgramAsm(strings.NewReader(outAsm.ProgramAsm)); err != nil {
		t.Fatalf("emitted asm does not parse: %v", err)
	} else if prog2.NumInstructions() != prog.NumInstructions() {
		t.Fatal("asm and binary emissions disagree")
	}
}

func TestCoalescingSharesOneComputation(t *testing.T) {
	s, ts, p := newTestServer(t, Options{})
	p.gated.Store(true)
	body := `{"benchmark":"router","config":"full"}`

	const clients = 4
	type result struct {
		status    int
		body      []byte
		coalesced bool
	}
	results := make(chan result, clients)
	issue := func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			results <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		results <- result{resp.StatusCode, b, resp.Header.Get("X-Plim-Coalesced") == "1"}
	}
	go issue()
	<-p.started // the leader is mid-rewrite, holding the flight open
	for i := 1; i < clients; i++ {
		go issue()
	}
	// Wait until all followers have joined the flight, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.met.mu.Lock()
		joined := s.met.coalesced
		s.met.mu.Unlock()
		if joined == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced (%d joined)", joined)
		}
		time.Sleep(time.Millisecond)
	}
	close(p.release)

	var first []byte
	var coalesced int
	for i := 0; i < clients; i++ {
		r := <-results
		if r.status != 200 {
			t.Fatalf("client got %d: %s", r.status, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatal("coalesced clients received different bodies")
		}
		if r.coalesced {
			coalesced++
		}
	}
	if coalesced != clients-1 {
		t.Fatalf("want %d coalesced responses, got %d", clients-1, coalesced)
	}
	if got := p.compiles.Load(); got != 1 {
		t.Fatalf("thundering herd compiled %d times, want 1", got)
	}
	s.met.mu.Lock()
	flights := s.met.flights
	s.met.mu.Unlock()
	if flights != 1 {
		t.Fatalf("want 1 flight, got %d", flights)
	}
}

func TestAdmissionQueueFullReturns429(t *testing.T) {
	// One engine worker: the gated flight blocks the whole scheduler, so the
	// second admitted flight starves deterministically instead of finishing.
	s, ts, p := newTestServer(t, Options{Concurrency: 1, QueueDepth: 1}, plim.WithWorkers(1))
	p.gated.Store(true)

	type result struct {
		status int
		retry  string
	}
	results := make(chan result, 2)
	issue := func(cfg string) {
		resp, _ := postJSON(t, ts.URL+"/v1/compile", fmt.Sprintf(`{"benchmark":"router","config":%q}`, cfg), nil)
		results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}
	go issue("full") // occupies the single running seat, gated mid-rewrite
	<-p.started
	go issue("compiler21") // occupies the single queued seat
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queuedWaiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second computation never counted as queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: a third distinct computation must be rejected immediately.
	resp, body := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"router","config":"minwrite"}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without usable Retry-After (%q)", ra)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body not an error JSON: %s", body)
	}

	close(p.release) // drain: both admitted computations must finish fine
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != 200 {
			t.Fatalf("admitted request failed with %d", r.status)
		}
	}
}

func TestRequestDeadlineMapsTo504(t *testing.T) {
	_, ts, p := newTestServer(t, Options{})
	p.gated.Store(true)
	done := make(chan struct{})
	var status int
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"router","timeout_ms":150}`, nil)
		status = resp.StatusCode
	}()
	<-p.started
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadline never fired")
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d", status)
	}
	close(p.release)
}

func TestFollowerSurvivesLeaderDisconnect(t *testing.T) {
	s, ts, p := newTestServer(t, Options{})
	p.gated.Store(true)
	body := `{"benchmark":"router","config":"full"}`

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(leaderCtx, "POST", ts.URL+"/v1/compile", strings.NewReader(body))
		_, err := http.DefaultClient.Do(req)
		leaderDone <- err
	}()
	<-p.started

	followerDone := make(chan result2, 1)
	go func() {
		resp, b := postJSON(t, ts.URL+"/v1/compile", body, nil)
		followerDone <- result2{resp.StatusCode, b}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.met.mu.Lock()
		joined := s.met.coalesced
		s.met.mu.Unlock()
		if joined == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader() // the client that started the computation goes away
	if err := <-leaderDone; err == nil {
		t.Fatal("leader request unexpectedly succeeded after cancel")
	}
	// The computation is still gated, so the leader's handler can only exit
	// through its cancelled context — which must be metered as a
	// client-closed request (499), not a success.
	deadline = time.Now().Add(5 * time.Second)
	for {
		s.met.mu.Lock()
		closed := s.met.requests["compile|499"]
		s.met.mu.Unlock()
		if closed == 1 {
			break
		}
		if time.Now().After(deadline) {
			s.met.mu.Lock()
			t.Fatalf("leader disconnect was not metered as 499; requests=%v", s.met.requests)
		}
		time.Sleep(time.Millisecond)
	}
	close(p.release)
	r := <-followerDone
	if r.status != 200 {
		t.Fatalf("follower got %d after leader disconnect: %s", r.status, r.body)
	}
}

func TestComputationPanicFailsOneFlightNotTheServer(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{})
	f, leader := s.flights.join("panic-key")
	if !leader {
		t.Fatal("unexpected existing flight")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.flights.setCancel(f, cancel)
	go s.runFlight(ctx, cancel, f, nil, trace.Handle{}, func(context.Context, func(plim.Event)) response {
		panic("compiler invariant violated")
	})
	resp, err := f.wait(context.Background())
	s.flights.leave(f)
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusInternalServerError {
		t.Fatalf("want 500 from panicking flight, got %d", resp.status)
	}
	var e errorResponse
	if err := json.Unmarshal(resp.body, &e); err != nil || !strings.Contains(e.Error, "panicked") {
		t.Fatalf("panic not surfaced in body: %s", resp.body)
	}
	// The daemon survived: a normal request still works.
	if resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl"}`, nil); resp.StatusCode != 200 {
		t.Fatalf("server unusable after flight panic: %d %s", resp.StatusCode, b)
	}
}

type result2 struct {
	status int
	body   []byte
}

func TestSSEStreamsProgressAndResult(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	body := `{"benchmark":"ctrl","config":"full"}`

	req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", strings.NewReader(body))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("SSE request: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := map[string]int{}
	var resultData []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var current string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events[current]++
		case strings.HasPrefix(line, "data: ") && current == "result":
			resultData = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["rewrite_cycle"] == 0 || events["compile_start"] != 1 || events["compile_done"] != 1 {
		t.Fatalf("unexpected event mix: %v", events)
	}
	if events["result"] != 1 {
		t.Fatalf("want exactly one result event, got %v", events)
	}

	// The streamed result must equal the plain JSON response (served warm
	// now, hence byte-identical by the caching contract).
	respPlain, plain := postJSON(t, ts.URL+"/v1/compile", body, nil)
	if respPlain.StatusCode != 200 {
		t.Fatalf("plain request: %d", respPlain.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(resultData), bytes.TrimSpace(plain)) {
		t.Fatalf("SSE result differs from JSON response:\nsse:  %s\njson: %s", resultData, plain)
	}
}

func TestRewriteEndpointRoundTrips(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	eng := plim.NewEngine(plim.WithShrink(8))
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	var netlist bytes.Buffer
	if err := m.Write(&netlist); err != nil {
		t.Fatal(err)
	}
	reqBody, _ := json.Marshal(computeRequest{Netlist: netlist.String(), Kind: "alg1"})
	resp, b := postJSON(t, ts.URL+"/v1/rewrite", string(reqBody), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("rewrite: %d %s", resp.StatusCode, b)
	}
	var out rewriteResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "algorithm1" || out.Stats.NodesBefore == 0 {
		t.Fatalf("implausible rewrite response: %+v", out.Stats)
	}
	rm, err := plim.ReadMIG(strings.NewReader(out.MIG))
	if err != nil {
		t.Fatalf("returned netlist does not parse: %v", err)
	}
	eq, err := plim.Equivalent(m, rm, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equivalent {
		t.Fatal("rewritten netlist is not equivalent to the input")
	}
}

func TestSuiteEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, b := postJSON(t, ts.URL+"/v1/suite", `{"benchmarks":["ctrl","router"],"configs":["naive","full"]}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("suite: %d %s", resp.StatusCode, b)
	}
	var out suiteResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 || len(out.Configs) != 2 || len(out.Reports) != 2 {
		t.Fatalf("wrong matrix shape: %d benchmarks, %d configs, %d rows",
			len(out.Benchmarks), len(out.Configs), len(out.Reports))
	}
	for b, row := range out.Reports {
		if len(row) != 2 {
			t.Fatalf("row %d has %d cells", b, len(row))
		}
		for c, cell := range row {
			if cell.Instructions == 0 || cell.RRAMs == 0 {
				t.Fatalf("empty report at [%d][%d]", b, c)
			}
		}
	}
	// The naive column must not have rewritten; the full column must have.
	if out.Reports[0][0].Rewrite.Cycles != 0 {
		t.Fatal("naive config reports rewrite cycles")
	}
	if out.Reports[0][1].Rewrite.Cycles == 0 {
		t.Fatal("full config reports no rewrite cycles")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	cases := []struct {
		name, path, body string
	}{
		{"no source", "/v1/compile", `{}`},
		{"both sources", "/v1/compile", `{"benchmark":"ctrl","netlist":"model x\n"}`},
		{"unknown benchmark", "/v1/compile", `{"benchmark":"nope"}`},
		{"unknown config", "/v1/compile", `{"benchmark":"ctrl","config":"turbo"}`},
		{"bad cap suffix", "/v1/compile", `{"benchmark":"ctrl","config":"full+capx"}`},
		{"conflicting caps", "/v1/compile", `{"benchmark":"ctrl","config":"full+cap10","cap":20}`},
		{"unknown emit", "/v1/compile", `{"benchmark":"ctrl","emit":"hex"}`},
		{"negative timeout", "/v1/compile", `{"benchmark":"ctrl","timeout_ms":-1}`},
		{"bad netlist", "/v1/compile", `{"netlist":"not a netlist"}`},
		{"netlist with shrink", "/v1/compile", `{"netlist":"model x\n","shrink":4}`},
		{"unknown field", "/v1/compile", `{"benchmark":"ctrl","frobnicate":1}`},
		{"bad json", "/v1/compile", `{"benchmark"`},
		{"unknown kind", "/v1/rewrite", `{"benchmark":"ctrl","kind":"alg9"}`},
		{"suite with netlist", "/v1/suite", `{"netlist":"model x\n"}`},
		{"suite unknown bench", "/v1/suite", `{"benchmarks":["nope"]}`},
		{"suite foreign shrink", "/v1/suite", `{"shrink":3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("want 400, got %d: %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON: %s", body)
			}
		})
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	if resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl"}`, nil); resp.StatusCode != 200 {
		t.Fatalf("compile: %d %s", resp.StatusCode, b)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`plimserve_requests_total{route="compile",code="200"} 1`,
		`plimserve_request_seconds_count{route="compile"} 1`,
		`plimserve_flights_total 1`,
		`plimserve_coalesced_requests_total 0`,
		`plimserve_admission_rejected_total 0`,
		`plimserve_progress_events_total{type="compile_done"} 1`,
		`plimserve_cache_memory_entries{kind="benchmark"} 1`,
		`plimserve_cache_memory_entries{kind="rewrite"} 1`,
		`plimserve_inflight_computations 0`,
		`plimserve_sched_runnable_tasks 0`,
		`plimserve_sched_worker_steals_total{worker="0"}`,
		`plimserve_sched_task_seconds_count{kind="rewrite"} 1`,
		`plimserve_sched_task_seconds_count{kind="compile"} 1`,
		`plimserve_sched_task_seconds_bucket{kind="compile",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestMetricsIncludeDiskTier(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{}, plim.WithPersistentCache(t.TempDir()))
	if resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl"}`, nil); resp.StatusCode != 200 {
		t.Fatalf("compile: %d %s", resp.StatusCode, b)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`plimserve_cache_disk_misses_total{kind="rewrite"} 1`,
		`plimserve_cache_disk_stores_total`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestCompileVerifyFlag(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{}, plim.WithVerify(true))

	// Without the flag the report is absent.
	_, plain := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full"}`, nil)
	var outPlain compileResponse
	if err := json.Unmarshal(plain, &outPlain); err != nil {
		t.Fatal(err)
	}
	if outPlain.Verification != nil {
		t.Fatal("verification present without verify=true")
	}

	resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full","verify":true}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("verify=true: %d %s", resp.StatusCode, b)
	}
	var out compileResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	v := out.Verification
	if v == nil {
		t.Fatalf("no verification in response: %s", b)
	}
	if !v.OK || len(v.Violations) != 0 {
		t.Fatalf("compiler output must verify clean: %+v", v)
	}
	if v.TotalWrites == 0 || v.MaxCellWrites == 0 || v.CellsWritten == 0 || v.Fingerprint == "" {
		t.Fatalf("implausible verification report: %+v", v)
	}
	// Static parity with the allocator's summary in the same response.
	if v.TotalWrites != out.Writes.Total || v.MaxCellWrites != out.Writes.Max {
		t.Fatalf("static counts diverge from allocator summary: %+v vs %+v", v, out.Writes)
	}

	// verify=true and verify=false must not coalesce into one response
	// shape: the flag is part of the flight key, so the warm path stays
	// byte-identical per variant.
	_, b2 := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full","verify":true}`, nil)
	if !bytes.Equal(b, b2) {
		t.Fatalf("warm verified response differs:\n%s\nvs\n%s", b, b2)
	}
}

// TestCompileVerifyWithoutEngineVerify covers the handler-side fallback:
// the engine did not verify (rep.Verify == nil), so the handler runs the
// checker itself, including allocator write parity.
func TestCompileVerifyWithoutEngineVerify(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, b := postJSON(t, ts.URL+"/v1/compile", `{"benchmark":"ctrl","config":"full+cap50","verify":true}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("%d %s", resp.StatusCode, b)
	}
	var out compileResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Verification == nil || !out.Verification.OK {
		t.Fatalf("expected a clean fallback verification: %s", b)
	}
}
