// Package compile translates Majority-Inverter Graphs into PLiM RM3
// programs, implementing both the baseline compiler of Soeken et al.
// (DAC 2016, [21] in the paper) and the endurance-aware compilation of
// Shirinzadeh et al. (DATE 2017).
//
// Compilation walks the MIG bottom-up. At every step a "candidate" node
// (one whose children are all computed) is selected by the configured
// policy, translated into one or more RM3 instructions, and the devices of
// children that die are returned to the allocator:
//
//   - Selection NodeOrder compiles nodes in construction (topological id)
//     order — the paper's naive baseline, which only benefits from node
//     translation.
//   - Selection Standard prefers the candidate releasing the most devices,
//     breaking ties toward the smallest fanout level index ([21]).
//   - Selection Endurance reverses the priorities (paper Algorithm 3):
//     smallest fanout level index first — the candidate whose value will be
//     consumed soonest, i.e. the shortest storage duration — then the most
//     releasing devices.
//
// Node translation chooses how the three child values map onto the RM3
// operand slots (A is read directly, B is read and inverted by the
// operation, Z is the overwritten destination) by enumerating all six
// assignments and picking the cheapest, reproducing the paper's cost model:
// an ideal node — exactly one complemented fanin and a dying, cap-legal
// uncomplemented fanin for the destination — costs a single instruction;
// every violation costs two extra instructions and one extra device
// (a preset plus an inverted or plain copy).
package compile

import (
	"fmt"

	"plim/internal/alloc"
	"plim/internal/cost"
	"plim/internal/isa"
	"plim/internal/mig"
)

// Selection chooses the node-selection policy.
type Selection uint8

// Selection policies.
const (
	NodeOrder Selection = iota // naive: topological id order
	Standard                   // [21]: max releasing devices, then min fanout level
	Endurance                  // DATE'17 Algorithm 3: min fanout level, then max releasing
)

// String names the policy.
func (s Selection) String() string {
	switch s {
	case NodeOrder:
		return "node-order"
	case Standard:
		return "standard"
	case Endurance:
		return "endurance"
	}
	return "?"
}

// Options configures compilation. The zero value is the paper's default
// behaviour apart from the selection policy and allocator, which each
// configuration names explicitly.
type Options struct {
	Selection Selection
	Alloc     alloc.Kind
	// MaxWrites is the per-device write cap of the "maximum write count
	// strategy"; 0 disables it. Values 1–3 cannot express a preset+copy+RM3
	// sequence and are rejected.
	MaxWrites uint64
	// KeepComplementedPOs leaves complemented primary outputs as a negated
	// read instead of materializing the inverted value (2 instructions and
	// 1 device each). The paper's cost model materializes them.
	KeepComplementedPOs bool
	// PinPIs prevents primary-input devices from being recycled after their
	// last use. The paper reuses them (its #R figures are below
	// #PI + #PO + workspace otherwise).
	PinPIs bool
	// CostModel, when non-nil, prices every emitted instruction as it is
	// allocated: the Result gains an exact per-run Cost accumulated at the
	// emission sites, alongside the allocator's write bookkeeping. Costing
	// never changes which program is compiled.
	CostModel *cost.Model
}

// Result is a compiled program plus the endurance bookkeeping the paper's
// tables report.
type Result struct {
	Program *isa.Program
	// WriteCounts is the per-device write count of one program execution,
	// including never-written (e.g. input-only) devices. Statistics over
	// this slice are the paper's STDEV/min/max columns.
	WriteCounts []uint64
	// NumInstructions is the paper's #I.
	NumInstructions int
	// NumRRAMs is the paper's #R: every device the program ever allocated.
	NumRRAMs int
	// Cost is the per-run price of the program under Options.CostModel,
	// accumulated instruction by instruction at the emission sites (the
	// allocator-side accounting the verifier's static cost must match);
	// nil when no model was configured.
	Cost *cost.Cost
}

// Compile translates m into a PLiM program, drawing scratch state from the
// package's shared pool.
func Compile(m *mig.MIG, opts Options) (*Result, error) {
	return CompileWith(m, opts, defaultScratchPool)
}

// CompileWith is Compile with an explicit scratch pool: the per-node tables,
// candidate heap, instruction buffer and device allocator are acquired from
// pool and returned to it when compilation finishes, so a hot caller (the
// staged per-configuration fan-out) performs O(1) graph-sized allocations
// per compilation. A nil pool disables reuse and compiles on fresh scratch.
// The returned Result is always private to the caller — nothing in it
// aliases pooled memory.
func CompileWith(m *mig.MIG, opts Options, pool *ScratchPool) (*Result, error) {
	if opts.MaxWrites > 0 && opts.MaxWrites < 4 {
		return nil, fmt.Errorf("compile: max-write cap %d cannot fit a preset+copy+RM3 sequence; use 0 or ≥4", opts.MaxWrites)
	}
	sc := pool.get(m.NumNodes())
	res, err := compileOn(m, opts, sc)
	// The scratch returns to the pool on every path: after an error its
	// contents are garbage, but acquisition re-sizes and clears every table.
	pool.put(sc)
	return res, err
}

func compileOn(m *mig.MIG, opts Options, sc *compileScratch) (*Result, error) {
	c := newCompiler(m, opts, sc)
	// Buffers that grow by append live on the compiler; hand their grown
	// capacity back to the scratch whichever way compilation ends.
	defer func() {
		sc.insts = c.insts[:0]
		sc.heapEntries = c.heap.entries[:0]
	}()
	if err := c.run(); err != nil {
		return nil, err
	}
	prog := &isa.Program{
		Name:     m.Name,
		Insts:    append([]isa.Instruction(nil), c.insts...), //plim:alloc-ok result copy, once per compile
		NumCells: uint32(c.alloc.NumCells()),
		PICells:  append([]uint32(nil), c.piCells...), //plim:alloc-ok result copy, once per compile
		POs:      append([]isa.PORef(nil), c.pos...),  //plim:alloc-ok result copy, once per compile
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compile: emitted invalid program: %w", err)
	}
	res := &Result{
		Program:         prog,
		WriteCounts:     c.alloc.WriteCounts(),
		NumInstructions: len(prog.Insts),
		NumRRAMs:        c.alloc.NumCells(),
	}
	if m := opts.CostModel; m != nil {
		rc := m.FromCounts(c.costOps, c.alloc.MaxWear())
		res.Cost = &rc
	}
	return res, nil
}

type compiler struct {
	m     *mig.MIG
	opts  Options
	sc    *compileScratch
	alloc *alloc.Allocator

	insts   []isa.Instruction
	piCells []uint32
	pos     []isa.PORef

	// cell[n] is the device currently holding node n's value.
	cell []uint32
	// remaining[n] counts outstanding uses of node n's value: one per
	// parent edge plus one pin per primary output it drives. When it drops
	// to zero the device is released.
	remaining []int32
	// computed[n] marks nodes whose value is materialized.
	computed []bool
	// foLevel[n] is the fanout level index: the level of the last consumer
	// (max over parents; PO consumers count as depth+1). It is the storage
	// duration proxy both selection policies use.
	foLevel []int32
	// level[n] is the node's own level.
	level []int32
	live  []bool

	// pending[n] counts distinct majority children of n not yet computed.
	pending []int32
	// The distinct majority parents of node n are
	// parentBuf[parentOff[n]:parentOff[n+1]], in ascending parent order
	// (the order the old per-node slices accumulated them in).
	parentOff []int32
	parentBuf []mig.NodeID

	heap candidateHeap

	// invPOCells memoizes materialized inverted PO values per node (created
	// lazily — most graphs have no complemented POs left after rewriting),
	// and constPOCells the two constant PO cells.
	invPOCells   map[mig.NodeID]uint32
	constPOCells [2]int64

	// costOps counts emitted instructions per cost class when
	// opts.CostModel is set; per-cell weighted wear rides the allocator
	// (NoteWear next to NoteWrite).
	costOps cost.Counts
}

// parentsOf returns the distinct majority parents of node n.
func (c *compiler) parentsOf(n mig.NodeID) []mig.NodeID {
	return c.parentBuf[c.parentOff[n]:c.parentOff[n+1]]
}

func newCompiler(m *mig.MIG, opts Options, sc *compileScratch) *compiler {
	n := m.NumNodes()
	sc.alloc.Reset(opts.Alloc, opts.MaxWrites)
	sc.cell = growClear(sc.cell, n)
	sc.remaining = growClear(sc.remaining, n)
	sc.computed = growClear(sc.computed, n)
	sc.foLevel = growClear(sc.foLevel, n)
	sc.pending = growClear(sc.pending, n)
	sc.parentOff = growClear(sc.parentOff, n+1)
	sc.live = m.LiveNodesInto(sc.live)
	if sc.invPOCells != nil {
		clear(sc.invPOCells)
	}
	c := &compiler{
		m:          m,
		opts:       opts,
		sc:         sc,
		alloc:      &sc.alloc,
		cell:       sc.cell,
		remaining:  sc.remaining,
		computed:   sc.computed,
		foLevel:    sc.foLevel,
		pending:    sc.pending,
		parentOff:  sc.parentOff,
		live:       sc.live,
		insts:      sc.insts[:0],
		invPOCells: sc.invPOCells,
	}
	c.heap.entries = sc.heapEntries[:0]
	c.constPOCells[0] = -1
	c.constPOCells[1] = -1

	var depth int32
	c.level, depth = m.LevelsInto(sc.level)
	sc.level = c.level

	// Uses, fanout levels, pending counts and parent-list sizes over the
	// live subgraph, in one sweep: the duplicate-child scan both dedups the
	// parent edge and classifies it (majority children feed pending).
	// parentOff[cn+1] accumulates node cn's distinct-parent count so the
	// prefix sum below turns it into CSR offsets.
	m.ForEachMaj(func(p mig.NodeID, ch [3]mig.Signal) {
		if !c.live[p] {
			return
		}
		pendingCnt := int32(0)
		for i, s := range ch {
			cn := s.Node()
			if cn == 0 {
				continue // constants are free operands, not devices
			}
			c.remaining[cn]++
			if c.foLevel[cn] < c.level[p] {
				c.foLevel[cn] = c.level[p]
			}
			dup := false
			for j := 0; j < i; j++ {
				if ch[j].Node() == cn {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			c.parentOff[cn+1]++
			if c.m.IsMaj(cn) {
				pendingCnt++
			}
		}
		// pending = distinct maj children not yet computed.
		c.pending[p] = pendingCnt
	})

	// Prefix-sum the counts into offsets and fill the flattened adjacency;
	// sweeping parents in ascending order reproduces the append order of
	// the former per-node slices.
	for i := 0; i < n; i++ {
		c.parentOff[i+1] += c.parentOff[i]
	}
	sc.parentCur = growClear(sc.parentCur, n)
	cur := sc.parentCur
	copy(cur, c.parentOff[:n])
	sc.parentBuf = grow(sc.parentBuf, int(c.parentOff[n]))
	c.parentBuf = sc.parentBuf
	m.ForEachMaj(func(p mig.NodeID, ch [3]mig.Signal) {
		if !c.live[p] {
			return
		}
		for i, s := range ch {
			cn := s.Node()
			if cn == 0 {
				continue
			}
			dup := false
			for j := 0; j < i; j++ {
				if ch[j].Node() == cn {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			c.parentBuf[cur[cn]] = p
			cur[cn]++
		}
	})

	// Primary outputs pin their drivers and extend storage duration to the
	// end of the program.
	for i := 0; i < m.NumPOs(); i++ {
		po := m.PO(i)
		pn := po.Node()
		if pn == 0 {
			continue
		}
		c.remaining[pn]++ // permanent pin: never decremented
		if c.foLevel[pn] < depth+1 {
			c.foLevel[pn] = depth + 1
		}
	}
	return c
}

func (c *compiler) run() error {
	m := c.m

	// Primary inputs occupy the first devices, preloaded with data (no
	// write pulses). Unused inputs release after all assignments — not
	// during them, or the allocator would hand the same device to two
	// inputs.
	c.sc.piCells = grow(c.sc.piCells, m.NumPIs())
	c.piCells = c.sc.piCells
	for i := 0; i < m.NumPIs(); i++ {
		pn := m.PINode(i)
		addr := c.alloc.Acquire(0)
		c.piCells[i] = addr
		c.cell[pn] = addr
		c.computed[pn] = true
		if c.opts.PinPIs {
			c.remaining[pn]++
		}
	}
	for i := 0; i < m.NumPIs(); i++ {
		pn := m.PINode(i)
		if c.remaining[pn] == 0 {
			c.alloc.Release(c.piCells[i])
		}
	}

	// Seed candidates: live majority nodes whose children are all PIs or
	// constants.
	c.heap.policy = c.opts.Selection
	m.ForEachMaj(func(n mig.NodeID, _ [3]mig.Signal) {
		if c.live[n] && c.pending[n] == 0 {
			c.push(n)
		}
	})

	compiledAny := true
	for compiledAny {
		compiledAny = false
		for c.heap.Len() > 0 {
			n, ok := c.popBest()
			if !ok {
				continue
			}
			if err := c.translate(n); err != nil {
				return err
			}
			compiledAny = true
			// Unblock parents.
			for _, p := range c.parentsOf(n) {
				c.pending[p]--
				if c.pending[p] == 0 && c.live[p] {
					c.push(p)
				}
			}
		}
	}

	// Every live majority node must have been computed.
	for i := 0; i < m.NumNodes(); i++ {
		n := mig.NodeID(i)
		if c.live[n] && m.IsMaj(n) && !c.computed[n] {
			return fmt.Errorf("compile: node %d never became computable (cycle or bug)", n)
		}
	}
	return c.finalizePOs()
}

// finalizePOs materializes primary outputs: constants get preset devices,
// complemented outputs get inverted copies (unless KeepComplementedPOs).
func (c *compiler) finalizePOs() error {
	m := c.m
	c.sc.pos = grow(c.sc.pos, m.NumPOs())
	c.pos = c.sc.pos
	for i := 0; i < m.NumPOs(); i++ {
		po := m.PO(i)
		pn := po.Node()
		if pn == 0 {
			v := po.Complemented() // Const1 is the complement of node 0
			idx := 0
			if v {
				idx = 1
			}
			if c.constPOCells[idx] < 0 {
				addr := c.alloc.Acquire(1)
				c.emitPreset(addr, v)
				c.constPOCells[idx] = int64(addr)
			}
			c.pos[i] = isa.PORef{Addr: uint32(c.constPOCells[idx])}
			continue
		}
		if !c.computed[pn] {
			return fmt.Errorf("compile: PO %d driver %d not computed", i, pn)
		}
		src := c.cell[pn]
		if !po.Complemented() {
			c.pos[i] = isa.PORef{Addr: src}
			continue
		}
		if c.opts.KeepComplementedPOs {
			c.pos[i] = isa.PORef{Addr: src, Neg: true}
			continue
		}
		addr, ok := c.invPOCells[pn]
		if !ok {
			addr = c.alloc.Acquire(2)
			c.emitPreset(addr, true)
			c.emit(isa.Instruction{A: isa.Zero, B: isa.Cell(src), Z: addr}) // ⟨0 v̄ 1⟩ = v̄
			if c.invPOCells == nil {
				//plim:alloc-ok lazy, at most once per compile, only for complemented POs
				c.invPOCells = make(map[mig.NodeID]uint32)
				c.sc.invPOCells = c.invPOCells
			}
			c.invPOCells[pn] = addr
		}
		c.pos[i] = isa.PORef{Addr: addr}
	}
	return nil
}

func (c *compiler) emit(ins isa.Instruction) {
	c.insts = append(c.insts, ins)
	c.alloc.NoteWrite(ins.Z, 1)
	if m := c.opts.CostModel; m != nil {
		op := cost.Classify(ins)
		c.costOps.Note(op)
		c.alloc.NoteWear(ins.Z, m.Of(op).Wear)
	}
}

// emitPreset writes constant v into addr: RM3 #0,#1 (→0) or RM3 #1,#0 (→1).
func (c *compiler) emitPreset(addr uint32, v bool) {
	if v {
		c.emit(isa.Instruction{A: isa.One, B: isa.Zero, Z: addr})
	} else {
		c.emit(isa.Instruction{A: isa.Zero, B: isa.One, Z: addr})
	}
}
