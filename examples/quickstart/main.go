// Quickstart: build a small function, compile it with the paper's full
// endurance management, execute it inside the simulated RRAM crossbar, and
// inspect the write traffic.
package main

import (
	"context"
	"fmt"
	"log"

	"plim"
)

func main() {
	// A 4-bit incrementer built with the word-level builder.
	b := plim.NewBuilder("inc4")
	x := b.Input("x", 4)
	sum, carry := b.Add(x, b.Const(1, 4), plim.Const0)
	b.Output("y", sum)
	b.OutputBit("ovf", carry)

	// Rewrite (Algorithm 2) + compile (Algorithm 3 selection + min-write
	// allocation) — the paper's "full" configuration. The engine defaults
	// to the paper's rewriting effort (plim.WithEffort(plim.DefaultEffort)).
	eng := plim.NewEngine()
	rep, err := eng.Run(context.Background(), b.M, plim.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d RM3 instructions on %d RRAM devices\n",
		b.M.Name, rep.NumInstructions(), rep.NumRRAMs())
	fmt.Printf("write balance: min=%d max=%d stdev=%.2f\n",
		rep.Writes.Min, rep.Writes.Max, rep.Writes.StdDev)

	// Execute on the crossbar: 7 + 1 = 8.
	out, xbar, err := plim.Execute(rep.Result.Program, []bool{true, true, true, false})
	if err != nil {
		log.Fatal(err)
	}
	val := 0
	for i := 0; i < 4; i++ {
		if out[i] {
			val |= 1 << i
		}
	}
	fmt.Printf("7 + 1 = %d (overflow=%v)\n", val, out[4])

	reads, writes, cycles := xbar.Totals()
	fmt.Printf("crossbar: %d reads, %d write pulses, %d controller cycles\n", reads, writes, cycles)
	fmt.Printf("lifetime at endurance 10^10: %d executions\n", rep.Lifetime(1e10))
}
