// Package hotpath is a lint fixture: Hot is the hot-path root; everything
// reachable from it must be allocation-free. The CI lint job asserts that
// plimlint FAILS on this package — proving the analyzer still bites.
package hotpath

import "sort"

// Hot is the fixture's hot-path root.
func Hot(xs []int) int {
	m := newState() // want: make(map)
	return helper(xs) + len(m) + (&thing{}).method(xs)
}

func newState() map[int]int {
	return make(map[int]int) // want: make(map) allocates
}

func helper(xs []int) int {
	ys := append([]int(nil), xs...) // want: append onto a fresh slice
	sort.Ints(ys)                   // want: sort call boxes
	var v any = any(len(ys))        // want: conversion to any
	_ = v
	//plim:alloc-ok fixture: the directive must suppress this line
	ok := append([]int(nil), xs...)
	return len(ok)
}

type thing struct{}

func (t *thing) method(xs []int) int {
	lut := map[int]bool{1: true} // want: map literal
	_ = lut
	return len(xs)
}

// Cold is NOT reachable from Hot: its allocations must not be flagged.
func Cold() map[string]int {
	return map[string]int{"free": 1}
}
