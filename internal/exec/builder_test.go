package exec

import (
	"slices"
	"testing"
)

// TestBuilderMatchesPackStrings: incremental packing is equivalent to the
// one-shot constructor across chunk-boundary sizes, including Hash (the
// coalescing key), so streamed and buffered requests coalesce.
func TestBuilderMatchesPackStrings(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		vecs := make([]string, n)
		for v := range vecs {
			buf := make([]byte, 7)
			for i := range buf {
				buf[i] = '0' + byte((v>>uint(i%3)+i*v)&1)
			}
			vecs[v] = string(buf)
		}
		want, err := PackStrings(vecs)
		if err != nil {
			t.Fatal(err)
		}
		bu := NewBuilder()
		for _, vec := range vecs {
			if err := bu.AddString(vec); err != nil {
				t.Fatal(err)
			}
		}
		got := bu.Batch()
		if got.Len() != n || got.Lines() != 7 || got.Chunks() != want.Chunks() {
			t.Fatalf("n=%d: dimensions %d×%d/%d", n, got.Lines(), got.Len(), got.Chunks())
		}
		if got.Hash() != want.Hash() || !slices.Equal(got.Strings(), want.Strings()) {
			t.Fatalf("n=%d: builder batch diverges from PackStrings", n)
		}
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	bu := NewBuilder()
	if err := bu.AddString("010"); err != nil {
		t.Fatal(err)
	}
	if err := bu.AddString("0101"); err == nil {
		t.Fatal("ragged vector accepted")
	}
	bu = NewBuilder()
	if err := bu.AddString("01x"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestBuilderEmpty(t *testing.T) {
	b := NewBuilder().Batch()
	if b.Len() != 0 || b.Lines() != 0 || b.Chunks() != 0 {
		t.Fatalf("empty builder batch: %d×%d", b.Lines(), b.Len())
	}
}
