package rewrite

import (
	"math/rand"
	"testing"

	"plim/internal/mig"
)

// evalWords evaluates one word per PO on patterns enumerating all 2^n
// assignments (n ≤ 6).
func truthTables(m *mig.MIG) []uint64 {
	n := m.NumPIs()
	in := make([]uint64, n)
	for v := 0; v < n; v++ {
		in[v] = mig.ExhaustivePattern(v, 0)
	}
	out := m.Eval(in)
	if n < 6 {
		mask := uint64(1)<<(1<<uint(n)) - 1
		for i := range out {
			out[i] &= mask
		}
	}
	return out
}

// TestAxiomTruthTables proves each implemented identity over full truth
// tables, independent of the pass machinery.
func TestAxiomTruthTables(t *testing.T) {
	t.Run("OmegaA", func(t *testing.T) {
		m := mig.New("a")
		x := m.AddPI("x")
		u := m.AddPI("u")
		y := m.AddPI("y")
		z := m.AddPI("z")
		lhs := m.RawMaj(x, u, m.RawMaj(y, u, z))
		rhs := m.RawMaj(z, u, m.RawMaj(y, u, x))
		m.AddPO(lhs, "l")
		m.AddPO(rhs, "r")
		tt := truthTables(m)
		if tt[0] != tt[1] {
			t.Fatalf("Ω.A violated: %016x vs %016x", tt[0], tt[1])
		}
	})
	t.Run("OmegaD", func(t *testing.T) {
		m := mig.New("d")
		x := m.AddPI("x")
		y := m.AddPI("y")
		u := m.AddPI("u")
		v := m.AddPI("v")
		z := m.AddPI("z")
		lhs := m.RawMaj(m.RawMaj(x, y, u), m.RawMaj(x, y, v), z)
		rhs := m.RawMaj(x, y, m.RawMaj(u, v, z))
		m.AddPO(lhs, "l")
		m.AddPO(rhs, "r")
		tt := truthTables(m)
		if tt[0] != tt[1] {
			t.Fatalf("Ω.D violated")
		}
	})
	t.Run("PsiC", func(t *testing.T) {
		m := mig.New("p")
		x := m.AddPI("x")
		u := m.AddPI("u")
		y := m.AddPI("y")
		z := m.AddPI("z")
		lhs := m.RawMaj(x, u, m.RawMaj(y, u.Not(), z))
		rhs := m.RawMaj(x, u, m.RawMaj(y, x, z))
		m.AddPO(lhs, "l")
		m.AddPO(rhs, "r")
		tt := truthTables(m)
		if tt[0] != tt[1] {
			t.Fatalf("Ψ.C violated: the identity must replace ū by x")
		}
	})
	t.Run("PsiC_PaperTypoIsWrong", func(t *testing.T) {
		// The DATE'17 PDF renders Ψ.C as ⟨x u ⟨y x̄ z⟩⟩ = ⟨x u ⟨y x z⟩⟩,
		// which is not a tautology; this test documents why we deviate.
		m := mig.New("p")
		x := m.AddPI("x")
		u := m.AddPI("u")
		y := m.AddPI("y")
		z := m.AddPI("z")
		lhs := m.RawMaj(x, u, m.RawMaj(y, x.Not(), z))
		rhs := m.RawMaj(x, u, m.RawMaj(y, x, z))
		m.AddPO(lhs, "l")
		m.AddPO(rhs, "r")
		tt := truthTables(m)
		if tt[0] == tt[1] {
			t.Fatalf("the garbled paper identity unexpectedly holds; revisit the transcription note")
		}
	})
	t.Run("OmegaI", func(t *testing.T) {
		m := mig.New("i")
		x := m.AddPI("x")
		y := m.AddPI("y")
		z := m.AddPI("z")
		m.AddPO(m.RawMaj(x.Not(), y.Not(), z.Not()), "l")
		m.AddPO(m.RawMaj(x, y, z).Not(), "r")
		m.AddPO(m.RawMaj(x.Not(), y.Not(), z), "l2")
		m.AddPO(m.RawMaj(x, y, z.Not()).Not(), "r2")
		tt := truthTables(m)
		if tt[0] != tt[1] {
			t.Fatalf("Ω.I rule (1) violated")
		}
		if tt[2] != tt[3] {
			t.Fatalf("Ω.I rules (2)/(3) violated")
		}
	})
}

// buildTestMIG constructs a deterministic random MIG with the given shape,
// used to exercise the passes on nontrivial structure.
func buildTestMIG(t *testing.T, name string, pis, nodes, pos int, seed int64) *mig.MIG {
	t.Helper()
	m := mig.New(name)
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]mig.Signal, 0, pis+nodes)
	for i := 0; i < pis; i++ {
		sigs = append(sigs, m.AddPI(""))
	}
	for len(sigs) < pis+nodes {
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		s := m.Maj(pick(), pick(), pick())
		sigs = append(sigs, s)
	}
	for i := 0; i < pos; i++ {
		s := sigs[len(sigs)-1-rng.Intn(min(len(sigs), nodes))]
		if rng.Intn(4) == 0 {
			s = s.Not()
		}
		m.AddPO(s, "")
	}
	return m.Cleanup()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEachPassPreservesFunction(t *testing.T) {
	passes := []Pass{PassM, PassDRL, PassA, PassPsiC, PassIRL13, PassIRL}
	for _, p := range passes {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				m := buildTestMIG(t, "rnd", 8, 60, 6, seed)
				out := applyPass(nil, m, p)
				if err := out.Validate(); err != nil {
					t.Fatal(err)
				}
				res, err := mig.Equivalent(m, out, 8, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Equivalent {
					t.Fatalf("seed %d: pass %s changed the function (PO %d)", seed, p, res.PO)
				}
			}
		})
	}
}

func TestDistributivityReducesConstructedCase(t *testing.T) {
	m := mig.New("d")
	x := m.AddPI("x")
	y := m.AddPI("y")
	u := m.AddPI("u")
	v := m.AddPI("v")
	z := m.AddPI("z")
	a := m.Maj(x, y, u)
	b := m.Maj(x, y, v)
	m.AddPO(m.Maj(a, b, z), "f")
	if m.NumMaj() != 3 {
		t.Fatalf("setup: want 3 nodes, have %d", m.NumMaj())
	}
	out := passDistributivityRL(nil, m).Cleanup()
	if out.NumMaj() != 2 {
		t.Fatalf("Ω.D R→L should leave 2 nodes, got %d", out.NumMaj())
	}
	mig.MustBeEquivalent(m, out, 4, 1)
}

func TestDistributivityRespectsFanoutGuard(t *testing.T) {
	m := mig.New("d")
	x := m.AddPI("x")
	y := m.AddPI("y")
	u := m.AddPI("u")
	v := m.AddPI("v")
	z := m.AddPI("z")
	a := m.Maj(x, y, u)
	b := m.Maj(x, y, v)
	m.AddPO(m.Maj(a, b, z), "f")
	m.AddPO(a, "keep") // a has a second fanout: rewriting would grow the graph
	out := passDistributivityRL(nil, m).Cleanup()
	if out.NumMaj() != 3 {
		t.Fatalf("guard failed: got %d nodes, want 3", out.NumMaj())
	}
}

func TestDistributivityWithComplementedProducts(t *testing.T) {
	// ⟨⟨x y u⟩' ⟨x̄ ȳ v⟩ z⟩: through self-duality the first product's
	// effective children are {x̄ ȳ ū}, sharing {x̄ ȳ} with the second.
	m := mig.New("d")
	x := m.AddPI("x")
	y := m.AddPI("y")
	u := m.AddPI("u")
	v := m.AddPI("v")
	z := m.AddPI("z")
	a := m.Maj(x, y, u)
	b := m.Maj(x.Not(), y.Not(), v)
	m.AddPO(m.Maj(a.Not(), b, z), "f")
	out := passDistributivityRL(nil, m).Cleanup()
	if out.NumMaj() != 2 {
		t.Fatalf("polarity-aware Ω.D failed: got %d nodes, want 2", out.NumMaj())
	}
	mig.MustBeEquivalent(m, out, 4, 1)
}

func TestInverterNormalizationInvariant(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		m := buildTestMIG(t, "rnd", 10, 120, 8, seed)
		out := passInverters(nil, m, true).Cleanup()
		hist := out.ComplementHistogram()
		if hist[2] != 0 || hist[3] != 0 {
			t.Fatalf("seed %d: nodes with ≥2 complemented fanins remain: %v", seed, hist)
		}
		mig.MustBeEquivalent(m, out, 8, seed)
	}
}

func TestInverterRule1Only(t *testing.T) {
	m := mig.New("i")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	n3 := m.Maj(x.Not(), y.Not(), z.Not()) // 3 complemented
	n2 := m.Maj(x.Not(), y.Not(), z)       // 2 complemented
	m.AddPO(n3, "a")
	m.AddPO(n2, "b")
	out := passInverters(nil, m, false).Cleanup()
	hist := out.ComplementHistogram()
	if hist[3] != 0 {
		t.Fatalf("rule (1) left a 3-complemented node: %v", hist)
	}
	if hist[2] != 1 {
		t.Fatalf("rule (1) must not touch 2-complemented nodes: %v", hist)
	}
	mig.MustBeEquivalent(m, out, 4, 1)
}

func TestAssociativityEnablesFold(t *testing.T) {
	// ⟨x u ⟨y u x⟩⟩ has no direct fold, but Ω.A can rotate x into the inner
	// node: ⟨x u ⟨y u x⟩⟩ = ... here we build ⟨x u ⟨x̄ u z⟩⟩ whose swap gives
	// inner ⟨x̄ u x⟩ = u, so the whole node folds to ⟨z u u⟩ = u... choose a
	// case where the result is a genuine reduction:
	// f = ⟨x u ⟨y u x⟩⟩ — swapping z=y? Use the documented profit case:
	// inner' = ⟨y u x⟩ already exists elsewhere.
	m := mig.New("a")
	x := m.AddPI("x")
	u := m.AddPI("u")
	y := m.AddPI("y")
	z := m.AddPI("z")
	shared := m.Maj(y, u, x) // pre-existing node
	m.AddPO(shared, "g")
	inner := m.Maj(y, u, z)
	f := m.Maj(x, u, inner)
	m.AddPO(f, "f")
	before := m.Cleanup().NumMaj()
	out := passAssociativity(nil, m).Cleanup()
	if out.NumMaj() >= before {
		t.Fatalf("Ω.A sharing case: %d nodes before, %d after", before, out.NumMaj())
	}
	mig.MustBeEquivalent(m, out, 4, 1)
}

func TestPsiCEnablesFold(t *testing.T) {
	// ⟨x u ⟨y ū z⟩⟩ with y = x̄: replacing ū by x folds the inner node
	// ⟨x̄ x z⟩ = z, so f = ⟨x u z⟩ — one node instead of two.
	m := mig.New("p")
	x := m.AddPI("x")
	u := m.AddPI("u")
	z := m.AddPI("z")
	inner := m.Maj(x.Not(), u.Not(), z)
	f := m.Maj(x, u, inner)
	m.AddPO(f, "f")
	out := passPsiC(nil, m).Cleanup()
	if out.NumMaj() != 1 {
		t.Fatalf("Ψ.C fold case: got %d nodes, want 1", out.NumMaj())
	}
	mig.MustBeEquivalent(m, out, 4, 1)
}

func TestPipelinesPreserveFunctionAndReduce(t *testing.T) {
	for _, tc := range []struct {
		name     string
		pipeline []Pass
	}{
		{"algorithm1", Algorithm1},
		{"algorithm2", Algorithm2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				m := buildTestMIG(t, "rnd", 10, 200, 10, seed)
				out, st := Run(m, tc.pipeline, 5)
				if err := out.Validate(); err != nil {
					t.Fatal(err)
				}
				res, err := mig.Equivalent(m, out, 8, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Equivalent {
					t.Fatalf("seed %d: pipeline changed function at PO %d", seed, res.PO)
				}
				if st.NodesAfter > st.NodesBefore {
					t.Fatalf("seed %d: pipeline grew the graph: %d → %d", seed, st.NodesBefore, st.NodesAfter)
				}
			}
		})
	}
}

func TestAlgorithm2NormalizesComplements(t *testing.T) {
	// Algorithm 2 ends with inverter propagation, so no live node may keep
	// three complemented fanins, and ≥2-complement nodes should be rare
	// (only reintroduced by the final Ω.M/Ω.D steps).
	for seed := int64(1); seed <= 4; seed++ {
		m := buildTestMIG(t, "rnd", 10, 200, 10, seed)
		out, _ := Run(m, Algorithm2, 5)
		hist := out.ComplementHistogram()
		if hist[3] != 0 {
			t.Fatalf("seed %d: 3-complemented nodes remain after Algorithm 2: %v", seed, hist)
		}
	}
}

func TestRunEarlyExit(t *testing.T) {
	m := mig.New("t")
	x := m.AddPI("x")
	y := m.AddPI("y")
	z := m.AddPI("z")
	m.AddPO(m.Maj(x, y, z), "f")
	_, st := Run(m, Algorithm2, 50)
	if st.Cycles >= 50 {
		t.Fatalf("fixpoint not detected, ran %d cycles", st.Cycles)
	}
}

func TestPassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Pass{PassM, PassDRL, PassA, PassPsiC, PassIRL13, PassIRL} {
		s := p.String()
		if s == "?" || seen[s] {
			t.Fatalf("bad or duplicate pass name %q", s)
		}
		seen[s] = true
	}
	if Pass(99).String() != "?" {
		t.Fatalf("unknown pass must stringify as ?")
	}
}

// TestRunResultDetachedFromArenas guards the arena reuse: the MIG returned
// by Run must stay valid and functionally intact after later Run calls
// reuse (or would reuse) the internal scratch state, and repeated runs must
// be deterministic.
func TestRunResultDetachedFromArenas(t *testing.T) {
	build := func(seed int64) *mig.MIG {
		rng := rand.New(rand.NewSource(seed))
		m := mig.New("det")
		sigs := make([]mig.Signal, 0, 64)
		for i := 0; i < 6; i++ {
			sigs = append(sigs, m.AddPI(""))
		}
		pick := func() mig.Signal {
			s := sigs[rng.Intn(len(sigs))]
			if rng.Intn(3) == 0 {
				s = s.Not()
			}
			return s
		}
		for i := 0; i < 60; i++ {
			sigs = append(sigs, m.Maj(pick(), pick(), pick()))
		}
		for i := 0; i < 4; i++ {
			m.AddPO(pick(), "")
		}
		return m.Cleanup()
	}
	m1 := build(1)
	out1, st1 := Run(m1, Algorithm2, 5)
	want := truthTables(out1)
	fp := out1.Fingerprint()

	// Further runs on other graphs must not disturb out1.
	for seed := int64(2); seed < 6; seed++ {
		Run(build(seed), Algorithm1, 5)
		Run(build(seed), Algorithm2, 5)
	}
	if err := out1.Validate(); err != nil {
		t.Fatalf("result corrupted by later runs: %v", err)
	}
	if out1.Fingerprint() != fp {
		t.Fatal("result mutated by later runs")
	}
	got := truthTables(out1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PO %d function changed after later runs", i)
		}
	}
	// Determinism: a fresh run of the same input reproduces the result.
	out2, st2 := Run(build(1), Algorithm2, 5)
	if st1 != st2 || out2.Fingerprint() != fp {
		t.Fatalf("rewriting is not deterministic: %+v vs %+v", st1, st2)
	}
}
