// Package verify statically checks PLiM programs. A PLiM program is
// straight-line — no branches, no loops — so a single linear sweep over
// the instruction stream proves properties that would otherwise need
// dynamic observation: every operand is defined before it is read, every
// address stays inside the allocator's declared footprint, no write is
// wasted (overwritten before anything reads it), every declared output is
// actually computed, and the exact number of write pulses each cell
// receives. The last point is the load-bearing one for the endurance
// model: static per-cell write counts are data-independent, so they must
// equal the dynamic wear the interpreter and internal/exec report — any
// divergence means the wear accounting itself is broken.
//
// The definedness rules mirror the machine model in internal/isa and the
// lowering in internal/exec:
//
//   - Constant operands (#0, #1) are always defined; internal/exec lowers
//     them to two pseudo-cells appended after the program's address space
//     and pre-set before the first instruction, so they never depend on
//     program order.
//   - PI cells are defined by preload (Controller.LoadInputs /
//     Batch lanes under ActiveMask), before instruction 0.
//   - RM3 A,B → Z reads Z as well as A and B — the result is a majority
//     over the old cell value — unless the instruction is a preset
//     (both operands constant with A = ¬B), the only form whose result is
//     independent of the destination's prior state.
package verify

import (
	"errors"
	"fmt"

	"plim/internal/cost"
	"plim/internal/isa"
)

// Check names the individual properties the verifier proves. They appear
// in Violation.Check and in the JSON reports served by /v1/compile.
const (
	CheckRange      = "range"           // cell reference outside NumCells
	CheckPIOverlap  = "pi-overlap"      // two PIs share a cell
	CheckDefUse     = "def-before-use"  // read of a never-written, non-PI cell
	CheckDeadWrite  = "dead-write"      // write overwritten before any read
	CheckLiveness   = "output-liveness" // declared PO never computed
	CheckWearCap    = "wear-cap"        // static writes exceed the policy cap
	CheckWriteCount = "write-parity"    // static counts disagree with a dynamic/allocator aggregate
	CheckCost       = "cost-parity"     // static cost disagrees with a dynamic/allocator cost
)

// Options configures a verification pass.
type Options struct {
	// MaxWrites, when non-zero, is the policy's per-cell write cap
	// (core.Config.MaxWrites); any cell whose static count exceeds it is
	// reported as a wear-cap violation.
	MaxWrites uint64
	// CostModel, when non-nil, prices the program during the sweep: the
	// report gains exact static energy/latency/lifetime totals derived from
	// the same per-instruction walk that proves the write counts.
	CostModel *cost.Model
}

// Violation is one finding. Inst and Cell are -1 when the finding is not
// tied to a specific instruction or cell.
type Violation struct {
	Check string `json:"check"`
	Inst  int    `json:"inst"`
	Cell  int64  `json:"cell"`
	Msg   string `json:"msg"`
}

func (v Violation) String() string {
	switch {
	case v.Inst >= 0:
		return fmt.Sprintf("%s: inst %d: %s", v.Check, v.Inst, v.Msg)
	case v.Cell >= 0:
		return fmt.Sprintf("%s: cell %d: %s", v.Check, v.Cell, v.Msg)
	default:
		return fmt.Sprintf("%s: %s", v.Check, v.Msg)
	}
}

// Report is the result of verifying one program. Violations are hard
// errors — the program reads undefined state, escapes its footprint,
// misses an output or blows its wear budget. DeadWrites are warnings:
// the program still computes the right values, but spends endurance on
// writes nothing observes.
type Report struct {
	Name         string `json:"name,omitempty"`
	Fingerprint  uint64 `json:"fingerprint"`
	Instructions int    `json:"instructions"`
	Cells        int    `json:"cells"`

	// WriteCounts is the exact static per-cell write count; index = cell.
	WriteCounts []uint64 `json:"-"`
	// TotalWrites is the sum over WriteCounts (the paper's #I for
	// programs with one write per instruction).
	TotalWrites uint64 `json:"total_writes"`
	// MaxCellWrites is the hottest cell's count — the static wear bound
	// that caps lifetime at endurance/MaxCellWrites runs.
	MaxCellWrites uint64 `json:"max_cell_writes"`
	// CellsWritten counts cells with at least one write.
	CellsWritten int `json:"cells_written"`

	// Cost is the static price of one program execution under
	// Options.CostModel; nil when no model was supplied. It is exact for the
	// same reason the write counts are: straight-line programs execute every
	// instruction exactly once per run.
	Cost *cost.Cost `json:"cost,omitempty"`

	Violations []Violation `json:"violations,omitempty"`
	DeadWrites []Violation `json:"dead_writes,omitempty"`
}

// OK reports whether the program passed every hard check. Dead writes do
// not affect OK; see Clean.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Clean reports whether the program passed every hard check and has no
// dead writes.
func (r *Report) Clean() bool { return r.OK() && len(r.DeadWrites) == 0 }

// Err returns nil when OK, otherwise an error joining every hard
// violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	errs := make([]error, len(r.Violations))
	for i, v := range r.Violations {
		errs[i] = errors.New(v.String())
	}
	return fmt.Errorf("verify: %s: %w", r.name(), errors.Join(errs...))
}

func (r *Report) name() string {
	if r.Name != "" {
		return r.Name
	}
	return "program"
}

func (r *Report) violate(check string, inst int, cell int64, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Check: check, Inst: inst, Cell: cell, Msg: fmt.Sprintf(format, args...),
	})
}

// isPreset reports whether ins defines its destination independent of the
// destination's prior value. RM3 A,B→Z computes ⟨A B̄ Z⟩; the result drops
// its Z dependence exactly when A = B̄, which is statically certain only
// for the two constant presets RM3 #0,#1 (→0) and RM3 #1,#0 (→1). Two
// reads of the same cell give ⟨x x̄ Z⟩ = Z, which still depends on Z.
func isPreset(ins isa.Instruction) bool {
	return (ins.A.Kind == isa.OpConst0 && ins.B.Kind == isa.OpConst1) ||
		(ins.A.Kind == isa.OpConst1 && ins.B.Kind == isa.OpConst0)
}

// Program verifies p and returns the full report. It never executes an
// instruction: one O(#insts + #cells) sweep.
func Program(p *isa.Program, opts Options) *Report {
	r := &Report{
		Name:         p.Name,
		Fingerprint:  p.Fingerprint(),
		Instructions: len(p.Insts),
		Cells:        int(p.NumCells),
		WriteCounts:  make([]uint64, p.NumCells),
	}

	n := int64(p.NumCells)
	inRange := func(c uint32) bool { return int64(c) < n }

	// Footprint and PI-map checks (the statically declared interface).
	defined := make([]bool, p.NumCells)
	piOwner := make([]int32, p.NumCells)
	for i := range piOwner {
		piOwner[i] = -1
	}
	for i, c := range p.PICells {
		if !inRange(c) {
			r.violate(CheckRange, -1, int64(c), "PI %d cell out of range %d", i, p.NumCells)
			continue
		}
		if j := piOwner[c]; j >= 0 {
			r.violate(CheckPIOverlap, -1, int64(c), "PI %d and PI %d share a cell", j, i)
			continue
		}
		piOwner[c] = int32(i)
		defined[c] = true // preloaded before instruction 0
	}

	// Dataflow sweep. lastWrite[c] is the index of the pending (not yet
	// read) write to c, or -1; a preset landing on a pending write means
	// the pending write aged the device for nothing.
	lastWrite := make([]int32, p.NumCells)
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	// Cost accumulation rides the same sweep: per-class op counts plus
	// per-cell weighted wear (identical to WriteCounts under the default
	// model's unit wear).
	var costOps cost.Counts
	var costWear []uint64
	if opts.CostModel != nil {
		costWear = make([]uint64, p.NumCells)
	}
	read := func(inst int, c uint32, what string) {
		if !inRange(c) {
			r.violate(CheckRange, inst, int64(c), "%s cell %d out of range %d", what, c, p.NumCells)
			return
		}
		if !defined[c] {
			r.violate(CheckDefUse, inst, int64(c), "%s reads cell %d before any write or PI preload", what, c)
		}
		lastWrite[c] = -1 // pending write (if any) is now observed
	}
	for i, ins := range p.Insts {
		if ins.A.Kind == isa.OpCell {
			read(i, ins.A.Addr, "operand A")
		}
		if ins.B.Kind == isa.OpCell {
			read(i, ins.B.Addr, "operand B")
		}
		if !inRange(ins.Z) {
			r.violate(CheckRange, i, int64(ins.Z), "destination cell %d out of range %d", ins.Z, p.NumCells)
			continue
		}
		if !isPreset(ins) {
			// The majority reads the destination's old value.
			if !defined[ins.Z] {
				r.violate(CheckDefUse, i, int64(ins.Z),
					"destination cell %d read before any write or PI preload (%s depends on its prior value)", ins.Z, ins)
			}
			lastWrite[ins.Z] = -1
		} else if w := lastWrite[ins.Z]; w >= 0 {
			// A preset erases a value nothing ever read.
			r.DeadWrites = append(r.DeadWrites, Violation{
				Check: CheckDeadWrite, Inst: int(w), Cell: int64(ins.Z),
				Msg: fmt.Sprintf("write to cell %d is overwritten by inst %d before any read", ins.Z, i),
			})
		}
		defined[ins.Z] = true
		lastWrite[ins.Z] = int32(i)
		r.WriteCounts[ins.Z]++
		if m := opts.CostModel; m != nil {
			op := cost.Classify(ins)
			costOps.Note(op)
			costWear[ins.Z] += m.Of(op).Wear
		}
	}

	// Output liveness, and POs count as reads for deadness.
	for i, po := range p.POs {
		if !inRange(po.Addr) {
			r.violate(CheckRange, -1, int64(po.Addr), "PO %d cell out of range %d", i, p.NumCells)
			continue
		}
		if !defined[po.Addr] {
			r.violate(CheckLiveness, -1, int64(po.Addr), "PO %d is never computed (cell %d has no write and no PI preload)", i, po.Addr)
		}
		lastWrite[po.Addr] = -1
	}
	// Whatever is still pending was written and then never observed.
	for c, w := range lastWrite {
		if w >= 0 {
			r.DeadWrites = append(r.DeadWrites, Violation{
				Check: CheckDeadWrite, Inst: int(w), Cell: int64(c),
				Msg: fmt.Sprintf("write to cell %d is never read and cell is not a primary output", c),
			})
		}
	}

	// Wear aggregates and the per-policy cap.
	for c, w := range r.WriteCounts {
		r.TotalWrites += w
		if w > 0 {
			r.CellsWritten++
		}
		if w > r.MaxCellWrites {
			r.MaxCellWrites = w
		}
		if opts.MaxWrites > 0 && w > opts.MaxWrites {
			r.violate(CheckWearCap, -1, int64(c), "cell receives %d writes, policy cap is %d", w, opts.MaxWrites)
		}
	}
	if m := opts.CostModel; m != nil {
		var maxWear uint64
		for _, w := range costWear {
			if w > maxWear {
				maxWear = w
			}
		}
		c := m.FromCounts(costOps, maxWear)
		r.Cost = &c
	}
	return r
}

// CheckWriteParity compares the report's static per-cell counts against
// an independently measured aggregate — the allocator's bookkeeping
// (compile.Result.WriteCounts), the interpreter's crossbar counters, or
// internal/exec's per-run aggregate — and records a write-parity
// violation for every divergence. source names the aggregate in the
// message. It returns true when the aggregates agree exactly.
func CheckWriteParity(r *Report, got []uint64, source string) bool {
	ok := true
	if len(got) != len(r.WriteCounts) {
		r.violate(CheckWriteCount, -1, -1, "%s reports %d cells, program declares %d", source, len(got), len(r.WriteCounts))
		return false
	}
	for c := range got {
		if got[c] != r.WriteCounts[c] {
			r.violate(CheckWriteCount, -1, int64(c), "static count %d, %s reports %d", r.WriteCounts[c], source, got[c])
			ok = false
		}
	}
	return ok
}

// CheckCostParity compares the report's static cost against an
// independently accounted one — the compiler/allocator's emission-time
// accumulation (compile.Result.Cost) or internal/exec's per-run dynamic
// cost — and records a cost-parity violation on divergence. Both sides
// derive their totals through cost.Model.FromCounts, so agreement is exact,
// including the floating-point energy total. It returns true when they
// agree (or when the report was produced without a cost model).
func CheckCostParity(r *Report, got cost.Cost, source string) bool {
	if r.Cost == nil {
		return true
	}
	if *r.Cost == got {
		return true
	}
	r.violate(CheckCost, -1, -1, "static cost %+v, %s reports %+v", *r.Cost, source, got)
	return false
}
