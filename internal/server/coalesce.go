package server

import (
	"context"
	"sync"
	"time"

	"plim"
)

// response is the finished outcome of one computation flight, shared
// verbatim by every coalesced request. Untraced bodies contain only
// deterministic content (no timestamps), so two flights over the same
// inputs produce byte-identical responses — the warm-path contract the CI
// smoke job pins. Traced flights embed timings (the "trace" block), which
// is why the trace flag joins the coalescing key: a traced request never
// shares a flight with an untraced one.
type response struct {
	status       int
	body         []byte        // JSON, newline-terminated
	retryAfter   time.Duration // > 0 on 429: the Retry-After header value
	serverTiming string        // Server-Timing header of a traced flight
	trace        []byte        // raw trace JSON block of a traced flight (SSE "trace" frame)
}

// flight is one in-flight computation plus its fan-out state: the progress
// events published so far (a replay buffer, so subscribers attaching late
// still see the full stream) and the final response. Subscribers are
// refcounted; when the last one leaves before completion the flight's
// context is cancelled, so a computation nobody is waiting for anymore
// stops at its next cancellation point.
type flight struct {
	key    string
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	events []plim.Event
	done   bool
	resp   response

	doneCh chan struct{} // closed by finish; for select-based waiting
	subs   int           // guarded by flightGroup.mu
}

func newFlight(key string) *flight {
	f := &flight{key: key, doneCh: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// publish appends one progress event to the replay buffer and wakes
// streaming subscribers. It is handed to the engine as the flight's
// per-call observer, so delivery is already serialized.
func (f *flight) publish(ev plim.Event) {
	f.mu.Lock()
	f.events = append(f.events, ev)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// finish publishes the final response and wakes everyone.
func (f *flight) finish(resp response) {
	f.mu.Lock()
	f.done = true
	f.resp = resp
	f.mu.Unlock()
	f.cond.Broadcast()
	close(f.doneCh)
}

// wait blocks until the flight completes or ctx expires.
func (f *flight) wait(ctx context.Context) (response, error) {
	select {
	case <-f.doneCh:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.resp, nil
	case <-ctx.Done():
		return response{}, ctx.Err()
	}
}

// stream delivers every event of the flight — replayed from the buffer,
// then live as they are published — to emit, and returns the final
// response once the flight completes. A failing emit (client gone) or an
// expired ctx ends the stream early.
func (f *flight) stream(ctx context.Context, emit func(plim.Event) error) (response, error) {
	// A cond.Wait cannot watch a context, so an AfterFunc nudges every
	// waiter when ctx expires; the lock acquisition orders the broadcast
	// after the waiter is actually waiting.
	stop := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.cond.Broadcast()
	})
	defer stop()

	next := 0
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		for next < len(f.events) {
			ev := f.events[next]
			next++
			f.mu.Unlock()
			err := emit(ev)
			f.mu.Lock()
			if err != nil {
				return response{}, err
			}
		}
		if f.done {
			return f.resp, nil
		}
		if err := ctx.Err(); err != nil {
			return response{}, err
		}
		f.cond.Wait()
	}
}

// flightGroup coalesces identical in-flight requests: the first request
// with a key becomes the leader and starts the computation, every further
// request with the same key subscribes to the existing flight. Completed
// flights are forgotten immediately — memoization across completed requests
// is the engine caches' job, not the coalescer's.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join subscribes the caller to the flight for key, creating it when no
// computation is in flight. The caller must pair every join with exactly
// one leave.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.flights[key]
	if !ok {
		f = newFlight(key)
		g.flights[key] = f
	}
	f.subs++
	return f, !ok
}

// setCancel installs the computation's cancel function; the leader calls
// it before starting the compute goroutine. Guarded by the group lock so
// leave observes it.
func (g *flightGroup) setCancel(f *flight, cancel context.CancelFunc) {
	g.mu.Lock()
	f.cancel = cancel
	g.mu.Unlock()
}

// leave drops one subscription. When the last subscriber of an unfinished
// flight leaves, the flight's computation context is cancelled — nobody is
// left to read the result, so the rewrite/compile aborts at its next
// cancellation point (and, being an error, is not cached) — and the flight
// is unregistered immediately, so an identical request arriving while the
// dying computation winds down starts fresh instead of inheriting the
// cancellation error.
func (g *flightGroup) leave(f *flight) {
	g.mu.Lock()
	f.subs--
	abandoned := f.subs == 0
	cancel := f.cancel
	if abandoned && g.flights[f.key] == f {
		delete(g.flights, f.key)
	}
	g.mu.Unlock()
	if abandoned && cancel != nil {
		select {
		case <-f.doneCh: // finished normally; nothing to abort
		default:
			cancel()
		}
	}
}

// forget unregisters a flight so later identical requests start fresh.
// The leader calls it right before finish: a request arriving in between
// simply becomes a new leader and is served by the (now warm) engine
// caches.
func (g *flightGroup) forget(f *flight) {
	g.mu.Lock()
	if g.flights[f.key] == f {
		delete(g.flights, f.key)
	}
	g.mu.Unlock()
}
