package plim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineConcurrentMixedUse hammers one shared Engine from many
// goroutines mixing Run, RunAll, Rewrite, RunSuite and Benchmark, each call
// carrying its own per-call progress observer. It pins the safety
// assumption the serving layer (internal/server) is built on: one engine,
// arbitrary concurrent callers, per-request observers — no races (run
// under -race in CI), no cross-talk between observers, and results
// identical to a sequential reference.
func TestEngineConcurrentMixedUse(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer")
	}
	var engineEvents atomic.Int64
	eng := NewEngine(
		WithEffort(2),
		WithShrink(8),
		WithWorkers(4),
		WithProgress(func(Event) { engineEvents.Add(1) }),
	)

	// Sequential reference results, computed on a private engine.
	ref := NewEngine(WithEffort(2), WithShrink(8), WithWorkers(1))
	refMIG, err := ref.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(context.Background(), refMIG, Full)
	if err != nil {
		t.Fatal(err)
	}
	refRewrite, _, err := ref.Rewrite(context.Background(), refMIG, RewriteAlgorithm2)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const iters = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = func() error {
				for i := 0; i < iters; i++ {
					// Each call gets its own observer; events must never be
					// delivered concurrently to it and must belong to work
					// this goroutine submitted.
					var inFlight atomic.Int32
					var myEvents atomic.Int64
					ctx := ContextWithProgress(context.Background(), func(ev Event) {
						if inFlight.Add(1) != 1 {
							panic("per-call observer invoked concurrently")
						}
						defer inFlight.Add(-1)
						myEvents.Add(1)
					})
					m, err := eng.Benchmark("ctrl")
					if err != nil {
						return err
					}
					switch (g + i) % 4 {
					case 0:
						rep, err := eng.Run(ctx, m, Full)
						if err != nil {
							return err
						}
						if rep.NumInstructions() != refRep.NumInstructions() || rep.NumRRAMs() != refRep.NumRRAMs() {
							return fmt.Errorf("Run diverged: #I %d vs %d", rep.NumInstructions(), refRep.NumInstructions())
						}
					case 1:
						out, _, err := eng.Rewrite(ctx, m, RewriteAlgorithm2)
						if err != nil {
							return err
						}
						if out.Fingerprint() != refRewrite.Fingerprint() {
							return fmt.Errorf("Rewrite diverged")
						}
					case 2:
						reps, err := eng.RunAll(ctx, m, TableIConfigs())
						if err != nil {
							return err
						}
						for ci, rep := range reps {
							if rep.Config.Name != TableIConfigs()[ci].Name {
								return fmt.Errorf("RunAll reports out of order")
							}
						}
						if reps[4].NumInstructions() != refRep.NumInstructions() {
							return fmt.Errorf("RunAll full column diverged")
						}
					case 3:
						sr, err := eng.RunSuite(ctx, []Config{Naive, Full}, "ctrl", "router")
						if err != nil {
							return err
						}
						if len(sr.Reports) != 2 || sr.Reports[0][1].NumInstructions() != refRep.NumInstructions() {
							return fmt.Errorf("RunSuite diverged")
						}
					}
				}
				return nil
			}()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestContextObserverIsolation runs two concurrent Rewrite calls of
// *different* functions on one engine and asserts each per-call observer
// only ever sees its own function's events — the fan-out contract the
// server's per-request SSE streams rely on.
func TestContextObserverIsolation(t *testing.T) {
	eng := NewEngine(WithEffort(2), WithShrink(8), WithWorkers(2), WithCache(false))
	names := []string{"ctrl", "router"}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = func() error {
				m, err := eng.Benchmark(name)
				if err != nil {
					return err
				}
				sawOwn := false
				var wrong error
				ctx := ContextWithProgress(context.Background(), func(ev Event) {
					rc, ok := ev.(EventRewriteCycle)
					if !ok {
						return
					}
					if rc.Function != name {
						wrong = fmt.Errorf("observer for %s saw event of %s", name, rc.Function)
					} else {
						sawOwn = true
					}
				})
				if _, _, err := eng.Rewrite(ctx, m, RewriteAlgorithm2); err != nil {
					return err
				}
				if wrong != nil {
					return wrong
				}
				if !sawOwn {
					return fmt.Errorf("observer for %s saw no events (uncached rewrite must emit)", name)
				}
				return nil
			}()
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatal(err, i)
		}
	}
}

// TestContextObserverAndEngineObserverBothFire pins the fan-out: one call,
// both the construction-time callback and the per-call observer receive
// the same events.
func TestContextObserverAndEngineObserverBothFire(t *testing.T) {
	var engineSaw, callSaw []Event
	eng := NewEngine(WithEffort(1), WithShrink(8), WithWorkers(1),
		WithProgress(func(ev Event) { engineSaw = append(engineSaw, ev) }))
	m, err := eng.Benchmark("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithProgress(context.Background(), func(ev Event) { callSaw = append(callSaw, ev) })
	if _, err := eng.Run(ctx, m, Full); err != nil {
		t.Fatal(err)
	}
	if len(callSaw) == 0 || len(callSaw) != len(engineSaw) {
		t.Fatalf("observer mismatch: engine saw %d events, call saw %d", len(engineSaw), len(callSaw))
	}
	for i := range callSaw {
		if callSaw[i] != engineSaw[i] {
			t.Fatalf("event %d differs between observers", i)
		}
	}
}
