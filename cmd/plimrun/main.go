// plimrun executes a compiled PLiM program on the RRAM crossbar simulator.
// It can load binary or assembly programs, drive them with given or random
// inputs, verify outputs against a reference .mig netlist, and render the
// wear map of the array. Everything runs through the public plim facade.
//
// Examples:
//
//	plimc -bench adder -config full -o adder.bin
//	plimrun -in adder.bin -random 4 -wearmap
//	plimrun -in adder.bin -verify adder.mig -patterns 16
//	plimrun -in adder.bin -verify adder -shrink 1 -cache-dir ~/.cache/plim
//
// -verify accepts either a .mig netlist file or the name of one of the
// paper's benchmarks; a benchmark reference is rebuilt at -shrink through
// the persistent cache when -cache-dir (default $PLIM_CACHE_DIR) is set,
// so verification reuses the build an earlier plimc/plimtab run stored.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"plim"
)

func main() {
	var (
		inFile    = flag.String("in", "", "compiled program (.bin or .plim assembly)")
		inputsHex = flag.String("inputs", "", "input bits, LSB-first string of 0/1 (length = #PI)")
		random    = flag.Int("random", 0, "run N random input vectors instead")
		verify    = flag.String("verify", "", "reference to check outputs against: a .mig netlist file or a benchmark name")
		patterns  = flag.Int("patterns", 8, "number of random patterns for -verify")
		seed      = flag.Int64("seed", 1, "random seed")
		wearmap   = flag.Bool("wearmap", false, "print the crossbar wear map after the run")
		endurance = flag.Uint64("endurance", 0, "per-device write budget (0 = unlimited)")
		shrink    = flag.Int("shrink", 1, "datapath divisor when -verify names a benchmark")
		cacheDir  = flag.String("cache-dir", os.Getenv("PLIM_CACHE_DIR"),
			"persistent cache directory for benchmark rebuilds (default $PLIM_CACHE_DIR; empty = off)")
	)
	flag.Parse()

	if *inFile == "" {
		fatal(fmt.Errorf("plimrun: need -in"))
	}
	prog, err := loadProgram(*inFile)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program     %s: %d instructions, %d devices, %d inputs, %d outputs\n",
		prog.Name, prog.NumInstructions(), prog.NumCells, len(prog.PICells), len(prog.POs))

	rng := rand.New(rand.NewSource(*seed))

	var ref *plim.MIG
	if *verify != "" {
		ref, err = loadReference(*verify, *shrink, *cacheDir)
		if err != nil {
			fatal(err)
		}
		if ref.NumPIs() != len(prog.PICells) || ref.NumPOs() != len(prog.POs) {
			fatal(fmt.Errorf("plimrun: reference shape %d/%d does not match program %d/%d",
				ref.NumPIs(), ref.NumPOs(), len(prog.PICells), len(prog.POs)))
		}
	}

	runs := buildRuns(*inputsHex, *random, *patterns, ref != nil, len(prog.PICells), rng)
	if len(runs) == 0 {
		fatal(fmt.Errorf("plimrun: provide -inputs, -random or -verify"))
	}

	execute := func(in []bool) ([]bool, *plim.Crossbar, error) {
		if *endurance > 0 {
			return plim.ExecuteWithEndurance(prog, in, *endurance)
		}
		return plim.Execute(prog, in)
	}

	var lastXbar *plim.Crossbar
	for i, in := range runs {
		out, xbar, err := execute(in)
		lastXbar = xbar
		if err != nil {
			fatal(fmt.Errorf("plimrun: run %d: %w", i, err))
		}
		if ref != nil {
			if err := check(ref, in, out); err != nil {
				fatal(fmt.Errorf("plimrun: run %d: %w", i, err))
			}
		} else {
			fmt.Printf("run %d: in=%s out=%s\n", i, bitString(in), bitString(out))
		}
	}
	if ref != nil {
		fmt.Printf("verify      OK (%d patterns match the reference netlist)\n", len(runs))
	}
	if lastXbar != nil {
		counts := lastXbar.WriteCounts(int(prog.NumCells))
		s := plim.SummarizeWrites(counts)
		fmt.Printf("writes      min=%d max=%d stdev=%.2f (per execution)\n", s.Min, s.Max, s.StdDev)
		if *wearmap {
			fmt.Println("wear map (0-9 relative, '.' = untouched):")
			fmt.Println(lastXbar.WearMap(int(prog.NumCells)))
		}
	}
}

// loadReference resolves -verify: an existing file is parsed as a .mig
// netlist; otherwise the value must name one of the paper's benchmarks,
// rebuilt at the given shrink through the persistent cache (when set).
func loadReference(ref string, shrink int, cacheDir string) (*plim.MIG, error) {
	if _, statErr := os.Stat(ref); statErr == nil {
		f, err := os.Open(ref)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return plim.ReadMIG(f)
	}
	if _, ok := plim.LookupBenchmark(ref); !ok {
		return nil, fmt.Errorf("plimrun: -verify %q is neither a readable file nor a benchmark name", ref)
	}
	eng := plim.NewEngine(plim.WithShrink(shrink), plim.WithPersistentCache(cacheDir))
	return eng.Benchmark(ref)
}

func loadProgram(path string) (*plim.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".plim") || strings.HasSuffix(path, ".asm") {
		return plim.ReadProgramAsm(f)
	}
	return plim.ReadProgram(f)
}

func buildRuns(inputs string, random, patterns int, verifying bool, npi int, rng *rand.Rand) [][]bool {
	var runs [][]bool
	if inputs != "" {
		in := make([]bool, 0, len(inputs))
		for _, ch := range inputs {
			switch ch {
			case '0':
				in = append(in, false)
			case '1':
				in = append(in, true)
			}
		}
		if len(in) != npi {
			fatal(fmt.Errorf("plimrun: -inputs has %d bits, program needs %d", len(in), npi))
		}
		runs = append(runs, in)
	}
	n := random
	if verifying && n == 0 {
		n = patterns
	}
	for i := 0; i < n; i++ {
		in := make([]bool, npi)
		for j := range in {
			in[j] = rng.Intn(2) == 1
		}
		runs = append(runs, in)
	}
	return runs
}

func check(ref *plim.MIG, in, out []bool) error {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	want := ref.Eval(words)
	for i := range out {
		if out[i] != (want[i]&1 == 1) {
			return fmt.Errorf("output %d mismatch: crossbar %v, reference %v", i, out[i], want[i]&1 == 1)
		}
	}
	return nil
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, v := range bits {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
