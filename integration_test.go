package plim

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"plim/internal/core"
	"plim/internal/isa"
	"plim/internal/mig"
	"plim/internal/rewrite"
	"plim/internal/suite"
)

// TestIntegrationSuiteAllConfigs is the repository's end-to-end check: every
// benchmark (at reduced datapath widths), through every paper configuration,
// must (1) rewrite into an equivalent MIG, (2) compile into a valid program,
// (3) execute on the crossbar interpreter with outputs matching MIG
// evaluation, and (4) agree on write counts across the compiler's
// accounting, a static scan of the program, and the interpreter's measured
// counters.
func TestIntegrationSuiteAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in short mode")
	}
	cfgs := append(core.TableIConfigs(), core.FullCap(10), core.FullCap(50))
	for _, name := range suite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := suite.BuildScaled(name, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range cfgs {
				rep, err := core.Run(context.Background(), m, cfg, 2, nil)
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				prog := rep.Result.Program
				if err := prog.Validate(); err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				verifyExecution(t, m, rep, cfg.Name)
				if cfg.MaxWrites > 0 {
					for cell, w := range rep.Result.WriteCounts {
						if w > cfg.MaxWrites {
							t.Fatalf("%s: cell %d exceeds cap: %d > %d", cfg.Name, cell, w, cfg.MaxWrites)
						}
					}
				}
				if rep.NumRRAMs() < m.NumPIs() {
					t.Fatalf("%s: #R=%d below PI count", cfg.Name, rep.NumRRAMs())
				}
			}
		})
	}
}

// verifyExecution runs the compiled program on a handful of random inputs
// and cross-checks outputs and write counters.
func verifyExecution(t *testing.T, m *mig.MIG, rep *core.Report, cfgName string) {
	t.Helper()
	prog := rep.Result.Program
	rng := rand.New(rand.NewSource(int64(len(prog.Insts))))
	words := make([]uint64, m.NumPIs())
	static := prog.StaticWriteCounts()

	for trial := 0; trial < 3; trial++ {
		in := make([]bool, m.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
			words[i] = 0
			if in[i] {
				words[i] = 1
			}
		}
		out, xbar, err := isa.Execute(prog, in)
		if err != nil {
			t.Fatalf("%s: execute: %v", cfgName, err)
		}
		want := m.Eval(words)
		for i := range out {
			if out[i] != (want[i]&1 == 1) {
				t.Fatalf("%s: PO %d mismatch", cfgName, i)
			}
		}
		measured := xbar.WriteCounts(int(prog.NumCells))
		for cell := range static {
			if static[cell] != measured[cell] || static[cell] != rep.Result.WriteCounts[cell] {
				t.Fatalf("%s: cell %d write accounting diverges: static=%d measured=%d compiler=%d",
					cfgName, cell, static[cell], measured[cell], rep.Result.WriteCounts[cell])
			}
		}
	}
}

// TestIntegrationRewritingEquivalenceAtScale verifies both rewriting
// algorithms preserve every benchmark's function at a mid scale, using
// word-parallel random simulation (and exhaustive enumeration for the small
// control functions).
func TestIntegrationRewritingEquivalenceAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep in short mode")
	}
	for _, name := range suite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := suite.BuildScaled(name, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, pipe := range [][]rewrite.Pass{rewrite.Algorithm1, rewrite.Algorithm2} {
				out, _ := rewrite.Run(m, pipe, 2)
				if err := out.Validate(); err != nil {
					t.Fatal(err)
				}
				res, err := mig.Equivalent(m, out, 6, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Equivalent {
					t.Fatalf("rewriting changed the function at PO %d", res.PO)
				}
			}
		})
	}
}

// TestIntegrationRewriteFixpoint: running a pipeline to convergence and then
// running it again must not change the graph further (idempotence of the
// fixpoint), which guards against rule ping-pong.
func TestIntegrationRewriteFixpoint(t *testing.T) {
	for _, name := range []string{"ctrl", "int2float", "router"} {
		m, err := suite.BuildScaled(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		once, _ := rewrite.Run(m, rewrite.Algorithm2, 20)
		twice, st := rewrite.Run(once, rewrite.Algorithm2, 20)
		if st.Cycles > 1 {
			t.Fatalf("%s: fixpoint not stable, %d extra cycles ran", name, st.Cycles)
		}
		if twice.NumMaj() != once.NumMaj() {
			t.Fatalf("%s: re-running rewriting changed node count %d → %d",
				name, once.NumMaj(), twice.NumMaj())
		}
	}
}

// TestIntegrationSerializationPipeline round-trips a benchmark through the
// .mig format, compiles both copies, and demands identical programs —
// serialization must be a faithful interchange format.
func TestIntegrationSerializationPipeline(t *testing.T) {
	m, err := suite.BuildScaled("cavlc", 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := mig.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Run(context.Background(), m, core.Full, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(context.Background(), m2, core.Full, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumInstructions() != b.NumInstructions() || a.NumRRAMs() != b.NumRRAMs() {
		t.Fatalf("serialization changed compilation: %d/%d vs %d/%d",
			a.NumInstructions(), a.NumRRAMs(), b.NumInstructions(), b.NumRRAMs())
	}
	for i, ins := range a.Result.Program.Insts {
		if ins != b.Result.Program.Insts[i] {
			t.Fatalf("instruction %d differs after round-trip", i)
		}
	}
}
